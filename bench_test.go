package ci_test

// One benchmark per table/figure of the paper (see DESIGN.md's
// per-experiment index) plus ablation benches for the design choices the
// planner makes and micro-benchmarks for the hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// Each figure bench reports a characteristic output of its artifact as a
// custom metric so regressions in the *numbers* (not just the speed) are
// visible in benchmark logs.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"

	"github.com/easeml/ci/internal/adaptivity"
	"github.com/easeml/ci/internal/bounds"
	"github.com/easeml/ci/internal/condlang"
	"github.com/easeml/ci/internal/core"
	"github.com/easeml/ci/internal/data"
	"github.com/easeml/ci/internal/engine"
	"github.com/easeml/ci/internal/estimator"
	"github.com/easeml/ci/internal/experiments"
	"github.com/easeml/ci/internal/interval"
	"github.com/easeml/ci/internal/labeling"
	"github.com/easeml/ci/internal/lru"
	"github.com/easeml/ci/internal/model"
	"github.com/easeml/ci/internal/patterns"
	"github.com/easeml/ci/internal/planner"
	"github.com/easeml/ci/internal/script"
	"github.com/easeml/ci/internal/server"
	"github.com/easeml/ci/internal/stats"
	"github.com/easeml/ci/internal/wal"
)

// BenchmarkFigure2SampleSizeTable regenerates the Figure 2 practicality
// table (64 sample sizes, H = 32).
func BenchmarkFigure2SampleSizeTable(b *testing.B) {
	var last int
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure2(32)
		if err != nil {
			b.Fatal(err)
		}
		last = rows[len(rows)-1].F2F3Full
	}
	b.ReportMetric(float64(last), "cell_0.99999_0.01_f2f3full")
}

// BenchmarkFigure3LabelComplexity regenerates the label-complexity sweep.
func BenchmarkFigure3LabelComplexity(b *testing.B) {
	var improvement float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure3(
			[]float64{0.01, 0.02, 0.05},
			[]float64{0.01, 0.001, 0.0001},
			experiments.DefaultFigure3Ps)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range series[0].Points {
			if p.P == 0.1 {
				improvement = p.Improvement
			}
		}
	}
	b.ReportMetric(improvement, "improvement_at_p0.1")
}

// BenchmarkFigure4EmpiricalError regenerates the estimated-vs-empirical
// error comparison (Monte-Carlo heavy).
func BenchmarkFigure4EmpiricalError(b *testing.B) {
	cfg := experiments.DefaultFigure4Config()
	cfg.Ns = []int{500, 2000, 8000}
	cfg.Trials = 200
	var ratio float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ratio = pts[0].BaselineEps / pts[0].OptimizedEps
	}
	b.ReportMetric(ratio, "baseline_over_optimized_eps")
}

// BenchmarkFigure5SemEvalScenario runs the full 3-query, 8-commit CI
// scenario through the engine.
func BenchmarkFigure5SemEvalScenario(b *testing.B) {
	var size int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(2019)
		if err != nil {
			b.Fatal(err)
		}
		size = res.Queries[2].SampleSize
	}
	b.ReportMetric(float64(size), "adaptive_sample_size")
}

// BenchmarkFigure6AccuracyEvolution reports the accuracy trajectories of
// the same scenario (kept separate so the figure has its own target).
func BenchmarkFigure6AccuracyEvolution(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(2019)
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range res.TestAccuracy {
			if a > peak {
				peak = a
			}
		}
	}
	b.ReportMetric(peak, "peak_test_accuracy")
}

// BenchmarkInTextNumbers recomputes every sample size quoted in the
// paper's prose.
func BenchmarkInTextNumbers(b *testing.B) {
	var active int
	for i := 0; i < b.N; i++ {
		n, err := experiments.ComputeInTextNumbers()
		if err != nil {
			b.Fatal(err)
		}
		active = n.ActiveLabelsPerCommit
	}
	b.ReportMetric(float64(active), "active_labels_per_commit")
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationEpsilonSplit compares the optimal epsilon split against
// the naive even split on an uneven-coefficient clause.
func BenchmarkAblationEpsilonSplit(b *testing.B) {
	f, err := condlang.Parse("n - 1.1 * o > 0.01 +/- 0.01")
	if err != nil {
		b.Fatal(err)
	}
	var even, opt int
	for i := 0; i < b.N; i++ {
		pe, err := estimator.SampleSize(f, 0.001, estimator.Options{
			Steps: 32, Adaptivity: adaptivity.None,
			Strategy: estimator.PerVariable, Split: estimator.SplitEven,
		})
		if err != nil {
			b.Fatal(err)
		}
		po, err := estimator.SampleSize(f, 0.001, estimator.Options{
			Steps: 32, Adaptivity: adaptivity.None,
			Strategy: estimator.PerVariable, Split: estimator.SplitOptimal,
		})
		if err != nil {
			b.Fatal(err)
		}
		even, opt = pe.N, po.N
	}
	b.ReportMetric(float64(even)/float64(opt), "even_over_optimal")
}

// BenchmarkAblationDeltaBudget compares the split budget (Section 4.1.1)
// against the test-only budget (Section 5.2) for Pattern 1.
func BenchmarkAblationDeltaBudget(b *testing.B) {
	f, err := condlang.Parse("d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01")
	if err != nil {
		b.Fatal(err)
	}
	var split, testOnly int
	for i := 0; i < b.N; i++ {
		ps, err := patterns.PlanPattern1(f, 0.0001, patterns.Options{
			Steps: 32, Adaptivity: adaptivity.None, Budget: patterns.BudgetSplit,
		})
		if err != nil {
			b.Fatal(err)
		}
		pt, err := patterns.PlanPattern1(f, 0.0001, patterns.Options{
			Steps: 32, Adaptivity: adaptivity.None, Budget: patterns.BudgetTestOnly,
		})
		if err != nil {
			b.Fatal(err)
		}
		split, testOnly = ps.TestN, pt.TestN
	}
	b.ReportMetric(float64(split)-float64(testOnly), "split_minus_testonly_labels")
}

// BenchmarkAblationStrategy compares per-variable and composite-range
// estimation on an uneven-coefficient clause.
func BenchmarkAblationStrategy(b *testing.B) {
	f, err := condlang.Parse("n - 1.1 * o > 0.01 +/- 0.01")
	if err != nil {
		b.Fatal(err)
	}
	var pv, cr int
	for i := 0; i < b.N; i++ {
		a, err := estimator.SampleSize(f, 0.001, estimator.Options{
			Steps: 16, Adaptivity: adaptivity.Full, Strategy: estimator.PerVariable,
		})
		if err != nil {
			b.Fatal(err)
		}
		c, err := estimator.SampleSize(f, 0.001, estimator.Options{
			Steps: 16, Adaptivity: adaptivity.Full, Strategy: estimator.CompositeRange,
		})
		if err != nil {
			b.Fatal(err)
		}
		pv, cr = a.N, c.N
	}
	b.ReportMetric(float64(pv)/float64(cr), "pervariable_over_composite")
}

// BenchmarkAblationTightBinomial compares the exact binomial sample size
// (Section 4.3) against two-sided Hoeffding. Repeated iterations hit the
// worst-case memo, so this measures the steady-state (served) latency; see
// BenchmarkAblationTightBinomialCold for the uncached search.
func BenchmarkAblationTightBinomial(b *testing.B) {
	var exact, hoeff int
	for i := 0; i < b.N; i++ {
		var err error
		exact, err = bounds.ExactSampleSize(0.05, 0.01, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		hoeff, err = bounds.HoeffdingSampleSizeTwoSided(1, 0.05, 0.01)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(hoeff)/float64(exact), "hoeffding_over_exact")
}

// BenchmarkAblationTightBinomialCold is the same search with the memo
// emptied every iteration: the honest cost of one full exact-bound
// binary search plus stabilization.
func BenchmarkAblationTightBinomialCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bounds.ResetExactCache()
		if _, err := bounds.ExactSampleSize(0.05, 0.01, 0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// worstCaseBenchCases are the representative (n, epsilon) points for the
// event-driven sweep vs grid ablation pair: epsilon shrinks with n so the
// worst-case failure stays near practical delta levels (the regime every
// real sample-size search probes).
var worstCaseBenchCases = []struct {
	n   int
	eps float64
}{
	{1000, 0.05},
	{30000, 0.01},
	{300000, 0.003},
}

// benchWorstCase drives one worst-case implementation with memoization
// bypassed (both entry points are the raw searches; only
// bounds.ExactWorstCaseFailure carries the memo).
func benchWorstCase(b *testing.B, impl func(int, float64, float64, float64) (float64, error)) {
	for _, c := range worstCaseBenchCases {
		b.Run(fmt.Sprintf("n=%d", c.n), func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				var err error
				worst, err = impl(c.n, c.eps, 0, 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(worst, "worst_case_failure")
		})
	}
}

// BenchmarkExactWorstCaseSweep is the shipped event-driven sweep: lattice
// event families localized by coarse bisection plus a medium-tolerance
// ascent, full precision only at the located peaks.
func BenchmarkExactWorstCaseSweep(b *testing.B) {
	benchWorstCase(b, bounds.ExactWorstCaseFailureSweep)
}

// BenchmarkExactWorstCaseGrid is the ablation baseline the sweep replaced:
// 64-point coarse grid plus up-to-512-point local refinement.
func BenchmarkExactWorstCaseGrid(b *testing.B) {
	benchWorstCase(b, bounds.ExactWorstCaseFailureGrid)
}

// benchColdProbes times a cold exact-bound search under the given bracket
// seed and reports how many uncached worst-case probes one search costs —
// the number the normal-approximation seed exists to cut.
func benchColdProbes(b *testing.B, seed bounds.BracketSeed) {
	for i := 0; i < b.N; i++ {
		bounds.ResetExactCache()
		if _, err := bounds.ExactSampleSizeSeeded(0.05, 0.01, 0, 1, seed); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	bounds.ResetExactCache()
	if _, err := bounds.ExactSampleSizeSeeded(0.05, 0.01, 0, 1, seed); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(bounds.ExactProbeEvals()), "probes/search")
}

// BenchmarkExactColdProbesNormalSeed is the shipped configuration:
// bracket seeded by the inverse-normal estimate.
func BenchmarkExactColdProbesNormalSeed(b *testing.B) {
	benchColdProbes(b, bounds.SeedNormal)
}

// BenchmarkExactColdProbesHoeffdingSeed is the ablation baseline: bracket
// seeded at the two-sided Hoeffding size (the pre-seed behavior).
func BenchmarkExactColdProbesHoeffdingSeed(b *testing.B) {
	benchColdProbes(b, bounds.SeedHoeffding)
}

// --- Micro-benchmarks ----------------------------------------------------

func BenchmarkParseCondition(b *testing.B) {
	src := "n - 1.1 * o > 0.01 +/- 0.01 /\\ d < 0.1 +/- 0.01"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := condlang.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSampleSizeEstimator(b *testing.B) {
	f, err := condlang.Parse("n - o > 0.02 +/- 0.01 /\\ d < 0.1 +/- 0.01")
	if err != nil {
		b.Fatal(err)
	}
	opts := estimator.Options{Steps: 32, Adaptivity: adaptivity.Full, Strategy: estimator.PerVariable}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := estimator.SampleSize(f, 0.0001, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCacheHit measures the server hot path: a plan request that
// the LRU plan cache absorbs.
func BenchmarkPlanCacheHit(b *testing.B) {
	cfg, err := script.New("d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01", 0.9999, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityNone, Email: "a@b.c"}, 32)
	if err != nil {
		b.Fatal(err)
	}
	cache := planner.New(64)
	if _, err := cache.PlanForConfig(cfg, core.DefaultOptions()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cache.PlanForConfig(cfg, core.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlannerDispatch(b *testing.B) {
	cfg, err := script.New("d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01", 0.9999, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityNone, Email: "a@b.c"}, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.PlanForConfig(cfg, core.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- plan-cache contention ----------------------------------------------

// kvCache is the Get/Put surface the single-mutex and sharded LRUs share.
type kvCache interface {
	Get(int) (int, bool)
	Put(int, int)
}

// benchLRUContention hammers a cache with a mixed read-heavy workload
// (3 Gets : 1 Put over 1024 keys) from at least 8 concurrent goroutines.
// GOMAXPROCS is raised to 8 for the duration so the contention is real
// even on small CI hosts: this is the serving profile of a plan-query
// fleet, not a single-threaded microbenchmark.
func benchLRUContention(b *testing.B, c kvCache) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	for k := 0; k < 1024; k++ {
		c.Put(k, k)
	}
	var goroutine atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Each goroutine walks its own deterministic key sequence.
		x := uint64(goroutine.Add(1)) * 0x9e3779b97f4a7c15
		for pb.Next() {
			x = x*6364136223846793005 + 1442695040888963407
			k := int(x>>32) & 1023
			if x&3 == 0 {
				c.Put(k, k)
			} else {
				c.Get(k)
			}
		}
	})
	// The -N name suffix reflects the harness's original GOMAXPROCS, not
	// the contention level this benchmark actually ran at; record the
	// truth alongside the timings.
	b.ReportMetric(float64(goroutine.Load()), "goroutines")
}

// BenchmarkLRUContentionSingle is the pre-sharding baseline: every
// Get/Put serializes on one mutex.
func BenchmarkLRUContentionSingle(b *testing.B) {
	benchLRUContention(b, lru.New[int, int](2048))
}

// BenchmarkLRUContentionSharded is the shipped plan-cache configuration:
// 16-way sharded, per-shard mutex.
func BenchmarkLRUContentionSharded(b *testing.B) {
	benchLRUContention(b, lru.NewSharded[int, int](2048, func(k int) uint64 {
		return lru.Mix64(uint64(k))
	}))
}

func BenchmarkBinomialCDF(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		stats.BinomialCDF(4900, 10000, 0.49)
	}
}

func BenchmarkBennettSampleSize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bounds.BennettSampleSize(0.1, 0.01, 0.0001); err != nil {
			b.Fatal(err)
		}
	}
}

// --- commit evaluation: packed vs scalar ---------------------------------

// commitEvalEngine builds an engine over an n-example index dataset with a
// fully-labeled (baseline-plan) condition, plus a candidate model, for the
// commit-evaluation benchmarks. scalar selects the element-wise reference
// path (the pre-packed pipeline, kept as the ablation baseline).
func commitEvalEngine(b *testing.B, n int, scalar bool) (*engine.Engine, model.Predictor) {
	b.Helper()
	ds := &data.Dataset{Name: "commit-eval", Classes: 4}
	for i := 0; i < n; i++ {
		ds.X = append(ds.X, []float64{float64(i)})
		ds.Y = append(ds.Y, i%4)
	}
	// The 1.1 coefficient keeps the planner off the active-labeling
	// patterns, so this measures the fully-labeled path: the one that
	// walks the whole testset every commit. Tolerance 0.3 keeps the
	// planned sample size within the benchmark testset.
	cfg, err := script.New("n - 1.1 * o > -0.3 +/- 0.3", 0.99, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityFull}, 4096)
	if err != nil {
		b.Fatal(err)
	}
	oldPreds, err := model.SimulatedPredictions(ds.Y, 4, 0.8, 1)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := engine.New(cfg, ds, labeling.NewTruthOracle(ds.Y), engine.Options{
		InitialModel: model.NewFixedPredictions("h0", oldPreds),
		ScalarEval:   scalar,
	})
	if err != nil {
		b.Fatal(err)
	}
	newPreds, err := model.SimulatedPredictions(ds.Y, 4, 0.85, 2)
	if err != nil {
		b.Fatal(err)
	}
	return eng, model.NewFixedPredictions("candidate", newPreds)
}

// BenchmarkCommitEval measures steady-state commit evaluation — candidate
// predictions, label access, {n, o, d} measurement, condition verdict — at
// n=1e5 via engine.Evaluate (the measurement core without per-commit
// bookkeeping). "packed" is the shipped bit-packed columnar path (target:
// 0 allocs/op steady-state); "scalar" is the element-wise reference
// pipeline it replaced, kept as the equivalence oracle — the pair is the
// tentpole's >= 8x claim.
func BenchmarkCommitEval(b *testing.B) {
	const n = 100000
	for _, mode := range []struct {
		name   string
		scalar bool
	}{
		{"packed", false},
		{"scalar", true},
	} {
		b.Run(fmt.Sprintf("%s/n=%d", mode.name, n), func(b *testing.B) {
			eng, m := commitEvalEngine(b, n, mode.scalar)
			// Warm up: first evaluation reveals every label.
			ev, err := eng.Evaluate(m)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ev, err = eng.Evaluate(m)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(ev.D, "d_hat")
		})
	}
}

// BenchmarkCommitThroughput drives full commits (evaluation plus budget,
// repository, history, and promotion bookkeeping) through the packed
// engine at n=1e5 and reports the commits/sec the serving queue can drain.
func BenchmarkCommitThroughput(b *testing.B) {
	const n = 100000
	eng, m := commitEvalEngine(b, n, false)
	ds := eng.Testsets().Current().Data
	h0 := model.NewFixedPredictions("h0", mustSimPreds(b, ds.Y, 0.8, 1))
	oracle := labeling.NewTruthOracle(ds.Y)
	if _, err := eng.Commit(m, "bench", "warmup"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := eng.Commit(m, "bench", "commit")
		if err == engine.ErrNeedNewTestset {
			if err := eng.RotateTestset(ds, oracle, h0); err != nil {
				b.Fatal(err)
			}
			_, err = eng.Commit(m, "bench", "commit")
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "commits/s")
	}
}

func mustSimPreds(b *testing.B, labels []int, acc float64, seed int64) []int {
	b.Helper()
	preds, err := model.SimulatedPredictions(labels, 4, acc, seed)
	if err != nil {
		b.Fatal(err)
	}
	return preds
}

// BenchmarkEngineCommit measures one full commit evaluation (predictions,
// active labeling, decision, bookkeeping) on a 5k testset.
func BenchmarkEngineCommit(b *testing.B) {
	ds := &data.Dataset{Name: "bench", Classes: 4}
	for i := 0; i < 5000; i++ {
		ds.X = append(ds.X, []float64{float64(i)})
		ds.Y = append(ds.Y, i%4)
	}
	cfg, err := script.New("n - o > 0.02 +/- 0.03", 0.99, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityFull}, 4096)
	if err != nil {
		b.Fatal(err)
	}
	oldPreds, err := model.SimulatedPredictions(ds.Y, 4, 0.8, 1)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := engine.New(cfg, ds, labeling.NewTruthOracle(ds.Y), engine.Options{
		InitialModel: model.NewFixedPredictions("h0", oldPreds),
	})
	if err != nil {
		b.Fatal(err)
	}
	newPreds, err := model.SimulatedPredictions(ds.Y, 4, 0.85, 2)
	if err != nil {
		b.Fatal(err)
	}
	m := model.NewFixedPredictions("candidate", newPreds)
	h0 := model.NewFixedPredictions("h0", oldPreds)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := eng.Commit(m, "bench", "commit")
		if err == engine.ErrNeedNewTestset {
			// The 4096-evaluation budget ran out mid-benchmark; rotate a
			// fresh testset and keep going.
			if err := eng.RotateTestset(ds, labeling.NewTruthOracle(ds.Y), h0); err != nil {
				b.Fatal(err)
			}
			_, err = eng.Commit(m, "bench", "commit")
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- early-decision label cost -------------------------------------------

// BenchmarkEarlyExitLabelCost drives the non-borderline workload — ten
// fresh-engine commits alternating a clear pass (accuracy 0.98) and a
// broken build (0.05) on a 1200-example testset — under the sequential
// early-decision plan ("early") and the static one-shot reveal
// ("static"), and reports the median fresh labels one commit paid. The
// labels/commit pair is the early-decision headline (>= 30% median
// saving off the bar); tools/benchdiff gates the metric alongside ns/op
// so the saving cannot silently erode. Each commit runs on a fresh
// engine because re-evaluating an already-labeled testset is free under
// both plans and would mask the effect.
func BenchmarkEarlyExitLabelCost(b *testing.B) {
	const n, commits = 1200, 10
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % 4
	}
	cfg, err := script.New("n > 0.7 +/- 0.05", 0.99, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityFull}, 2)
	if err != nil {
		b.Fatal(err)
	}
	h0 := mustSimPreds(b, labels, 0.75, 3)
	cands := make([]model.Predictor, commits)
	for i := range cands {
		acc := []float64{0.98, 0.05}[i%2]
		cands[i] = model.NewFixedPredictions("candidate", mustSimPreds(b, labels, acc, int64(i)+10))
	}
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"early", false},
		{"static", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var median float64
			for i := 0; i < b.N; i++ {
				costs := make([]int, 0, commits)
				for _, m := range cands {
					ds := &data.Dataset{Name: "early-exit", Classes: 4}
					for j := 0; j < n; j++ {
						ds.X = append(ds.X, []float64{float64(j)})
						ds.Y = append(ds.Y, labels[j])
					}
					eng, err := engine.New(cfg, ds, labeling.NewTruthOracle(ds.Y), engine.Options{
						InitialModel:  model.NewFixedPredictions("h0", h0),
						EarlyDecision: engine.EarlyDecision{Disable: mode.disable},
					})
					if err != nil {
						b.Fatal(err)
					}
					res, err := eng.Commit(m, "bench", "commit")
					if err != nil {
						b.Fatal(err)
					}
					costs = append(costs, res.FreshLabels)
				}
				sort.Ints(costs)
				median = float64(costs[commits/2-1]+costs[commits/2]) / 2
			}
			b.ReportMetric(median, "labels/commit")
		})
	}
}

// --- write-ahead log (internal/wal) -------------------------------------

// walBenchPayload is shaped like the server's commit record: the payload
// class the durable server appends most often.
type walBenchPayload struct {
	Job string          `json:"job"`
	Res json.RawMessage `json:"res"`
}

var walBenchRes = json.RawMessage(`{"commit_id":"0123456789abcdef","step":3,"signal":true,"truth":"True","pass":true,"estimates":{"n":0.91},"fresh_labels":128,"need_new_testset":false}`)

// BenchmarkWALAppend measures one unsynced record append (encode + CRC +
// write): the cost each engine audit record adds to a durable commit.
func BenchmarkWALAppend(b *testing.B) {
	log, _, _, err := wal.Open(b.TempDir(), wal.Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer log.Close()
	p := walBenchPayload{Job: "job-42", Res: walBenchRes}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := log.Append("job.commit", p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendSync measures append+fsync: the durable commit point
// a client's 200/202 waits behind.
func BenchmarkWALAppendSync(b *testing.B) {
	log, _, _, err := wal.Open(b.TempDir(), wal.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer log.Close()
	p := walBenchPayload{Job: "job-42", Res: walBenchRes}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := log.Append("job.commit", p); err != nil {
			b.Fatal(err)
		}
		if err := log.Sync(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALReplay measures opening a 1000-record log: decode + CRC
// verification for every record — the fixed cost of a crash restart
// before the engine re-executes anything.
func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	log, _, _, err := wal.Open(dir, wal.Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	p := walBenchPayload{Job: "job-42", Res: walBenchRes}
	for i := 0; i < 1000; i++ {
		if _, err := log.Append("job.commit", p); err != nil {
			b.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l, _, recs, err := wal.Open(dir, wal.Options{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) != 1000 {
			b.Fatalf("replayed %d records, want 1000", len(recs))
		}
		_ = l.Close()
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)*1000/secs, "records/s")
	}
}

// BenchmarkMultiTenantThroughput drives synchronous commits across eight
// projects of one control plane — every request routed, quota-checked,
// queued on its tenant, scheduled by the shared weighted-round-robin
// pool, and evaluated on the tenant's own engine — and reports the
// aggregate commits/sec the multi-tenant serving stack sustains.
func BenchmarkMultiTenantThroughput(b *testing.B) {
	const tenants = 8
	const n = 5000
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % 4
	}
	h0 := mustSimPreds(b, labels, 0.8, 1)
	m, err := server.NewMulti(server.Genesis{
		Condition:   "n - o > 0.02 +/- 0.03",
		Reliability: 0.99,
		Mode:        interval.FPFree,
		Adaptivity:  script.Adaptivity{Kind: script.AdaptivityFull},
		Steps:       4096,
		Labels:      labels, Classes: 4,
		ModelName: "h0", ModelPredictions: h0,
	}, server.MultiOptions{PoolWorkers: runtime.GOMAXPROCS(0)})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	bases := []string{"/api/v1"}
	for t := 1; t < tenants; t++ {
		id := fmt.Sprintf("bench-%d", t)
		body, _ := json.Marshal(server.CreateProjectRequest{
			ID: id,
			ProjectSpec: server.ProjectSpec{
				Condition: "n - o > 0.02 +/- 0.03", Reliability: 0.99, Steps: 4096,
				Labels: labels, Classes: 4, ModelName: "h0", ModelPredictions: h0,
			},
		})
		rec := httptest.NewRecorder()
		m.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/projects", bytes.NewReader(body)))
		if rec.Code != http.StatusCreated {
			b.Fatalf("create %s = %d: %s", id, rec.Code, rec.Body.String())
		}
		bases = append(bases, "/api/v1/projects/"+id)
	}
	commitBody, _ := json.Marshal(server.CommitRequest{
		Model: "candidate", Author: "bench", Predictions: mustSimPreds(b, labels, 0.8, 2),
	})
	// The candidate never beats h0, so the active model stays the genesis
	// baseline and this rotation is always valid when a budget runs dry.
	rotateBody, _ := json.Marshal(server.RotateRequest{Labels: labels, ActivePredictions: h0})
	var rr atomic.Uint64
	b.ResetTimer()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			base := bases[int(rr.Add(1))%tenants]
			ok := false
			for attempt := 0; attempt < 3 && !ok; attempt++ {
				rec := httptest.NewRecorder()
				m.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, base+"/commit", bytes.NewReader(commitBody)))
				if rec.Code == http.StatusOK {
					ok = true
					break
				}
				// Testset budget exhausted: rotate a fresh one in and retry.
				rot := httptest.NewRecorder()
				m.ServeHTTP(rot, httptest.NewRequest(http.MethodPost, base+"/testset", bytes.NewReader(rotateBody)))
			}
			if !ok {
				b.Fatalf("commit on %s kept failing", base)
			}
		}
	})
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "commits/s")
	}
}
