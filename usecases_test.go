package ci_test

// End-to-end integration tests for the five production use cases of
// Section 3.6 of the paper, each run through the public façade: script →
// plan → engine → signals/alarms/notifications.

import (
	"errors"
	"testing"

	ci "github.com/easeml/ci"
	"github.com/easeml/ci/internal/engine"
	"github.com/easeml/ci/internal/interval"
	"github.com/easeml/ci/internal/model"
	"github.com/easeml/ci/internal/notify"
)

// indexTestset builds an index-keyed testset for prediction-vector models.
func indexTestset(n, classes int) *ci.Dataset {
	ds := &ci.Dataset{Name: "usecase", Classes: classes}
	for i := 0; i < n; i++ {
		ds.X = append(ds.X, []float64{float64(i)})
		ds.Y = append(ds.Y, i%classes)
	}
	return ds
}

func fixedModel(t *testing.T, name string, ds *ci.Dataset, acc float64, seed int64) ci.Predictor {
	t.Helper()
	preds, err := model.SimulatedPredictions(ds.Y, ds.Classes, acc, seed)
	if err != nil {
		t.Fatal(err)
	}
	return model.NewFixedPredictions(name, preds)
}

// TestUseCaseF1WorstCaseQualityFloor: "n > [c]", non-adaptive, fn-free —
// quality control against accidentally terrible commits.
func TestUseCaseF1WorstCaseQualityFloor(t *testing.T) {
	ds := indexTestset(700, 4)
	cfg, err := ci.NewConfig("n > 0.6 +/- 0.1", 0.99, ci.FNFree,
		ci.Adaptivity{Kind: ci.AdaptivityNone, Email: "qa@team.example"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	outbox := ci.NewOutbox()
	eng, err := ci.NewEngine(cfg, ds, ci.NewTruthOracle(ds.Y), ci.EngineOptions{
		InitialModel: fixedModel(t, "h0", ds, 0.8, 1),
		Notifier:     outbox,
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name      string
		acc       float64
		wantTruth interval.Truth
		wantPass  bool
	}{
		{"solid", 0.90, interval.True, true},
		{"borderline", 0.65, interval.Unknown, true}, // fn-free accepts Unknown
		{"quality-bug", 0.30, interval.False, false}, // the case F1 exists for
	}
	for i, c := range cases {
		res, err := eng.Commit(fixedModel(t, c.name, ds, c.acc, int64(10+i)), "dev", c.name)
		if err != nil {
			t.Fatal(err)
		}
		if res.Truth != c.wantTruth || res.Pass != c.wantPass {
			t.Errorf("%s: truth=%v pass=%v, want %v/%v", c.name, res.Truth, res.Pass, c.wantTruth, c.wantPass)
		}
		if !res.Signal {
			t.Errorf("%s: non-adaptive mode must always signal accepted", c.name)
		}
	}
	// The integration team's inbox has all three true outcomes.
	results := outbox.ByKind(notify.KindResult)
	if len(results) != 3 {
		t.Fatalf("result notifications = %d, want 3", len(results))
	}
	for _, n := range results {
		if n.To != "qa@team.example" {
			t.Errorf("result routed to %q", n.To)
		}
	}
}

// TestUseCaseF2IncrementalImprovement: "n - o > [small c]", fully adaptive,
// fp-free — end-user-facing quality must only move up.
func TestUseCaseF2IncrementalImprovement(t *testing.T) {
	ds := indexTestset(1200, 4)
	cfg, err := ci.NewConfig("n - o > 0.02 +/- 0.05", 0.99, ci.FPFree,
		ci.Adaptivity{Kind: ci.AdaptivityFull}, 4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ci.NewEngine(cfg, ds, ci.NewTruthOracle(ds.Y), ci.EngineOptions{
		InitialModel: fixedModel(t, "v1", ds, 0.70, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	// A decisive improvement passes and is promoted.
	res, err := eng.Commit(fixedModel(t, "v2", ds, 0.85, 2), "dev", "big jump")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass || !res.Signal || eng.ActiveModelName() != "v2" {
		t.Errorf("decisive improvement rejected: %+v", res)
	}
	// A borderline improvement is Unknown and rejected fp-free: end users
	// never see an unverified "improvement".
	res, err = eng.Commit(fixedModel(t, "v3", ds, 0.88, 3), "dev", "small jump")
	if err != nil {
		t.Fatal(err)
	}
	if res.Truth != interval.Unknown || res.Pass {
		t.Errorf("borderline improvement: truth=%v pass=%v", res.Truth, res.Pass)
	}
	if eng.ActiveModelName() != "v2" {
		t.Error("rejected commit must not be promoted")
	}
}

// TestUseCaseF3QualityMilestones: "n - o > [large c]", firstChange hybrid,
// fp-free — only log 10-point jumps; the first pass retires the testset.
func TestUseCaseF3QualityMilestones(t *testing.T) {
	ds := indexTestset(900, 4)
	cfg, err := ci.NewConfig("n - o > 0.1 +/- 0.05", 0.99, ci.FPFree,
		ci.Adaptivity{Kind: ci.AdaptivityFirstChange}, 6)
	if err != nil {
		t.Fatal(err)
	}
	outbox := ci.NewOutbox()
	eng, err := ci.NewEngine(cfg, ds, ci.NewTruthOracle(ds.Y), ci.EngineOptions{
		InitialModel: fixedModel(t, "base", ds, 0.60, 1),
		Notifier:     outbox,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Incremental tinkering fails the milestone bar but keeps the testset.
	for i, acc := range []float64{0.62, 0.68} {
		res, err := eng.Commit(fixedModel(t, "tinker", ds, acc, int64(20+i)), "dev", "tinker")
		if err != nil {
			t.Fatal(err)
		}
		if res.Pass || res.NeedNewTestset {
			t.Fatalf("tinkering commit %d: pass=%v alarm=%v", i, res.Pass, res.NeedNewTestset)
		}
	}
	// The milestone passes and immediately retires the testset.
	res, err := eng.Commit(fixedModel(t, "milestone", ds, 0.80, 30), "dev", "milestone")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass || !res.NeedNewTestset {
		t.Fatalf("milestone: pass=%v alarm=%v", res.Pass, res.NeedNewTestset)
	}
	if len(outbox.ByKind(notify.KindAlarm)) != 1 {
		t.Error("milestone must trigger the new-testset alarm")
	}
	if _, err := eng.Commit(fixedModel(t, "next", ds, 0.82, 31), "dev", "next"); !errors.Is(err, engine.ErrNeedNewTestset) {
		t.Errorf("commit after milestone = %v, want ErrNeedNewTestset", err)
	}
	// Rotation re-arms the loop with the milestone model as baseline.
	next := indexTestset(900, 4)
	if err := eng.RotateTestset(next, ci.NewTruthOracle(next.Y), fixedModel(t, "milestone", next, 0.80, 32)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Commit(fixedModel(t, "post", next, 0.82, 33), "dev", "post"); err != nil {
		t.Errorf("post-rotation commit failed: %v", err)
	}
}

// TestUseCaseF4NoSignificantChanges: "d < [c]", fn-free — an end-user-facing
// application must not change behaviour wildly between versions.
func TestUseCaseF4NoSignificantChanges(t *testing.T) {
	ds := indexTestset(1600, 4)
	cfg, err := ci.NewConfig("d < 0.15 +/- 0.05", 0.99, ci.FNFree,
		ci.Adaptivity{Kind: ci.AdaptivityFull}, 4)
	if err != nil {
		t.Fatal(err)
	}
	basePreds, err := model.SimulatedPredictions(ds.Y, 4, 0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ci.NewEngine(cfg, ds, ci.NewTruthOracle(ds.Y), ci.EngineOptions{
		InitialModel: model.NewFixedPredictions("prod", basePreds),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Evolve variants of the production model with controlled disagreement.
	variant := func(name string, d float64, seed int64) ci.Predictor {
		preds, err := model.Evolve(basePreds, ds.Y, 4, 0, d, seed)
		if err != nil {
			t.Fatal(err)
		}
		return model.NewFixedPredictions(name, preds)
	}
	cases := []struct {
		name     string
		d        float64
		want     interval.Truth
		wantPass bool
	}{
		{"refactor", 0.05, interval.True, true},      // clearly within budget
		{"borderline", 0.13, interval.Unknown, true}, // fn-free accepts
		{"rewrite", 0.35, interval.False, false},     // provably too different
	}
	for i, c := range cases {
		res, err := eng.Commit(variant(c.name, c.d, int64(40+i)), "dev", c.name)
		if err != nil {
			t.Fatal(err)
		}
		if res.Truth != c.want || res.Pass != c.wantPass {
			t.Errorf("%s (d=%v): truth=%v pass=%v, want %v/%v",
				c.name, c.d, res.Truth, res.Pass, c.want, c.wantPass)
		}
	}
}

// TestUseCaseF5Compositional: F4 /\ F2 — "the most popular test condition":
// quality must improve AND predictions must not change dramatically. This
// is exactly Pattern 1, so active labeling kicks in.
func TestUseCaseF5Compositional(t *testing.T) {
	ds := indexTestset(2500, 4)
	cfg, err := ci.NewConfig("d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.03", 0.99, ci.FPFree,
		ci.Adaptivity{Kind: ci.AdaptivityNone, Email: "qa@team.example"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ci.PlanForConfig(cfg, ci.DefaultPlannerOptions())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind.String() != "pattern1" {
		t.Fatalf("plan kind = %v, want pattern1", plan.Kind)
	}
	oldPreds, newPreds, err := model.SimulatedPair(ds.Y, 4, 0.80, 0.87, 0.08, 5)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ci.NewEngine(cfg, ds, ci.NewTruthOracle(ds.Y), ci.EngineOptions{
		InitialModel: model.NewFixedPredictions("prod", oldPreds),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Commit(model.NewFixedPredictions("candidate", newPreds), "dev", "fine-tune")
	if err != nil {
		t.Fatal(err)
	}
	if res.Truth != interval.True || !res.Pass {
		t.Fatalf("good candidate rejected: truth=%v estimates=%v", res.Truth, res.Estimates)
	}
	// Active labeling: far fewer labels than the testset size.
	if res.FreshLabels >= ds.Len()/4 {
		t.Errorf("active labeling spent %d labels on a %d testset", res.FreshLabels, ds.Len())
	}
	// A candidate that improves but changes too much fails the F4 guard.
	// (d = 0.30 is near the feasibility ceiling for accuracies 0.80/0.85:
	// disagreement cannot exceed the total wrong mass of the two models.)
	_, wildPreds, err := model.SimulatedPair(ds.Y, 4, 0.80, 0.85, 0.30, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Re-anchor the wild candidate against the promoted model's predictions:
	// disagreement with the new baseline is what the engine measures.
	res, err = eng.Commit(model.NewFixedPredictions("wild", wildPreds), "dev", "wild rewrite")
	if err != nil {
		t.Fatal(err)
	}
	if res.Truth == interval.True || res.Pass {
		t.Errorf("wild candidate accepted: truth=%v estimates=%v", res.Truth, res.Estimates)
	}
}
