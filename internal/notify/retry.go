package notify

import (
	"container/heap"
	"math/rand"
	"sync"
	"time"

	"github.com/easeml/ci/internal/resilience"
)

// RetryPolicy tunes reliable delivery. The zero value means the defaults.
type RetryPolicy struct {
	// MaxAttempts bounds deliveries per notification (first attempt
	// included). 0 means DefaultMaxAttempts.
	MaxAttempts int
	// Backoff is the delay before the second attempt; each further retry
	// doubles it, capped at MaxBackoff, then stretched by up to 2x of
	// multiplicative jitter so a burst of failures doesn't re-fire in
	// lockstep. Zeros mean DefaultBackoff / DefaultMaxBackoff.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Breaker tunes the per-subscriber circuit breakers.
	Breaker BreakerOptions
}

// Retry defaults.
const (
	DefaultMaxAttempts = 5
	DefaultBackoff     = 250 * time.Millisecond
	DefaultMaxBackoff  = 30 * time.Second
)

// ReliableOptions configures a Reliable deliverer.
type ReliableOptions struct {
	Policy RetryPolicy
	// Clock supplies the current time (tests inject a fake); nil means
	// time.Now. Backoff scheduling and latency measurement both use it.
	Clock func() time.Time
	// Jitter returns a value in [0,1) used to stretch backoff delays;
	// nil means math/rand. Tests inject a constant for determinism.
	Jitter func() float64
	// Manual disables the background worker; delivery happens only when
	// the caller invokes RunDue. This is the deterministic test harness,
	// mirroring the commit queue's manual mode.
	Manual bool
	// OnOutcome, when set, is called once per notification that reaches a
	// terminal outcome: delivered, or failed with its attempts exhausted.
	// Notifications abandoned mid-backoff by Close do NOT get an outcome —
	// for the durable server that absence is exactly what schedules
	// redelivery after restart. Runs without the Reliable lock held.
	OnOutcome func(n Notification, delivered bool, attempts int, err error)
}

// KindRetryStats aggregates delivery work for one notification kind.
type KindRetryStats struct {
	Attempts  uint64 `json:"attempts"`
	Delivered uint64 `json:"delivered"`
	// NsTotal is cumulative wall time inside the underlying Send, so
	// NsTotal/Attempts is the per-kind delivery latency.
	NsTotal uint64 `json:"ns_total"`
}

// RetryStats is the deliverer's counter snapshot for the metrics API.
type RetryStats struct {
	Enqueued  uint64 `json:"enqueued"`
	Attempts  uint64 `json:"attempts"`
	Delivered uint64 `json:"delivered"`
	// Failed counts notifications whose attempts were exhausted.
	Failed uint64 `json:"failed"`
	// Retries counts rescheduled attempts after a failure.
	Retries uint64 `json:"retries"`
	// Abandoned counts notifications dropped by Close while waiting out a
	// backoff (a durable server redelivers them on restart).
	Abandoned uint64 `json:"abandoned"`
	// ShortCircuited counts attempts skipped because the subscriber's
	// breaker was open.
	ShortCircuited uint64 `json:"short_circuited"`
	// Pending is the point-in-time scheduled backlog.
	Pending int `json:"pending"`
	// PerKind breaks attempts and latency down by notification kind.
	PerKind map[string]KindRetryStats `json:"per_kind,omitempty"`
	// Breakers reports each subscriber's circuit breaker.
	Breakers map[string]BreakerStatus `json:"breakers,omitempty"`
}

// task is one scheduled delivery.
type task struct {
	n        Notification
	attempts int
	due      time.Time
	seq      uint64 // FIFO tie-break for equal due times
	lastErr  error
}

// taskHeap is a min-heap by due time (then submission order).
type taskHeap []*task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].due.Equal(h[j].due) {
		return h[i].seq < h[j].seq
	}
	return h[i].due.Before(h[j].due)
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(*task)) }
func (h *taskHeap) Pop() any     { old := *h; n := len(old); t := old[n-1]; *h = old[:n-1]; return t }

// Reliable wraps a Notifier with a durable-delivery discipline: every
// Send is queued, attempted, and — on failure — retried with exponential
// backoff and jitter up to a bounded attempt count, behind a
// per-subscriber circuit breaker. Safe for concurrent use.
type Reliable struct {
	base Notifier
	opts ReliableOptions

	mu       sync.Mutex
	heap     taskHeap
	breakers map[string]*resilience.Breaker
	nextSeq  uint64
	closed   bool
	stats    RetryStats
	perKind  map[string]*KindRetryStats

	wake chan struct{}
	wg   sync.WaitGroup
}

// NewReliable wraps base. Callers must Close it to drain scheduled work.
func NewReliable(base Notifier, opts ReliableOptions) *Reliable {
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.Jitter == nil {
		opts.Jitter = rand.Float64
	}
	r := &Reliable{
		base:     base,
		opts:     opts,
		breakers: make(map[string]*resilience.Breaker),
		perKind:  make(map[string]*KindRetryStats),
		wake:     make(chan struct{}, 1),
	}
	if !opts.Manual {
		r.wg.Add(1)
		go r.worker()
	}
	return r
}

func (r *Reliable) maxAttempts() int {
	if n := r.opts.Policy.MaxAttempts; n > 0 {
		return n
	}
	return DefaultMaxAttempts
}

// Send implements Notifier: it schedules the notification for immediate
// delivery and returns once queued (delivery is asynchronous; terminal
// outcomes surface through OnOutcome and the stats). After Close it
// falls back to one synchronous attempt, so late senders racing shutdown
// still deliver.
func (r *Reliable) Send(n Notification) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		_, err := r.attemptWire(n)
		r.finish(n, err == nil, 1, err)
		return err
	}
	r.stats.Enqueued++
	r.pushLocked(&task{n: n, due: r.opts.Clock()})
	r.mu.Unlock()
	r.signal()
	return nil
}

func (r *Reliable) pushLocked(t *task) {
	r.nextSeq++
	t.seq = r.nextSeq
	heap.Push(&r.heap, t)
}

func (r *Reliable) signal() {
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// worker is the background delivery loop: sleep until the earliest task
// is due (or a new task arrives), then attempt it.
func (r *Reliable) worker() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		if r.closed {
			r.drainLocked()
			r.mu.Unlock()
			return
		}
		if len(r.heap) == 0 {
			r.mu.Unlock()
			<-r.wake
			continue
		}
		now := r.opts.Clock()
		next := r.heap[0]
		if wait := next.due.Sub(now); wait > 0 {
			r.mu.Unlock()
			timer := time.NewTimer(wait)
			select {
			case <-r.wake:
				timer.Stop()
			case <-timer.C:
			}
			continue
		}
		t := heap.Pop(&r.heap).(*task)
		r.mu.Unlock()
		r.attempt(t)
	}
}

// RunDue attempts the earliest task whose due time has arrived (by the
// injected clock), returning false when nothing is due. Only meaningful
// with Options.Manual — it is the deterministic harness's drive wheel.
func (r *Reliable) RunDue() bool {
	r.mu.Lock()
	if len(r.heap) == 0 || r.heap[0].due.After(r.opts.Clock()) {
		r.mu.Unlock()
		return false
	}
	t := heap.Pop(&r.heap).(*task)
	r.mu.Unlock()
	r.attempt(t)
	return true
}

// NextDue returns the earliest scheduled time and whether any task is
// pending; a manual-mode test advances its fake clock past it.
func (r *Reliable) NextDue() (time.Time, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.heap) == 0 {
		return time.Time{}, false
	}
	return r.heap[0].due, true
}

// attempt runs one delivery attempt and reschedules or finishes the task.
func (r *Reliable) attempt(t *task) {
	r.mu.Lock()
	now := r.opts.Clock()
	b := r.breakerLocked(t.n.To)
	if b != nil {
		if ok, retryAt := b.Allow(now, r.opts.Policy.Breaker); !ok {
			// Short-circuit: reschedule for the cooldown expiry without
			// consuming one of the task's attempts.
			r.stats.ShortCircuited++
			t.due = retryAt
			r.pushLocked(t)
			r.mu.Unlock()
			r.signal()
			return
		}
	}
	r.mu.Unlock()

	elapsed, err := r.attemptWire(t.n)
	t.attempts++

	r.mu.Lock()
	now = r.opts.Clock()
	if b != nil {
		b.Record(err == nil, now, r.opts.Policy.Breaker)
	}
	r.recordAttemptLocked(t.n.Kind, err == nil, elapsed)
	if err == nil {
		r.mu.Unlock()
		r.finish(t.n, true, t.attempts, nil)
		return
	}
	t.lastErr = err
	if t.attempts >= r.maxAttempts() {
		r.stats.Failed++
		r.mu.Unlock()
		r.finish(t.n, false, t.attempts, err)
		return
	}
	r.stats.Retries++
	delay := r.backoff(t.attempts)
	if ra, ok := resilience.RetryAfterFromError(err); ok {
		// The subscriber said when to come back (429/503 Retry-After):
		// honor it verbatim instead of the computed backoff — no jitter,
		// the peer picked the time.
		delay = ra
	}
	t.due = now.Add(delay)
	r.pushLocked(t)
	r.mu.Unlock()
	r.signal()
}

// attemptWire performs one underlying Send, timing it with the injected
// clock.
func (r *Reliable) attemptWire(n Notification) (time.Duration, error) {
	start := r.opts.Clock()
	err := r.base.Send(n)
	return r.opts.Clock().Sub(start), err
}

func (r *Reliable) recordAttemptLocked(k Kind, delivered bool, elapsed time.Duration) {
	r.stats.Attempts++
	ks := r.perKind[k.String()]
	if ks == nil {
		ks = &KindRetryStats{}
		r.perKind[k.String()] = ks
	}
	ks.Attempts++
	if elapsed > 0 {
		ks.NsTotal += uint64(elapsed.Nanoseconds())
	}
	if delivered {
		r.stats.Delivered++
		ks.Delivered++
	}
}

// backoff computes the delay after the given number of failed attempts:
// base * 2^(attempts-1), capped, stretched by [1,2)x jitter.
func (r *Reliable) backoff(attempts int) time.Duration {
	base := r.opts.Policy.Backoff
	if base <= 0 {
		base = DefaultBackoff
	}
	max := r.opts.Policy.MaxBackoff
	if max <= 0 {
		max = DefaultMaxBackoff
	}
	d := resilience.Backoff(base, max, attempts)
	return d + time.Duration(float64(d)*r.opts.Jitter())
}

// breakerLocked returns (creating if needed) the subscriber's breaker,
// or nil when breakers are disabled.
func (r *Reliable) breakerLocked(to string) *resilience.Breaker {
	if r.opts.Policy.Breaker.FailureThreshold < 0 {
		return nil
	}
	b := r.breakers[to]
	if b == nil {
		b = &resilience.Breaker{}
		r.breakers[to] = b
	}
	return b
}

// finish reports a terminal outcome.
func (r *Reliable) finish(n Notification, delivered bool, attempts int, err error) {
	if r.opts.OnOutcome != nil {
		r.opts.OnOutcome(n, delivered, attempts, err)
	}
}

// drainLocked empties the schedule at Close: never-attempted tasks get
// one delivery attempt (an in-memory server must not lose first-time
// callbacks at shutdown), tasks already waiting out a backoff are
// abandoned — their missing terminal outcome is what makes a durable
// server redeliver them after restart. Called with the lock held;
// releases and reacquires it around wire attempts.
func (r *Reliable) drainLocked() {
	for len(r.heap) > 0 {
		t := heap.Pop(&r.heap).(*task)
		if t.attempts > 0 {
			r.stats.Abandoned++
			continue
		}
		r.mu.Unlock()
		elapsed, err := r.attemptWire(t.n)
		r.mu.Lock()
		if b := r.breakerLocked(t.n.To); b != nil {
			b.Record(err == nil, r.opts.Clock(), r.opts.Policy.Breaker)
		}
		r.recordAttemptLocked(t.n.Kind, err == nil, elapsed)
		if err == nil {
			r.mu.Unlock()
			r.finish(t.n, true, 1, nil)
			r.mu.Lock()
		} else {
			r.stats.Abandoned++
		}
	}
}

// Close stops the deliverer: scheduled first attempts are delivered,
// pending retries are abandoned, and Close returns once in-flight work
// has finished. Idempotent.
func (r *Reliable) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		r.wg.Wait()
		return
	}
	r.closed = true
	manual := r.opts.Manual
	if manual {
		r.drainLocked()
	}
	r.mu.Unlock()
	r.signal()
	r.wg.Wait()
}

// Stats snapshots the delivery counters and breaker states.
func (r *Reliable) Stats() RetryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.Pending = len(r.heap)
	s.PerKind = make(map[string]KindRetryStats, len(r.perKind))
	for k, v := range r.perKind {
		s.PerKind[k] = *v
	}
	s.Breakers = make(map[string]BreakerStatus, len(r.breakers))
	for to, b := range r.breakers {
		s.Breakers[to] = b.Status()
	}
	return s
}
