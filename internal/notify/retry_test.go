package notify

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable clock for the manual harness.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// flakyNotifier fails the first failN sends to each To, then succeeds.
type flakyNotifier struct {
	mu       sync.Mutex
	failN    int
	attempts map[string]int
	sent     []Notification
}

func (f *flakyNotifier) Send(n Notification) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.attempts == nil {
		f.attempts = make(map[string]int)
	}
	f.attempts[n.To]++
	if f.attempts[n.To] <= f.failN {
		return fmt.Errorf("flaky: attempt %d refused", f.attempts[n.To])
	}
	f.sent = append(f.sent, n)
	return nil
}

func (f *flakyNotifier) delivered() []Notification {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Notification, len(f.sent))
	copy(out, f.sent)
	return out
}

// manualReliable builds a deterministic manual-mode deliverer.
func manualReliable(base Notifier, clock *fakeClock, policy RetryPolicy, onOutcome func(Notification, bool, int, error)) *Reliable {
	return NewReliable(base, ReliableOptions{
		Policy:    policy,
		Clock:     clock.Now,
		Jitter:    func() float64 { return 0 }, // no jitter: exact schedule
		Manual:    true,
		OnOutcome: onOutcome,
	})
}

// drive advances the fake clock to each next-due task and runs it, up to
// maxSteps, returning how many attempts ran.
func drive(r *Reliable, clock *fakeClock, maxSteps int) int {
	steps := 0
	for steps < maxSteps {
		due, ok := r.NextDue()
		if !ok {
			return steps
		}
		if due.After(clock.Now()) {
			clock.Advance(due.Sub(clock.Now()))
		}
		if !r.RunDue() {
			return steps
		}
		steps++
	}
	return steps
}

// TestFlakyReceiverDeliveredExactlyOnce is the acceptance scenario: a
// subscriber that fails 3 times is delivered exactly once after backoff.
func TestFlakyReceiverDeliveredExactlyOnce(t *testing.T) {
	clock := newFakeClock()
	flaky := &flakyNotifier{failN: 3}
	var outcomes []bool
	r := manualReliable(flaky, clock, RetryPolicy{MaxAttempts: 5, Backoff: time.Second, MaxBackoff: time.Minute},
		func(n Notification, delivered bool, attempts int, err error) {
			outcomes = append(outcomes, delivered)
			if delivered && attempts != 4 {
				t.Errorf("delivered after %d attempts, want 4", attempts)
			}
		})
	if err := r.Send(Notification{Kind: KindWebhook, To: "http://sub", Body: "payload"}); err != nil {
		t.Fatal(err)
	}
	if got := drive(r, clock, 100); got != 4 {
		t.Fatalf("ran %d attempts, want 4", got)
	}
	if d := flaky.delivered(); len(d) != 1 || d[0].Body != "payload" {
		t.Fatalf("delivered %v, want exactly one", d)
	}
	if len(outcomes) != 1 || !outcomes[0] {
		t.Fatalf("outcomes = %v", outcomes)
	}
	st := r.Stats()
	if st.Attempts != 4 || st.Delivered != 1 || st.Retries != 3 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	r.Close()
}

// TestBackoffScheduleExponential pins the exact (jitter-free) schedule:
// base, 2*base, 4*base, capped.
func TestBackoffScheduleExponential(t *testing.T) {
	clock := newFakeClock()
	start := clock.Now()
	flaky := &flakyNotifier{failN: 100} // never succeeds
	r := manualReliable(flaky, clock, RetryPolicy{
		MaxAttempts: 4, Backoff: time.Second, MaxBackoff: 3 * time.Second,
		Breaker: BreakerOptions{FailureThreshold: -1},
	}, nil)
	r.Send(Notification{Kind: KindWebhook, To: "http://sub"})
	wantDelays := []time.Duration{0, time.Second, 3 * time.Second, 6 * time.Second} // cumulative: 2^k capped at 3s
	for i, want := range wantDelays {
		due, ok := r.NextDue()
		if !ok {
			t.Fatalf("step %d: nothing scheduled", i)
		}
		if got := due.Sub(start); got != want {
			t.Fatalf("step %d scheduled at +%v, want +%v", i, got, want)
		}
		clock.Advance(due.Sub(clock.Now()))
		if !r.RunDue() {
			t.Fatalf("step %d: RunDue found nothing", i)
		}
	}
	if _, ok := r.NextDue(); ok {
		t.Fatal("task still scheduled after exhausting attempts")
	}
	if st := r.Stats(); st.Failed != 1 || st.Attempts != 4 {
		t.Fatalf("stats = %+v", st)
	}
	r.Close()
}

func TestJitterStretchesBackoff(t *testing.T) {
	clock := newFakeClock()
	flaky := &flakyNotifier{failN: 100}
	r := NewReliable(flaky, ReliableOptions{
		Policy: RetryPolicy{MaxAttempts: 2, Backoff: time.Second, Breaker: BreakerOptions{FailureThreshold: -1}},
		Clock:  clock.Now,
		Jitter: func() float64 { return 0.5 },
		Manual: true,
	})
	r.Send(Notification{Kind: KindWebhook, To: "http://sub"})
	r.RunDue()
	due, ok := r.NextDue()
	if !ok {
		t.Fatal("no retry scheduled")
	}
	if got := due.Sub(clock.Now()); got != 1500*time.Millisecond {
		t.Fatalf("jittered backoff = %v, want 1.5s", got)
	}
	r.Close()
}

// TestBreakerLifecycle walks closed -> open -> half-open -> closed.
func TestBreakerLifecycle(t *testing.T) {
	clock := newFakeClock()
	flaky := &flakyNotifier{failN: 3}
	policy := RetryPolicy{
		MaxAttempts: 10, Backoff: time.Second, MaxBackoff: time.Second,
		Breaker: BreakerOptions{FailureThreshold: 2, Cooldown: time.Minute},
	}
	r := manualReliable(flaky, clock, policy, nil)
	r.Send(Notification{Kind: KindWebhook, To: "http://sub"})

	// Attempts 1 and 2 fail -> breaker opens.
	drive(r, clock, 2)
	st := r.Stats()
	b := st.Breakers["http://sub"]
	if b.State != "open" || b.ConsecutiveFailures != 2 || b.Opens != 1 {
		t.Fatalf("after 2 failures: breaker = %+v", b)
	}

	// The next wakeup short-circuits (cooldown not elapsed) and
	// reschedules at the cooldown expiry without consuming an attempt.
	due, _ := r.NextDue()
	clock.Advance(due.Sub(clock.Now()))
	r.RunDue()
	st = r.Stats()
	if st.ShortCircuited != 1 || st.Attempts != 2 {
		t.Fatalf("short-circuit: stats = %+v", st)
	}

	// At cooldown expiry the breaker half-opens; the probe (attempt 3)
	// still fails -> re-opens.
	drive(r, clock, 1)
	st = r.Stats()
	if b := st.Breakers["http://sub"]; b.State != "open" || b.Opens != 2 {
		t.Fatalf("failed probe: breaker = %+v", b)
	}

	// Next probe succeeds -> breaker closes, task delivered.
	drive(r, clock, 5)
	st = r.Stats()
	if b := st.Breakers["http://sub"]; b.State != "closed" || b.ConsecutiveFailures != 0 {
		t.Fatalf("after recovery: breaker = %+v", b)
	}
	if st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(flaky.delivered()) != 1 {
		t.Fatal("not delivered exactly once")
	}
	r.Close()
}

// TestBreakerIsolatesSubscribers: one subscriber's failures must not
// block another's deliveries.
func TestBreakerIsolatesSubscribers(t *testing.T) {
	clock := newFakeClock()
	flaky := &flakyNotifier{failN: 0}
	bad := &flakyNotifier{failN: 100}
	split := notifierFunc(func(n Notification) error {
		if n.To == "http://bad" {
			return bad.Send(n)
		}
		return flaky.Send(n)
	})
	r := manualReliable(split, clock, RetryPolicy{
		MaxAttempts: 3, Backoff: time.Second,
		Breaker: BreakerOptions{FailureThreshold: 1, Cooldown: time.Hour},
	}, nil)
	r.Send(Notification{Kind: KindWebhook, To: "http://bad"})
	r.Send(Notification{Kind: KindWebhook, To: "http://good"})
	drive(r, clock, 10)
	if len(flaky.delivered()) != 1 {
		t.Fatalf("good subscriber got %d deliveries, want 1", len(flaky.delivered()))
	}
	st := r.Stats()
	if st.Breakers["http://bad"].State != "open" {
		t.Fatalf("bad breaker = %+v", st.Breakers["http://bad"])
	}
	if st.Breakers["http://good"].State != "closed" {
		t.Fatalf("good breaker = %+v", st.Breakers["http://good"])
	}
	r.Close()
}

type notifierFunc func(Notification) error

func (f notifierFunc) Send(n Notification) error { return f(n) }

// TestCloseDrainsFirstAttemptsAbandonsRetries: Close must deliver queued
// first attempts but abandon mid-backoff retries without an outcome (the
// durable server redelivers those after restart).
func TestCloseDrainsFirstAttemptsAbandonsRetries(t *testing.T) {
	clock := newFakeClock()
	flaky := &flakyNotifier{failN: 100}
	outcomes := 0
	r := manualReliable(flaky, clock, RetryPolicy{MaxAttempts: 5, Backoff: time.Hour},
		func(Notification, bool, int, error) { outcomes++ })
	r.Send(Notification{Kind: KindWebhook, To: "http://sub", Subject: "retrying"})
	r.RunDue() // first attempt fails; retry scheduled an hour out
	ok := &flakyNotifier{failN: 0}
	r2 := manualReliable(ok, clock, RetryPolicy{}, func(n Notification, d bool, a int, e error) {
		if !d {
			t.Error("first-attempt drain should deliver")
		}
		outcomes++
	})
	r2.Send(Notification{Kind: KindWebhook, To: "http://sub2", Subject: "fresh"})
	r.Close()
	r2.Close()
	if st := r.Stats(); st.Abandoned != 1 {
		t.Fatalf("retrying task: stats = %+v", st)
	}
	if len(ok.delivered()) != 1 {
		t.Fatal("fresh task not delivered at Close")
	}
	if outcomes != 1 {
		t.Fatalf("outcomes = %d, want 1 (abandoned task gets none)", outcomes)
	}
}

func TestSendAfterCloseDeliversInline(t *testing.T) {
	clock := newFakeClock()
	ok := &flakyNotifier{failN: 0}
	r := manualReliable(ok, clock, RetryPolicy{}, nil)
	r.Close()
	if err := r.Send(Notification{Kind: KindWebhook, To: "http://sub"}); err != nil {
		t.Fatal(err)
	}
	if len(ok.delivered()) != 1 {
		t.Fatal("post-Close send not delivered inline")
	}
}

// TestBackgroundFlakyDelivery runs the real background worker against a
// flaky HTTP receiver with tiny backoffs.
func TestBackgroundFlakyDelivery(t *testing.T) {
	var mu sync.Mutex
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		mu.Lock()
		hits++
		n := hits
		mu.Unlock()
		if n <= 3 {
			http.Error(w, "not yet", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	done := make(chan struct{})
	r := NewReliable(NewHTTPPoster(nil), ReliableOptions{
		Policy: RetryPolicy{MaxAttempts: 6, Backoff: 2 * time.Millisecond, MaxBackoff: 10 * time.Millisecond},
		OnOutcome: func(n Notification, delivered bool, attempts int, err error) {
			if !delivered || attempts != 4 {
				t.Errorf("delivered=%v attempts=%d err=%v", delivered, attempts, err)
			}
			close(done)
		},
	})
	defer r.Close()
	if err := r.Send(Notification{Kind: KindWebhook, To: srv.URL, Body: `{"x":1}`}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for delivery")
	}
	mu.Lock()
	defer mu.Unlock()
	if hits != 4 {
		t.Fatalf("receiver saw %d posts, want 4 (3 failures + 1 success)", hits)
	}
}

func TestHTTPPosterRequestTimeout(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		<-release
	}))
	defer srv.Close()
	defer close(release)
	p := NewHTTPPosterTimeout(nil, 30*time.Millisecond)
	start := time.Now()
	err := p.Send(Notification{Kind: KindWebhook, To: srv.URL, Body: "{}"})
	if err == nil {
		t.Fatal("hung subscriber did not time out")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("timeout took %v", time.Since(start))
	}
}

func TestHTTPPosterSendContextCancel(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		<-release
	}))
	defer srv.Close()
	defer close(release)
	p := NewHTTPPoster(nil)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(20 * time.Millisecond); cancel() }()
	if err := p.SendContext(ctx, Notification{Kind: KindWebhook, To: srv.URL}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPerKindLatencyStats(t *testing.T) {
	clock := newFakeClock()
	slow := notifierFunc(func(Notification) error {
		clock.Advance(5 * time.Millisecond) // the "wire time" under the fake clock
		return nil
	})
	r := manualReliable(slow, clock, RetryPolicy{}, nil)
	r.Send(Notification{Kind: KindWebhook, To: "http://sub"})
	r.Send(Notification{Kind: KindAlarm, To: "team"})
	drive(r, clock, 10)
	st := r.Stats()
	wh := st.PerKind["webhook"]
	if wh.Attempts != 1 || wh.Delivered != 1 || wh.NsTotal != uint64(5*time.Millisecond) {
		t.Fatalf("webhook kind stats = %+v", wh)
	}
	if st.PerKind["alarm"].Attempts != 1 {
		t.Fatalf("alarm kind stats = %+v", st.PerKind["alarm"])
	}
	r.Close()
}

// hintingNotifier refuses the first failN sends with a 429 carrying a
// Retry-After hint, then succeeds.
type hintingNotifier struct {
	mu       sync.Mutex
	failN    int
	retryIn  time.Duration
	attempts int
}

func (h *hintingNotifier) Send(n Notification) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.attempts++
	if h.attempts <= h.failN {
		return &StatusError{
			URL: n.To, StatusCode: http.StatusTooManyRequests, Status: "429 Too Many Requests",
			RetryIn: h.retryIn, HasRetryIn: true,
		}
	}
	return nil
}

// TestRetryAfterOverridesBackoff: a subscriber's Retry-After hint sets
// the next attempt verbatim — no exponential backoff, no jitter; the
// peer picked the time.
func TestRetryAfterOverridesBackoff(t *testing.T) {
	clock := newFakeClock()
	start := clock.Now()
	hinting := &hintingNotifier{failN: 2, retryIn: 42 * time.Second}
	r := manualReliable(hinting, clock, RetryPolicy{
		MaxAttempts: 4, Backoff: time.Second, MaxBackoff: 3 * time.Second,
		Breaker: BreakerOptions{FailureThreshold: -1},
	}, nil)
	r.Send(Notification{Kind: KindWebhook, To: "http://sub"})
	// Backoff alone would schedule +1s then +3s; the hint says +42s both
	// times.
	wantDelays := []time.Duration{0, 42 * time.Second, 84 * time.Second}
	for i, want := range wantDelays {
		due, ok := r.NextDue()
		if !ok {
			t.Fatalf("step %d: nothing scheduled", i)
		}
		if got := due.Sub(start); got != want {
			t.Fatalf("step %d scheduled at +%v, want +%v", i, got, want)
		}
		clock.Advance(due.Sub(clock.Now()))
		if !r.RunDue() {
			t.Fatalf("step %d: RunDue found nothing", i)
		}
	}
	if st := r.Stats(); st.Delivered != 1 || st.Attempts != 3 || st.Retries != 2 {
		t.Fatalf("stats = %+v", st)
	}
	r.Close()
}
