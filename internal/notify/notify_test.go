package notify

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestOutbox(t *testing.T) {
	o := NewOutbox()
	if err := o.Send(Notification{Kind: KindResult, To: "a@b.c", Subject: "s1", Body: "b1"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Send(Notification{Kind: KindAlarm, To: "team", Subject: "s2", Body: "b2"}); err != nil {
		t.Fatal(err)
	}
	msgs := o.Messages()
	if len(msgs) != 2 {
		t.Fatalf("messages = %d", len(msgs))
	}
	if msgs[0].Seq != 1 || msgs[1].Seq != 2 {
		t.Errorf("sequence numbers wrong: %d, %d", msgs[0].Seq, msgs[1].Seq)
	}
	if len(o.ByKind(KindAlarm)) != 1 || o.ByKind(KindAlarm)[0].Subject != "s2" {
		t.Error("ByKind filter wrong")
	}
	// Messages must return a copy.
	msgs[0].Subject = "mutated"
	if o.Messages()[0].Subject != "s1" {
		t.Error("Messages leaked internal state")
	}
}

func TestOutboxConcurrent(t *testing.T) {
	o := NewOutbox()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = o.Send(Notification{Kind: KindResult, To: "x", Subject: "s", Body: "b"})
		}()
	}
	wg.Wait()
	if len(o.Messages()) != 50 {
		t.Errorf("concurrent sends = %d, want 50", len(o.Messages()))
	}
	seen := map[int]bool{}
	for _, m := range o.Messages() {
		if seen[m.Seq] {
			t.Fatalf("duplicate seq %d", m.Seq)
		}
		seen[m.Seq] = true
	}
}

func TestFileOutbox(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outbox.txt")
	f, err := NewFileOutbox(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Send(Notification{Kind: KindResult, To: "dev@x", Subject: "hello", Body: "body text"}); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(Notification{Kind: KindAlarm, To: "team", Subject: "alarm", Body: "rotate"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{"message 1", "message 2", "to: dev@x", "subject: alarm", "body text", "kind: result", "kind: alarm"} {
		if !strings.Contains(text, want) {
			t.Errorf("outbox file missing %q:\n%s", want, text)
		}
	}
}

func TestFileOutboxBadPath(t *testing.T) {
	if _, err := NewFileOutbox(filepath.Join(t.TempDir(), "missing", "x.txt")); err == nil {
		t.Error("unwritable path should fail")
	}
}

func TestDiscard(t *testing.T) {
	if err := (Discard{}).Send(Notification{}); err != nil {
		t.Error("Discard must never fail")
	}
}

func TestKindString(t *testing.T) {
	if KindResult.String() != "result" || KindAlarm.String() != "alarm" || KindWebhook.String() != "webhook" {
		t.Error("Kind.String wrong")
	}
	if Kind(9).String() == "" {
		t.Error("default Kind.String empty")
	}
}

func TestHTTPPosterDelivers(t *testing.T) {
	var mu sync.Mutex
	var gotBody, gotType string
	recv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		raw, _ := io.ReadAll(r.Body)
		mu.Lock()
		gotBody, gotType = string(raw), r.Header.Get("Content-Type")
		mu.Unlock()
	}))
	defer recv.Close()
	p := NewHTTPPoster(nil)
	err := p.Send(Notification{Kind: KindWebhook, To: recv.URL, Body: `{"job_id":"job-1"}`})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if gotBody != `{"job_id":"job-1"}` || gotType != "application/json" {
		t.Errorf("delivered body=%q type=%q", gotBody, gotType)
	}
}

func TestHTTPPosterErrors(t *testing.T) {
	p := NewHTTPPoster(nil)
	for _, bad := range []string{"", "not-a-url", "ftp://x.y/hook", "http://"} {
		if err := p.Send(Notification{To: bad}); err == nil {
			t.Errorf("target %q should be rejected", bad)
		}
	}
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer failing.Close()
	if err := p.Send(Notification{To: failing.URL, Body: "{}"}); err == nil {
		t.Error("5xx subscriber answer should be an error")
	}
	failing.Close()
	if err := p.Send(Notification{To: failing.URL, Body: "{}"}); err == nil {
		t.Error("unreachable subscriber should be an error")
	}
}
