// Package notify abstracts the outbound channels of ease.ml/ci: the
// third-party address that receives true test results in the non-adaptive
// mode ("adaptivity: none -> xx@abc.com"), the new-testset alarm sent
// to the integration team (Section 2.3), and the webhook callbacks the
// async commit pipeline fires when a queued job finishes. The e-mail
// channels are simulated with an in-memory or file-backed outbox; the
// information-flow property that matters — the developer cannot read the
// channel — is preserved by construction. Webhooks are delivered for real
// over HTTP by HTTPPoster, or captured by the same Outbox in tests.
package notify

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/easeml/ci/internal/resilience"
)

// Kind classifies notifications.
type Kind int

const (
	// KindResult carries a true pass/fail outcome (non-adaptive mode).
	KindResult Kind = iota
	// KindAlarm is the new-testset alarm.
	KindAlarm
	// KindWebhook carries a JSON payload for a subscriber URL (the async
	// commit pipeline's job-finished callback); To is the URL and Body
	// the payload.
	KindWebhook
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindResult:
		return "result"
	case KindAlarm:
		return "alarm"
	case KindWebhook:
		return "webhook"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Notification is one outbound message.
type Notification struct {
	Kind    Kind
	To      string
	Subject string
	Body    string
	// Seq is a monotonically increasing sequence number assigned by the
	// notifier (deterministic substitute for timestamps).
	Seq int
}

// Notifier delivers notifications.
type Notifier interface {
	Send(n Notification) error
}

// Outbox is a thread-safe in-memory notifier.
type Outbox struct {
	mu   sync.Mutex
	sent []Notification
}

// NewOutbox returns an empty in-memory outbox.
func NewOutbox() *Outbox { return &Outbox{} }

// Send implements Notifier.
func (o *Outbox) Send(n Notification) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	n.Seq = len(o.sent) + 1
	o.sent = append(o.sent, n)
	return nil
}

// Messages returns a copy of everything sent.
func (o *Outbox) Messages() []Notification {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]Notification, len(o.sent))
	copy(out, o.sent)
	return out
}

// ByKind returns sent messages of one kind.
func (o *Outbox) ByKind(k Kind) []Notification {
	var out []Notification
	for _, n := range o.Messages() {
		if n.Kind == k {
			out = append(out, n)
		}
	}
	return out
}

// FileOutbox appends notifications to a text file, one block per message —
// the closest a hermetic test environment gets to an SMTP hand-off.
type FileOutbox struct {
	mu   sync.Mutex
	path string
	seq  int
}

// NewFileOutbox creates (or truncates) the outbox file.
func NewFileOutbox(path string) (*FileOutbox, error) {
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		return nil, fmt.Errorf("notify: %w", err)
	}
	return &FileOutbox{path: path}, nil
}

// Send implements Notifier.
func (f *FileOutbox) Send(n Notification) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	n.Seq = f.seq
	block := fmt.Sprintf("--- message %d ---\nkind: %s\nto: %s\nsubject: %s\n\n%s\n",
		n.Seq, n.Kind, n.To, n.Subject, n.Body)
	file, err := os.OpenFile(f.path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("notify: %w", err)
	}
	defer file.Close()
	if _, err := file.WriteString(block); err != nil {
		return fmt.Errorf("notify: %w", err)
	}
	return nil
}

// Discard drops every notification; useful in benchmarks.
type Discard struct{}

// Send implements Notifier.
func (Discard) Send(Notification) error { return nil }

// DefaultRequestTimeout bounds one webhook POST end to end: a hung
// subscriber must not block delivery (or a graceful shutdown)
// indefinitely.
const DefaultRequestTimeout = 10 * time.Second

// StatusError is a webhook delivery rejected by the subscriber with a
// non-2xx response. It carries the Retry-After header (when present and
// parseable) so the retry scheduler can honor the subscriber's own
// pacing on 429/503 instead of the computed backoff.
type StatusError struct {
	URL        string
	StatusCode int
	Status     string
	// RetryIn is the decoded Retry-After value; HasRetryIn reports
	// whether the subscriber actually sent one.
	RetryIn    time.Duration
	HasRetryIn bool
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("notify: webhook POST %s: subscriber answered %s", e.URL, e.Status)
}

// RetryAfter implements resilience.RetryAfterer.
func (e *StatusError) RetryAfter() (time.Duration, bool) { return e.RetryIn, e.HasRetryIn }

// HTTPPoster delivers notifications over HTTP: the Body is POSTed as JSON
// to the To URL. It is the production transport for KindWebhook callbacks.
type HTTPPoster struct {
	client  *http.Client
	timeout time.Duration
}

// NewHTTPPoster builds an HTTP notifier with the default per-request
// timeout; a nil client gets http.DefaultTransport behind a fresh client.
func NewHTTPPoster(client *http.Client) *HTTPPoster {
	return NewHTTPPosterTimeout(client, 0)
}

// NewHTTPPosterTimeout builds an HTTP notifier whose every request
// carries a context deadline of the given timeout (0 means
// DefaultRequestTimeout, negative disables the deadline).
func NewHTTPPosterTimeout(client *http.Client, timeout time.Duration) *HTTPPoster {
	if client == nil {
		client = &http.Client{}
	}
	if timeout == 0 {
		timeout = DefaultRequestTimeout
	}
	return &HTTPPoster{client: client, timeout: timeout}
}

// Send implements Notifier under the poster's own request timeout.
func (p *HTTPPoster) Send(n Notification) error {
	ctx := context.Background()
	if p.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.timeout)
		defer cancel()
	}
	return p.SendContext(ctx, n)
}

// SendContext delivers one notification under the caller's context, so a
// canceled or timed-out context abandons a hung subscriber instead of
// wedging the delivery worker. Non-2xx responses are errors so the
// caller's delivery counters reflect what the subscriber actually
// acknowledged.
func (p *HTTPPoster) SendContext(ctx context.Context, n Notification) error {
	u, err := url.Parse(n.To)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return fmt.Errorf("notify: webhook target %q is not an http(s) URL", n.To)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.To, strings.NewReader(n.Body))
	if err != nil {
		return fmt.Errorf("notify: webhook POST %s: %w", n.To, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		return fmt.Errorf("notify: webhook POST %s: %w", n.To, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		se := &StatusError{URL: n.To, StatusCode: resp.StatusCode, Status: resp.Status}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			se.RetryIn, se.HasRetryIn = resilience.ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
		}
		return se
	}
	return nil
}
