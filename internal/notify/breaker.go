package notify

import "github.com/easeml/ci/internal/resilience"

// The per-subscriber circuit breaker started life here and was lifted
// into internal/resilience once the remote label oracle needed the same
// state machine. The names below are aliases, not copies: notify's wire
// types (RetryStats.Breakers, the metrics API) and the oracle client
// report through the identical struct.

// BreakerState is a circuit breaker's position.
type BreakerState = resilience.BreakerState

// Breaker positions, re-exported for notify's callers.
const (
	BreakerClosed   = resilience.BreakerClosed
	BreakerOpen     = resilience.BreakerOpen
	BreakerHalfOpen = resilience.BreakerHalfOpen
)

// BreakerOptions tunes the per-subscriber circuit breakers.
type BreakerOptions = resilience.BreakerOptions

// Breaker defaults.
const (
	DefaultFailureThreshold = resilience.DefaultFailureThreshold
	DefaultCooldown         = resilience.DefaultCooldown
)

// BreakerStatus is one subscriber's breaker, as reported in metrics.
type BreakerStatus = resilience.BreakerStatus
