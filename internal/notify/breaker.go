package notify

import (
	"fmt"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed is normal operation: attempts flow through.
	BreakerClosed BreakerState = iota
	// BreakerOpen short-circuits attempts until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe through; its outcome decides
	// between closing and re-opening.
	BreakerHalfOpen
)

// String implements fmt.Stringer; the values appear in the metrics API.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// BreakerOptions tunes the per-subscriber circuit breakers.
type BreakerOptions struct {
	// FailureThreshold is how many consecutive delivery failures open the
	// breaker. 0 means DefaultFailureThreshold; negative disables
	// breakers entirely.
	FailureThreshold int
	// Cooldown is how long an open breaker short-circuits attempts before
	// allowing a half-open probe. 0 means DefaultCooldown.
	Cooldown time.Duration
}

// Breaker defaults.
const (
	DefaultFailureThreshold = 5
	DefaultCooldown         = 30 * time.Second
)

// BreakerStatus is one subscriber's breaker, as reported in metrics.
type BreakerStatus struct {
	State string `json:"state"`
	// ConsecutiveFailures counts the current failure streak.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// Opens counts how many times this breaker has tripped.
	Opens uint64 `json:"opens"`
}

// breaker is one subscriber's state. It is guarded by the Reliable mutex.
type breaker struct {
	state     BreakerState
	failures  int
	opens     uint64
	openUntil time.Time
	// probing marks a half-open probe in flight, so concurrent attempts
	// against the same subscriber don't all slip through the half-open
	// window.
	probing bool
}

// allow reports whether an attempt may proceed now; when it may not, it
// returns the time at which the breaker becomes probeable.
func (b *breaker) allow(now time.Time, opts BreakerOptions) (ok bool, retryAt time.Time) {
	switch b.state {
	case BreakerClosed:
		return true, time.Time{}
	case BreakerOpen:
		if now.Before(b.openUntil) {
			return false, b.openUntil
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true, time.Time{}
	default: // half-open
		if b.probing {
			return false, b.openUntil
		}
		b.probing = true
		return true, time.Time{}
	}
}

// record feeds an attempt outcome back into the breaker.
func (b *breaker) record(success bool, now time.Time, opts BreakerOptions) {
	threshold := opts.FailureThreshold
	if threshold == 0 {
		threshold = DefaultFailureThreshold
	}
	cooldown := opts.Cooldown
	if cooldown == 0 {
		cooldown = DefaultCooldown
	}
	b.probing = false
	if success {
		b.state = BreakerClosed
		b.failures = 0
		return
	}
	b.failures++
	if b.state == BreakerHalfOpen || b.failures >= threshold {
		b.state = BreakerOpen
		b.openUntil = now.Add(cooldown)
		b.opens++
	}
}
