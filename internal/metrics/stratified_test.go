package metrics

import (
	"math"
	"testing"
)

func TestPlanStratifiedBalanced(t *testing.T) {
	plan, err := PlanStratified([]float64{0.5, 0.5}, 0.02, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Strata) != 2 {
		t.Fatalf("strata = %d", len(plan.Strata))
	}
	// Balanced classes: both strata identical; savings = 2x (uniform must
	// oversample by 1/0.5 while stratified draws each class directly).
	if plan.Strata[0].N != plan.Strata[1].N {
		t.Errorf("balanced strata differ: %d vs %d", plan.Strata[0].N, plan.Strata[1].N)
	}
	if s := plan.Savings(); math.Abs(s-1) > 0.01 {
		// Two strata of n each vs uniform 2n: savings 1 for balanced data.
		t.Errorf("balanced savings = %v, want ~1", s)
	}
}

func TestPlanStratifiedSkewed(t *testing.T) {
	// A heavily skewed task (the emotion corpus shape): the rare class
	// dominates the uniform budget; stratification wins ~1/(k*w_min).
	weights := []float64{0.05, 0.15, 0.30, 0.50}
	plan, err := PlanStratified(weights, 0.02, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if s := plan.Savings(); s < 4 {
		t.Errorf("skewed savings = %v, want >= 4x", s)
	}
	// Per-stratum epsilon allocation follows the weights.
	for i, st := range plan.Strata {
		if math.Abs(st.Epsilon-0.02*weights[i]) > 1e-12 {
			t.Errorf("stratum %d epsilon = %v", i, st.Epsilon)
		}
	}
	if plan.TotalN <= 0 || plan.UniformN <= plan.TotalN {
		t.Errorf("budgets: total=%d uniform=%d", plan.TotalN, plan.UniformN)
	}
}

func TestPlanStratifiedValidation(t *testing.T) {
	if _, err := PlanStratified([]float64{1}, 0.02, 0.001); err == nil {
		t.Error("single class should fail")
	}
	if _, err := PlanStratified([]float64{0.5, 0.4}, 0.02, 0.001); err == nil {
		t.Error("weights not summing to 1 should fail")
	}
	if _, err := PlanStratified([]float64{0.5, 0.5, 0}, 0.02, 0.001); err == nil {
		t.Error("zero weight should fail")
	}
	if _, err := PlanStratified([]float64{0.5, 0.5}, 0, 0.001); err == nil {
		t.Error("zero epsilon should fail")
	}
	if _, err := PlanStratified([]float64{0.5, 0.5}, 0.02, 1); err == nil {
		t.Error("delta=1 should fail")
	}
}
