package metrics

import (
	"fmt"
	"math"

	"github.com/easeml/ci/internal/bounds"
)

// Stratified sampling, the optimization the paper flags for skewed cases
// (Section 2.2: "more optimizations, such as using stratified samples, are
// possible for skewed cases"). Overall accuracy decomposes over classes as
//
//	acc = sum_c w_c * acc_c
//
// with w_c the class prevalences. Estimating each per-class accuracy on its
// own stratum and allocating both the tolerance and the labels across
// strata optimally (eps_c proportional to w_c, the same closed form as the
// estimator's epsilon split) beats uniform sampling whenever the label
// distribution is skewed, because rare classes stop being estimated "for
// free" at the majority class's sample rate.

// Stratum is the plan for one class.
type Stratum struct {
	Class int
	// Weight is the class prevalence w_c.
	Weight float64
	// Epsilon is the stratum's share of the overall tolerance.
	Epsilon float64
	// N is the number of labeled examples of this class to draw.
	N int
}

// StratifiedPlan allocates labels across class strata for an (epsilon,
// delta) estimate of overall accuracy.
type StratifiedPlan struct {
	Strata []Stratum
	// TotalN is the stratified label budget.
	TotalN int
	// UniformN is the single-pool Hoeffding budget for comparison.
	UniformN int
}

// Savings is UniformN / TotalN.
func (p *StratifiedPlan) Savings() float64 {
	if p.TotalN == 0 {
		return 1
	}
	return float64(p.UniformN) / float64(p.TotalN)
}

// PlanStratified computes the allocation. weights must be a probability
// vector over classes (the class prevalences, known from the unlabeled
// pool — counting labels is free, knowing them is not).
func PlanStratified(weights []float64, epsilon, delta float64) (*StratifiedPlan, error) {
	if len(weights) < 2 {
		return nil, fmt.Errorf("metrics: need >= 2 classes, got %d", len(weights))
	}
	sum := 0.0
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("metrics: weight %d = %v must be positive", i, w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("metrics: weights sum to %v, want 1", sum)
	}
	if !(epsilon > 0) || !(delta > 0 && delta < 1) {
		return nil, fmt.Errorf("metrics: invalid epsilon %v or delta %v", epsilon, delta)
	}
	k := len(weights)
	plan := &StratifiedPlan{}
	// Each stratum receives delta/k. The contribution of stratum c to the
	// overall error is w_c * eps_c-within-stratum; allocating the overall
	// epsilon as eps_c = epsilon * w_c / sum(w) = epsilon * w_c makes the
	// within-stratum tolerance epsilon for every class:
	// n_c = ln(k/delta) / (2 epsilon^2), weighted by nothing — the skew
	// advantage is that rare classes need the SAME n_c, not 1/w_c more
	// examples as uniform sampling would force.
	for c, w := range weights {
		epsC := epsilon * w
		n, err := bounds.HoeffdingSampleSize(1, epsC/w, delta/float64(k))
		if err != nil {
			return nil, err
		}
		plan.Strata = append(plan.Strata, Stratum{Class: c, Weight: w, Epsilon: epsC, N: n})
		plan.TotalN += n
	}
	// Uniform baseline: to see enough of the rarest class for its accuracy
	// to be epsilon-resolved, a single pool must be oversampled by 1/w_min.
	wMin := weights[0]
	for _, w := range weights {
		if w < wMin {
			wMin = w
		}
	}
	perClass, err := bounds.HoeffdingSampleSize(1, epsilon, delta/float64(k))
	if err != nil {
		return nil, err
	}
	plan.UniformN = int(math.Ceil(float64(perClass) / wMin))
	return plan, nil
}
