package metrics

import (
	"math"
	"testing"

	"github.com/easeml/ci/internal/bounds"
)

// A small worked example: 3 classes, 10 examples.
//
//	labels: 0 0 0 0 1 1 1 2 2 2
//	preds : 0 0 1 2 1 1 0 2 2 2
func worked(t *testing.T) *Confusion {
	t.Helper()
	labels := []int{0, 0, 0, 0, 1, 1, 1, 2, 2, 2}
	preds := []int{0, 0, 1, 2, 1, 1, 0, 2, 2, 2}
	c, err := NewConfusion(preds, labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfusionCounts(t *testing.T) {
	c := worked(t)
	if c.Total != 10 {
		t.Errorf("total = %d", c.Total)
	}
	if c.Counts[0][0] != 2 || c.Counts[0][1] != 1 || c.Counts[0][2] != 1 {
		t.Errorf("row 0 = %v", c.Counts[0])
	}
	if c.Counts[1][1] != 2 || c.Counts[1][0] != 1 {
		t.Errorf("row 1 = %v", c.Counts[1])
	}
	if c.Counts[2][2] != 3 {
		t.Errorf("row 2 = %v", c.Counts[2])
	}
}

func TestAccuracy(t *testing.T) {
	if got := worked(t).Accuracy(); got != 0.7 {
		t.Errorf("accuracy = %v, want 0.7", got)
	}
}

func TestPrecisionRecallF1(t *testing.T) {
	c := worked(t)
	// Class 0: TP=2, predicted-as-0 = 3 (2 true + 1 from class 1), actual = 4.
	if got := c.Precision(0); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("precision(0) = %v", got)
	}
	if got := c.Recall(0); got != 0.5 {
		t.Errorf("recall(0) = %v", got)
	}
	p, r := 2.0/3, 0.5
	if got := c.F1(0); math.Abs(got-2*p*r/(p+r)) > 1e-12 {
		t.Errorf("f1(0) = %v", got)
	}
	// Class 2: TP=3, predicted-as-2 = 4, actual = 3.
	if got := c.Recall(2); got != 1.0 {
		t.Errorf("recall(2) = %v", got)
	}
	if got := c.Precision(2); got != 0.75 {
		t.Errorf("precision(2) = %v", got)
	}
}

func TestMacroF1(t *testing.T) {
	c := worked(t)
	want := (c.F1(0) + c.F1(1) + c.F1(2)) / 3
	if got := c.MacroF1(); math.Abs(got-want) > 1e-12 {
		t.Errorf("macro F1 = %v, want %v", got, want)
	}
}

func TestClassFraction(t *testing.T) {
	c := worked(t)
	if got := c.ClassFraction(0); got != 0.4 {
		t.Errorf("class fraction 0 = %v", got)
	}
	if got := c.ClassFraction(2); got != 0.3 {
		t.Errorf("class fraction 2 = %v", got)
	}
}

func TestDegenerateClasses(t *testing.T) {
	// A class that never occurs and is never predicted has P=R=F1=0, not NaN.
	labels := []int{0, 0, 1, 1}
	preds := []int{0, 0, 1, 1}
	c, err := NewConfusion(preds, labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Precision(2) != 0 || c.Recall(2) != 0 || c.F1(2) != 0 {
		t.Error("absent class must score 0")
	}
	if math.IsNaN(c.MacroF1()) {
		t.Error("macro F1 must not be NaN")
	}
}

func TestNewConfusionErrors(t *testing.T) {
	if _, err := NewConfusion([]int{0}, []int{0, 1}, 2); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := NewConfusion([]int{0}, []int{0}, 1); err == nil {
		t.Error("k < 2 should fail")
	}
	if _, err := NewConfusion(nil, nil, 2); err == nil {
		t.Error("empty should fail")
	}
	if _, err := NewConfusion([]int{5}, []int{0}, 2); err == nil {
		t.Error("out-of-range prediction should fail")
	}
	if _, err := NewConfusion([]int{0}, []int{5}, 2); err == nil {
		t.Error("out-of-range label should fail")
	}
}

func TestF1SampleSize(t *testing.T) {
	// Balanced binary task: sensitivity 2/0.5 = 4, so 16x the accuracy cost.
	n, err := F1SampleSize(0.5, 0.01, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := bounds.McDiarmidSampleSize(1, 0.01, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	// 16x up to the independent ceilings of the two computations.
	if n < 16*acc-16 || n > 16*acc {
		t.Errorf("F1 size %d, accuracy size %d: want ~16x", n, acc)
	}
	// Skew makes it worse quadratically.
	skewed, err := F1SampleSize(0.1, 0.01, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if skewed <= n {
		t.Error("skewed task must need more labels")
	}
	if _, err := F1SampleSize(0, 0.01, 0.001); err == nil {
		t.Error("zero prevalence should fail")
	}
}
