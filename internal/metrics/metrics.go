// Package metrics implements the quality metrics beyond accuracy that the
// paper lists as the first future extension (Section 2.2 "Beyond
// accuracy"): confusion matrices, precision/recall/F1 (binary and macro),
// and the McDiarmid-based sample-size estimation route the paper proposes
// for them — replacing Bennett's inequality with McDiarmid's plus the
// metric's per-example sensitivity.
package metrics

import (
	"fmt"

	"github.com/easeml/ci/internal/bounds"
)

// Confusion is a k-class confusion matrix: Counts[true][predicted].
type Confusion struct {
	Counts [][]int
	// Total is the number of scored examples.
	Total int
}

// NewConfusion tallies predictions against labels for k classes.
func NewConfusion(pred, labels []int, k int) (*Confusion, error) {
	if len(pred) != len(labels) {
		return nil, fmt.Errorf("metrics: %d predictions vs %d labels", len(pred), len(labels))
	}
	if k < 2 {
		return nil, fmt.Errorf("metrics: need >= 2 classes, got %d", k)
	}
	if len(pred) == 0 {
		return nil, fmt.Errorf("metrics: empty input")
	}
	c := &Confusion{Counts: make([][]int, k)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, k)
	}
	for i := range pred {
		if labels[i] < 0 || labels[i] >= k {
			return nil, fmt.Errorf("metrics: label %d out of range at %d", labels[i], i)
		}
		if pred[i] < 0 || pred[i] >= k {
			return nil, fmt.Errorf("metrics: prediction %d out of range at %d", pred[i], i)
		}
		c.Counts[labels[i]][pred[i]]++
		c.Total++
	}
	return c, nil
}

// Accuracy is the trace fraction.
func (c *Confusion) Accuracy() float64 {
	correct := 0
	for i := range c.Counts {
		correct += c.Counts[i][i]
	}
	return float64(correct) / float64(c.Total)
}

// Precision of one class: TP / (TP + FP). Returns 0 when nothing was
// predicted as the class.
func (c *Confusion) Precision(class int) float64 {
	tp := c.Counts[class][class]
	predicted := 0
	for t := range c.Counts {
		predicted += c.Counts[t][class]
	}
	if predicted == 0 {
		return 0
	}
	return float64(tp) / float64(predicted)
}

// Recall of one class: TP / (TP + FN). Returns 0 when the class is absent.
func (c *Confusion) Recall(class int) float64 {
	tp := c.Counts[class][class]
	actual := 0
	for p := range c.Counts[class] {
		actual += c.Counts[class][p]
	}
	if actual == 0 {
		return 0
	}
	return float64(tp) / float64(actual)
}

// F1 of one class: harmonic mean of precision and recall.
func (c *Confusion) F1(class int) float64 {
	p, r := c.Precision(class), c.Recall(class)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MacroF1 averages F1 across classes.
func (c *Confusion) MacroF1() float64 {
	sum := 0.0
	for class := range c.Counts {
		sum += c.F1(class)
	}
	return sum / float64(len(c.Counts))
}

// ClassFraction returns the fraction of examples whose true label is class.
func (c *Confusion) ClassFraction(class int) float64 {
	actual := 0
	for p := range c.Counts[class] {
		actual += c.Counts[class][p]
	}
	return float64(actual) / float64(c.Total)
}

// F1SampleSize is the paper's proposed extension route: the number of test
// examples needed to estimate the F1 score of the positive class to within
// epsilon with probability 1-delta, via McDiarmid's inequality with the F1
// sensitivity bound s = 2/minPositive (bounds.F1Sensitivity). minPositive
// is a lower bound on the positive-class prevalence in the testset; skewed
// tasks (small minPositive) need quadratically more labels, which is the
// stratified-sampling motivation the paper mentions.
func F1SampleSize(minPositive, epsilon, delta float64) (int, error) {
	s, err := bounds.F1Sensitivity(minPositive)
	if err != nil {
		return 0, err
	}
	return bounds.McDiarmidSampleSize(s, epsilon, delta)
}
