package stats

import (
	"math"
	"testing"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NormalCDF(%v) = %.17g, want %.17g", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.995, 2.5758293035489004},
		{0.9999, 3.719016485455709},
		{1e-6, -4.753424308822899},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-9*math.Max(1, math.Abs(c.want)) {
			t.Errorf("NormalQuantile(%v) = %.17g, want %.17g", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-8, 1e-4, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.9999, 1 - 1e-8} {
		x := NormalQuantile(p)
		if back := NormalCDF(x); math.Abs(back-p) > 1e-12 {
			t.Errorf("NormalCDF(NormalQuantile(%v)) = %v, want %v", p, back, p)
		}
	}
}

func TestNormalQuantileSymmetry(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.2, 0.4} {
		lo, hi := NormalQuantile(p), NormalQuantile(1-p)
		if math.Abs(lo+hi) > 1e-10 {
			t.Errorf("NormalQuantile(%v)+NormalQuantile(%v) = %v, want 0", p, 1-p, lo+hi)
		}
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("NormalQuantile(0) should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("NormalQuantile(1) should be +Inf")
	}
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if !math.IsNaN(NormalQuantile(p)) {
			t.Errorf("NormalQuantile(%v) should be NaN", p)
		}
	}
}
