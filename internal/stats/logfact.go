package stats

import (
	"math"
	"sync"
	"sync/atomic"
)

// Cached log-factorial table. Every binomial pmf/tail evaluation needs
// ln(k!) for three indices; computing each with math.Lgamma costs ~50ns,
// which dominates the exact-bound hot path (the tight-bound search evaluates
// millions of pmf terms). The table turns each lookup into one slice index.
//
// The table is built with math.Lgamma itself, so a lookup returns the exact
// same float64 the direct computation would — switching to the table cannot
// perturb any downstream sample size.
//
// Concurrency: readers load an immutable snapshot through an atomic pointer
// and never block. Growth happens under a mutex, copies the old prefix, and
// publishes a strictly larger snapshot; concurrent growers serialize and
// re-check. Indices at or above logFactCap bypass the table entirely so a
// single absurd query cannot pin gigabytes of memory.

const (
	// logFactMinSize is the initial table size (covers small testsets
	// without any growth churn).
	logFactMinSize = 4096
	// logFactCap bounds table memory at 32 MiB (4M entries x 8 bytes);
	// sample sizes in this system top out well below that.
	logFactCap = 1 << 22
)

var (
	logFactTable atomic.Pointer[[]float64]
	logFactMu    sync.Mutex
)

// LogFactorial returns ln(k!) (= Lgamma(k+1)) from the cached table,
// growing it on demand. Out-of-range k falls back to Lgamma directly, so
// the function is total over int.
func LogFactorial(k int) float64 {
	if k < 2 {
		// 0! = 1! = 1. Negative k never occurs in-bounds callers; fall
		// back to Lgamma's own domain handling for robustness.
		if k >= 0 {
			return 0
		}
		v, _ := math.Lgamma(float64(k) + 1)
		return v
	}
	if k >= logFactCap {
		v, _ := math.Lgamma(float64(k) + 1)
		return v
	}
	if t := logFactTable.Load(); t != nil && k < len(*t) {
		return (*t)[k]
	}
	return growLogFactorial(k)
}

// growLogFactorial extends the table to cover index k and returns ln(k!).
func growLogFactorial(k int) float64 {
	logFactMu.Lock()
	defer logFactMu.Unlock()
	var cur []float64
	if t := logFactTable.Load(); t != nil {
		cur = *t
	}
	if k < len(cur) { // another goroutine grew it first
		return cur[k]
	}
	size := len(cur)
	if size < logFactMinSize {
		size = logFactMinSize
	}
	for size <= k {
		size *= 2
	}
	if size > logFactCap {
		size = logFactCap
	}
	next := make([]float64, size)
	copy(next, cur)
	for i := len(cur); i < size; i++ {
		v, _ := math.Lgamma(float64(i) + 1)
		next[i] = v
	}
	logFactTable.Store(&next)
	return next[k]
}

// logFactTableLen reports the current table length (test hook).
func logFactTableLen() int {
	if t := logFactTable.Load(); t != nil {
		return len(*t)
	}
	return 0
}
