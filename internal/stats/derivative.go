package stats

import "math"

// Log-domain derivative helpers for the binomial tail functions. The
// event-driven worst-case sweep (internal/bounds) needs the p-derivative of
// a fixed-cut segment function CDF(l; n, p) + Survival(h; n, p) to locate
// each lattice family's peak analytically; the classical identity
//
//	d/dp Pr[X <= k] = -n * C(n-1, k) * p^k * (1-p)^(n-1-k)
//
// (telescoping the term-wise derivatives of the pmf sum) reduces that to
// two single pmf-like evaluations over the cached log-factorial table —
// O(1) per call, no tail walk.

// BinomialCDFDerivative returns d/dp Pr[X <= k] for X ~ Binomial(n, p).
// The derivative is always <= 0 (raising p shifts mass right, out of the
// lower tail) and is 0 wherever the CDF is constant in p (k < 0 or k >= n).
func BinomialCDFDerivative(k, n int, p float64) float64 {
	if k < 0 || k >= n || n <= 0 {
		return 0
	}
	switch {
	case p <= 0:
		// lim p->0+ of -n C(n-1,k) p^k (1-p)^(n-1-k): -n at k = 0, else 0.
		if k == 0 {
			return -float64(n)
		}
		return 0
	case p >= 1:
		if k == n-1 {
			return -float64(n)
		}
		return 0
	}
	return -float64(n) * math.Exp(LogBinomialCoeff(n-1, k)+
		float64(k)*math.Log(p)+float64(n-1-k)*math.Log1p(-p))
}

// BinomialSurvivalDerivative returns d/dp Pr[X >= k]: the mirror of
// BinomialCDFDerivative (always >= 0), via Pr[X >= k] = 1 - Pr[X <= k-1].
func BinomialSurvivalDerivative(k, n int, p float64) float64 {
	return -BinomialCDFDerivative(k-1, n, p)
}
