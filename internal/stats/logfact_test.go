package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestLogFactorialMatchesLgamma demands bit-identical agreement with the
// direct Lgamma computation: the table is built from Lgamma itself, so any
// difference would mean the cache changes downstream sample sizes.
func TestLogFactorialMatchesLgamma(t *testing.T) {
	ks := []int{0, 1, 2, 3, 10, 100, 4095, 4096, 4097, 65536, 1 << 20}
	for _, k := range ks {
		want, _ := math.Lgamma(float64(k) + 1)
		if got := LogFactorial(k); got != want {
			t.Errorf("LogFactorial(%d) = %v, want %v (must be bit-identical)", k, got, want)
		}
	}
}

func TestLogFactorialBeyondCap(t *testing.T) {
	k := logFactCap + 17
	want, _ := math.Lgamma(float64(k) + 1)
	if got := LogFactorial(k); got != want {
		t.Errorf("LogFactorial(%d) beyond cap = %v, want %v", k, got, want)
	}
	if n := logFactTableLen(); n > logFactCap {
		t.Errorf("table grew past cap: %d > %d", n, logFactCap)
	}
}

func TestLogFactorialNegative(t *testing.T) {
	// Lgamma has poles at non-positive integers; we only require no panic
	// and agreement with the fallback.
	want, _ := math.Lgamma(0) // k = -1 -> Lgamma(0) = +Inf
	if got := LogFactorial(-1); got != want {
		t.Errorf("LogFactorial(-1) = %v, want %v", got, want)
	}
}

// TestLogFactorialConcurrentGrowth hammers the growable table from many
// goroutines (meaningful under -race): readers must always see either a
// complete snapshot or trigger a consistent growth.
func TestLogFactorialConcurrentGrowth(t *testing.T) {
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				k := rng.Intn(200000)
				want, _ := math.Lgamma(float64(k) + 1)
				if got := LogFactorial(k); got != want {
					errs <- fmt.Sprintf("mismatch at k=%d", k)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
