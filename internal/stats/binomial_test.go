package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLogBinomialCoeff(t *testing.T) {
	tests := []struct {
		n, k int
		want float64 // C(n,k)
	}{
		{0, 0, 1},
		{5, 0, 1},
		{5, 5, 1},
		{5, 2, 10},
		{10, 3, 120},
		{52, 5, 2598960},
	}
	for _, tt := range tests {
		got := math.Exp(LogBinomialCoeff(tt.n, tt.k))
		if math.Abs(got-tt.want)/tt.want > 1e-10 {
			t.Errorf("C(%d,%d) = %v, want %v", tt.n, tt.k, got, tt.want)
		}
	}
	if !math.IsInf(LogBinomialCoeff(5, 6), -1) {
		t.Error("C(5,6) should be log(0)")
	}
	if !math.IsInf(LogBinomialCoeff(5, -1), -1) {
		t.Error("C(5,-1) should be log(0)")
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 7, 100} {
		for _, p := range []float64{0.02, 0.5, 0.98} {
			sum := 0.0
			for k := 0; k <= n; k++ {
				sum += BinomialPMF(k, n, p)
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("sum pmf(n=%d,p=%v) = %v, want 1", n, p, sum)
			}
		}
	}
}

func TestBinomialPMFDegenerate(t *testing.T) {
	if got := BinomialPMF(0, 10, 0); got != 1 {
		t.Errorf("pmf(0;10,0) = %v, want 1", got)
	}
	if got := BinomialPMF(10, 10, 1); got != 1 {
		t.Errorf("pmf(10;10,1) = %v, want 1", got)
	}
	if got := BinomialPMF(3, 10, 0); got != 0 {
		t.Errorf("pmf(3;10,0) = %v, want 0", got)
	}
}

func TestBinomialCDFAgainstDirectSum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		p := rng.Float64()
		k := rng.Intn(n + 1)
		direct := 0.0
		for i := 0; i <= k; i++ {
			direct += BinomialPMF(i, n, p)
		}
		if direct > 1 {
			direct = 1
		}
		got := BinomialCDF(k, n, p)
		if math.Abs(got-direct) > 1e-9 {
			t.Fatalf("cdf(%d;%d,%v) = %v, direct sum %v", k, n, p, got, direct)
		}
	}
}

func TestBinomialCDFBounds(t *testing.T) {
	if got := BinomialCDF(-1, 10, 0.5); got != 0 {
		t.Errorf("cdf(-1) = %v", got)
	}
	if got := BinomialCDF(10, 10, 0.5); got != 1 {
		t.Errorf("cdf(n) = %v", got)
	}
	if got := BinomialCDF(3, 10, 0); got != 1 {
		t.Errorf("cdf(k;p=0) = %v", got)
	}
	if got := BinomialCDF(3, 10, 1); got != 0 {
		t.Errorf("cdf(3;10,p=1) = %v", got)
	}
}

func TestBinomialCDFMonotoneInK(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		p := rng.Float64()
		prev := 0.0
		for k := 0; k <= n; k++ {
			c := BinomialCDF(k, n, p)
			if c < prev-1e-12 || c > 1+1e-12 {
				return false
			}
			prev = c
		}
		return math.Abs(prev-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBinomialSurvivalComplement(t *testing.T) {
	n, p := 40, 0.3
	for k := 0; k <= n; k++ {
		s := BinomialSurvival(k, n, p)
		c := BinomialCDF(k-1, n, p)
		if math.Abs(s+c-1) > 1e-9 {
			t.Fatalf("survival(%d)+cdf(%d) = %v, want 1", k, k-1, s+c)
		}
	}
}

func TestBinomialUpperConfidence(t *testing.T) {
	// Rule of three: with 0 successes in n trials the exact upper 95% bound
	// on p is 1-delta^(1/n) ~= 3/n.
	n := 100
	got := BinomialUpperConfidence(0, n, 0.05)
	want := 1 - math.Pow(0.05, 1.0/float64(n))
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("upper(0,%d,0.05) = %v, want %v", n, got, want)
	}
	if got := BinomialUpperConfidence(10, 10, 0.05); got != 1 {
		t.Errorf("upper(k=n) = %v, want 1", got)
	}
}

func TestBinomialLowerConfidence(t *testing.T) {
	// With all successes the lower bound mirrors the rule of three.
	n := 100
	got := BinomialLowerConfidence(n, n, 0.05)
	want := math.Pow(0.05, 1.0/float64(n))
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("lower(%d,%d,0.05) = %v, want %v", n, n, got, want)
	}
	if got := BinomialLowerConfidence(0, 10, 0.05); got != 0 {
		t.Errorf("lower(k=0) = %v, want 0", got)
	}
}

func TestConfidenceBoundsCoverTruth(t *testing.T) {
	// For the bound definition used here, the coverage statement is:
	// Pr[k <= cutoff] <= delta where cutoff is such that upper bound < true p.
	// We verify the defining property directly: at p = upper(k,n,delta),
	// Pr[X <= k] == delta.
	for _, tc := range []struct {
		k, n  int
		delta float64
	}{{5, 50, 0.01}, {30, 100, 0.001}, {490, 500, 0.05}} {
		u := BinomialUpperConfidence(tc.k, tc.n, tc.delta)
		if got := BinomialCDF(tc.k, tc.n, u); math.Abs(got-tc.delta) > 1e-6 {
			t.Errorf("cdf(%d;%d,upper) = %v, want %v", tc.k, tc.n, got, tc.delta)
		}
		l := BinomialLowerConfidence(tc.k, tc.n, tc.delta)
		if got := BinomialSurvival(tc.k, tc.n, l); math.Abs(got-tc.delta) > 1e-6 {
			t.Errorf("surv(%d;%d,lower) = %v, want %v", tc.k, tc.n, got, tc.delta)
		}
		if l >= u {
			t.Errorf("lower %v >= upper %v", l, u)
		}
	}
}

func TestBinomialLargeN(t *testing.T) {
	// Stability check at the sample sizes the estimators actually request.
	n := 200000
	p := 0.98
	k := int(float64(n) * p)
	c := BinomialCDF(k, n, p)
	if c < 0.4 || c > 0.6 {
		t.Errorf("cdf at the mean of Binomial(%d, %v) = %v, want ~0.5", n, p, c)
	}
}
