package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"single", []float64{3}, 3},
		{"pair", []float64{1, 3}, 2},
		{"negatives", []float64{-2, 2, -4, 4}, 0},
		{"fractional", []float64{0.1, 0.2, 0.3}, 0.2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Mean(tt.in)
			if err != nil {
				t.Fatalf("Mean(%v) error: %v", tt.in, err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) error = %v, want ErrEmpty", err)
	}
}

func TestVariance(t *testing.T) {
	got, err := Variance([]float64{1, 1, 1})
	if err != nil || got != 0 {
		t.Errorf("Variance(constant) = %v, %v; want 0, nil", got, err)
	}
	got, err = Variance([]float64{0, 1})
	if err != nil || !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("Variance([0,1]) = %v, %v; want 0.25", got, err)
	}
}

func TestVarianceEmpty(t *testing.T) {
	if _, err := Variance(nil); err != ErrEmpty {
		t.Errorf("Variance(nil) error = %v, want ErrEmpty", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1},
		{1, 4},
		{0.5, 2.5},
		{0.25, 1.75},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatalf("Quantile(%v) error: %v", tt.q, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(xs, %v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	// The input must not be reordered.
	if xs[0] != 4 || xs[3] != 2 {
		t.Errorf("Quantile mutated its input: %v", xs)
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Errorf("Quantile(nil) error = %v, want ErrEmpty", err)
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("Quantile(q=-0.1) should fail")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Error("Quantile(q=1.1) should fail")
	}
	if _, err := Quantile([]float64{1}, math.NaN()); err == nil {
		t.Error("Quantile(q=NaN) should fail")
	}
}

func TestQuantileGapSymmetricSample(t *testing.T) {
	xs := make([]float64, 1001)
	for i := range xs {
		xs[i] = float64(i) / 1000
	}
	gap, err := QuantileGap(xs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(gap, 0.8, 1e-9) {
		t.Errorf("QuantileGap(uniform, 0.1) = %v, want 0.8", gap)
	}
}

func TestQuantileOrderedProperty(t *testing.T) {
	// Quantiles are monotone in q.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v, err := Quantile(xs, q)
			if err != nil || v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %v", got)
	}
}
