package stats

import (
	"math"
	"testing"
)

// TestBinomialCDFDerivativeFiniteDifference checks the closed form against
// a central finite difference of BinomialCDF across sizes and cuts,
// including cuts far into either tail.
func TestBinomialCDFDerivativeFiniteDifference(t *testing.T) {
	cases := []struct {
		k, n int
		p    float64
	}{
		{3, 10, 0.3},
		{5, 10, 0.5},
		{0, 10, 0.2},
		{9, 10, 0.8},
		{40, 100, 0.5},
		{60, 100, 0.5},
		{480, 1000, 0.5},
		{520, 1000, 0.47},
		{100, 1000, 0.13},
	}
	for _, c := range cases {
		got := BinomialCDFDerivative(c.k, c.n, c.p)
		h := 1e-6
		num := (BinomialCDF(c.k, c.n, c.p+h) - BinomialCDF(c.k, c.n, c.p-h)) / (2 * h)
		scale := math.Max(math.Abs(num), math.Abs(got))
		if scale == 0 {
			continue
		}
		if math.Abs(got-num)/scale > 1e-4 {
			t.Errorf("BinomialCDFDerivative(%d, %d, %v) = %v, finite difference %v",
				c.k, c.n, c.p, got, num)
		}
		if got > 0 {
			t.Errorf("BinomialCDFDerivative(%d, %d, %v) = %v > 0; lower-tail mass cannot grow with p",
				c.k, c.n, c.p, got)
		}
	}
}

// TestBinomialSurvivalDerivativeMirror pins the survival derivative to its
// CDF complement and its sign.
func TestBinomialSurvivalDerivativeMirror(t *testing.T) {
	for _, k := range []int{1, 5, 9} {
		n, p := 10, 0.4
		up := BinomialSurvivalDerivative(k, n, p)
		down := BinomialCDFDerivative(k-1, n, p)
		if up != -down {
			t.Errorf("BinomialSurvivalDerivative(%d) = %v, want %v", k, up, -down)
		}
		if up < 0 {
			t.Errorf("BinomialSurvivalDerivative(%d) = %v < 0", k, up)
		}
	}
}

// TestBinomialCDFDerivativeEdges pins the constant-CDF and degenerate-p
// conventions.
func TestBinomialCDFDerivativeEdges(t *testing.T) {
	if got := BinomialCDFDerivative(-1, 10, 0.5); got != 0 {
		t.Errorf("k=-1: got %v, want 0", got)
	}
	if got := BinomialCDFDerivative(10, 10, 0.5); got != 0 {
		t.Errorf("k=n: got %v, want 0 (CDF identically 1)", got)
	}
	if got := BinomialCDFDerivative(0, 7, 0); got != -7 {
		t.Errorf("k=0, p=0: got %v, want -n (d/dp (1-p)^n at 0)", got)
	}
	if got := BinomialCDFDerivative(3, 7, 0); got != 0 {
		t.Errorf("k=3, p=0: got %v, want 0", got)
	}
	if got := BinomialCDFDerivative(6, 7, 1); got != -7 {
		t.Errorf("k=n-1, p=1: got %v, want -n", got)
	}
	if got := BinomialCDFDerivative(3, 7, 1); got != 0 {
		t.Errorf("k=3, p=1: got %v, want 0", got)
	}
}
