package stats

import (
	"math"
	"math/rand"
	"testing"
)

// Equivalence tests for the mode-anchored tail walk: the fast BinomialCDF
// must agree with a straightforward log-sum-exp reference (the pre-rewrite
// implementation, reproduced below with direct Lgamma calls so it shares no
// code with the fast path) to within 1e-12 relative error across a
// randomized sweep of (n, p, k).

// refLogBinomialCoeff is the direct Lgamma evaluation.
func refLogBinomialCoeff(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lgN, _ := math.Lgamma(float64(n) + 1)
	lgK, _ := math.Lgamma(float64(k) + 1)
	lgNK, _ := math.Lgamma(float64(n-k) + 1)
	return lgN - lgK - lgNK
}

func refLogPMF(k, n int, p float64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	switch {
	case p <= 0:
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	case p >= 1:
		if k == n {
			return 0
		}
		return math.Inf(-1)
	}
	return refLogBinomialCoeff(n, k) +
		float64(k)*math.Log(p) +
		float64(n-k)*math.Log1p(-p)
}

// refTailSum is the pre-rewrite streaming log-sum-exp tail sum.
func refTailSum(lo, hi, n int, p float64) float64 {
	if lo > hi {
		return 0
	}
	logPQ := math.Log(p) - math.Log1p(-p)
	logTerm := refLogPMF(lo, n, p)
	maxLog := logTerm
	scaled := 1.0
	for i := lo; i < hi; i++ {
		logTerm += math.Log(float64(n-i)) - math.Log(float64(i+1)) + logPQ
		if logTerm > maxLog {
			scaled = scaled*math.Exp(maxLog-logTerm) + 1
			maxLog = logTerm
		} else {
			scaled += math.Exp(logTerm - maxLog)
		}
	}
	sum := math.Exp(maxLog) * scaled
	if sum > 1 {
		return 1
	}
	return sum
}

// refCDF is the pre-rewrite BinomialCDF.
func refCDF(k, n int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		return 0
	}
	if k <= n/2 {
		return refTailSum(0, k, n, p)
	}
	return 1 - refTailSum(k+1, n, n, p)
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

const equivTol = 1e-12

// refNoise bounds the reference implementation's own numerical noise at
// size n. Both the Lgamma anchor and the streaming log-sum-exp carry log
// values of magnitude up to ~n ln n, where one ulp is n ln n x 2^-52;
// measured residuals (worst 1.5e-10 at n = 20000, 3e-13 at n <= 200 over
// 10^5 random cases) sit 5-10x below this bound. Below n ~ 300 the bound
// stays under 1e-12, which is the regime the strict equivalence sweep
// pins.
func refNoise(n int) float64 {
	return 16 * float64(n) * math.Log(float64(n)+2) * 2.2e-16
}

// equivCheck asserts fast and ref agree to max(1e-12, refNoise(n)),
// relative or absolute — absolute, because where the reference forms
// 1 - (sum ~= 1) its *relative* error is unbounded while its absolute
// error stays at noise level, and the fast path (which branches on the
// mode precisely to avoid that cancellation) is the more accurate side.
func equivCheck(t *testing.T, what string, k, n int, p, got, want float64) {
	t.Helper()
	tol := math.Max(equivTol, refNoise(n))
	if d := relDiff(got, want); d > tol && math.Abs(got-want) > tol {
		t.Fatalf("%s(%d, %d, %g) = %.17g, reference %.17g (rel diff %.3g, abs %.3g, tol %.3g)",
			what, k, n, p, got, want, d, math.Abs(got-want), tol)
	}
}

// TestBinomialCDFEquivalenceStrict is the headline equivalence claim: in
// the regime where float64 permits it at all (n <= 300, see refNoise), the
// fast mode-anchored walk agrees with the pre-rewrite log-sum-exp
// implementation to 1e-12.
func TestBinomialCDFEquivalenceStrict(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30000; trial++ {
		n := 1 + rng.Intn(300)
		p := rng.Float64()
		k := rng.Intn(n + 1)
		got := BinomialCDF(k, n, p)
		want := refCDF(k, n, p)
		if d := relDiff(got, want); d > equivTol && math.Abs(got-want) > equivTol {
			t.Fatalf("BinomialCDF(%d, %d, %g) = %.17g, reference %.17g (rel diff %.3g > %g)",
				k, n, p, got, want, d, equivTol)
		}
	}
}

func TestBinomialCDFEquivalenceRandomSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ps := []float64{1e-6, 1e-3, 0.01, 0.1, 0.3, 0.49, 0.5, 0.51, 0.7, 0.9, 0.99, 0.999, 1 - 1e-6}
	for trial := 0; trial < 20000; trial++ {
		n := 1 + rng.Intn(20000)
		var p float64
		if trial%3 == 0 {
			p = ps[rng.Intn(len(ps))]
		} else {
			p = rng.Float64()
		}
		k := rng.Intn(n + 1)
		equivCheck(t, "BinomialCDF", k, n, p, BinomialCDF(k, n, p), refCDF(k, n, p))
	}
}

func TestBinomialCDFEquivalenceNearCuts(t *testing.T) {
	// The exact-bound sweep evaluates the CDF at cut indices near n(p±eps);
	// stress those specifically, including tiny and huge k relative to the
	// mode.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		n := 100 + rng.Intn(50000)
		p := rng.Float64()
		eps := math.Pow(10, -1-3*rng.Float64()) // 1e-1 .. 1e-4
		for _, q := range []float64{p - eps, p + eps} {
			k := int(math.Floor(float64(n) * q))
			equivCheck(t, "BinomialCDF", k, n, p, BinomialCDF(k, n, p), refCDF(k, n, p))
		}
	}
}

func TestBinomialSurvivalEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10000; trial++ {
		n := 1 + rng.Intn(10000)
		p := rng.Float64()
		k := rng.Intn(n + 2)
		equivCheck(t, "BinomialSurvival", k, n, p, BinomialSurvival(k, n, p), 1-refCDF(k-1, n, p))
	}
}

func TestBinomialCDFEdgeCases(t *testing.T) {
	cases := []struct {
		k, n int
		p    float64
		want float64
	}{
		{-1, 10, 0.5, 0},
		{10, 10, 0.5, 1},
		{11, 10, 0.5, 1},
		{5, 10, 0, 1},
		{5, 10, 1, 0},
		{0, 1, 0.5, 0.5},
	}
	for _, c := range cases {
		if got := BinomialCDF(c.k, c.n, c.p); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("BinomialCDF(%d, %d, %g) = %v, want %v", c.k, c.n, c.p, got, c.want)
		}
	}
}
