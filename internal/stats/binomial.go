package stats

import "math"

// Binomial distribution functions, computed in log space for numerical
// stability at the testset sizes this system works with (n up to ~10^6).
// They back the exact tail-inversion bounds of Section 4.3 of the paper.

// LogBinomialCoeff returns ln C(n, k) using the log-gamma function.
// It returns -Inf for k < 0 or k > n.
func LogBinomialCoeff(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lgN, _ := math.Lgamma(float64(n) + 1)
	lgK, _ := math.Lgamma(float64(k) + 1)
	lgNK, _ := math.Lgamma(float64(n-k) + 1)
	return lgN - lgK - lgNK
}

// BinomialLogPMF returns ln Pr[X = k] for X ~ Binomial(n, p).
func BinomialLogPMF(k, n int, p float64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	switch {
	case p <= 0:
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	case p >= 1:
		if k == n {
			return 0
		}
		return math.Inf(-1)
	}
	return LogBinomialCoeff(n, k) +
		float64(k)*math.Log(p) +
		float64(n-k)*math.Log1p(-p)
}

// BinomialPMF returns Pr[X = k] for X ~ Binomial(n, p).
func BinomialPMF(k, n int, p float64) float64 {
	return math.Exp(BinomialLogPMF(k, n, p))
}

// BinomialCDF returns Pr[X <= k] for X ~ Binomial(n, p).
//
// The sum runs over whichever tail is shorter and uses the recurrence
// pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/(1-p) seeded from a log-space anchor,
// so the cost is O(min(k, n-k)) with no catastrophic cancellation.
func BinomialCDF(k, n int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		return 0
	}
	if k <= n/2 {
		return binomialTailSum(0, k, n, p)
	}
	// Complement over the other (shorter) tail.
	return 1 - binomialTailSum(k+1, n, n, p)
}

// BinomialSurvival returns Pr[X >= k].
func BinomialSurvival(k, n int, p float64) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	return 1 - BinomialCDF(k-1, n, p)
}

// binomialTailSum returns sum_{i=lo..hi} pmf(i, n, p). The recurrence
// pmf(i+1) = pmf(i) * (n-i)/(i+1) * p/(1-p) is carried in log domain with a
// streaming log-sum-exp accumulator: a linear-domain recurrence would anchor
// at a term that can underflow to zero deep in a tail (e.g. k ~ 0.9n with
// p = 0.999) and silently zero out the entire sum.
func binomialTailSum(lo, hi, n int, p float64) float64 {
	if lo > hi {
		return 0
	}
	logPQ := math.Log(p) - math.Log1p(-p)
	logTerm := BinomialLogPMF(lo, n, p)
	maxLog := logTerm
	scaled := 1.0 // sum of exp(logTerm_i - maxLog)
	for i := lo; i < hi; i++ {
		logTerm += math.Log(float64(n-i)) - math.Log(float64(i+1)) + logPQ
		if logTerm > maxLog {
			scaled = scaled*math.Exp(maxLog-logTerm) + 1
			maxLog = logTerm
		} else {
			scaled += math.Exp(logTerm - maxLog)
		}
	}
	sum := math.Exp(maxLog) * scaled
	if sum > 1 {
		return 1
	}
	return sum
}

// BinomialUpperConfidence returns the smallest mean p such that
// Pr[Binomial(n, p) <= k] <= delta, i.e. the exact (Clopper-Pearson style)
// upper confidence bound on the true success probability after observing
// k successes in n trials.
//
// This is the inversion used by Langford's test-set bound, which Section 4.3
// of the paper cites as the route to tight numerical sample sizes.
func BinomialUpperConfidence(k, n int, delta float64) float64 {
	if k >= n {
		return 1
	}
	return bisectMonotone(func(p float64) float64 {
		// Decreasing in p.
		return BinomialCDF(k, n, p) - delta
	})
}

// BinomialLowerConfidence returns the largest mean p such that
// Pr[Binomial(n, p) >= k] <= delta: the exact lower confidence bound.
func BinomialLowerConfidence(k, n int, delta float64) float64 {
	if k <= 0 {
		return 0
	}
	return bisectMonotone(func(p float64) float64 {
		// Increasing in p, so negate to reuse the decreasing-root solver.
		return delta - BinomialSurvival(k, n, p)
	})
}

// bisectMonotone finds the root in (0,1) of a function that is positive at 0
// and negative at 1 (monotonically decreasing). 60 iterations pin the root
// to ~1e-18, far below any tolerance used by callers.
func bisectMonotone(f func(float64) float64) float64 {
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
