package stats

import "math"

// Binomial distribution functions, computed in log space for numerical
// stability at the testset sizes this system works with (n up to ~10^6).
// They back the exact tail-inversion bounds of Section 4.3 of the paper.
//
// The tail sums are the hot path of the tight-bound search, so they avoid
// per-term transcendental calls: ln C(n,k) comes from the cached
// log-factorial table (logfact.go), and BinomialCDF walks the tail with the
// multiplicative pmf recurrence anchored at the distribution mode, where a
// single log-domain seed is enough to keep every subsequent term a plain
// multiply. Terms decay monotonically away from the mode, which yields a
// rigorous truncation rule that stops the walk once the remaining geometric
// tail cannot move the sum by one part in 10^17 — far below the 1e-12
// equivalence tolerance the tests enforce against the straightforward
// log-sum-exp evaluation.

// LogBinomialCoeff returns ln C(n, k) using the cached log-factorial table.
// It returns -Inf for k < 0 or k > n.
func LogBinomialCoeff(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// BinomialLogPMF returns ln Pr[X = k] for X ~ Binomial(n, p).
func BinomialLogPMF(k, n int, p float64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	switch {
	case p <= 0:
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	case p >= 1:
		if k == n {
			return 0
		}
		return math.Inf(-1)
	}
	return LogBinomialCoeff(n, k) +
		float64(k)*math.Log(p) +
		float64(n-k)*math.Log1p(-p)
}

// BinomialPMF returns Pr[X = k] for X ~ Binomial(n, p).
func BinomialPMF(k, n int, p float64) float64 {
	return math.Exp(BinomialLogPMF(k, n, p))
}

// BinomialCDF returns Pr[X <= k] for X ~ Binomial(n, p).
//
// The sum runs over whichever tail holds the smaller probability mass —
// [0, k] when k is below the mode, the complement of [k+1, n] otherwise —
// anchored at the in-range term closest to the mode, so the cost is
// O(sigma) = O(sqrt(n p (1-p))) rather than O(n): the walk stops as soon as
// the remaining terms provably cannot affect the result. Branching on the
// mode rather than on n/2 keeps the directly-summed side's mass at most
// ~0.6, which eliminates the catastrophic cancellation the index-count rule
// suffered for k between n/2 and the mode (where it formed 1 - (sum ~= 1)):
// tiny tail probabilities now come out with full relative precision.
func BinomialCDF(k, n int, p float64) float64 {
	return BinomialCDFTol(k, n, p, DefaultTailTol)
}

// BinomialCDFTol is BinomialCDF with an explicit relative truncation
// tolerance for the mode-anchored walk. Looser tolerances buy shorter
// walks (length scales with ln(1/tol)) at the cost of under-counting the
// truncated remainder by at most tol relative: the event-driven sweep
// uses coarse evaluations for its bisection and window prescans, where
// only comparisons well above the tolerance matter, and re-evaluates the
// few surviving candidates at full precision. BinomialCDF(k, n, p) ==
// BinomialCDFTol(k, n, p, DefaultTailTol) exactly.
func BinomialCDFTol(k, n int, p, tol float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		return 0
	}
	if k < int(math.Floor(float64(n+1)*p)) {
		return binomialTailSumTol(0, k, n, p, tol)
	}
	return 1 - binomialTailSumTol(k+1, n, n, p, tol)
}

// BinomialSurvivalTol is BinomialSurvival with an explicit relative
// truncation tolerance; see BinomialCDFTol.
func BinomialSurvivalTol(k, n int, p, tol float64) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	if k > int(math.Floor(float64(n+1)*p)) {
		return binomialTailSumTol(k, n, n, p, tol)
	}
	return 1 - binomialTailSumTol(0, k-1, n, p, tol)
}

// BinomialSurvival returns Pr[X >= k].
//
// Like BinomialCDF it sums whichever tail holds the smaller mass directly
// — [k, n] when k is above the mode, the complement of [0, k-1] otherwise.
// The direct branch matters: computing a tiny survival as 1 - CDF(k-1)
// would round the intermediate through 1 and cap the result's accuracy at
// ~1e-16 absolute, turning e.g. a 1e-15 upper tail into a value with only
// ~2 correct digits (and step artifacts as the rounding flips). The
// event-driven worst-case sweep bisects on differences of such tails, so
// they must carry full relative precision at any magnitude.
func BinomialSurvival(k, n int, p float64) float64 {
	return BinomialSurvivalTol(k, n, p, DefaultTailTol)
}

// DefaultTailTol is the relative truncation threshold of the mode-anchored
// walk: once the geometric bound on the unvisited remainder drops below
// tol x (partial sum), the walk stops. 1e-17 is below one ulp of any
// partial sum, so truncation is invisible at float64 precision.
const DefaultTailTol = 1e-17

// binomialTailSumTol returns sum_{i=lo..hi} pmf(i, n, p), truncating the
// walk once the remainder bound drops below tol relative.
//
// The walk anchors at a = clamp(mode, lo, hi) where mode = floor((n+1)p) is
// the integer maximizer of the pmf, seeds scale 1 there, and carries the
// multiplicative recurrence outward in both directions:
//
//	down: pmf(i-1)/pmf(i) = i (1-p) / ((n-i+1) p)   <= 1 for i <= mode
//	up:   pmf(i+1)/pmf(i) = (n-i) p / ((i+1)(1-p))  <= 1 for i >= mode
//
// Every scaled term is therefore <= 1 (no overflow) and the true answer is
// exp(logpmf(a)) x (scaled sum), evaluated with a single log-domain seed.
// Both ratio sequences are monotone in their walk direction, so once a ratio
// r < 1 is seen the unvisited remainder is bounded by term x r/(1-r): the
// rigorous early-exit used below.
func binomialTailSumTol(lo, hi, n int, p, tol float64) float64 {
	if lo > hi {
		return 0
	}
	q := 1 - p
	mode := int(math.Floor(float64(n+1) * p))
	a := mode
	if a < lo {
		a = lo
	}
	if a > hi {
		a = hi
	}
	logAnchor := BinomialLogPMF(a, n, p)
	if math.IsInf(logAnchor, -1) {
		return 0
	}
	sum := 1.0 // scaled pmf(a)
	// Walk up from the anchor.
	term := 1.0
	for i := a; i < hi; i++ {
		r := float64(n-i) * p / (float64(i+1) * q)
		term *= r
		sum += term
		if r < 1 && term*r < tol*(1-r)*sum {
			break
		}
	}
	// Walk down from the anchor.
	term = 1.0
	for i := a; i > lo; i-- {
		r := float64(i) * q / (float64(n-i+1) * p)
		term *= r
		sum += term
		if r < 1 && term*r < tol*(1-r)*sum {
			break
		}
	}
	s := math.Exp(logAnchor) * sum
	if s > 1 {
		return 1
	}
	return s
}

// BinomialUpperConfidence returns the smallest mean p such that
// Pr[Binomial(n, p) <= k] <= delta, i.e. the exact (Clopper-Pearson style)
// upper confidence bound on the true success probability after observing
// k successes in n trials.
//
// This is the inversion used by Langford's test-set bound, which Section 4.3
// of the paper cites as the route to tight numerical sample sizes.
func BinomialUpperConfidence(k, n int, delta float64) float64 {
	if k >= n {
		return 1
	}
	return bisectMonotone(func(p float64) float64 {
		// Decreasing in p.
		return BinomialCDF(k, n, p) - delta
	})
}

// BinomialLowerConfidence returns the largest mean p such that
// Pr[Binomial(n, p) >= k] <= delta: the exact lower confidence bound.
func BinomialLowerConfidence(k, n int, delta float64) float64 {
	if k <= 0 {
		return 0
	}
	return bisectMonotone(func(p float64) float64 {
		// Increasing in p, so negate to reuse the decreasing-root solver.
		return delta - BinomialSurvival(k, n, p)
	})
}

// bisectMonotone finds the root in (0,1) of a function that is positive at 0
// and negative at 1 (monotonically decreasing). 60 iterations pin the root
// to ~1e-18, far below any tolerance used by callers.
func bisectMonotone(f func(float64) float64) float64 {
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
