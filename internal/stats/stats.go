// Package stats provides the small numerical toolbox the rest of the system
// is built on: descriptive statistics, empirical quantiles, and numerically
// stable binomial distribution functions used by the exact ("tight
// numerical") sample-size bounds of Section 4.3 of the ease.ml/ci paper.
//
// Everything in this package is deterministic and allocation-light; it is
// deliberately restricted to what the estimators and simulators need rather
// than being a general statistics library.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by descriptive statistics that require at least one
// observation.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs.
// It returns ErrEmpty when xs is empty.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the population variance of xs (dividing by n, not n-1):
// the estimators in this repository reason about variances of known
// distributions, where the population convention matches the paper's
// E[(n_i-o_i)^2] usage.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)), nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the numpy/R default).
// The input slice is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile q must be in [0,1]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// QuantileGap returns the distance between the (1-q)- and q-quantiles of xs.
// The ease.ml/ci paper uses this as the "empirical error" of an estimator:
// the gap between the delta and 1-delta quantiles of observed test
// accuracies (Section 5.1, footnote 1).
func QuantileGap(xs []float64, q float64) (float64, error) {
	lo, err := Quantile(xs, q)
	if err != nil {
		return 0, err
	}
	hi, err := Quantile(xs, 1-q)
	if err != nil {
		return 0, err
	}
	return hi - lo, nil
}

// Clamp returns x restricted to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
