package core

import (
	"testing"

	"github.com/easeml/ci/internal/interval"
	"github.com/easeml/ci/internal/patterns"
	"github.com/easeml/ci/internal/script"
)

func cfg(t *testing.T, cond string, rel float64, steps int, kind script.AdaptivityKind) *script.Config {
	t.Helper()
	a := script.Adaptivity{Kind: kind}
	if kind == script.AdaptivityNone {
		a.Email = "qa@example.com"
	}
	c, err := script.New(cond, rel, interval.FPFree, a, steps)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDispatchPattern1(t *testing.T) {
	c := cfg(t, "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01", 0.9999, 32, script.AdaptivityNone)
	plan, err := PlanForConfig(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != Pattern1 {
		t.Fatalf("kind = %v, want pattern1", plan.Kind)
	}
	if plan.Pattern1Plan == nil || plan.Pattern2Plan != nil || plan.CoarseFinePlan != nil {
		t.Error("wrong sub-plan populated")
	}
	// Section 4.1.1's "29K" against the baseline 267K: ~10x savings.
	if plan.LabeledN < 29000 || plan.LabeledN > 29100 {
		t.Errorf("LabeledN = %d, want ~29048", plan.LabeledN)
	}
	if s := plan.Savings(); s < 8 {
		t.Errorf("savings = %v, want ~9x", s)
	}
	if plan.PerCommitLabels == 0 {
		t.Error("Pattern 1 must offer active labeling")
	}
	if plan.UnlabeledN == 0 {
		t.Error("Pattern 1 must require an unlabeled filter pool")
	}
}

func TestDispatchPattern2(t *testing.T) {
	c := cfg(t, "n - o > 0.02 +/- 0.01", 0.9999, 32, script.AdaptivityFull)
	plan, err := PlanForConfig(c, Options{
		Budget:              patterns.BudgetSplit,
		AssumedDisagreement: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != Pattern2 {
		t.Fatalf("kind = %v, want pattern2", plan.Kind)
	}
	if plan.UnlabeledN == 0 || plan.LabeledN == 0 || plan.PerCommitLabels == 0 {
		t.Errorf("plan incomplete: %+v", plan)
	}
	// Fully adaptive Pattern-2 at p=0.1 is the "67K" regime.
	if plan.LabeledN < 67000 || plan.LabeledN > 68500 {
		t.Errorf("LabeledN = %d, want ~67.7K", plan.LabeledN)
	}
}

func TestDispatchPattern2WithoutAssumedD(t *testing.T) {
	c := cfg(t, "n - o > 0.02 +/- 0.01", 0.999, 8, script.AdaptivityFull)
	plan, err := PlanForConfig(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != Pattern2 {
		t.Fatalf("kind = %v", plan.Kind)
	}
	if plan.LabeledN != 0 {
		t.Errorf("LabeledN should be runtime-determined, got %d", plan.LabeledN)
	}
	if plan.UnlabeledN == 0 {
		t.Error("unlabeled stage must be planned")
	}
}

func TestDispatchCoarseFine(t *testing.T) {
	c := cfg(t, "n > 0.95 +/- 0.01", 0.999, 8, script.AdaptivityFull)
	plan, err := PlanForConfig(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != CoarseFine {
		t.Fatalf("kind = %v, want coarse-fine", plan.Kind)
	}
	if plan.LabeledN >= plan.BaselinePlan.N {
		t.Errorf("coarse-fine plan %d not below baseline %d", plan.LabeledN, plan.BaselinePlan.N)
	}
}

func TestDispatchBaselineFallback(t *testing.T) {
	// A low-threshold accuracy floor matches no pattern.
	c := cfg(t, "n > 0.5 +/- 0.05", 0.999, 32, script.AdaptivityNone)
	plan, err := PlanForConfig(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != Baseline {
		t.Fatalf("kind = %v, want baseline", plan.Kind)
	}
	if plan.LabeledN != plan.BaselinePlan.N {
		t.Error("baseline plan sizes disagree")
	}
	if plan.Savings() != 1 {
		t.Errorf("baseline savings = %v, want 1", plan.Savings())
	}
}

func TestDisableOptimizations(t *testing.T) {
	c := cfg(t, "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01", 0.9999, 32, script.AdaptivityNone)
	plan, err := PlanForConfig(c, Options{DisableOptimizations: true})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != Baseline {
		t.Fatalf("kind = %v, want baseline (optimizations disabled)", plan.Kind)
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := PlanForConfig(nil, DefaultOptions()); err == nil {
		t.Error("nil config should fail")
	}
	bad := &script.Config{}
	if _, err := PlanForConfig(bad, DefaultOptions()); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestPlanKindString(t *testing.T) {
	if Baseline.String() != "baseline" || Pattern1.String() != "pattern1" ||
		Pattern2.String() != "pattern2" || CoarseFine.String() != "coarse-fine" {
		t.Error("PlanKind.String wrong")
	}
	if PlanKind(9).String() == "" {
		t.Error("default String empty")
	}
}
