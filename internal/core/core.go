// Package core ties the estimator and the optimization patterns together
// into the planner that is the paper's headline contribution: given an
// ease.ml/ci script, decide how the condition will be tested and how many
// labeled and unlabeled examples the user must provide.
//
// The planner mirrors Section 4's dispatch: it first tries Pattern 1
// (explicit d clause -> hierarchical testing + active labeling), then
// Pattern 2 (bare n-o clause -> implicit variance bound), then the
// coarse-to-fine accuracy pattern, and finally falls back to the baseline
// Hoeffding estimator of Section 3. The baseline plan is always computed so
// reports can show the savings.
package core

import (
	"fmt"

	"github.com/easeml/ci/internal/adaptivity"
	"github.com/easeml/ci/internal/estimator"
	"github.com/easeml/ci/internal/patterns"
	"github.com/easeml/ci/internal/script"
)

// PlanKind says which estimation strategy the planner selected.
type PlanKind int

const (
	// Baseline is the Section 3 Hoeffding estimator.
	Baseline PlanKind = iota
	// Pattern1 is hierarchical testing with an explicit d clause.
	Pattern1
	// Pattern2 is the implicit variance bound for a bare n-o clause.
	Pattern2
	// CoarseFine is the two-stage accuracy test for n > A with large A.
	CoarseFine
)

// String implements fmt.Stringer.
func (k PlanKind) String() string {
	switch k {
	case Baseline:
		return "baseline"
	case Pattern1:
		return "pattern1"
	case Pattern2:
		return "pattern2"
	case CoarseFine:
		return "coarse-fine"
	default:
		return fmt.Sprintf("PlanKind(%d)", int(k))
	}
}

// Options tunes the planner.
type Options struct {
	// DisableOptimizations forces the baseline estimator (ablation switch).
	DisableOptimizations bool
	// Budget selects the delta accounting for patterns.
	Budget patterns.DeltaBudget
	// Variance selects the variance proxy for Pattern 1.
	Variance patterns.VarianceBound
	// AssumedDisagreement sizes Pattern 2's labeled stage at planning time
	// (the true size is only known at runtime, Section 4.2). Zero means
	// "plan the unlabeled stage only".
	AssumedDisagreement float64
	// CoarseFineThreshold is the minimum A for the coarse-to-fine pattern
	// ("only ... when the lower bound is large (e.g., 0.9)").
	CoarseFineThreshold float64
}

// DefaultOptions mirror the paper's choices.
func DefaultOptions() Options {
	return Options{
		Budget:              patterns.BudgetSplit,
		Variance:            patterns.VarianceAtThreshold,
		CoarseFineThreshold: 0.9,
	}
}

// Plan is the complete labeling plan for a script.
type Plan struct {
	Kind   PlanKind
	Config *script.Config
	// BaselinePlan is the Section 3 estimate (always present).
	BaselinePlan *estimator.Plan
	// Exactly one of the following is non-nil unless Kind == Baseline.
	Pattern1Plan   *patterns.Pattern1Plan
	Pattern2Plan   *patterns.Pattern2Plan
	CoarseFinePlan *patterns.CoarseFinePlan

	// LabeledN is the number of labels required up front.
	LabeledN int
	// UnlabeledN is the size of the unlabeled pool required (0 when the
	// plan needs none beyond the labeled set).
	UnlabeledN int
	// PerCommitLabels is the amortized per-commit label cost under active
	// labeling (0 when active labeling does not apply).
	PerCommitLabels int
}

// Savings reports the baseline-to-optimized label ratio (1 when the
// baseline plan was selected).
func (p *Plan) Savings() float64 {
	if p.Kind == Baseline || p.LabeledN == 0 {
		return 1
	}
	return float64(p.BaselinePlan.N) / float64(p.LabeledN)
}

// PlanForConfig runs the pattern dispatch for a validated script.
func PlanForConfig(cfg *script.Config, opts Options) (*Plan, error) {
	if cfg == nil {
		return nil, fmt.Errorf("core: nil config")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	kind, err := adaptivity.FromScript(cfg.Adaptivity.Kind)
	if err != nil {
		return nil, err
	}
	base, err := estimator.SampleSize(cfg.Condition, cfg.Delta(), estimator.Options{
		Steps:      cfg.Steps,
		Adaptivity: kind,
		Strategy:   estimator.PerVariable,
		Split:      estimator.SplitOptimal,
	})
	if err != nil {
		return nil, err
	}
	plan := &Plan{Kind: Baseline, Config: cfg, BaselinePlan: base, LabeledN: base.N}
	if opts.DisableOptimizations {
		return plan, nil
	}
	popts := patterns.Options{
		Steps:      cfg.Steps,
		Adaptivity: kind,
		Budget:     opts.Budget,
		Variance:   opts.Variance,
	}

	if _, _, ok := patterns.MatchPattern1(cfg.Condition); ok {
		p1, err := patterns.PlanPattern1(cfg.Condition, cfg.Delta(), popts)
		if err != nil {
			return nil, err
		}
		plan.Kind = Pattern1
		plan.Pattern1Plan = p1
		plan.LabeledN = p1.TestN
		plan.UnlabeledN = p1.FilterN
		plan.PerCommitLabels = p1.PerCommitLabels
		return plan, nil
	}

	if patterns.MatchPattern2(cfg.Condition) {
		p2, err := patterns.PlanPattern2(cfg.Condition, cfg.Delta(), popts)
		if err != nil {
			return nil, err
		}
		plan.Kind = Pattern2
		plan.Pattern2Plan = p2
		plan.UnlabeledN = p2.UnlabeledN
		if opts.AssumedDisagreement > 0 {
			n, err := p2.TestN(opts.AssumedDisagreement)
			if err != nil {
				return nil, err
			}
			plan.LabeledN = n
			labels, err := p2.PerCommitLabels(opts.AssumedDisagreement)
			if err != nil {
				return nil, err
			}
			plan.PerCommitLabels = labels
		} else {
			// Labeled size is determined at runtime from the observed d.
			plan.LabeledN = 0
		}
		return plan, nil
	}

	threshold := opts.CoarseFineThreshold
	if threshold == 0 {
		threshold = 0.9
	}
	if patterns.MatchCoarseFine(cfg.Condition, threshold) {
		cf, err := patterns.PlanCoarseFine(cfg.Condition, cfg.Delta(), popts, threshold)
		if err != nil {
			return nil, err
		}
		// The fine stage is sized at runtime from the coarse certificate;
		// plan the coarse stage and a worst-case fine stage at the clause
		// threshold (the certificate can only be better).
		fine, err := cf.FineN(cf.Clause.Threshold - cf.CoarseTolerance)
		if err == nil && cf.CoarseN+fine < base.N {
			plan.Kind = CoarseFine
			plan.CoarseFinePlan = cf
			plan.LabeledN = cf.CoarseN + fine
			return plan, nil
		}
		// Otherwise the pattern does not pay off; keep the baseline.
	}
	return plan, nil
}
