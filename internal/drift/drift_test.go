package drift

import (
	"math/rand"
	"testing"
)

func validConfig() Config {
	return Config{
		ReferenceAccuracy: 0.9,
		MaxDrop:           0.05,
		Epsilon:           0.02,
		Delta:             0.01,
		Windows:           12,
	}
}

func window(acc float64, n int, seed int64) (preds, labels []int) {
	rng := rand.New(rand.NewSource(seed))
	preds = make([]int, n)
	labels = make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(4)
		if rng.Float64() < acc {
			preds[i] = labels[i]
		} else {
			preds[i] = (labels[i] + 1) % 4
		}
	}
	return preds, labels
}

func TestMonitorClassifiesWindows(t *testing.T) {
	m, err := New(validConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := m.WindowSize()
	if n < 1000 {
		t.Fatalf("window size %d suspiciously small", n)
	}
	// Healthy window: accuracy 0.9 >> threshold 0.85 + eps.
	preds, labels := window(0.90, n, 1)
	v, err := m.Observe(preds, labels)
	if err != nil || v != OK {
		t.Errorf("healthy window = %v, %v", v, err)
	}
	// Drifted window: accuracy 0.7 << threshold - eps.
	preds, labels = window(0.70, n, 2)
	v, err = m.Observe(preds, labels)
	if err != nil || v != Drift {
		t.Errorf("drifted window = %v, %v", v, err)
	}
	// Borderline window: accuracy at the threshold.
	preds, labels = window(0.85, n, 3)
	v, err = m.Observe(preds, labels)
	if err != nil || v != Unknown {
		t.Errorf("borderline window = %v, %v", v, err)
	}
	if len(m.History()) != 3 || m.Remaining() != 9 {
		t.Errorf("bookkeeping: history=%d remaining=%d", len(m.History()), m.Remaining())
	}
}

func TestMonitorBudget(t *testing.T) {
	cfg := validConfig()
	cfg.Windows = 2
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	preds, labels := window(0.9, m.WindowSize(), 1)
	for i := 0; i < 2; i++ {
		if _, err := m.Observe(preds, labels); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Observe(preds, labels); err == nil {
		t.Error("exhausted monitor must refuse windows")
	}
}

func TestMonitorWindowValidation(t *testing.T) {
	m, err := New(validConfig())
	if err != nil {
		t.Fatal(err)
	}
	preds, labels := window(0.9, m.WindowSize(), 1)
	if _, err := m.Observe(preds[:10], labels[:10]); err == nil {
		t.Error("undersized window should fail")
	}
	if _, err := m.Observe(preds, labels[:len(labels)-1]); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := validConfig()
	bad.ReferenceAccuracy = 0
	if _, err := New(bad); err == nil {
		t.Error("zero reference should fail")
	}
	bad = validConfig()
	bad.MaxDrop = 0
	if _, err := New(bad); err == nil {
		t.Error("zero drop should fail")
	}
	bad = validConfig()
	bad.MaxDrop = 0.95
	if _, err := New(bad); err == nil {
		t.Error("drop above reference should fail")
	}
	bad = validConfig()
	bad.Windows = 0
	if _, err := New(bad); err == nil {
		t.Error("zero windows should fail")
	}
	bad = validConfig()
	bad.Delta = 0
	if _, err := New(bad); err == nil {
		t.Error("zero delta should fail")
	}
	bad = validConfig()
	bad.Epsilon = 0
	if _, err := New(bad); err == nil {
		t.Error("zero epsilon should fail")
	}
}

func TestVerdictString(t *testing.T) {
	if OK.String() != "OK" || Drift.String() != "DRIFT" || Unknown.String() != "UNKNOWN" {
		t.Error("Verdict.String wrong")
	}
	if Verdict(9).String() == "" {
		t.Error("default String empty")
	}
}

func TestThresholdAndHistoryIsolation(t *testing.T) {
	m, _ := New(validConfig())
	if m.Threshold() != 0.85 {
		t.Errorf("threshold = %v", m.Threshold())
	}
	preds, labels := window(0.9, m.WindowSize(), 1)
	if _, err := m.Observe(preds, labels); err != nil {
		t.Fatal(err)
	}
	h := m.History()
	h[0] = Drift
	if m.History()[0] != OK {
		t.Error("History leaked internal state")
	}
}
