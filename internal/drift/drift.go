// Package drift implements the concept-drift monitor the paper sketches as
// the dual of continuous integration (Section 2.2, Discussion): instead of
// fixing the testset and testing a stream of models, fix one deployed model
// and test its quality over a stream of fresh labeled windows. The same
// (epsilon, delta) machinery sizes the windows and classifies each one as
// OK, DRIFT, or UNKNOWN with the same rigor as a CI decision.
package drift

import (
	"fmt"

	"github.com/easeml/ci/internal/bounds"
	"github.com/easeml/ci/internal/interval"
)

// Config parameterizes a drift monitor.
type Config struct {
	// ReferenceAccuracy is the model's accuracy certified at deployment.
	ReferenceAccuracy float64
	// MaxDrop is how far accuracy may degrade before it counts as drift.
	MaxDrop float64
	// Epsilon is the estimation tolerance per window.
	Epsilon float64
	// Delta is the failure budget across all windows.
	Delta float64
	// Windows is the number of monitoring windows the budget must cover
	// (the monitoring analogue of steps).
	Windows int
}

// Verdict classifies one monitoring window.
type Verdict int

const (
	// OK: accuracy is provably above the drift threshold.
	OK Verdict = iota
	// Drift: accuracy is provably below the threshold.
	Drift
	// Unknown: the window cannot distinguish the two at this tolerance.
	Unknown
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case OK:
		return "OK"
	case Drift:
		return "DRIFT"
	case Unknown:
		return "UNKNOWN"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Monitor watches a fixed model over labeled windows.
type Monitor struct {
	cfg       Config
	windowN   int
	threshold float64
	history   []Verdict
}

// New validates the configuration and sizes the per-window sample
// requirement with the one-sided Hoeffding bound at delta/Windows (the
// non-adaptive union bound: windows do not feed back into the model).
func New(cfg Config) (*Monitor, error) {
	if !(cfg.ReferenceAccuracy > 0 && cfg.ReferenceAccuracy <= 1) {
		return nil, fmt.Errorf("drift: reference accuracy %v outside (0,1]", cfg.ReferenceAccuracy)
	}
	if !(cfg.MaxDrop > 0 && cfg.MaxDrop < cfg.ReferenceAccuracy) {
		return nil, fmt.Errorf("drift: max drop %v must be in (0, reference)", cfg.MaxDrop)
	}
	if cfg.Windows < 1 {
		return nil, fmt.Errorf("drift: windows must be >= 1, got %d", cfg.Windows)
	}
	if !(cfg.Delta > 0 && cfg.Delta < 1) {
		return nil, fmt.Errorf("drift: delta must be in (0,1), got %v", cfg.Delta)
	}
	n, err := bounds.HoeffdingSampleSize(1, cfg.Epsilon, cfg.Delta/float64(cfg.Windows))
	if err != nil {
		return nil, err
	}
	return &Monitor{
		cfg:       cfg,
		windowN:   n,
		threshold: cfg.ReferenceAccuracy - cfg.MaxDrop,
	}, nil
}

// WindowSize returns the number of labeled examples each window needs.
func (m *Monitor) WindowSize() int { return m.windowN }

// Threshold returns the accuracy below which the model counts as drifted.
func (m *Monitor) Threshold() float64 { return m.threshold }

// Observe classifies one window given the model's predictions and the
// window's labels. It consumes one unit of the monitoring budget.
func (m *Monitor) Observe(preds, labels []int) (Verdict, error) {
	if len(m.history) >= m.cfg.Windows {
		return Unknown, fmt.Errorf("drift: monitoring budget (%d windows) exhausted; recertify the model", m.cfg.Windows)
	}
	if len(preds) != len(labels) {
		return Unknown, fmt.Errorf("drift: %d predictions vs %d labels", len(preds), len(labels))
	}
	if len(preds) < m.windowN {
		return Unknown, fmt.Errorf("drift: window has %d examples, need %d", len(preds), m.windowN)
	}
	correct := 0
	for i := range preds {
		if preds[i] == labels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(preds))
	iv := interval.Around(acc, m.cfg.Epsilon)
	var v Verdict
	switch iv.GreaterThan(m.threshold) {
	case interval.True:
		v = OK
	case interval.False:
		v = Drift
	default:
		v = Unknown
	}
	m.history = append(m.history, v)
	return v, nil
}

// History returns the verdicts observed so far.
func (m *Monitor) History() []Verdict {
	out := make([]Verdict, len(m.history))
	copy(out, m.history)
	return out
}

// Remaining returns how many windows the budget still covers.
func (m *Monitor) Remaining() int { return m.cfg.Windows - len(m.history) }
