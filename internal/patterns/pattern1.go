package patterns

import (
	"fmt"
	"math"

	"github.com/easeml/ci/internal/bounds"
	"github.com/easeml/ci/internal/condlang"
)

// Pattern1Plan is the two-level hierarchical test of Section 4.1.1 for
// "d < A +/- B /\ n - o > C +/- D":
//
//  1. Filter: estimate d on FilterN *unlabeled* examples to tolerance eps'
//     with half the failure budget; reject if the estimate exceeds A + eps'.
//  2. Test: conditioned on the filter passing, per-example differences
//     n_i - o_i have second moment below P, so Bennett's inequality bounds
//     the labeled sample size TestN for the n - o clause.
//
// Active labeling (Section 4.1.2) additionally amortizes the labels: only
// the ~P fraction of examples on which the two models disagree need labels,
// so each commit costs PerCommitLabels fresh labels.
type Pattern1Plan struct {
	// DClause is "d < A +/- B"; QualityClause is "n - o > C +/- D".
	DClause, QualityClause condlang.Clause
	// FilterTolerance is eps', the tolerance of the unlabeled d estimate.
	FilterTolerance float64
	// P is the variance proxy used by the Bennett test.
	P float64
	// FilterN is the number of *unlabeled* examples for the d estimate.
	FilterN int
	// TestN is the number of *labeled* examples for the quality test,
	// covering all Steps evaluations under the adaptivity multiplier.
	TestN int
	// PerCommitLabels is the active-labeling amortization: fresh labels
	// needed per commit when only disagreements are labeled (no steps
	// multiplier; each commit labels its own disagreement set).
	PerCommitLabels int
	// Delta is the overall failure budget the plan was computed for.
	Delta float64
	// Opts echoes the planning options.
	Opts Options
}

// PlanPattern1 builds the hierarchical plan for a formula matching
// Pattern 1. delta is the overall failure budget (1 - reliability).
func PlanPattern1(f condlang.Formula, delta float64, opts Options) (*Pattern1Plan, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if !(delta > 0 && delta < 1) {
		return nil, fmt.Errorf("patterns: delta must be in (0,1), got %v", delta)
	}
	dIdx, qIdx, ok := MatchPattern1(f)
	if !ok {
		return nil, fmt.Errorf("patterns: formula %q does not match Pattern 1 (d < A +/- B /\\ n - o > C +/- D)", f)
	}
	dc, qc := f.Clauses[dIdx], f.Clauses[qIdx]
	if !(dc.Threshold > 0 && dc.Threshold < 1) {
		return nil, fmt.Errorf("patterns: d threshold must be in (0,1), got %v", dc.Threshold)
	}
	epsFilter := opts.FilterTolerance
	if epsFilter == 0 {
		epsFilter = dc.Tolerance
	}
	logM, err := opts.Adaptivity.LogMultiplier(opts.Steps)
	if err != nil {
		return nil, err
	}

	plan := &Pattern1Plan{
		DClause:         dc,
		QualityClause:   qc,
		FilterTolerance: epsFilter,
		Delta:           delta,
		Opts:            opts,
	}

	// Variance proxy for the conditioned test.
	switch opts.Variance {
	case VarianceConservative:
		plan.P = dc.Threshold + 2*epsFilter
	default:
		plan.P = dc.Threshold
	}
	if plan.P >= 1 {
		return nil, fmt.Errorf("patterns: variance proxy %v >= 1; hierarchical testing cannot help", plan.P)
	}

	// Budget accounting.
	var filterLogInv, testLogInv float64
	switch opts.Budget {
	case BudgetTestOnly:
		// The d bound is assumed known; the filter is free and the test
		// receives the whole budget, two-sided: ln(2/delta).
		filterLogInv = 0
		testLogInv = math.Log(2/delta) + logM
	default: // BudgetSplit
		// Filter: one-sided upper estimate of d with delta/2.
		filterLogInv = math.Log(2/delta) + logM
		// Test: two-sided Bennett with delta/2: ln(4/delta).
		testLogInv = math.Log(4/delta) + logM
	}

	if filterLogInv > 0 {
		n, err := bounds.HoeffdingSampleSizeLog(1, epsFilter, filterLogInv)
		if err != nil {
			return nil, err
		}
		plan.FilterN = n
	}
	testN, err := bounds.BennettSampleSizeLog(plan.P, qc.Tolerance, testLogInv)
	if err != nil {
		return nil, err
	}
	plan.TestN = testN

	// Active labeling: per-commit labels = p * (single-step Bennett size).
	perStepLogInv := testLogInv - logM
	single, err := bounds.BennettSampleSizeLog(plan.P, qc.Tolerance, perStepLogInv)
	if err != nil {
		return nil, err
	}
	plan.PerCommitLabels = int(math.Ceil(float64(single) * plan.P))
	return plan, nil
}

// TotalLabels returns the worst-case label cost of running the plan for the
// configured number of steps with active labeling: each commit labels its
// own disagreement set.
func (p *Pattern1Plan) TotalLabels() int {
	return p.PerCommitLabels * p.Opts.Steps
}

// BaselineN returns the sample size the un-optimized estimator would charge
// for the same quality clause (two-sided Hoeffding on the range-2 variable
// n-o), for reporting speedups.
func (p *Pattern1Plan) BaselineN() (int, error) {
	logM, err := p.Opts.Adaptivity.LogMultiplier(p.Opts.Steps)
	if err != nil {
		return 0, err
	}
	return bounds.HoeffdingSampleSizeLog(2, p.QualityClause.Tolerance, math.Log(2/p.Delta)+logM)
}
