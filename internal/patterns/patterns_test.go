package patterns

import (
	"math"
	"testing"

	"github.com/easeml/ci/internal/adaptivity"
	"github.com/easeml/ci/internal/condlang"
)

func mustFormula(t *testing.T, src string) condlang.Formula {
	t.Helper()
	f, err := condlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestMatchPattern1(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01", true},
		{"n - o > 0.02 +/- 0.01 /\\ d < 0.1 +/- 0.01", true}, // order-insensitive
		{"d < 0.1 +/- 0.01", false},                          // missing quality clause
		{"n - o > 0.02 +/- 0.01", false},                     // missing d clause
		{"d > 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01", false},
		{"d < 0.1 +/- 0.01 /\\ n - o < 0.02 +/- 0.01", false},
		{"d < 0.1 +/- 0.01 /\\ o - n > 0.02 +/- 0.01", false},
		{"2 * d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01", false},
		{"d < 0.1 +/- 0.01 /\\ n - 1.1 * o > 0.02 +/- 0.01", false},
		{"d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01 /\\ n > 0.5 +/- 0.1", false}, // 3 clauses
	}
	for _, c := range cases {
		_, _, ok := MatchPattern1(mustFormula(t, c.src))
		if ok != c.want {
			t.Errorf("MatchPattern1(%q) = %v, want %v", c.src, ok, c.want)
		}
	}
	// Indices point at the right clauses regardless of order.
	dIdx, qIdx, _ := MatchPattern1(mustFormula(t, "n - o > 0.02 +/- 0.01 /\\ d < 0.1 +/- 0.01"))
	if dIdx != 1 || qIdx != 0 {
		t.Errorf("indices = %d, %d; want 1, 0", dIdx, qIdx)
	}
}

func TestPlanPattern1PaperNumbers(t *testing.T) {
	// Section 4.1.1: p=0.1, 1-delta=0.9999, eps=0.01, H=32.
	f := mustFormula(t, "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01")
	plan, err := PlanPattern1(f, 0.0001, Options{
		Steps: 32, Adaptivity: adaptivity.None,
		Budget: BudgetSplit, Variance: VarianceAtThreshold,
	})
	if err != nil {
		t.Fatal(err)
	}
	// "we only need 29K samples for 32 non-adaptive steps".
	if plan.TestN < 29000 || plan.TestN > 29100 {
		t.Errorf("TestN = %d, want ~29048", plan.TestN)
	}
	// Section 4.1.2: "n = 2188" labels per commit.
	if plan.PerCommitLabels < 2188 || plan.PerCommitLabels > 2190 {
		t.Errorf("PerCommitLabels = %d, want ~2189", plan.PerCommitLabels)
	}
	if plan.P != 0.1 {
		t.Errorf("P = %v, want 0.1", plan.P)
	}

	// "and 67K samples for 32 fully-adaptive steps".
	planFull, err := PlanPattern1(f, 0.0001, Options{
		Steps: 32, Adaptivity: adaptivity.Full,
		Budget: BudgetSplit, Variance: VarianceAtThreshold,
	})
	if err != nil {
		t.Fatal(err)
	}
	if planFull.TestN < 67600 || planFull.TestN > 67800 {
		t.Errorf("fully adaptive TestN = %d, want ~67706", planFull.TestN)
	}

	// "10x fewer than the baseline (Figure 2)".
	base, err := plan.BaselineN()
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(base) / float64(plan.TestN); ratio < 8 {
		t.Errorf("baseline/test ratio = %v, want ~10", ratio)
	}
}

func TestPlanPattern1ConservativeVariance(t *testing.T) {
	f := mustFormula(t, "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01")
	at, err := PlanPattern1(f, 0.001, Options{
		Steps: 8, Adaptivity: adaptivity.None, Variance: VarianceAtThreshold,
	})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := PlanPattern1(f, 0.001, Options{
		Steps: 8, Adaptivity: adaptivity.None, Variance: VarianceConservative,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cons.P-0.12) > 1e-12 {
		t.Errorf("conservative P = %v, want 0.12", cons.P)
	}
	if cons.TestN <= at.TestN {
		t.Errorf("conservative TestN %d should exceed at-threshold %d", cons.TestN, at.TestN)
	}
}

func TestPlanPattern1Budgets(t *testing.T) {
	f := mustFormula(t, "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01")
	split, err := PlanPattern1(f, 0.001, Options{Steps: 8, Adaptivity: adaptivity.None, Budget: BudgetSplit})
	if err != nil {
		t.Fatal(err)
	}
	testOnly, err := PlanPattern1(f, 0.001, Options{Steps: 8, Adaptivity: adaptivity.None, Budget: BudgetTestOnly})
	if err != nil {
		t.Fatal(err)
	}
	if split.FilterN == 0 {
		t.Error("split budget must size the unlabeled filter")
	}
	if testOnly.FilterN != 0 {
		t.Error("test-only budget must not size a filter")
	}
	if testOnly.TestN >= split.TestN {
		t.Errorf("test-only TestN %d should be below split TestN %d", testOnly.TestN, split.TestN)
	}
	if split.TotalLabels() != split.PerCommitLabels*8 {
		t.Error("TotalLabels arithmetic wrong")
	}
}

func TestPlanPattern1Errors(t *testing.T) {
	good := mustFormula(t, "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01")
	if _, err := PlanPattern1(mustFormula(t, "n > 0.5 +/- 0.1"), 0.001, Options{Steps: 1}); err == nil {
		t.Error("non-matching formula should fail")
	}
	if _, err := PlanPattern1(good, 0, Options{Steps: 1}); err == nil {
		t.Error("delta=0 should fail")
	}
	if _, err := PlanPattern1(good, 0.001, Options{Steps: 0}); err == nil {
		t.Error("steps=0 should fail")
	}
	if _, err := PlanPattern1(good, 0.001, Options{Steps: 1, FilterTolerance: -1}); err == nil {
		t.Error("negative filter tolerance should fail")
	}
	bad := mustFormula(t, "d < 0.99 +/- 0.01 /\\ n - o > 0.02 +/- 0.01")
	if _, err := PlanPattern1(bad, 0.001, Options{Steps: 1, Variance: VarianceConservative}); err == nil {
		t.Error("variance proxy >= 1 should fail")
	}
}

func TestMatchPattern2(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"n - o > 0.02 +/- 0.01", true},
		{"n - o > 0.02 +/- 0.02", true},
		{"n - o < 0.02 +/- 0.01", false},
		{"o - n > 0.02 +/- 0.01", false},
		{"n > 0.02 +/- 0.01", false},
		{"n - o > 0.02 +/- 0.01 /\\ d < 0.1 +/- 0.01", false}, // that's Pattern 1
	}
	for _, c := range cases {
		if got := MatchPattern2(mustFormula(t, c.src)); got != c.want {
			t.Errorf("MatchPattern2(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestPlanPattern2SemEvalNumbers(t *testing.T) {
	// Figure 5: H=7, delta=0.002, d bound 0.1 known a priori (test-only
	// budget). Non-adaptive eps=0.02 -> 4713; fully adaptive eps=0.022 ->
	// 5204; fully adaptive eps=0.02 -> >6K.
	f1 := mustFormula(t, "n - o > 0.02 +/- 0.02")
	plan, err := PlanPattern2(f1, 0.002, Options{
		Steps: 7, Adaptivity: adaptivity.None, Budget: BudgetTestOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := plan.TestN(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4713 {
		t.Errorf("non-adaptive TestN = %d, want 4713", n)
	}
	if plan.UnlabeledN != 0 {
		t.Errorf("test-only budget should skip the unlabeled set, got %d", plan.UnlabeledN)
	}

	f3 := mustFormula(t, "n - o > 0.018 +/- 0.022")
	planA, err := PlanPattern2(f3, 0.002, Options{
		Steps: 7, Adaptivity: adaptivity.Full, Budget: BudgetTestOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err = planA.TestN(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5204 {
		t.Errorf("adaptive eps=0.022 TestN = %d, want 5204", n)
	}

	planB, err := PlanPattern2(f1, 0.002, Options{
		Steps: 7, Adaptivity: adaptivity.Full, Budget: BudgetTestOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err = planB.TestN(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 6000 {
		t.Errorf("adaptive eps=0.02 TestN = %d, want > 6000", n)
	}
}

func TestPlanPattern2SixteenX(t *testing.T) {
	// "the first testset will be 16x smaller than testing n-o directly".
	f := mustFormula(t, "n - o > 0.02 +/- 0.01")
	plan, err := PlanPattern2(f, 0.001, Options{Steps: 8, Adaptivity: adaptivity.None, Budget: BudgetSplit})
	if err != nil {
		t.Fatal(err)
	}
	base, err := plan.BaselineN()
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(base) / float64(plan.UnlabeledN)
	if ratio < 14 || ratio > 18 {
		t.Errorf("baseline/unlabeled ratio = %v, want ~16", ratio)
	}
}

func TestPattern2PerCommitLabels(t *testing.T) {
	f := mustFormula(t, "n - o > 0.02 +/- 0.01")
	plan, err := PlanPattern2(f, 0.0001, Options{Steps: 32, Adaptivity: adaptivity.Full, Budget: BudgetSplit})
	if err != nil {
		t.Fatal(err)
	}
	labels, err := plan.PerCommitLabels(0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Same arithmetic as Pattern 1's active labeling: ~2189.
	if labels < 2188 || labels > 2190 {
		t.Errorf("PerCommitLabels = %d, want ~2189", labels)
	}
	if _, err := plan.PerCommitLabels(0); err == nil {
		t.Error("dUpper=0 should fail")
	}
	if _, err := plan.TestN(1.5); err == nil {
		t.Error("dUpper>1 should fail")
	}
}

func TestPattern2MonotoneInDisagreement(t *testing.T) {
	f := mustFormula(t, "n - o > 0.02 +/- 0.01")
	plan, err := PlanPattern2(f, 0.001, Options{Steps: 8, Adaptivity: adaptivity.None})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, d := range []float64{0.02, 0.05, 0.1, 0.2, 0.4} {
		n, err := plan.TestN(d)
		if err != nil {
			t.Fatal(err)
		}
		if n <= prev {
			t.Errorf("TestN(%v) = %d not increasing (prev %d)", d, n, prev)
		}
		prev = n
	}
}

func TestMatchCoarseFine(t *testing.T) {
	if !MatchCoarseFine(mustFormula(t, "n > 0.9 +/- 0.02"), 0.9) {
		t.Error("n > 0.9 should match")
	}
	if MatchCoarseFine(mustFormula(t, "n > 0.8 +/- 0.02"), 0.9) {
		t.Error("n > 0.8 should not match at threshold 0.9")
	}
	if MatchCoarseFine(mustFormula(t, "n < 0.9 +/- 0.02"), 0.5) {
		t.Error("n < ... should not match")
	}
	if MatchCoarseFine(mustFormula(t, "d > 0.9 +/- 0.02"), 0.5) {
		t.Error("d > ... should not match")
	}
}

func TestCoarseFineImproves(t *testing.T) {
	f := mustFormula(t, "n > 0.9 +/- 0.01")
	plan, err := PlanCoarseFine(f, 0.001, Options{Steps: 8, Adaptivity: adaptivity.None}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := plan.FineN(0.88) // coarse stage certified a >= 0.88
	if err != nil {
		t.Fatal(err)
	}
	base, err := plan.BaselineN()
	if err != nil {
		t.Fatal(err)
	}
	if plan.CoarseN+fine >= base {
		t.Errorf("coarse %d + fine %d not below baseline %d", plan.CoarseN, fine, base)
	}
	// The exact-binomial fine stage must be at least as tight as Bennett.
	fineExact, err := plan.FineNExact(0.88)
	if err != nil {
		t.Fatal(err)
	}
	if fineExact > fine {
		t.Errorf("exact fine stage %d worse than Bennett %d", fineExact, fine)
	}
	if _, err := plan.FineN(0.3); err == nil {
		t.Error("aLo < 0.5 should fail")
	}
}

func TestCoarseFineErrors(t *testing.T) {
	if _, err := PlanCoarseFine(mustFormula(t, "n > 0.5 +/- 0.1"), 0.01, Options{Steps: 1}, 0.9); err == nil {
		t.Error("threshold below minimum should fail")
	}
	if _, err := PlanCoarseFine(mustFormula(t, "n > 0.95 +/- 0.01"), 0, Options{Steps: 1}, 0.9); err == nil {
		t.Error("delta=0 should fail")
	}
}

func TestStringers(t *testing.T) {
	if BudgetSplit.String() != "split" || BudgetTestOnly.String() != "test-only" {
		t.Error("DeltaBudget.String wrong")
	}
	if VarianceAtThreshold.String() != "at-threshold" || VarianceConservative.String() != "conservative" {
		t.Error("VarianceBound.String wrong")
	}
	if DeltaBudget(9).String() == "" || VarianceBound(9).String() == "" {
		t.Error("default stringers empty")
	}
}

func TestPattern1FilterScalesWithTolerance(t *testing.T) {
	f := mustFormula(t, "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01")
	tight, err := PlanPattern1(f, 0.001, Options{Steps: 4, Adaptivity: adaptivity.None, FilterTolerance: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := PlanPattern1(f, 0.001, Options{Steps: 4, Adaptivity: adaptivity.None, FilterTolerance: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if tight.FilterN <= loose.FilterN {
		t.Errorf("tighter filter tolerance must need more unlabeled data: %d vs %d", tight.FilterN, loose.FilterN)
	}
	// Filter size ratio should be ~ (0.02/0.005)^2 = 16.
	ratio := float64(tight.FilterN) / float64(loose.FilterN)
	if math.Abs(ratio-16) > 0.5 {
		t.Errorf("filter ratio = %v, want ~16", ratio)
	}
}
