package patterns

import (
	"fmt"
	"math"

	"github.com/easeml/ci/internal/bounds"
	"github.com/easeml/ci/internal/condlang"
)

// Pattern2Plan is the implicit-variance-bound optimization of Section 4.2
// for a bare "n - o > C +/- D" condition. Even without an explicit d clause,
// consecutive commits rarely disagree much (the paper's ImageNet-winners
// observation), so:
//
//  1. A first, *unlabeled* testset estimates d up to 2D. It is 16x smaller
//     than testing n - o directly at D: 4x from the doubled tolerance, 4x
//     from d's halved range.
//  2. If the resulting upper bound on d is small, a second labeled testset
//     runs the Bennett test exactly as in Pattern 1, sized at runtime from
//     the observed bound (active labeling grows it incrementally).
type Pattern2Plan struct {
	// QualityClause is "n - o > C +/- D".
	QualityClause condlang.Clause
	// UnlabeledTolerance is the d-estimate tolerance (2D).
	UnlabeledTolerance float64
	// UnlabeledN is the size of the first (unlabeled) testset.
	UnlabeledN int
	// Delta is the overall failure budget.
	Delta float64
	// Opts echoes the planning options.
	Opts Options
}

// PlanPattern2 builds the plan for a formula matching Pattern 2.
func PlanPattern2(f condlang.Formula, delta float64, opts Options) (*Pattern2Plan, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if !(delta > 0 && delta < 1) {
		return nil, fmt.Errorf("patterns: delta must be in (0,1), got %v", delta)
	}
	if !MatchPattern2(f) {
		return nil, fmt.Errorf("patterns: formula %q does not match Pattern 2 (n - o > C +/- D)", f)
	}
	qc := f.Clauses[0]
	logM, err := opts.Adaptivity.LogMultiplier(opts.Steps)
	if err != nil {
		return nil, err
	}
	plan := &Pattern2Plan{
		QualityClause:      qc,
		UnlabeledTolerance: 2 * qc.Tolerance,
		Delta:              delta,
		Opts:               opts,
	}
	// First testset: one-sided upper estimate of d at 2D with delta/2
	// (or skipped entirely when the bound is known a priori).
	if opts.Budget != BudgetTestOnly {
		n, err := bounds.HoeffdingSampleSizeLog(1, plan.UnlabeledTolerance, math.Log(2/delta)+logM)
		if err != nil {
			return nil, err
		}
		plan.UnlabeledN = n
	}
	return plan, nil
}

// testLogInv returns the ln(1/delta') budget of the labeled test.
func (p *Pattern2Plan) testLogInv() (float64, error) {
	logM, err := p.Opts.Adaptivity.LogMultiplier(p.Opts.Steps)
	if err != nil {
		return 0, err
	}
	if p.Opts.Budget == BudgetTestOnly {
		return math.Log(2/p.Delta) + logM, nil
	}
	return math.Log(4/p.Delta) + logM, nil
}

// TestN returns the labeled testset size once the disagreement upper bound
// dUpper is known (from the unlabeled estimate plus its tolerance, or a
// priori knowledge). The system cannot know this before execution
// (Section 4.2), which is why it is a method rather than a field.
func (p *Pattern2Plan) TestN(dUpper float64) (int, error) {
	if !(dUpper > 0 && dUpper < 1) {
		return 0, fmt.Errorf("patterns: disagreement bound must be in (0,1), got %v", dUpper)
	}
	logInv, err := p.testLogInv()
	if err != nil {
		return 0, err
	}
	return bounds.BennettSampleSizeLog(dUpper, p.QualityClause.Tolerance, logInv)
}

// PerCommitLabels is the active-labeling amortization at disagreement bound
// dUpper: labels needed per commit when only the disagreement set is
// labeled, without the steps multiplier.
func (p *Pattern2Plan) PerCommitLabels(dUpper float64) (int, error) {
	if !(dUpper > 0 && dUpper < 1) {
		return 0, fmt.Errorf("patterns: disagreement bound must be in (0,1), got %v", dUpper)
	}
	var logInv float64
	if p.Opts.Budget == BudgetTestOnly {
		logInv = math.Log(2 / p.Delta)
	} else {
		logInv = math.Log(4 / p.Delta)
	}
	n, err := bounds.BennettSampleSizeLog(dUpper, p.QualityClause.Tolerance, logInv)
	if err != nil {
		return 0, err
	}
	return int(math.Ceil(float64(n) * dUpper)), nil
}

// BaselineN is the unoptimized direct test of n - o at tolerance D
// (two-sided Hoeffding, range 2), for reporting the 16x/overall savings.
func (p *Pattern2Plan) BaselineN() (int, error) {
	logM, err := p.Opts.Adaptivity.LogMultiplier(p.Opts.Steps)
	if err != nil {
		return 0, err
	}
	return bounds.HoeffdingSampleSizeLog(2, p.QualityClause.Tolerance, math.Log(2/p.Delta)+logM)
}
