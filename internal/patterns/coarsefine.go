package patterns

import (
	"fmt"
	"math"

	"github.com/easeml/ci/internal/bounds"
	"github.com/easeml/ci/internal/condlang"
)

// CoarseFinePlan is the second optimization of Section 4.2 for
// "n > A +/- B" with large A (e.g. 0.9 or 0.95): a coarse estimate first
// certifies a lower bound on the accuracy; conditioned on that bound the
// per-example correctness variable has variance at most 1 - aLo, so a
// Bennett (or exact binomial) test reaches tolerance B with far fewer
// labels than the assumption-free Hoeffding bound.
type CoarseFinePlan struct {
	// Clause is "n > A +/- B".
	Clause condlang.Clause
	// CoarseTolerance is the tolerance of the first, coarse estimate
	// (2B by default, mirroring Pattern 2's doubling).
	CoarseTolerance float64
	// CoarseN is the labeled size of the coarse stage.
	CoarseN int
	// Delta is the overall failure budget.
	Delta float64
	// Opts echoes the planning options.
	Opts Options
}

// PlanCoarseFine builds the plan. minThreshold guards applicability: the
// optimization "can only introduce improvement when the lower bound is
// large (e.g., 0.9)".
func PlanCoarseFine(f condlang.Formula, delta float64, opts Options, minThreshold float64) (*CoarseFinePlan, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if !(delta > 0 && delta < 1) {
		return nil, fmt.Errorf("patterns: delta must be in (0,1), got %v", delta)
	}
	if !MatchCoarseFine(f, minThreshold) {
		return nil, fmt.Errorf("patterns: formula %q does not match n > A +/- B with A >= %v", f, minThreshold)
	}
	c := f.Clauses[0]
	logM, err := opts.Adaptivity.LogMultiplier(opts.Steps)
	if err != nil {
		return nil, err
	}
	plan := &CoarseFinePlan{
		Clause:          c,
		CoarseTolerance: 2 * c.Tolerance,
		Delta:           delta,
		Opts:            opts,
	}
	// Coarse stage: one-sided lower estimate of n at 2B with delta/2.
	n, err := bounds.HoeffdingSampleSizeLog(1, plan.CoarseTolerance, math.Log(2/delta)+logM)
	if err != nil {
		return nil, err
	}
	plan.CoarseN = n
	return plan, nil
}

// FineN returns the fine-stage labeled size once the coarse stage certifies
// accuracy >= aLo: the centered correctness variable has
// E[X^2] = a(1-a) <= 1-aLo for aLo >= 1/2.
func (p *CoarseFinePlan) FineN(aLo float64) (int, error) {
	if !(aLo >= 0.5 && aLo < 1) {
		return 0, fmt.Errorf("patterns: certified lower bound must be in [0.5,1), got %v", aLo)
	}
	logM, err := p.Opts.Adaptivity.LogMultiplier(p.Opts.Steps)
	if err != nil {
		return 0, err
	}
	varBound := 1 - aLo
	return bounds.BennettSampleSizeLog(varBound, p.Clause.Tolerance, math.Log(4/p.Delta)+logM)
}

// FineNExact is the alternative fine stage using the exact binomial bound
// of Section 4.3 restricted to means in [aLo, 1]; used by the ablation
// benchmark comparing Bennett against tight numerical bounds.
func (p *CoarseFinePlan) FineNExact(aLo float64) (int, error) {
	if !(aLo >= 0.5 && aLo < 1) {
		return 0, fmt.Errorf("patterns: certified lower bound must be in [0.5,1), got %v", aLo)
	}
	m, err := p.Opts.Adaptivity.Multiplier(p.Opts.Steps)
	if err != nil {
		return 0, err
	}
	if math.IsInf(m, 1) {
		return 0, fmt.Errorf("patterns: exact bound unavailable for overflowing multiplier")
	}
	return bounds.ExactSampleSize(p.Clause.Tolerance, p.Delta/(2*m), aLo, 1)
}

// BaselineN is the unoptimized one-sided Hoeffding size for the clause.
func (p *CoarseFinePlan) BaselineN() (int, error) {
	logM, err := p.Opts.Adaptivity.LogMultiplier(p.Opts.Steps)
	if err != nil {
		return 0, err
	}
	return bounds.HoeffdingSampleSizeLog(1, p.Clause.Tolerance, math.Log(1/p.Delta)+logM)
}
