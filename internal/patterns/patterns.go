// Package patterns implements the label-complexity optimizations of
// Section 4 of the ease.ml/ci paper. The estimator package charges the
// worst-case O(1/epsilon^2) Hoeffding price for every condition; this
// package recognizes sub-families of conditions where a variance bound on
// the difference between consecutive models makes Bennett's inequality
// applicable, cutting the required labels by up to two orders of magnitude:
//
//   - Pattern 1 (Section 4.1): "d < A +/- B  /\  n - o > C +/- D".
//     Hierarchical testing first bounds d on unlabeled data, then tests
//     n - o under the variance bound; active labeling (Section 4.1.2)
//     amortizes labels across commits by labeling only disagreements.
//   - Pattern 2 (Section 4.2): "n - o > C +/- D" alone. An implicit
//     variance bound is obtained from a 16x-smaller unlabeled testset.
//   - Coarse-to-fine (Section 4.2, second half): "n > A +/- B" with large A.
//     A coarse estimate lower-bounds the accuracy, which bounds the
//     Bernoulli variance for a finer Bennett test.
package patterns

import (
	"fmt"

	"github.com/easeml/ci/internal/adaptivity"
	"github.com/easeml/ci/internal/condlang"
)

// DeltaBudget selects how the overall failure budget delta is charged to
// the filter (d estimate) and the quality test.
type DeltaBudget int

const (
	// BudgetSplit is the paper's Section 4.1.1 accounting: delta/2 to the
	// unlabeled filter, delta/2 to the labeled Bennett test (two-sided),
	// giving the ln(4/delta) term of the paper's formula.
	BudgetSplit DeltaBudget = iota
	// BudgetTestOnly charges the whole delta to the test (two-sided,
	// ln(2/delta)): the Section 5.2 accounting, applicable when the
	// disagreement bound is known a priori rather than estimated.
	BudgetTestOnly
)

// String implements fmt.Stringer.
func (b DeltaBudget) String() string {
	switch b {
	case BudgetSplit:
		return "split"
	case BudgetTestOnly:
		return "test-only"
	default:
		return fmt.Sprintf("DeltaBudget(%d)", int(b))
	}
}

// VarianceBound selects the variance proxy used once the filter passes.
type VarianceBound int

const (
	// VarianceAtThreshold uses p = A (the d-clause threshold), matching the
	// arithmetic of the paper's worked examples ("When p = 0.1 ... 29K").
	VarianceAtThreshold VarianceBound = iota
	// VarianceConservative uses p = A + 2*eps', the bound the filter
	// actually certifies (Section 4.1.1's "conditioned on d < A + 2eps'").
	VarianceConservative
)

// String implements fmt.Stringer.
func (v VarianceBound) String() string {
	switch v {
	case VarianceAtThreshold:
		return "at-threshold"
	case VarianceConservative:
		return "conservative"
	default:
		return fmt.Sprintf("VarianceBound(%d)", int(v))
	}
}

// Options configures pattern planning.
type Options struct {
	// Steps is H.
	Steps int
	// Adaptivity is the interaction mode.
	Adaptivity adaptivity.Kind
	// Budget selects the delta accounting (default BudgetSplit).
	Budget DeltaBudget
	// Variance selects the variance proxy (default VarianceAtThreshold).
	Variance VarianceBound
	// FilterTolerance is eps' for the unlabeled d estimate; when zero it
	// defaults to the d clause's own tolerance.
	FilterTolerance float64
}

func (o Options) validate() error {
	if o.Steps < 1 {
		return fmt.Errorf("patterns: steps must be >= 1, got %d", o.Steps)
	}
	if o.FilterTolerance < 0 {
		return fmt.Errorf("patterns: filter tolerance must be >= 0, got %v", o.FilterTolerance)
	}
	return nil
}

// isVar reports whether the clause's expression is exactly +1 * v.
func isVar(lf condlang.LinearForm, v condlang.Var) bool {
	return len(lf.Coef) == 1 && lf.Coef[v] == 1 && lf.Const == 0
}

// isDiff reports whether the clause's expression is exactly n - o.
func isDiff(lf condlang.LinearForm) bool {
	return len(lf.Coef) == 2 && lf.Coef[condlang.VarN] == 1 &&
		lf.Coef[condlang.VarO] == -1 && lf.Const == 0
}

// MatchPattern1 looks for the two-clause shape
// "d < A +/- B /\ n - o > C +/- D" (in either order). It returns the clause
// indices of the d clause and the difference clause.
func MatchPattern1(f condlang.Formula) (dIdx, diffIdx int, ok bool) {
	if len(f.Clauses) != 2 {
		return 0, 0, false
	}
	dIdx, diffIdx = -1, -1
	for i, c := range f.Clauses {
		lf, err := condlang.Linearize(c.Expr)
		if err != nil {
			return 0, 0, false
		}
		switch {
		case isVar(lf, condlang.VarD) && c.Cmp == condlang.CmpLess:
			dIdx = i
		case isDiff(lf) && c.Cmp == condlang.CmpGreater:
			diffIdx = i
		}
	}
	if dIdx < 0 || diffIdx < 0 {
		return 0, 0, false
	}
	return dIdx, diffIdx, true
}

// MatchPattern2 looks for a single-clause "n - o > C +/- D".
func MatchPattern2(f condlang.Formula) bool {
	if len(f.Clauses) != 1 {
		return false
	}
	c := f.Clauses[0]
	lf, err := condlang.Linearize(c.Expr)
	if err != nil {
		return false
	}
	return isDiff(lf) && c.Cmp == condlang.CmpGreater
}

// MatchCoarseFine looks for a single-clause "n > A +/- B" with A at least
// minThreshold (the optimization only helps for large A, Section 4.2).
func MatchCoarseFine(f condlang.Formula, minThreshold float64) bool {
	if len(f.Clauses) != 1 {
		return false
	}
	c := f.Clauses[0]
	lf, err := condlang.Linearize(c.Expr)
	if err != nil {
		return false
	}
	return isVar(lf, condlang.VarN) && c.Cmp == condlang.CmpGreater &&
		c.Threshold >= minThreshold
}
