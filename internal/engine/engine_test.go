package engine

import (
	"errors"
	"math"
	"testing"

	"github.com/easeml/ci/internal/condlang"
	"github.com/easeml/ci/internal/core"
	"github.com/easeml/ci/internal/data"
	"github.com/easeml/ci/internal/interval"
	"github.com/easeml/ci/internal/labeling"
	"github.com/easeml/ci/internal/model"
	"github.com/easeml/ci/internal/notify"
	"github.com/easeml/ci/internal/script"
)

// indexDataset builds a testset whose feature vector is the example index,
// so FixedPredictions models plug in directly.
func indexDataset(n, classes int) *data.Dataset {
	ds := &data.Dataset{Name: "index", Classes: classes}
	for i := 0; i < n; i++ {
		ds.X = append(ds.X, []float64{float64(i)})
		ds.Y = append(ds.Y, i%classes)
	}
	return ds
}

func mustConfig(t *testing.T, cond string, rel float64, mode interval.Mode, a script.Adaptivity, steps int) *script.Config {
	t.Helper()
	cfg, err := script.New(cond, rel, mode, a, steps)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func simModel(t *testing.T, name string, ds *data.Dataset, acc float64, seed int64) *model.FixedPredictions {
	t.Helper()
	preds, err := model.SimulatedPredictions(ds.Y, ds.Classes, acc, seed)
	if err != nil {
		t.Fatal(err)
	}
	return model.NewFixedPredictions(name, preds)
}

func simPair(t *testing.T, ds *data.Dataset, accOld, accNew, d float64, seed int64) (oldM, newM *model.FixedPredictions) {
	t.Helper()
	op, np, err := model.SimulatedPair(ds.Y, ds.Classes, accOld, accNew, d, seed)
	if err != nil {
		t.Fatal(err)
	}
	return model.NewFixedPredictions("old", op), model.NewFixedPredictions("new", np)
}

func TestEngineBaselineFlow(t *testing.T) {
	ds := indexDataset(600, 4)
	cfg := mustConfig(t, "n > 0.6 +/- 0.1", 0.99, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityFull}, 3)
	outbox := notify.NewOutbox()
	eng, err := New(cfg, ds, labeling.NewTruthOracle(ds.Y), Options{
		InitialModel: simModel(t, "h0", ds, 0.5, 1),
		Notifier:     outbox,
	})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Plan().Kind != core.Baseline {
		t.Fatalf("plan kind = %v, want baseline", eng.Plan().Kind)
	}

	// A strong model passes (n̂ ~ 0.9 > 0.6 + 0.1).
	res, err := eng.Commit(simModel(t, "good", ds, 0.9, 2), "dev", "strong model")
	if err != nil {
		t.Fatal(err)
	}
	if res.Truth != interval.True || !res.Pass || !res.Signal || !res.Promoted {
		t.Errorf("good commit: %+v", res)
	}
	// A clear pass stops revealing once the verdict is forced: the fresh
	// labels plus the reported savings always account for the whole testset.
	if res.FreshLabels+res.LabelsSaved != ds.Len() {
		t.Errorf("labels %d + saved %d != %d", res.FreshLabels, res.LabelsSaved, ds.Len())
	}
	if !res.EarlyExit || res.FreshLabels >= ds.Len() {
		t.Errorf("non-borderline commit should exit early: fresh=%d early=%v",
			res.FreshLabels, res.EarlyExit)
	}
	if eng.ActiveModelName() != "good" {
		t.Errorf("promotion failed: active = %q", eng.ActiveModelName())
	}
	if math.Abs(res.Estimates[condlang.VarN]-0.9) > 0.05 {
		t.Errorf("n estimate = %v", res.Estimates[condlang.VarN])
	}

	// A weak model fails and is not promoted.
	res, err = eng.Commit(simModel(t, "bad", ds, 0.3, 3), "dev", "weak model")
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass || res.Signal || res.Promoted {
		t.Errorf("bad commit: %+v", res)
	}
	if res.FreshLabels != 0 {
		t.Errorf("labels already paid for, got %d fresh", res.FreshLabels)
	}
	if eng.ActiveModelName() != "good" {
		t.Error("failed commit must not be promoted")
	}

	// History and repository agree.
	if len(eng.History()) != 2 || eng.Repository().Len() != 2 {
		t.Errorf("history = %d, repo = %d", len(eng.History()), eng.Repository().Len())
	}
}

func TestEnginePattern1ActiveLabeling(t *testing.T) {
	ds := indexDataset(2000, 4)
	cfg := mustConfig(t, "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.03", 0.99, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityNone, Email: "qa@x.y"}, 4)
	outbox := notify.NewOutbox()
	oldM, newM := simPair(t, ds, 0.80, 0.87, 0.08, 5)
	eng, err := New(cfg, ds, labeling.NewTruthOracle(ds.Y), Options{
		InitialModel: oldM,
		Notifier:     outbox,
	})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Plan().Kind != core.Pattern1 {
		t.Fatalf("plan kind = %v, want pattern1", eng.Plan().Kind)
	}

	res, err := eng.Commit(newM, "dev", "fine-tuned")
	if err != nil {
		t.Fatal(err)
	}
	// d̂ ~ 0.08 < 0.1 - 0.01 -> True; diff ~ 0.07 > 0.02 + 0.03 -> True.
	if res.Truth != interval.True || !res.Pass {
		t.Errorf("commit result: truth=%v pass=%v estimates=%v", res.Truth, res.Pass, res.Estimates)
	}
	// Active labeling: only disagreements are labeled (~8% of 2000).
	if res.FreshLabels > 300 {
		t.Errorf("active labeling spent %d labels, want ~160", res.FreshLabels)
	}
	if res.FreshLabels < 100 {
		t.Errorf("suspiciously few labels: %d", res.FreshLabels)
	}
	// Accuracy estimates are unavailable; d is reported.
	if _, ok := res.Estimates[condlang.VarN]; ok {
		t.Error("active labeling cannot report n")
	}
	if math.Abs(res.Estimates[condlang.VarD]-0.08) > 0.02 {
		t.Errorf("d estimate = %v", res.Estimates[condlang.VarD])
	}
	// Non-adaptive mode: developer always sees accepted; truth emailed.
	if !res.Signal {
		t.Error("non-adaptive mode must signal accepted")
	}
	results := outbox.ByKind(notify.KindResult)
	if len(results) != 1 || results[0].To != "qa@x.y" {
		t.Errorf("third-party routing wrong: %+v", results)
	}
}

func TestEngineNoneModeHidesFailure(t *testing.T) {
	ds := indexDataset(600, 4)
	cfg := mustConfig(t, "n > 0.6 +/- 0.1", 0.99, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityNone, Email: "qa@x.y"}, 3)
	outbox := notify.NewOutbox()
	eng, err := New(cfg, ds, labeling.NewTruthOracle(ds.Y), Options{
		InitialModel: simModel(t, "h0", ds, 0.5, 1),
		Notifier:     outbox,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Commit(simModel(t, "bad", ds, 0.3, 9), "dev", "bad")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Signal {
		t.Error("developer must see accepted")
	}
	if res.Pass {
		t.Error("true outcome must be fail")
	}
	msgs := outbox.ByKind(notify.KindResult)
	if len(msgs) != 1 {
		t.Fatalf("expected 1 result email, got %d", len(msgs))
	}
}

func TestEngineFirstChangeRotation(t *testing.T) {
	ds := indexDataset(600, 4)
	cfg := mustConfig(t, "n > 0.6 +/- 0.1", 0.99, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityFirstChange}, 5)
	outbox := notify.NewOutbox()
	eng, err := New(cfg, ds, labeling.NewTruthOracle(ds.Y), Options{
		InitialModel: simModel(t, "h0", ds, 0.5, 1),
		Notifier:     outbox,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two failing commits: testset stays alive.
	for i := 0; i < 2; i++ {
		res, err := eng.Commit(simModel(t, "weak", ds, 0.3, int64(10+i)), "dev", "weak")
		if err != nil {
			t.Fatal(err)
		}
		if res.NeedNewTestset {
			t.Fatal("failing commits must not retire the hybrid testset")
		}
	}
	// A passing commit retires the testset immediately.
	good := simModel(t, "good", ds, 0.9, 20)
	res, err := eng.Commit(good, "dev", "good")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass || !res.NeedNewTestset {
		t.Errorf("hybrid pass must fire alarm: %+v", res)
	}
	if len(outbox.ByKind(notify.KindAlarm)) != 1 {
		t.Error("alarm email missing")
	}
	// Until rotation, commits are refused.
	if _, err := eng.Commit(good, "dev", "again"); !errors.Is(err, ErrNeedNewTestset) {
		t.Errorf("expected ErrNeedNewTestset, got %v", err)
	}
	// Rotate in fresh data; the good model carries over as baseline.
	next := indexDataset(600, 4)
	goodOnNext := simModel(t, "good", next, 0.9, 21)
	if err := eng.RotateTestset(next, labeling.NewTruthOracle(next.Y), goodOnNext); err != nil {
		t.Fatal(err)
	}
	if eng.Testsets().Current().Generation != 2 {
		t.Error("rotation did not advance generation")
	}
	res, err = eng.Commit(simModel(t, "better", next, 0.95, 22), "dev", "better")
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != 2 || res.Step != 1 {
		t.Errorf("post-rotation result: gen=%d step=%d", res.Generation, res.Step)
	}
}

func TestEngineConstructionErrors(t *testing.T) {
	ds := indexDataset(600, 4)
	cfg := mustConfig(t, "n > 0.6 +/- 0.1", 0.99, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityFull}, 3)
	h0 := simModel(t, "h0", ds, 0.5, 1)
	oracle := labeling.NewTruthOracle(ds.Y)
	if _, err := New(nil, ds, oracle, Options{InitialModel: h0}); err == nil {
		t.Error("nil config should fail")
	}
	if _, err := New(cfg, ds, nil, Options{InitialModel: h0}); err == nil {
		t.Error("nil oracle should fail")
	}
	if _, err := New(cfg, ds, oracle, Options{}); err == nil {
		t.Error("missing initial model should fail")
	}
	tiny := indexDataset(10, 4)
	if _, err := New(cfg, tiny, labeling.NewTruthOracle(tiny.Y), Options{InitialModel: simModel(t, "h0", tiny, 0.5, 1)}); err == nil {
		t.Error("undersized testset should fail")
	}
}

func TestEngineCommitErrors(t *testing.T) {
	ds := indexDataset(600, 4)
	cfg := mustConfig(t, "n > 0.6 +/- 0.1", 0.99, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityFull}, 3)
	eng, err := New(cfg, ds, labeling.NewTruthOracle(ds.Y), Options{
		InitialModel: simModel(t, "h0", ds, 0.5, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Commit(nil, "dev", "oops"); err == nil {
		t.Error("nil model should fail")
	}
	if err := eng.RotateTestset(ds, nil, simModel(t, "h0", ds, 0.5, 1)); err == nil {
		t.Error("nil oracle on rotation should fail")
	}
	if err := eng.RotateTestset(ds, labeling.NewTruthOracle(ds.Y), nil); err == nil {
		t.Error("nil active model on rotation should fail")
	}
}

func TestEngineOracleMismatchDetected(t *testing.T) {
	ds := indexDataset(600, 4)
	cfg := mustConfig(t, "n > 0.6 +/- 0.1", 0.99, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityFull}, 3)
	wrong := make([]int, ds.Len()) // all zeros: disagrees with ground truth
	for i := range wrong {
		wrong[i] = (ds.Y[i] + 1) % 4
	}
	eng, err := New(cfg, ds, labeling.NewTruthOracle(wrong), Options{
		InitialModel: simModel(t, "h0", ds, 0.5, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Commit(simModel(t, "m", ds, 0.9, 2), "dev", "x"); err == nil {
		t.Error("oracle/ground-truth mismatch must be detected")
	}
}

func TestEngineLabelLedgerAccumulates(t *testing.T) {
	ds := indexDataset(2000, 4)
	cfg := mustConfig(t, "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.03", 0.99, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityNone, Email: "qa@x.y"}, 4)
	op, np, err := model.SimulatedPair(ds.Y, ds.Classes, 0.80, 0.87, 0.08, 5)
	if err != nil {
		t.Fatal(err)
	}
	oldM := model.NewFixedPredictions("old", op)
	// Early decision disabled: this test pins the static active-labeling
	// plan, where every disagreement is labeled and a similar second commit
	// must pay for its new disagreements.
	eng, err := New(cfg, ds, labeling.NewTruthOracle(ds.Y), Options{
		InitialModel:  oldM,
		EarlyDecision: EarlyDecision{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Commit(model.NewFixedPredictions("new", np), "dev", "c1"); err != nil {
		t.Fatal(err)
	}
	first := eng.LabelCost().Total()
	// Re-committing a similar model re-labels only new disagreements: flip
	// a sprinkle of agreement points into disagreements (keeping d below
	// the failure threshold, so the short-circuit on a False d-clause does
	// not kick in) and check the ledger grows by exactly those points.
	np2 := append([]int(nil), np...)
	flipped := 0
	for i := 0; i < len(np2) && flipped < 30; i += 67 {
		if np2[i] == op[i] {
			np2[i] = (op[i] + 1) % ds.Classes
			flipped++
		}
	}
	if _, err := eng.Commit(model.NewFixedPredictions("new2", np2), "dev", "c2"); err != nil {
		t.Fatal(err)
	}
	if got := eng.LabelCost().Total(); got != first+flipped {
		t.Errorf("ledger total = %d, want %d + %d new disagreements", got, first, flipped)
	}
	if got := len(eng.LabelCost().PerCommit()); got != 2 {
		t.Errorf("per-commit entries = %d", got)
	}
}
