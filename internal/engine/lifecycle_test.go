package engine

import (
	"testing"

	"github.com/easeml/ci/internal/interval"
	"github.com/easeml/ci/internal/labeling"
	"github.com/easeml/ci/internal/notify"
	"github.com/easeml/ci/internal/script"
)

// TestEngineMultiGenerationLifecycle drives the engine across three testset
// generations, checking every piece of bookkeeping the paper's workflow
// depends on: budget consumption, alarm timing, release of retired
// testsets, label-cost accounting across rotations, and history integrity.
func TestEngineMultiGenerationLifecycle(t *testing.T) {
	cfg := mustConfig(t, "n > 0.6 +/- 0.1", 0.99, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityFull}, 2)
	ds := indexDataset(600, 4)
	outbox := notify.NewOutbox()
	// Early decision disabled: the assertions below pin the static plan's
	// exact label totals (600 per generation, released testsets fully
	// labeled), which early exits deliberately undercut.
	eng, err := New(cfg, ds, labeling.NewTruthOracle(ds.Y), Options{
		InitialModel:  simModel(t, "h0", ds, 0.5, 1),
		Notifier:      outbox,
		EarlyDecision: EarlyDecision{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}

	totalCommits := 0
	for generation := 1; generation <= 3; generation++ {
		for step := 1; step <= 2; step++ {
			acc := 0.9
			if step == 2 {
				acc = 0.3 // alternate pass/fail
			}
			res, err := eng.Commit(simModel(t, "m", ds, acc, int64(generation*10+step)), "dev", "x")
			if err != nil {
				t.Fatalf("gen %d step %d: %v", generation, step, err)
			}
			totalCommits++
			if res.Generation != generation || res.Step != step {
				t.Errorf("gen/step = %d/%d, want %d/%d", res.Generation, res.Step, generation, step)
			}
			wantAlarm := step == 2
			if res.NeedNewTestset != wantAlarm {
				t.Errorf("gen %d step %d: alarm = %v", generation, step, res.NeedNewTestset)
			}
		}
		if generation < 3 {
			next := indexDataset(600, 4)
			if err := eng.RotateTestset(next, labeling.NewTruthOracle(next.Y), simModel(t, "carry", next, 0.9, int64(generation))); err != nil {
				t.Fatal(err)
			}
			ds = next
		}
	}

	if eng.Repository().Len() != totalCommits {
		t.Errorf("repo commits = %d, want %d", eng.Repository().Len(), totalCommits)
	}
	if len(eng.History()) != totalCommits {
		t.Errorf("history = %d, want %d", len(eng.History()), totalCommits)
	}
	// Two rotations happened; two retired testsets were released.
	if got := len(eng.Testsets().Released()); got != 2 {
		t.Errorf("released testsets = %d, want 2", got)
	}
	for i, ts := range eng.Testsets().Released() {
		if ts.Generation != i+1 {
			t.Errorf("released[%d].Generation = %d", i, ts.Generation)
		}
		// Retired baseline-path testsets were fully labeled before release
		// (the developer receives a fully usable validation set).
		if ts.RevealedCount() != ts.Len() {
			t.Errorf("released[%d] labeled %d of %d", i, ts.RevealedCount(), ts.Len())
		}
	}
	// One alarm per generation.
	if got := len(outbox.ByKind(notify.KindAlarm)); got != 3 {
		t.Errorf("alarms = %d, want 3", got)
	}
	// Label cost: each generation labels its 600 examples once (first
	// commit), second commit reuses them.
	if got := eng.LabelCost().Total(); got != 3*600 {
		t.Errorf("total labels = %d, want 1800", got)
	}
	if got := len(eng.LabelCost().PerCommit()); got != totalCommits {
		t.Errorf("per-commit entries = %d, want %d", got, totalCommits)
	}
	// Commit chain integrity across generations.
	hist := eng.Repository().History()
	for i := 1; i < len(hist); i++ {
		if hist[i].Parent != hist[i-1].ID {
			t.Fatalf("broken commit chain at %d", i)
		}
	}
}

// TestEngineHistoryIsolation: History returns a copy.
func TestEngineHistoryIsolation(t *testing.T) {
	cfg := mustConfig(t, "n > 0.6 +/- 0.1", 0.99, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityFull}, 3)
	ds := indexDataset(600, 4)
	eng, err := New(cfg, ds, labeling.NewTruthOracle(ds.Y), Options{
		InitialModel: simModel(t, "h0", ds, 0.5, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Commit(simModel(t, "m", ds, 0.9, 2), "dev", "x"); err != nil {
		t.Fatal(err)
	}
	h := eng.History()
	h[0].Pass = !h[0].Pass
	if eng.History()[0].Pass == h[0].Pass {
		t.Error("History leaked internal state")
	}
}
