package engine

import (
	"fmt"

	"github.com/easeml/ci/internal/bounds"
	"github.com/easeml/ci/internal/condlang"
	"github.com/easeml/ci/internal/evaluator"
	"github.com/easeml/ci/internal/interval"
	"github.com/easeml/ci/internal/planner"
)

// Sequential evaluation: instead of revealing a commit's labels in one
// shot, the engine reveals them in geometrically growing chunks
// (planner.NextLook) and re-measures after every look. It stops as soon
// as the verdict is forced — when even the worst-case assignment of every
// still-unrevealed label cannot change the three-valued truth the full
// reveal would produce. The check is exact (a popcount-derived interval
// per clause, no probability), so an early exit yields the byte-identical
// verdict of the static plan at a fraction of the label cost; a commit
// that stays borderline falls through to the full reveal, so the worst
// case is identical to the static plan.
//
// The decision functions below are shared verbatim by the packed and the
// scalar evaluation paths: both feed them the same integer counts, so
// their look decisions — and therefore the label charges a durable log
// replays — are bit-identical.

// EarlyDecision configures the sequential evaluation loop. The zero value
// is the production default: the deterministic no-regret early exit on a
// 64-doubling look schedule, no probabilistic bound.
type EarlyDecision struct {
	// Disable reverts to the one-shot static reveal (the pre-sequential
	// behavior); the equivalence suites use it as the baseline oracle.
	Disable bool
	// FirstLook is the first look's cumulative reveal target; 0 means
	// planner.DefaultFirstLook.
	FirstLook int
	// Growth is the geometric factor between look targets; 0 means
	// planner.DefaultLookGrowth.
	Growth int
	// SequentialDelta, when positive, additionally stops at a look where
	// an anytime-valid without-replacement bound (bounds.SerflingEpsilon,
	// spending SequentialDelta across looks via bounds.GeometricDelta)
	// pins the verdict. This trades a <= SequentialDelta chance of
	// deciding differently from the full reveal for larger label savings;
	// the worst-case label cost stays identical to the static plan. Off
	// (0) by default: the deterministic exit alone keeps verdicts
	// byte-identical.
	SequentialDelta float64
}

func (d EarlyDecision) withDefaults() EarlyDecision {
	if d.FirstLook < 1 {
		d.FirstLook = planner.DefaultFirstLook
	}
	if d.Growth < 2 {
		d.Growth = planner.DefaultLookGrowth
	}
	return d
}

func (d EarlyDecision) validate() error {
	if d.SequentialDelta < 0 || d.SequentialDelta >= 1 {
		return fmt.Errorf("engine: sequential delta must be in [0,1), got %v", d.SequentialDelta)
	}
	return nil
}

// earlyMargin pads every forced-verdict comparison. The final evaluation
// computes its clause intervals in float64 from slightly different
// expressions than the worst-case hull below; the margin absorbs that
// rounding difference, so "forced" is only ever claimed when the full
// reveal provably lands on the same truth value. Erring the other way is
// safe but costs labels: an estimate within the margin of a threshold
// just keeps revealing.
const earlyMargin = 1e-9

// lookCounts are the integer measurements one look decision is made from.
// Both evaluation paths produce them — the packed path via popcounts, the
// scalar oracle via element-wise walks — and both must fill every field
// from the same definitions, or their decisions drift.
type lookCounts struct {
	// total is the testset size.
	total int
	// revealed is how many labels are revealed (across all commits).
	revealed int
	// matchN / matchO count revealed examples the candidate / baseline
	// predicts correctly.
	matchN, matchO int
	// diffCount is the disagreement count (label-free, always exact).
	diffCount int
	// unrevealedDis counts unrevealed examples inside the disagreement
	// set; unrevealed agreements are total-revealed-unrevealedDis.
	unrevealedDis int
}

// clausePossible classifies which truth values a clause can still take
// when its final left-hand side is known to lie in [lo, hi], returning
// the smallest and largest reachable truth in the False < Unknown < True
// order that three-valued And minimizes over. The margins make the
// classification conservative: a value is only excluded when no float
// rounding of the final evaluation could produce it.
func clausePossible(cc *evaluator.CompiledClause, lo, hi float64) (tMin, tMax interval.Truth) {
	c := cc.Clause.Threshold
	eps := cc.Clause.Tolerance
	var canTrue, canFalse, canUnknown bool
	if cc.Clause.Cmp == condlang.CmpGreater {
		// truth(p) for p-eps > c: True above c+eps, False at or below
		// c-eps, Unknown on the straddle.
		canTrue = hi-eps > c-earlyMargin
		canFalse = lo+eps <= c+earlyMargin
		canUnknown = hi > c-eps-earlyMargin && lo <= c+eps+earlyMargin
	} else {
		canTrue = lo+eps < c+earlyMargin
		canFalse = hi-eps >= c-earlyMargin
		canUnknown = lo < c+eps+earlyMargin && hi >= c-eps-earlyMargin
	}
	tMin = interval.True
	switch {
	case canFalse:
		tMin = interval.False
	case canUnknown:
		tMin = interval.Unknown
	}
	tMax = interval.False
	switch {
	case canTrue:
		tMax = interval.True
	case canUnknown:
		tMax = interval.Unknown
	}
	return tMin, tMax
}

// decideFullyLabeled runs the forced-verdict check for the fully-labeled
// path at one look. For every clause it bounds the left-hand side the
// full reveal would compute: the revealed labels fix their contribution
// exactly; each unrevealed agreement can only move n and o together, each
// unrevealed disagreement moves at most one of them. The formula's truth
// is forced when the smallest and largest reachable conjunction agree.
// look is the 1-based index of this check, for sequential delta spending.
func (e *Engine) decideFullyLabeled(c lookCounts, look int) (interval.Truth, bool) {
	n := float64(c.total)
	d := float64(c.diffCount) / n
	unrevAgree := c.total - c.revealed - c.unrevealedDis
	fMin, fMax := interval.True, interval.True
	for i := range e.compiled.Clauses {
		cc := &e.compiled.Clauses[i]
		var cn, co, cd float64
		for _, t := range cc.Terms {
			switch t.Var {
			case condlang.VarN:
				cn = t.Coef
			case condlang.VarO:
				co = t.Coef
			case condlang.VarD:
				cd = t.Coef
			}
		}
		if cn == 0 && co == 0 {
			// Label-free clause: its value is final, so evaluate it
			// exactly (no margin) — this is what lets a definitively
			// failed d-clause force the verdict before any reveal.
			t, err := evaluator.EvalClauseLHS(cc.Clause, cc.Const+cd*d, cc.Clause.Tolerance)
			if err != nil {
				return interval.Unknown, false
			}
			fMin = fMin.And(t)
			fMax = fMax.And(t)
			continue
		}
		base := cc.Const + cd*d + (cn*float64(c.matchN)+co*float64(c.matchO))/n
		ag := cn + co
		lo := base + (float64(unrevAgree)*min(0, ag)+float64(c.unrevealedDis)*min(0, cn, co))/n
		hi := base + (float64(unrevAgree)*max(0, ag)+float64(c.unrevealedDis)*max(0, cn, co))/n
		if e.early.SequentialDelta > 0 && c.revealed > 0 && c.revealed < c.total {
			// Anytime-valid shrink: the revealed prefix is a
			// without-replacement sample of the per-example contribution
			// w_i = cn*a_i + co*b_i, so its mean pins the population mean
			// within a Serfling band at this look's delta share.
			wlo := min(0, ag, cn, co)
			whi := max(0, ag, cn, co)
			dl, err1 := bounds.GeometricDelta(e.early.SequentialDelta, look)
			sEps, err2 := bounds.SerflingEpsilon(c.revealed, c.total, dl)
			if err1 == nil && err2 == nil {
				wbar := (cn*float64(c.matchN) + co*float64(c.matchO)) / float64(c.revealed)
				sLo := cc.Const + cd*d + wbar - (whi-wlo)*sEps
				sHi := cc.Const + cd*d + wbar + (whi-wlo)*sEps
				// Intersect with the deterministic hull; if the band has
				// drifted off it (the bound's failure event), trust the
				// hull.
				if max(lo, sLo) <= min(hi, sHi) {
					lo, hi = max(lo, sLo), min(hi, sHi)
				}
			}
		}
		tMin, tMax := clausePossible(cc, lo, hi)
		fMin = fMin.And(tMin)
		fMax = fMax.And(tMax)
	}
	return fMin, fMin == fMax
}

// decideActive is the forced-verdict check for the active-labeling path:
// d-only clauses are exact (no labels), and the n-o clause's final value
// (sum over disagreements of a_i-b_i, divided by the testset size) is
// bracketed by letting every unrevealed disagreement swing its full
// [-1, +1]. The bracket endpoints are the exact floats the full reveal
// would compute for those assignments.
func (e *Engine) decideActive(dHat float64, total, sumRevealed, revealedDis, diffCount, look int) (interval.Truth, bool, error) {
	fMin, fMax := interval.True, interval.True
	unrevealed := diffCount - revealedDis
	for i := range e.compiled.Clauses {
		cc := &e.compiled.Clauses[i]
		switch {
		case cc.DOnly():
			t, err := evaluator.EvalClauseLHS(cc.Clause, dHat, cc.Clause.Tolerance)
			if err != nil {
				return interval.Unknown, false, err
			}
			fMin = fMin.And(t)
			fMax = fMax.And(t)
		case cc.NMinusO():
			lo := float64(sumRevealed-unrevealed) / float64(total)
			hi := float64(sumRevealed+unrevealed) / float64(total)
			if e.early.SequentialDelta > 0 && revealedDis > 0 && revealedDis < diffCount {
				dl, err1 := bounds.GeometricDelta(e.early.SequentialDelta, look)
				sEps, err2 := bounds.SerflingEpsilon(revealedDis, diffCount, dl)
				if err1 == nil && err2 == nil {
					// a_i-b_i ranges over [-1, +1] (width 2); the band on
					// the disagreement-set mean scales to the LHS by
					// diffCount/total.
					wbar := float64(sumRevealed) / float64(revealedDis)
					sLo := float64(diffCount) * (wbar - 2*sEps) / float64(total)
					sHi := float64(diffCount) * (wbar + 2*sEps) / float64(total)
					if max(lo, sLo) <= min(hi, sHi) {
						lo, hi = max(lo, sLo), min(hi, sHi)
					}
				}
			}
			tMin, tMax := clausePossible(cc, lo, hi)
			fMin = fMin.And(tMin)
			fMax = fMax.And(tMax)
		default:
			return interval.Unknown, false, fmt.Errorf("engine: pattern plan cannot evaluate clause %q", cc.Clause)
		}
	}
	return fMin, fMin == fMax, nil
}

// finishPartialFull shapes an early-exited fully-labeled evaluation: the
// forced truth plus the estimates observable from the revealed subset.
// LabelsSaved is against the static plan's cost for this commit — every
// label that was still unrevealed when the commit arrived.
func finishPartialFull(truth interval.Truth, c lookCounts, fresh, looks, startUnrevealed int) Evaluation {
	ev := Evaluation{
		Truth:       truth,
		D:           float64(c.diffCount) / float64(c.total),
		FreshLabels: fresh,
		Looks:       looks,
		EarlyExit:   true,
		LabelsSaved: startUnrevealed - fresh,
	}
	if c.revealed > 0 {
		ev.N = float64(c.matchN) / float64(c.revealed)
		ev.O = float64(c.matchO) / float64(c.revealed)
		ev.HasAccuracy = true
	}
	return ev
}

// activeStaticCost is the label cost the one-shot reveal would pay for
// this commit: the unrevealed disagreements, unless a definitively failed
// label-free clause precedes the n-o clause (then the one-shot path
// short-circuits too and pays nothing). Early-exit savings are measured
// against this, so they never overstate.
func (e *Engine) activeStaticCost(dHat float64, unrevealedDis int) int {
	truth := interval.True
	for i := range e.compiled.Clauses {
		cc := &e.compiled.Clauses[i]
		if cc.DOnly() {
			if t, err := evaluator.EvalClauseLHS(cc.Clause, dHat, cc.Clause.Tolerance); err == nil {
				truth = truth.And(t)
			}
			continue
		}
		if cc.NMinusO() && truth != interval.False {
			return unrevealedDis
		}
	}
	return 0
}
