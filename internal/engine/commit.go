package engine

import (
	"errors"
	"fmt"

	"github.com/easeml/ci/internal/condlang"
	"github.com/easeml/ci/internal/core"
	"github.com/easeml/ci/internal/data"
	"github.com/easeml/ci/internal/evaluator"
	"github.com/easeml/ci/internal/interval"
	"github.com/easeml/ci/internal/labeling"
	"github.com/easeml/ci/internal/model"
	"github.com/easeml/ci/internal/notify"
	"github.com/easeml/ci/internal/script"
)

// ErrNeedNewTestset is returned by Commit when the installed testset's
// statistical budget is spent; install a fresh one with RotateTestset.
var ErrNeedNewTestset = errors.New("engine: testset budget exhausted; rotate in a new testset")

// Commit evaluates a newly committed model and returns the result. The
// evaluation consumes one unit of the testset's statistical budget.
func (e *Engine) Commit(m model.Predictor, author, message string) (Result, error) {
	if m == nil {
		return Result{}, fmt.Errorf("engine: nil model")
	}
	if !e.tsm.CanEvaluate() {
		return Result{}, ErrNeedNewTestset
	}
	ts := e.tsm.Current()
	newPreds, err := model.PredictAll(m, ts.Data)
	if err != nil {
		return Result{}, err
	}

	truth, estimates, freshLabels, err := e.evaluateCondition(newPreds)
	if err != nil {
		return Result{}, err
	}
	e.costs.Charge(freshLabels)
	pass := e.cfg.Mode.Collapse(truth)

	event, err := e.tsm.Record(pass)
	if err != nil {
		return Result{}, err
	}

	commit, err := e.repo.Append(author, message, m.Name(), map[string]string{
		"testset-generation": fmt.Sprint(ts.Generation),
	})
	if err != nil {
		return Result{}, err
	}

	res := Result{
		Commit:         commit,
		Step:           event.Step,
		Generation:     ts.Generation,
		Estimates:      estimates,
		Truth:          truth,
		Pass:           pass,
		Promoted:       pass,
		NeedNewTestset: event.NeedNewTestset,
		FreshLabels:    freshLabels,
	}

	// Signal routing per adaptivity mode (Section 2.2).
	switch e.cfg.Adaptivity.Kind {
	case script.AdaptivityNone:
		// The developer always sees "accepted"; the truth goes to the
		// third-party address.
		res.Signal = true
		if err := e.notifier.Send(notify.Notification{
			Kind:    notify.KindResult,
			To:      e.cfg.Adaptivity.Email,
			Subject: fmt.Sprintf("ease.ml/ci result for commit %s", commit.ID),
			Body:    fmt.Sprintf("model %q step %d: truth=%s pass=%v", m.Name(), res.Step, truth, pass),
		}); err != nil {
			return Result{}, err
		}
	default: // full, firstChange: release the real signal.
		res.Signal = pass
	}

	if event.NeedNewTestset {
		if err := e.notifier.Send(notify.Notification{
			Kind:    notify.KindAlarm,
			To:      "integration-team",
			Subject: "ease.ml/ci: new testset required",
			Body:    event.Reason,
		}); err != nil {
			return Result{}, err
		}
	}

	// Promotion: a commit whose true outcome is pass becomes the baseline
	// the next commit is compared against.
	if pass {
		e.active = newPreds
		e.activeName = m.Name()
	}
	e.history = append(e.history, res)
	return res, nil
}

// RotateTestset installs fresh data as the next-generation testset together
// with its oracle, recomputes the baseline predictions, and returns the
// retired testset (now releasable to the development team as a validation
// set).
func (e *Engine) RotateTestset(next *data.Dataset, oracle labeling.Oracle, activeModel model.Predictor) error {
	if oracle == nil {
		return fmt.Errorf("engine: nil oracle")
	}
	if activeModel == nil {
		return fmt.Errorf("engine: the active model must be re-supplied to rotate (its predictions are testset-specific)")
	}
	if e.plan.LabeledN > 0 && next.Len() < e.plan.LabeledN {
		return fmt.Errorf("engine: new testset has %d examples but the plan requires %d", next.Len(), e.plan.LabeledN)
	}
	if _, err := e.tsm.Rotate(next); err != nil {
		return err
	}
	e.oracle = oracle
	return e.setActive(activeModel)
}

// evaluateCondition measures the condition variables on the current testset
// and returns the three-valued outcome, spending oracle labels as the plan
// allows.
func (e *Engine) evaluateCondition(newPreds []int) (interval.Truth, map[condlang.Var]float64, int, error) {
	switch e.plan.Kind {
	case core.Pattern1, core.Pattern2:
		return e.evaluateActiveLabeling(newPreds)
	default:
		return e.evaluateFullyLabeled(newPreds)
	}
}

// evaluateFullyLabeled is the baseline path: every label is revealed and
// the three variables are measured directly.
func (e *Engine) evaluateFullyLabeled(newPreds []int) (interval.Truth, map[condlang.Var]float64, int, error) {
	ts := e.tsm.Current()
	labels := make([]int, ts.Len())
	fresh := 0
	for i := range labels {
		y, isFresh, err := e.revealLabel(i)
		if err != nil {
			return interval.Unknown, nil, 0, err
		}
		labels[i] = y
		if isFresh {
			fresh++
		}
	}
	est, err := evaluator.Measure(e.active, newPreds, labels)
	if err != nil {
		return interval.Unknown, nil, 0, err
	}
	truth, err := evaluator.EvalFormula(e.cfg.Condition, est)
	if err != nil {
		return interval.Unknown, nil, 0, err
	}
	return truth, est.Values, fresh, nil
}

// evaluateActiveLabeling is the optimized path (Sections 4.1.2 / 4.2):
// d needs no labels, and the n-o clause is measured by labeling only the
// examples where the old and new models disagree.
func (e *Engine) evaluateActiveLabeling(newPreds []int) (interval.Truth, map[condlang.Var]float64, int, error) {
	ts := e.tsm.Current()
	n := ts.Len()
	diff := 0
	for i := 0; i < n; i++ {
		if e.active[i] != newPreds[i] {
			diff++
		}
	}
	dHat := float64(diff) / float64(n)
	estimates := map[condlang.Var]float64{condlang.VarD: dHat}

	truth := interval.True
	fresh := 0
	for _, clause := range e.cfg.Condition.Clauses {
		lf, err := condlang.Linearize(clause.Expr)
		if err != nil {
			return interval.Unknown, nil, 0, err
		}
		var t interval.Truth
		switch {
		case len(lf.Coef) == 1 && lf.Coef[condlang.VarD] == 1:
			t, err = evaluator.EvalClauseLHS(clause, dHat, clause.Tolerance)
			if err != nil {
				return interval.Unknown, nil, 0, err
			}
		case len(lf.Coef) == 2 && lf.Coef[condlang.VarN] == 1 && lf.Coef[condlang.VarO] == -1:
			// Measure n - o over disagreements only: agreements contribute 0.
			sum := 0
			for i := 0; i < n; i++ {
				if e.active[i] == newPreds[i] {
					continue
				}
				y, isFresh, err := e.revealLabel(i)
				if err != nil {
					return interval.Unknown, nil, 0, err
				}
				if isFresh {
					fresh++
				}
				if newPreds[i] == y {
					sum++
				}
				if e.active[i] == y {
					sum--
				}
			}
			lhs := float64(sum) / float64(n)
			t, err = evaluator.EvalClauseLHS(clause, lhs, clause.Tolerance)
			if err != nil {
				return interval.Unknown, nil, 0, err
			}
		default:
			return interval.Unknown, nil, 0, fmt.Errorf("engine: pattern plan cannot evaluate clause %q", clause)
		}
		truth = truth.And(t)
	}
	return truth, estimates, fresh, nil
}

// revealLabel pays for one label through the oracle, cross-checking it
// against the testset's ground truth bookkeeping.
func (e *Engine) revealLabel(i int) (int, bool, error) {
	ts := e.tsm.Current()
	fresh := !ts.Revealed(i)
	y, err := e.oracle.Label(i)
	if err != nil {
		return 0, false, err
	}
	stored, _, err := ts.Reveal(i)
	if err != nil {
		return 0, false, err
	}
	if stored != y {
		return 0, false, fmt.Errorf("engine: oracle label %d disagrees with testset ground truth %d at example %d", y, stored, i)
	}
	return y, fresh, nil
}
