package engine

import (
	"errors"
	"fmt"

	"github.com/easeml/ci/internal/condlang"
	"github.com/easeml/ci/internal/core"
	"github.com/easeml/ci/internal/data"
	"github.com/easeml/ci/internal/evaluator"
	"github.com/easeml/ci/internal/interval"
	"github.com/easeml/ci/internal/labeling"
	"github.com/easeml/ci/internal/model"
	"github.com/easeml/ci/internal/notify"
	"github.com/easeml/ci/internal/planner"
	"github.com/easeml/ci/internal/script"
)

// ErrNeedNewTestset is returned by Commit when the installed testset's
// statistical budget is spent; install a fresh one with RotateTestset.
var ErrNeedNewTestset = errors.New("engine: testset budget exhausted; rotate in a new testset")

// Evaluation is the measurement outcome of evaluating one candidate model
// against the current baseline: the three-valued truth of the condition,
// its mode-collapsed pass signal, the point estimates that were
// observable, and how many fresh oracle labels the measurement needed. It
// is a plain value (no maps), so the steady-state evaluation path
// allocates nothing.
type Evaluation struct {
	// Truth is the three-valued evaluation of the condition.
	Truth interval.Truth
	// Pass is the outcome after mode collapse.
	Pass bool
	// D is the measured disagreement fraction (always observable).
	D float64
	// N and O are the measured accuracies; only meaningful when
	// HasAccuracy is true (active labeling cannot observe them).
	N, O float64
	// HasAccuracy reports whether N and O were measured.
	HasAccuracy bool
	// FreshLabels is the number of new oracle labels the measurement
	// revealed.
	FreshLabels int
	// Looks is how many reveal chunks the sequential loop took before
	// deciding (0 on a pre-reveal exit or with early decision disabled).
	Looks int
	// EarlyExit reports that the verdict was forced before the static
	// plan's full reveal.
	EarlyExit bool
	// LabelsSaved is the static plan's label cost for this commit minus
	// what was actually revealed.
	LabelsSaved int
}

// estimatesMap shapes the observable point estimates the way Result (and
// the wire API) reports them.
func (ev Evaluation) estimatesMap() map[condlang.Var]float64 {
	est := map[condlang.Var]float64{condlang.VarD: ev.D}
	if ev.HasAccuracy {
		est[condlang.VarN] = ev.N
		est[condlang.VarO] = ev.O
	}
	return est
}

// Evaluate measures the condition for a candidate model without recording
// a commit: no budget is consumed, nothing is appended to history, and no
// promotion happens. Labels the measurement reveals are spent for real on
// the testset (they stay revealed) but are not booked to the per-commit
// cost ledger — only Commit records cost. This is the dry-run surface
// ("what would this commit's verdict be?") and the benchmark target for
// the packed measurement core.
func (e *Engine) Evaluate(m model.Predictor) (Evaluation, error) {
	if m == nil {
		return Evaluation{}, fmt.Errorf("engine: nil model")
	}
	_, ev, _, err := e.evaluateModel(m)
	return ev, err
}

// Commit evaluates a newly committed model and returns the result. The
// evaluation consumes one unit of the testset's statistical budget.
func (e *Engine) Commit(m model.Predictor, author, message string) (Result, error) {
	if m == nil {
		return Result{}, fmt.Errorf("engine: nil model")
	}
	if !e.tsm.CanEvaluate() {
		return Result{}, ErrNeedNewTestset
	}
	ts := e.tsm.Current()
	newPreds, ev, borrowed, err := e.evaluateModel(m)
	if err != nil {
		return Result{}, err
	}
	if e.journal != nil && !e.early.Disable {
		// Journal the look decision before the reveal it explains, so a
		// replayed log can audit that recovery reproduced the exact same
		// label charges the sequential loop made live.
		if err := e.journal.JournalLooks(ev.Looks, ev.LabelsSaved, ev.EarlyExit); err != nil {
			return Result{}, err
		}
	}
	if e.journal != nil && ev.FreshLabels > 0 {
		if err := e.journal.JournalReveal(ev.FreshLabels); err != nil {
			return Result{}, err
		}
	}
	e.costs.Charge(ev.FreshLabels)
	if e.journal != nil {
		if err := e.journal.JournalCharge(ev.FreshLabels); err != nil {
			return Result{}, err
		}
	}
	pass := ev.Pass

	event, err := e.tsm.Record(pass)
	if err != nil {
		return Result{}, err
	}

	commit, err := e.repo.Append(author, message, m.Name(), map[string]string{
		"testset-generation": fmt.Sprint(ts.Generation),
	})
	if err != nil {
		return Result{}, err
	}

	res := Result{
		Commit:         commit,
		Step:           event.Step,
		Generation:     ts.Generation,
		Estimates:      ev.estimatesMap(),
		Truth:          ev.Truth,
		Pass:           pass,
		Promoted:       pass,
		NeedNewTestset: event.NeedNewTestset,
		FreshLabels:    ev.FreshLabels,
		Looks:          ev.Looks,
		EarlyExit:      ev.EarlyExit,
		LabelsSaved:    ev.LabelsSaved,
	}

	// Signal routing per adaptivity mode (Section 2.2).
	switch e.cfg.Adaptivity.Kind {
	case script.AdaptivityNone:
		// The developer always sees "accepted"; the truth goes to the
		// third-party address.
		res.Signal = true
		if err := e.notifier.Send(notify.Notification{
			Kind:    notify.KindResult,
			To:      e.cfg.Adaptivity.Email,
			Subject: fmt.Sprintf("ease.ml/ci result for commit %s", commit.ID),
			Body:    fmt.Sprintf("model %q step %d: truth=%s pass=%v", m.Name(), res.Step, ev.Truth, pass),
		}); err != nil {
			return Result{}, err
		}
	default: // full, firstChange: release the real signal.
		res.Signal = pass
	}

	if event.NeedNewTestset {
		if err := e.notifier.Send(notify.Notification{
			Kind:    notify.KindAlarm,
			To:      "integration-team",
			Subject: "ease.ml/ci: new testset required",
			Body:    event.Reason,
		}); err != nil {
			return Result{}, err
		}
	}

	// Promotion: a commit whose true outcome is pass becomes the baseline
	// the next commit is compared against.
	if pass {
		switch {
		case e.scalarEval:
			e.active = newPreds
		case borrowed:
			// The evaluation read the model's own vector in place; the
			// baseline must be engine-owned, so promotion pays the copy
			// the evaluation skipped.
			copy(e.predBuf, newPreds)
			e.active, e.predBuf = e.predBuf, e.active
			e.activeMatch, e.newMatch = e.newMatch, e.activeMatch
		default:
			// newPreds is the engine's own predBuf: swap it with the
			// retired baseline so both slices (and the two correctness
			// bitmaps) keep cycling with zero allocation.
			e.active, e.predBuf = newPreds, e.active
			e.activeMatch, e.newMatch = e.newMatch, e.activeMatch
		}
		if !e.scalarEval && e.byteCols {
			// The narrow baseline mirror follows the promotion.
			for i, y := range e.active {
				e.active8[i] = uint8(y)
			}
		}
		e.activeName = m.Name()
		if e.journal != nil {
			if err := e.journal.JournalPromote(m.Name()); err != nil {
				return Result{}, err
			}
		}
	}
	e.history = append(e.history, res)
	return res, nil
}

// RotateTestset installs fresh data as the next-generation testset together
// with its oracle, recomputes the baseline predictions, and returns the
// retired testset (now releasable to the development team as a validation
// set).
func (e *Engine) RotateTestset(next *data.Dataset, oracle labeling.Oracle, activeModel model.Predictor) error {
	if oracle == nil {
		return fmt.Errorf("engine: nil oracle")
	}
	if activeModel == nil {
		return fmt.Errorf("engine: the active model must be re-supplied to rotate (its predictions are testset-specific)")
	}
	if e.plan.LabeledN > 0 && next.Len() < e.plan.LabeledN {
		return fmt.Errorf("engine: new testset has %d examples but the plan requires %d", next.Len(), e.plan.LabeledN)
	}
	if _, err := e.tsm.Rotate(next); err != nil {
		return err
	}
	e.oracle = oracle
	e.batch = labeling.AsBatch(oracle)
	return e.setActive(activeModel)
}

// evaluateModel produces the candidate's predictions and measures the
// condition, through the packed bitmap core by default or the element-wise
// scalar reference when the engine was built with Options.ScalarEval. The
// returned borrowed flag reports that newPreds is the model's own vector
// (zero-copy fast path): it is only read during this evaluation, and a
// caller that wants to keep it (promotion) must copy it into engine-owned
// storage first.
func (e *Engine) evaluateModel(m model.Predictor) (newPreds []int, ev Evaluation, borrowed bool, err error) {
	ts := e.tsm.Current()
	if e.scalarEval {
		// The reference pipeline, allocation profile included: a fresh
		// prediction vector per commit.
		newPreds, err = model.PredictAll(m, ts.Data)
	} else {
		// Zero-copy tier first: a prediction-vector model (the serving
		// wire format) is measured in place — the fused pass only reads
		// it, so the 8n-byte defensive copy would be pure memory traffic.
		if sp, ok := m.(model.StaticPredictor); ok {
			newPreds, borrowed = sp.StaticPredictions(ts.Data)
		}
		if !borrowed {
			newPreds, err = model.PredictAllInto(m, ts.Data, e.predBuf)
			if err == nil {
				e.predBuf = newPreds
			}
		}
	}
	if err != nil {
		return nil, Evaluation{}, false, err
	}
	e.evalReveals = e.evalReveals[:0]
	if e.scalarEval {
		ev, err = e.evaluateConditionScalar(newPreds)
	} else {
		ev, err = e.evaluateConditionPacked(newPreds)
	}
	if err != nil {
		e.rollbackReveals()
		return nil, Evaluation{}, false, err
	}
	e.evalReveals = e.evalReveals[:0]
	ev.Pass = e.cfg.Mode.Collapse(ev.Truth)
	return newPreds, ev, borrowed, nil
}

// rollbackReveals un-reveals every label the failed evaluation paid for:
// the testset marks (testset.Unreveal), the packed label columns, and
// both incremental correctness bitmaps. Each reveal batch is atomic on
// its own (verify-all-then-mark), but a sequential evaluation spans
// several batches — a remote-oracle outage at look k would otherwise
// strand looks 1..k-1 revealed, and the re-run after recovery would pay
// fewer fresh labels and take a different look path than a run that
// never failed. With the rollback (and the provider client's
// verified-label cache making the re-request free), the re-run is
// byte-identical to the fault-free run: same looks, same fresh-label
// charge, same verdict.
func (e *Engine) rollbackReveals() {
	if len(e.evalReveals) == 0 {
		return
	}
	e.tsm.Current().Unreveal(e.evalReveals)
	for _, i := range e.evalReveals {
		if i < len(e.labels) {
			e.labels[i] = -1
		}
		if e.byteCols && i < len(e.labels8) {
			e.labels8[i] = 255
		}
		e.activeMatch.Clear(i)
		e.newMatch.Clear(i)
	}
	e.evalReveals = e.evalReveals[:0]
}

// --- packed paths --------------------------------------------------------

// fusedPass fills the diff and new-model correctness bitmaps for the
// candidate, through the narrow byte columns when the alphabet allows.
func (e *Engine) fusedPass(newPreds []int) {
	if e.byteCols {
		evaluator.CommitBitmapsBytes(newPreds, e.active8, e.labels8, &e.diff, &e.newMatch)
	} else {
		evaluator.CommitBitmaps(e.active, newPreds, e.labels, &e.diff, &e.newMatch)
	}
}

// evaluateConditionPacked measures the condition variables on the current
// testset via the bit-packed columnar core.
func (e *Engine) evaluateConditionPacked(newPreds []int) (Evaluation, error) {
	switch e.plan.Kind {
	case core.Pattern1, core.Pattern2:
		return e.evaluateActiveLabelingPacked(newPreds)
	default:
		return e.evaluateFullyLabeledPacked(newPreds)
	}
}

// evaluateFullyLabeledPacked is the baseline path made sequential: the
// fused pass builds the disagreement and candidate-correctness bitmaps up
// front (correctness only lights up on revealed labels — the sentinel in
// the label column never matches a prediction), then labels come in
// prefix chunks along the geometric look schedule, with a forced-verdict
// check between chunks. A commit that is not borderline exits after a
// fraction of the testset; one that is falls through to the full reveal
// and the exact evaluation the static plan would have run.
func (e *Engine) evaluateFullyLabeledPacked(newPreds []int) (Evaluation, error) {
	if e.early.Disable {
		return e.evaluateFullyLabeledPackedStatic(newPreds)
	}
	ts := e.tsm.Current()
	n := ts.Len()
	startUnrevealed := n - ts.RevealedCount()
	e.fusedPass(newPreds)
	fresh, looks := 0, 0
	for {
		revealed := ts.RevealedCount()
		if revealed == n {
			break
		}
		c := lookCounts{
			total:         n,
			revealed:      revealed,
			matchN:        e.newMatch.Count(),
			matchO:        e.activeMatch.Count(),
			diffCount:     e.diff.Count(),
			unrevealedDis: evaluator.AndNotCount(e.diff, ts.RevealedBitmap()),
		}
		truth, forced := e.decideFullyLabeled(c, looks+1)
		if forced {
			ev := finishPartialFull(truth, c, fresh, looks, startUnrevealed)
			e.setEstVals(ev)
			return ev, nil
		}
		target := planner.NextLook(revealed, n, e.early.FirstLook, e.early.Growth)
		freshIdx, err := ts.RevealFirst(target-revealed, e.batch)
		if err != nil {
			return Evaluation{}, err
		}
		e.patchRevealed(newPreds, freshIdx)
		fresh += len(freshIdx)
		looks++
	}
	// Fully revealed: the exact evaluation, identical to the static path.
	ev := Evaluation{
		D:           float64(e.diff.Count()) / float64(n),
		FreshLabels: fresh,
		Looks:       looks,
	}
	ev.N = float64(e.newMatch.Count()) / float64(n)
	ev.O = float64(e.activeMatch.Count()) / float64(n)
	ev.HasAccuracy = true
	e.setEstVals(ev)
	truth, err := e.compiled.Eval(evaluator.VarEstimates{Values: e.estVals})
	if err != nil {
		return Evaluation{}, err
	}
	ev.Truth = truth
	return ev, nil
}

// evaluateFullyLabeledPackedStatic is the pre-sequential one-shot path,
// kept verbatim as the early-decision baseline oracle: one bulk reveal
// brings the whole testset's labels in (a no-op after the first commit of
// a generation), then one fused pass builds the disagreement and
// correctness bitmaps and the three variables are popcounts.
func (e *Engine) evaluateFullyLabeledPackedStatic(newPreds []int) (Evaluation, error) {
	ts := e.tsm.Current()
	n := ts.Len()
	fresh := 0
	if ts.RevealedCount() != n {
		var err error
		if fresh, err = ts.RevealAll(e.batch); err != nil {
			return Evaluation{}, err
		}
		copy(e.labels, ts.Data.Y)
		evaluator.MatchBitmap(e.active, e.labels, &e.activeMatch)
		if e.byteCols {
			copyLabelBytes(e.labels8, e.labels)
		}
	}
	e.fusedPass(newPreds)
	ev := Evaluation{
		D:           float64(e.diff.Count()) / float64(n),
		FreshLabels: fresh,
	}
	e.estVals[condlang.VarD] = ev.D
	if labeled := ts.RevealedCount(); labeled > 0 {
		ev.N = float64(e.newMatch.Count()) / float64(labeled)
		ev.O = float64(e.activeMatch.Count()) / float64(labeled)
		ev.HasAccuracy = true
		e.estVals[condlang.VarN] = ev.N
		e.estVals[condlang.VarO] = ev.O
	} else {
		delete(e.estVals, condlang.VarN)
		delete(e.estVals, condlang.VarO)
	}
	truth, err := e.compiled.Eval(evaluator.VarEstimates{Values: e.estVals})
	if err != nil {
		return Evaluation{}, err
	}
	ev.Truth = truth
	return ev, nil
}

// patchRevealed folds freshly revealed labels into the packed measurement
// state: the label scratch columns and both correctness bitmaps, exactly
// the bits a full fused pass over the now-revealed labels would set.
func (e *Engine) patchRevealed(newPreds []int, freshIdx []int) {
	ts := e.tsm.Current()
	e.evalReveals = append(e.evalReveals, freshIdx...)
	for _, idx := range freshIdx {
		y := ts.Data.Y[idx]
		e.labels[idx] = y
		if e.byteCols {
			e.labels8[idx] = uint8(y)
		}
		if e.active[idx] == y {
			e.activeMatch.Set(idx)
		}
		if newPreds[idx] == y {
			e.newMatch.Set(idx)
		}
	}
}

// setEstVals refreshes the engine's reusable estimates map from one
// evaluation, deleting what the evaluation could not observe so stale
// values from a previous commit never leak to estimator consumers.
func (e *Engine) setEstVals(ev Evaluation) {
	e.estVals[condlang.VarD] = ev.D
	if ev.HasAccuracy {
		e.estVals[condlang.VarN] = ev.N
		e.estVals[condlang.VarO] = ev.O
	} else {
		delete(e.estVals, condlang.VarN)
		delete(e.estVals, condlang.VarO)
	}
}

// evaluateActiveLabelingPacked is the optimized path (Sections 4.1.2 /
// 4.2) on packed columns, made sequential: d is the popcount of the
// disagreement bitmap (no labels), and the n-o clause's disagreement-set
// labels come in chunks along the geometric look schedule, each followed
// by a forced-verdict check over the two masked popcounts. The commit
// exits the moment the unrevealed disagreements can no longer flip the
// verdict — including before any reveal, when a label-free clause already
// collapsed the conjunction.
func (e *Engine) evaluateActiveLabelingPacked(newPreds []int) (Evaluation, error) {
	if e.early.Disable {
		return e.evaluateActiveLabelingPackedStatic(newPreds)
	}
	ts := e.tsm.Current()
	n := ts.Len()
	e.fusedPass(newPreds)
	diffCount := e.diff.Count()
	dHat := float64(diffCount) / float64(n)
	staticCost := e.activeStaticCost(dHat, evaluator.AndNotCount(e.diff, ts.RevealedBitmap()))
	fresh, looks := 0, 0
	for {
		revealedDis := diffCount - evaluator.AndNotCount(e.diff, ts.RevealedBitmap())
		if revealedDis == diffCount {
			break
		}
		sumR := evaluator.AndCount(e.newMatch, e.diff) - evaluator.AndCount(e.activeMatch, e.diff)
		truth, forced, err := e.decideActive(dHat, n, sumR, revealedDis, diffCount, looks+1)
		if err != nil {
			return Evaluation{}, err
		}
		if forced {
			ev := Evaluation{
				Truth:       truth,
				D:           dHat,
				FreshLabels: fresh,
				Looks:       looks,
				EarlyExit:   true,
				LabelsSaved: staticCost - fresh,
			}
			e.setEstVals(ev)
			return ev, nil
		}
		target := planner.NextLook(revealedDis, diffCount, e.early.FirstLook, e.early.Growth)
		freshIdx, err := ts.RevealChunk(e.diff, target-revealedDis, e.batch)
		if err != nil {
			return Evaluation{}, err
		}
		e.patchRevealed(newPreds, freshIdx)
		fresh += len(freshIdx)
		looks++
	}
	// Every disagreement is labeled: the exact clause loop, identical to
	// the static path's final evaluation.
	ev := Evaluation{D: dHat, FreshLabels: fresh, Looks: looks}
	truth := interval.True
	for i := range e.compiled.Clauses {
		cc := &e.compiled.Clauses[i]
		var (
			t   interval.Truth
			err error
		)
		switch {
		case cc.DOnly():
			t, err = evaluator.EvalClauseLHS(cc.Clause, dHat, cc.Clause.Tolerance)
		case cc.NMinusO():
			sum := evaluator.AndCount(e.newMatch, e.diff) - evaluator.AndCount(e.activeMatch, e.diff)
			t, err = evaluator.EvalClauseLHS(cc.Clause, float64(sum)/float64(n), cc.Clause.Tolerance)
		default:
			return Evaluation{}, fmt.Errorf("engine: pattern plan cannot evaluate clause %q", cc.Clause)
		}
		if err != nil {
			return Evaluation{}, err
		}
		truth = truth.And(t)
	}
	ev.Truth = truth
	e.setEstVals(ev)
	return ev, nil
}

// evaluateActiveLabelingPackedStatic is the pre-sequential one-shot
// active path, kept as the early-decision baseline oracle: the n-o clause
// reveals every disagreeing example in one batched oracle call — unless
// an earlier clause already collapsed the conjunction to False, in which
// case the verdict cannot change and the reveal is skipped entirely.
func (e *Engine) evaluateActiveLabelingPackedStatic(newPreds []int) (Evaluation, error) {
	ts := e.tsm.Current()
	n := ts.Len()
	e.fusedPass(newPreds)
	dHat := float64(e.diff.Count()) / float64(n)
	ev := Evaluation{D: dHat}

	truth := interval.True
	revealed := false
	for i := range e.compiled.Clauses {
		cc := &e.compiled.Clauses[i]
		if truth == interval.False {
			// And is monotone: a False clause fixes the conjunction no
			// matter what the remaining clauses evaluate to, so never pay
			// the n-o clause's disagreement-set labels after one.
			break
		}
		var (
			t   interval.Truth
			err error
		)
		switch {
		case cc.DOnly():
			t, err = evaluator.EvalClauseLHS(cc.Clause, dHat, cc.Clause.Tolerance)
		case cc.NMinusO():
			if !revealed {
				freshIdx, err2 := ts.RevealWhere(e.diff, e.batch)
				if err2 != nil {
					return Evaluation{}, err2
				}
				// Patch the freshly revealed entries into the label
				// scratch column and both correctness bitmaps (the fused
				// pass above ran before these labels existed).
				e.patchRevealed(newPreds, freshIdx)
				ev.FreshLabels = len(freshIdx)
				revealed = true
			}
			// Measure n - o over disagreements only: agreements contribute
			// 0, so the sum is two masked popcounts.
			sum := evaluator.AndCount(e.newMatch, e.diff) - evaluator.AndCount(e.activeMatch, e.diff)
			t, err = evaluator.EvalClauseLHS(cc.Clause, float64(sum)/float64(n), cc.Clause.Tolerance)
		default:
			return Evaluation{}, fmt.Errorf("engine: pattern plan cannot evaluate clause %q", cc.Clause)
		}
		if err != nil {
			return Evaluation{}, err
		}
		truth = truth.And(t)
	}
	ev.Truth = truth
	e.setEstVals(ev)
	return ev, nil
}

// --- scalar reference paths ----------------------------------------------
//
// The element-wise implementations below predate the packed core and are
// kept verbatim as the equivalence oracle (Options.ScalarEval): property
// tests drive both engines over identical commit sequences and assert
// byte-identical results, the same pattern bounds.ExactWorstCaseFailureGrid
// serves for the event-driven sweep.

// evaluateConditionScalar dispatches the scalar reference path.
func (e *Engine) evaluateConditionScalar(newPreds []int) (Evaluation, error) {
	switch e.plan.Kind {
	case core.Pattern1, core.Pattern2:
		return e.evaluateActiveLabelingScalar(newPreds)
	default:
		return e.evaluateFullyLabeledScalar(newPreds)
	}
}

// evaluateFullyLabeledScalar is the scalar baseline path made sequential:
// the counts feeding the shared look decisions come from element-wise
// walks instead of popcounts, and labels are revealed one oracle round
// trip at a time in the same ascending-prefix order the packed path's
// chunk reveals use — so both paths make bit-identical look decisions.
func (e *Engine) evaluateFullyLabeledScalar(newPreds []int) (Evaluation, error) {
	if e.early.Disable {
		return e.evaluateFullyLabeledScalarStatic(newPreds)
	}
	ts := e.tsm.Current()
	n := ts.Len()
	startUnrevealed := n - ts.RevealedCount()
	fresh, looks := 0, 0
	for {
		var revealed, matchN, matchO, diffCount, unrevDis int
		for i := 0; i < n; i++ {
			dis := e.active[i] != newPreds[i]
			if dis {
				diffCount++
			}
			if ts.Revealed(i) {
				revealed++
				y := ts.Data.Y[i]
				if newPreds[i] == y {
					matchN++
				}
				if e.active[i] == y {
					matchO++
				}
			} else if dis {
				unrevDis++
			}
		}
		if revealed == n {
			break
		}
		c := lookCounts{
			total:         n,
			revealed:      revealed,
			matchN:        matchN,
			matchO:        matchO,
			diffCount:     diffCount,
			unrevealedDis: unrevDis,
		}
		truth, forced := e.decideFullyLabeled(c, looks+1)
		if forced {
			return finishPartialFull(truth, c, fresh, looks, startUnrevealed), nil
		}
		target := planner.NextLook(revealed, n, e.early.FirstLook, e.early.Growth)
		for i := 0; i < n && revealed < target; i++ {
			if ts.Revealed(i) {
				continue
			}
			if _, _, err := e.revealLabel(i); err != nil {
				return Evaluation{}, err
			}
			fresh++
			revealed++
		}
		looks++
	}
	// Fully revealed: the legacy element-wise measurement, identical to
	// the static path's final evaluation.
	if len(e.labels) != n {
		e.labels = make([]int, n)
	}
	copy(e.labels, ts.Data.Y)
	est, err := evaluator.Measure(e.active, newPreds, e.labels)
	if err != nil {
		return Evaluation{}, err
	}
	truth, err := evaluator.EvalFormula(e.cfg.Condition, est)
	if err != nil {
		return Evaluation{}, err
	}
	ev := Evaluation{Truth: truth, D: est.Values[condlang.VarD], FreshLabels: fresh, Looks: looks}
	if nv, ok := est.Values[condlang.VarN]; ok {
		ev.N, ev.O, ev.HasAccuracy = nv, est.Values[condlang.VarO], true
	}
	return ev, nil
}

// evaluateFullyLabeledScalarStatic is the pre-sequential scalar baseline:
// every label is revealed one oracle round trip at a time and the three
// variables are measured by an element-wise walk. The label column reuses
// the engine-owned scratch buffer rather than reallocating per commit.
func (e *Engine) evaluateFullyLabeledScalarStatic(newPreds []int) (Evaluation, error) {
	ts := e.tsm.Current()
	if len(e.labels) != ts.Len() {
		e.labels = make([]int, ts.Len())
	}
	labels := e.labels
	fresh := 0
	for i := range labels {
		y, isFresh, err := e.revealLabel(i)
		if err != nil {
			return Evaluation{}, err
		}
		labels[i] = y
		if isFresh {
			fresh++
		}
	}
	est, err := evaluator.Measure(e.active, newPreds, labels)
	if err != nil {
		return Evaluation{}, err
	}
	truth, err := evaluator.EvalFormula(e.cfg.Condition, est)
	if err != nil {
		return Evaluation{}, err
	}
	ev := Evaluation{Truth: truth, D: est.Values[condlang.VarD], FreshLabels: fresh}
	if nv, ok := est.Values[condlang.VarN]; ok {
		ev.N, ev.O, ev.HasAccuracy = nv, est.Values[condlang.VarO], true
	}
	return ev, nil
}

// evaluateActiveLabelingScalar is the scalar active-labeling path made
// sequential: d from an element-wise disagreement count, disagreement-set
// labels revealed one at a time in ascending order toward the same chunk
// targets the packed path uses, with the shared forced-verdict check
// between chunks.
func (e *Engine) evaluateActiveLabelingScalar(newPreds []int) (Evaluation, error) {
	if e.early.Disable {
		return e.evaluateActiveLabelingScalarStatic(newPreds)
	}
	ts := e.tsm.Current()
	n := ts.Len()
	diffCount, startUnrevDis := 0, 0
	for i := 0; i < n; i++ {
		if e.active[i] != newPreds[i] {
			diffCount++
			if !ts.Revealed(i) {
				startUnrevDis++
			}
		}
	}
	dHat := float64(diffCount) / float64(n)
	staticCost := e.activeStaticCost(dHat, startUnrevDis)
	fresh, looks := 0, 0
	for {
		revealedDis, sumR := 0, 0
		for i := 0; i < n; i++ {
			if e.active[i] == newPreds[i] || !ts.Revealed(i) {
				continue
			}
			revealedDis++
			y := ts.Data.Y[i]
			if newPreds[i] == y {
				sumR++
			}
			if e.active[i] == y {
				sumR--
			}
		}
		if revealedDis == diffCount {
			break
		}
		truth, forced, err := e.decideActive(dHat, n, sumR, revealedDis, diffCount, looks+1)
		if err != nil {
			return Evaluation{}, err
		}
		if forced {
			return Evaluation{
				Truth:       truth,
				D:           dHat,
				FreshLabels: fresh,
				Looks:       looks,
				EarlyExit:   true,
				LabelsSaved: staticCost - fresh,
			}, nil
		}
		target := planner.NextLook(revealedDis, diffCount, e.early.FirstLook, e.early.Growth)
		for i := 0; i < n && revealedDis < target; i++ {
			if e.active[i] == newPreds[i] || ts.Revealed(i) {
				continue
			}
			if _, _, err := e.revealLabel(i); err != nil {
				return Evaluation{}, err
			}
			fresh++
			revealedDis++
		}
		looks++
	}
	// Every disagreement is labeled: the exact clause loop, identical to
	// the static path's final evaluation.
	ev := Evaluation{D: dHat, FreshLabels: fresh, Looks: looks}
	truth := interval.True
	for _, clause := range e.cfg.Condition.Clauses {
		lf, err := condlang.Linearize(clause.Expr)
		if err != nil {
			return Evaluation{}, err
		}
		var t interval.Truth
		switch {
		case len(lf.Coef) == 1 && lf.Coef[condlang.VarD] == 1:
			t, err = evaluator.EvalClauseLHS(clause, dHat, clause.Tolerance)
			if err != nil {
				return Evaluation{}, err
			}
		case len(lf.Coef) == 2 && lf.Coef[condlang.VarN] == 1 && lf.Coef[condlang.VarO] == -1:
			sum := 0
			for i := 0; i < n; i++ {
				if e.active[i] == newPreds[i] {
					continue
				}
				y := ts.Data.Y[i]
				if newPreds[i] == y {
					sum++
				}
				if e.active[i] == y {
					sum--
				}
			}
			t, err = evaluator.EvalClauseLHS(clause, float64(sum)/float64(n), clause.Tolerance)
			if err != nil {
				return Evaluation{}, err
			}
		default:
			return Evaluation{}, fmt.Errorf("engine: pattern plan cannot evaluate clause %q", clause)
		}
		truth = truth.And(t)
	}
	ev.Truth = truth
	return ev, nil
}

// evaluateActiveLabelingScalarStatic is the pre-sequential scalar active
// path: labels revealed one at a time for the disagreeing examples only —
// unless an earlier clause already collapsed the conjunction to False,
// mirroring the packed path's short-circuit so the equivalence suites
// stay byte-identical.
func (e *Engine) evaluateActiveLabelingScalarStatic(newPreds []int) (Evaluation, error) {
	ts := e.tsm.Current()
	n := ts.Len()
	diff := 0
	for i := 0; i < n; i++ {
		if e.active[i] != newPreds[i] {
			diff++
		}
	}
	dHat := float64(diff) / float64(n)
	ev := Evaluation{D: dHat}

	truth := interval.True
	fresh := 0
	for _, clause := range e.cfg.Condition.Clauses {
		if truth == interval.False {
			// And is monotone: the conjunction is already fixed, so never
			// pay the n-o clause's disagreement-set labels after a False.
			break
		}
		lf, err := condlang.Linearize(clause.Expr)
		if err != nil {
			return Evaluation{}, err
		}
		var t interval.Truth
		switch {
		case len(lf.Coef) == 1 && lf.Coef[condlang.VarD] == 1:
			t, err = evaluator.EvalClauseLHS(clause, dHat, clause.Tolerance)
			if err != nil {
				return Evaluation{}, err
			}
		case len(lf.Coef) == 2 && lf.Coef[condlang.VarN] == 1 && lf.Coef[condlang.VarO] == -1:
			// Measure n - o over disagreements only: agreements contribute 0.
			sum := 0
			for i := 0; i < n; i++ {
				if e.active[i] == newPreds[i] {
					continue
				}
				y, isFresh, err := e.revealLabel(i)
				if err != nil {
					return Evaluation{}, err
				}
				if isFresh {
					fresh++
				}
				if newPreds[i] == y {
					sum++
				}
				if e.active[i] == y {
					sum--
				}
			}
			lhs := float64(sum) / float64(n)
			t, err = evaluator.EvalClauseLHS(clause, lhs, clause.Tolerance)
			if err != nil {
				return Evaluation{}, err
			}
		default:
			return Evaluation{}, fmt.Errorf("engine: pattern plan cannot evaluate clause %q", clause)
		}
		truth = truth.And(t)
	}
	ev.Truth = truth
	ev.FreshLabels = fresh
	return ev, nil
}

// revealLabel pays for one label through the oracle, cross-checking it
// against the testset's ground truth bookkeeping.
func (e *Engine) revealLabel(i int) (int, bool, error) {
	ts := e.tsm.Current()
	fresh := !ts.Revealed(i)
	y, err := e.oracle.Label(i)
	if err != nil {
		return 0, false, err
	}
	stored, _, err := ts.Reveal(i)
	if err != nil {
		return 0, false, err
	}
	if fresh {
		e.evalReveals = append(e.evalReveals, i)
	}
	if stored != y {
		return 0, false, fmt.Errorf("engine: oracle label %d disagrees with testset ground truth %d at example %d", y, stored, i)
	}
	return y, fresh, nil
}
