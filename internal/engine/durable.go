package engine

import (
	"fmt"

	"github.com/easeml/ci/internal/adaptivity"
	"github.com/easeml/ci/internal/condlang"
	"github.com/easeml/ci/internal/data"
	"github.com/easeml/ci/internal/evaluator"
	"github.com/easeml/ci/internal/labeling"
	"github.com/easeml/ci/internal/notify"
	"github.com/easeml/ci/internal/planner"
	"github.com/easeml/ci/internal/repository"
	"github.com/easeml/ci/internal/script"
	"github.com/easeml/ci/internal/testset"
)

// Journal receives the engine's durable side effects while a commit is
// being applied, before it lands in history. A durability layer appends
// each callback to its write-ahead log; returning an error aborts the
// commit mid-application, leaving the engine in an undefined state — the
// caller must treat the whole engine as poisoned and recover by replay.
// The callbacks double as the replay audit trail: re-executing the same
// commits emits the same sequence, so recovery can cross-check the log.
type Journal interface {
	// JournalReveal records that the evaluation paid for count fresh
	// oracle labels.
	JournalReveal(count int) error
	// JournalCharge records the labeling-ledger charge for the commit
	// (possibly 0).
	JournalCharge(labels int) error
	// JournalPromote records that model became the new baseline.
	JournalPromote(model string) error
	// JournalLooks records the sequential evaluation's look decision for
	// the commit: how many reveal chunks it took, how many labels it
	// saved against the static plan, and whether it exited early. Emitted
	// for every commit while early decision is enabled (never when
	// disabled, so disabled-mode logs match the pre-sequential format).
	JournalLooks(looks, saved int, early bool) error
}

// SetJournal installs (or, with nil, removes) the durability journal.
func (e *Engine) SetJournal(j Journal) { e.journal = j }

// SetNotifier swaps the notifier. Recovery replays commits against a
// discard notifier (the notifications already happened before the
// crash), then installs the real one before serving resumes.
func (e *Engine) SetNotifier(n notify.Notifier) {
	if n == nil {
		n = notify.Discard{}
	}
	e.notifier = n
}

// SetOracle swaps the label source. Recovery replays commits against
// the snapshot's ground-truth oracle (the labels were already paid for
// before the crash — replay must never touch the remote provider), then
// installs the real remote-backed oracle before serving resumes. It is
// also how a testset rotation hands the engine a provider client whose
// verified-label cache was cleared for the new generation.
func (e *Engine) SetOracle(o labeling.Oracle) error {
	if o == nil {
		return fmt.Errorf("engine: nil oracle")
	}
	e.oracle = o
	e.batch = labeling.AsBatch(o)
	return nil
}

// State is the engine's complete durable state: everything needed to
// rebuild an engine that is byte-identical — history, ledgers, revealed
// labels, baseline — to the one that snapshotted it. It is the payload
// a durability layer stores in its snapshot file.
type State struct {
	// Generation and Testset describe the installed testset; Revealed
	// lists the example indices whose labels were already paid for.
	Generation int           `json:"generation"`
	Testset    *data.Dataset `json:"testset"`
	Revealed   []int         `json:"revealed,omitempty"`
	// BudgetUsed and Retired are the adaptivity ledger position.
	BudgetUsed int  `json:"budget_used"`
	Retired    bool `json:"retired,omitempty"`
	// ActiveName and ActivePreds are the current baseline and its
	// predictions on the installed testset.
	ActiveName  string `json:"active_name"`
	ActivePreds []int  `json:"active_preds"`
	// Charges is the labeling ledger's per-commit label spend.
	Charges []int `json:"charges,omitempty"`
	// Commits is the full hash-chained commit history.
	Commits []repository.Commit `json:"commits,omitempty"`
	// History is the evaluation result per commit, in order.
	History []Result `json:"history,omitempty"`
}

// Snapshot captures the engine's durable state. The caller must hold
// whatever lock serializes commits; the returned value shares nothing
// with the engine.
func (e *Engine) Snapshot() State {
	ts := e.tsm.Current()
	return State{
		Generation:  ts.Generation,
		Testset:     cloneDataset(ts.Data),
		Revealed:    ts.RevealedIndices(),
		BudgetUsed:  e.tsm.Used(),
		Retired:     e.tsm.Retired(),
		ActiveName:  e.activeName,
		ActivePreds: append([]int(nil), e.active...),
		Charges:     e.costs.PerCommit(),
		Commits:     e.repo.History(),
		History:     e.History(),
	}
}

// Restore rebuilds an engine from a snapshot taken by Snapshot. The
// label oracle is re-derived from the testset's ground truth (the
// simulation oracle is stateless), the commit chain is re-verified
// hash by hash, and the packed measurement state is rebuilt from the
// restored revealed set — so a restored engine evaluates subsequent
// commits exactly as the snapshotted one would have.
func Restore(cfg *script.Config, st State, opts Options) (*Engine, error) {
	if cfg == nil {
		return nil, fmt.Errorf("engine: nil config")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if st.Testset == nil {
		return nil, fmt.Errorf("engine: snapshot has no testset")
	}
	plan, err := planner.Default.PlanForConfig(cfg, opts.Planner)
	if err != nil {
		return nil, err
	}
	if plan.LabeledN > 0 && st.Testset.Len() < plan.LabeledN {
		return nil, fmt.Errorf("engine: restored testset has %d examples but the plan requires %d", st.Testset.Len(), plan.LabeledN)
	}
	kind, err := adaptivity.FromScript(cfg.Adaptivity.Kind)
	if err != nil {
		return nil, err
	}
	ts, err := testset.Restore(st.Generation, st.Testset, st.Revealed)
	if err != nil {
		return nil, err
	}
	tsm, err := testset.RestoreManager(kind, cfg.Steps, ts, st.BudgetUsed, st.Retired)
	if err != nil {
		return nil, err
	}
	repo, err := repository.Restore(st.Commits)
	if err != nil {
		return nil, err
	}
	if len(st.History) != len(st.Commits) {
		return nil, fmt.Errorf("engine: snapshot has %d results for %d commits", len(st.History), len(st.Commits))
	}
	if len(st.Charges) != len(st.Commits) {
		return nil, fmt.Errorf("engine: snapshot has %d charges for %d commits", len(st.Charges), len(st.Commits))
	}
	if len(st.ActivePreds) != st.Testset.Len() {
		return nil, fmt.Errorf("engine: snapshot baseline has %d predictions for %d examples", len(st.ActivePreds), st.Testset.Len())
	}
	for i, y := range st.ActivePreds {
		if y < 0 || y >= st.Testset.Classes {
			return nil, fmt.Errorf("engine: snapshot baseline prediction %d out of range at %d", y, i)
		}
	}
	oracle := labeling.NewTruthOracle(st.Testset.Y)
	notifier := opts.Notifier
	if notifier == nil {
		notifier = notify.NewOutbox()
	}
	compiled, err := evaluator.Compile(cfg.Condition)
	if err != nil {
		return nil, err
	}
	if err := opts.EarlyDecision.validate(); err != nil {
		return nil, err
	}
	eng := &Engine{
		cfg:         cfg,
		plan:        plan,
		plannerOpts: opts.Planner,
		tsm:         tsm,
		oracle:      oracle,
		batch:       labeling.AsBatch(oracle),
		costs:       labeling.RestoreLedger(st.Charges),
		notifier:    notifier,
		repo:        repo,
		scalarEval:  opts.ScalarEval,
		compiled:    compiled,
		early:       opts.EarlyDecision.withDefaults(),
		estVals:     make(map[condlang.Var]float64, 3),
		activeName:  st.ActiveName,
		active:      append([]int(nil), st.ActivePreds...),
		history:     append([]Result(nil), st.History...),
	}
	eng.syncPackedState()
	return eng, nil
}

// cloneDataset deep-copies the per-example slices so the snapshot stays
// stable if a rotation later replaces the testset.
func cloneDataset(d *data.Dataset) *data.Dataset {
	out := &data.Dataset{Name: d.Name, Classes: d.Classes}
	out.Y = append([]int(nil), d.Y...)
	out.X = make([][]float64, len(d.X))
	for i, x := range d.X {
		out.X[i] = append([]float64(nil), x...)
	}
	return out
}
