package engine

import (
	"encoding/json"
	"fmt"
	"testing"

	"github.com/easeml/ci/internal/interval"
	"github.com/easeml/ci/internal/labeling"
	"github.com/easeml/ci/internal/notify"
	"github.com/easeml/ci/internal/script"
)

// journalTrace records journal callbacks as printable events.
type journalTrace struct {
	events []string
	fail   bool
}

func (j *journalTrace) JournalReveal(n int) error {
	if j.fail {
		return fmt.Errorf("journal down")
	}
	j.events = append(j.events, fmt.Sprintf("reveal:%d", n))
	return nil
}

func (j *journalTrace) JournalCharge(n int) error {
	if j.fail {
		return fmt.Errorf("journal down")
	}
	j.events = append(j.events, fmt.Sprintf("charge:%d", n))
	return nil
}

func (j *journalTrace) JournalPromote(m string) error {
	if j.fail {
		return fmt.Errorf("journal down")
	}
	j.events = append(j.events, "promote:"+m)
	return nil
}

func (j *journalTrace) JournalLooks(looks, saved int, early bool) error {
	if j.fail {
		return fmt.Errorf("journal down")
	}
	j.events = append(j.events, fmt.Sprintf("looks:%d/%d/%v", looks, saved, early))
	return nil
}

// TestSnapshotRestoreRoundTrip snapshots a mid-flight engine, pushes the
// snapshot through a JSON round trip (the durable on-disk form), restores
// it, and drives both engines through identical further commits. Every
// observable — histories, ledgers, revealed counts, baselines — must be
// byte-identical between the survivor and the restored engine.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for _, kind := range []script.AdaptivityKind{script.AdaptivityFull, script.AdaptivityNone, script.AdaptivityFirstChange} {
		t.Run(fmt.Sprint(kind), func(t *testing.T) {
			ds := indexDataset(400, 4)
			cfg := mustConfig(t, "n - o > -0.02 +/- 0.1", 0.95, interval.FPFree,
				script.Adaptivity{Kind: kind, Email: "3rd@party"}, 6)
			newEng := func() *Engine {
				e, err := New(cfg, ds, labeling.NewTruthOracle(ds.Y), Options{
					InitialModel: simModel(t, "h0", ds, 0.6, 1),
					Notifier:     notify.Discard{},
				})
				if err != nil {
					t.Fatal(err)
				}
				return e
			}
			live := newEng()
			for i := 0; i < 3; i++ {
				acc := 0.55 + 0.05*float64(i%3)
				if _, err := live.Commit(simModel(t, fmt.Sprintf("m%d", i), ds, acc, int64(i+2)), "dev", "msg"); err != nil {
					t.Fatal(err)
				}
			}

			blob, err := json.Marshal(live.Snapshot())
			if err != nil {
				t.Fatal(err)
			}
			var st State
			if err := json.Unmarshal(blob, &st); err != nil {
				t.Fatal(err)
			}
			restored, err := Restore(cfg, st, Options{Notifier: notify.Discard{}})
			if err != nil {
				t.Fatal(err)
			}

			// Same further traffic on both engines.
			for i := 3; i < 6; i++ {
				m := simModel(t, fmt.Sprintf("m%d", i), ds, 0.7, int64(i+2))
				rLive, errLive := live.Commit(m, "dev", "msg")
				rRest, errRest := restored.Commit(m, "dev", "msg")
				if (errLive == nil) != (errRest == nil) {
					t.Fatalf("commit %d: live err %v, restored err %v", i, errLive, errRest)
				}
				if errLive != nil {
					if errLive.Error() != errRest.Error() {
						t.Fatalf("commit %d errors diverge: %v vs %v", i, errLive, errRest)
					}
					break
				}
				a, _ := json.Marshal(rLive)
				b, _ := json.Marshal(rRest)
				if string(a) != string(b) {
					t.Fatalf("commit %d results diverge:\n%s\n%s", i, a, b)
				}
			}

			ha, _ := json.Marshal(live.History())
			hb, _ := json.Marshal(restored.History())
			if string(ha) != string(hb) {
				t.Fatalf("histories diverge:\n%s\n%s", ha, hb)
			}
			if a, b := live.LabelCost().Total(), restored.LabelCost().Total(); a != b {
				t.Fatalf("label totals diverge: %d vs %d", a, b)
			}
			if a, b := live.Testsets().Current().RevealedCount(), restored.Testsets().Current().RevealedCount(); a != b {
				t.Fatalf("revealed counts diverge: %d vs %d", a, b)
			}
			if a, b := live.ActiveModelName(), restored.ActiveModelName(); a != b {
				t.Fatalf("baselines diverge: %q vs %q", a, b)
			}
			if a, b := live.Testsets().Used(), restored.Testsets().Used(); a != b {
				t.Fatalf("budget used diverges: %d vs %d", a, b)
			}
		})
	}
}

// TestSnapshotIsDetached mutating the live engine after Snapshot must not
// leak into the captured state.
func TestSnapshotIsDetached(t *testing.T) {
	ds := indexDataset(400, 3)
	cfg := mustConfig(t, "d < 0.5 +/- 0.1", 0.95, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityFull}, 5)
	eng, err := New(cfg, ds, labeling.NewTruthOracle(ds.Y), Options{
		InitialModel: simModel(t, "h0", ds, 0.6, 1),
		Notifier:     notify.Discard{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Commit(simModel(t, "m0", ds, 0.62, 2), "dev", "a"); err != nil {
		t.Fatal(err)
	}
	st := eng.Snapshot()
	before, _ := json.Marshal(st)
	if _, err := eng.Commit(simModel(t, "m1", ds, 0.64, 3), "dev", "b"); err != nil {
		t.Fatal(err)
	}
	after, _ := json.Marshal(st)
	if string(before) != string(after) {
		t.Fatal("snapshot changed when the live engine advanced")
	}
	if len(st.History) != 1 || len(eng.History()) != 2 {
		t.Fatalf("history lengths: snapshot %d live %d", len(st.History), len(eng.History()))
	}
}

// TestJournalSequence checks the callback order and that a journal error
// aborts the commit before it reaches history. Early decision is disabled
// so the reveal counts are the static plan's deterministic full-testset
// numbers (the early-mode journal is covered separately below).
func TestJournalSequence(t *testing.T) {
	ds := indexDataset(600, 3)
	cfg := mustConfig(t, "n > 0.5 +/- 0.08", 0.95, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityFull}, 5)
	eng, err := New(cfg, ds, labeling.NewTruthOracle(ds.Y), Options{
		InitialModel:  simModel(t, "h0", ds, 0.5, 1),
		Notifier:      notify.Discard{},
		EarlyDecision: EarlyDecision{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := &journalTrace{}
	eng.SetJournal(tr)

	if _, err := eng.Commit(simModel(t, "good", ds, 0.9, 2), "dev", "pass"); err != nil {
		t.Fatal(err)
	}
	n := ds.Len()
	want := fmt.Sprintf("[reveal:%d charge:%d promote:good]", n, n)
	if got := fmt.Sprint(tr.events); got != want {
		t.Fatalf("journal events = %v, want %v", got, want)
	}

	// Second commit reveals nothing fresh: charge:0, no reveal event.
	tr.events = nil
	if _, err := eng.Commit(simModel(t, "bad", ds, 0.2, 3), "dev", "fail"); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(tr.events); got != "[charge:0]" {
		t.Fatalf("journal events = %v, want [charge:0]", got)
	}

	tr.fail = true
	if _, err := eng.Commit(simModel(t, "m2", ds, 0.9, 4), "dev", "x"); err == nil {
		t.Fatal("commit with failing journal succeeded")
	}
	if len(eng.History()) != 2 {
		t.Fatalf("aborted commit reached history: %d entries", len(eng.History()))
	}
}

// TestJournalSequenceEarly checks that with early decision on (the
// default), every commit journals its look decision before the reveal it
// explains, with numbers matching the returned result — the audit stream
// durable replay cross-checks label charges against.
func TestJournalSequenceEarly(t *testing.T) {
	ds := indexDataset(600, 3)
	cfg := mustConfig(t, "n > 0.5 +/- 0.08", 0.95, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityFull}, 5)
	eng, err := New(cfg, ds, labeling.NewTruthOracle(ds.Y), Options{
		InitialModel: simModel(t, "h0", ds, 0.5, 1),
		Notifier:     notify.Discard{},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := &journalTrace{}
	eng.SetJournal(tr)

	res, err := eng.Commit(simModel(t, "good", ds, 0.9, 2), "dev", "pass")
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("looks:%d/%d/%v", res.Looks, res.LabelsSaved, res.EarlyExit)
	if len(tr.events) == 0 || tr.events[0] != want {
		t.Fatalf("journal events = %v, want first event %q", tr.events, want)
	}
	if res.FreshLabels > 0 {
		if got := fmt.Sprintf("reveal:%d", res.FreshLabels); len(tr.events) < 2 || tr.events[1] != got {
			t.Fatalf("journal events = %v, want second event %q", tr.events, got)
		}
	}
	if got := fmt.Sprintf("charge:%d", res.FreshLabels); tr.events[len(tr.events)-2] != got {
		t.Fatalf("journal events = %v, want charge event %q", tr.events, got)
	}
	if tr.events[len(tr.events)-1] != "promote:good" {
		t.Fatalf("journal events = %v, want trailing promote", tr.events)
	}
}
