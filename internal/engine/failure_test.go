package engine

import (
	"fmt"
	"testing"

	"github.com/easeml/ci/internal/interval"
	"github.com/easeml/ci/internal/labeling"
	"github.com/easeml/ci/internal/model"
	"github.com/easeml/ci/internal/script"
)

// failingOracle errors after a fixed number of labels: the labeling team
// walked away mid-testset.
type failingOracle struct {
	inner   labeling.Oracle
	granted int
	limit   int
}

func (o *failingOracle) Label(i int) (int, error) {
	if o.granted >= o.limit {
		return 0, fmt.Errorf("labeling team unavailable after %d labels", o.limit)
	}
	o.granted++
	return o.inner.Label(i)
}

// badPredictor emits an out-of-range class.
type badPredictor struct{}

func (badPredictor) Name() string            { return "bad" }
func (badPredictor) Predict(x []float64) int { return 99 }

func TestEngineSurfacesOracleFailure(t *testing.T) {
	ds := indexDataset(600, 4)
	cfg := mustConfig(t, "n > 0.6 +/- 0.1", 0.99, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityFull}, 3)
	oracle := &failingOracle{inner: labeling.NewTruthOracle(ds.Y), limit: 100}
	eng, err := New(cfg, ds, oracle, Options{
		InitialModel: simModel(t, "h0", ds, 0.5, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Commit(simModel(t, "m", ds, 0.9, 2), "dev", "x"); err == nil {
		t.Fatal("oracle failure must abort the commit")
	}
	// The failed evaluation must not have consumed testset budget: the
	// statistical guarantee was never delivered.
	if eng.Testsets().Remaining() != 3 {
		t.Errorf("failed commit consumed budget: remaining = %d", eng.Testsets().Remaining())
	}
	if eng.Repository().Len() != 0 {
		t.Error("failed commit must not enter the repository")
	}
}

func TestEngineRejectsOutOfRangePredictions(t *testing.T) {
	ds := indexDataset(600, 4)
	cfg := mustConfig(t, "n > 0.6 +/- 0.1", 0.99, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityFull}, 3)
	eng, err := New(cfg, ds, labeling.NewTruthOracle(ds.Y), Options{
		InitialModel: simModel(t, "h0", ds, 0.5, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Commit(badPredictor{}, "dev", "broken build"); err == nil {
		t.Fatal("out-of-range predictions must abort the commit")
	}
	if eng.Testsets().Remaining() != 3 {
		t.Error("broken commit consumed budget")
	}
	// The engine keeps working after the broken commit.
	if _, err := eng.Commit(simModel(t, "ok", ds, 0.9, 2), "dev", "fixed"); err != nil {
		t.Fatalf("engine wedged after broken commit: %v", err)
	}
}

func TestEngineRejectsBadInitialModel(t *testing.T) {
	ds := indexDataset(600, 4)
	cfg := mustConfig(t, "n > 0.6 +/- 0.1", 0.99, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityFull}, 3)
	if _, err := New(cfg, ds, labeling.NewTruthOracle(ds.Y), Options{
		InitialModel: badPredictor{},
	}); err == nil {
		t.Fatal("out-of-range initial model must fail construction")
	}
}

func TestModelPredictAllRangeValidation(t *testing.T) {
	ds := indexDataset(10, 4)
	if _, err := model.PredictAll(badPredictor{}, ds); err == nil {
		t.Error("PredictAll must reject out-of-range predictions")
	}
}
