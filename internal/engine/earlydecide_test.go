package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/easeml/ci/internal/interval"
	"github.com/easeml/ci/internal/labeling"
	"github.com/easeml/ci/internal/model"
	"github.com/easeml/ci/internal/script"
)

// The early-decision sequential evaluation must be an observational no-op
// on everything except label cost: verdicts, signals, promotions, commit
// hashes, alarms, and rotation points are byte-identical to the static
// full-reveal plan, while the labels charged per commit never exceed the
// static plan's cumulative spend. These property tests drive an engine
// quartet — {early, static} x {packed, scalar} — through identical commit
// sequences and assert exactly that.

// stripCost zeroes the fields that legitimately differ between an early
// and a static engine: label accounting and the point estimates (a forced
// verdict is measured on a prefix of the testset, so n/o estimates are
// computed over fewer examples).
func stripCost(r Result) Result {
	r.Estimates = nil
	r.FreshLabels = 0
	r.Looks = 0
	r.EarlyExit = false
	r.LabelsSaved = 0
	return r
}

// engineQuartet builds {early, static} x {packed, scalar} engines over the
// same dataset, condition, and initial model. seqDelta > 0 additionally
// arms the anytime-valid sequential bound on the early pair.
func engineQuartet(t *testing.T, cond string, rel float64, steps int, labels, h0Preds []int, classes int, seqDelta float64) (earlyPacked, earlyScalar, staticPacked, staticScalar *Engine) {
	t.Helper()
	cfg := mustConfig(t, cond, rel, interval.FPFree, script.Adaptivity{Kind: script.AdaptivityFull}, steps)
	h0 := model.NewFixedPredictions("h0", h0Preds)
	build := func(disable, scalarEval bool) *Engine {
		ds := fixedDataset(labels, classes)
		eng, err := New(cfg, ds, labeling.NewTruthOracle(ds.Y), Options{
			InitialModel: h0,
			ScalarEval:   scalarEval,
			EarlyDecision: EarlyDecision{
				Disable:         disable,
				SequentialDelta: seqDelta,
			},
		})
		if err != nil {
			t.Fatalf("New(disable=%v scalar=%v): %v", disable, scalarEval, err)
		}
		return eng
	}
	return build(false, false), build(false, true), build(true, false), build(true, true)
}

// TestEarlyVsStaticEquivalence is the headline property of this change:
// over random commit streams (clear passes, clear fails, near-threshold
// candidates) with mid-stream rotations, the early-decision engines
// produce the same verdict stream as the static engines, the packed and
// scalar early paths agree bit for bit with each other, and the early
// engines' cumulative label spend never exceeds the static plan's.
func TestEarlyVsStaticEquivalence(t *testing.T) {
	type scenario struct {
		name     string
		cond     string
		rel      float64
		n        int
		seqDelta float64
	}
	scenarios := []scenario{
		{"baseline", "n > 0.6 +/- 0.1", 0.99, 600, 0},
		{"baseline-word-boundary", "n - 1.1 * o > -0.5 +/- 0.45", 0.6, 127, 0},
		{"baseline-sequential", "n > 0.6 +/- 0.1", 0.99, 600, 0.05},
		{"active", "d < 0.9 +/- 0.4 /\\ n - o > -0.5 +/- 0.45", 0.6, 640, 0},
		{"active-tight", "d < 0.45 +/- 0.02 /\\ n - o > 0.01 +/- 0.04", 0.95, 3400, 0},
		{"active-sequential", "d < 0.9 +/- 0.4 /\\ n - o > -0.5 +/- 0.45", 0.6, 640, 0.1},
	}
	const classes = 4
	rng := rand.New(rand.NewSource(41))
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			labels := make([]int, sc.n)
			for i := range labels {
				labels[i] = rng.Intn(classes)
			}
			h0, err := model.SimulatedPredictions(labels, classes, 0.75, rng.Int63())
			if err != nil {
				t.Fatal(err)
			}
			eP, eS, sP, sS := engineQuartet(t, sc.cond, sc.rel, 2, labels, h0, classes, sc.seqDelta)
			engines := []*Engine{eP, eS, sP, sS}

			cumEarly, cumStatic := 0, 0
			for commit := 0; commit < 12; commit++ {
				acc := []float64{0.95, 0.4, 0.74, 0.76}[commit%4]
				preds, err := model.SimulatedPredictions(labels, classes, acc, rng.Int63())
				if err != nil {
					t.Fatal(err)
				}
				m := model.NewFixedPredictions(fmt.Sprintf("m%d", commit), preds)
				results := make([]Result, len(engines))
				errs := make([]error, len(engines))
				for i, eng := range engines {
					results[i], errs[i] = eng.Commit(m, "dev", fmt.Sprintf("c%d", commit))
				}
				for i := 1; i < len(errs); i++ {
					if (errs[0] == nil) != (errs[i] == nil) {
						t.Fatalf("commit %d: error divergence: %v vs %v", commit, errs[0], errs[i])
					}
				}
				if errs[0] != nil {
					if errs[0] != ErrNeedNewTestset {
						continue
					}
					// Budget exhausted on every engine at the same commit:
					// rotate all four identically and carry on.
					next := make([]int, sc.n)
					for i := range next {
						next[i] = rng.Intn(classes)
					}
					carryPreds, err := model.SimulatedPredictions(next, classes, 0.8, 7)
					if err != nil {
						t.Fatal(err)
					}
					carry := model.NewFixedPredictions("carry", carryPreds)
					for _, eng := range engines {
						nd := fixedDataset(next, classes)
						if err := eng.RotateTestset(nd, labeling.NewTruthOracle(nd.Y), carry); err != nil {
							t.Fatal(err)
						}
					}
					labels = next
					continue
				}

				// Packed and scalar must agree bit for bit within each mode.
				if !reflect.DeepEqual(results[0], results[1]) {
					t.Fatalf("commit %d: early packed vs scalar diverge:\n%+v\n%+v", commit, results[0], results[1])
				}
				if !reflect.DeepEqual(results[2], results[3]) {
					t.Fatalf("commit %d: static packed vs scalar diverge:\n%+v\n%+v", commit, results[2], results[3])
				}
				// Early vs static: identical modulo label accounting and
				// the (prefix-measured) point estimates.
				if got, want := stripCost(results[0]), stripCost(results[2]); !reflect.DeepEqual(got, want) {
					t.Fatalf("commit %d: early vs static verdicts diverge:\nearly:  %+v\nstatic: %+v", commit, got, want)
				}
				if results[2].EarlyExit || results[2].LabelsSaved != 0 || results[2].Looks != 0 {
					t.Fatalf("commit %d: static engine reported early-exit fields: %+v", commit, results[2])
				}
				if results[0].LabelsSaved < 0 {
					t.Fatalf("commit %d: negative savings: %+v", commit, results[0])
				}
				cumEarly += results[0].FreshLabels
				cumStatic += results[2].FreshLabels
				// The early engine's revealed set is always a subset of the
				// static engine's, so its cumulative spend can never lead.
				if cumEarly > cumStatic {
					t.Fatalf("commit %d: early spent %d labels, static only %d", commit, cumEarly, cumStatic)
				}
			}
			if a, b := eP.LabelCost().Total(), eS.LabelCost().Total(); a != b {
				t.Fatalf("early label totals diverge: packed=%d scalar=%d", a, b)
			}
			if eP.LabelCost().Total() > sP.LabelCost().Total() {
				t.Fatalf("early ledger %d exceeds static ledger %d",
					eP.LabelCost().Total(), sP.LabelCost().Total())
			}
			for _, eng := range engines[1:] {
				if eng.ActiveModelName() != eP.ActiveModelName() {
					t.Fatalf("promoted baselines diverge: %q vs %q",
						eP.ActiveModelName(), eng.ActiveModelName())
				}
			}
		})
	}
}

// TestEarlyExitLabelReduction pins the headline saving on a non-borderline
// workload: commits far from the threshold (clear passes, broken builds)
// must cost at least 30% fewer labels at the median than the static plan.
// Each commit runs on a fresh engine so every evaluation pays its own
// labels (the steady-state cost of re-evaluating an already-labeled
// testset is zero for both plans and would mask the effect).
func TestEarlyExitLabelReduction(t *testing.T) {
	const n, classes = 1200, 4
	rng := rand.New(rand.NewSource(59))
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(classes)
	}
	h0, err := model.SimulatedPredictions(labels, classes, 0.75, 3)
	if err != nil {
		t.Fatal(err)
	}
	var earlyCosts, staticCosts []int
	for commit := 0; commit < 10; commit++ {
		// Alternate clear passes and catastrophically broken candidates.
		acc := []float64{0.98, 0.05}[commit%2]
		preds, err := model.SimulatedPredictions(labels, classes, acc, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		m := model.NewFixedPredictions("m", preds)
		eP, _, sP, _ := engineQuartet(t, "n > 0.7 +/- 0.05", 0.99, 2, labels, h0, classes, 0)
		re, err := eP.Commit(m, "dev", "x")
		if err != nil {
			t.Fatal(err)
		}
		rs, err := sP.Commit(m, "dev", "x")
		if err != nil {
			t.Fatal(err)
		}
		if re.Truth != rs.Truth {
			t.Fatalf("commit %d: verdicts diverge: %v vs %v", commit, re.Truth, rs.Truth)
		}
		if !re.EarlyExit {
			t.Fatalf("commit %d (acc %.2f) should be forced early, spent %d labels", commit, acc, re.FreshLabels)
		}
		earlyCosts = append(earlyCosts, re.FreshLabels)
		staticCosts = append(staticCosts, rs.FreshLabels)
	}
	med := func(xs []int) float64 {
		s := append([]int(nil), xs...)
		sort.Ints(s)
		if len(s)%2 == 1 {
			return float64(s[len(s)/2])
		}
		return float64(s[len(s)/2-1]+s[len(s)/2]) / 2
	}
	e, s := med(earlyCosts), med(staticCosts)
	if e > 0.7*s {
		t.Fatalf("median labels/commit: early %.0f vs static %.0f — less than 30%% saved", e, s)
	}
}

// TestLedgerConservation is the bookkeeping property the savings counters
// hang off: at every point in an engine's life — across commits, early
// exits, and testset rotations — the ledger's total equals the sum of
// FreshLabels over history, and the per-commit ledger entries match the
// history entry for entry.
func TestLedgerConservation(t *testing.T) {
	scenarios := []struct {
		name string
		cond string
		rel  float64
		n    int
	}{
		{"baseline", "n > 0.6 +/- 0.1", 0.99, 600},
		{"active", "d < 0.9 +/- 0.4 /\\ n - o > -0.5 +/- 0.45", 0.6, 640},
	}
	const classes = 4
	rng := rand.New(rand.NewSource(71))
	check := func(t *testing.T, eng *Engine) {
		t.Helper()
		sum := 0
		for _, r := range eng.History() {
			sum += r.FreshLabels
		}
		if got := eng.LabelCost().Total(); got != sum {
			t.Fatalf("ledger total %d != sum of history FreshLabels %d", got, sum)
		}
		per := eng.LabelCost().PerCommit()
		hist := eng.History()
		if len(per) != len(hist) {
			t.Fatalf("per-commit entries %d != history %d", len(per), len(hist))
		}
		for i := range per {
			if per[i] != hist[i].FreshLabels {
				t.Fatalf("entry %d: ledger %d != history %d", i, per[i], hist[i].FreshLabels)
			}
		}
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			labels := make([]int, sc.n)
			for i := range labels {
				labels[i] = rng.Intn(classes)
			}
			h0, err := model.SimulatedPredictions(labels, classes, 0.75, 5)
			if err != nil {
				t.Fatal(err)
			}
			ds := fixedDataset(labels, classes)
			cfg := mustConfig(t, sc.cond, sc.rel, interval.FPFree,
				script.Adaptivity{Kind: script.AdaptivityFull}, 2)
			eng, err := New(cfg, ds, labeling.NewTruthOracle(ds.Y), Options{
				InitialModel: model.NewFixedPredictions("h0", h0),
			})
			if err != nil {
				t.Fatal(err)
			}
			for commit := 0; commit < 8; commit++ {
				acc := []float64{0.95, 0.4, 0.74}[commit%3]
				preds, err := model.SimulatedPredictions(labels, classes, acc, rng.Int63())
				if err != nil {
					t.Fatal(err)
				}
				_, err = eng.Commit(model.NewFixedPredictions(fmt.Sprintf("m%d", commit), preds), "dev", "x")
				if err == ErrNeedNewTestset {
					next := make([]int, sc.n)
					for i := range next {
						next[i] = rng.Intn(classes)
					}
					carryPreds, err := model.SimulatedPredictions(next, classes, 0.8, 9)
					if err != nil {
						t.Fatal(err)
					}
					nd := fixedDataset(next, classes)
					if err := eng.RotateTestset(nd, labeling.NewTruthOracle(nd.Y), model.NewFixedPredictions("carry", carryPreds)); err != nil {
						t.Fatal(err)
					}
					labels = next
					continue
				}
				if err != nil {
					t.Fatal(err)
				}
				check(t, eng)
			}
			// Conservation survives a snapshot/restore round trip.
			restored, err := Restore(eng.Config(), eng.Snapshot(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			check(t, restored)
		})
	}
}
