// Package engine is the continuous-integration loop of ease.ml/ci
// (Figure 1 of the paper): it accepts model commits, evaluates the script's
// condition on the managed testset at the planned reliability, routes the
// pass/fail signal according to the adaptivity mode, spends labeling budget
// through the oracle (actively, when a pattern plan allows it), fires the
// new-testset alarm, and promotes passing models to be the new baseline.
package engine

import (
	"fmt"

	"github.com/easeml/ci/internal/adaptivity"
	"github.com/easeml/ci/internal/condlang"
	"github.com/easeml/ci/internal/core"
	"github.com/easeml/ci/internal/data"
	"github.com/easeml/ci/internal/evaluator"
	"github.com/easeml/ci/internal/interval"
	"github.com/easeml/ci/internal/labeling"
	"github.com/easeml/ci/internal/model"
	"github.com/easeml/ci/internal/notify"
	"github.com/easeml/ci/internal/planner"
	"github.com/easeml/ci/internal/repository"
	"github.com/easeml/ci/internal/script"
	"github.com/easeml/ci/internal/testset"
)

// Result is the outcome of one commit's evaluation.
type Result struct {
	// Commit records the repository entry for the model.
	Commit repository.Commit
	// Step is the 1-based evaluation index on the current testset.
	Step int
	// Generation is the testset generation the commit was tested on.
	Generation int
	// Estimates holds the measured n/o/d point estimates that were
	// available (n and o are absent under active labeling).
	Estimates map[condlang.Var]float64
	// Truth is the three-valued evaluation of the condition.
	Truth interval.Truth
	// Pass is the true outcome after mode collapse.
	Pass bool
	// Signal is what the developer sees. In the non-adaptive mode every
	// commit signals accepted; the truth goes to the third-party address.
	Signal bool
	// Promoted reports whether the model became the new baseline.
	Promoted bool
	// NeedNewTestset mirrors the ledger alarm.
	NeedNewTestset bool
	// FreshLabels is the number of new oracle labels paid for by this
	// commit.
	FreshLabels int
	// Looks is how many reveal chunks the sequential evaluation took
	// (0 when the verdict was forced before any reveal, or when early
	// decision is disabled).
	Looks int
	// EarlyExit reports that the evaluation stopped before the static
	// plan's full reveal because the verdict was already forced.
	EarlyExit bool
	// LabelsSaved is how many labels the static plan would have revealed
	// for this commit beyond what the sequential evaluation paid.
	LabelsSaved int
}

// Engine drives the CI loop for one script.
type Engine struct {
	cfg         *script.Config
	plan        *core.Plan
	plannerOpts core.Options
	tsm         *testset.Manager
	oracle      labeling.Oracle
	batch       labeling.BatchOracle
	costs       *labeling.Ledger
	notifier    notify.Notifier
	repo        *repository.Store

	// scalarEval routes measurement through the element-wise reference
	// implementation instead of the packed bitmap core; see
	// Options.ScalarEval.
	scalarEval bool
	// compiled is the script condition with every clause pre-linearized,
	// so per-commit evaluation does not re-derive (and re-allocate) the
	// linear forms.
	compiled evaluator.CompiledFormula
	// early is the sequential early-exit configuration, defaults applied.
	early EarlyDecision

	// active holds the current baseline ("old") model's predictions on the
	// current testset.
	active     []int
	activeName string

	// Packed measurement state. labels mirrors the testset's revealed
	// labels (-1 where unrevealed); activeMatch is the baseline's packed
	// correctness column over the revealed subset, maintained
	// incrementally on reveal/promotion and rebuilt on rotation; predBuf,
	// diff, and newMatch are per-commit scratch reused across commits so
	// steady-state evaluation allocates nothing. estVals is the reusable
	// estimates map behind compiled-formula evaluation.
	predBuf     []int
	labels      []int
	diff        evaluator.Bitmap
	newMatch    evaluator.Bitmap
	activeMatch evaluator.Bitmap
	estVals     map[condlang.Var]float64
	// Narrow-column mirrors, used when the label alphabet fits a byte
	// (the overwhelmingly common case): active8 mirrors active and
	// labels8 mirrors labels with 255 as the unrevealed sentinel, so the
	// fused pass streams 1/8th the bytes per engine-owned column.
	byteCols bool
	active8  []uint8
	labels8  []uint8

	// evalReveals records the testset indices freshly revealed by the
	// evaluation in flight. On any evaluation error the engine rolls
	// every one of them back (testset marks, label columns, correctness
	// bits), so a failed commit — a remote oracle outage at look 3 of 5,
	// say — leaves the revealed set exactly as it found it and the
	// eventual re-run is byte-identical to a run that never failed.
	evalReveals []int

	history []Result

	// journal, when set, receives the durable side effects of each
	// commit as it is applied; see SetJournal.
	journal Journal
}

// Options configures engine construction.
type Options struct {
	// Planner tunes the core planner.
	Planner core.Options
	// InitialModel is H0, the deployed baseline the first commit is
	// compared against.
	InitialModel model.Predictor
	// Notifier receives third-party results and alarms; defaults to an
	// in-memory outbox when nil.
	Notifier notify.Notifier
	// ScalarEval forces the element-wise scalar measurement path (per-
	// example label reveals, int-slice walks) instead of the packed
	// bitmap core. The scalar path is the equivalence oracle and ablation
	// baseline — same role the retired grid search plays for the
	// worst-case sweep; production engines leave this false.
	ScalarEval bool
	// EarlyDecision tunes (or disables) the sequential early-exit
	// evaluation loop; the zero value is the production default.
	EarlyDecision EarlyDecision
}

// New builds an engine for a validated script over the given first testset.
// The oracle answers label queries against that testset's examples.
func New(cfg *script.Config, first *data.Dataset, oracle labeling.Oracle, opts Options) (*Engine, error) {
	if cfg == nil {
		return nil, fmt.Errorf("engine: nil config")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if oracle == nil {
		return nil, fmt.Errorf("engine: nil oracle")
	}
	if opts.InitialModel == nil {
		return nil, fmt.Errorf("engine: an initial (old) model is required")
	}
	plan, err := planner.Default.PlanForConfig(cfg, opts.Planner)
	if err != nil {
		return nil, err
	}
	if plan.LabeledN > 0 && first.Len() < plan.LabeledN {
		return nil, fmt.Errorf("engine: testset has %d examples but the plan requires %d", first.Len(), plan.LabeledN)
	}
	kind, err := adaptivity.FromScript(cfg.Adaptivity.Kind)
	if err != nil {
		return nil, err
	}
	tsm, err := testset.NewManager(kind, cfg.Steps, first)
	if err != nil {
		return nil, err
	}
	notifier := opts.Notifier
	if notifier == nil {
		notifier = notify.NewOutbox()
	}
	compiled, err := evaluator.Compile(cfg.Condition)
	if err != nil {
		return nil, err
	}
	if err := opts.EarlyDecision.validate(); err != nil {
		return nil, err
	}
	eng := &Engine{
		cfg:         cfg,
		plan:        plan,
		plannerOpts: opts.Planner,
		tsm:         tsm,
		oracle:      oracle,
		batch:       labeling.AsBatch(oracle),
		costs:       &labeling.Ledger{},
		notifier:    notifier,
		repo:        repository.NewStore(),
		scalarEval:  opts.ScalarEval,
		compiled:    compiled,
		early:       opts.EarlyDecision.withDefaults(),
		estVals:     make(map[condlang.Var]float64, 3),
	}
	if err := eng.setActive(opts.InitialModel); err != nil {
		return nil, err
	}
	return eng, nil
}

// Plan exposes the labeling plan the engine runs under.
func (e *Engine) Plan() *core.Plan { return e.plan }

// PlannerOptions exposes the planner options that plan was computed with,
// so a serving layer can answer plan queries consistently with the plan
// the engine actually enforces.
func (e *Engine) PlannerOptions() core.Options { return e.plannerOpts }

// Config exposes the script configuration.
func (e *Engine) Config() *script.Config { return e.cfg }

// Testsets exposes the testset manager.
func (e *Engine) Testsets() *testset.Manager { return e.tsm }

// Repository exposes the commit store.
func (e *Engine) Repository() *repository.Store { return e.repo }

// History returns all evaluation results so far.
func (e *Engine) History() []Result {
	out := make([]Result, len(e.history))
	copy(out, e.history)
	return out
}

// LabelCost returns the cumulative labeling ledger.
func (e *Engine) LabelCost() *labeling.Ledger { return e.costs }

// ActiveModelName returns the name of the current baseline model.
func (e *Engine) ActiveModelName() string { return e.activeName }

// setActive computes and installs the baseline predictions for the current
// testset, then rebuilds the packed measurement state (the label scratch
// column and the baseline's correctness bitmap) against it. The testset
// was validated when it was installed, so the buffered predict path is
// safe here.
func (e *Engine) setActive(p model.Predictor) error {
	preds, err := model.PredictAllInto(p, e.tsm.Current().Data, e.active)
	if err != nil {
		return err
	}
	e.active = preds
	e.activeName = p.Name()
	e.syncPackedState()
	return nil
}

// syncPackedState resizes the per-commit scratch to the current testset
// and rebuilds the label scratch column (revealed label or -1) and the
// baseline correctness bitmap from the testset's revealed bookkeeping.
// Called on construction and rotation; the commit paths afterwards keep
// the state consistent incrementally.
func (e *Engine) syncPackedState() {
	ts := e.tsm.Current()
	n := ts.Len()
	if cap(e.predBuf) < n {
		e.predBuf = make([]int, n)
	} else {
		e.predBuf = e.predBuf[:n]
	}
	if cap(e.labels) < n {
		e.labels = make([]int, n)
	} else {
		e.labels = e.labels[:n]
	}
	switch ts.RevealedCount() {
	case 0:
		for i := range e.labels {
			e.labels[i] = -1
		}
	case n:
		copy(e.labels, ts.Data.Y)
	default:
		for i := range e.labels {
			if ts.Revealed(i) {
				e.labels[i] = ts.Data.Y[i]
			} else {
				e.labels[i] = -1
			}
		}
	}
	evaluator.MatchBitmap(e.active, e.labels, &e.activeMatch)
	e.diff.Reset(n)
	e.newMatch.Reset(n)

	// Byte mirrors: only when every class id (and the 255 sentinel) fits.
	e.byteCols = ts.Data.Classes <= 255
	if e.byteCols {
		if cap(e.active8) < n {
			e.active8 = make([]uint8, n)
			e.labels8 = make([]uint8, n)
		} else {
			e.active8 = e.active8[:n]
			e.labels8 = e.labels8[:n]
		}
		e.syncByteCols()
	}
}

// syncByteCols rebuilds both narrow mirrors from the wide columns.
func (e *Engine) syncByteCols() {
	for i, y := range e.active {
		e.active8[i] = uint8(y)
	}
	copyLabelBytes(e.labels8, e.labels)
}

// copyLabelBytes narrows a revealed-label column (-1 = unrevealed) into
// bytes with the 255 sentinel.
func copyLabelBytes(dst []uint8, labels []int) {
	for i, y := range labels {
		if y < 0 {
			dst[i] = 255
		} else {
			dst[i] = uint8(y)
		}
	}
}
