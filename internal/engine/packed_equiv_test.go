package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/easeml/ci/internal/condlang"
	"github.com/easeml/ci/internal/data"
	"github.com/easeml/ci/internal/interval"
	"github.com/easeml/ci/internal/labeling"
	"github.com/easeml/ci/internal/model"
	"github.com/easeml/ci/internal/script"
)

// The packed bitmap measurement core must be observationally identical to
// the element-wise scalar reference it replaced (Options.ScalarEval).
// These tests drive engine pairs — one packed, one scalar — through
// identical commit sequences and assert the full Result streams match:
// estimates, three-valued truths, verdicts, promotion, label accounting,
// and commit hashes.

// enginePair builds a packed and a scalar engine over the same dataset,
// script, and initial model.
func enginePair(t *testing.T, cond string, rel float64, steps int, ds, h0Preds []int, classes int) (packed, scalar *Engine) {
	t.Helper()
	dataset := fixedDataset(ds, classes)
	cfg := mustConfig(t, cond, rel, interval.FPFree, script.Adaptivity{Kind: script.AdaptivityFull}, steps)
	h0 := model.NewFixedPredictions("h0", h0Preds)
	var engines []*Engine
	for _, scalarEval := range []bool{false, true} {
		eng, err := New(cfg, dataset, labeling.NewTruthOracle(dataset.Y), Options{
			InitialModel: h0,
			ScalarEval:   scalarEval,
		})
		if err != nil {
			t.Fatalf("New(scalar=%v): %v", scalarEval, err)
		}
		engines = append(engines, eng)
	}
	return engines[0], engines[1]
}

// fixedDataset wraps a label vector as an index-featured dataset.
func fixedDataset(labels []int, classes int) *data.Dataset {
	ds := &data.Dataset{Name: "equiv", Classes: classes}
	for i, y := range labels {
		ds.X = append(ds.X, []float64{float64(i)})
		ds.Y = append(ds.Y, y)
	}
	return ds
}

// compareResults asserts two results are identical in every field.
func compareResults(t *testing.T, tag string, packed, scalar Result) {
	t.Helper()
	if !reflect.DeepEqual(packed, scalar) {
		t.Fatalf("%s: results diverge:\npacked: %+v\nscalar: %+v", tag, packed, scalar)
	}
}

// TestEnginePackedVsScalarVerdicts is the engine half of the
// TestMeasurePackedVsScalar property: random candidate streams (passing,
// failing, and near-threshold models; random label vectors; word-boundary
// testset sizes 63/64/65 up to 2000) through fully-labeled and
// active-labeling plans produce byte-identical Result streams on the
// packed and scalar paths, including FreshLabels and the label ledger.
func TestEnginePackedVsScalarVerdicts(t *testing.T) {
	type scenario struct {
		cond  string
		rel   float64
		steps int
		sizes []int
	}
	scenarios := []scenario{
		// Fully-labeled baseline plan, lenient enough for word-boundary
		// testset sizes (LabeledN = 33 at rel 0.6, steps 2).
		{"n - 1.1 * o > -0.5 +/- 0.45", 0.6, 2, []int{63, 64, 65, 127}},
		// Active labeling (pattern 1), same boundary sizes (LabeledN = 38).
		{"d < 0.9 +/- 0.4 /\\ n - o > -0.5 +/- 0.45", 0.6, 2, []int{63, 64, 65, 127}},
		// Realistic reliabilities at realistic sizes.
		{"n - 1.1 * o > -0.1 +/- 0.1", 0.99, 2, []int{2000}},
		{"d < 0.12 +/- 0.01 /\\ n - o > 0.01 +/- 0.03", 0.99, 2, []int{2200}},
	}
	rng := rand.New(rand.NewSource(17))
	const classes = 4
	for _, sc := range scenarios {
		for _, n := range sc.sizes {
			t.Run(fmt.Sprintf("%s/n=%d", sc.cond, n), func(t *testing.T) {
				labels := make([]int, n)
				for i := range labels {
					labels[i] = rng.Intn(classes)
				}
				h0, err := model.SimulatedPredictions(labels, classes, 0.75, rng.Int63())
				if err != nil {
					t.Fatal(err)
				}
				packed, scalar := enginePair(t, sc.cond, sc.rel, sc.steps, labels, h0, classes)

				for commit := 0; commit < 12; commit++ {
					// Mix clear passes, clear fails, and near-threshold
					// candidates so Unknown truths appear too.
					acc := []float64{0.95, 0.4, 0.74, 0.76}[commit%4]
					preds, err := model.SimulatedPredictions(labels, classes, acc, rng.Int63())
					if err != nil {
						t.Fatal(err)
					}
					m := model.NewFixedPredictions(fmt.Sprintf("m%d", commit), preds)
					author, msg := "dev", fmt.Sprintf("c%d", commit)
					pr, pErr := packed.Commit(m, author, msg)
					sr, sErr := scalar.Commit(m, author, msg)
					if (pErr == nil) != (sErr == nil) {
						t.Fatalf("commit %d: error divergence: packed=%v scalar=%v", commit, pErr, sErr)
					}
					if pErr != nil {
						if pErr.Error() != sErr.Error() {
							t.Fatalf("commit %d: error text divergence: %v vs %v", commit, pErr, sErr)
						}
						if pErr == ErrNeedNewTestset {
							// Rotate both engines identically and go on.
							next := make([]int, n)
							for i := range next {
								next[i] = rng.Intn(classes)
							}
							carryPreds, err := model.SimulatedPredictions(next, classes, 0.8, 99)
							if err != nil {
								t.Fatal(err)
							}
							carry := model.NewFixedPredictions("carry", carryPreds)
							for _, eng := range []*Engine{packed, scalar} {
								nd := fixedDataset(next, classes)
								if err := eng.RotateTestset(nd, labeling.NewTruthOracle(nd.Y), carry); err != nil {
									t.Fatal(err)
								}
							}
							labels = next
						}
						continue
					}
					compareResults(t, fmt.Sprintf("commit %d", commit), pr, sr)
				}
				if got, want := packed.LabelCost().Total(), scalar.LabelCost().Total(); got != want {
					t.Fatalf("label totals diverge: packed=%d scalar=%d", got, want)
				}
				if !reflect.DeepEqual(packed.LabelCost().PerCommit(), scalar.LabelCost().PerCommit()) {
					t.Fatal("per-commit label charges diverge")
				}
				if packed.ActiveModelName() != scalar.ActiveModelName() {
					t.Fatalf("promoted baselines diverge: %q vs %q",
						packed.ActiveModelName(), scalar.ActiveModelName())
				}
			})
		}
	}
}

// TestEnginePackedVsScalarAcrossRotations checks the incremental packed
// state (label scratch, baseline correctness bitmap) survives rotation —
// the state must be rebuilt per generation exactly as the scalar path
// re-derives it from scratch.
func TestEnginePackedVsScalarAcrossRotations(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n, classes = 640, 4
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(classes)
	}
	h0, err := model.SimulatedPredictions(labels, classes, 0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	packed, scalar := enginePair(t, "d < 0.9 +/- 0.4 /\\ n - o > -0.5 +/- 0.45", 0.6, 2, labels, h0, classes)

	for gen := 0; gen < 3; gen++ {
		for c := 0; c < 2; c++ {
			acc := []float64{0.9, 0.5}[c]
			preds, err := model.SimulatedPredictions(labels, classes, acc, rng.Int63())
			if err != nil {
				t.Fatal(err)
			}
			m := model.NewFixedPredictions(fmt.Sprintf("g%dc%d", gen, c), preds)
			pr, pErr := packed.Commit(m, "dev", "x")
			sr, sErr := scalar.Commit(m, "dev", "x")
			if pErr != nil || sErr != nil {
				t.Fatalf("gen %d commit %d: packed=%v scalar=%v", gen, c, pErr, sErr)
			}
			compareResults(t, fmt.Sprintf("gen %d commit %d", gen, c), pr, sr)
		}
		next := make([]int, n)
		for i := range next {
			next[i] = rng.Intn(classes)
		}
		carryPreds, err := model.SimulatedPredictions(next, classes, 0.8, int64(gen))
		if err != nil {
			t.Fatal(err)
		}
		carry := model.NewFixedPredictions("carry", carryPreds)
		for _, eng := range []*Engine{packed, scalar} {
			nd := fixedDataset(next, classes)
			if err := eng.RotateTestset(nd, labeling.NewTruthOracle(nd.Y), carry); err != nil {
				t.Fatal(err)
			}
		}
		labels = next
	}
}

// TestEvaluateDryRun: Evaluate measures without consuming budget,
// recording history, charging the ledger, or promoting — and its verdict
// matches what Commit then reports for the same candidate.
func TestEvaluateDryRun(t *testing.T) {
	ds := indexDataset(600, 4)
	cfg := mustConfig(t, "n > 0.6 +/- 0.1", 0.99, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityFull}, 3)
	eng, err := New(cfg, ds, labeling.NewTruthOracle(ds.Y), Options{
		InitialModel: simModel(t, "h0", ds, 0.5, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	m := simModel(t, "candidate", ds, 0.9, 2)
	ev, err := eng.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Pass || ev.Truth != interval.True {
		t.Errorf("dry run: %+v", ev)
	}
	if ev.FreshLabels+ev.LabelsSaved != ds.Len() {
		t.Errorf("labels %d + saved %d != %d", ev.FreshLabels, ev.LabelsSaved, ds.Len())
	}
	if ev.FreshLabels == 0 {
		t.Error("first evaluation must reveal some labels")
	}
	if !ev.HasAccuracy || ev.N < 0.8 {
		t.Errorf("accuracy estimates missing or wrong: %+v", ev)
	}
	// Nothing was recorded.
	if len(eng.History()) != 0 || eng.Repository().Len() != 0 {
		t.Error("dry run must not record history")
	}
	if eng.LabelCost().Total() != 0 {
		t.Error("dry run must not charge the ledger")
	}
	if got := eng.Testsets().Remaining(); got != 3 {
		t.Errorf("dry run consumed budget: remaining=%d", got)
	}
	if eng.ActiveModelName() != "h0" {
		t.Error("dry run must not promote")
	}
	// A second evaluation is steady-state: no fresh labels.
	ev2, err := eng.Evaluate(m)
	if err != nil {
		t.Fatal(err)
	}
	if ev2.FreshLabels != 0 {
		t.Errorf("steady-state evaluation revealed %d labels", ev2.FreshLabels)
	}
	// Commit agrees with the dry run.
	res, err := eng.Commit(m, "dev", "for real")
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass != ev.Pass || res.Truth != ev.Truth {
		t.Errorf("Commit diverges from Evaluate: %+v vs %+v", res, ev)
	}
	if res.Estimates[condlang.VarN] != ev.N {
		t.Errorf("estimate mismatch: %v vs %v", res.Estimates, ev.N)
	}
	if _, err := eng.Evaluate(nil); err == nil {
		t.Error("nil model should fail")
	}
}

// TestEvaluateZeroAllocSteadyState pins the tentpole's allocation goal in
// a unit test (the tracked benchmark asserts it at n=1e5): steady-state
// packed evaluation — labels all revealed, buffers warm — allocates
// nothing.
func TestEvaluateZeroAllocSteadyState(t *testing.T) {
	ds := indexDataset(4096, 4)
	cfg := mustConfig(t, "n - 1.1 * o > -0.5 +/- 0.2", 0.99, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityFull}, 16)
	eng, err := New(cfg, ds, labeling.NewTruthOracle(ds.Y), Options{
		InitialModel: simModel(t, "h0", ds, 0.8, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	m := simModel(t, "candidate", ds, 0.85, 2)
	if _, err := eng.Evaluate(m); err != nil { // warm-up: reveals labels
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := eng.Evaluate(m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Evaluate allocates %v per run, want 0", allocs)
	}
}

// TestEnginePackedVsScalarWideAlphabet covers the wide-column fused pass:
// a label alphabet too big for the byte mirrors (classes > 255) must take
// the []int path and still match the scalar reference exactly.
func TestEnginePackedVsScalarWideAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const n, classes = 300, 300
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(classes)
	}
	h0, err := model.SimulatedPredictions(labels, classes, 0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	packed, scalar := enginePair(t, "n - 1.1 * o > -0.5 +/- 0.45", 0.6, 8, labels, h0, classes)
	for c := 0; c < 6; c++ {
		acc := []float64{0.9, 0.5, 0.72}[c%3]
		preds, err := model.SimulatedPredictions(labels, classes, acc, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		m := model.NewFixedPredictions(fmt.Sprintf("m%d", c), preds)
		pr, pErr := packed.Commit(m, "dev", "x")
		sr, sErr := scalar.Commit(m, "dev", "x")
		if pErr != nil || sErr != nil {
			t.Fatalf("commit %d: packed=%v scalar=%v", c, pErr, sErr)
		}
		compareResults(t, fmt.Sprintf("commit %d", c), pr, sr)
	}
}
