package engine

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"github.com/easeml/ci/internal/data"
	"github.com/easeml/ci/internal/interval"
	"github.com/easeml/ci/internal/labeling"
	"github.com/easeml/ci/internal/notify"
	"github.com/easeml/ci/internal/resilience"
	"github.com/easeml/ci/internal/script"
)

// The chaos suite proves the tentpole guarantee at the engine layer: for
// ANY fault schedule that eventually succeeds, the verdict history, label
// ledger, and reveal state are byte-identical to the fault-free run. The
// resilient client retries inside a LabelBatch call; when it gives up
// (ErrUnavailable) the engine rolls the evaluation back and the commit is
// simply re-submitted — exactly what a parked queue job does on release.

// chaosTime is the injectable clock shared by the resilient client's
// Clock/Sleep and the fault oracle's latency injection.
type chaosTime struct{ t time.Time }

func (c *chaosTime) now() time.Time               { return c.t }
func (c *chaosTime) advance(d time.Duration)      { c.t = c.t.Add(d) }
func newChaosTime() *chaosTime                    { return &chaosTime{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)} }
func zeroJitter() float64                         { return 0 }
func chaosSleep(c *chaosTime) func(time.Duration) { return c.advance }

const chaosMaxAttempts = 3

// chaosRig is one engine wired through Resilient(FaultOracle(truth)).
type chaosRig struct {
	eng    *Engine
	faults *labeling.FaultOracle
	clock  *chaosTime
	ds     *data.Dataset
}

func newChaosRig(t *testing.T, scalar bool, schedule []labeling.Fault) *chaosRig {
	t.Helper()
	ds := indexDataset(600, 4)
	cfg := mustConfig(t, "n > 0.6 +/- 0.1", 0.99, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityFull}, 3)
	clock := newChaosTime()
	faults := labeling.NewFaultOracle(labeling.NewTruthOracle(ds.Y), schedule, clock.advance)
	oracle := labeling.NewResilient(faults, labeling.ResilientOptions{
		MaxAttempts: chaosMaxAttempts,
		Backoff:     time.Millisecond,
		Breaker:     resilience.BreakerOptions{FailureThreshold: 4, Cooldown: time.Second},
		Clock:       clock.now,
		Sleep:       chaosSleep(clock),
		Jitter:      zeroJitter,
	})
	eng, err := New(cfg, ds, oracle, Options{
		InitialModel: simModel(t, "h0", ds, 0.5, 1),
		Notifier:     notify.Discard{},
		ScalarEval:   scalar,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &chaosRig{eng: eng, faults: faults, clock: clock, ds: ds}
}

// commitUntilAccepted re-submits a commit for as long as the resilient
// client reports the provider unavailable — the engine-level equivalent
// of a parked job being released. Any other error is a test failure.
func (r *chaosRig) commitUntilAccepted(t *testing.T, name string, acc float64, seed int64) Result {
	t.Helper()
	m := simModel(t, name, r.ds, acc, seed)
	for attempt := 0; ; attempt++ {
		if attempt > 200 {
			t.Fatalf("commit %s: fault schedule never drained", name)
		}
		res, err := r.eng.Commit(m, "dev", "chaos")
		if err == nil {
			return res
		}
		if !errors.Is(err, labeling.ErrUnavailable) {
			t.Fatalf("commit %s: non-outage error %v", name, err)
		}
		// Wait out any provider hint (breaker cooldown, Retry-After)
		// before the release, like the server's park timer does.
		if d, ok := resilience.RetryAfterFromError(err); ok && d > 0 {
			r.clock.advance(d + time.Millisecond)
		} else {
			r.clock.advance(time.Second)
		}
	}
}

// runChaosScenario pushes the fixed three-commit traffic through the rig.
func runChaosScenario(t *testing.T, scalar bool, schedule []labeling.Fault) *chaosRig {
	t.Helper()
	r := newChaosRig(t, scalar, schedule)
	r.commitUntilAccepted(t, "m1", 0.9, 2)
	r.commitUntilAccepted(t, "m2", 0.55, 3)
	r.commitUntilAccepted(t, "m3", 0.92, 4)
	return r
}

// fingerprint captures everything the guarantee covers: verdict history,
// per-commit label charges, budget accounting, and the exact reveal set.
func fingerprint(t *testing.T, e *Engine) string {
	t.Helper()
	blob, err := json.Marshal(struct {
		History   []Result
		PerCommit []int
		Total     int
		Used      int
		Remaining int
		Revealed  []int
		Active    string
	}{
		History:   e.History(),
		PerCommit: e.LabelCost().PerCommit(),
		Total:     e.LabelCost().Total(),
		Used:      e.Testsets().Used(),
		Remaining: e.Testsets().Remaining(),
		Revealed:  e.Testsets().Current().RevealedIndices(),
		Active:    e.ActiveModelName(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// baseline runs the scenario with a direct in-process truth oracle — no
// remote client at all — and returns its fingerprint plus the number of
// provider round trips the fault-free remote run needs.
func chaosBaseline(t *testing.T, scalar bool) (string, int) {
	t.Helper()
	ds := indexDataset(600, 4)
	cfg := mustConfig(t, "n > 0.6 +/- 0.1", 0.99, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityFull}, 3)
	eng, err := New(cfg, ds, labeling.NewTruthOracle(ds.Y), Options{
		InitialModel: simModel(t, "h0", ds, 0.5, 1),
		Notifier:     notify.Discard{},
		ScalarEval:   scalar,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range []struct {
		name string
		acc  float64
		seed int64
	}{{"m1", 0.9, 2}, {"m2", 0.55, 3}, {"m3", 0.92, 4}} {
		if _, err := eng.Commit(simModel(t, c.name, ds, c.acc, c.seed), "dev", "chaos"); err != nil {
			t.Fatalf("baseline commit %d: %v", i, err)
		}
	}
	want := fingerprint(t, eng)

	remote := runChaosScenario(t, scalar, nil)
	if got := fingerprint(t, remote.eng); got != want {
		t.Fatalf("fault-free remote run diverged from the direct oracle:\n got %s\nwant %s", got, want)
	}
	return want, remote.faults.Calls()
}

func TestChaosSingleTransientFaultAnywhere(t *testing.T) {
	for _, scalar := range []bool{false, true} {
		name := "packed"
		if scalar {
			name = "scalar"
		}
		t.Run(name, func(t *testing.T) {
			want, calls := chaosBaseline(t, scalar)
			if calls < 3 {
				t.Fatalf("scenario too small to be interesting: %d provider calls", calls)
			}
			for k := 0; k < calls; k++ {
				schedule := make([]labeling.Fault, k, k+1)
				schedule = append(schedule, labeling.Fault{Fail: true, Latency: 5 * time.Millisecond})
				r := runChaosScenario(t, scalar, schedule)
				if got := fingerprint(t, r.eng); got != want {
					t.Fatalf("transient fault at call %d diverged:\n got %s\nwant %s", k, got, want)
				}
			}
		})
	}
}

func TestChaosOutageBurstAnywhere(t *testing.T) {
	// A burst long enough to exhaust the retry budget surfaces
	// ErrUnavailable from Commit (the park trigger). The rollback plus
	// re-submit must reconverge to the byte-identical state, at every
	// possible call position — look boundaries and mid-batch included.
	for _, scalar := range []bool{false, true} {
		name := "packed"
		if scalar {
			name = "scalar"
		}
		t.Run(name, func(t *testing.T) {
			want, calls := chaosBaseline(t, scalar)
			for k := 0; k < calls; k++ {
				schedule := make([]labeling.Fault, k, k+chaosMaxAttempts)
				for i := 0; i < chaosMaxAttempts; i++ {
					schedule = append(schedule, labeling.Fault{Fail: true})
				}
				r := runChaosScenario(t, scalar, schedule)
				if got := fingerprint(t, r.eng); got != want {
					t.Fatalf("outage burst at call %d diverged:\n got %s\nwant %s", k, got, want)
				}
			}
		})
	}
}

func TestChaosPartialAnswersAnywhere(t *testing.T) {
	want, calls := chaosBaseline(t, false)
	for k := 0; k < calls; k++ {
		schedule := make([]labeling.Fault, k, k+2)
		schedule = append(schedule,
			labeling.Fault{Partial: 1},                    // one label, budget resets
			labeling.Fault{Partial: labeling.PartialNone}, // empty 200, budget spent
		)
		r := runChaosScenario(t, false, schedule)
		if got := fingerprint(t, r.eng); got != want {
			t.Fatalf("partial answers at call %d diverged:\n got %s\nwant %s", k, got, want)
		}
	}
}

func TestChaosNastyMixedSchedule(t *testing.T) {
	want, _ := chaosBaseline(t, false)
	schedule := []labeling.Fault{
		{Fail: true, RetryIn: 2 * time.Second, HasRetryIn: true},
		{Partial: 2, Latency: 30 * time.Millisecond},
		{Fail: true},
		{Fail: true},
		{Fail: true}, // budget gone -> ErrUnavailable -> rollback
		{Fail: true}, // breaker trips during the re-run
		{Partial: labeling.PartialNone},
		{Partial: 3},
		{Fail: true, RetryIn: 500 * time.Millisecond, HasRetryIn: true},
	}
	r := runChaosScenario(t, false, schedule)
	if got := fingerprint(t, r.eng); got != want {
		t.Fatalf("mixed schedule diverged:\n got %s\nwant %s", got, want)
	}
	if r.faults.Calls() <= len(schedule) {
		t.Fatalf("schedule not drained: %d calls", r.faults.Calls())
	}
}

func TestChaosSnapshotRestoreWhileUnavailable(t *testing.T) {
	// Crash while a commit is stuck on an outage (the parked state),
	// restore, and finish against a recovered provider: byte-identical.
	want, _ := chaosBaseline(t, false)
	ds := indexDataset(600, 4)
	cfg := mustConfig(t, "n > 0.6 +/- 0.1", 0.99, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityFull}, 3)

	rig := newChaosRig(t, false, nil)
	rig.commitUntilAccepted(t, "m1", 0.9, 2)

	// m2 hits an outage and gives up — this is the moment the server
	// parks the job and may get SIGKILLed.
	outage := labeling.NewFaultOracle(labeling.NewTruthOracle(ds.Y),
		[]labeling.Fault{{Fail: true}, {Fail: true}, {Fail: true}}, rig.clock.advance)
	if err := rig.eng.SetOracle(labeling.NewResilient(outage, labeling.ResilientOptions{
		MaxAttempts: chaosMaxAttempts,
		Backoff:     time.Millisecond,
		Clock:       rig.clock.now,
		Sleep:       chaosSleep(rig.clock),
		Jitter:      zeroJitter,
	})); err != nil {
		t.Fatal(err)
	}
	if _, err := rig.eng.Commit(simModel(t, "m2", rig.ds, 0.55, 3), "dev", "chaos"); !errors.Is(err, labeling.ErrUnavailable) {
		t.Fatalf("expected outage, got %v", err)
	}

	// "SIGKILL": serialize, restore into a fresh process image.
	blob, err := json.Marshal(rig.eng.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var st State
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(cfg, st, Options{Notifier: notify.Discard{}})
	if err != nil {
		t.Fatal(err)
	}
	// The provider comes back; the released job re-runs m2, then m3.
	clock := newChaosTime()
	healthy := labeling.NewFaultOracle(labeling.NewTruthOracle(ds.Y), nil, clock.advance)
	if err := restored.SetOracle(labeling.NewResilient(healthy, labeling.ResilientOptions{
		MaxAttempts: chaosMaxAttempts,
		Backoff:     time.Millisecond,
		Clock:       clock.now,
		Sleep:       chaosSleep(clock),
		Jitter:      zeroJitter,
	})); err != nil {
		t.Fatal(err)
	}
	for i, c := range []struct {
		name string
		acc  float64
		seed int64
	}{{"m2", 0.55, 3}, {"m3", 0.92, 4}} {
		if _, err := restored.Commit(simModel(t, c.name, ds, c.acc, c.seed), "dev", "chaos"); err != nil {
			t.Fatalf("post-restore commit %d: %v", i, err)
		}
	}
	if got := fingerprint(t, restored); got != want {
		t.Fatalf("restore-during-outage diverged:\n got %s\nwant %s", got, want)
	}
}

func TestChaosNoDoubleChargeAcrossRetries(t *testing.T) {
	// The ledger must never bill a label twice even when the evaluation
	// is torn down and re-run: compare total charges against fault-free.
	want, calls := chaosBaseline(t, false)
	var wantTotal int
	{
		var fp struct{ Total int }
		if err := json.Unmarshal([]byte(want), &fp); err != nil {
			t.Fatal(err)
		}
		wantTotal = fp.Total
	}
	// Outage bursts at two separate points in the run.
	mid := calls / 2
	schedule := make([]labeling.Fault, 0, mid+2*chaosMaxAttempts)
	for i := 0; i < chaosMaxAttempts; i++ {
		schedule = append(schedule, labeling.Fault{Fail: true})
	}
	for len(schedule) < mid {
		schedule = append(schedule, labeling.Fault{})
	}
	for i := 0; i < chaosMaxAttempts; i++ {
		schedule = append(schedule, labeling.Fault{Fail: true})
	}
	r := runChaosScenario(t, false, schedule)
	if got := r.eng.LabelCost().Total(); got != wantTotal {
		t.Fatalf("label charges diverged under faults: %d, want %d", got, wantTotal)
	}
}
