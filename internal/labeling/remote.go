package labeling

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"time"

	"github.com/easeml/ci/internal/resilience"
)

// ErrUnavailable marks the label provider as unreachable after the
// resilient client spent its retry budget (or short-circuited on an open
// breaker). It is the signal the commit pipeline parks a job on: the
// request was not wrong, the world was — retrying later can succeed.
var ErrUnavailable = errors.New("labeling: label provider unavailable")

// UnavailableError wraps the last transport failure behind ErrUnavailable
// and carries a hint for when retrying is worthwhile (the provider's
// Retry-After, or the breaker's cooldown expiry).
type UnavailableError struct {
	// Err is the last underlying transport error (nil when the breaker
	// short-circuited before any attempt).
	Err error
	// RetryIn is the suggested delay before the next attempt (0 = none).
	RetryIn time.Duration
}

// Error implements error.
func (e *UnavailableError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("labeling: label provider unavailable: %v", e.Err)
	}
	return ErrUnavailable.Error()
}

// Is makes errors.Is(err, ErrUnavailable) match.
func (e *UnavailableError) Is(target error) bool { return target == ErrUnavailable }

// Unwrap exposes the transport error.
func (e *UnavailableError) Unwrap() error { return e.Err }

// RetryAfter implements resilience.RetryAfterer.
func (e *UnavailableError) RetryAfter() (time.Duration, bool) {
	return e.RetryIn, e.RetryIn > 0
}

// BatchResult is one (possibly partial) answer from a label provider:
// parallel index/label slices covering any subset of what was asked.
// A human labeling team finishes what it finishes; the client accepts
// the subset and re-requests only the remainder.
type BatchResult struct {
	Indices []int `json:"indices"`
	Labels  []int `json:"labels"`
}

// Provider is the transport contract under the resilient client: one
// round trip to an external label source. A call may fail outright
// (error), answer everything, or answer a subset (partial batches are
// progress, not failure). Errors may implement resilience.RetryAfterer
// to carry the provider's own pacing.
type Provider interface {
	RequestLabels(indices []int) (BatchResult, error)
}

// ProviderStatusError is a provider request rejected with a non-2xx
// response; on 429/503 it carries the Retry-After header.
type ProviderStatusError struct {
	URL        string
	StatusCode int
	Status     string
	RetryIn    time.Duration
	HasRetryIn bool
}

// Error implements error.
func (e *ProviderStatusError) Error() string {
	return fmt.Sprintf("labeling: provider %s answered %s", e.URL, e.Status)
}

// RetryAfter implements resilience.RetryAfterer.
func (e *ProviderStatusError) RetryAfter() (time.Duration, bool) { return e.RetryIn, e.HasRetryIn }

// DefaultProviderTimeout bounds one label request end to end: a hung
// provider must not wedge the engine lock indefinitely.
const DefaultProviderTimeout = 10 * time.Second

// HTTPOracleOptions tunes the HTTP transport.
type HTTPOracleOptions struct {
	// Client is the underlying HTTP client; nil gets a fresh one.
	Client *http.Client
	// Timeout is the per-request deadline. 0 means
	// DefaultProviderTimeout; negative disables the deadline.
	Timeout time.Duration
}

// HTTPOracle is the wire transport to a remote label provider: one POST
// per request, {"indices":[...]} out, a BatchResult back. It implements
// Provider only — production wraps it in NewResilient for retries,
// partial-batch accounting, and circuit breaking.
type HTTPOracle struct {
	url     string
	client  *http.Client
	timeout time.Duration
}

// NewHTTPOracle builds the transport for a provider endpoint.
func NewHTTPOracle(endpoint string, opts HTTPOracleOptions) (*HTTPOracle, error) {
	u, err := url.Parse(endpoint)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("labeling: oracle URL %q is not an http(s) URL", endpoint)
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = DefaultProviderTimeout
	}
	return &HTTPOracle{url: endpoint, client: client, timeout: timeout}, nil
}

// RequestLabels implements Provider: one POST under the per-request
// deadline. The provider may answer a subset; the response's index set
// is validated downstream by the resilient client.
func (o *HTTPOracle) RequestLabels(indices []int) (BatchResult, error) {
	body, err := json.Marshal(struct {
		Indices []int `json:"indices"`
	}{Indices: indices})
	if err != nil {
		return BatchResult{}, fmt.Errorf("labeling: encoding label request: %w", err)
	}
	ctx := context.Background()
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, o.url, bytes.NewReader(body))
	if err != nil {
		return BatchResult{}, fmt.Errorf("labeling: label request %s: %w", o.url, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := o.client.Do(req)
	if err != nil {
		return BatchResult{}, fmt.Errorf("labeling: label request %s: %w", o.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		se := &ProviderStatusError{URL: o.url, StatusCode: resp.StatusCode, Status: resp.Status}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			se.RetryIn, se.HasRetryIn = resilience.ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
		}
		return BatchResult{}, se
	}
	var res BatchResult
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&res); err != nil {
		return BatchResult{}, fmt.Errorf("labeling: decoding provider response: %w", err)
	}
	return res, nil
}

// Resilient retry defaults. The backoff is deliberately short: the
// retry loop runs under the engine lock, so its worst case
// (MaxAttempts rounds at MaxBackoff) bounds how long one commit can
// stall before parking.
const (
	DefaultOracleMaxAttempts = 4
	DefaultOracleBackoff     = 50 * time.Millisecond
	DefaultOracleMaxBackoff  = 2 * time.Second
)

// latencyBuckets is the number of power-of-two-millisecond histogram
// buckets in OracleStats.LatencyMs: [0,1ms), [1,2ms), [2,4ms), ...,
// with the last bucket catching everything beyond.
const latencyBuckets = 12

// ResilientOptions tunes the resilient label client.
type ResilientOptions struct {
	// MaxAttempts bounds consecutive no-progress provider rounds per
	// LabelBatch call before giving up as unavailable (a partial answer
	// is progress and resets the count). 0 means
	// DefaultOracleMaxAttempts.
	MaxAttempts int
	// Backoff is the delay before the second round; each further retry
	// doubles it, capped at MaxBackoff, plus up to one extra Backoff of
	// jitter. A provider Retry-After overrides the computed delay.
	// Zeros mean DefaultOracleBackoff / DefaultOracleMaxBackoff.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Breaker tunes the provider circuit breaker.
	Breaker resilience.BreakerOptions
	// Clock and Sleep are the time injection points for deterministic
	// tests; nil means time.Now / time.Sleep.
	Clock func() time.Time
	Sleep func(time.Duration)
	// Jitter returns a value in [0,1) stretching retry delays; nil means
	// math/rand. Tests inject a constant.
	Jitter func() float64
}

// OracleStats is the resilient client's health snapshot for the metrics
// API. Like webhook_retry, these are delivery state, not a cache: an
// admin cache reset reports them unchanged.
type OracleStats struct {
	// Requests counts LabelBatch calls (cache-complete ones included).
	Requests uint64 `json:"requests"`
	// Attempts counts provider round trips; Retries counts the rounds
	// re-run after a failed or empty answer.
	Attempts uint64 `json:"attempts"`
	Retries  uint64 `json:"retries"`
	// PartialBatches counts rounds the provider answered a strict subset.
	PartialBatches uint64 `json:"partial_batches"`
	// ShortCircuited counts LabelBatch calls refused by an open breaker
	// without touching the wire.
	ShortCircuited uint64 `json:"short_circuited"`
	// Unavailable counts LabelBatch calls that gave up (the commit
	// pipeline parks the job then).
	Unavailable uint64 `json:"unavailable"`
	// LabelsFetched counts labels obtained from the provider; CacheHits
	// counts labels served from the verified-label cache instead of
	// being re-requested (a re-run after a fault never pays twice).
	LabelsFetched uint64 `json:"labels_fetched"`
	CacheHits     uint64 `json:"cache_hits"`
	// NsTotal is cumulative provider round-trip time, so
	// NsTotal/Attempts is the mean label-fetch latency.
	NsTotal uint64 `json:"ns_total"`
	// LatencyMs is a power-of-two-millisecond round-trip histogram:
	// bucket k counts attempts in [2^(k-1), 2^k) ms (bucket 0 is <1ms,
	// the last bucket is everything beyond).
	LatencyMs []uint64 `json:"latency_ms_hist,omitempty"`
	// Breaker is the provider breaker's position.
	Breaker resilience.BreakerStatus `json:"breaker"`
}

// Resilient wraps a Provider transport into the BatchOracle the engine
// reveals labels through, adding the full failure discipline: bounded
// exponential backoff with jitter, Retry-After honoring, partial-batch
// acceptance, a circuit breaker, and a verified-label cache.
//
// The cache is what makes a failed round trip free to retry: labels the
// provider already answered are kept by index, so when a mid-look
// failure aborts the commit (nothing was marked revealed — the
// verify-all-then-mark invariant) and the job re-runs, only the
// remainder is re-requested and no label is ever paid for twice.
//
// Safe for concurrent use. LabelBatch either returns every requested
// label or an *UnavailableError (matching ErrUnavailable); it never
// returns a partial slice, so testset.revealBatch's atomicity contract
// is preserved unchanged.
type Resilient struct {
	transport Provider
	opts      ResilientOptions

	mu      sync.Mutex
	cache   map[int]int
	breaker resilience.Breaker
	stats   OracleStats
	latHist [latencyBuckets]uint64
}

// NewResilient wraps a transport.
func NewResilient(t Provider, opts ResilientOptions) *Resilient {
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep
	}
	if opts.Jitter == nil {
		opts.Jitter = rand.Float64
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultOracleMaxAttempts
	}
	if opts.Backoff <= 0 {
		opts.Backoff = DefaultOracleBackoff
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = DefaultOracleMaxBackoff
	}
	return &Resilient{transport: t, opts: opts, cache: make(map[int]int)}
}

// Label implements Oracle as a batch of one.
func (r *Resilient) Label(i int) (int, error) {
	out, err := r.LabelBatch([]int{i})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// LabelBatch implements BatchOracle: it answers every requested index or
// fails as unavailable, looping provider rounds over the not-yet-cached
// remainder until the batch is complete or the retry budget is spent.
func (r *Resilient) LabelBatch(indices []int) ([]int, error) {
	r.mu.Lock()
	r.stats.Requests++
	need := make([]int, 0, len(indices))
	seen := make(map[int]bool, len(indices))
	for _, i := range indices {
		if seen[i] {
			continue
		}
		seen[i] = true
		if _, ok := r.cache[i]; ok {
			r.stats.CacheHits++
		} else {
			need = append(need, i)
		}
	}
	r.mu.Unlock()

	noProgress := 0
	var lastErr error
	for len(need) > 0 {
		r.mu.Lock()
		now := r.opts.Clock()
		if r.opts.Breaker.FailureThreshold >= 0 {
			if ok, retryAt := r.breaker.Allow(now, r.opts.Breaker); !ok {
				r.stats.ShortCircuited++
				r.stats.Unavailable++
				r.mu.Unlock()
				return nil, &UnavailableError{Err: lastErr, RetryIn: retryAt.Sub(now)}
			}
		}
		r.mu.Unlock()

		start := r.opts.Clock()
		res, err := r.transport.RequestLabels(need)
		elapsed := r.opts.Clock().Sub(start)

		r.mu.Lock()
		now = r.opts.Clock()
		r.recordAttemptLocked(elapsed)
		if err != nil {
			lastErr = err
			if r.opts.Breaker.FailureThreshold >= 0 {
				r.breaker.Record(false, now, r.opts.Breaker)
			}
			noProgress++
			if noProgress >= r.opts.MaxAttempts {
				r.stats.Unavailable++
				retryIn, _ := resilience.RetryAfterFromError(err)
				r.mu.Unlock()
				return nil, &UnavailableError{Err: err, RetryIn: retryIn}
			}
			r.stats.Retries++
			delay := r.retryDelayLocked(noProgress, err)
			r.mu.Unlock()
			r.opts.Sleep(delay)
			continue
		}
		fresh, verr := r.absorbLocked(need, res)
		if verr != nil {
			// A malformed answer (unknown index, ragged slices) is a
			// protocol violation, not an outage: fail the call hard so
			// the commit fails instead of parking forever.
			r.mu.Unlock()
			return nil, verr
		}
		if r.opts.Breaker.FailureThreshold >= 0 {
			r.breaker.Record(true, now, r.opts.Breaker)
		}
		if fresh == 0 {
			// A 200 with nothing new: the provider is up but not
			// answering. Spend retry budget so this can't loop forever.
			lastErr = fmt.Errorf("labeling: provider answered none of %d requested labels", len(need))
			noProgress++
			if noProgress >= r.opts.MaxAttempts {
				r.stats.Unavailable++
				r.mu.Unlock()
				return nil, &UnavailableError{Err: lastErr}
			}
			r.stats.Retries++
			delay := r.retryDelayLocked(noProgress, nil)
			r.mu.Unlock()
			r.opts.Sleep(delay)
			continue
		}
		if fresh < len(need) {
			r.stats.PartialBatches++
		}
		noProgress = 0
		remaining := need[:0]
		for _, i := range need {
			if _, ok := r.cache[i]; !ok {
				remaining = append(remaining, i)
			}
		}
		need = remaining
		r.mu.Unlock()
	}

	out := make([]int, len(indices))
	r.mu.Lock()
	for k, i := range indices {
		y, ok := r.cache[i]
		if !ok {
			r.mu.Unlock()
			return nil, fmt.Errorf("labeling: internal: label for example %d missing after complete batch", i)
		}
		out[k] = y
	}
	r.mu.Unlock()
	return out, nil
}

// absorbLocked validates one provider answer against the outstanding
// request and moves its labels into the cache, returning how many
// requested labels became newly available.
func (r *Resilient) absorbLocked(need []int, res BatchResult) (int, error) {
	if len(res.Indices) != len(res.Labels) {
		return 0, fmt.Errorf("labeling: provider answered %d indices with %d labels", len(res.Indices), len(res.Labels))
	}
	wanted := make(map[int]bool, len(need))
	for _, i := range need {
		wanted[i] = true
	}
	fresh := 0
	for k, i := range res.Indices {
		if !wanted[i] {
			return 0, fmt.Errorf("labeling: provider answered example %d that was not requested", i)
		}
		if _, ok := r.cache[i]; !ok {
			fresh++
		}
		r.cache[i] = res.Labels[k]
	}
	r.stats.LabelsFetched += uint64(fresh)
	return fresh, nil
}

// retryDelayLocked computes the wait before the next provider round:
// the provider's Retry-After verbatim when present, else capped
// exponential backoff plus up to one base of jitter.
func (r *Resilient) retryDelayLocked(failures int, err error) time.Duration {
	if d, ok := resilience.RetryAfterFromError(err); ok {
		return d
	}
	d := resilience.Backoff(r.opts.Backoff, r.opts.MaxBackoff, failures)
	return d + time.Duration(float64(r.opts.Backoff)*r.opts.Jitter())
}

// recordAttemptLocked books one provider round trip into the counters
// and the latency histogram.
func (r *Resilient) recordAttemptLocked(elapsed time.Duration) {
	r.stats.Attempts++
	if elapsed < 0 {
		elapsed = 0
	}
	r.stats.NsTotal += uint64(elapsed.Nanoseconds())
	ms := elapsed.Milliseconds()
	b := 0
	for ms > 0 && b < latencyBuckets-1 {
		ms >>= 1
		b++
	}
	r.latHist[b]++
}

// ClearCache drops the verified-label cache. The server calls this on
// testset rotation: example indices restart against new data, so labels
// cached for the old generation must never answer for the new one.
func (r *Resilient) ClearCache() {
	r.mu.Lock()
	r.cache = make(map[int]int)
	r.mu.Unlock()
}

// Stats snapshots the client's health counters.
func (r *Resilient) Stats() OracleStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.LatencyMs = append([]uint64(nil), r.latHist[:]...)
	s.Breaker = r.breaker.Status()
	return s
}
