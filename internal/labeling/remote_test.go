package labeling

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/easeml/ci/internal/resilience"
)

// fakeClock is the injected time source for deterministic retry tests.
type fakeClock struct {
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }
func (c *fakeClock) Sleep(d time.Duration)   { c.Advance(d) }

// newTestResilient wires a Resilient to a fault schedule over the given
// ground truth, with injected clock/sleep and zero jitter.
func newTestResilient(truth []int, schedule []Fault, opts ResilientOptions) (*Resilient, *FaultOracle, *fakeClock) {
	clock := newFakeClock()
	fo := NewFaultOracle(NewTruthOracle(truth), schedule, clock.Advance)
	opts.Clock = clock.Now
	opts.Sleep = clock.Sleep
	if opts.Jitter == nil {
		opts.Jitter = func() float64 { return 0 }
	}
	return NewResilient(fo, opts), fo, clock
}

func TestResilientHappyPath(t *testing.T) {
	truth := []int{3, 1, 2, 0, 1}
	r, fo, _ := newTestResilient(truth, nil, ResilientOptions{})
	got, err := r.LabelBatch([]int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for k, i := range []int{0, 2, 4} {
		if got[k] != truth[i] {
			t.Fatalf("label[%d] = %d, want %d", i, got[k], truth[i])
		}
	}
	if fo.Calls() != 1 {
		t.Fatalf("round trips = %d, want 1", fo.Calls())
	}
	st := r.Stats()
	if st.Requests != 1 || st.Attempts != 1 || st.Retries != 0 || st.LabelsFetched != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResilientRetriesThenSucceeds(t *testing.T) {
	truth := []int{1, 0, 1}
	r, fo, _ := newTestResilient(truth, []Fault{{Fail: true}, {Fail: true}}, ResilientOptions{
		MaxAttempts: 4,
	})
	got, err := r.LabelBatch([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 0 || got[2] != 1 {
		t.Fatalf("labels = %v", got)
	}
	if fo.Calls() != 3 {
		t.Fatalf("round trips = %d, want 3", fo.Calls())
	}
	st := r.Stats()
	if st.Retries != 2 || st.Attempts != 3 || st.Unavailable != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResilientExhaustsRetryBudget(t *testing.T) {
	schedule := []Fault{{Fail: true}, {Fail: true}, {Fail: true}}
	r, fo, _ := newTestResilient([]int{1}, schedule, ResilientOptions{MaxAttempts: 3})
	_, err := r.LabelBatch([]int{0})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("unavailable error does not wrap the transport failure: %v", err)
	}
	if fo.Calls() != 3 {
		t.Fatalf("round trips = %d, want 3", fo.Calls())
	}
	if st := r.Stats(); st.Unavailable != 1 || st.Retries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResilientPartialBatchesResetBudget(t *testing.T) {
	// Every round answers exactly one label: progress, so a 2-attempt
	// budget still completes a 5-label batch.
	truth := []int{4, 3, 2, 1, 0}
	schedule := []Fault{{Partial: 1}, {Partial: 1}, {Partial: 1}, {Partial: 1}, {Partial: 1}}
	r, fo, _ := newTestResilient(truth, schedule, ResilientOptions{MaxAttempts: 2})
	got, err := r.LabelBatch([]int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, y := range got {
		if y != truth[i] {
			t.Fatalf("label[%d] = %d, want %d", i, y, truth[i])
		}
	}
	if fo.Calls() != 5 {
		t.Fatalf("round trips = %d, want 5", fo.Calls())
	}
	st := r.Stats()
	if st.PartialBatches != 4 { // the final round answered all that remained
		t.Fatalf("partial batches = %d, want 4; stats %+v", st.PartialBatches, st)
	}
}

func TestResilientEmptyAnswerSpendsBudget(t *testing.T) {
	schedule := []Fault{{Partial: PartialNone}, {Partial: PartialNone}}
	r, _, _ := newTestResilient([]int{1, 0}, schedule, ResilientOptions{MaxAttempts: 2})
	_, err := r.LabelBatch([]int{0, 1})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	// Empty 200s are breaker successes: the provider is up.
	if st := r.Stats(); st.Breaker.State != "closed" {
		t.Fatalf("breaker = %+v, want closed", st.Breaker)
	}
}

func TestResilientCacheNeverPaysTwice(t *testing.T) {
	// Round 1 answers 2 of 4 then the commit "fails"; the re-run must
	// re-request only the remainder.
	truth := []int{0, 1, 2, 3}
	schedule := []Fault{{Partial: 2}, {Fail: true}, {Fail: true}, {Fail: true}}
	r, fo, _ := newTestResilient(truth, schedule, ResilientOptions{MaxAttempts: 3})
	if _, err := r.LabelBatch([]int{0, 1, 2, 3}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("first call err = %v, want ErrUnavailable", err)
	}
	callsAfterFirst := fo.Calls()

	// Provider recovered (schedule exhausted): the re-run completes.
	got, err := r.LabelBatch([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, y := range got {
		if y != truth[i] {
			t.Fatalf("label[%d] = %d, want %d", i, y, truth[i])
		}
	}
	if fo.Calls() != callsAfterFirst+1 {
		t.Fatalf("re-run made %d round trips, want 1", fo.Calls()-callsAfterFirst)
	}
	st := r.Stats()
	if st.LabelsFetched != 4 {
		t.Fatalf("labels fetched = %d, want 4 (no double pay)", st.LabelsFetched)
	}
	if st.CacheHits != 2 {
		t.Fatalf("cache hits = %d, want 2", st.CacheHits)
	}
}

func TestResilientDuplicateIndices(t *testing.T) {
	truth := []int{5, 6, 7}
	r, _, _ := newTestResilient(truth, nil, ResilientOptions{})
	got, err := r.LabelBatch([]int{2, 0, 2, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{7, 5, 7, 7, 5}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestResilientBreakerShortCircuits(t *testing.T) {
	schedule := []Fault{{Fail: true}, {Fail: true}}
	r, fo, clock := newTestResilient([]int{1}, schedule, ResilientOptions{
		MaxAttempts: 2,
		Breaker:     resilience.BreakerOptions{FailureThreshold: 2, Cooldown: time.Minute},
	})
	if _, err := r.LabelBatch([]int{0}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	calls := fo.Calls()

	// Breaker open: the next call must not touch the wire and must carry
	// the cooldown as its retry hint.
	_, err := r.LabelBatch([]int{0})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("short-circuit err = %v", err)
	}
	if fo.Calls() != calls {
		t.Fatal("open breaker still hit the provider")
	}
	if d, ok := resilience.RetryAfterFromError(err); !ok || d <= 0 || d > time.Minute {
		t.Fatalf("short-circuit retry hint = %v %v, want (0, 1m]", d, ok)
	}
	st := r.Stats()
	if st.ShortCircuited != 1 || st.Breaker.State != "open" || st.Breaker.Opens != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// After the cooldown the half-open probe succeeds and closes it.
	clock.Advance(2 * time.Minute)
	if got, err := r.LabelBatch([]int{0}); err != nil || got[0] != 1 {
		t.Fatalf("post-cooldown call: %v %v", got, err)
	}
	if st := r.Stats(); st.Breaker.State != "closed" {
		t.Fatalf("breaker after recovery = %+v", st.Breaker)
	}
}

func TestResilientHonorsRetryAfter(t *testing.T) {
	var slept []time.Duration
	clock := newFakeClock()
	fo := NewFaultOracle(NewTruthOracle([]int{1}), []Fault{
		{Fail: true, RetryIn: 7 * time.Second, HasRetryIn: true},
	}, clock.Advance)
	r := NewResilient(fo, ResilientOptions{
		MaxAttempts: 3,
		Clock:       clock.Now,
		Sleep: func(d time.Duration) {
			slept = append(slept, d)
			clock.Advance(d)
		},
		Jitter: func() float64 { return 0 },
	})
	if _, err := r.LabelBatch([]int{0}); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 7*time.Second {
		t.Fatalf("slept %v, want exactly the Retry-After 7s", slept)
	}
}

func TestResilientBackoffDoubles(t *testing.T) {
	var slept []time.Duration
	clock := newFakeClock()
	fo := NewFaultOracle(NewTruthOracle([]int{1}), []Fault{
		{Fail: true}, {Fail: true}, {Fail: true},
	}, clock.Advance)
	r := NewResilient(fo, ResilientOptions{
		MaxAttempts: 4,
		Backoff:     100 * time.Millisecond,
		MaxBackoff:  time.Second,
		Clock:       clock.Now,
		Sleep: func(d time.Duration) {
			slept = append(slept, d)
			clock.Advance(d)
		},
		Jitter: func() float64 { return 0 },
	})
	if _, err := r.LabelBatch([]int{0}); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("slept %v, want %v", slept, want)
		}
	}
}

func TestResilientMalformedAnswersFailHard(t *testing.T) {
	// Unknown index: protocol violation, not an outage — no parking.
	bad := providerFunc(func(indices []int) (BatchResult, error) {
		return BatchResult{Indices: []int{99}, Labels: []int{1}}, nil
	})
	r := NewResilient(bad, ResilientOptions{})
	_, err := r.LabelBatch([]int{0})
	if err == nil || errors.Is(err, ErrUnavailable) {
		t.Fatalf("unknown-index answer: err = %v, want hard failure", err)
	}

	// Ragged slices likewise.
	ragged := providerFunc(func(indices []int) (BatchResult, error) {
		return BatchResult{Indices: []int{0}, Labels: []int{1, 2}}, nil
	})
	r = NewResilient(ragged, ResilientOptions{})
	_, err = r.LabelBatch([]int{0})
	if err == nil || errors.Is(err, ErrUnavailable) {
		t.Fatalf("ragged answer: err = %v, want hard failure", err)
	}
}

type providerFunc func(indices []int) (BatchResult, error)

func (f providerFunc) RequestLabels(indices []int) (BatchResult, error) { return f(indices) }

func TestResilientClearCache(t *testing.T) {
	truth := []int{1, 2}
	r, fo, _ := newTestResilient(truth, nil, ResilientOptions{})
	if _, err := r.LabelBatch([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	r.ClearCache()
	if _, err := r.LabelBatch([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if fo.Calls() != 2 {
		t.Fatalf("round trips = %d, want 2 (cache cleared)", fo.Calls())
	}
}

func TestResilientLatencyHistogram(t *testing.T) {
	schedule := []Fault{{Latency: 3 * time.Millisecond}}
	r, _, _ := newTestResilient([]int{1}, schedule, ResilientOptions{})
	if _, err := r.LabelBatch([]int{0}); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if len(st.LatencyMs) != latencyBuckets {
		t.Fatalf("histogram has %d buckets, want %d", len(st.LatencyMs), latencyBuckets)
	}
	// 3ms lands in bucket [2,4) = index 2.
	if st.LatencyMs[2] != 1 {
		t.Fatalf("histogram = %v, want the 3ms attempt in bucket 2", st.LatencyMs)
	}
	if st.NsTotal != uint64(3*time.Millisecond) {
		t.Fatalf("ns total = %d, want %d", st.NsTotal, 3*time.Millisecond)
	}
}

// --- HTTP transport against the mock provider server -------------------

func TestHTTPOracleAgainstProviderServer(t *testing.T) {
	truth := []int{0, 1, 2, 3, 1, 0}
	ps := NewProviderServer(truth)
	srv := httptest.NewServer(ps)
	defer srv.Close()

	transport, err := NewHTTPOracle(srv.URL, HTTPOracleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := transport.RequestLabels([]int{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Indices) != 3 || res.Labels[0] != 1 || res.Labels[1] != 3 || res.Labels[2] != 0 {
		t.Fatalf("answer = %+v", res)
	}

	// Scripted outage with Retry-After.
	ps.FailNext(1, http.StatusServiceUnavailable, 5*time.Second)
	_, err = transport.RequestLabels([]int{0})
	var se *ProviderStatusError
	if !errors.As(err, &se) {
		t.Fatalf("outage err = %T %v", err, err)
	}
	if se.StatusCode != http.StatusServiceUnavailable || !se.HasRetryIn || se.RetryIn != 5*time.Second {
		t.Fatalf("status error = %+v", se)
	}

	// Out-of-range index is a 400 — and carries no retry hint.
	_, err = transport.RequestLabels([]int{99})
	if !errors.As(err, &se) || se.StatusCode != http.StatusBadRequest || se.HasRetryIn {
		t.Fatalf("bad index err = %v", err)
	}
}

func TestHTTPOracleResilientEndToEnd(t *testing.T) {
	truth := []int{2, 0, 1, 2, 1}
	ps := NewProviderServer(truth)
	srv := httptest.NewServer(ps)
	defer srv.Close()

	transport, err := NewHTTPOracle(srv.URL, HTTPOracleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ps.SetMaxBatch(2)    // dribs and drabs
	ps.FailNext(1, 0, 0) // one outage first
	r := NewResilient(transport, ResilientOptions{
		MaxAttempts: 3,
		Backoff:     time.Millisecond,
		Sleep:       func(time.Duration) {},
	})
	got, err := r.LabelBatch([]int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, y := range got {
		if y != truth[i] {
			t.Fatalf("label[%d] = %d, want %d", i, y, truth[i])
		}
	}
	if ps.Requests() < 4 { // 1 failure + ceil(5/2) partial rounds
		t.Fatalf("requests = %d, want >= 4", ps.Requests())
	}
	if st := r.Stats(); st.PartialBatches == 0 || st.Retries == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNewHTTPOracleRejectsBadURLs(t *testing.T) {
	for _, u := range []string{"", "not a url", "ftp://host/x", "http://"} {
		if _, err := NewHTTPOracle(u, HTTPOracleOptions{}); err == nil {
			t.Errorf("NewHTTPOracle(%q) accepted", u)
		}
	}
}
