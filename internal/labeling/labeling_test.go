package labeling

import (
	"testing"
	"time"
)

func TestTruthOracle(t *testing.T) {
	o := NewTruthOracle([]int{2, 0, 1})
	y, err := o.Label(0)
	if err != nil || y != 2 {
		t.Errorf("Label(0) = %d, %v", y, err)
	}
	if _, err := o.Label(-1); err == nil {
		t.Error("negative index should fail")
	}
	if _, err := o.Label(3); err == nil {
		t.Error("out-of-range index should fail")
	}
}

func TestLedger(t *testing.T) {
	var l Ledger
	l.Charge(100)
	l.Charge(50)
	l.Charge(-5) // clamped to 0
	if l.Total() != 150 {
		t.Errorf("Total = %d", l.Total())
	}
	pc := l.PerCommit()
	if len(pc) != 3 || pc[0] != 100 || pc[1] != 50 || pc[2] != 0 {
		t.Errorf("PerCommit = %v", pc)
	}
	if l.MaxPerCommit() != 100 {
		t.Errorf("MaxPerCommit = %d", l.MaxPerCommit())
	}
	// PerCommit must return a copy.
	pc[0] = 9999
	if l.PerCommit()[0] != 100 {
		t.Error("PerCommit leaked internal state")
	}
}

func TestEffortPaperArithmetic(t *testing.T) {
	// Section 2.3: 30-60K labels at 2 s/label is one 8-hour day for 2-4
	// engineers: 60000 * 2s = 120000s ~= 33.3 hours ~= 4.2 person-days.
	d := Effort(60000, 2)
	if d != 120000*time.Second {
		t.Errorf("Effort = %v", d)
	}
	days := PersonDays(60000, 2)
	if days < 4.1 || days > 4.3 {
		t.Errorf("PersonDays(60000, 2) = %v, want ~4.17", days)
	}
	// Section 4.1.2: 2188 labels at 5 s/label is ~3 hours.
	hours := Effort(2188, 5).Hours()
	if hours < 2.9 || hours > 3.2 {
		t.Errorf("2188 labels at 5s = %v hours, want ~3", hours)
	}
}

func TestEffortEdge(t *testing.T) {
	if Effort(-5, 2) != 0 || Effort(5, -2) != 0 {
		t.Error("negative inputs must clamp to 0")
	}
	if PersonDays(0, 2) != 0 {
		t.Error("zero labels must cost nothing")
	}
}
