package labeling

import (
	"testing"
	"time"
)

func TestTruthOracle(t *testing.T) {
	o := NewTruthOracle([]int{2, 0, 1})
	y, err := o.Label(0)
	if err != nil || y != 2 {
		t.Errorf("Label(0) = %d, %v", y, err)
	}
	if _, err := o.Label(-1); err == nil {
		t.Error("negative index should fail")
	}
	if _, err := o.Label(3); err == nil {
		t.Error("out-of-range index should fail")
	}
}

func TestLedger(t *testing.T) {
	var l Ledger
	l.Charge(100)
	l.Charge(50)
	l.Charge(-5) // clamped to 0
	if l.Total() != 150 {
		t.Errorf("Total = %d", l.Total())
	}
	pc := l.PerCommit()
	if len(pc) != 3 || pc[0] != 100 || pc[1] != 50 || pc[2] != 0 {
		t.Errorf("PerCommit = %v", pc)
	}
	if l.MaxPerCommit() != 100 {
		t.Errorf("MaxPerCommit = %d", l.MaxPerCommit())
	}
	// PerCommit must return a copy.
	pc[0] = 9999
	if l.PerCommit()[0] != 100 {
		t.Error("PerCommit leaked internal state")
	}
}

func TestEffortPaperArithmetic(t *testing.T) {
	// Section 2.3: 30-60K labels at 2 s/label is one 8-hour day for 2-4
	// engineers: 60000 * 2s = 120000s ~= 33.3 hours ~= 4.2 person-days.
	d := Effort(60000, 2)
	if d != 120000*time.Second {
		t.Errorf("Effort = %v", d)
	}
	days := PersonDays(60000, 2)
	if days < 4.1 || days > 4.3 {
		t.Errorf("PersonDays(60000, 2) = %v, want ~4.17", days)
	}
	// Section 4.1.2: 2188 labels at 5 s/label is ~3 hours.
	hours := Effort(2188, 5).Hours()
	if hours < 2.9 || hours > 3.2 {
		t.Errorf("2188 labels at 5s = %v hours, want ~3", hours)
	}
}

func TestEffortEdge(t *testing.T) {
	if Effort(-5, 2) != 0 || Effort(5, -2) != 0 {
		t.Error("negative inputs must clamp to 0")
	}
	if PersonDays(0, 2) != 0 {
		t.Error("zero labels must cost nothing")
	}
}

func TestTruthOracleLabelBatch(t *testing.T) {
	o := NewTruthOracle([]int{3, 1, 4, 1, 5})
	got, err := o.LabelBatch([]int{4, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{5, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LabelBatch = %v, want %v", got, want)
		}
	}
	if _, err := o.LabelBatch([]int{5}); err == nil {
		t.Error("out-of-range batch index should fail")
	}
	if got, err := o.LabelBatch(nil); err != nil || len(got) != 0 {
		t.Errorf("empty batch: %v %v", got, err)
	}
}

// singleOnly implements only the single-label interface, so AsBatch must
// wrap it in the loop adapter.
type singleOnly struct{ o Oracle }

func (s singleOnly) Label(i int) (int, error) { return s.o.Label(i) }

func TestAsBatch(t *testing.T) {
	truth := NewTruthOracle([]int{2, 0, 1})
	// A native batch oracle passes through unchanged.
	if b := AsBatch(truth); b.(*TruthOracle) != truth {
		t.Error("AsBatch must not re-wrap a native BatchOracle")
	}
	// A single-label oracle gets the loop adapter with equal answers.
	b := AsBatch(singleOnly{o: truth})
	got, err := b.LabelBatch([]int{2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	for k, i := range []int{2, 1, 0} {
		want, _ := truth.Label(i)
		if got[k] != want {
			t.Fatalf("adapter batch = %v", got)
		}
	}
	if _, err := b.LabelBatch([]int{3}); err == nil {
		t.Error("adapter must propagate per-index errors")
	}
}
