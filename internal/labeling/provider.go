package labeling

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// ProviderServer is an in-process HTTP label provider: the mock labeling
// team that integration tests and the examples script outages against.
// It serves ground-truth labels over the HTTPOracle wire protocol and
// exposes knobs for scripted failures, Retry-After pacing, and partial
// batches.
type ProviderServer struct {
	mu         sync.Mutex
	labels     []int
	failNext   int
	failStatus int
	retryAfter time.Duration
	maxBatch   int
	requests   int
	failures   int
}

// NewProviderServer serves the given ground-truth labels.
func NewProviderServer(labels []int) *ProviderServer {
	return &ProviderServer{labels: append([]int(nil), labels...), failStatus: http.StatusServiceUnavailable}
}

// SetLabels swaps the served labels (testset rotation).
func (p *ProviderServer) SetLabels(labels []int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.labels = append([]int(nil), labels...)
}

// FailNext makes the next n requests fail with the given status (0
// keeps the previous status, initially 503) and, when retryAfter > 0, a
// Retry-After header of that many seconds (rounded up).
func (p *ProviderServer) FailNext(n, status int, retryAfter time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failNext = n
	if status != 0 {
		p.failStatus = status
	}
	p.retryAfter = retryAfter
}

// SetMaxBatch caps how many labels one request is answered with (0
// removes the cap), simulating a labeling team that returns work in
// dribs and drabs.
func (p *ProviderServer) SetMaxBatch(k int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.maxBatch = k
}

// Requests reports how many label requests arrived; Failures how many
// were rejected by the fault knobs.
func (p *ProviderServer) Requests() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.requests
}

// Failures reports how many requests were rejected by the fault knobs.
func (p *ProviderServer) Failures() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failures
}

// ServeHTTP implements the provider wire protocol: POST with
// {"indices":[...]} in, BatchResult out.
func (p *ProviderServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "label requests are POSTed", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Indices []int `json:"indices"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad label request: %v", err), http.StatusBadRequest)
		return
	}

	p.mu.Lock()
	p.requests++
	if p.failNext > 0 {
		p.failNext--
		p.failures++
		status := p.failStatus
		retryAfter := p.retryAfter
		p.mu.Unlock()
		if retryAfter > 0 {
			secs := int((retryAfter + time.Second - 1) / time.Second)
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		http.Error(w, "label provider offline", status)
		return
	}
	answer := req.Indices
	if p.maxBatch > 0 && len(answer) > p.maxBatch {
		answer = answer[:p.maxBatch]
	}
	res := BatchResult{Indices: make([]int, 0, len(answer)), Labels: make([]int, 0, len(answer))}
	for _, i := range answer {
		if i < 0 || i >= len(p.labels) {
			p.mu.Unlock()
			http.Error(w, fmt.Sprintf("no example %d", i), http.StatusBadRequest)
			return
		}
		res.Indices = append(res.Indices, i)
		res.Labels = append(res.Labels, p.labels[i])
	}
	p.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}
