// Package labeling implements the labeling workflow the paper's practicality
// analysis is built around (Sections 2.3 and 4.1.2): an Oracle that answers
// label requests (the stand-in for the human labeling team), and cost
// accounting in labels and person-time at the paper's quoted rates of
// 2 seconds (well-tooled team) and 5 seconds per label.
package labeling

import (
	"fmt"
	"time"
)

// Oracle answers label queries for testset examples.
type Oracle interface {
	// Label returns the ground-truth label of example i.
	Label(i int) (int, error)
}

// BatchOracle answers many label queries in one round trip. The engine's
// packed evaluation paths reveal labels in bulk — one LabelBatch per
// commit instead of one Label per example — which is also the realistic
// shape of a human labeling workflow (a task batch, not n interactive
// questions).
type BatchOracle interface {
	// LabelBatch returns the ground-truth labels of the given examples,
	// one per index, in order.
	LabelBatch(indices []int) ([]int, error)
}

// AsBatch adapts any Oracle to the batch interface. Oracles that already
// implement BatchOracle (like TruthOracle) are returned unchanged; others
// get a loop-based adapter, so existing single-label oracles keep working
// behind the batched reveal paths.
func AsBatch(o Oracle) BatchOracle {
	if b, ok := o.(BatchOracle); ok {
		return b
	}
	return loopBatch{o: o}
}

// loopBatch is the fallback adapter: one Label round trip per index.
type loopBatch struct{ o Oracle }

// LabelBatch implements BatchOracle.
func (a loopBatch) LabelBatch(indices []int) ([]int, error) {
	out := make([]int, len(indices))
	for k, i := range indices {
		y, err := a.o.Label(i)
		if err != nil {
			return nil, err
		}
		out[k] = y
	}
	return out, nil
}

// TruthOracle serves labels from a ground-truth slice: the simulation
// substitute for a human labeling team.
type TruthOracle struct {
	labels []int
}

// NewTruthOracle wraps ground-truth labels.
func NewTruthOracle(labels []int) *TruthOracle {
	return &TruthOracle{labels: labels}
}

// Label implements Oracle.
func (o *TruthOracle) Label(i int) (int, error) {
	if i < 0 || i >= len(o.labels) {
		return 0, fmt.Errorf("labeling: index %d out of range [0,%d)", i, len(o.labels))
	}
	return o.labels[i], nil
}

// LabelBatch implements BatchOracle natively: one bounds check per index,
// no per-label interface dispatch.
func (o *TruthOracle) LabelBatch(indices []int) ([]int, error) {
	out := make([]int, len(indices))
	for k, i := range indices {
		if i < 0 || i >= len(o.labels) {
			return nil, fmt.Errorf("labeling: index %d out of range [0,%d)", i, len(o.labels))
		}
		out[k] = o.labels[i]
	}
	return out, nil
}

// Ledger tracks cumulative labeling effort.
type Ledger struct {
	total     int
	perCommit []int
}

// RestoreLedger rebuilds a ledger from its per-commit charges (the total
// is re-derived), for crash recovery from a durable log.
func RestoreLedger(perCommit []int) *Ledger {
	l := &Ledger{perCommit: make([]int, len(perCommit))}
	copy(l.perCommit, perCommit)
	for _, n := range l.perCommit {
		l.total += n
	}
	return l
}

// Charge records n labels attributed to one commit.
func (l *Ledger) Charge(n int) {
	if n < 0 {
		n = 0
	}
	l.total += n
	l.perCommit = append(l.perCommit, n)
}

// Total returns the cumulative number of labels paid for.
func (l *Ledger) Total() int { return l.total }

// PerCommit returns the labels charged to each commit, in order.
func (l *Ledger) PerCommit() []int {
	out := make([]int, len(l.perCommit))
	copy(out, l.perCommit)
	return out
}

// MaxPerCommit returns the largest single-commit charge (the daily burden
// the paper's "3 hours a day" analysis cares about).
func (l *Ledger) MaxPerCommit() int {
	best := 0
	for _, n := range l.perCommit {
		if n > best {
			best = n
		}
	}
	return best
}

// Effort converts a label count to person-time at a given seconds-per-label
// rate. The paper quotes 2 s/label for a well-designed interface and
// 5 s/label as the conservative rate.
func Effort(labels int, secondsPerLabel float64) time.Duration {
	if labels < 0 || secondsPerLabel < 0 {
		return 0
	}
	return time.Duration(float64(labels) * secondsPerLabel * float64(time.Second))
}

// PersonDays converts a label count to 8-hour person-days at a rate.
func PersonDays(labels int, secondsPerLabel float64) float64 {
	return Effort(labels, secondsPerLabel).Hours() / 8
}
