// Package labeling implements the labeling workflow the paper's practicality
// analysis is built around (Sections 2.3 and 4.1.2): an Oracle that answers
// label requests (the stand-in for the human labeling team), and cost
// accounting in labels and person-time at the paper's quoted rates of
// 2 seconds (well-tooled team) and 5 seconds per label.
package labeling

import (
	"fmt"
	"time"
)

// Oracle answers label queries for testset examples.
type Oracle interface {
	// Label returns the ground-truth label of example i.
	Label(i int) (int, error)
}

// TruthOracle serves labels from a ground-truth slice: the simulation
// substitute for a human labeling team.
type TruthOracle struct {
	labels []int
}

// NewTruthOracle wraps ground-truth labels.
func NewTruthOracle(labels []int) *TruthOracle {
	return &TruthOracle{labels: labels}
}

// Label implements Oracle.
func (o *TruthOracle) Label(i int) (int, error) {
	if i < 0 || i >= len(o.labels) {
		return 0, fmt.Errorf("labeling: index %d out of range [0,%d)", i, len(o.labels))
	}
	return o.labels[i], nil
}

// Ledger tracks cumulative labeling effort.
type Ledger struct {
	total     int
	perCommit []int
}

// Charge records n labels attributed to one commit.
func (l *Ledger) Charge(n int) {
	if n < 0 {
		n = 0
	}
	l.total += n
	l.perCommit = append(l.perCommit, n)
}

// Total returns the cumulative number of labels paid for.
func (l *Ledger) Total() int { return l.total }

// PerCommit returns the labels charged to each commit, in order.
func (l *Ledger) PerCommit() []int {
	out := make([]int, len(l.perCommit))
	copy(out, l.perCommit)
	return out
}

// MaxPerCommit returns the largest single-commit charge (the daily burden
// the paper's "3 hours a day" analysis cares about).
func (l *Ledger) MaxPerCommit() int {
	best := 0
	for _, n := range l.perCommit {
		if n > best {
			best = n
		}
	}
	return best
}

// Effort converts a label count to person-time at a given seconds-per-label
// rate. The paper quotes 2 s/label for a well-designed interface and
// 5 s/label as the conservative rate.
func Effort(labels int, secondsPerLabel float64) time.Duration {
	if labels < 0 || secondsPerLabel < 0 {
		return 0
	}
	return time.Duration(float64(labels) * secondsPerLabel * float64(time.Second))
}

// PersonDays converts a label count to 8-hour person-days at a rate.
func PersonDays(labels int, secondsPerLabel float64) float64 {
	return Effort(labels, secondsPerLabel).Hours() / 8
}
