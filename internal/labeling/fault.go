package labeling

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Fault scripts one provider round trip of a FaultOracle. The zero value
// is a fully successful round.
type Fault struct {
	// Fail makes the round trip error. Err overrides the generic
	// injected error when set.
	Fail bool
	Err  error
	// Partial caps how many of the requested labels the round answers
	// (in request order). 0 on a successful round means answer
	// everything; PartialNone answers an empty 200.
	Partial int
	// Latency advances the injected clock across the round trip, so
	// latency histograms and breaker cooldowns can be exercised without
	// sleeping.
	Latency time.Duration
	// RetryIn attaches a Retry-After hint to a failed round when
	// HasRetryIn is set.
	RetryIn    time.Duration
	HasRetryIn bool
}

// PartialNone is the Fault.Partial value for a round that succeeds but
// answers no labels at all.
const PartialNone = -1

// ErrInjected is the default error of a scripted failure.
var ErrInjected = errors.New("labeling: injected provider fault")

// faultError carries a scripted Retry-After hint.
type faultError struct {
	err     error
	retryIn time.Duration
}

func (e *faultError) Error() string                     { return e.err.Error() }
func (e *faultError) Unwrap() error                     { return e.err }
func (e *faultError) RetryAfter() (time.Duration, bool) { return e.retryIn, true }

// FaultOracle is the deterministic fault-injection harness: a Provider
// transport that answers from an inner oracle through a scripted
// schedule of faults. Call k consumes schedule entry k; past the end of
// the schedule every round succeeds fully, so any finite schedule is a
// fault pattern that "eventually succeeds" — the shape the chaos
// equivalence property quantifies over.
type FaultOracle struct {
	mu       sync.Mutex
	inner    BatchOracle
	schedule []Fault
	calls    int
	// advance moves the injected clock; nil means latency is ignored.
	advance func(time.Duration)
}

// NewFaultOracle wraps an inner label source with a fault schedule.
// advance, when non-nil, receives each round's scripted Latency (wire it
// to the same fake clock the Resilient client reads).
func NewFaultOracle(inner Oracle, schedule []Fault, advance func(time.Duration)) *FaultOracle {
	return &FaultOracle{inner: AsBatch(inner), schedule: append([]Fault(nil), schedule...), advance: advance}
}

// Calls reports how many provider round trips have been made.
func (f *FaultOracle) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// RequestLabels implements Provider by consulting the schedule, then the
// inner oracle for whatever the scripted round allows through.
func (f *FaultOracle) RequestLabels(indices []int) (BatchResult, error) {
	f.mu.Lock()
	var fault Fault
	if f.calls < len(f.schedule) {
		fault = f.schedule[f.calls]
	}
	f.calls++
	advance := f.advance
	inner := f.inner
	f.mu.Unlock()

	if fault.Latency > 0 && advance != nil {
		advance(fault.Latency)
	}
	if fault.Fail {
		err := fault.Err
		if err == nil {
			err = ErrInjected
		}
		if fault.HasRetryIn {
			return BatchResult{}, &faultError{err: err, retryIn: fault.RetryIn}
		}
		return BatchResult{}, err
	}
	answer := indices
	switch {
	case fault.Partial == PartialNone:
		answer = nil
	case fault.Partial > 0 && fault.Partial < len(indices):
		answer = indices[:fault.Partial]
	case fault.Partial < PartialNone:
		return BatchResult{}, fmt.Errorf("labeling: fault schedule: invalid Partial %d", fault.Partial)
	}
	if len(answer) == 0 {
		return BatchResult{}, nil
	}
	labels, err := inner.LabelBatch(answer)
	if err != nil {
		return BatchResult{}, err
	}
	return BatchResult{Indices: append([]int(nil), answer...), Labels: labels}, nil
}
