package planner

// Sequential evaluation reveals a commit's labels in geometrically growing
// batches instead of all at once: the engine measures after every "look"
// and stops as soon as the verdict is forced. The schedule below is the
// shared contract between the packed and scalar evaluation paths (and
// durable replay): both derive their reveal boundaries from the same pure
// functions, so their look decisions — and therefore their label charges —
// are bit-identical.

// Default geometric look schedule: the first look reveals 64 labels, every
// later look doubles the cumulative total.
const (
	DefaultFirstLook  = 64
	DefaultLookGrowth = 2
)

// NextLook returns the next cumulative reveal target after `revealed`
// labels of `total` are already revealed: the smallest schedule point
// first, first*growth, first*growth^2, ... that exceeds revealed, capped
// at total. first and growth are clamped to the defaults when out of
// range (first < 1, growth < 2).
func NextLook(revealed, total, first, growth int) int {
	if first < 1 {
		first = DefaultFirstLook
	}
	if growth < 2 {
		growth = DefaultLookGrowth
	}
	t := first
	for t <= revealed && t < total {
		t *= growth
	}
	if t > total {
		t = total
	}
	if t <= revealed {
		// revealed already at or past every schedule point (including
		// total): nothing left to reveal.
		return revealed
	}
	return t
}

// LookSchedule materializes the full schedule for a testset of the given
// size: cumulative reveal targets m_1 < m_2 < ... < m_L = total. Empty
// when total <= 0.
func LookSchedule(total, first, growth int) []int {
	if total <= 0 {
		return nil
	}
	var out []int
	r := 0
	for r < total {
		r = NextLook(r, total, first, growth)
		out = append(out, r)
	}
	return out
}

// LookCount returns L, the number of looks the schedule has for the given
// testset size.
func LookCount(total, first, growth int) int {
	n := 0
	r := 0
	for r < total {
		r = NextLook(r, total, first, growth)
		n++
	}
	return n
}
