package planner

import (
	"sync"
	"testing"

	"github.com/easeml/ci/internal/adaptivity"
	"github.com/easeml/ci/internal/condlang"
	"github.com/easeml/ci/internal/core"
	"github.com/easeml/ci/internal/estimator"
	"github.com/easeml/ci/internal/interval"
	"github.com/easeml/ci/internal/script"
)

func testConfig(t *testing.T, condition string) *script.Config {
	t.Helper()
	cfg, err := script.New(condition, 0.99, interval.FPFree,
		script.Adaptivity{Kind: script.AdaptivityFull}, 8)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestPlanForConfigCachesIdenticalRequests(t *testing.T) {
	c := New(16)
	cfg := testConfig(t, "n - o > 0.02 +/- 0.05")
	p1, err := c.PlanForConfig(cfg, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.PlanForConfig(cfg, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Hits return a shallow copy carrying the caller's config; the shared
	// BaselinePlan pointer proves no recomputation happened.
	if p1.BaselinePlan != p2.BaselinePlan {
		t.Error("second identical request should reuse the cached plan")
	}
	st := c.Stats()
	if st.PlanHits != 1 || st.PlanMisses != 1 || st.PlanEntries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	// An equivalent but distinct Config value (same canonical content)
	// must also hit: the key is the canonical formula, not the pointer —
	// and the returned plan must carry the *caller's* config, not the
	// first requester's.
	cfg2 := testConfig(t, "n - o > 0.02 +/- 0.05")
	p3, err := c.PlanForConfig(cfg2, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p3.BaselinePlan != p1.BaselinePlan {
		t.Error("semantically identical config should hit the cache")
	}
	if p3.Config != cfg2 {
		t.Error("cache hit leaked another request's Config")
	}
}

func TestPlanForConfigDistinguishesParameters(t *testing.T) {
	c := New(16)
	cfg := testConfig(t, "n > 0.6 +/- 0.1")
	if _, err := c.PlanForConfig(cfg, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	// Different planner options -> different key.
	opts := core.DefaultOptions()
	opts.DisableOptimizations = true
	if _, err := c.PlanForConfig(cfg, opts); err != nil {
		t.Fatal(err)
	}
	// Different condition -> different key.
	if _, err := c.PlanForConfig(testConfig(t, "n > 0.7 +/- 0.1"), core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.PlanHits != 0 || st.PlanMisses != 3 || st.PlanEntries != 3 {
		t.Errorf("stats = %+v, want 0 hits / 3 misses / 3 entries", st)
	}
}

func TestPlanForConfigDoesNotCacheErrors(t *testing.T) {
	c := New(16)
	if _, err := c.PlanForConfig(nil, core.DefaultOptions()); err == nil {
		t.Fatal("nil config should error")
	}
	if st := c.Stats(); st.PlanEntries != 0 {
		t.Errorf("error was cached: %+v", st)
	}
}

func TestSampleSizeCaches(t *testing.T) {
	c := New(16)
	f, err := condlang.Parse("n - o > 0.02 +/- 0.05")
	if err != nil {
		t.Fatal(err)
	}
	opts := estimator.Options{Steps: 8, Adaptivity: adaptivity.Full, Strategy: estimator.PerVariable}
	p1, err := c.SampleSize(f, 0.01, opts)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.SampleSize(f, 0.01, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("second identical request should return the cached plan")
	}
	// Changing any option must miss.
	opts.Split = estimator.SplitEven
	if _, err := c.SampleSize(f, 0.01, opts); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.SizeHits != 1 || st.SizeMisses != 2 {
		t.Errorf("stats = %+v, want 1 hit / 2 misses", st)
	}
}

// TestConcurrentPlanAccess exercises the cache from many goroutines
// (meaningful under -race): a server fields plan queries concurrently.
func TestConcurrentPlanAccess(t *testing.T) {
	c := New(8)
	cfgs := []*script.Config{
		testConfig(t, "n > 0.6 +/- 0.1"),
		testConfig(t, "n - o > 0.02 +/- 0.05"),
		testConfig(t, "d < 0.1 +/- 0.05"),
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p, err := c.PlanForConfig(cfgs[(g+i)%len(cfgs)], core.DefaultOptions())
				if err != nil {
					panic(err)
				}
				if p.BaselinePlan == nil || p.BaselinePlan.N <= 0 {
					panic("cached plan is malformed")
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.PlanMisses < uint64(len(cfgs)) {
		t.Errorf("expected at least %d misses, got %+v", len(cfgs), st)
	}
	if st.PlanHits == 0 {
		t.Error("expected cache hits under repeated concurrent queries")
	}
}
