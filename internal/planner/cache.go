// Package planner provides a cached front to the sample-size planner: an
// LRU keyed by the canonical condition formula plus every parameter that
// can change the answer. Plans are pure functions of their inputs, so a
// CI server fielding heavy plan-query traffic (every commit hook asks for
// the current plan, dashboards poll it, and ad-hoc queries sweep parameter
// grids) should compute each distinct plan exactly once.
//
// Cached plans are shared pointers: callers must treat them as immutable,
// which every caller in this codebase already does (plans are pure
// read-only reports).
package planner

import (
	"github.com/easeml/ci/internal/adaptivity"
	"github.com/easeml/ci/internal/condlang"
	"github.com/easeml/ci/internal/core"
	"github.com/easeml/ci/internal/estimator"
	"github.com/easeml/ci/internal/interval"
	"github.com/easeml/ci/internal/lru"
	"github.com/easeml/ci/internal/patterns"
	"github.com/easeml/ci/internal/script"
)

// planKey identifies one core.PlanForConfig computation: the canonical
// formula text plus every knob of the config and planner options.
type planKey struct {
	formula     string
	delta       float64
	steps       int
	mode        interval.Mode
	adaptivity  script.AdaptivityKind
	disableOpts bool
	budget      patterns.DeltaBudget
	variance    patterns.VarianceBound
	disagree    float64
	coarseFine  float64
}

// sizeKey identifies one estimator.SampleSize computation.
type sizeKey struct {
	formula    string
	delta      float64
	steps      int
	adaptivity adaptivity.Kind
	strategy   estimator.Strategy
	split      estimator.Split
}

// hashPlanKey routes plan keys across cache shards. The formula plus the
// high-entropy scalars are enough spread; the full key still guards
// correctness inside the shard.
func hashPlanKey(k planKey) uint64 {
	h := lru.NewKeyHash().Str(k.formula).F64(k.delta).I(k.steps).
		I(int(k.mode)).I(int(k.adaptivity)).F64(k.disagree).F64(k.coarseFine).
		I(int(k.budget)).I(int(k.variance))
	if k.disableOpts {
		h = h.I(1)
	}
	return h.Sum()
}

func hashSizeKey(k sizeKey) uint64 {
	return lru.NewKeyHash().Str(k.formula).F64(k.delta).I(k.steps).
		I(int(k.adaptivity)).I(int(k.strategy)).I(int(k.split)).Sum()
}

// Cache memoizes planner and estimator results. Safe for concurrent use;
// both maps are sharded LRUs so heavy concurrent plan traffic (a server
// fielding batch plan queries across a worker pool) doesn't serialize on
// one mutex.
type Cache struct {
	plans *lru.Sharded[planKey, *core.Plan]
	sizes *lru.Sharded[sizeKey, *estimator.Plan]
}

// Stats is a point-in-time snapshot of the cache counters, shaped for the
// server's observability endpoint.
type Stats struct {
	PlanHits    uint64 `json:"plan_hits"`
	PlanMisses  uint64 `json:"plan_misses"`
	PlanEntries int    `json:"plan_entries"`
	SizeHits    uint64 `json:"size_hits"`
	SizeMisses  uint64 `json:"size_misses"`
	SizeEntries int    `json:"size_entries"`
}

// New returns a cache holding at most capacity entries per result kind
// (rounded up to the shard fan-out).
func New(capacity int) *Cache {
	return &Cache{
		plans: lru.NewSharded[planKey, *core.Plan](capacity, hashPlanKey),
		sizes: lru.NewSharded[sizeKey, *estimator.Plan](capacity, hashSizeKey),
	}
}

// Default is the shared process-wide cache the server and CLIs plan
// through. 4096 entries x two small structs is well under a megabyte.
var Default = New(4096)

// PlanForConfig is a caching core.PlanForConfig. Errors are not cached:
// invalid requests are cheap to reject again.
func (c *Cache) PlanForConfig(cfg *script.Config, opts core.Options) (*core.Plan, error) {
	if cfg == nil {
		return core.PlanForConfig(cfg, opts) // surface core's error
	}
	key := planKey{
		formula:     cfg.Condition.String(),
		delta:       cfg.Delta(),
		steps:       cfg.Steps,
		mode:        cfg.Mode,
		adaptivity:  cfg.Adaptivity.Kind,
		disableOpts: opts.DisableOptimizations,
		budget:      opts.Budget,
		variance:    opts.Variance,
		disagree:    opts.AssumedDisagreement,
		coarseFine:  opts.CoarseFineThreshold,
	}
	if p, ok := c.plans.Get(key); ok {
		// Shallow-copy with the caller's config: the key canonicalizes
		// away presentation details (original condition spelling, the
		// adaptivity routing email), so the cached plan's Config may
		// belong to a different request and must not leak across.
		cp := *p
		cp.Config = cfg
		return &cp, nil
	}
	p, err := core.PlanForConfig(cfg, opts)
	if err != nil {
		return nil, err
	}
	c.plans.Put(key, p)
	return p, nil
}

// SampleSize is a caching estimator.SampleSize.
func (c *Cache) SampleSize(f condlang.Formula, delta float64, opts estimator.Options) (*estimator.Plan, error) {
	key := sizeKey{
		formula:    f.String(),
		delta:      delta,
		steps:      opts.Steps,
		adaptivity: opts.Adaptivity,
		strategy:   opts.Strategy,
		split:      opts.Split,
	}
	if p, ok := c.sizes.Get(key); ok {
		return p, nil
	}
	p, err := estimator.SampleSize(f, delta, opts)
	if err != nil {
		return nil, err
	}
	c.sizes.Put(key, p)
	return p, nil
}

// Stats snapshots the hit/miss counters and sizes.
func (c *Cache) Stats() Stats {
	return Stats{
		PlanHits:    c.plans.Hits(),
		PlanMisses:  c.plans.Misses(),
		PlanEntries: c.plans.Len(),
		SizeHits:    c.sizes.Hits(),
		SizeMisses:  c.sizes.Misses(),
		SizeEntries: c.sizes.Len(),
	}
}

// Reset empties both caches and zeroes their counters (test hook).
func (c *Cache) Reset() {
	c.plans.Reset()
	c.sizes.Reset()
}
