package planner

import (
	"reflect"
	"testing"
)

func TestNextLook(t *testing.T) {
	cases := []struct {
		revealed, total, first, growth int
		want                           int
	}{
		{0, 600, 64, 2, 64},
		{64, 600, 64, 2, 128},
		{128, 600, 64, 2, 256},
		{256, 600, 64, 2, 512},
		{512, 600, 64, 2, 600},   // last geometric point capped at total
		{600, 600, 64, 2, 600},   // nothing left: target == revealed
		{700, 600, 64, 2, 700},   // already past total (over-revealed)
		{0, 40, 64, 2, 40},       // first look larger than the testset
		{0, 600, 100, 3, 100},    // custom schedule
		{100, 600, 100, 3, 300},  // 100 * 3
		{300, 600, 100, 3, 600},  // 900 capped
		{0, 600, 0, 0, 64},       // out-of-range params clamp to defaults
		{63, 600, -1, 1, 64},     // growth < 2 clamps to 2
		{1, 600, 64, 2, 64},      // mid-chunk reveal still lands on schedule
		{65, 600, 64, 2, 128},
	}
	for _, c := range cases {
		if got := NextLook(c.revealed, c.total, c.first, c.growth); got != c.want {
			t.Errorf("NextLook(%d, %d, %d, %d) = %d, want %d",
				c.revealed, c.total, c.first, c.growth, got, c.want)
		}
	}
}

func TestNextLookMonotone(t *testing.T) {
	// From any starting point the schedule strictly advances until total,
	// so the sequential loop can never spin.
	for _, total := range []int{1, 63, 64, 65, 600, 2048} {
		r, steps := 0, 0
		for r < total {
			next := NextLook(r, total, 64, 2)
			if next <= r {
				t.Fatalf("total=%d: NextLook(%d) = %d did not advance", total, r, next)
			}
			r = next
			if steps++; steps > 64 {
				t.Fatalf("total=%d: schedule does not terminate", total)
			}
		}
		if r != total {
			t.Fatalf("total=%d: schedule ends at %d", total, r)
		}
	}
}

func TestLookSchedule(t *testing.T) {
	if got, want := LookSchedule(600, 64, 2), []int{64, 128, 256, 512, 600}; !reflect.DeepEqual(got, want) {
		t.Errorf("LookSchedule(600) = %v, want %v", got, want)
	}
	if got, want := LookSchedule(64, 64, 2), []int{64}; !reflect.DeepEqual(got, want) {
		t.Errorf("LookSchedule(64) = %v, want %v", got, want)
	}
	if got := LookSchedule(0, 64, 2); got != nil {
		t.Errorf("LookSchedule(0) = %v, want nil", got)
	}
	for _, total := range []int{1, 65, 600, 5000} {
		sched := LookSchedule(total, 64, 2)
		if len(sched) != LookCount(total, 64, 2) {
			t.Errorf("total=%d: LookCount %d != len(schedule) %d",
				total, LookCount(total, 64, 2), len(sched))
		}
		if sched[len(sched)-1] != total {
			t.Errorf("total=%d: schedule must end at total, got %v", total, sched)
		}
	}
}
