package data

import (
	"fmt"
	"math/rand"
)

// EmotionClasses are the four labels of SemEval-2019 Task 3 (EmoContext),
// the competition of the paper's Section 5.2 case study.
var EmotionClasses = []string{"Happy", "Sad", "Angry", "Others"}

// EmotionConfig parameterizes the synthetic emotion corpus that substitutes
// for the (unshippable) SemEval data. Documents are bags of words drawn
// from class-conditional unigram distributions with a shared "background"
// vocabulary; Overlap controls how much the classes share, i.e. the Bayes
// error of the task.
type EmotionConfig struct {
	// Vocab is the vocabulary size (feature dimension).
	Vocab int
	// DocLen is the mean words per utterance.
	DocLen int
	// Overlap in [0,1) is the probability a word comes from the background
	// distribution instead of the class's own distribution.
	Overlap float64
	// OthersBias is the extra prior mass on the majority class "Others"
	// (the real task is skewed toward Others).
	OthersBias float64
}

// DefaultEmotionConfig matches the difficulty regime of the paper's case
// study: models trained on it land in the 0.85-0.93 accuracy band with
// single-digit disagreement between consecutive models.
func DefaultEmotionConfig() EmotionConfig {
	return EmotionConfig{Vocab: 300, DocLen: 12, Overlap: 0.55, OthersBias: 0.25}
}

// EmotionCorpus generates n labeled utterances as bag-of-words count
// vectors over the configured vocabulary.
func EmotionCorpus(n int, cfg EmotionConfig, seed int64) (*Dataset, error) {
	if n < len(EmotionClasses) {
		return nil, fmt.Errorf("data: corpus size %d below class count", n)
	}
	if cfg.Vocab < 4*len(EmotionClasses) {
		return nil, fmt.Errorf("data: vocabulary %d too small", cfg.Vocab)
	}
	if cfg.DocLen < 1 {
		return nil, fmt.Errorf("data: document length %d invalid", cfg.DocLen)
	}
	if cfg.Overlap < 0 || cfg.Overlap >= 1 {
		return nil, fmt.Errorf("data: overlap %v outside [0,1)", cfg.Overlap)
	}
	if cfg.OthersBias < 0 || cfg.OthersBias >= 1 {
		return nil, fmt.Errorf("data: others bias %v outside [0,1)", cfg.OthersBias)
	}
	rng := rand.New(rand.NewSource(seed))
	k := len(EmotionClasses)

	// Class-conditional unigram distributions: each class owns a slice of
	// the vocabulary it prefers; the background is uniform over everything.
	classDist := make([][]float64, k)
	slice := cfg.Vocab / k
	for c := 0; c < k; c++ {
		w := make([]float64, cfg.Vocab)
		total := 0.0
		for v := 0; v < cfg.Vocab; v++ {
			weight := 0.1
			if v >= c*slice && v < (c+1)*slice {
				weight = 1.0
			}
			// Perturb so classes are not perfectly symmetric.
			weight *= 0.5 + rng.Float64()
			w[v] = weight
			total += weight
		}
		for v := range w {
			w[v] /= total
		}
		classDist[c] = cumulative(w)
	}
	background := make([]float64, cfg.Vocab)
	for v := range background {
		background[v] = 1.0 / float64(cfg.Vocab)
	}
	bgCum := cumulative(background)

	ds := &Dataset{Name: "emotion", Classes: k}
	for i := 0; i < n; i++ {
		// Skewed class prior: Others (index k-1) gets extra mass.
		var y int
		if rng.Float64() < cfg.OthersBias {
			y = k - 1
		} else {
			y = rng.Intn(k)
		}
		x := make([]float64, cfg.Vocab)
		// Poisson-ish doc length: DocLen +/- up to half.
		words := cfg.DocLen + rng.Intn(cfg.DocLen+1) - cfg.DocLen/2
		if words < 1 {
			words = 1
		}
		for w := 0; w < words; w++ {
			var v int
			if rng.Float64() < cfg.Overlap {
				v = sampleCumulative(bgCum, rng)
			} else {
				v = sampleCumulative(classDist[y], rng)
			}
			x[v]++
		}
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, y)
	}
	return ds, nil
}

// cumulative converts a probability vector to its cumulative form.
func cumulative(p []float64) []float64 {
	out := make([]float64, len(p))
	sum := 0.0
	for i, v := range p {
		sum += v
		out[i] = sum
	}
	// Guard against rounding: the last entry must reach 1.
	out[len(out)-1] = 1
	return out
}

// sampleCumulative draws an index from a cumulative distribution.
func sampleCumulative(cum []float64, rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
