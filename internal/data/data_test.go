package data

import (
	"testing"
)

func TestBlobsShape(t *testing.T) {
	ds, err := Blobs(300, 3, 5, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 300 || ds.Classes != 3 || len(ds.X[0]) != 5 {
		t.Errorf("shape wrong: len=%d classes=%d dim=%d", ds.Len(), ds.Classes, len(ds.X[0]))
	}
	// Balanced classes by construction.
	counts := make([]int, 3)
	for _, y := range ds.Y {
		counts[y]++
	}
	for c, n := range counts {
		if n != 100 {
			t.Errorf("class %d count = %d, want 100", c, n)
		}
	}
}

func TestBlobsDeterministic(t *testing.T) {
	a, err := Blobs(50, 2, 3, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Blobs(50, 2, 3, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.X {
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				t.Fatal("same seed produced different data")
			}
		}
	}
	c, err := Blobs(50, 2, 3, 0.5, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.X {
		for j := range a.X[i] {
			if a.X[i][j] != c.X[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestBlobsErrors(t *testing.T) {
	if _, err := Blobs(1, 2, 3, 0.5, 0); err == nil {
		t.Error("n < classes should fail")
	}
	if _, err := Blobs(10, 1, 3, 0.5, 0); err == nil {
		t.Error("classes < 2 should fail")
	}
	if _, err := Blobs(10, 2, 0, 0.5, 0); err == nil {
		t.Error("dim < 1 should fail")
	}
	if _, err := Blobs(10, 2, 3, 0, 0); err == nil {
		t.Error("spread <= 0 should fail")
	}
}

func TestSplit(t *testing.T) {
	ds, err := Blobs(100, 2, 3, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := ds.Split(0.7, 11)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 70 || test.Len() != 30 {
		t.Errorf("split sizes = %d/%d", train.Len(), test.Len())
	}
	// No example lost or duplicated: total multiset of labels preserved.
	sum := 0
	for _, y := range ds.Y {
		sum += y
	}
	sum2 := 0
	for _, y := range train.Y {
		sum2 += y
	}
	for _, y := range test.Y {
		sum2 += y
	}
	if sum != sum2 {
		t.Error("split lost or duplicated examples")
	}
	// Deterministic given seed.
	train2, _, err := ds.Split(0.7, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range train.Y {
		if train.Y[i] != train2.Y[i] {
			t.Fatal("same-seed split differs")
		}
	}
}

func TestSplitErrors(t *testing.T) {
	ds, _ := Blobs(10, 2, 2, 0.5, 0)
	if _, _, err := ds.Split(0, 0); err == nil {
		t.Error("frac 0 should fail")
	}
	if _, _, err := ds.Split(1, 0); err == nil {
		t.Error("frac 1 should fail")
	}
	small, _ := Blobs(2, 2, 2, 0.5, 0)
	if _, _, err := small.Split(0.01, 0); err == nil {
		t.Error("empty-side split should fail")
	}
}

func TestSubset(t *testing.T) {
	ds, _ := Blobs(20, 2, 2, 0.5, 0)
	sub, err := ds.Subset(5)
	if err != nil || sub.Len() != 5 {
		t.Errorf("Subset = %v, %v", sub.Len(), err)
	}
	if _, err := ds.Subset(0); err == nil {
		t.Error("subset 0 should fail")
	}
	if _, err := ds.Subset(21); err == nil {
		t.Error("oversized subset should fail")
	}
}

func TestValidate(t *testing.T) {
	bad := &Dataset{X: [][]float64{{1}}, Y: []int{0, 1}, Classes: 2}
	if err := bad.Validate(); err == nil {
		t.Error("row/label mismatch should fail")
	}
	bad = &Dataset{X: [][]float64{{1}, {2, 3}}, Y: []int{0, 1}, Classes: 2}
	if err := bad.Validate(); err == nil {
		t.Error("ragged rows should fail")
	}
	bad = &Dataset{X: [][]float64{{1}}, Y: []int{5}, Classes: 2}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range label should fail")
	}
	bad = &Dataset{Classes: 2}
	if err := bad.Validate(); err == nil {
		t.Error("empty dataset should fail")
	}
	bad = &Dataset{X: [][]float64{{1}}, Y: []int{0}, Classes: 1}
	if err := bad.Validate(); err == nil {
		t.Error("single class should fail")
	}
}

func TestEmotionCorpus(t *testing.T) {
	ds, err := EmotionCorpus(2000, DefaultEmotionConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Classes != 4 {
		t.Errorf("classes = %d, want 4", ds.Classes)
	}
	// Skew: Others (class 3) must be the largest class.
	counts := make([]int, 4)
	for _, y := range ds.Y {
		counts[y]++
	}
	for c := 0; c < 3; c++ {
		if counts[3] <= counts[c] {
			t.Errorf("Others (%d) not the majority vs class %d (%d)", counts[3], c, counts[c])
		}
	}
	// Count features are non-negative and documents are non-empty.
	for i, x := range ds.X {
		total := 0.0
		for _, v := range x {
			if v < 0 {
				t.Fatalf("negative count at doc %d", i)
			}
			total += v
		}
		if total == 0 {
			t.Fatalf("empty document %d", i)
		}
	}
}

func TestEmotionCorpusDeterministic(t *testing.T) {
	a, err := EmotionCorpus(100, DefaultEmotionConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EmotionCorpus(100, DefaultEmotionConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("same-seed corpus differs")
		}
	}
}

func TestEmotionCorpusErrors(t *testing.T) {
	cfg := DefaultEmotionConfig()
	if _, err := EmotionCorpus(2, cfg, 0); err == nil {
		t.Error("tiny corpus should fail")
	}
	bad := cfg
	bad.Vocab = 3
	if _, err := EmotionCorpus(100, bad, 0); err == nil {
		t.Error("tiny vocab should fail")
	}
	bad = cfg
	bad.DocLen = 0
	if _, err := EmotionCorpus(100, bad, 0); err == nil {
		t.Error("doc len 0 should fail")
	}
	bad = cfg
	bad.Overlap = 1
	if _, err := EmotionCorpus(100, bad, 0); err == nil {
		t.Error("overlap 1 should fail")
	}
	bad = cfg
	bad.OthersBias = -0.1
	if _, err := EmotionCorpus(100, bad, 0); err == nil {
		t.Error("negative bias should fail")
	}
}

func TestCumulativeSampling(t *testing.T) {
	// The corpus generator's word sampler must respect the distribution:
	// with overlap 0 almost all words of a class-c document come from the
	// class's own vocabulary slice.
	cfg := EmotionConfig{Vocab: 400, DocLen: 50, Overlap: 0, OthersBias: 0}
	ds, err := EmotionCorpus(400, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	slice := cfg.Vocab / 4
	for i, x := range ds.X {
		c := ds.Y[i]
		inSlice, total := 0.0, 0.0
		for v, cnt := range x {
			total += cnt
			if v >= c*slice && v < (c+1)*slice {
				inSlice += cnt
			}
		}
		// Own-slice words carry weight 1.0 vs 0.1 background (both
		// perturbed), so ~70%+ of tokens should land in the slice.
		if inSlice/total < 0.5 {
			t.Fatalf("doc %d (class %d): only %.2f in-class mass", i, c, inSlice/total)
		}
	}
}
