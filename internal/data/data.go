// Package data provides the dataset substrate for the reproduction: seeded
// synthetic generators that stand in for the paper's evaluation assets
// (infinite MNIST for Figure 3/4, the SemEval-2019 Task 3 emotion corpus
// for Figures 5/6), plus deterministic splitting and sampling utilities.
//
// All generators are fully deterministic given their seed, so every
// experiment in this repository is reproducible bit-for-bit.
package data

import (
	"fmt"
	"math/rand"
)

// Dataset is an in-memory supervised dataset with dense feature vectors.
type Dataset struct {
	// Name identifies the dataset in reports.
	Name string
	// X holds one feature vector per example.
	X [][]float64
	// Y holds the class label (0..Classes-1) per example.
	Y []int
	// Classes is the number of distinct labels.
	Classes int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Y) }

// Validate checks internal consistency.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("data: %d feature rows but %d labels", len(d.X), len(d.Y))
	}
	if d.Classes < 2 {
		return fmt.Errorf("data: need at least 2 classes, got %d", d.Classes)
	}
	if len(d.Y) == 0 {
		return fmt.Errorf("data: empty dataset")
	}
	dim := len(d.X[0])
	for i, x := range d.X {
		if len(x) != dim {
			return fmt.Errorf("data: row %d has %d features, row 0 has %d", i, len(x), dim)
		}
	}
	for i, y := range d.Y {
		if y < 0 || y >= d.Classes {
			return fmt.Errorf("data: label %d out of range at %d", y, i)
		}
	}
	return nil
}

// Split partitions the dataset into a training prefix and testing suffix
// after a deterministic shuffle with the given seed.
func (d *Dataset) Split(trainFrac float64, seed int64) (train, test *Dataset, err error) {
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	if !(trainFrac > 0 && trainFrac < 1) {
		return nil, nil, fmt.Errorf("data: trainFrac must be in (0,1), got %v", trainFrac)
	}
	idx := rand.New(rand.NewSource(seed)).Perm(d.Len())
	cut := int(float64(d.Len()) * trainFrac)
	if cut == 0 || cut == d.Len() {
		return nil, nil, fmt.Errorf("data: split of %d examples at %v leaves an empty side", d.Len(), trainFrac)
	}
	pick := func(ids []int) *Dataset {
		out := &Dataset{Name: d.Name, Classes: d.Classes}
		for _, i := range ids {
			out.X = append(out.X, d.X[i])
			out.Y = append(out.Y, d.Y[i])
		}
		return out
	}
	return pick(idx[:cut]), pick(idx[cut:]), nil
}

// Subset returns the first n examples (used to grow training sets across
// incremental commits).
func (d *Dataset) Subset(n int) (*Dataset, error) {
	if n <= 0 || n > d.Len() {
		return nil, fmt.Errorf("data: subset size %d out of range (len %d)", n, d.Len())
	}
	return &Dataset{Name: d.Name, Classes: d.Classes, X: d.X[:n], Y: d.Y[:n]}, nil
}

// Blobs generates a Gaussian-blob classification task: `classes` isotropic
// clusters in `dim` dimensions with the given within-cluster spread. Larger
// spread makes the task harder.
func Blobs(n, classes, dim int, spread float64, seed int64) (*Dataset, error) {
	if n < classes || classes < 2 || dim < 1 {
		return nil, fmt.Errorf("data: invalid blob shape n=%d classes=%d dim=%d", n, classes, dim)
	}
	if spread <= 0 {
		return nil, fmt.Errorf("data: spread must be positive, got %v", spread)
	}
	rng := rand.New(rand.NewSource(seed))
	// Class centers on the unit hypercube corners-ish, scaled apart.
	centers := make([][]float64, classes)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = rng.NormFloat64() * 2
		}
	}
	ds := &Dataset{Name: "blobs", Classes: classes}
	for i := 0; i < n; i++ {
		c := i % classes
		x := make([]float64, dim)
		for j := range x {
			x[j] = centers[c][j] + rng.NormFloat64()*spread
		}
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, c)
	}
	return ds, nil
}
