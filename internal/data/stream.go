package data

import (
	"fmt"
	"math/rand"
)

// Stream is an unbounded, deterministic example source — the stand-in for
// the paper's "infinite MNIST" (Bottou): active labeling and testset
// rotation both assume fresh samples from a stationary distribution are
// cheap to draw, and Stream provides exactly that. Examples are generated
// on demand; Take(n) consumes the next n.
type Stream struct {
	name    string
	classes int
	gen     func(rng *rand.Rand, class int) []float64
	rng     *rand.Rand
	drawn   int
}

// NewStream builds a stream over `classes` labels whose feature vectors
// come from gen (invoked with a per-stream RNG and the example's class).
func NewStream(name string, classes int, seed int64, gen func(rng *rand.Rand, class int) []float64) (*Stream, error) {
	if classes < 2 {
		return nil, fmt.Errorf("data: need >= 2 classes, got %d", classes)
	}
	if gen == nil {
		return nil, fmt.Errorf("data: nil generator")
	}
	return &Stream{
		name:    name,
		classes: classes,
		gen:     gen,
		rng:     rand.New(rand.NewSource(seed)),
	}, nil
}

// NewBlobStream is a convenience Stream over Gaussian class blobs, matching
// the Blobs dataset generator.
func NewBlobStream(classes, dim int, spread float64, seed int64) (*Stream, error) {
	if dim < 1 || spread <= 0 {
		return nil, fmt.Errorf("data: invalid blob stream dim=%d spread=%v", dim, spread)
	}
	centers := make([][]float64, classes)
	centerRng := rand.New(rand.NewSource(seed))
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = centerRng.NormFloat64() * 2
		}
	}
	return NewStream("blob-stream", classes, seed+1, func(rng *rand.Rand, class int) []float64 {
		x := make([]float64, dim)
		for j := range x {
			x[j] = centers[class][j] + rng.NormFloat64()*spread
		}
		return x
	})
}

// Drawn returns how many examples the stream has produced.
func (s *Stream) Drawn() int { return s.drawn }

// Next produces one labeled example.
func (s *Stream) Next() (x []float64, y int) {
	y = s.rng.Intn(s.classes)
	x = s.gen(s.rng, y)
	s.drawn++
	return x, y
}

// Take materializes the next n examples as a Dataset (e.g. a fresh testset
// for rotation).
func (s *Stream) Take(n int) (*Dataset, error) {
	if n < 1 {
		return nil, fmt.Errorf("data: take %d", n)
	}
	ds := &Dataset{Name: s.name, Classes: s.classes}
	for i := 0; i < n; i++ {
		x, y := s.Next()
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, y)
	}
	return ds, nil
}
