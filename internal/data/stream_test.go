package data

import (
	"math/rand"
	"testing"
)

func TestStreamProducesValidDatasets(t *testing.T) {
	s, err := NewBlobStream(3, 4, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := s.Take(300)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 300 || s.Drawn() != 300 {
		t.Errorf("len=%d drawn=%d", ds.Len(), s.Drawn())
	}
	// Successive takes are fresh draws, not repeats.
	ds2, err := s.Take(300)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range ds.X {
		for j := range ds.X[i] {
			if ds.X[i][j] != ds2.X[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("stream repeated itself")
	}
	if s.Drawn() != 600 {
		t.Errorf("drawn = %d", s.Drawn())
	}
}

func TestStreamDeterministicAcrossInstances(t *testing.T) {
	a, err := NewBlobStream(2, 3, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBlobStream(2, 3, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		xa, ya := a.Next()
		xb, yb := b.Next()
		if ya != yb {
			t.Fatal("labels diverged")
		}
		for j := range xa {
			if xa[j] != xb[j] {
				t.Fatal("features diverged")
			}
		}
	}
}

func TestStreamValidation(t *testing.T) {
	if _, err := NewStream("x", 1, 0, func(*rand.Rand, int) []float64 { return nil }); err == nil {
		t.Error("classes < 2 should fail")
	}
	if _, err := NewStream("x", 2, 0, nil); err == nil {
		t.Error("nil generator should fail")
	}
	if _, err := NewBlobStream(2, 0, 0.5, 0); err == nil {
		t.Error("dim 0 should fail")
	}
	if _, err := NewBlobStream(2, 2, 0, 0); err == nil {
		t.Error("spread 0 should fail")
	}
	s, _ := NewBlobStream(2, 2, 0.5, 0)
	if _, err := s.Take(0); err == nil {
		t.Error("take 0 should fail")
	}
}

func TestStreamFeedsTestsetRotation(t *testing.T) {
	// The workflow the stream exists for: draw a testset, spend it, draw a
	// fresh one. Class balance should be roughly uniform.
	s, err := NewBlobStream(4, 2, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := s.Take(4000)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for _, y := range ds.Y {
		counts[y]++
	}
	for c, n := range counts {
		if n < 800 || n > 1200 {
			t.Errorf("class %d count = %d, want ~1000", c, n)
		}
	}
}
