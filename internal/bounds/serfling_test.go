package bounds

import (
	"math"
	"testing"
)

func TestSerflingEpsilon(t *testing.T) {
	// Exhausting the population leaves no uncertainty.
	if eps, err := SerflingEpsilon(500, 500, 0.05); err != nil || eps != 0 {
		t.Errorf("m == total: eps = %v, err = %v", eps, err)
	}
	// The sampling-fraction factor makes Serfling strictly sharper than
	// Hoeffding for any m > 1, and the two agree at m = 1.
	for _, m := range []int{1, 10, 100, 499} {
		eps, err := SerflingEpsilon(m, 500, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		hoeffding := math.Sqrt(math.Log(2/0.05) / (2 * float64(m)))
		if eps > hoeffding+1e-12 {
			t.Errorf("m=%d: Serfling %v looser than Hoeffding %v", m, eps, hoeffding)
		}
		if m > 1 && eps >= hoeffding {
			t.Errorf("m=%d: Serfling %v not sharper than Hoeffding %v", m, eps, hoeffding)
		}
	}
	// Monotone: more samples, tighter bound.
	prev := math.Inf(1)
	for _, m := range []int{1, 2, 4, 64, 256, 499, 500} {
		eps, err := SerflingEpsilon(m, 500, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if eps >= prev {
			t.Errorf("m=%d: eps %v did not shrink from %v", m, eps, prev)
		}
		prev = eps
	}
	for _, bad := range []struct{ m, total int }{{0, 10}, {11, 10}, {-1, 10}} {
		if _, err := SerflingEpsilon(bad.m, bad.total, 0.05); err == nil {
			t.Errorf("m=%d total=%d: want error", bad.m, bad.total)
		}
	}
	for _, delta := range []float64{0, 1, -0.1, math.NaN()} {
		if _, err := SerflingEpsilon(10, 100, delta); err == nil {
			t.Errorf("delta=%v: want error", delta)
		}
	}
}

func TestGeometricDelta(t *testing.T) {
	// The per-look budgets sum to strictly less than the total budget over
	// any horizon, which is what lets the sequential evaluation union-bound
	// over an unknown number of looks.
	const delta = 0.05
	sum := 0.0
	for look := 1; look <= 40; look++ {
		d, err := GeometricDelta(delta, look)
		if err != nil {
			t.Fatal(err)
		}
		if d <= 0 || d >= delta {
			t.Errorf("look %d: delta %v out of range", look, d)
		}
		sum += d
	}
	if sum >= delta {
		t.Errorf("spent %v of budget %v", sum, delta)
	}
	if d, _ := GeometricDelta(0.5, 1); d != 0.25 {
		t.Errorf("GeometricDelta(0.5, 1) = %v, want 0.25", d)
	}
	if _, err := GeometricDelta(0.05, 0); err == nil {
		t.Error("look 0: want error")
	}
	if _, err := GeometricDelta(1.5, 1); err == nil {
		t.Error("delta 1.5: want error")
	}
}
