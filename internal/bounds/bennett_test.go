package bounds

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBennettH(t *testing.T) {
	if got := BennettH(0); got != 0 {
		t.Errorf("h(0) = %v, want 0", got)
	}
	if got := BennettH(-1); got != 0 {
		t.Errorf("h(-1) = %v, want 0 (clamped)", got)
	}
	// h(0.1) = 1.1 ln 1.1 - 0.1.
	want := 1.1*math.Log(1.1) - 0.1
	if got := BennettH(0.1); math.Abs(got-want) > 1e-15 {
		t.Errorf("h(0.1) = %v, want %v", got, want)
	}
}

func TestBennettHIncreasingConvex(t *testing.T) {
	prev, prevSlope := 0.0, 0.0
	for u := 0.01; u < 20; u += 0.01 {
		v := BennettH(u)
		if v <= prev {
			t.Fatalf("h not increasing at u=%v", u)
		}
		slope := v - prev
		if slope+1e-12 < prevSlope {
			t.Fatalf("h not convex at u=%v", u)
		}
		prev, prevSlope = v, slope
	}
}

func TestBennettPaperSampleSizes(t *testing.T) {
	// Section 4.1.1: p=0.1, 1-delta=0.9999, epsilon=0.01, H=32:
	// "29K samples for 32 non-adaptive steps" via
	// n = (ln H - ln(delta/4)) / (p h(eps/p)),
	// i.e. one-sided Bennett with delta' = delta/(4H).
	delta := 0.0001
	n, err := BennettSampleSizeOneSided(0.1, 0.01, delta/(4*32))
	if err != nil {
		t.Fatal(err)
	}
	if n < 29046 || n > 29049 {
		t.Errorf("Pattern-1 non-adaptive H=32 = %d, want ~29048 (\"29K\")", n)
	}

	// "67K samples for 32 fully-adaptive steps": delta' = delta/(4*2^32).
	n, err = BennettSampleSizeOneSided(0.1, 0.01, delta/(4*math.Pow(2, 32)))
	if err != nil {
		t.Fatal(err)
	}
	if n < 67700 || n > 67710 {
		t.Errorf("Pattern-1 fully adaptive H=32 = %d, want ~67705 (\"67K\")", n)
	}

	// Section 4.1.2 active labeling: per-commit labels
	// n * p with n = -ln(delta/4) / (p h(eps/p)) ~= 2188.
	nf := math.Log(4/delta) / (0.1 * BennettH(0.01/0.1))
	labels := nf * 0.1
	if labels < 2188 || labels > 2190 {
		t.Errorf("active labeling per-commit labels = %v, want ~2188.8", labels)
	}
}

func TestBennettSemEvalNumbers(t *testing.T) {
	// Section 5.2 / Figure 5: H=7, delta=0.002, p=0.1.
	// Non-adaptive conditions I & II: eps=0.02, one-sided Bennett at
	// delta' = (delta/2)/H -> 4713 samples.
	delta := 0.002
	n, err := BennettSampleSizeOneSided(0.1, 0.02, delta/2/7)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4713 {
		t.Errorf("SemEval non-adaptive sample size = %d, want 4713", n)
	}

	// Fully adaptive at eps=0.022: delta' = (delta/2)/2^7 -> 5204 samples.
	n, err = BennettSampleSizeOneSided(0.1, 0.022, delta/2/math.Pow(2, 7))
	if err != nil {
		t.Fatal(err)
	}
	if n != 5204 {
		t.Errorf("SemEval adaptive eps=0.022 sample size = %d, want 5204", n)
	}

	// Fully adaptive at eps=0.02 "would be more than 6K".
	n, err = BennettSampleSizeOneSided(0.1, 0.02, delta/2/math.Pow(2, 7))
	if err != nil {
		t.Fatal(err)
	}
	if n <= 6000 {
		t.Errorf("SemEval adaptive eps=0.02 sample size = %d, want > 6000", n)
	}
}

func TestBennettTailMatchesSampleSize(t *testing.T) {
	p, eps, delta := 0.1, 0.01, 0.001
	n, err := BennettSampleSize(p, eps, delta)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := BennettTail(n, float64(n)*p, 1, eps)
	if err != nil {
		t.Fatal(err)
	}
	if tail > delta {
		t.Errorf("tail at returned n = %v > delta %v", tail, delta)
	}
	tailPrev, err := BennettTail(n-1, float64(n-1)*p, 1, eps)
	if err != nil {
		t.Fatal(err)
	}
	if tailPrev <= delta {
		t.Errorf("tail at n-1 = %v <= delta %v; n not minimal", tailPrev, delta)
	}
}

func TestBennettEpsilonInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 0.02 + rng.Float64()*0.5
		delta := math.Pow(10, -1-3*rng.Float64())
		n := 500 + rng.Intn(100000)
		eps, err := BennettEpsilon(n, p, delta)
		if err != nil || eps <= 0 {
			return false
		}
		// Plugging the achieved epsilon back must need <= n samples.
		n2, err := BennettSampleSize(p, eps, delta)
		if err != nil {
			return false
		}
		return n2 <= n+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBennettBeatsHoeffdingSmallVariance(t *testing.T) {
	// The whole point of Pattern 1: to estimate n-o (a range-2 variable)
	// with p = 0.1 and epsilon = 0.01, Bennett needs roughly 10x fewer
	// samples than the Hoeffding baseline (Section 4.1.1: "10x fewer than
	// the baseline (Figure 2)").
	h, err := HoeffdingSampleSizeTwoSided(2, 0.01, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BennettSampleSize(0.1, 0.01, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(h) / float64(b)
	if ratio < 8 || ratio > 12 {
		t.Errorf("Hoeffding/Bennett ratio = %v, want ~10x", ratio)
	}
}

func TestBernsteinComparableToBennett(t *testing.T) {
	// Bernstein is slightly looser than Bennett but same regime.
	b, err := BennettSampleSize(0.1, 0.01, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	bern, err := BernsteinSampleSize(0.1, 0.01, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	if bern < b {
		t.Errorf("Bernstein %d < Bennett %d; Bennett should be tighter", bern, b)
	}
	if float64(bern) > 1.2*float64(b) {
		t.Errorf("Bernstein %d unexpectedly loose vs Bennett %d", bern, b)
	}
}

func TestBennettErrors(t *testing.T) {
	if _, err := BennettSampleSize(0, 0.01, 0.1); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := BennettSampleSize(1.5, 0.01, 0.1); err == nil {
		t.Error("p>1 should fail")
	}
	if _, err := BennettSampleSize(0.1, 0, 0.1); err == nil {
		t.Error("epsilon=0 should fail")
	}
	if _, err := BennettSampleSize(0.1, 0.01, 0); err == nil {
		t.Error("delta=0 should fail")
	}
	if _, err := BennettTail(0, 1, 1, 0.1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := BennettEpsilon(-5, 0.1, 0.1); err == nil {
		t.Error("negative n should fail")
	}
}
