package bounds

import (
	"math"
	"math/rand"
	"testing"
)

// refWorstCase is the straightforward serial grid search (the pre-sweep
// ExactWorstCaseFailure shape): same evaluation points, same argmax scan,
// no memo, no worker pool. The parallel grid ablation must reproduce it
// bit-for-bit because it evaluates the identical points and reduces them in
// the identical order.
func refWorstCase(n int, epsilon, pLo, pHi float64) (float64, error) {
	const coarse = 64
	worst := 0.0
	worstP := pLo
	step := (pHi - pLo) / coarse
	if step == 0 {
		return ExactFailureProb(n, pLo, epsilon)
	}
	for i := 0; i <= coarse; i++ {
		p := pLo + float64(i)*step
		f, err := ExactFailureProb(n, p, epsilon)
		if err != nil {
			return 0, err
		}
		if f > worst {
			worst, worstP = f, p
		}
	}
	lo := math.Max(pLo, worstP-step)
	hi := math.Min(pHi, worstP+step)
	fineSteps := 4 * n / coarse
	if fineSteps < 32 {
		fineSteps = 32
	}
	if fineSteps > 512 {
		fineSteps = 512
	}
	for i := 0; i <= fineSteps; i++ {
		p := lo + (hi-lo)*float64(i)/float64(fineSteps)
		f, err := ExactFailureProb(n, p, epsilon)
		if err != nil {
			return 0, err
		}
		if f > worst {
			worst = f
		}
	}
	return worst, nil
}

// TestExactWorstCaseGridEquivalence sweeps randomized (n, epsilon, pLo,
// pHi) and demands the parallel grid ablation agree with the serial
// reference to 1e-12 relative error (bit-identical in practice), and that
// the memoized sweep-backed ExactWorstCaseFailure serve repeated queries
// from the memo. (Sweep-vs-grid equivalence lives in sweep_equiv_test.go:
// the sweep returns the true supremum, which legitimately dominates the
// sampled grid maximum.)
func TestExactWorstCaseGridEquivalence(t *testing.T) {
	ResetExactCache()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(4000)
		eps := math.Pow(10, -0.5-2*rng.Float64()) // ~0.3 .. 0.003
		pLo, pHi := 0.0, 1.0
		if trial%3 == 1 {
			pLo = rng.Float64() * 0.9
			pHi = pLo + rng.Float64()*(1-pLo)
		} else if trial%3 == 2 {
			pLo = pHi // degenerate interval
		}
		got, err := ExactWorstCaseFailureGrid(n, eps, pLo, pHi)
		if err != nil {
			t.Fatal(err)
		}
		want, err := refWorstCase(n, eps, pLo, pHi)
		if err != nil {
			t.Fatal(err)
		}
		var rel float64
		if got != want {
			rel = math.Abs(got-want) / math.Max(math.Abs(got), math.Abs(want))
		}
		if rel > 1e-12 {
			t.Fatalf("ExactWorstCaseFailureGrid(%d, %g, %g, %g) = %.17g, serial reference %.17g (rel %.3g)",
				n, eps, pLo, pHi, got, want, rel)
		}
		// The memoized entry point must serve a repeated query unchanged.
		first, err := ExactWorstCaseFailure(n, eps, pLo, pHi)
		if err != nil {
			t.Fatal(err)
		}
		again, err := ExactWorstCaseFailure(n, eps, pLo, pHi)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("memoized result %v != first result %v", again, first)
		}
	}
}

// TestExactSampleSizeRegression pins the sample sizes produced by the
// pre-optimization implementation (recorded before the rewrite): the fast
// engine must reproduce them exactly.
//
// One deliberate correction: the grid-era pin for (0.025, 0.05) was 1559,
// but the grid had sampled 6% under the true worst case there — the
// independently checkable witness ExactFailureProb(1559, 0.50030468248941629,
// 0.025) = 0.0511 > 0.05 proves 1559 never met the guarantee (the case
// sits on a lattice boundary: 2 n epsilon = 78 exactly at n = 1560). The
// event-driven sweep evaluates the supremum exactly and returns the
// smallest truly sufficient size, 1560; TestExactSampleSizeGridErrorFixed
// pins the witness.
func TestExactSampleSizeRegression(t *testing.T) {
	cases := []struct {
		eps, delta float64
		pLo, pHi   float64
		want       int
	}{
		{0.05, 0.01, 0, 1, 670},
		{0.05, 0.001, 0, 1, 1090},
		{0.1, 0.01, 0, 1, 170},
		{0.025, 0.05, 0, 1, 1560},
		{0.02, 0.001, 0, 1, 6800},
		{0.05, 0.01, 0.9, 1, 250},
	}
	for _, c := range cases {
		n, err := ExactSampleSize(c.eps, c.delta, c.pLo, c.pHi)
		if err != nil {
			t.Fatalf("ExactSampleSize(%v, %v, %v, %v): %v", c.eps, c.delta, c.pLo, c.pHi, err)
		}
		if n != c.want {
			t.Errorf("ExactSampleSize(%v, %v, %v, %v) = %d, want %d (pre-optimization value)",
				c.eps, c.delta, c.pLo, c.pHi, n, c.want)
		}
	}
}

// TestExactSampleSizeGridErrorFixed pins the witness for the one
// regression-table correction above: at n = 1559 the failure probability
// attained at a concrete p (just right of the lattice event 780/1559 +
// 0.025) exceeds delta = 0.05, so the grid-era answer 1559 violated the
// guarantee it claimed; the sweep must therefore return 1560, whose true
// worst case is back under delta.
func TestExactSampleSizeGridErrorFixed(t *testing.T) {
	const witnessP = 0.50030468248941629
	f, err := ExactFailureProb(1559, witnessP, 0.025)
	if err != nil {
		t.Fatal(err)
	}
	if f <= 0.05 {
		t.Fatalf("ExactFailureProb(1559, %v, 0.025) = %v, expected > 0.05 (the witness that n=1559 was under-sized)", witnessP, f)
	}
	w, err := ExactWorstCaseFailureSweep(1559, 0.025, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w < f {
		t.Errorf("sweep supremum %v at n=1559 below the attained witness %v", w, f)
	}
	w, err = ExactWorstCaseFailureSweep(1560, 0.025, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w > 0.05 {
		t.Errorf("sweep supremum %v at n=1560 exceeds delta 0.05; 1560 should satisfy the bound", w)
	}
}

// TestExactSampleSizeMemoReuse is the regression test for the stabilization
// loop fix: the pass must reuse the binary search's memoized probes (its
// first ok(lo) is free), and a repeated identical search must run entirely
// from the memo.
func TestExactSampleSizeMemoReuse(t *testing.T) {
	ResetExactCache()
	n1, err := ExactSampleSize(0.05, 0.01, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	evalsAfterFirst := ExactProbeEvals()
	if evalsAfterFirst == 0 {
		t.Fatal("first search should have evaluated probes")
	}
	hits1, _, _ := ExactCacheStats()
	if hits1 == 0 {
		t.Error("stabilization pass should have hit the memo at least once (it re-checks the binary-search answer)")
	}
	n2, err := ExactSampleSize(0.05, 0.01, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != n1 {
		t.Fatalf("repeated search disagrees: %d then %d", n1, n2)
	}
	if evals := ExactProbeEvals(); evals != evalsAfterFirst {
		t.Errorf("repeated identical search recomputed %d probes; want 0 (full memo reuse)",
			evals-evalsAfterFirst)
	}
}

// TestExactSampleSizeStabilizationBounded documents the nudge-window bound:
// the loop runs at most stabilizeWindow+1 extra candidates past the binary
// search instead of creeping toward 1<<28. (The window itself is a compile
// time constant; this test pins the probe-count contract for a normal
// search, which must stay far below the window.)
func TestExactSampleSizeStabilizationBounded(t *testing.T) {
	ResetExactCache()
	if _, err := ExactSampleSize(0.1, 0.05, 0, 1); err != nil {
		t.Fatal(err)
	}
	evals := ExactProbeEvals()
	// An exponential bracket + binary search on a range bounded by the
	// Hoeffding size (~738 here) takes ~12 probes; the stabilization pass
	// may add a handful. 12 + stabilizeWindow is a hard ceiling.
	if max := uint64(12 + stabilizeWindow); evals > max {
		t.Errorf("search used %d uncached probes, want <= %d (stabilization must be window-bounded)", evals, max)
	}
}
