package bounds

// Event-driven worst-case sweep. ExactWorstCaseFailure must maximize
//
//	f(p) = CDF(loCut(p); n, p) + Survival(hiCut(p); n, p)
//
// over p in [pLo, pHi]. The cut indices change only at the lattice events
// p = k/n - eps (a point k leaves the upper failure tail as p grows past it)
// and p = k/n + eps (k enters the lower tail); between consecutive events
// the cuts are constant and f is smooth with the closed-form derivative
//
//	f'(p) = n [ C(n-1, hi-1) p^(hi-1) q^(n-hi) - C(n-1, lo) p^lo q^(n-1-lo) ]
//
// whose sign flips from - to + exactly once on the segment (the two terms'
// ratio is K (p/q)^(hi-1-lo), monotone in p). Every fixed-cut segment is
// therefore U-shaped and attains its maximum at a segment endpoint, so
//
//	sup f = max over event points of the larger one-sided limit,
//	        together with f(pLo) and f(pHi).
//
// The one-sided limits sort into two smooth lattice families with
// constant-offset cuts (no ripple *within* a family — the ripple the grid
// search chased lives between the families):
//
//	lo family  p_k = (k+c)/n, c = n eps: lim from the right,
//	           CDF(k) + Survival(floor(k+2c)+1), for p_k in [pLo, pHi)
//	hi family  q_j = (j-c)/n: lim from the left,
//	           CDF(ceil(j-2c)-1) + Survival(j),   for q_j in (pLo, pHi]
//
// (half-open ranges because a limit taken from outside [pLo, pHi] is not
// part of the supremum). Each family's candidate g(i) = L(i) + U(i) is the
// sum of a lower-tail and an upper-tail component, each of which samples a
// smooth envelope — cuts at a constant offset from the sweeping lattice
// index, so none of the between-family ripple — rising with the binomial
// variance to a single peak and falling after it. The components peak at
// slightly different events (binomial skew pushes them apart), so the sum
// has at most two humps; in the practical regime the bumps overlap into
// one, and only deep in the tails (values below sweepDeepTail) do they
// separate visibly. The sweep localizes the sum's leftmost hump by
// bisecting the sign of its discrete step at a coarse tail tolerance,
// ascends (gallop + local bisection at a medium tolerance, exact
// evaluation at the top) to that basin's true peak, and in the deep-tail
// regime repeats the ascent from the lower-tail component's own peak,
// which the sum's right hump hugs there. Families at or below
// sweepExhaustiveCutoff events are evaluated exhaustively instead.
//
// A first-order analytic step estimate from the closed-form derivative is
// two orders of magnitude too biased for this localization — near the
// peak the true per-event step is ~1e-8 of the candidate value while the
// estimate's discretization bias is ~1e-4 — so the probes compare real
// tail sums instead, at tolerances tiered to their role. The closed-form
// derivative still carries the structural proof above (each segment's
// critical point is a minimum, hence endpoint maxima and no Newton
// solve), and stats.BinomialCDFDerivative lets the tests verify that
// U-shape directly.
//
// Cost: the lattice events are enumerated in O(1) as two index ranges;
// O(log events) bisection and ascent probes actually walk a tail, most at
// a third of full-precision length, with exact evaluations only at the
// located peaks, the family boundaries, and the interval endpoints —
// versus the grid's fixed 64-coarse + up-to-512-refinement full-precision
// evaluations. O(events) tail work arises only for exhaustive small
// families. The candidates are evaluated with integer-lattice cuts
// (snapped like ExactFailureProb's), so the sweep has no
// argmax-resolution error: its result is the true supremum, where the
// grid's sampled maximum ran up to ~10% under it on random inputs. One
// caveat inherited from float64: candidates below ~1e-300 underflow, so
// in that (physically meaningless) regime the reported supremum can
// undershoot.

import (
	"fmt"
	"math"
	"sync/atomic"

	"github.com/easeml/ci/internal/stats"
)

// Sweep observability counters (process-wide, reset by ResetExactCache and
// the server's admin cache-reset endpoint alongside the memo counters).
var (
	// sweepEventsEnumerated counts lattice events k/n +- eps that fell
	// inside a sweep's [pLo, pHi] interval.
	sweepEventsEnumerated atomic.Uint64
	// sweepSegmentsAnalytic counts events resolved without an exact tail
	// evaluation: excluded from the maximum by the unimodal-envelope
	// bisection (the U-shape argument stands in for evaluating them).
	sweepSegmentsAnalytic atomic.Uint64
	// sweepSegmentsRefined counts events solved by exact fallback
	// refinement: bisection probes, the refinement window around each
	// family peak, and exhaustive small families.
	sweepSegmentsRefined atomic.Uint64
)

// sweepProbeTol is the relative tail-walk truncation tolerance of the
// bisection probes and window prescans: they only compare candidates, so
// a walk a third the length of a full-precision one suffices. Candidates
// that survive the prescan are re-evaluated at stats.DefaultTailTol, and
// a full-precision hill climb finishes the job, so the coarse tolerance
// never reaches the returned value.
const sweepProbeTol = 1e-6

// sweepAscendTol is the tolerance of the ascent phase (gallop plus local
// bisection) that walks from the coarse seed to the basin's true peak:
// tight enough that its comparison ambiguity spans less than one event,
// loose enough to keep the walks ~30% shorter than full precision.
const sweepAscendTol = 1e-12

// sweepDeepTail is the peak value below which the sweep also localizes
// the lower-tail component's own peak and ascends from it: in this
// regime binomial skew separates the component peaks enough that the
// candidate sequence can turn bimodal, with the second (rightmost) hump
// hugging the lower-tail component's peak. Failure probabilities this
// small are far below any practical delta, so the doubled work never
// shows on the serving path.
const sweepDeepTail = 1e-9

// sweepExhaustiveCutoff is the family size at or below which the sweep
// skips the bisections and evaluates every event exactly: at these sizes
// the exhaustive scan costs no more than bisection plus windows.
const sweepExhaustiveCutoff = 48

// ExactWorstCaseFailureSweep is the uncached event-driven sweep: the
// engine behind ExactWorstCaseFailure (which adds the memo). Exported so
// benchmarks and the equivalence tests can drive the sweep with
// memoization bypassed, next to its grid-search ablation twin
// ExactWorstCaseFailureGrid.
func ExactWorstCaseFailureSweep(n int, epsilon, pLo, pHi float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("bounds: n must be positive, got %d", n)
	}
	if !(epsilon > 0) {
		return 0, fmt.Errorf("bounds: epsilon must be positive, got %v", epsilon)
	}
	if pLo < 0 || pHi > 1 || pLo > pHi {
		return 0, fmt.Errorf("bounds: invalid mean interval [%v,%v]", pLo, pHi)
	}
	worstEvals.Add(1)
	// The interval endpoints are evaluated with their exact interior cuts;
	// they are the only candidates when no event falls inside.
	worst, err := ExactFailureProb(n, pLo, epsilon)
	if err != nil {
		return 0, err
	}
	if pHi > pLo {
		fHi, err := ExactFailureProb(n, pHi, epsilon)
		if err != nil {
			return 0, err
		}
		if fHi > worst {
			worst = fHi
		}
	}
	nf := float64(n)
	c := nf * epsilon
	// lo family: events p_k = (k+c)/n with p_k in [pLo, pHi). At p_k the
	// lattice point k enters the lower failure tail from the right, so the
	// candidate (the right-sided limit) includes k; the upper cut is the
	// segment-interior one, floor(k+2c)+1 (an exact integer k+2c means a
	// coincident hi event whose point leaves the upper tail at p_k, hence
	// the +1 keeps it excluded — the two one-sided limits never merge).
	kA := ceilInt(snapLattice(nf*pLo - c))
	kB := ceilInt(snapLattice(nf*pHi-c)) - 1
	if kA < 0 {
		kA = 0 // events below k=0 change no cut
	}
	if kB > n {
		kB = n
	}
	if w := sweepFamilyMax(kA, kB,
		func(k int, tol float64) float64 {
			return stats.BinomialCDFTol(k, n, clamp01((float64(k)+c)/nf), tol)
		},
		func(k int, tol float64) float64 {
			h := floorInt(snapLattice(float64(k)+2*c)) + 1
			return stats.BinomialSurvivalTol(h, n, clamp01((float64(k)+c)/nf), tol)
		}); w > worst {
		worst = w
	}
	// hi family: events q_j = (j-c)/n with q_j in (pLo, pHi]. Just below
	// q_j the lattice point j is still in the upper failure tail, so the
	// candidate (the left-sided limit) includes j; the lower cut is the
	// segment-interior ceil(j-2c)-1.
	jA := floorInt(snapLattice(nf*pLo+c)) + 1
	jB := floorInt(snapLattice(nf*pHi + c))
	if jA < 0 {
		jA = 0
	}
	if jB > n {
		jB = n // events above j=n change no cut
	}
	if w := sweepFamilyMax(jA, jB,
		func(j int, tol float64) float64 {
			l := ceilInt(snapLattice(float64(j)-2*c)) - 1
			return stats.BinomialCDFTol(l, n, clamp01((float64(j)-c)/nf), tol)
		},
		func(j int, tol float64) float64 {
			return stats.BinomialSurvivalTol(j, n, clamp01((float64(j)-c)/nf), tol)
		}); w > worst {
		worst = w
	}
	return worst, nil
}

// sweepFamilyMax returns the maximum candidate value L(i) + U(i) of one
// event family over indices [a, b]; evalL and evalU evaluate the two
// components at a given tail-walk tolerance. Small families are scanned
// exhaustively. Larger ones bisect the sum's leftmost hump at coarse
// tolerance, then ascend (gallop + step-sign bisection at a medium
// tolerance, exact evaluation at the top) to that basin's true peak. In
// the deep-tail regime — peak values below sweepDeepTail, where binomial
// skew separates the two components' peaks enough to make the sum
// bimodal — the lower-tail component's own peak seeds a second ascent,
// since the sum's right hump hugs it there. The family's boundary events
// guard clamped or boundary-peaked envelopes.
func sweepFamilyMax(a, b int, evalL, evalU func(int, float64) float64) float64 {
	if a > b {
		return 0
	}
	coarse := func(i int) float64 {
		f := evalL(i, sweepProbeTol) + evalU(i, sweepProbeTol)
		if f > 1 {
			return 1
		}
		return f
	}
	exact := func(i int) float64 {
		f := evalL(i, stats.DefaultTailTol) + evalU(i, stats.DefaultTailTol)
		if f > 1 {
			return 1
		}
		return f
	}
	size := b - a + 1
	sweepEventsEnumerated.Add(uint64(size))
	best := 0.0
	take := func(f float64) {
		if f > best {
			best = f
		}
	}
	if size <= sweepExhaustiveCutoff {
		sweepSegmentsRefined.Add(uint64(size))
		for i := a; i <= b; i++ {
			take(exact(i))
		}
		return best
	}
	pS, probesS := bisectPeak(a, b, coarse)
	refined := probesS
	med := func(i int) float64 {
		f := evalL(i, sweepAscendTol) + evalU(i, sweepAscendTol)
		if f > 1 {
			return 1
		}
		return f
	}
	// ascend climbs from a seed to the peak of its basin: a direction
	// probe, a gallop with doubling steps while still ascending, then a
	// step-sign bisection inside the final bracket — all at the medium
	// tolerance, whose comparison ambiguity is well under one event —
	// finishing with exact evaluations of the located peak and its
	// immediate neighbors.
	ascend := func(seed int) {
		v := med(seed)
		refined++
		dir, dirV := 0, 0.0
		if seed < b {
			refined++
			if f := med(seed + 1); f > v {
				dir, dirV = 1, f
			}
		}
		if dir == 0 && seed > a {
			refined++
			if f := med(seed - 1); f > v {
				dir, dirV = -1, f
			}
		}
		peak := seed
		if dir != 0 {
			// Gallop invariant: the sequence ascends prev -> pos, so by
			// unimodality of the basin the peak lies strictly past prev;
			// once a probe at next fails to ascend, the peak also lies at
			// or before next. A failed jump must therefore bracket
			// [prev, next] — NOT [pos, next]: a doubling step can leap
			// clean over the peak and land on the downslope while still
			// above prev, leaving the peak behind pos.
			prev, pos, cur := seed, seed+dir, dirV
			for step := 1; ; step *= 2 {
				next := pos + dir*step
				if next < a {
					next = a
				}
				if next > b {
					next = b
				}
				if next == pos {
					break
				}
				nv := med(next)
				refined++
				if nv <= cur {
					pos = next
					break
				}
				prev, pos, cur = pos, next, nv
				if pos == a || pos == b {
					break
				}
			}
			lo2, hi2 := prev, pos
			if lo2 > hi2 {
				lo2, hi2 = hi2, lo2
			}
			var probes uint64
			peak, probes = bisectPeak(lo2, hi2, med)
			refined += probes
		}
		for i := peak - 1; i <= peak+1; i++ {
			if i < a || i > b {
				continue
			}
			take(exact(i))
			refined++
		}
	}
	ascend(pS)
	if best < sweepDeepTail {
		pL, probesL := bisectPeak(a, b, func(i int) float64 { return evalL(i, sweepProbeTol) })
		refined += probesL
		ascend(pL)
	}
	take(exact(a))
	take(exact(b))
	refined += 2
	if refined > uint64(size) {
		refined = uint64(size)
	}
	sweepSegmentsRefined.Add(refined)
	sweepSegmentsAnalytic.Add(uint64(size) - refined)
	return best
}

// bisectPeak locates the peak of a unimodal sequence over [a, b]: the
// first index whose discrete step comp(i+1) - comp(i) is non-positive
// (the peak itself, or the left edge of a flat stretch — either holds the
// maximum; for a bimodal sum it lands on the leftmost hump). Returns the
// index and the number of evaluations spent.
func bisectPeak(a, b int, comp func(int) float64) (int, uint64) {
	lo, hi := a, b-1
	probes := uint64(0)
	for lo < hi {
		mid := lo + (hi-lo)/2
		probes += 2
		if comp(mid+1)-comp(mid) > 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, probes
}

// ExactSweepStats reports the sweep's process-wide observability counters:
// lattice events enumerated, events resolved analytically (no exact
// evaluation needed), and events solved by exact refinement evaluation.
func ExactSweepStats() (events, analytic, refined uint64) {
	return sweepEventsEnumerated.Load(), sweepSegmentsAnalytic.Load(), sweepSegmentsRefined.Load()
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

func floorInt(x float64) int { return int(math.Floor(x)) }
func ceilInt(x float64) int  { return int(math.Ceil(x)) }
