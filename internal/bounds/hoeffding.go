package bounds

import (
	"fmt"
	"math"
)

// HoeffdingSampleSize returns the number of samples needed to estimate a
// variable with dynamic range r to within epsilon with probability 1-delta,
// using the one-sided Hoeffding inequality exactly as the paper's baseline
// estimator does (Section 3.1):
//
//	n(v, r, epsilon, delta) = -r^2 ln(delta) / (2 epsilon^2)
//
// The result is rounded up to the next integer.
func HoeffdingSampleSize(r, epsilon, delta float64) (int, error) {
	if err := checkREpsDelta(r, epsilon, delta); err != nil {
		return 0, err
	}
	n := r * r * math.Log(1/delta) / (2 * epsilon * epsilon)
	return ceilToInt(n), nil
}

// HoeffdingSampleSizeTwoSided is the two-sided variant (failure probability
// split across both tails), n = r^2 ln(2/delta) / (2 epsilon^2).
func HoeffdingSampleSizeTwoSided(r, epsilon, delta float64) (int, error) {
	if err := checkREpsDelta(r, epsilon, delta); err != nil {
		return 0, err
	}
	n := r * r * math.Log(2/delta) / (2 * epsilon * epsilon)
	return ceilToInt(n), nil
}

// HoeffdingEpsilon inverts the one-sided bound: given n samples of a
// variable with range r, it returns the tolerance achieved with probability
// 1-delta: epsilon = r sqrt(ln(1/delta) / (2n)).
func HoeffdingEpsilon(r float64, n int, delta float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("bounds: n must be positive, got %d", n)
	}
	if err := checkREpsDelta(r, 1, delta); err != nil {
		return 0, err
	}
	return r * math.Sqrt(math.Log(1/delta)/(2*float64(n))), nil
}

// HoeffdingDelta returns the failure probability of an epsilon-accurate
// one-sided estimate from n samples: delta = exp(-2 n epsilon^2 / r^2).
func HoeffdingDelta(r float64, n int, epsilon float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("bounds: n must be positive, got %d", n)
	}
	if err := checkREpsDelta(r, epsilon, 0.5); err != nil {
		return 0, err
	}
	return math.Exp(-2 * float64(n) * epsilon * epsilon / (r * r)), nil
}

func checkREpsDelta(r, epsilon, delta float64) error {
	if !(r > 0) || math.IsInf(r, 0) || math.IsNaN(r) {
		return fmt.Errorf("bounds: range must be positive and finite, got %v", r)
	}
	if !(epsilon > 0) || math.IsInf(epsilon, 0) || math.IsNaN(epsilon) {
		return fmt.Errorf("bounds: epsilon must be positive and finite, got %v", epsilon)
	}
	if !(delta > 0 && delta < 1) {
		return fmt.Errorf("bounds: delta must be in (0,1), got %v", delta)
	}
	return nil
}

// ceilToInt converts a positive float sample size to int, guarding against
// overflow on absurd inputs (tiny epsilon with tiny delta).
func ceilToInt(n float64) int {
	c := math.Ceil(n)
	if c > math.MaxInt32 {
		return math.MaxInt32
	}
	if c < 1 {
		return 1
	}
	return int(c)
}
