package bounds

import (
	"fmt"
	"math"
)

// Serfling's inequality is the without-replacement sharpening of
// Hoeffding: when the first m draws of a finite population of size D are
// a uniformly random sample (no replacement), the sample mean of a
// [0,1]-valued variable concentrates around the population mean with
//
//	P(|mean_m - mean_D| >= t) <= 2 exp(-2 m t^2 / (1 - (m-1)/D))
//
// (Serfling 1974). The factor 1-(m-1)/D is what makes the bound collapse
// to zero as the sample exhausts the population — exactly the regime a
// sequential label-reveal loop lives in, where m grows toward D and the
// remaining uncertainty must vanish.

// SerflingEpsilon inverts the two-sided bound: after m of total draws
// without replacement, the sample mean of a [0,1] variable is within the
// returned epsilon of the population mean with probability at least
// 1-delta. Values with a wider range r scale the result by r.
func SerflingEpsilon(m, total int, delta float64) (float64, error) {
	if m < 1 || total < m {
		return 0, fmt.Errorf("bounds: need 1 <= m <= total, got m=%d total=%d", m, total)
	}
	if !(delta > 0 && delta < 1) {
		return 0, fmt.Errorf("bounds: delta must be in (0,1), got %v", delta)
	}
	if m == total {
		return 0, nil
	}
	f := 1 - float64(m-1)/float64(total)
	return math.Sqrt(f * math.Log(2/delta) / (2 * float64(m))), nil
}

// GeometricDelta splits a total failure budget across a sequence of looks
// geometrically: look j (1-based) spends delta * 2^-j. The weights sum to
// strictly less than delta over any number of looks, so a union bound
// over every look the sequential evaluation takes stays within the total
// budget without needing to know the schedule length up front.
func GeometricDelta(delta float64, look int) (float64, error) {
	if !(delta > 0 && delta < 1) {
		return 0, fmt.Errorf("bounds: delta must be in (0,1), got %v", delta)
	}
	if look < 1 {
		return 0, fmt.Errorf("bounds: look must be >= 1, got %d", look)
	}
	return delta * math.Pow(0.5, float64(look)), nil
}
