package bounds

// The retired grid search, kept behind one exported ablation entry point:
// BenchmarkExactWorstCaseGrid measures it against the event-driven sweep,
// and the sweep equivalence tests use it as the independent oracle the
// sweep's supremum must dominate. Production traffic never reaches this
// file — ExactWorstCaseFailure dispatches to the sweep.

import (
	"fmt"
	"math"

	"github.com/easeml/ci/internal/parallel"
)

// Grid geometry: a coarse pass over the whole interval, then a refinement
// pass at lattice resolution around the coarse argmax, clamped to
// [gridFineMin, gridFineMax] points. Internal to the ablation path.
const (
	gridCoarse  = 64
	gridFineMin = 32
	gridFineMax = 512
)

// ExactWorstCaseFailureGrid is the pre-sweep implementation of
// ExactWorstCaseFailure: max over a 64-point coarse grid with local
// refinement around the coarse argmax, fanned across the worker pool, no
// memo. The evaluation points and the argmax scan order are identical to a
// straightforward serial loop, so parallel execution cannot change the
// returned value. Because it only samples the failure curve, its maximum
// undershoots the true supremum the sweep returns — up to ~10% relative on
// random inputs (and 6% on the case that flipped ExactSampleSize(0.025,
// 0.05) from 1559 to 1560); the grid-era "~1%" estimate predated measuring
// against an exact oracle.
// The ablation does not touch the production observability counters
// (ExactProbeEvals, ExactSweepStats): exact_evals in /api/v1/metrics
// counts uncached sweep evaluations only, and stays consistent with the
// sweep_* counters that break one such evaluation down.
func ExactWorstCaseFailureGrid(n int, epsilon, pLo, pHi float64) (float64, error) {
	if pLo < 0 || pHi > 1 || pLo > pHi {
		return 0, fmt.Errorf("bounds: invalid mean interval [%v,%v]", pLo, pHi)
	}
	step := (pHi - pLo) / gridCoarse
	if step == 0 {
		return ExactFailureProb(n, pLo, epsilon)
	}
	gridMax := func(at func(i int) float64, points int) (float64, float64, error) {
		fs := make([]float64, points)
		err := parallel.ForErr(points, func(i int) error {
			f, err := ExactFailureProb(n, at(i), epsilon)
			if err != nil {
				return err
			}
			fs[i] = f
			return nil
		})
		if err != nil {
			return 0, 0, err
		}
		worst, worstP := 0.0, pLo
		for i, f := range fs {
			if f > worst {
				worst, worstP = f, at(i)
			}
		}
		return worst, worstP, nil
	}
	worst, worstP, err := gridMax(func(i int) float64 {
		return pLo + float64(i)*step
	}, gridCoarse+1)
	if err != nil {
		return 0, err
	}
	// Local refinement around the coarse argmax at lattice resolution.
	lo := math.Max(pLo, worstP-step)
	hi := math.Min(pHi, worstP+step)
	fineSteps := 4 * n / gridCoarse
	if fineSteps < gridFineMin {
		fineSteps = gridFineMin
	}
	if fineSteps > gridFineMax {
		fineSteps = gridFineMax
	}
	fineWorst, _, err := gridMax(func(i int) float64 {
		return lo + (hi-lo)*float64(i)/float64(fineSteps)
	}, fineSteps+1)
	if err != nil {
		return 0, err
	}
	if fineWorst > worst {
		worst = fineWorst
	}
	return worst, nil
}
