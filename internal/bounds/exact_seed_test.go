package bounds

import (
	"math"
	"sync"
	"testing"

	"github.com/easeml/ci/internal/parallel"
)

// forceParallel makes the worker pool spawn real goroutines even on a
// single-CPU host, so -race exercises the concurrent probe path.
func forceParallel(t *testing.T) {
	t.Helper()
	old := parallel.Workers
	parallel.Workers = 4
	t.Cleanup(func() { parallel.Workers = old })
}

// seedCases is the regression table both bracket seeds must agree on (the
// pinned sizes are in exact_equiv_test.go).
var seedCases = []struct {
	eps, delta, pLo, pHi float64
}{
	{0.05, 0.01, 0, 1},
	{0.05, 0.001, 0, 1},
	{0.1, 0.01, 0, 1},
	{0.025, 0.05, 0, 1},
	{0.02, 0.001, 0, 1},
	{0.05, 0.01, 0.9, 1},
}

// TestSeedsAgree demands the normal-approximation seed return exactly the
// sizes the Hoeffding seed does: the seed may only move the probes, never
// the answer.
func TestSeedsAgree(t *testing.T) {
	for _, c := range seedCases {
		ResetExactCache()
		nh, err := ExactSampleSizeSeeded(c.eps, c.delta, c.pLo, c.pHi, SeedHoeffding)
		if err != nil {
			t.Fatalf("hoeffding seed (%v, %v, %v, %v): %v", c.eps, c.delta, c.pLo, c.pHi, err)
		}
		ResetExactCache()
		nn, err := ExactSampleSizeSeeded(c.eps, c.delta, c.pLo, c.pHi, SeedNormal)
		if err != nil {
			t.Fatalf("normal seed (%v, %v, %v, %v): %v", c.eps, c.delta, c.pLo, c.pHi, err)
		}
		if nh != nn {
			t.Errorf("seeds disagree at (%v, %v, %v, %v): hoeffding %d, normal %d",
				c.eps, c.delta, c.pLo, c.pHi, nh, nn)
		}
	}
}

// TestNormalSeedReducesProbes is the ExactProbeEvals delta test for the
// bracket seed: a cold search from the normal-approximation seed must cost
// strictly fewer uncached worst-case evaluations than the same search from
// the Hoeffding seed, and substantially fewer in aggregate.
func TestNormalSeedReducesProbes(t *testing.T) {
	var totalH, totalN uint64
	for _, c := range seedCases {
		ResetExactCache()
		if _, err := ExactSampleSizeSeeded(c.eps, c.delta, c.pLo, c.pHi, SeedHoeffding); err != nil {
			t.Fatal(err)
		}
		ph := ExactProbeEvals()
		ResetExactCache()
		if _, err := ExactSampleSizeSeeded(c.eps, c.delta, c.pLo, c.pHi, SeedNormal); err != nil {
			t.Fatal(err)
		}
		pn := ExactProbeEvals()
		t.Logf("(%v, %v, [%v,%v]): hoeffding %d probes, normal %d", c.eps, c.delta, c.pLo, c.pHi, ph, pn)
		if pn >= ph {
			t.Errorf("normal seed used %d probes at (%v, %v, [%v,%v]), hoeffding %d; want strictly fewer",
				pn, c.eps, c.delta, c.pLo, c.pHi, ph)
		}
		totalH += ph
		totalN += pn
	}
	// "Roughly half" across the table: demand at least a 25% aggregate cut
	// so the guarantee has teeth without being brittle to gallop tweaks.
	if float64(totalN) > 0.75*float64(totalH) {
		t.Errorf("normal seed used %d total probes vs hoeffding %d; want <= 75%%", totalN, totalH)
	}
	ResetExactCache()
}

func TestNormalBracketSeedEstimate(t *testing.T) {
	// z_{0.995} = 2.5758..., sigma = 0.5, eps = 0.05: n ~ 664. The true
	// exact size is 670 — the estimate must land within a few percent.
	est := normalBracketSeed(0.05, 0.01, 0, 1)
	if est < 600 || est > 700 {
		t.Errorf("normalBracketSeed(0.05, 0.01, 0, 1) = %d, want ~664", est)
	}
	// Restricted mean interval uses the worst-case variance over the
	// interval: sigma^2 = 0.9*0.1 = 0.09 -> n ~ 239 (true size 250).
	est = normalBracketSeed(0.05, 0.01, 0.9, 1)
	if est < 200 || est > 260 {
		t.Errorf("normalBracketSeed(0.05, 0.01, 0.9, 1) = %d, want ~239", est)
	}
	// An interval straddling 1/2 pins sigma^2 at 1/4 even when neither
	// endpoint is 1/2.
	if a, b := normalBracketSeed(0.05, 0.01, 0.3, 0.7), normalBracketSeed(0.05, 0.01, 0, 1); a != b {
		t.Errorf("straddling interval seed %d != full interval seed %d", a, b)
	}
	if est := normalBracketSeed(1e-9, 1e-9, 0, 1); est != searchLimit {
		t.Errorf("absurd inputs should clamp to searchLimit, got %d", est)
	}
}

// --- bracket expansion (satellite bugfix) --------------------------------

// okFromThreshold builds a probe predicate that succeeds at and above
// threshold, recording every probed size. expandBracket calls it from the
// worker pool, so the recording is mutex-guarded.
func okFromThreshold(threshold int, probed *[]int) func(int) (bool, error) {
	var mu sync.Mutex
	return func(n int) (bool, error) {
		mu.Lock()
		*probed = append(*probed, n)
		mu.Unlock()
		return n >= threshold, nil
	}
}

func TestExpandBracketNeverProbesBeyondLimit(t *testing.T) {
	forceParallel(t)
	// A threshold the expansion can never reach: every probe must still
	// stay at or below searchLimit (the old loop could probe one candidate
	// past it).
	var probed []int
	_, _, err := expandBracket(okFromThreshold(searchLimit+1, &probed), searchLimit/2)
	if err == nil {
		t.Fatal("unreachable threshold should report divergence")
	}
	for _, n := range probed {
		if n > searchLimit {
			t.Errorf("expansion probed %d beyond searchLimit %d", n, searchLimit)
		}
	}
	if len(probed) == 0 {
		t.Error("expansion should have probed the capped candidates below the limit")
	}
	// Starting just below the limit clamps the one remaining candidate to
	// searchLimit itself — the sizes under the cap must still be reachable
	// — and only then reports divergence.
	probed = nil
	if _, _, err := expandBracket(okFromThreshold(searchLimit+1, &probed), searchLimit-2); err == nil {
		t.Fatal("expansion with an unreachable threshold should report divergence")
	}
	if len(probed) != 1 || probed[0] != searchLimit {
		t.Errorf("expansion from searchLimit-2 probed %v, want just [searchLimit]", probed)
	}
	// And an answer hiding in that clamped gap is found.
	probed = nil
	lo, hi, err := expandBracket(okFromThreshold(searchLimit-1, &probed), searchLimit-2)
	if err != nil {
		t.Fatalf("answer below the cap should be bracketed, got %v", err)
	}
	if lo != searchLimit-1 || hi != searchLimit {
		t.Errorf("bracket = [%d, %d], want [searchLimit-1, searchLimit]", lo, hi)
	}
}

func TestExpandBracketTightensLo(t *testing.T) {
	forceParallel(t)
	// Expansion from 100 with threshold 400: batch one probes 126, 158,
	// 198 (all fail), batch two 248, 311, 389 (all fail), batch three hits
	// at 487. The returned bracket must start past the last known-bad
	// candidate — lo = 390 — not back at 1 as the old search restart did.
	var probed []int
	lo, hi, err := expandBracket(okFromThreshold(400, &probed), 100)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 390 || hi != 487 {
		t.Errorf("bracket = [%d, %d], want [390, 487] (lo one past the last failing probe)", lo, hi)
	}
}

func TestExpandBracketFirstBatchHit(t *testing.T) {
	forceParallel(t)
	// Threshold 130 from start 100: the first batch probes 126 (fails)
	// then 158 (succeeds), so the bracket is [127, 158] — the failing
	// candidate inside the winning batch tightens lo too.
	var probed []int
	lo, hi, err := expandBracket(okFromThreshold(130, &probed), 100)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 127 || hi != 158 {
		t.Errorf("bracket = [%d, %d], want [127, 158]", lo, hi)
	}
}

// --- lattice cut snapping (satellite bugfix) -----------------------------

// TestExactFailureProbLatticeBoundaries evaluates ExactFailureProb at
// (n, p, eps) tuples where n(p-eps) and n(p+eps) are mathematically
// integers but float rounding lands a few ULPs off (e.g. 20*(0.3-0.15) =
// 3.0000000000000004). A k exactly on the boundary satisfies |k/n - p| =
// eps and is NOT a failure; the cuts must exclude it.
func TestExactFailureProbLatticeBoundaries(t *testing.T) {
	cases := []struct {
		n            int
		p, eps       float64
		loCut, hiCut int // failure <=> k <= loCut or k >= hiCut (mathematically)
	}{
		{20, 0.3, 0.15, 2, 10},     // 20*(0.3-0.15) = 3.0000000000000004 unsnapped
		{640, 0.5, 0.05, 287, 353}, // 640*0.45 rounds above 288
		{40, 0.5, 0.1, 15, 25},
		{1000, 0.55, 0.05, 499, 601},
		{10, 0.5, 0.3, 1, 9},
	}
	for _, c := range cases {
		want := 0.0
		for k := 0; k <= c.n; k++ {
			if k <= c.loCut || k >= c.hiCut {
				want += binomPMFRef(k, c.n, c.p)
			}
		}
		got, err := ExactFailureProb(c.n, c.p, c.eps)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("ExactFailureProb(%d, %v, %v) = %.12g, want %.12g (cuts %d/%d)",
				c.n, c.p, c.eps, got, want, c.loCut, c.hiCut)
		}
	}
}

func TestSnapLattice(t *testing.T) {
	if got := snapLattice(3.0000000000000004); got != 3 {
		t.Errorf("snapLattice(3.0000000000000004) = %v, want 3", got)
	}
	if got := snapLattice(287.99999999999994); got != 288 {
		t.Errorf("snapLattice(287.99999999999994) = %v, want 288", got)
	}
	if got := snapLattice(1e-17); got != 0 {
		t.Errorf("snapLattice(1e-17) = %v, want 0", got)
	}
	// Values genuinely between lattice points must pass through untouched.
	for _, x := range []float64{3.1, 2.9995, 0.4, 17.5} {
		if got := snapLattice(x); got != x {
			t.Errorf("snapLattice(%v) = %v, want unchanged", x, got)
		}
	}
}
