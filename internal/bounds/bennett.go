package bounds

import (
	"fmt"
	"math"
)

// BennettH is the function h(u) = (1+u) ln(1+u) - u appearing in Bennett's
// inequality (Proposition 1 of the paper). It is increasing and convex on
// u >= 0 with h(0) = 0.
func BennettH(u float64) float64 {
	if u <= 0 {
		return 0
	}
	// (1+u)ln(1+u) - u, written with log1p to stay accurate for small u.
	return (1+u)*math.Log1p(u) - u
}

// bennettHInverse solves h(u) = y for u >= 0 by bisection. h grows like
// u ln u, so an exponentially expanded upper bracket always encloses the
// root quickly.
func bennettHInverse(y float64) float64 {
	if y <= 0 {
		return 0
	}
	lo, hi := 0.0, 1.0
	for BennettH(hi) < y {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if BennettH(mid) < y {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// BennettTail returns the two-sided Bennett tail probability for the mean of
// n independent variables bounded by |X_i| <= b with sum of second moments
// v = sum E[X_i^2]:
//
//	Pr[ |sum(X_i - E X_i)| / n > epsilon ] <= 2 exp( -(v/b^2) h(n b epsilon / v) )
func BennettTail(n int, v, b, epsilon float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("bounds: n must be positive, got %d", n)
	}
	if !(v > 0) || !(b > 0) || !(epsilon > 0) {
		return 0, fmt.Errorf("bounds: v, b, epsilon must be positive (v=%v b=%v epsilon=%v)", v, b, epsilon)
	}
	exponent := -(v / (b * b)) * BennettH(float64(n)*b*epsilon/v)
	p := 2 * math.Exp(exponent)
	if p > 1 {
		p = 1
	}
	return p, nil
}

// BennettSampleSize returns the number of samples needed to estimate the
// mean of variables with |X_i| <= 1 and E[X_i^2] <= p to within epsilon with
// probability 1-delta, via the two-sided Bennett inequality:
//
//	n = ln(2/delta) / (p * h(epsilon/p))
//
// Callers that budget delta differently (the paper variously charges
// delta/2 or delta/4 to this test; see patterns.DeltaBudget) pass the
// already-adjusted delta.
func BennettSampleSize(p, epsilon, delta float64) (int, error) {
	if err := checkPEpsDelta(p, epsilon, delta); err != nil {
		return 0, err
	}
	n := math.Log(2/delta) / (p * BennettH(epsilon/p))
	return ceilToInt(n), nil
}

// BennettSampleSizeOneSided drops the leading factor 2:
// n = ln(1/delta) / (p h(epsilon/p)). The paper's headline Pattern-1 formula
// n = (ln H - ln(delta/4)) / (p h(epsilon/p)) is this one-sided form with
// delta already divided by 4H; both budget styles are reachable from the
// patterns package.
func BennettSampleSizeOneSided(p, epsilon, delta float64) (int, error) {
	if err := checkPEpsDelta(p, epsilon, delta); err != nil {
		return 0, err
	}
	n := math.Log(1/delta) / (p * BennettH(epsilon/p))
	return ceilToInt(n), nil
}

// BennettEpsilon inverts the two-sided sample size: the tolerance achieved
// by n samples under variance proxy p with probability 1-delta.
func BennettEpsilon(n int, p, delta float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("bounds: n must be positive, got %d", n)
	}
	if err := checkPEpsDelta(p, 1, delta); err != nil {
		return 0, err
	}
	y := math.Log(2/delta) / (float64(n) * p)
	return p * bennettHInverse(y), nil
}

// BernsteinSampleSize is the closed-form small-variance alternative kept for
// ablation benchmarks: from Bernstein's inequality
//
//	Pr[|mean - E| > epsilon] <= 2 exp( - n epsilon^2 / (2 sigma^2 + 2 b epsilon / 3) )
//
// with sigma^2 <= p and b = 1,
//
//	n = (2p + 2 epsilon/3) ln(2/delta) / epsilon^2.
func BernsteinSampleSize(p, epsilon, delta float64) (int, error) {
	if err := checkPEpsDelta(p, epsilon, delta); err != nil {
		return 0, err
	}
	n := (2*p + 2*epsilon/3) * math.Log(2/delta) / (epsilon * epsilon)
	return ceilToInt(n), nil
}

func checkPEpsDelta(p, epsilon, delta float64) error {
	if !(p > 0) || p > 1 {
		return fmt.Errorf("bounds: variance proxy p must be in (0,1], got %v", p)
	}
	if !(epsilon > 0) || math.IsInf(epsilon, 0) || math.IsNaN(epsilon) {
		return fmt.Errorf("bounds: epsilon must be positive and finite, got %v", epsilon)
	}
	if !(delta > 0 && delta < 1) {
		return fmt.Errorf("bounds: delta must be in (0,1), got %v", delta)
	}
	return nil
}
