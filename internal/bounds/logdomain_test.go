package bounds

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestLogDomainAgreesWithLinearDomain: for deltas that do not underflow,
// the log-domain entry points must agree exactly with the linear ones.
func TestLogDomainAgreesWithLinearDomain(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 0.5 + 1.5*rng.Float64()
		eps := 0.005 + 0.1*rng.Float64()
		delta := math.Pow(10, -1-6*rng.Float64())
		logInv := math.Log(1 / delta)

		n1, err1 := HoeffdingSampleSize(r, eps, delta)
		n2, err2 := HoeffdingSampleSizeLog(r, eps, logInv)
		if err1 != nil || err2 != nil || n1 != n2 {
			return false
		}
		e1, err1 := HoeffdingEpsilon(r, n1, delta)
		e2, err2 := HoeffdingEpsilonLog(r, n1, logInv)
		if err1 != nil || err2 != nil || math.Abs(e1-e2) > 1e-12 {
			return false
		}

		p := 0.02 + 0.5*rng.Float64()
		b1, err1 := BennettSampleSizeOneSided(p, eps, delta)
		b2, err2 := BennettSampleSizeLog(p, eps, logInv)
		if err1 != nil || err2 != nil || b1 != b2 {
			return false
		}
		// Two-sided: add ln 2 in log domain.
		b3, err1 := BennettSampleSize(p, eps, delta)
		b4, err2 := BennettSampleSizeLog(p, eps, logInv+math.Ln2)
		if err1 != nil || err2 != nil || b3 != b4 {
			return false
		}
		be1, err1 := BennettEpsilon(b3, p, delta)
		be2, err2 := BennettEpsilonLog(b3, p, logInv+math.Ln2)
		return err1 == nil && err2 == nil && math.Abs(be1-be2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestLogDomainSurvivesHugeMultipliers: the whole point of the log-domain
// API is H = 1000 fully adaptive, where delta/2^H underflows float64.
func TestLogDomainSurvivesHugeMultipliers(t *testing.T) {
	logInv := math.Log(1/0.0001) + 1000*math.Ln2 // delta / 2^1000
	n, err := HoeffdingSampleSizeLog(1, 0.05, logInv)
	if err != nil {
		t.Fatal(err)
	}
	// n = (ln(1/delta) + 1000 ln 2) / (2 * 0.0025).
	want := int(math.Ceil(logInv / (2 * 0.05 * 0.05)))
	if n != want {
		t.Errorf("n = %d, want %d", n, want)
	}
	// The linear-domain call would need delta ~ 1e-305; verify the log
	// call stays finite and positive well past that.
	n2, err := BennettSampleSizeLog(0.1, 0.01, math.Log(1/0.0001)+5000*math.Ln2)
	if err != nil || n2 <= 0 {
		t.Errorf("huge-multiplier Bennett = %d, %v", n2, err)
	}
}

func TestLogDomainValidation(t *testing.T) {
	if _, err := HoeffdingSampleSizeLog(1, 0.05, 0); err == nil {
		t.Error("logInvDelta = 0 should fail")
	}
	if _, err := HoeffdingSampleSizeLog(1, 0.05, math.Inf(1)); err == nil {
		t.Error("infinite logInvDelta should fail")
	}
	if _, err := HoeffdingSampleSizeLog(0, 0.05, 1); err == nil {
		t.Error("range 0 should fail")
	}
	if _, err := HoeffdingEpsilonLog(1, 0, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := HoeffdingEpsilonLog(1, 10, math.NaN()); err == nil {
		t.Error("NaN logInvDelta should fail")
	}
	if _, err := BennettSampleSizeLog(0, 0.05, 1); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := BennettSampleSizeLog(0.1, 0.05, -1); err == nil {
		t.Error("negative logInvDelta should fail")
	}
	if _, err := BennettEpsilonLog(0, 0.1, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := BennettEpsilonLog(10, 0.1, -1); err == nil {
		t.Error("negative logInvDelta should fail")
	}
}

func TestCeilToIntOverflowGuard(t *testing.T) {
	// Absurd requests saturate instead of overflowing.
	n, err := HoeffdingSampleSizeLog(1, 1e-9, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if n != math.MaxInt32 {
		t.Errorf("n = %d, want saturation at MaxInt32", n)
	}
}
