package bounds

import (
	"math"
	"testing"
)

// TestLabelComplexityRootEpsilonRegime verifies the asymptotic claim of the
// paper's related-work discussion (Section 6): with active labeling, when
// the model-overlap bound is p = O(sqrt(epsilon)), the label complexity is
// O(1/epsilon) rather than Hoeffding's O(1/epsilon^2). Labels per commit =
// p * BennettSampleSize(p, eps) = ln(2/delta)/h(eps/p); with p = sqrt(eps),
// h(sqrt(eps)) ~ eps/2, so labels * eps should approach a constant
// (2 ln(2/delta)) as eps -> 0.
func TestLabelComplexityRootEpsilonRegime(t *testing.T) {
	delta := 0.001
	limit := 2 * math.Log(2/delta)
	prevNormalized := math.Inf(1)
	for _, eps := range []float64{0.04, 0.01, 0.0025, 0.000625} {
		p := math.Sqrt(eps)
		n, err := BennettSampleSize(p, eps, delta)
		if err != nil {
			t.Fatal(err)
		}
		labels := float64(n) * p
		normalized := labels * eps
		// Monotonically approaching the limit from above, within 30% by
		// eps = 6.25e-4.
		if normalized > prevNormalized+1e-9 {
			t.Errorf("eps=%v: labels*eps = %v not decreasing (prev %v)", eps, normalized, prevNormalized)
		}
		prevNormalized = normalized
		if eps < 0.001 && math.Abs(normalized-limit)/limit > 0.3 {
			t.Errorf("eps=%v: labels*eps = %v, want within 30%% of %v", eps, normalized, limit)
		}
	}

	// Contrast: Hoeffding's labels * eps diverges like 1/eps.
	h1, err := HoeffdingSampleSizeTwoSided(2, 0.01, delta)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := HoeffdingSampleSizeTwoSided(2, 0.0025, delta)
	if err != nil {
		t.Fatal(err)
	}
	if float64(h2)*0.0025 <= float64(h1)*0.01 {
		t.Error("Hoeffding labels*eps should diverge as eps shrinks")
	}
}
