// Package bounds implements the concentration inequalities that power every
// sample-size computation in ease.ml/ci:
//
//   - Hoeffding's inequality (the paper's baseline, Section 3.1),
//   - Bennett's inequality for small-variance variables (Proposition 1,
//     the engine behind Pattern 1 and Pattern 2, Section 4),
//   - Bernstein's inequality (a closed-form small-variance alternative,
//     kept for ablations),
//   - exact binomial tail inversion ("tight numerical bounds", Section 4.3,
//     following Langford's test-set bound), and
//   - McDiarmid's inequality (the paper's proposed route to F1/AUC support,
//     Section 2.2 "Beyond accuracy").
//
// All functions are pure and deterministic. Sample sizes are returned as the
// smallest integer n satisfying the bound (ceiling of the real-valued
// solution); tolerance/confidence inversions are exact to ~1e-12.
//
// Conventions: epsilon is the error tolerance (half-width of the confidence
// interval), delta the failure probability (1-delta the reliability), r the
// dynamic range of the variable, and p an upper bound on E[X_i^2] for the
// centered per-example variables (for the difference of two models that
// disagree on at most a fraction p of examples, E[(n_i-o_i)^2] <= p).
package bounds
