// Package bounds implements the concentration inequalities that power every
// sample-size computation in ease.ml/ci:
//
//   - Hoeffding's inequality (the paper's baseline, Section 3.1),
//   - Bennett's inequality for small-variance variables (Proposition 1,
//     the engine behind Pattern 1 and Pattern 2, Section 4),
//   - Bernstein's inequality (a closed-form small-variance alternative,
//     kept for ablations),
//   - exact binomial tail inversion ("tight numerical bounds", Section 4.3,
//     following Langford's test-set bound), and
//   - McDiarmid's inequality (the paper's proposed route to F1/AUC support,
//     Section 2.2 "Beyond accuracy").
//
// All functions are pure and deterministic. Sample sizes are returned as the
// smallest integer n satisfying the bound (ceiling of the real-valued
// solution); tolerance/confidence inversions are exact to ~1e-12.
//
// # The fast exact-bound engine
//
// The paper leaves efficient computation of the Section 4.3 tight bound as
// future work; exact.go implements it as a three-layer fast path whose
// results are identical to the straightforward search (regression-pinned in
// exact_equiv_test.go):
//
//   - internal/stats walks each binomial tail from a mode anchor with the
//     multiplicative pmf recurrence over a cached log-factorial table, so a
//     tail costs O(sqrt(n p (1-p))) multiplies instead of O(n) Lgamma
//     calls (~165x on BenchmarkBinomialCDF: 147.6us -> 0.9us at n=10^4);
//   - the worst-case-over-p grid fans across a bounded worker pool
//     (internal/parallel) and the sample-size search probes speculative
//     bracket candidates concurrently;
//   - every (n, epsilon, pLo, pHi) worst-case result is memoized in an LRU
//     (internal/lru), so the binary search's stabilization pass re-checks
//     its answer for free and repeated searches are served at LRU-lookup
//     cost.
//
// Measured on the ablation benchmark (ExactSampleSize at epsilon=0.05,
// delta=0.01): 20.6ms before; 0.71ms cold (~29x) and ~1us memo-warm after.
// The stabilization pass is window-bounded (stabilizeWindow): a pathological
// input errors out instead of creeping one step at a time toward the 2^28
// search limit.
//
// Conventions: epsilon is the error tolerance (half-width of the confidence
// interval), delta the failure probability (1-delta the reliability), r the
// dynamic range of the variable, and p an upper bound on E[X_i^2] for the
// centered per-example variables (for the difference of two models that
// disagree on at most a fraction p of examples, E[(n_i-o_i)^2] <= p).
package bounds
