// Package bounds implements the concentration inequalities that power every
// sample-size computation in ease.ml/ci:
//
//   - Hoeffding's inequality (the paper's baseline, Section 3.1),
//   - Bennett's inequality for small-variance variables (Proposition 1,
//     the engine behind Pattern 1 and Pattern 2, Section 4),
//   - Bernstein's inequality (a closed-form small-variance alternative,
//     kept for ablations),
//   - exact binomial tail inversion ("tight numerical bounds", Section 4.3,
//     following Langford's test-set bound), and
//   - McDiarmid's inequality (the paper's proposed route to F1/AUC support,
//     Section 2.2 "Beyond accuracy").
//
// All functions are pure and deterministic. Sample sizes are returned as the
// smallest integer n satisfying the bound (ceiling of the real-valued
// solution); tolerance/confidence inversions are exact to ~1e-12.
//
// # The fast exact-bound engine
//
// The paper leaves efficient computation of the Section 4.3 tight bound as
// future work; this package implements it as a three-layer fast path
// (regression-pinned in exact_equiv_test.go and sweep_equiv_test.go):
//
//   - internal/stats walks each binomial tail from a mode anchor with the
//     multiplicative pmf recurrence over a cached log-factorial table, so a
//     tail costs O(sqrt(n p (1-p))) multiplies instead of O(n) Lgamma
//     calls (~165x on BenchmarkBinomialCDF: 147.6us -> 0.9us at n=10^4);
//   - the worst case over the unknown mean p is an event-driven sweep
//     (sweep.go): the failure curve's cuts change only at the lattice
//     events k/n -+ epsilon, every fixed-cut segment between events is
//     U-shaped (its closed-form derivative, stats.BinomialCDFDerivative,
//     crosses zero - to + at most once), so the supremum is the maximum
//     over the event points' one-sided limits — two smooth candidate
//     families whose peaks a coarse-tolerance bisection plus a
//     medium-tolerance ascent localize with O(log n) probes, evaluated
//     exactly only at the top;
//   - every (n, epsilon, pLo, pHi) worst-case result is memoized in a
//     sharded LRU (internal/lru), so the binary search's stabilization pass
//     re-checks its answer for free and repeated searches are served at
//     LRU-lookup cost; the sample-size search's speculative bracket probes
//     fan across a bounded worker pool (internal/parallel).
//
// # Performance
//
// Measured on the ablation benchmarks (this container, 1 CPU):
//
//   - BenchmarkExactWorstCaseSweep vs BenchmarkExactWorstCaseGrid, memo
//     bypassed: ~3x at n=10^3, ~15x at n=3*10^4, ~14x at n=3*10^5 (the
//     grid pays 64 coarse + up to 512 refinement O(sigma) evaluations per
//     probe; the sweep pays ~60-80, most at a third precision and cost).
//   - ExactSampleSize at (0.05, 0.01): 20.6ms in the straightforward
//     implementation; 0.71ms cold via the grid engine (~29x); ~0.1ms cold
//     via the sweep; ~1us memo-warm.
//
// The sweep is also exact where the grid merely sampled: the event points
// are evaluated with integer-lattice cuts (snapped like ExactFailureProb's),
// so the returned worst case is the true supremum, where the grid's sampled
// maximum ran up to ~10% under it on random inputs. That resolution error
// was not free: the grid-era ExactSampleSize(0.025, 0.05, 0, 1) = 1559
// violated its own guarantee (worst case 0.0511 > 0.05 at an attained p —
// see TestExactSampleSizeGridErrorFixed); the sweep returns the smallest
// truly sufficient size, 1560. The retired grid survives as
// ExactWorstCaseFailureGrid (grid.go), the ablation baseline and the
// equivalence oracle the property tests compare against.
//
// The stabilization pass of the sample-size search is window-bounded
// (stabilizeWindow): a pathological input errors out instead of creeping
// one step at a time toward the 2^28 search limit.
//
// Conventions: epsilon is the error tolerance (half-width of the confidence
// interval), delta the failure probability (1-delta the reliability), r the
// dynamic range of the variable, and p an upper bound on E[X_i^2] for the
// centered per-example variables (for the difference of two models that
// disagree on at most a fraction p of examples, E[(n_i-o_i)^2] <= p).
package bounds
