package bounds

import (
	"math"
	"testing"
)

func TestExactFailureProbSimple(t *testing.T) {
	// n=1, p=0.5, eps=0.4: k in {0,1} gives |k/n - 0.5| = 0.5 > 0.4 always.
	f, err := ExactFailureProb(1, 0.5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-1) > 1e-12 {
		t.Errorf("failure prob = %v, want 1", f)
	}
	// eps=0.6: never fails.
	f, err = ExactFailureProb(1, 0.5, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if f != 0 {
		t.Errorf("failure prob = %v, want 0", f)
	}
}

func TestExactFailureProbAgainstMonteCarloCounts(t *testing.T) {
	// Cross-check against a direct enumeration for a small case. Epsilon is
	// chosen off the k/n lattice so float rounding cannot flip a boundary
	// point between the two computations.
	n, p, eps := 20, 0.3, 0.149
	want := 0.0
	for k := 0; k <= n; k++ {
		if math.Abs(float64(k)/float64(n)-p) > eps {
			want += binomPMFRef(k, n, p)
		}
	}
	got, err := ExactFailureProb(n, p, eps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("failure prob = %v, want %v", got, want)
	}
}

func binomPMFRef(k, n int, p float64) float64 {
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
}

func TestExactSampleSizeBeatsHoeffding(t *testing.T) {
	eps, delta := 0.05, 0.01
	exact, err := ExactSampleSize(eps, delta, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	hoeff, err := HoeffdingSampleSizeTwoSided(1, eps, delta)
	if err != nil {
		t.Fatal(err)
	}
	if exact > hoeff {
		t.Errorf("exact %d > two-sided Hoeffding %d", exact, hoeff)
	}
	// And it must actually satisfy the guarantee.
	w, err := ExactWorstCaseFailure(exact, eps, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w > delta {
		t.Errorf("worst-case failure at returned n = %v > delta %v", w, delta)
	}
}

func TestExactSampleSizeRestrictedMeanIsSmaller(t *testing.T) {
	// Section 4.2: knowing n > 0.9 should shrink the testset.
	eps, delta := 0.02, 0.001
	full, err := ExactSampleSize(eps, delta, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	high, err := ExactSampleSize(eps, delta, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if high >= full {
		t.Errorf("restricted-mean size %d not smaller than full-range %d", high, full)
	}
	// Variance at p=0.95 is ~5x smaller than at p=0.5; expect a substantial cut.
	if float64(high) > 0.6*float64(full) {
		t.Errorf("restricted-mean size %d saves too little vs %d", high, full)
	}
}

func TestExactSampleSizeErrors(t *testing.T) {
	if _, err := ExactSampleSize(0, 0.1, 0, 1); err == nil {
		t.Error("epsilon=0 should fail")
	}
	if _, err := ExactSampleSize(0.1, 0, 0, 1); err == nil {
		t.Error("delta=0 should fail")
	}
	if _, err := ExactSampleSize(0.1, 0.1, 0.8, 0.2); err == nil {
		t.Error("inverted mean interval should fail")
	}
	if _, err := ExactFailureProb(0, 0.5, 0.1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := ExactFailureProb(10, 1.5, 0.1); err == nil {
		t.Error("p>1 should fail")
	}
}

func TestMcDiarmidAccuracyMatchesHoeffding(t *testing.T) {
	// With sensitivity scale s=1 (accuracy), McDiarmid == two-sided Hoeffding.
	m, err := McDiarmidSampleSize(1, 0.01, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	h, err := HoeffdingSampleSizeTwoSided(1, 0.01, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if m != h {
		t.Errorf("McDiarmid(s=1) = %d, Hoeffding two-sided = %d; want equal", m, h)
	}
}

func TestMcDiarmidTail(t *testing.T) {
	c := make([]float64, 100)
	for i := range c {
		c[i] = 0.01 // mean-like statistic on n=100
	}
	tail, err := McDiarmidTail(c, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * math.Exp(-2*0.01/0.01) // sum c^2 = 0.01
	if math.Abs(tail-want) > 1e-12 {
		t.Errorf("tail = %v, want %v", tail, want)
	}
	if _, err := McDiarmidTail(nil, 0.1); err == nil {
		t.Error("empty sensitivities should fail")
	}
	if _, err := McDiarmidTail([]float64{-1}, 0.1); err == nil {
		t.Error("negative sensitivity should fail")
	}
}

func TestF1Sensitivity(t *testing.T) {
	s, err := F1Sensitivity(0.25)
	if err != nil || s != 8 {
		t.Errorf("F1Sensitivity(0.25) = %v, %v; want 8", s, err)
	}
	if _, err := F1Sensitivity(0); err == nil {
		t.Error("minPositive=0 should fail")
	}
	if _, err := F1Sensitivity(2); err == nil {
		t.Error("minPositive>1 should fail")
	}
}
