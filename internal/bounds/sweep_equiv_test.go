package bounds

import (
	"math"
	"math/rand"
	"testing"

	"github.com/easeml/ci/internal/stats"
)

// Equivalence and property tests for the event-driven worst-case sweep
// against two independent oracles:
//
//   - the grid ablation (ExactWorstCaseFailureGrid), which only samples the
//     failure curve and therefore can never exceed the supremum the sweep
//     computes: sweep >= grid must hold everywhere the values are
//     representable, and the two must agree tightly since the grid refines
//     to lattice resolution around its coarse argmax;
//   - a brute-force supremum for small n (every lattice event candidate
//     plus the interval endpoints, evaluated with the straightforward
//     formulas), which the sweep must match to float accuracy.
//
// sweepFloor is the absolute value below which comparisons are skipped:
// failure probabilities this small underflow toward float64's denormal
// range, where the sweep's localized search may legitimately report 0
// while a lucky grid point lands on a denormal. No practical delta is
// within two hundred orders of magnitude of this.
const sweepFloor = 1e-60

// sweepVsGrid runs both implementations and applies the property checks.
func sweepVsGrid(t *testing.T, n int, eps, pLo, pHi float64) {
	t.Helper()
	ws, err := ExactWorstCaseFailureSweep(n, eps, pLo, pHi)
	if err != nil {
		t.Fatalf("sweep(%d, %g, [%g,%g]): %v", n, eps, pLo, pHi, err)
	}
	wg, err := ExactWorstCaseFailureGrid(n, eps, pLo, pHi)
	if err != nil {
		t.Fatalf("grid(%d, %g, [%g,%g]): %v", n, eps, pLo, pHi, err)
	}
	if wg < sweepFloor && ws < sweepFloor {
		return
	}
	// The grid samples the curve the sweep maximizes exactly, so the sweep
	// must dominate it (1e-9 relative slack for cross-platform float
	// wiggle; empirically the inequality is exact over tens of thousands
	// of random cases).
	if ws < wg*(1-1e-9) {
		t.Errorf("sweep(%d, %g, [%g,%g]) = %.17g below grid %.17g (rel %.3g): the sweep missed the maximum",
			n, eps, pLo, pHi, ws, wg, (wg-ws)/wg)
	}
	// And it must stay tight: the grid refines to lattice resolution
	// around its coarse argmax, so the supremum can exceed the sampled
	// maximum only by the local ripple — observed <= ~22% in the worst
	// random case, most cases far tighter. 50% catches localization bugs
	// (a wrong hump is off by orders of magnitude) without flaking.
	if ws > wg*1.5+sweepFloor {
		t.Errorf("sweep(%d, %g, [%g,%g]) = %.17g implausibly far above grid %.17g: wrong candidate family or cuts",
			n, eps, pLo, pHi, ws, wg)
	}
}

// TestSweepVsGridProperty hammers randomized (n, epsilon, [pLo, pHi])
// across six orders of magnitude of n and three of epsilon, including
// restricted, high-mean, and degenerate intervals. Runs under -race in CI.
func TestSweepVsGridProperty(t *testing.T) {
	trials := 400
	if testing.Short() {
		trials = 60
	}
	rng := rand.New(rand.NewSource(20260728))
	for trial := 0; trial < trials; trial++ {
		n := 1 + rng.Intn(100000)
		eps := math.Pow(10, -0.5-2.5*rng.Float64()) // ~0.3 .. 1e-3
		pLo, pHi := 0.0, 1.0
		switch trial % 5 {
		case 1: // generic restricted interval
			pLo = rng.Float64() * 0.9
			pHi = pLo + rng.Float64()*(1-pLo)
		case 2: // degenerate point interval
			pLo = rng.Float64()
			pHi = pLo
		case 3: // high-mean interval (the "n > 0.9" pattern regime)
			pLo = 0.8 + 0.2*rng.Float64()
			pHi = pLo + (1-pLo)*rng.Float64()
		case 4: // narrow interval around the variance peak
			pLo = 0.45 + 0.1*rng.Float64()
			pHi = math.Min(1, pLo+0.02*rng.Float64())
		}
		sweepVsGrid(t, n, eps, pLo, pHi)
	}
}

// bruteForceSup computes the supremum the slow, obviously-correct way:
// every lattice event candidate (both one-sided limits, built from the
// same integer cut arithmetic the theory prescribes) plus the interval
// endpoints. O(n sigma) — only usable at small n, where it is an oracle
// independent of the sweep's localization machinery.
func bruteForceSup(n int, eps, pLo, pHi float64) float64 {
	nf := float64(n)
	c := nf * eps
	best, _ := ExactFailureProb(n, pLo, eps)
	if f, _ := ExactFailureProb(n, pHi, eps); f > best {
		best = f
	}
	for k := 0; k <= n; k++ {
		// lo family: right-sided limit at p = (k+c)/n.
		if p := (float64(k) + c) / nf; p >= pLo && p < pHi {
			h := int(math.Floor(snapLattice(float64(k)+2*c))) + 1
			f := stats.BinomialCDF(k, n, clamp01(p)) + stats.BinomialSurvival(h, n, clamp01(p))
			if f > 1 {
				f = 1
			}
			if f > best {
				best = f
			}
		}
		// hi family: left-sided limit at p = (k-c)/n.
		if p := (float64(k) - c) / nf; p > pLo && p <= pHi {
			l := int(math.Ceil(snapLattice(float64(k)-2*c))) - 1
			f := stats.BinomialCDF(l, n, clamp01(p)) + stats.BinomialSurvival(k, n, clamp01(p))
			if f > 1 {
				f = 1
			}
			if f > best {
				best = f
			}
		}
	}
	return best
}

// TestSweepMatchesBruteForce pins the sweep to the exhaustive supremum at
// small n, where the oracle is cheap: the localized search must lose
// nothing to its bisections, ascents, and windows.
func TestSweepMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(600)
		eps := math.Pow(10, -0.3-2*rng.Float64())
		pLo, pHi := 0.0, 1.0
		if trial%3 == 1 {
			pLo = rng.Float64() * 0.9
			pHi = pLo + rng.Float64()*(1-pLo)
		}
		ws, err := ExactWorstCaseFailureSweep(n, eps, pLo, pHi)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceSup(n, eps, pLo, pHi)
		if want < sweepFloor {
			continue
		}
		if rel := math.Abs(ws-want) / want; rel > 1e-12 {
			t.Errorf("sweep(%d, %g, [%g,%g]) = %.17g, brute-force supremum %.17g (rel %.3g)",
				n, eps, pLo, pHi, ws, want, rel)
		}
	}
}

// FuzzSweepVsGrid is the go-fuzz entry for the same property; the seed
// corpus pins the lattice-boundary regressions from PR 2 and the
// grid-resolution bug the sweep fixed.
func FuzzSweepVsGrid(f *testing.F) {
	f.Add(20, 0.15, 0.0, 1.0)    // 20*(0.3-0.15) float-rounds off-lattice
	f.Add(640, 0.05, 0.0, 1.0)   // 640*0.45 rounds above 288
	f.Add(1559, 0.025, 0.0, 1.0) // grid under-sampled: sup > delta here
	f.Add(1560, 0.025, 0.0, 1.0)
	f.Add(40, 0.1, 0.0, 1.0)
	f.Add(1000, 0.55, 0.9, 1.0)
	f.Add(10, 0.3, 0.5, 0.5)
	f.Fuzz(func(t *testing.T, n int, eps, pLo, pHi float64) {
		if n <= 0 || n > 100000 {
			t.Skip()
		}
		if !(eps > 1e-4) || eps > 0.5 {
			t.Skip()
		}
		if math.IsNaN(pLo) || math.IsNaN(pHi) || pLo < 0 || pHi > 1 || pLo > pHi {
			t.Skip()
		}
		sweepVsGrid(t, n, eps, pLo, pHi)
	})
}

// TestSweepLatticeBoundaryRegressions pins the PR 2 lattice-boundary
// cases as whole-interval worst cases: at these (n, eps) tuples n(p +- eps)
// lands ULPs off mathematically-integer lattice points somewhere in [0, 1],
// and the sweep's integer cut arithmetic must agree with the snapped
// pointwise evaluation both at the pinned p and over the full interval.
func TestSweepLatticeBoundaryRegressions(t *testing.T) {
	cases := []struct {
		n   int
		p   float64 // the boundary-sensitive mean from the PR 2 table
		eps float64
	}{
		{20, 0.3, 0.15},
		{640, 0.5, 0.05},
		{40, 0.5, 0.1},
		{1000, 0.55, 0.05},
		{10, 0.5, 0.3},
	}
	for _, c := range cases {
		// Degenerate interval at the boundary-sensitive p: the sweep has
		// no events to enumerate and must equal the pointwise evaluation
		// bit-for-bit.
		point, err := ExactFailureProb(c.n, c.p, c.eps)
		if err != nil {
			t.Fatal(err)
		}
		ws, err := ExactWorstCaseFailureSweep(c.n, c.eps, c.p, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if ws != point {
			t.Errorf("sweep(%d, %g, [%g,%g]) = %.17g, want pointwise %.17g",
				c.n, c.eps, c.p, c.p, ws, point)
		}
		// Full interval: property checks against the grid.
		sweepVsGrid(t, c.n, c.eps, 0, 1)
		// And the supremum dominates the boundary-sensitive point.
		full, err := ExactWorstCaseFailureSweep(c.n, c.eps, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if full < point {
			t.Errorf("sweep(%d, %g, [0,1]) = %.17g below the attained f(%g) = %.17g",
				c.n, c.eps, full, c.p, point)
		}
	}
}

// TestSegmentUShape verifies the structural fact the sweep rests on, via
// the closed-form derivative: on a fixed-cut segment the derivative of
// CDF(lo) + Survival(hi) changes sign from - to + at most once, so the
// segment maximum sits at an endpoint (the analytic critical point is a
// minimum, which is why the sweep never needs a Newton solve).
func TestSegmentUShape(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(5000)
		lo := rng.Intn(n)
		hi := lo + 1 + rng.Intn(n-lo)
		deriv := func(p float64) float64 {
			return stats.BinomialCDFDerivative(lo, n, p) + stats.BinomialSurvivalDerivative(hi, n, p)
		}
		// Sample the derivative across (0, 1); once it turns positive it
		// must stay positive.
		turned := false
		for i := 1; i < 200; i++ {
			p := float64(i) / 200
			d := deriv(p)
			if turned && d < 0 {
				t.Fatalf("n=%d lo=%d hi=%d: derivative re-crossed zero at p=%g (d=%g): segment not U-shaped",
					n, lo, hi, p, d)
			}
			if d > 0 {
				turned = true
			}
		}
	}
}
