package bounds

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHoeffdingSampleSizePaperNumbers(t *testing.T) {
	// Section 1 / 3.6 of the paper: an (epsilon=0.01, delta=1e-4) estimate of
	// a [0,1] variable needs "more than 46K labels".
	n, err := HoeffdingSampleSize(1, 0.01, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	if n != 46052 {
		t.Errorf("HoeffdingSampleSize(1, 0.01, 1e-4) = %d, want 46052", n)
	}

	// Section 3.3: F :- n > 0.8 +/- 0.05 with delta/2^32 needs 6279 samples.
	n, err = HoeffdingSampleSize(1, 0.05, 0.0001/math.Pow(2, 32))
	if err != nil {
		t.Fatal(err)
	}
	if n != 6279 {
		t.Errorf("fully adaptive H=32 sample size = %d, want 6279", n)
	}

	// Same condition at epsilon=0.01 "blows up to 156,955" (the paper's
	// Figure 2 prints the ceiling 156,956).
	n, err = HoeffdingSampleSize(1, 0.01, 0.0001/math.Pow(2, 32))
	if err != nil {
		t.Fatal(err)
	}
	if n != 156956 {
		t.Errorf("fully adaptive H=32 epsilon=0.01 sample size = %d, want 156956", n)
	}

	// Non-adaptive H=32: 63K labels (Figure 2: 63,381).
	n, err = HoeffdingSampleSize(1, 0.01, 0.0001/32)
	if err != nil {
		t.Fatal(err)
	}
	if n != 63381 {
		t.Errorf("non-adaptive H=32 sample size = %d, want 63381", n)
	}
}

func TestHoeffdingSampleSizeRangeScaling(t *testing.T) {
	n1, err := HoeffdingSampleSize(1, 0.02, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := HoeffdingSampleSize(2, 0.02, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	// Quadrupling with range 2 (up to rounding).
	if n2 < 4*n1-4 || n2 > 4*n1+4 {
		t.Errorf("range-2 size %d not ~4x range-1 size %d", n2, n1)
	}
}

func TestHoeffdingSampleSizeErrors(t *testing.T) {
	cases := []struct {
		r, eps, delta float64
	}{
		{0, 0.1, 0.1}, {-1, 0.1, 0.1}, {1, 0, 0.1}, {1, -0.5, 0.1},
		{1, 0.1, 0}, {1, 0.1, 1}, {1, 0.1, 1.5}, {math.NaN(), 0.1, 0.1},
		{1, math.Inf(1), 0.1},
	}
	for _, c := range cases {
		if _, err := HoeffdingSampleSize(c.r, c.eps, c.delta); err == nil {
			t.Errorf("HoeffdingSampleSize(%v,%v,%v) should fail", c.r, c.eps, c.delta)
		}
	}
}

func TestHoeffdingEpsilonInvertsSampleSize(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 0.5 + rng.Float64()*1.5
		eps := 0.005 + rng.Float64()*0.1
		delta := math.Pow(10, -1-4*rng.Float64())
		n, err := HoeffdingSampleSize(r, eps, delta)
		if err != nil {
			return false
		}
		got, err := HoeffdingEpsilon(r, n, delta)
		if err != nil {
			return false
		}
		// n was rounded up, so achieved epsilon must be <= requested
		// and within the one-sample discretization of it.
		if got > eps {
			return false
		}
		gotPrev, err := HoeffdingEpsilon(r, n-1, delta)
		return err == nil && gotPrev > eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHoeffdingDeltaConsistency(t *testing.T) {
	n := 5000
	eps := 0.02
	d, err := HoeffdingDelta(1, n, eps)
	if err != nil {
		t.Fatal(err)
	}
	e, err := HoeffdingEpsilon(1, n, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-eps) > 1e-9 {
		t.Errorf("round trip epsilon = %v, want %v", e, eps)
	}
}

func TestHoeffdingMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eps := 0.01 + rng.Float64()*0.2
		delta := 0.0001 + rng.Float64()*0.1
		n1, err1 := HoeffdingSampleSize(1, eps, delta)
		n2, err2 := HoeffdingSampleSize(1, eps/2, delta)
		n3, err3 := HoeffdingSampleSize(1, eps, delta/10)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return n2 >= n1 && n3 >= n1 // tighter eps or delta never needs fewer samples
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
