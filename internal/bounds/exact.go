package bounds

import (
	"fmt"
	"math"
	"sync/atomic"

	"github.com/easeml/ci/internal/lru"
	"github.com/easeml/ci/internal/parallel"
	"github.com/easeml/ci/internal/stats"
)

// Exact ("tight numerical") bounds, Section 4.3 of the paper: for a test
// condition over n i.i.d. Bernoulli draws one can compute the exact failure
// probability of the empirical-mean estimator from the binomial pmf, and
// pick the minimal n whose worst case over the unknown true mean p meets
// delta. There is no closed form; the paper leaves efficient approximation
// as future work, and this package implements a fast exact engine:
//
//   - each point evaluation costs O(sigma) instead of O(n): the binomial
//     tails are walked from a mode anchor with the multiplicative pmf
//     recurrence (internal/stats), not summed term-by-term through Lgamma;
//   - the worst case over the unknown mean p is an event-driven sweep
//     (sweep.go): the failure curve's cut indices change only at the
//     lattice events k/n -+ epsilon and every fixed-cut segment between
//     events is U-shaped (closed-form derivative), so the supremum is the
//     maximum over event-point limits — located by a binary search on the
//     analytic slope sign plus a small exactly-evaluated window, instead
//     of the 64-coarse + up-to-512-refinement grid the sweep replaced
//     (kept as ExactWorstCaseFailureGrid, the ablation baseline and
//     equivalence oracle in grid.go);
//   - the speculative bracket-expansion probes of the sample-size search
//     fan across a bounded worker pool (internal/parallel);
//   - worst-case results are memoized by (n, epsilon, pLo, pHi) in an LRU
//     (internal/lru), so the binary search, its stabilization pass, and any
//     repeated server-side plan query never recompute a probe.

// worstKey identifies one worst-case evaluation.
type worstKey struct {
	n             int
	eps, pLo, pHi float64
}

func hashWorstKey(k worstKey) uint64 {
	return uint64(lru.NewKeyHash().I(k.n).F64(k.eps).F64(k.pLo).F64(k.pHi).Sum())
}

// worstCache memoizes ExactWorstCaseFailure. 1<<15 entries x ~50 bytes is
// ~1.6 MB, enough to hold every probe of many concurrent sample-size
// searches; the cache is sharded so concurrent searches (every plan query
// of a loaded server bottoms out here) don't serialize on one mutex.
var worstCache = lru.NewSharded[worstKey, float64](1<<15, hashWorstKey)

// worstEvals counts uncached worst-case evaluations (test/observability
// hook for the memoization guarantees).
var worstEvals atomic.Uint64

// ExactFailureProb returns Pr[ |K/n - p| > epsilon ] for K ~ Binomial(n, p):
// the exact two-sided failure probability of the empirical mean.
func ExactFailureProb(n int, p, epsilon float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("bounds: n must be positive, got %d", n)
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("bounds: mean p must be in [0,1], got %v", p)
	}
	if !(epsilon > 0) {
		return 0, fmt.Errorf("bounds: epsilon must be positive, got %v", epsilon)
	}
	nf := float64(n)
	// |k/n - p| > eps  <=>  k < n(p-eps)  or  k > n(p+eps). Both cuts use
	// strict inequalities: a k exactly on the boundary is not a failure,
	// which ceil-1/floor+1 handle including the case where n(p±eps) is an
	// integer. When n(p±eps) is mathematically an integer the two float
	// roundings (p±eps, then the product) can land a few ULPs off it —
	// e.g. 20*(0.3-0.15) = 3.0000000000000004 — which would shift the cut
	// by one and mis-count the boundary lattice point, so values within a
	// few ULPs of an integer are snapped onto it first.
	loCut := int(math.Ceil(snapLattice(nf*(p-epsilon)))) - 1  // largest k with k/n < p-eps
	hiCut := int(math.Floor(snapLattice(nf*(p+epsilon)))) + 1 // smallest k with k/n > p+eps
	lower := stats.BinomialCDF(loCut, n, p)
	upper := stats.BinomialSurvival(hiCut, n, p)
	f := lower + upper
	if f > 1 {
		f = 1
	}
	return f, nil
}

// snapLattice rounds x to the nearest integer when it lies within a few
// ULPs of one, compensating for the two float roundings in n*(p±eps); the
// tolerance (8 ULPs relative, with an absolute floor near zero) is far
// wider than the computation's error yet far narrower than the 1/n gap
// between lattice points.
func snapLattice(x float64) float64 {
	r := math.Round(x)
	if r == x {
		return x
	}
	const ulp = 0x1p-52
	if math.Abs(x-r) <= 8*ulp*math.Max(1, math.Abs(x)) {
		return r
	}
	return x
}

// ExactWorstCaseFailure returns sup over p in [pLo, pHi] of
// ExactFailureProb(n, p, epsilon), computed by the event-driven sweep
// (sweep.go): exact evaluation at the lattice-event candidates, so there is
// no grid-resolution error in the returned maximum.
//
// Results are memoized by (n, epsilon, pLo, pHi).
func ExactWorstCaseFailure(n int, epsilon, pLo, pHi float64) (float64, error) {
	if pLo < 0 || pHi > 1 || pLo > pHi {
		return 0, fmt.Errorf("bounds: invalid mean interval [%v,%v]", pLo, pHi)
	}
	key := worstKey{n: n, eps: epsilon, pLo: pLo, pHi: pHi}
	if w, ok := worstCache.Get(key); ok {
		return w, nil
	}
	w, err := ExactWorstCaseFailureSweep(n, epsilon, pLo, pHi)
	if err != nil {
		return 0, err
	}
	worstCache.Put(key, w)
	return w, nil
}

// searchLimit bounds every growth loop of the sample-size search.
const searchLimit = 1 << 28

// stabilizeWindow bounds how far past the binary-search answer the
// lattice-ripple stabilization pass may creep. Ripples at realistic
// (epsilon, delta) die out within a handful of steps; a window this wide
// failing indicates a genuinely pathological input, which is reported as an
// error instead of silently scanning millions of candidates.
const stabilizeWindow = 64

// expandBatch is how many speculative bracket-expansion probes run
// concurrently when the Hoeffding seed turns out to sit on a lattice ripple.
const expandBatch = 3

// BracketSeed selects how ExactSampleSizeSeeded brackets its binary
// search before probing.
type BracketSeed int

const (
	// SeedNormal brackets around an inverse-normal-CDF estimate of the
	// tight bound, galloping out from it; the Hoeffding size remains the
	// upper safety rail. This is the default: the estimate lands within a
	// few percent of the answer and cuts cold-search probes roughly in
	// half.
	SeedNormal BracketSeed = iota
	// SeedHoeffding is the pre-seed behavior: binary search over
	// [1, HoeffdingSampleSizeTwoSided]. Kept as the ablation baseline for
	// the probe-count benchmarks.
	SeedHoeffding
)

// normalBracketSeed estimates the tight sample size from the central limit
// theorem: the empirical mean of n Bernoulli(p) draws is approximately
// N(p, p(1-p)/n), so the two-sided failure probability is about
// 2(1 - Phi(eps sqrt(n)/sigma)) and meeting delta needs
// n ≈ (z_{1-delta/2} sigma / eps)^2, with sigma^2 the worst-case variance
// over the mean interval. The estimate is only a bracket seed — the search
// still proves its answer with exact probes — so a skewed tail (tiny n,
// extreme p) costs extra probes, never correctness.
func normalBracketSeed(epsilon, delta, pLo, pHi float64) int {
	sigma2 := pLo * (1 - pLo)
	if v := pHi * (1 - pHi); v > sigma2 {
		sigma2 = v
	}
	if pLo <= 0.5 && 0.5 <= pHi {
		sigma2 = 0.25
	}
	z := stats.NormalQuantile(1 - delta/2)
	n := z * z * sigma2 / (epsilon * epsilon)
	if math.IsNaN(n) || n < 1 {
		return 1
	}
	if n > searchLimit {
		return searchLimit
	}
	return int(math.Ceil(n))
}

// expandBracket grows the search bracket past start (a known-bad size),
// probing batches of geometrically spaced candidates concurrently. It
// returns the tightened bracket: lo is one past the largest size known to
// fail, hi the smallest size found to satisfy the bound. Candidates are
// capped at searchLimit; if the bound still fails there, the search has
// diverged.
func expandBracket(ok func(int) (bool, error), start int) (lo, hi int, err error) {
	lo, hi = start+1, start
	for {
		cands := make([]int, 0, expandBatch)
		for c := hi; len(cands) < expandBatch; {
			c = c + c/4 + 1
			if c > searchLimit {
				// Clamp the last candidate to searchLimit itself rather
				// than skipping the sizes just below it.
				if hi < searchLimit && (len(cands) == 0 || cands[len(cands)-1] < searchLimit) {
					cands = append(cands, searchLimit)
				}
				break
			}
			cands = append(cands, c)
		}
		if len(cands) == 0 {
			return 0, 0, fmt.Errorf("bounds: exact sample size search diverged (no candidate below %d)", searchLimit)
		}
		goods := make([]bool, len(cands))
		err := parallel.ForErr(len(cands), func(i int) error {
			g, err := ok(cands[i])
			goods[i] = g
			return err
		})
		if err != nil {
			return 0, 0, err
		}
		for i, g := range goods {
			if g {
				// Everything before the first good candidate is known bad.
				if i > 0 {
					lo = cands[i-1] + 1
				}
				return lo, cands[i], nil
			}
		}
		hi = cands[len(cands)-1]
		lo = hi + 1
		if hi >= searchLimit {
			return 0, 0, fmt.Errorf("bounds: exact sample size search diverged (bound still fails at %d)", searchLimit)
		}
	}
}

// gallopDivisors are the successive step sizes (position/divisor) the
// seeded bracket gallop takes away from the normal estimate: a tight first
// step for the common case where the estimate is within a couple percent
// of the answer, then exponentially coarser ones.
var gallopDivisors = []int{32, 16, 8, 4, 2, 1}

// bracketAround turns the normal-approximation estimate est into a binary
// search bracket [lo, hi] with hi known to satisfy ok and lo-1 known (or
// trivially assumed, at lo = 1) to fail, galloping outward from est with
// geometrically growing steps. upper — the two-sided Hoeffding size — is
// the safety rail: if the gallop climbs past it without success the search
// falls back to the rail and, failing even there, to bracket expansion
// beyond it.
func bracketAround(ok func(int) (bool, error), est, upper int) (lo, hi int, err error) {
	good, err := ok(est)
	if err != nil {
		return 0, 0, err
	}
	if good {
		// Estimate satisfies the bound; gallop down to bracket the answer
		// from below.
		lo, hi = 1, est
		for _, div := range gallopDivisors {
			c := hi - hi/div - 2
			if c < lo {
				c = lo
			}
			if c >= hi {
				break
			}
			g, err := ok(c)
			if err != nil {
				return 0, 0, err
			}
			if !g {
				lo = c + 1
				break
			}
			hi = c
			if hi == 1 {
				break
			}
		}
		return lo, hi, nil
	}
	// Estimate falls short; gallop up toward the Hoeffding rail.
	lo = est + 1
	c := est
	for _, div := range gallopDivisors {
		c = c + c/div + 2
		if c >= upper {
			break
		}
		g, err := ok(c)
		if err != nil {
			return 0, 0, err
		}
		if g {
			return lo, c, nil
		}
		lo = c + 1
	}
	good, err = ok(upper)
	if err != nil {
		return 0, 0, err
	}
	if good {
		return lo, upper, nil
	}
	return expandBracket(ok, upper)
}

// ExactSampleSize returns the smallest n such that the exact two-sided
// failure probability of the empirical mean is at most delta for every true
// mean in [pLo, pHi]. Passing the full interval [0, 1] reproduces the
// assumption-free tight bound; narrowing it (e.g. [0.9, 1] for the
// "n > 0.9" pattern of Section 4.2) yields the variance-adaptive savings.
func ExactSampleSize(epsilon, delta, pLo, pHi float64) (int, error) {
	return ExactSampleSizeSeeded(epsilon, delta, pLo, pHi, SeedNormal)
}

// ExactSampleSizeSeeded is ExactSampleSize with an explicit bracket seed.
// The seed decides where the first probes land and therefore how many are
// needed; because the stabilization pass scans forward from the bracket's
// answer to the first two consecutive successes, both seeds agree wherever
// the failure curve's ripples are local (every case observed in practice —
// the regression table pins them), though a pathological curve could in
// principle part them.
//
// The worst-case failure is not exactly monotone in n (lattice effects), so
// after bracketing and binary search the result is nudged forward past any
// local non-monotonicity. Probes flow through the worst-case memo, so the
// stabilization pass re-checks the binary-search answer for free and
// repeated searches at the same (epsilon, delta) are near-instant.
func ExactSampleSizeSeeded(epsilon, delta, pLo, pHi float64, seed BracketSeed) (int, error) {
	if err := checkREpsDelta(1, epsilon, delta); err != nil {
		return 0, err
	}
	if pLo < 0 || pHi > 1 || pLo > pHi {
		return 0, fmt.Errorf("bounds: invalid mean interval [%v,%v]", pLo, pHi)
	}
	ok := func(n int) (bool, error) {
		w, err := ExactWorstCaseFailure(n, epsilon, pLo, pHi)
		return w <= delta, err
	}
	// The two-sided Hoeffding size is the upper safety rail: the exact
	// bound is never worse than it (up to lattice ripple, which the
	// expansion below absorbs).
	upper, err := HoeffdingSampleSizeTwoSided(1, epsilon, delta)
	if err != nil {
		return 0, err
	}
	var lo, hi int
	est := normalBracketSeed(epsilon, delta, pLo, pHi)
	if seed == SeedNormal && est < upper {
		lo, hi, err = bracketAround(ok, est, upper)
	} else {
		lo, hi = 1, upper
		if good, okErr := ok(hi); okErr != nil {
			err = okErr
		} else if !good {
			// Lattice ripple at the Hoeffding size; expand conservatively.
			lo, hi, err = expandBracket(ok, hi)
		}
	}
	if err != nil {
		return 0, fmt.Errorf("%w (epsilon=%v delta=%v)", err, epsilon, delta)
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		good, err := ok(mid)
		if err != nil {
			return 0, err
		}
		if good {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// Guard against lattice non-monotonicity: advance until the bound holds
	// at n and n+1 (two consecutive successes make later failures vanishingly
	// unlikely in practice). ok(lo) is a memo hit on the first iteration —
	// the binary search just computed it — and the window is bounded so a
	// pathological input fails loudly instead of creeping toward infinity.
	for nudges := 0; nudges <= stabilizeWindow; nudges++ {
		g1, err := ok(lo)
		if err != nil {
			return 0, err
		}
		g2, err := ok(lo + 1)
		if err != nil {
			return 0, err
		}
		if g1 && g2 {
			return lo, nil
		}
		lo++
	}
	return 0, fmt.Errorf("bounds: exact sample size did not stabilize within %d steps of the binary-search answer (epsilon=%v delta=%v)", stabilizeWindow, epsilon, delta)
}

// ExactProbeEvals reports how many uncached worst-case sweep evaluations
// have run process-wide (observability: the difference across a request
// measures how much real work the memo saved).
func ExactProbeEvals() uint64 { return worstEvals.Load() }

// ExactCacheStats reports the worst-case memo's hit/miss counters and size.
func ExactCacheStats() (hits, misses uint64, size int) {
	return worstCache.Hits(), worstCache.Misses(), worstCache.Len()
}

// ResetExactCache empties the worst-case memo and resets the probe and
// sweep counters. Used by tests and by the server's admin cache-reset
// endpoint.
func ResetExactCache() {
	worstCache.Reset()
	worstEvals.Store(0)
	sweepEventsEnumerated.Store(0)
	sweepSegmentsAnalytic.Store(0)
	sweepSegmentsRefined.Store(0)
}
