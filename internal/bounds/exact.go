package bounds

import (
	"fmt"
	"math"

	"github.com/easeml/ci/internal/stats"
)

// Exact ("tight numerical") bounds, Section 4.3 of the paper: for a test
// condition over n i.i.d. Bernoulli draws one can compute the exact failure
// probability of the empirical-mean estimator from the binomial pmf, and
// pick the minimal n whose worst case over the unknown true mean p meets
// delta. There is no closed form; the paper leaves efficient approximation
// as future work, and this file implements the direct numerical search.

// ExactFailureProb returns Pr[ |K/n - p| > epsilon ] for K ~ Binomial(n, p):
// the exact two-sided failure probability of the empirical mean.
func ExactFailureProb(n int, p, epsilon float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("bounds: n must be positive, got %d", n)
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("bounds: mean p must be in [0,1], got %v", p)
	}
	if !(epsilon > 0) {
		return 0, fmt.Errorf("bounds: epsilon must be positive, got %v", epsilon)
	}
	nf := float64(n)
	// |k/n - p| > eps  <=>  k < n(p-eps)  or  k > n(p+eps). Both cuts use
	// strict inequalities: a k exactly on the boundary is not a failure,
	// which ceil-1/floor+1 handle including the case where n(p±eps) is an
	// integer.
	loCut := int(math.Ceil(nf*(p-epsilon))) - 1  // largest k with k/n < p-eps
	hiCut := int(math.Floor(nf*(p+epsilon))) + 1 // smallest k with k/n > p+eps
	lower := stats.BinomialCDF(loCut, n, p)
	upper := stats.BinomialSurvival(hiCut, n, p)
	f := lower + upper
	if f > 1 {
		f = 1
	}
	return f, nil
}

// ExactWorstCaseFailure returns max over p in [pLo, pHi] of
// ExactFailureProb(n, p, epsilon), evaluated on a grid with local
// refinement. The failure probability is piecewise smooth in p with ripples
// at the lattice points k/n +- epsilon, so a grid finer than 1/n around the
// coarse maximum captures the true maximum to well under 1% relative error,
// which is enough for sample-size search (the result is then validated by
// re-evaluation at the returned n).
func ExactWorstCaseFailure(n int, epsilon, pLo, pHi float64) (float64, error) {
	if pLo < 0 || pHi > 1 || pLo > pHi {
		return 0, fmt.Errorf("bounds: invalid mean interval [%v,%v]", pLo, pHi)
	}
	const coarse = 64
	worst := 0.0
	worstP := pLo
	step := (pHi - pLo) / coarse
	if step == 0 {
		return ExactFailureProb(n, pLo, epsilon)
	}
	for i := 0; i <= coarse; i++ {
		p := pLo + float64(i)*step
		f, err := ExactFailureProb(n, p, epsilon)
		if err != nil {
			return 0, err
		}
		if f > worst {
			worst, worstP = f, p
		}
	}
	// Local refinement around the coarse argmax at lattice resolution.
	lo := math.Max(pLo, worstP-step)
	hi := math.Min(pHi, worstP+step)
	fineSteps := 4 * n / coarse
	if fineSteps < 32 {
		fineSteps = 32
	}
	if fineSteps > 512 {
		fineSteps = 512
	}
	for i := 0; i <= fineSteps; i++ {
		p := lo + (hi-lo)*float64(i)/float64(fineSteps)
		f, err := ExactFailureProb(n, p, epsilon)
		if err != nil {
			return 0, err
		}
		if f > worst {
			worst = f
		}
	}
	return worst, nil
}

// ExactSampleSize returns the smallest n such that the exact two-sided
// failure probability of the empirical mean is at most delta for every true
// mean in [pLo, pHi]. Passing the full interval [0, 1] reproduces the
// assumption-free tight bound; narrowing it (e.g. [0.9, 1] for the
// "n > 0.9" pattern of Section 4.2) yields the variance-adaptive savings.
//
// The worst-case failure is not exactly monotone in n (lattice effects), so
// after an exponential bracket and binary search the result is nudged
// forward past any local non-monotonicity.
func ExactSampleSize(epsilon, delta, pLo, pHi float64) (int, error) {
	if err := checkREpsDelta(1, epsilon, delta); err != nil {
		return 0, err
	}
	if pLo < 0 || pHi > 1 || pLo > pHi {
		return 0, fmt.Errorf("bounds: invalid mean interval [%v,%v]", pLo, pHi)
	}
	ok := func(n int) (bool, error) {
		w, err := ExactWorstCaseFailure(n, epsilon, pLo, pHi)
		return w <= delta, err
	}
	// Exponential bracket, seeded at a fraction of the Hoeffding size
	// (the exact bound is never worse than two-sided Hoeffding).
	upper, err := HoeffdingSampleSizeTwoSided(1, epsilon, delta)
	if err != nil {
		return 0, err
	}
	lo, hi := 1, upper
	if good, err := ok(hi); err != nil {
		return 0, err
	} else if !good {
		// Lattice ripple at the Hoeffding size; expand conservatively.
		for {
			hi = hi + hi/4 + 1
			good, err := ok(hi)
			if err != nil {
				return 0, err
			}
			if good {
				break
			}
			if hi > 1<<28 {
				return 0, fmt.Errorf("bounds: exact sample size search diverged (epsilon=%v delta=%v)", epsilon, delta)
			}
		}
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		good, err := ok(mid)
		if err != nil {
			return 0, err
		}
		if good {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// Guard against lattice non-monotonicity: advance until the bound holds
	// at n and n+1 (two consecutive successes make later failures vanishingly
	// unlikely in practice).
	for {
		g1, err := ok(lo)
		if err != nil {
			return 0, err
		}
		g2, err := ok(lo + 1)
		if err != nil {
			return 0, err
		}
		if g1 && g2 {
			return lo, nil
		}
		lo++
		if lo > 1<<28 {
			return 0, fmt.Errorf("bounds: exact sample size stabilization diverged")
		}
	}
}
