package bounds

import (
	"fmt"
	"math"
	"sync/atomic"

	"github.com/easeml/ci/internal/lru"
	"github.com/easeml/ci/internal/parallel"
	"github.com/easeml/ci/internal/stats"
)

// Exact ("tight numerical") bounds, Section 4.3 of the paper: for a test
// condition over n i.i.d. Bernoulli draws one can compute the exact failure
// probability of the empirical-mean estimator from the binomial pmf, and
// pick the minimal n whose worst case over the unknown true mean p meets
// delta. There is no closed form; the paper leaves efficient approximation
// as future work, and this file implements a fast numerical search:
//
//   - each grid point costs O(sigma) instead of O(n): the binomial tails are
//     walked from a mode anchor with the multiplicative pmf recurrence
//     (internal/stats), not summed term-by-term through Lgamma;
//   - the cut indices loCut/hiCut change only at the lattice points
//     k/n -+ epsilon, so adjacent grid points share their tail structure and
//     the whole sweep stays near the distribution mode;
//   - the coarse and refinement grids fan across a bounded worker pool
//     (internal/parallel), as do the speculative bracket-expansion probes of
//     the sample-size search;
//   - worst-case results are memoized by (n, epsilon, pLo, pHi) in an LRU
//     (internal/lru), so the binary search, its stabilization pass, and any
//     repeated server-side plan query never recompute a probe.

// worstKey identifies one worst-case evaluation.
type worstKey struct {
	n             int
	eps, pLo, pHi float64
}

// worstCache memoizes ExactWorstCaseFailure. 1<<15 entries x ~50 bytes is
// ~1.6 MB, enough to hold every probe of many concurrent sample-size
// searches.
var worstCache = lru.New[worstKey, float64](1 << 15)

// worstEvals counts uncached worst-case evaluations (test/observability
// hook for the memoization guarantees).
var worstEvals atomic.Uint64

// ExactFailureProb returns Pr[ |K/n - p| > epsilon ] for K ~ Binomial(n, p):
// the exact two-sided failure probability of the empirical mean.
func ExactFailureProb(n int, p, epsilon float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("bounds: n must be positive, got %d", n)
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("bounds: mean p must be in [0,1], got %v", p)
	}
	if !(epsilon > 0) {
		return 0, fmt.Errorf("bounds: epsilon must be positive, got %v", epsilon)
	}
	nf := float64(n)
	// |k/n - p| > eps  <=>  k < n(p-eps)  or  k > n(p+eps). Both cuts use
	// strict inequalities: a k exactly on the boundary is not a failure,
	// which ceil-1/floor+1 handle including the case where n(p±eps) is an
	// integer.
	loCut := int(math.Ceil(nf*(p-epsilon))) - 1  // largest k with k/n < p-eps
	hiCut := int(math.Floor(nf*(p+epsilon))) + 1 // smallest k with k/n > p+eps
	lower := stats.BinomialCDF(loCut, n, p)
	upper := stats.BinomialSurvival(hiCut, n, p)
	f := lower + upper
	if f > 1 {
		f = 1
	}
	return f, nil
}

// ExactWorstCaseFailure returns max over p in [pLo, pHi] of
// ExactFailureProb(n, p, epsilon), evaluated on a grid with local
// refinement. The failure probability is piecewise smooth in p with ripples
// at the lattice points k/n +- epsilon, so a grid finer than 1/n around the
// coarse maximum captures the true maximum to well under 1% relative error,
// which is enough for sample-size search (the result is then validated by
// re-evaluation at the returned n).
//
// Results are memoized by (n, epsilon, pLo, pHi); uncached evaluations fan
// the grid across the worker pool.
func ExactWorstCaseFailure(n int, epsilon, pLo, pHi float64) (float64, error) {
	if pLo < 0 || pHi > 1 || pLo > pHi {
		return 0, fmt.Errorf("bounds: invalid mean interval [%v,%v]", pLo, pHi)
	}
	key := worstKey{n: n, eps: epsilon, pLo: pLo, pHi: pHi}
	if w, ok := worstCache.Get(key); ok {
		return w, nil
	}
	w, err := exactWorstCaseUncached(n, epsilon, pLo, pHi)
	if err != nil {
		return 0, err
	}
	worstCache.Put(key, w)
	return w, nil
}

// exactWorstCaseUncached is the grid search proper. The evaluation points
// and the argmax scan order are kept identical to a straightforward serial
// loop, so parallel execution cannot change the returned value.
func exactWorstCaseUncached(n int, epsilon, pLo, pHi float64) (float64, error) {
	worstEvals.Add(1)
	const coarse = 64
	step := (pHi - pLo) / coarse
	if step == 0 {
		return ExactFailureProb(n, pLo, epsilon)
	}
	gridMax := func(at func(i int) float64, points int) (float64, float64, error) {
		fs := make([]float64, points)
		err := parallel.ForErr(points, func(i int) error {
			f, err := ExactFailureProb(n, at(i), epsilon)
			if err != nil {
				return err
			}
			fs[i] = f
			return nil
		})
		if err != nil {
			return 0, 0, err
		}
		worst, worstP := 0.0, pLo
		for i, f := range fs {
			if f > worst {
				worst, worstP = f, at(i)
			}
		}
		return worst, worstP, nil
	}
	worst, worstP, err := gridMax(func(i int) float64 {
		return pLo + float64(i)*step
	}, coarse+1)
	if err != nil {
		return 0, err
	}
	// Local refinement around the coarse argmax at lattice resolution.
	lo := math.Max(pLo, worstP-step)
	hi := math.Min(pHi, worstP+step)
	fineSteps := 4 * n / coarse
	if fineSteps < 32 {
		fineSteps = 32
	}
	if fineSteps > 512 {
		fineSteps = 512
	}
	fineWorst, _, err := gridMax(func(i int) float64 {
		return lo + (hi-lo)*float64(i)/float64(fineSteps)
	}, fineSteps+1)
	if err != nil {
		return 0, err
	}
	if fineWorst > worst {
		worst = fineWorst
	}
	return worst, nil
}

// searchLimit bounds every growth loop of the sample-size search.
const searchLimit = 1 << 28

// stabilizeWindow bounds how far past the binary-search answer the
// lattice-ripple stabilization pass may creep. Ripples at realistic
// (epsilon, delta) die out within a handful of steps; a window this wide
// failing indicates a genuinely pathological input, which is reported as an
// error instead of silently scanning millions of candidates.
const stabilizeWindow = 64

// expandBatch is how many speculative bracket-expansion probes run
// concurrently when the Hoeffding seed turns out to sit on a lattice ripple.
const expandBatch = 3

// ExactSampleSize returns the smallest n such that the exact two-sided
// failure probability of the empirical mean is at most delta for every true
// mean in [pLo, pHi]. Passing the full interval [0, 1] reproduces the
// assumption-free tight bound; narrowing it (e.g. [0.9, 1] for the
// "n > 0.9" pattern of Section 4.2) yields the variance-adaptive savings.
//
// The worst-case failure is not exactly monotone in n (lattice effects), so
// after an exponential bracket and binary search the result is nudged
// forward past any local non-monotonicity. Probes flow through the
// worst-case memo, so the stabilization pass re-checks the binary-search
// answer for free and repeated searches at the same (epsilon, delta) are
// near-instant.
func ExactSampleSize(epsilon, delta, pLo, pHi float64) (int, error) {
	if err := checkREpsDelta(1, epsilon, delta); err != nil {
		return 0, err
	}
	if pLo < 0 || pHi > 1 || pLo > pHi {
		return 0, fmt.Errorf("bounds: invalid mean interval [%v,%v]", pLo, pHi)
	}
	ok := func(n int) (bool, error) {
		w, err := ExactWorstCaseFailure(n, epsilon, pLo, pHi)
		return w <= delta, err
	}
	// Exponential bracket, seeded at the two-sided Hoeffding size (the
	// exact bound is never worse than two-sided Hoeffding).
	upper, err := HoeffdingSampleSizeTwoSided(1, epsilon, delta)
	if err != nil {
		return 0, err
	}
	lo, hi := 1, upper
	if good, err := ok(hi); err != nil {
		return 0, err
	} else if !good {
		// Lattice ripple at the Hoeffding size; expand conservatively,
		// probing a small batch of candidates concurrently and taking the
		// first (smallest) that satisfies the bound.
		for {
			cands := make([]int, 0, expandBatch)
			for c := hi; len(cands) < expandBatch && c <= searchLimit; {
				c = c + c/4 + 1
				cands = append(cands, c)
			}
			if len(cands) == 0 {
				return 0, fmt.Errorf("bounds: exact sample size search diverged (epsilon=%v delta=%v)", epsilon, delta)
			}
			goods := make([]bool, len(cands))
			err := parallel.ForErr(len(cands), func(i int) error {
				g, err := ok(cands[i])
				goods[i] = g
				return err
			})
			if err != nil {
				return 0, err
			}
			hi = cands[len(cands)-1]
			found := false
			for i, g := range goods {
				if g {
					hi = cands[i]
					found = true
					break
				}
			}
			if found {
				break
			}
			if hi > searchLimit {
				return 0, fmt.Errorf("bounds: exact sample size search diverged (epsilon=%v delta=%v)", epsilon, delta)
			}
		}
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		good, err := ok(mid)
		if err != nil {
			return 0, err
		}
		if good {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// Guard against lattice non-monotonicity: advance until the bound holds
	// at n and n+1 (two consecutive successes make later failures vanishingly
	// unlikely in practice). ok(lo) is a memo hit on the first iteration —
	// the binary search just computed it — and the window is bounded so a
	// pathological input fails loudly instead of creeping toward infinity.
	for nudges := 0; nudges <= stabilizeWindow; nudges++ {
		g1, err := ok(lo)
		if err != nil {
			return 0, err
		}
		g2, err := ok(lo + 1)
		if err != nil {
			return 0, err
		}
		if g1 && g2 {
			return lo, nil
		}
		lo++
	}
	return 0, fmt.Errorf("bounds: exact sample size did not stabilize within %d steps of the binary-search answer (epsilon=%v delta=%v)", stabilizeWindow, epsilon, delta)
}

// ExactProbeEvals reports how many uncached worst-case grid evaluations
// have run process-wide (observability: the difference across a request
// measures how much real work the memo saved).
func ExactProbeEvals() uint64 { return worstEvals.Load() }

// ExactCacheStats reports the worst-case memo's hit/miss counters and size.
func ExactCacheStats() (hits, misses uint64, len_ int) {
	return worstCache.Hits(), worstCache.Misses(), worstCache.Len()
}

// ResetExactCache empties the worst-case memo and its counters (test hook).
func ResetExactCache() {
	worstCache.Reset()
	worstEvals.Store(0)
}
