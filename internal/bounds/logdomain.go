package bounds

import (
	"fmt"
	"math"
)

// Log-domain variants. The fully adaptive scenario charges delta/2^H to
// each of the 2^H possible feedback histories (Section 3.3); for H beyond
// ~50, delta/2^H underflows float64, so the estimator layer works with
// ln(1/delta_effective) = ln(1/delta) + ln(M) directly.

// checkLogInvDelta validates ln(1/delta) > 0, i.e. delta in (0,1).
func checkLogInvDelta(logInvDelta float64) error {
	if !(logInvDelta > 0) || math.IsInf(logInvDelta, 0) || math.IsNaN(logInvDelta) {
		return fmt.Errorf("bounds: ln(1/delta) must be positive and finite, got %v", logInvDelta)
	}
	return nil
}

// HoeffdingSampleSizeLog is HoeffdingSampleSize with delta given as
// ln(1/delta): n = r^2 * logInvDelta / (2 epsilon^2).
func HoeffdingSampleSizeLog(r, epsilon, logInvDelta float64) (int, error) {
	if err := checkREpsDelta(r, epsilon, 0.5); err != nil {
		return 0, err
	}
	if err := checkLogInvDelta(logInvDelta); err != nil {
		return 0, err
	}
	return ceilToInt(r * r * logInvDelta / (2 * epsilon * epsilon)), nil
}

// HoeffdingEpsilonLog inverts HoeffdingSampleSizeLog for a given n.
func HoeffdingEpsilonLog(r float64, n int, logInvDelta float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("bounds: n must be positive, got %d", n)
	}
	if err := checkREpsDelta(r, 1, 0.5); err != nil {
		return 0, err
	}
	if err := checkLogInvDelta(logInvDelta); err != nil {
		return 0, err
	}
	return r * math.Sqrt(logInvDelta/(2*float64(n))), nil
}

// BennettSampleSizeLog is the one-sided Bennett sample size with delta given
// as ln(1/delta): n = logInvDelta / (p h(epsilon/p)). Callers wanting the
// two-sided form add ln 2 to logInvDelta.
func BennettSampleSizeLog(p, epsilon, logInvDelta float64) (int, error) {
	if err := checkPEpsDelta(p, epsilon, 0.5); err != nil {
		return 0, err
	}
	if err := checkLogInvDelta(logInvDelta); err != nil {
		return 0, err
	}
	return ceilToInt(logInvDelta / (p * BennettH(epsilon/p))), nil
}

// BennettEpsilonLog inverts BennettSampleSizeLog for a given n.
func BennettEpsilonLog(n int, p, logInvDelta float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("bounds: n must be positive, got %d", n)
	}
	if err := checkPEpsDelta(p, 1, 0.5); err != nil {
		return 0, err
	}
	if err := checkLogInvDelta(logInvDelta); err != nil {
		return 0, err
	}
	return p * bennettHInverse(logInvDelta/(float64(n)*p)), nil
}
