package bounds

import (
	"fmt"
	"math"
)

// McDiarmid support. The paper's "Beyond accuracy" extension (Section 2.2)
// proposes replacing Bennett's inequality with McDiarmid's plus the
// sensitivity of the target metric (F1, AUC, ...). McDiarmid's inequality:
// if changing example i changes the statistic by at most c_i,
//
//	Pr[ |f - E f| > epsilon ] <= 2 exp( -2 epsilon^2 / sum c_i^2 )
//
// For a metric whose per-example sensitivity on an n-example testset is
// s/n (s = 1 for accuracy; s is larger for F1 on skewed data), the sample
// size for a two-sided (epsilon, delta) estimate is
//
//	n = s^2 ln(2/delta) / (2 epsilon^2).

// McDiarmidTail returns the two-sided McDiarmid tail probability for a
// statistic with per-coordinate sensitivities c.
func McDiarmidTail(c []float64, epsilon float64) (float64, error) {
	if len(c) == 0 {
		return 0, fmt.Errorf("bounds: sensitivities must be non-empty")
	}
	sum := 0.0
	for i, ci := range c {
		if ci < 0 {
			return 0, fmt.Errorf("bounds: sensitivity c[%d] = %v is negative", i, ci)
		}
		sum += ci * ci
	}
	if sum == 0 {
		return 0, nil
	}
	p := 2 * math.Exp(-2*epsilon*epsilon/sum)
	if p > 1 {
		p = 1
	}
	return p, nil
}

// McDiarmidSampleSize returns n for a statistic with uniform per-example
// sensitivity s/n (scaled-mean form): n = s^2 ln(2/delta) / (2 epsilon^2).
func McDiarmidSampleSize(s, epsilon, delta float64) (int, error) {
	if !(s > 0) {
		return 0, fmt.Errorf("bounds: sensitivity scale s must be positive, got %v", s)
	}
	if err := checkREpsDelta(1, epsilon, delta); err != nil {
		return 0, err
	}
	n := s * s * math.Log(2/delta) / (2 * epsilon * epsilon)
	return ceilToInt(n), nil
}

// F1Sensitivity returns a conservative sensitivity scale s for the F1 score
// on a testset where at least a fraction minPositive of examples belong to
// the positive class. Changing one example changes precision/recall counts
// by one; a standard bound on the induced F1 change is 2/(n*minPositive),
// i.e. s = 2/minPositive.
func F1Sensitivity(minPositive float64) (float64, error) {
	if !(minPositive > 0) || minPositive > 1 {
		return 0, fmt.Errorf("bounds: minPositive must be in (0,1], got %v", minPositive)
	}
	return 2 / minPositive, nil
}
