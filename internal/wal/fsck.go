package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Damage classes reported by Fsck.
const (
	// Snapshot states.
	SnapshotNone    = "none"    // no snapshot file
	SnapshotOK      = "ok"      // present, CRC verifies
	SnapshotCorrupt = "corrupt" // present, unparseable or CRC mismatch

	// Log states.
	LogMissing  = "missing"   // no log file (fresh directory)
	LogClean    = "clean"     // every line decodes and CRC-verifies
	LogTornTail = "torn-tail" // damage at the tail only: a crash signature, self-healed at Open
	LogMidLog   = "mid-log"   // damage with valid records after it: real corruption, Open refuses
)

// QuarantineSuffix is appended to a damaged file's name when Salvage
// moves its bytes aside. Quarantine files are never deleted by the log:
// they are the operator's forensic copy of what salvage cut away.
const QuarantineSuffix = ".quarantine"

// Report is Fsck's diagnosis of one log directory. Fsck only reads.
type Report struct {
	Dir string `json:"dir"`

	// Snapshot is one of the Snapshot* constants; SnapshotSeq is the
	// LastSeq a verifying snapshot covers.
	Snapshot    string `json:"snapshot"`
	SnapshotSeq uint64 `json:"snapshot_seq,omitempty"`

	// Log is one of the Log* constants. For torn-tail and mid-log damage,
	// BadOffset is the byte offset of the first invalid line and
	// DamagedBytes the length of the suffix from there to EOF; for clean
	// and missing logs BadOffset is -1.
	Log          string `json:"log"`
	BadOffset    int64  `json:"bad_offset"`
	DamagedBytes int64  `json:"damaged_bytes"`

	// ValidRecords and LastValidSeq describe the longest valid prefix —
	// what Salvage recovers and what replay of the undamaged prefix yields.
	ValidRecords int    `json:"valid_records"`
	LastValidSeq uint64 `json:"last_valid_seq"`
}

// Damaged reports whether the directory needs salvage before a normal
// Open can succeed without data questions: any snapshot corruption or
// mid-log damage. A torn tail alone is not damage — it is the crash
// signature Open heals by design — but Salvage quarantines it too when
// asked, so the bytes are preserved rather than silently dropped.
func (r Report) Damaged() bool {
	return r.Snapshot == SnapshotCorrupt || r.Log == LogMidLog
}

// Dirty reports whether Salvage would change anything on disk: damage,
// or a torn tail whose bytes would be quarantined.
func (r Report) Dirty() bool {
	return r.Damaged() || r.Log == LogTornTail
}

// String renders the diagnosis in fsck's one-line-per-directory style.
func (r Report) String() string {
	s := fmt.Sprintf("%s: snapshot=%s log=%s records=%d last_seq=%d",
		r.Dir, r.Snapshot, r.Log, r.ValidRecords, r.LastValidSeq)
	if r.BadOffset >= 0 {
		s += fmt.Sprintf(" bad_offset=%d damaged_bytes=%d", r.BadOffset, r.DamagedBytes)
	}
	return s
}

// SalvageResult describes what Salvage did.
type SalvageResult struct {
	Report Report `json:"report"`
	// Repaired is true when anything changed on disk.
	Repaired bool `json:"repaired"`
	// QuarantinedBytes is how many damaged bytes this run moved into
	// quarantine files (log suffix plus corrupt snapshot).
	QuarantinedBytes int64 `json:"quarantined_bytes"`
	// QuarantineFiles lists the quarantine files written or appended to.
	QuarantineFiles []string `json:"quarantine_files,omitempty"`
}

// Fsck scans the log directory and classifies any damage without
// modifying anything. It distinguishes the three failure shapes the
// on-disk format can exhibit: a torn tail (crash mid-append — the last
// line is incomplete or invalid and nothing valid follows), mid-log
// corruption (an invalid line with valid records after it — bit rot or
// an overwrite, which replay must not paper over), and a snapshot CRC
// mismatch.
func Fsck(dir string) (Report, error) {
	r := Report{Dir: dir, BadOffset: -1}

	snap, err := readSnapshot(OSFS{}, filepath.Join(dir, snapshotName))
	switch {
	case errors.Is(err, ErrCorrupt):
		r.Snapshot = SnapshotCorrupt
	case err != nil:
		return r, fmt.Errorf("wal: fsck: %w", err)
	case snap == nil:
		r.Snapshot = SnapshotNone
	default:
		r.Snapshot = SnapshotOK
		r.SnapshotSeq = snap.LastSeq
	}

	raw, err := os.ReadFile(filepath.Join(dir, logName))
	if errors.Is(err, os.ErrNotExist) {
		r.Log = LogMissing
		return r, nil
	}
	if err != nil {
		return r, fmt.Errorf("wal: fsck: %w", err)
	}
	_, records, lastSeq, badAt := scanLog(raw)
	r.ValidRecords = records
	r.LastValidSeq = lastSeq
	if badAt < 0 {
		r.Log = LogClean
		return r, nil
	}
	r.BadOffset = int64(badAt)
	r.DamagedBytes = int64(len(raw) - badAt)
	if validRecordAfter(raw[badAt:]) {
		r.Log = LogMidLog
	} else {
		r.Log = LogTornTail
	}
	return r, nil
}

// scanLog walks the log from byte 0, returning the length of the
// longest valid prefix, how many records it holds, the last record's
// sequence number, and the offset of the first invalid line (-1 when
// the whole file is valid). Shares decodeLine with replay, so "valid"
// means exactly what Open accepts.
func scanLog(raw []byte) (prefixLen, records int, lastSeq uint64, badAt int) {
	offset := 0
	badAt = -1
	prevSeq := uint64(0)
	for offset < len(raw) {
		nl := bytes.IndexByte(raw[offset:], '\n')
		if nl < 0 {
			badAt = offset
			break
		}
		rec, ok := decodeLine(raw[offset : offset+nl])
		if !ok || (prevSeq != 0 && rec.Seq <= prevSeq) {
			badAt = offset
			break
		}
		prevSeq = rec.Seq
		lastSeq = rec.Seq
		records++
		offset += nl + 1
	}
	return offset, records, lastSeq, badAt
}

// validRecordAfter reports whether any complete line after the damaged
// one decodes as a valid record — the mid-log-corruption signature.
func validRecordAfter(rest []byte) bool {
	nl := bytes.IndexByte(rest, '\n')
	if nl < 0 {
		return false
	}
	for _, line := range bytes.Split(rest[nl+1:], []byte{'\n'}) {
		if _, ok := decodeLine(line); ok {
			return true
		}
	}
	return false
}

// Salvage repairs the log directory in place: the damaged suffix of the
// log (from the first invalid line to EOF) is appended to
// wal.log.quarantine and the log truncated to its longest valid prefix;
// a corrupt snapshot is renamed to snapshot.json.quarantine. After a
// successful salvage, Open replays exactly the records of the valid
// prefix — the salvage guarantee is that this state is byte-identical
// to replaying the undamaged prefix of the original log. Damage is
// never silently dropped: every byte cut away lands in a quarantine
// file beside the log.
//
// Salvage cannot invent lost data. If the snapshot was quarantined and
// the log does not reach back to the beginning of history, the caller's
// replay will fail loudly — that is the honest unrecoverable case.
func Salvage(dir string) (SalvageResult, error) {
	report, err := Fsck(dir)
	if err != nil {
		return SalvageResult{Report: report}, err
	}
	res := SalvageResult{Report: report}

	if report.Snapshot == SnapshotCorrupt {
		src := filepath.Join(dir, snapshotName)
		dst := src + QuarantineSuffix
		info, err := os.Stat(src)
		if err != nil {
			return res, fmt.Errorf("wal: salvage: %w", err)
		}
		if err := os.Rename(src, dst); err != nil {
			return res, fmt.Errorf("wal: salvage: quarantining snapshot: %w", err)
		}
		res.Repaired = true
		res.QuarantinedBytes += info.Size()
		res.QuarantineFiles = append(res.QuarantineFiles, dst)
	}

	if report.BadOffset >= 0 {
		logPath := filepath.Join(dir, logName)
		raw, err := os.ReadFile(logPath)
		if err != nil {
			return res, fmt.Errorf("wal: salvage: %w", err)
		}
		if int64(len(raw)) < report.BadOffset {
			return res, fmt.Errorf("wal: salvage: log shrank under us (%d < %d)", len(raw), report.BadOffset)
		}
		qPath := logPath + QuarantineSuffix
		q, err := os.OpenFile(qPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return res, fmt.Errorf("wal: salvage: %w", err)
		}
		// Quarantine before truncate: a crash between the two leaves the
		// damage both preserved and still in the log — salvage is rerunnable,
		// the opposite order could lose the suffix forever.
		if _, err := q.Write(raw[report.BadOffset:]); err != nil {
			q.Close()
			return res, fmt.Errorf("wal: salvage: writing quarantine: %w", err)
		}
		if err := q.Sync(); err != nil {
			q.Close()
			return res, fmt.Errorf("wal: salvage: %w", err)
		}
		if err := q.Close(); err != nil {
			return res, fmt.Errorf("wal: salvage: %w", err)
		}
		if err := os.Truncate(logPath, report.BadOffset); err != nil {
			return res, fmt.Errorf("wal: salvage: truncating log: %w", err)
		}
		res.Repaired = true
		res.QuarantinedBytes += int64(len(raw)) - report.BadOffset
		res.QuarantineFiles = append(res.QuarantineFiles, qPath)
	}

	return res, nil
}

// QuarantinedBytes sums the quarantine files in dir — the durable
// record of how much damage salvage has ever cut away there. Reading
// from disk (not a counter) makes the metric survive restarts for free.
func QuarantinedBytes(dir string) int64 {
	var total int64
	for _, name := range []string{logName + QuarantineSuffix, snapshotName + QuarantineSuffix} {
		if info, err := os.Stat(filepath.Join(dir, name)); err == nil {
			total += info.Size()
		}
	}
	return total
}
