package faultfs_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"github.com/easeml/ci/internal/wal"
	"github.com/easeml/ci/internal/wal/faultfs"
)

func openLog(t *testing.T, dir string, fs wal.FS) *wal.Log {
	t.Helper()
	l, _, _, err := wal.Open(dir, wal.Options{NoSync: false, FS: fs})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return l
}

func TestAppendENOSPC(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(faultfs.Fault{Op: faultfs.OpWrite, After: 2})
	l := openLog(t, dir, fs)
	defer l.Close()

	for i := 0; i < 2; i++ {
		if _, err := l.Append("evt", map[string]int{"i": i}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	_, err := l.Append("evt", map[string]int{"i": 2})
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	// The disk-full append must not have changed durable state: the two
	// successful records replay, nothing else.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, recs, err := wal.Open(dir, wal.Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
}

func TestAppendShortWriteLeavesNoTornMiddle(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(faultfs.Fault{Op: faultfs.OpWrite, After: 1, ShortWrite: 7})
	l := openLog(t, dir, fs)

	if _, err := l.Append("evt", map[string]int{"i": 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append("evt", map[string]int{"i": 1}); err == nil {
		t.Fatal("short write did not error")
	}
	// The live log must have cut the torn line back, so a THIRD append
	// (disk recovered) produces a clean log, not record 2 glued onto half
	// of record 1.
	if _, err := l.Append("evt", map[string]int{"i": 2}); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	l.Close()

	report, err := wal.Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if report.Log != wal.LogClean || report.ValidRecords != 2 {
		t.Fatalf("log not clean after short-write recovery: %+v", report)
	}
}

func TestSyncFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	injected := errors.New("fsync: I/O error")
	fs := faultfs.New(faultfs.Fault{Op: faultfs.OpSync, Err: injected})
	l := openLog(t, dir, fs)
	defer l.Close()

	if _, err := l.Append("evt", map[string]int{"i": 0}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); !errors.Is(err, injected) {
		t.Fatalf("want injected sync error, got %v", err)
	}
}

func TestCompactENOSPCLeavesNoPartialSnapshot(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(faultfs.Fault{Op: faultfs.OpWrite, Path: "snapshot.json.tmp"})
	l := openLog(t, dir, fs)
	defer l.Close()

	if _, err := l.Append("evt", map[string]int{"i": 0}); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(map[string]string{"state": "s"}); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC from compact, got %v", err)
	}
	// No partial snapshot (neither .tmp nor final) may remain.
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json.tmp")); !os.IsNotExist(err) {
		t.Fatal("partial snapshot.json.tmp left on disk")
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); !os.IsNotExist(err) {
		t.Fatal("snapshot.json appeared despite failed compact")
	}
	// The log is untouched: replay still sees the record.
	_, _, recs, err := wal.Open(dir, wal.Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1", len(recs))
	}
}

// TestCompactCrashBetweenRenameAndTruncate is the classic compaction
// hazard: the snapshot rename lands, then the process dies before the
// log truncation. Recovery must see the new snapshot and skip the
// still-present log records by sequence number — no double replay.
func TestCompactCrashBetweenRenameAndTruncate(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(faultfs.Fault{Op: faultfs.OpTruncate, Path: "wal.log", Crash: true})
	l := openLog(t, dir, fs)

	for i := 0; i < 3; i++ {
		if _, err := l.Append("evt", map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	err := l.Compact(map[string]string{"state": "compacted"})
	if err == nil {
		t.Fatal("compact survived the crash")
	}
	if !fs.Crashed() {
		t.Fatal("crash fault did not fire")
	}

	// "Reboot": open with a healthy filesystem.
	l2, snap, recs, err := wal.Open(dir, wal.Options{NoSync: true})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer l2.Close()
	if snap == nil || snap.LastSeq != 3 {
		t.Fatalf("snapshot not adopted after crash: %+v", snap)
	}
	if !bytes.Contains(snap.Data, []byte("compacted")) {
		t.Fatalf("wrong snapshot payload: %s", snap.Data)
	}
	if len(recs) != 0 {
		t.Fatalf("replayed %d records already covered by snapshot", len(recs))
	}
	// And the log keeps working.
	if _, err := l2.Append("evt", map[string]int{"i": 3}); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

func TestRenameFaultFailsCompactCleanly(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(faultfs.Fault{Op: faultfs.OpRename, Path: "snapshot.json"})
	l := openLog(t, dir, fs)
	defer l.Close()

	if _, err := l.Append("evt", map[string]int{"i": 0}); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(map[string]string{"state": "s"}); err == nil {
		t.Fatal("compact survived rename fault")
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json.tmp")); !os.IsNotExist(err) {
		t.Fatal("tmp snapshot left behind after failed rename")
	}
	if l.Size() == 0 {
		t.Fatal("log truncated despite failed snapshot rename")
	}
}

func TestCrashFailsEverythingAfter(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(faultfs.Fault{Op: faultfs.OpWrite, After: 1, Crash: true})
	l := openLog(t, dir, fs)

	if _, err := l.Append("evt", map[string]int{"i": 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append("evt", map[string]int{"i": 1}); err == nil {
		t.Fatal("crash fault did not fire")
	}
	if _, err := l.Append("evt", map[string]int{"i": 2}); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("post-crash append: want ErrCrashed, got %v", err)
	}
	if err := l.Sync(); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("post-crash sync: want ErrCrashed, got %v", err)
	}
}

func TestFlipBit(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "f")
	if err := os.WriteFile(p, []byte("abc"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := faultfs.FlipBit(p, 1, 1); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(p)
	if string(raw) != "a`c" { // 'b' ^ 0x02 = '`'
		t.Fatalf("got %q", raw)
	}
	if err := faultfs.FlipBit(p, 99, 0); err == nil {
		t.Fatal("out-of-range offset accepted")
	}
}

func TestPathFilterAndOps(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(faultfs.Fault{Op: faultfs.OpWrite, Path: "other.log"})
	l := openLog(t, dir, fs)
	defer l.Close()
	// Fault targets a different path: appends to wal.log sail through.
	if _, err := l.Append("evt", map[string]int{"i": 0}); err != nil {
		t.Fatalf("path-filtered fault fired on wrong file: %v", err)
	}
	ops := fs.Ops()
	if ops[faultfs.OpWrite] == 0 || ops[faultfs.OpOpen] == 0 {
		t.Fatalf("ops not counted: %v", ops)
	}
}
