// Package faultfs is the disk-fault injection harness for the
// write-ahead log: a wal.FS middleware that scripts deterministic
// filesystem failures — short writes, ENOSPC, fsync errors, failed
// renames, and a simulated crash at any chosen operation — so storage
// fault-tolerance tests can hit the exact failure interleavings a real
// disk produces only by accident.
//
// A script is a list of Faults. Each names an operation (write, sync,
// rename, truncate, open), optionally a path substring, and how many
// matching operations to let through before firing. Firing returns the
// fault's error (ENOSPC by default); a ShortWrite fault writes a prefix
// of the buffer first, and a Crash fault additionally fails every
// subsequent operation with ErrCrashed — the filesystem's view of a
// process that died mid-sequence, e.g. between a snapshot rename and
// the log truncation that follows it.
//
// Bit rot is injected directly: FlipBit damages one bit of a real file
// in place, the on-disk signature fsck and salvage exist to repair.
package faultfs

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"syscall"

	"github.com/easeml/ci/internal/wal"
)

// ErrInjected is the default error a firing fault returns, wrapping
// ENOSPC so callers exercising disk-full handling see the real errno.
var ErrInjected = fmt.Errorf("faultfs: injected fault: %w", syscall.ENOSPC)

// ErrCrashed is returned by every operation after a Crash fault fires:
// from the caller's perspective the process is dead to the disk.
var ErrCrashed = errors.New("faultfs: crashed")

// Operation names, as matched by Fault.Op.
const (
	OpWrite    = "write"
	OpSync     = "sync"
	OpRename   = "rename"
	OpTruncate = "truncate"
	OpOpen     = "open"
)

// Fault is one scripted failure.
type Fault struct {
	// Op is the operation to fail: write | sync | rename | truncate | open.
	Op string
	// Path, when non-empty, restricts the fault to operations whose path
	// contains it as a substring (for rename, either path).
	Path string
	// After lets this many matching operations succeed before firing.
	After int
	// Err is what the failed operation returns; nil means ErrInjected
	// (ENOSPC).
	Err error
	// ShortWrite, for write faults, writes this many bytes of the buffer
	// before returning the error — a torn line on disk, exactly what a
	// crash mid-write leaves.
	ShortWrite int
	// Crash makes every operation after this fault fail with ErrCrashed:
	// the injected failure was the process's last contact with the disk.
	Crash bool

	fired bool
	seen  int
}

// FS wraps a base wal.FS with a fault script. Safe for concurrent use.
type FS struct {
	base wal.FS

	mu     sync.Mutex
	faults []*Fault
	// crashed fails everything once a Crash fault has fired.
	crashed bool
	ops     map[string]int
}

// New builds a fault-injecting FS over the real filesystem.
func New(faults ...Fault) *FS { return Wrap(wal.OSFS{}, faults...) }

// Wrap builds a fault-injecting FS over an arbitrary base.
func Wrap(base wal.FS, faults ...Fault) *FS {
	f := &FS{base: base, ops: make(map[string]int)}
	for i := range faults {
		fault := faults[i]
		f.faults = append(f.faults, &fault)
	}
	return f
}

// Add appends a fault to the script at runtime (e.g. after a clean
// setup phase on the same FS).
func (f *FS) Add(fault Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = append(f.faults, &fault)
}

// Crashed reports whether a Crash fault has fired.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Ops reports how many operations of each kind have been attempted —
// the observability half of the harness (asserting a code path really
// exercised the disk the way the test believes it did).
func (f *FS) Ops() map[string]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int, len(f.ops))
	for k, v := range f.ops {
		out[k] = v
	}
	return out
}

// check consults the script for one operation. It returns the error to
// inject (nil = proceed) and, for write faults, how many bytes to let
// through first (-1 = all).
func (f *FS) check(op, path string) (error, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops[op]++
	if f.crashed {
		return ErrCrashed, 0
	}
	for _, fault := range f.faults {
		if fault.fired || fault.Op != op {
			continue
		}
		if fault.Path != "" && !strings.Contains(path, fault.Path) {
			continue
		}
		if fault.seen < fault.After {
			fault.seen++
			continue
		}
		fault.fired = true
		if fault.Crash {
			f.crashed = true
		}
		err := fault.Err
		if err == nil {
			err = ErrInjected
		}
		if op == OpWrite && fault.ShortWrite > 0 {
			return err, fault.ShortWrite
		}
		return err, 0
	}
	return nil, -1
}

func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	if f.Crashed() {
		return ErrCrashed
	}
	return f.base.MkdirAll(path, perm)
}

func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	if err, _ := f.check(OpOpen, name); err != nil {
		return nil, err
	}
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, name: name}, nil
}

func (f *FS) Open(name string) (wal.File, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	file, err := f.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, name: name}, nil
}

func (f *FS) ReadFile(name string) ([]byte, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	return f.base.ReadFile(name)
}

func (f *FS) Rename(oldpath, newpath string) error {
	if err, _ := f.check(OpRename, oldpath+"->"+newpath); err != nil {
		return err
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error {
	if f.Crashed() {
		return ErrCrashed
	}
	return f.base.Remove(name)
}

func (f *FS) Stat(name string) (os.FileInfo, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	return f.base.Stat(name)
}

// faultFile intercepts the per-file operations the script can fail.
type faultFile struct {
	wal.File
	fs   *FS
	name string
}

func (ff *faultFile) Write(p []byte) (int, error) {
	err, short := ff.fs.check(OpWrite, ff.name)
	if err == nil {
		return ff.File.Write(p)
	}
	if short > 0 {
		if short > len(p) {
			short = len(p)
		}
		n, werr := ff.File.Write(p[:short])
		if werr != nil {
			return n, werr
		}
		return n, err
	}
	return 0, err
}

func (ff *faultFile) Sync() error {
	if err, _ := ff.fs.check(OpSync, ff.name); err != nil {
		return err
	}
	return ff.File.Sync()
}

func (ff *faultFile) Truncate(size int64) error {
	if err, _ := ff.fs.check(OpTruncate, ff.name); err != nil {
		return err
	}
	return ff.File.Truncate(size)
}

// FlipBit flips one bit of the file at path, in place: byte offset,
// bit index 0-7. It is how tests inject the silent bit rot fsck and
// salvage exist to catch — damage below the filesystem API, so it goes
// straight to the real file rather than through the FS seam.
func FlipBit(path string, offset int64, bit uint) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if offset < 0 || offset >= int64(len(raw)) {
		return fmt.Errorf("faultfs: offset %d out of range (file is %d bytes)", offset, len(raw))
	}
	raw[offset] ^= 1 << (bit % 8)
	return os.WriteFile(path, raw, 0o644)
}
