package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildLog writes n records into a fresh log dir and returns the dir
// and the raw log bytes.
func buildLog(t *testing.T, n int) (string, []byte) {
	t.Helper()
	dir := t.TempDir()
	l, _, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < n; i++ {
		if _, err := l.Append("evt", map[string]any{"i": i, "pad": "xxxxxxxxxxxxxxxx"}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatalf("read log: %v", err)
	}
	return dir, raw
}

// replayDir opens the dir and returns the replayed records' encoded
// state (seq+type+data per record), the byte-comparable replay result.
func replayDir(t *testing.T, dir string) []byte {
	t.Helper()
	l, snap, recs, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("open for replay: %v", err)
	}
	defer l.Close()
	var buf bytes.Buffer
	if snap != nil {
		fmt.Fprintf(&buf, "snap:%d:%s\n", snap.LastSeq, snap.Data)
	}
	for _, r := range recs {
		fmt.Fprintf(&buf, "%d:%s:%s\n", r.Seq, r.Type, r.Data)
	}
	return buf.Bytes()
}

func TestFsckCleanLog(t *testing.T) {
	dir, _ := buildLog(t, 5)
	r, err := Fsck(dir)
	if err != nil {
		t.Fatalf("fsck: %v", err)
	}
	if r.Snapshot != SnapshotNone || r.Log != LogClean || r.ValidRecords != 5 || r.LastValidSeq != 5 || r.BadOffset != -1 {
		t.Fatalf("unexpected report: %+v", r)
	}
	if r.Damaged() || r.Dirty() {
		t.Fatalf("clean log reported damaged: %+v", r)
	}
}

func TestFsckMissingLog(t *testing.T) {
	r, err := Fsck(t.TempDir())
	if err != nil {
		t.Fatalf("fsck: %v", err)
	}
	if r.Log != LogMissing || r.Snapshot != SnapshotNone {
		t.Fatalf("unexpected report: %+v", r)
	}
}

func TestFsckClassifiesTornTail(t *testing.T) {
	dir, raw := buildLog(t, 4)
	// Cut the last record in half: the crash signature.
	cut := int64(len(raw) - 10)
	if err := os.Truncate(filepath.Join(dir, logName), cut); err != nil {
		t.Fatal(err)
	}
	r, err := Fsck(dir)
	if err != nil {
		t.Fatalf("fsck: %v", err)
	}
	if r.Log != LogTornTail {
		t.Fatalf("want torn-tail, got %+v", r)
	}
	if r.ValidRecords != 3 || r.LastValidSeq != 3 {
		t.Fatalf("want 3 valid records, got %+v", r)
	}
	if r.Damaged() {
		t.Fatalf("torn tail must not count as damage (Open heals it): %+v", r)
	}
	if !r.Dirty() {
		t.Fatalf("torn tail should be dirty (salvage would quarantine): %+v", r)
	}
}

func TestFsckClassifiesMidLogCorruption(t *testing.T) {
	dir, raw := buildLog(t, 5)
	// Flip a byte inside record 2's payload.
	lines := bytes.SplitAfter(raw, []byte{'\n'})
	offset := int64(len(lines[0]) + len(lines[1])/2)
	raw[offset] ^= 0x40
	if err := os.WriteFile(filepath.Join(dir, logName), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Fsck(dir)
	if err != nil {
		t.Fatalf("fsck: %v", err)
	}
	if r.Log != LogMidLog {
		t.Fatalf("want mid-log, got %+v", r)
	}
	if !r.Damaged() {
		t.Fatalf("mid-log corruption must count as damage: %+v", r)
	}
	if r.BadOffset != int64(len(lines[0])) {
		t.Fatalf("bad offset %d, want %d", r.BadOffset, len(lines[0]))
	}
	// Open must refuse this dir — salvage is required.
	if _, _, _, err := Open(dir, Options{NoSync: true}); err == nil {
		t.Fatal("Open accepted a mid-log-corrupt log")
	}
}

func TestFsckClassifiesSnapshotCorruption(t *testing.T) {
	dir, _ := buildLog(t, 3)
	l, _, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(map[string]any{"state": "s"}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	snapPath := filepath.Join(dir, snapshotName)
	snapRaw, _ := os.ReadFile(snapPath)
	snapRaw[len(snapRaw)/2] ^= 0x01
	if err := os.WriteFile(snapPath, snapRaw, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Fsck(dir)
	if err != nil {
		t.Fatalf("fsck: %v", err)
	}
	if r.Snapshot != SnapshotCorrupt || !r.Damaged() {
		t.Fatalf("want corrupt snapshot, got %+v", r)
	}
}

func TestSalvageQuarantinesCorruptSnapshot(t *testing.T) {
	dir, _ := buildLog(t, 3)
	l, _, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(map[string]any{"state": "s"}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	snapPath := filepath.Join(dir, snapshotName)
	snapRaw, _ := os.ReadFile(snapPath)
	snapRaw[len(snapRaw)/2] ^= 0x01
	if err := os.WriteFile(snapPath, snapRaw, 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := Salvage(dir)
	if err != nil {
		t.Fatalf("salvage: %v", err)
	}
	if !res.Repaired || res.QuarantinedBytes != int64(len(snapRaw)) {
		t.Fatalf("unexpected result: %+v", res)
	}
	if _, err := os.Stat(snapPath); !os.IsNotExist(err) {
		t.Fatal("corrupt snapshot still in place")
	}
	q, err := os.ReadFile(snapPath + QuarantineSuffix)
	if err != nil || !bytes.Equal(q, snapRaw) {
		t.Fatalf("quarantine mismatch: %v", err)
	}
	if got := QuarantinedBytes(dir); got != int64(len(snapRaw)) {
		t.Fatalf("QuarantinedBytes = %d, want %d", got, len(snapRaw))
	}
}

func TestSalvageNoopOnCleanDir(t *testing.T) {
	dir, _ := buildLog(t, 3)
	res, err := Salvage(dir)
	if err != nil {
		t.Fatalf("salvage: %v", err)
	}
	if res.Repaired || res.QuarantinedBytes != 0 {
		t.Fatalf("salvage changed a clean dir: %+v", res)
	}
}

// TestSalvagePropertySingleRecordCorruption is the salvage guarantee,
// exhaustively: for EVERY byte position in a generated log, flip one
// bit, salvage, and check that (a) the replayed state is byte-identical
// to replaying the undamaged prefix up to the damaged record and (b)
// the damaged suffix landed in quarantine byte-for-byte — never
// silently dropped.
func TestSalvagePropertySingleRecordCorruption(t *testing.T) {
	const records = 8
	_, refRaw := buildLog(t, records)

	// Line boundaries of the pristine log, to find which record a given
	// corrupted byte falls in.
	var bounds []int // bounds[i] = start offset of line i
	for off := 0; off < len(refRaw); {
		bounds = append(bounds, off)
		nl := bytes.IndexByte(refRaw[off:], '\n')
		off += nl + 1
	}
	lineOf := func(off int) int {
		for i := len(bounds) - 1; i >= 0; i-- {
			if off >= bounds[i] {
				return i
			}
		}
		return 0
	}

	// Reference replays: prefix[i] is the replay of records 0..i-1.
	prefix := make([][]byte, records+1)
	for i := 0; i <= records; i++ {
		d := t.TempDir()
		end := len(refRaw)
		if i < records {
			end = bounds[i]
		}
		if err := os.WriteFile(filepath.Join(d, logName), refRaw[:end], 0o644); err != nil {
			t.Fatal(err)
		}
		prefix[i] = replayDir(t, d)
	}

	for pos := 0; pos < len(refRaw); pos++ {
		damaged := append([]byte(nil), refRaw...)
		damaged[pos] ^= 0x20 // flips case/digit bits — stays printable, breaks CRC or framing
		rec := lineOf(pos)

		// A flip can be semantically harmless: encoding/json matches keys
		// case-insensitively, so "s"→"S" decodes to the identical record and
		// the CRC (computed over seq/type/payload, not the raw line) still
		// verifies. Those positions are not corruption; salvage must be a
		// no-op for them.
		harmless := false
		if refRaw[pos] != '\n' {
			lineEnd := len(refRaw)
			if rec+1 < len(bounds) {
				lineEnd = bounds[rec+1]
			}
			if got, ok := decodeLine(damaged[bounds[rec] : lineEnd-1]); ok {
				orig, _ := decodeLine(refRaw[bounds[rec] : lineEnd-1])
				if got.Seq != orig.Seq || got.Type != orig.Type || !bytes.Equal(got.Data, orig.Data) {
					t.Fatalf("pos %d: single-bit flip decoded as a DIFFERENT valid record — CRC failed its one job", pos)
				}
				harmless = true
			}
		}

		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := Salvage(dir)
		if err != nil {
			t.Fatalf("pos %d: salvage: %v", pos, err)
		}
		if harmless {
			if res.Repaired {
				t.Fatalf("pos %d: salvage repaired a semantically intact log: %+v", pos, res)
			}
			if got := replayDir(t, dir); !bytes.Equal(got, prefix[records]) {
				t.Fatalf("pos %d: harmless flip changed replay", pos)
			}
			continue
		}
		want := prefix[rec]
		if got := replayDir(t, dir); !bytes.Equal(got, want) {
			t.Fatalf("pos %d (record %d): salvaged replay diverges from undamaged prefix\n got: %q\nwant: %q", pos, rec, got, want)
		}
		// The damaged suffix must be quarantined byte-for-byte.
		if !res.Repaired {
			t.Fatalf("pos %d: corruption not repaired: %+v", pos, res)
		}
		q, err := os.ReadFile(filepath.Join(dir, logName+QuarantineSuffix))
		if err != nil {
			t.Fatalf("pos %d: quarantine missing: %v", pos, err)
		}
		if wantQ := damaged[bounds[rec]:]; !bytes.Equal(q, wantQ) {
			t.Fatalf("pos %d: quarantine mismatch (%d bytes, want %d)", pos, len(q), len(wantQ))
		}
		if got := QuarantinedBytes(dir); got != int64(len(q)) {
			t.Fatalf("pos %d: QuarantinedBytes = %d, want %d", pos, got, len(q))
		}
	}
}

// TestSalvageIsRerunnable: salvaging an already-salvaged dir is a
// no-op, and salvage after a crash between quarantine and truncate
// (damage present in both places) still converges.
func TestSalvageIsRerunnable(t *testing.T) {
	dir, raw := buildLog(t, 5)
	lines := bytes.SplitAfter(raw, []byte{'\n'})
	pos := len(lines[0]) + len(lines[1])/2
	raw[pos] ^= 0x40
	if err := os.WriteFile(filepath.Join(dir, logName), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Salvage(dir); err != nil {
		t.Fatal(err)
	}
	res, err := Salvage(dir)
	if err != nil {
		t.Fatalf("second salvage: %v", err)
	}
	if res.Repaired {
		t.Fatalf("second salvage repaired again: %+v", res)
	}
	if _, _, _, err := Open(dir, Options{NoSync: true}); err != nil {
		t.Fatalf("open after salvage: %v", err)
	}
}
