package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type testPayload struct {
	Name string `json:"name"`
	N    int    `json:"n"`
}

func openT(t *testing.T, dir string) (*Log, *Snapshot, []Record) {
	t.Helper()
	l, snap, recs, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, snap, recs
}

func appendN(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append("commit", testPayload{Name: fmt.Sprintf("rec-%d", i), N: i}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, snap, recs := openT(t, dir)
	if snap != nil || len(recs) != 0 {
		t.Fatalf("fresh log: snap=%v records=%d", snap, len(recs))
	}
	appendN(t, l, 5)
	if got := l.LastSeq(); got != 5 {
		t.Fatalf("LastSeq = %d, want 5", got)
	}
	l.Close()

	l2, snap2, recs2 := openT(t, dir)
	defer l2.Close()
	if snap2 != nil {
		t.Fatalf("unexpected snapshot")
	}
	if len(recs2) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs2))
	}
	for i, r := range recs2 {
		if r.Seq != uint64(i+1) || r.Type != "commit" {
			t.Fatalf("record %d = {%d %q}", i, r.Seq, r.Type)
		}
		var p testPayload
		if err := json.Unmarshal(r.Data, &p); err != nil {
			t.Fatalf("payload %d: %v", i, err)
		}
		if p.N != i || p.Name != fmt.Sprintf("rec-%d", i) {
			t.Fatalf("payload %d = %+v", i, p)
		}
	}
	if st := l2.Stats(); st.Replayed != 5 || st.TornTruncated != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Appends continue the sequence.
	seq, err := l2.Append("commit", testPayload{N: 99})
	if err != nil || seq != 6 {
		t.Fatalf("Append after reopen: seq=%d err=%v", seq, err)
	}
}

// TestTornTailTruncatedAtEveryOffset cuts the log after every byte and
// asserts recovery always yields a whole-record prefix: pre- or
// post-record state, never a torn record.
func TestTornTailTruncatedAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openT(t, dir)
	appendN(t, l, 4)
	l.Close()
	raw, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries = offsets just after each newline.
	boundaries := map[int]int{0: 0} // cut offset -> records expected
	n := 0
	for i, b := range raw {
		if b == '\n' {
			n++
			boundaries[i+1] = n
		}
	}
	for cut := 0; cut <= len(raw); cut++ {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, logName), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, _, recs := openT(t, sub)
		wantRecs, atBoundary := boundaries[cut]
		if atBoundary {
			if len(recs) != wantRecs {
				t.Fatalf("cut %d (boundary): %d records, want %d", cut, len(recs), wantRecs)
			}
			if st := l2.Stats(); st.TornTruncated != 0 {
				t.Fatalf("cut %d: truncated %d bytes at a clean boundary", cut, st.TornTruncated)
			}
		} else {
			// Mid-record cut: everything before the last boundary survives.
			prev := 0
			for off, cnt := range boundaries {
				if off <= cut && cnt > prev {
					prev = cnt
				}
			}
			if len(recs) != prev {
				t.Fatalf("cut %d: %d records, want %d", cut, len(recs), prev)
			}
			if st := l2.Stats(); st.TornTruncated == 0 {
				t.Fatalf("cut %d: expected torn-tail truncation", cut)
			}
		}
		// The truncated log must be cleanly appendable and re-openable.
		if _, err := l2.Append("commit", testPayload{N: 7}); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		l2.Close()
		l3, _, recs3 := openT(t, sub)
		if len(recs3) != wantRecsAfter(boundaries, cut)+1 {
			t.Fatalf("cut %d: reopen saw %d records", cut, len(recs3))
		}
		l3.Close()
	}
}

func wantRecsAfter(boundaries map[int]int, cut int) int {
	prev := 0
	for off, cnt := range boundaries {
		if off <= cut && cnt > prev {
			prev = cnt
		}
	}
	return prev
}

func TestCRCFlipDetected(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openT(t, dir)
	appendN(t, l, 2)
	l.Close()
	path := filepath.Join(dir, logName)
	raw, _ := os.ReadFile(path)
	// Flip one payload byte of the LAST record: CRC fails, treated as torn
	// tail (crash during that write), so only record 1 survives.
	lines := strings.SplitAfter(string(raw), "\n")
	tampered := strings.Replace(lines[1], "rec-1", "rec-X", 1)
	os.WriteFile(path, []byte(lines[0]+tampered), 0o644)
	l2, _, recs := openT(t, dir)
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("after tail flip: %d records", len(recs))
	}
	l2.Close()
}

func TestMidLogCorruptionIsError(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openT(t, dir)
	appendN(t, l, 3)
	l.Close()
	path := filepath.Join(dir, logName)
	raw, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(raw), "\n")
	// Corrupt record 2 while records 1 and 3 stay valid.
	tampered := strings.Replace(lines[1], "rec-1", "rec-X", 1)
	os.WriteFile(path, []byte(lines[0]+tampered+lines[2]), 0o644)
	_, _, _, err := Open(dir, Options{NoSync: true})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log corruption: err = %v, want ErrCorrupt", err)
	}
}

func TestFailingWriterFailsAppend(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("disk full")
	fail := false
	l, _, _, err := Open(dir, Options{NoSync: true, WriteHook: func([]byte) error {
		if fail {
			return boom
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append("commit", testPayload{N: 1}); err != nil {
		t.Fatal(err)
	}
	fail = true
	if _, err := l.Append("commit", testPayload{N: 2}); !errors.Is(err, boom) {
		t.Fatalf("append with failing writer: %v", err)
	}
	if st := l.Stats(); st.AppendErrors != 1 || st.Appends != 1 || st.LastSeq != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The failed append must not have consumed a sequence number.
	fail = false
	seq, err := l.Append("commit", testPayload{N: 3})
	if err != nil || seq != 2 {
		t.Fatalf("append after failure: seq=%d err=%v", seq, err)
	}
	l.Close()
	_, _, recs := openT(t, dir)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
}

func TestSnapshotCompactReplay(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openT(t, dir)
	appendN(t, l, 10)
	if err := l.Compact(testPayload{Name: "state", N: 10}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if l.Size() != 0 {
		t.Fatalf("log size after compaction = %d", l.Size())
	}
	// Post-snapshot records continue the global sequence.
	seq, err := l.Append("commit", testPayload{N: 11})
	if err != nil || seq != 11 {
		t.Fatalf("post-compaction append: seq=%d err=%v", seq, err)
	}
	l.Sync()
	l.Close()

	l2, snap, recs := openT(t, dir)
	defer l2.Close()
	if snap == nil || snap.LastSeq != 10 {
		t.Fatalf("snapshot = %+v", snap)
	}
	var p testPayload
	if err := json.Unmarshal(snap.Data, &p); err != nil || p.N != 10 || p.Name != "state" {
		t.Fatalf("snapshot payload = %+v err=%v", p, err)
	}
	if len(recs) != 1 || recs[0].Seq != 11 {
		t.Fatalf("post-snapshot records = %+v", recs)
	}
}

// TestSnapshotCoversStaleLogRecords models a crash between the snapshot
// rename and the log truncation: the log still holds records the snapshot
// already covers, and replay must skip them by sequence number.
func TestSnapshotCoversStaleLogRecords(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openT(t, dir)
	appendN(t, l, 6)
	logBytes, _ := os.ReadFile(filepath.Join(dir, logName))
	if err := l.Compact(testPayload{Name: "state", N: 6}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Put the pre-compaction log back (the crash left it behind).
	os.WriteFile(filepath.Join(dir, logName), logBytes, 0o644)
	l2, snap, recs := openT(t, dir)
	defer l2.Close()
	if snap == nil || snap.LastSeq != 6 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(recs) != 0 {
		t.Fatalf("replayed %d stale records, want 0", len(recs))
	}
	if got := l2.LastSeq(); got != 6 {
		t.Fatalf("LastSeq = %d, want 6", got)
	}
}

func TestCorruptSnapshotIsError(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openT(t, dir)
	appendN(t, l, 2)
	if err := l.Compact(testPayload{N: 2}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	path := filepath.Join(dir, snapshotName)
	raw, _ := os.ReadFile(path)
	os.WriteFile(path, []byte(strings.Replace(string(raw), "\"n\":2", "\"n\":3", 1)), 0o644)
	_, _, _, err := Open(dir, Options{NoSync: true})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot: err = %v, want ErrCorrupt", err)
	}
}

func TestEmptyAndWhitespacePayloads(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openT(t, dir)
	if _, err := l.Append("genesis", map[string]any{"labels": []int{0, 1, 2}, "note": "a|b\nc"}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, _, recs := openT(t, dir)
	if len(recs) != 1 {
		t.Fatalf("replayed %d", len(recs))
	}
	var m map[string]any
	if err := json.Unmarshal(recs[0].Data, &m); err != nil || m["note"] != "a|b\nc" {
		t.Fatalf("payload = %v err=%v", m, err)
	}
}
