package wal

import (
	"io"
	"os"
)

// FS is the write-ahead log's filesystem seam: every disk operation the
// log (and its fsck/salvage tooling) performs goes through one of these
// methods, so a fault-injection harness (internal/wal/faultfs) can script
// deterministic disk failures — short writes, ENOSPC, fsync errors, a
// crash between the snapshot rename and the log truncation — without
// touching the kernel. Production uses OSFS, the passthrough to the os
// package.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens for reading (directories included — the log fsyncs its
	// directory after a snapshot rename).
	Open(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Stat(name string) (os.FileInfo, error)
}

// File is the subset of *os.File the log uses.
type File interface {
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
}

// OSFS is the production FS: a stateless passthrough to the os package.
type OSFS struct{}

func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OSFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OSFS) ReadFile(name string) ([]byte, error)  { return os.ReadFile(name) }
func (OSFS) Rename(oldpath, newpath string) error  { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error              { return os.Remove(name) }
func (OSFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }
