// Package wal is the durability substrate of the CI server: an
// append-only, JSON-lines write-ahead log plus an atomically replaced
// snapshot file. The log owns framing and integrity — sequence numbers,
// a CRC-32C per record, torn-tail truncation on open — and stays agnostic
// of what the records mean: callers append typed payloads and replay the
// decoded records themselves. Recovery is therefore logical replay: the
// server re-executes the logged inputs through the same deterministic
// engine code that produced them, which is what makes a recovered process
// byte-identical to an uninterrupted one.
//
// On-disk layout inside the data directory:
//
//	wal.log        one record per line: {"s":seq,"t":type,"c":crc,"d":payload}
//	snapshot.json  {"s":lastSeq,"c":crc,"d":payload}, replaced atomically
//
// A record whose line is incomplete or fails its CRC at the tail of the
// log is a torn write from a crash: it (and anything after it) is
// truncated away, which is the rollback semantics of a write-ahead log —
// a mutation whose record did not reach the disk never happened. The same
// damage in the middle of the log, with valid records after it, is not a
// crash signature and is reported as corruption instead of being silently
// dropped.
package wal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// ErrCorrupt reports damage the torn-tail rule cannot explain: a bad
// record followed by valid ones, a CRC mismatch in the snapshot, or a
// sequence number that goes backwards.
var ErrCorrupt = errors.New("wal: log corrupt")

const (
	logName      = "wal.log"
	snapshotName = "snapshot.json"
)

// castagnoli is the CRC-32C table (the polynomial with hardware support
// on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one decoded log entry, handed back to the caller at Open for
// replay. Data preserves the exact payload bytes that were appended.
type Record struct {
	Seq  uint64
	Type string
	Data json.RawMessage
}

// Snapshot is the decoded snapshot file: the caller's materialized state
// covering every record with Seq <= LastSeq.
type Snapshot struct {
	LastSeq uint64
	Data    json.RawMessage
}

// Options tunes a Log.
type Options struct {
	// NoSync makes Sync a no-op. Tests and benchmarks that measure encode
	// cost (or create hundreds of logs) set it; production leaves it off.
	NoSync bool
	// WriteHook, when set, sees every encoded record line before it is
	// written; returning an error fails the append without writing. It is
	// the record-level fault-injection point for disk-failure tests (the
	// byte-level one is FS).
	WriteHook func(line []byte) error
	// FS is the filesystem the log reads and writes through; nil means
	// the real one (OSFS). Disk-fault tests inject a faultfs.FS here.
	FS FS
}

// Stats counts a log's lifetime traffic; exposed through the server's
// metrics endpoint.
type Stats struct {
	// Appends / AppendErrors count record appends since open.
	Appends      uint64 `json:"appends"`
	AppendErrors uint64 `json:"append_errors"`
	// Syncs counts fsync calls (0 under NoSync).
	Syncs uint64 `json:"syncs"`
	// Replayed is how many records Open decoded and handed back.
	Replayed int `json:"replayed"`
	// TornTruncated is how many trailing bytes Open cut off as a torn
	// write (0 after a clean shutdown).
	TornTruncated int `json:"torn_truncated_bytes"`
	// SnapshotSeq is the LastSeq of the snapshot in effect (0 = none).
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// Compactions counts Compact calls since open.
	Compactions uint64 `json:"compactions"`
	// LastSeq is the newest durable record's sequence number.
	LastSeq uint64 `json:"last_seq"`
	// SizeBytes is the current log file size.
	SizeBytes int64 `json:"size_bytes"`
}

// Log is an open write-ahead log. Append/Sync/Compact are safe for
// concurrent use; the internal mutex is a leaf lock (Log never calls
// back into the caller).
type Log struct {
	dir  string
	opts Options
	fsys FS

	mu      sync.Mutex
	f       File
	nextSeq uint64
	size    int64
	stats   Stats
}

// Open opens (or creates) the log in dir and returns the snapshot in
// effect (nil if none) plus every decoded record with Seq beyond the
// snapshot, in order, after truncating a torn tail. The caller replays
// snapshot + records to rebuild its state, then appends new records.
func Open(dir string, opts Options) (*Log, *Snapshot, []Record, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, fmt.Errorf("wal: %w", err)
	}
	snap, err := readSnapshot(fsys, filepath.Join(dir, snapshotName))
	if err != nil {
		return nil, nil, nil, err
	}
	var snapSeq uint64
	if snap != nil {
		snapSeq = snap.LastSeq
	}
	records, torn, lastSeq, err := readLog(fsys, filepath.Join(dir, logName), snapSeq)
	if err != nil {
		return nil, nil, nil, err
	}
	f, err := fsys.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("wal: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, nil, fmt.Errorf("wal: %w", err)
	}
	if torn > 0 {
		if err := f.Truncate(info.Size() - int64(torn)); err != nil {
			f.Close()
			return nil, nil, nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, nil, fmt.Errorf("wal: %w", err)
	}
	next := lastSeq
	if snapSeq > next {
		next = snapSeq
	}
	l := &Log{dir: dir, opts: opts, fsys: fsys, f: f, nextSeq: next, size: info.Size() - int64(torn)}
	l.stats.Replayed = len(records)
	l.stats.TornTruncated = torn
	l.stats.SnapshotSeq = snapSeq
	l.stats.LastSeq = next
	l.stats.SizeBytes = l.size
	return l, snap, records, nil
}

// crcOf computes the record checksum over seq, type, and the exact
// payload bytes — the same input at write and read time.
func crcOf(seq uint64, typ string, data []byte) uint32 {
	h := crc32.New(castagnoli)
	fmt.Fprintf(h, "%d|%s|", seq, typ)
	h.Write(data)
	return h.Sum32()
}

// envelope is the wire shape of one log line (and of the snapshot file,
// where S is the covered LastSeq).
type envelope struct {
	S uint64          `json:"s"`
	T string          `json:"t,omitempty"`
	C uint32          `json:"c"`
	D json.RawMessage `json:"d"`
}

// readLog decodes the log file, returning records with Seq > afterSeq,
// the number of trailing bytes to truncate as a torn write, and the
// highest sequence number seen.
func readLog(fsys FS, path string, afterSeq uint64) (records []Record, torn int, lastSeq uint64, err error) {
	raw, err := fsys.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, 0, nil
	}
	if err != nil {
		return nil, 0, 0, fmt.Errorf("wal: %w", err)
	}
	offset := 0
	badAt := -1 // offset of the first undecodable/invalid line
	prevSeq := uint64(0)
	for offset < len(raw) {
		nl := bytes.IndexByte(raw[offset:], '\n')
		if nl < 0 {
			// No terminator: an append died mid-write.
			badAt = offset
			break
		}
		line := raw[offset : offset+nl]
		rec, ok := decodeLine(line)
		if !ok || (prevSeq != 0 && rec.Seq <= prevSeq) {
			badAt = offset
			break
		}
		prevSeq = rec.Seq
		lastSeq = rec.Seq
		if rec.Seq > afterSeq {
			records = append(records, rec)
		}
		offset += nl + 1
	}
	if badAt < 0 {
		return records, 0, lastSeq, nil
	}
	// The bad line is only a torn tail if no complete, valid record
	// follows it — valid records after the damage mean mid-log corruption,
	// which truncation would silently destroy.
	rest := raw[badAt:]
	if nl := bytes.IndexByte(rest, '\n'); nl >= 0 {
		for _, line := range bytes.Split(rest[nl+1:], []byte{'\n'}) {
			if _, ok := decodeLine(line); ok {
				return nil, 0, 0, fmt.Errorf("%w: invalid record at byte %d followed by valid records", ErrCorrupt, badAt)
			}
		}
	}
	return records, len(raw) - badAt, lastSeq, nil
}

// decodeLine parses and CRC-verifies one log line.
func decodeLine(line []byte) (Record, bool) {
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return Record{}, false
	}
	if env.S == 0 || env.T == "" || env.D == nil {
		return Record{}, false
	}
	if crcOf(env.S, env.T, env.D) != env.C {
		return Record{}, false
	}
	return Record{Seq: env.S, Type: env.T, Data: env.D}, true
}

// readSnapshot loads and verifies the snapshot file; a missing file is
// (nil, nil).
func readSnapshot(fsys FS, path string) (*Snapshot, error) {
	raw, err := fsys.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var env envelope
	if err := json.Unmarshal(bytes.TrimSpace(raw), &env); err != nil {
		return nil, fmt.Errorf("%w: snapshot: %v", ErrCorrupt, err)
	}
	if crcOf(env.S, "snapshot", env.D) != env.C {
		return nil, fmt.Errorf("%w: snapshot CRC mismatch", ErrCorrupt)
	}
	return &Snapshot{LastSeq: env.S, Data: env.D}, nil
}

// Append encodes one typed record, assigns it the next sequence number,
// and writes it to the log. It does not fsync — callers group the records
// of one logical transaction and call Sync once at its commit point.
func (l *Log) Append(typ string, payload any) (uint64, error) {
	data, err := json.Marshal(payload)
	if err != nil {
		return 0, fmt.Errorf("wal: encoding %s record: %w", typ, err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := l.nextSeq + 1
	line := fmt.Sprintf("{\"s\":%d,\"t\":%q,\"c\":%d,\"d\":%s}\n", seq, typ, crcOf(seq, typ, data), data)
	if l.opts.WriteHook != nil {
		if err := l.opts.WriteHook([]byte(line)); err != nil {
			l.stats.AppendErrors++
			return 0, fmt.Errorf("wal: appending %s record: %w", typ, err)
		}
	}
	n, err := l.f.Write([]byte(line))
	if err != nil {
		l.stats.AppendErrors++
		if n > 0 {
			// A short write left a torn line at the tail. The torn-tail
			// truncation at the next open erases it, but the live process
			// must not keep appending after it — record N+1 glued to half of
			// record N would turn a crash signature into mid-log corruption.
			// Try to cut it back now; if even that fails the file offset is
			// untrustworthy and the caller's poisoning takes over.
			if l.f.Truncate(l.size) == nil {
				_, _ = l.f.Seek(0, io.SeekEnd)
			}
		}
		return 0, fmt.Errorf("wal: appending %s record: %w", typ, err)
	}
	l.nextSeq = seq
	l.size += int64(len(line))
	l.stats.Appends++
	l.stats.LastSeq = seq
	l.stats.SizeBytes = l.size
	return seq, nil
}

// Sync flushes appended records to stable storage (no-op under NoSync).
// A record is only durable — and the mutation it describes only
// committed — once Sync has returned.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.opts.NoSync {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.stats.Syncs++
	return nil
}

// LastSeq returns the sequence number of the newest appended record.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Size returns the current log file size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Stats snapshots the counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Compact writes payload as a snapshot covering every record appended so
// far, then truncates the log. The caller must guarantee payload really
// materializes all records up to LastSeq — the server takes its state
// freeze locks around the whole call. Crash-safe ordering: the snapshot
// is written to a temp file, fsynced, and renamed into place before the
// log is truncated, so a crash at any point leaves either the old
// (snapshot, log) pair or the new snapshot with a log whose records are
// all covered by it (and skipped at replay by their sequence numbers).
func (l *Log) Compact(payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("wal: encoding snapshot: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := l.nextSeq
	body := encodeSnapshot(seq, data)
	tmp := filepath.Join(l.dir, snapshotName+".tmp")
	f, err := l.fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	// A failed snapshot write must leave no partial .tmp behind: fsck (and
	// an operator's ls) should see either the old snapshot state or the
	// new, never a half-written candidate.
	if _, err := f.Write(body); err != nil {
		f.Close()
		_ = l.fsys.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if !l.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			_ = l.fsys.Remove(tmp)
			return fmt.Errorf("wal: snapshot: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		_ = l.fsys.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := l.fsys.Rename(tmp, filepath.Join(l.dir, snapshotName)); err != nil {
		_ = l.fsys.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	l.syncDirLocked()
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncating log after snapshot: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.size = 0
	l.stats.SizeBytes = 0
	l.stats.SnapshotSeq = seq
	l.stats.Compactions++
	return nil
}

// syncDirLocked fsyncs the data directory so a just-renamed snapshot
// survives a power cut; best-effort (some filesystems refuse).
func (l *Log) syncDirLocked() {
	if l.opts.NoSync {
		return
	}
	if d, err := l.fsys.Open(l.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// encodeSnapshot shapes a marshaled payload into the snapshot file's
// exact on-disk bytes. Shared by Compact and the online-backup path, so
// a restored backup is indistinguishable from a compacted data dir.
func encodeSnapshot(seq uint64, data []byte) []byte {
	return []byte(fmt.Sprintf("{\"s\":%d,\"c\":%d,\"d\":%s}\n", seq, crcOf(seq, "snapshot", data), data))
}

// SnapshotBytes encodes payload as a snapshot covering every record
// appended so far, without writing anything: the online-backup path's
// encoder. The caller must guarantee payload materializes all records up
// to LastSeq — the same freeze contract as Compact.
func (l *Log) SnapshotBytes(payload any) ([]byte, error) {
	data, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("wal: encoding snapshot: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return encodeSnapshot(l.nextSeq, data), nil
}

// ReadRaw returns a copy of the log file's current contents. Taken under
// the log mutex, so the bytes end at a record boundary as long as the
// caller holds its own appender freeze (online backup does).
func (l *Log) ReadRaw() ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	raw, err := l.fsys.ReadFile(filepath.Join(l.dir, logName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return raw, nil
}

// Close releases the log file. Appends after Close fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
