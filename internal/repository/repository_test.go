package repository

import (
	"sync"
	"testing"
)

func TestAppendAndChain(t *testing.T) {
	s := NewStore()
	c1, err := s.Append("alice", "first model", "nb-v1", map[string]string{"lr": "0.1"})
	if err != nil {
		t.Fatal(err)
	}
	if c1.Parent != "" || c1.Seq != 1 || c1.ID == "" {
		t.Errorf("root commit wrong: %+v", c1)
	}
	c2, err := s.Append("bob", "tuned", "nb-v2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Parent != c1.ID || c2.Seq != 2 {
		t.Errorf("chain wrong: %+v", c2)
	}
	head, err := s.Head()
	if err != nil || head.ID != c2.ID {
		t.Errorf("head = %+v, %v", head, err)
	}
	got, err := s.Get(c1.ID)
	if err != nil || got.ModelName != "nb-v1" {
		t.Errorf("Get = %+v, %v", got, err)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	hist := s.History()
	if len(hist) != 2 || hist[0].ID != c1.ID {
		t.Error("History wrong")
	}
}

func TestEmptyStore(t *testing.T) {
	s := NewStore()
	if _, err := s.Head(); err == nil {
		t.Error("Head of empty store should fail")
	}
	if _, err := s.Get("nope"); err == nil {
		t.Error("Get unknown id should fail")
	}
	if _, err := s.Append("a", "m", "", nil); err == nil {
		t.Error("empty model name should fail")
	}
}

func TestMetaIsolation(t *testing.T) {
	s := NewStore()
	meta := map[string]string{"k": "v"}
	c, err := s.Append("a", "m", "model", meta)
	if err != nil {
		t.Fatal(err)
	}
	meta["k"] = "mutated"
	got, _ := s.Get(c.ID)
	if got.Meta["k"] != "v" {
		t.Error("store shares caller's meta map")
	}
}

func TestHashDeterminismAndUniqueness(t *testing.T) {
	s1 := NewStore()
	s2 := NewStore()
	a1, _ := s1.Append("a", "m", "model", map[string]string{"x": "1", "y": "2"})
	a2, _ := s2.Append("a", "m", "model", map[string]string{"y": "2", "x": "1"})
	if a1.ID != a2.ID {
		t.Error("same content must hash identically regardless of map order")
	}
	b, _ := s1.Append("a", "m", "model", map[string]string{"x": "1", "y": "2"})
	if b.ID == a1.ID {
		t.Error("different seq/parent must change the hash")
	}
}

func TestConcurrentAppends(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Append("a", "m", "model", nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if s.Len() != 40 {
		t.Errorf("Len = %d, want 40", s.Len())
	}
	// Chain integrity: every parent must exist and seqs must be 1..40.
	hist := s.History()
	for i, c := range hist {
		if c.Seq != i+1 {
			t.Fatalf("seq %d at position %d", c.Seq, i)
		}
		if i > 0 && c.Parent != hist[i-1].ID {
			t.Fatalf("broken chain at %d", i)
		}
	}
}
