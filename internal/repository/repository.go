// Package repository is the commit store of the CI loop: an append-only,
// hash-addressed history of model commits, standing in for the GitHub
// repository of Figure 1. It records what was committed and in what order;
// evaluation results live with the engine.
package repository

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
)

// Commit is one committed model version.
type Commit struct {
	// ID is the content hash of the commit.
	ID string
	// Parent is the previous commit's ID ("" for the root).
	Parent string
	// Seq is the 1-based position in history.
	Seq int
	// Author and Message mirror ordinary VCS metadata.
	Author, Message string
	// ModelName identifies the committed model artifact.
	ModelName string
	// Meta carries arbitrary key/value annotations (hyperparameters, data
	// slice, ...), kept sorted when hashed for determinism.
	Meta map[string]string
}

// Store is an append-only commit log. It is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	commits []Commit
	byID    map[string]int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byID: make(map[string]int)}
}

// Restore rebuilds a store from a recovered history, re-verifying the
// hash chain: every commit's ID must equal the content hash over its
// fields and its Parent must point at the previous commit, so a
// corrupted or tampered snapshot cannot smuggle in a history the hashes
// don't vouch for.
func Restore(commits []Commit) (*Store, error) {
	s := NewStore()
	parent := ""
	for i, c := range commits {
		if c.Seq != i+1 {
			return nil, fmt.Errorf("repository: restored commit %d has seq %d", i, c.Seq)
		}
		if c.Parent != parent {
			return nil, fmt.Errorf("repository: restored commit %s parent %q != %q", c.ID, c.Parent, parent)
		}
		if want := hashCommit(c); c.ID != want {
			return nil, fmt.Errorf("repository: restored commit %d hash %s != computed %s", i, c.ID, want)
		}
		stored := c
		stored.Meta = copyMeta(c.Meta)
		s.byID[c.ID] = len(s.commits)
		s.commits = append(s.commits, stored)
		parent = c.ID
	}
	return s, nil
}

// Append adds a commit with the given metadata and returns it with ID,
// Parent, and Seq filled in.
func (s *Store) Append(author, message, modelName string, meta map[string]string) (Commit, error) {
	if modelName == "" {
		return Commit{}, fmt.Errorf("repository: model name must not be empty")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := Commit{
		Parent:    "",
		Seq:       len(s.commits) + 1,
		Author:    author,
		Message:   message,
		ModelName: modelName,
		Meta:      copyMeta(meta),
	}
	if len(s.commits) > 0 {
		c.Parent = s.commits[len(s.commits)-1].ID
	}
	c.ID = hashCommit(c)
	if _, dup := s.byID[c.ID]; dup {
		return Commit{}, fmt.Errorf("repository: duplicate commit id %s", c.ID)
	}
	s.byID[c.ID] = len(s.commits)
	s.commits = append(s.commits, c)
	return c, nil
}

// Head returns the latest commit.
func (s *Store) Head() (Commit, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.commits) == 0 {
		return Commit{}, fmt.Errorf("repository: empty history")
	}
	return s.commits[len(s.commits)-1], nil
}

// Get looks a commit up by ID.
func (s *Store) Get(id string) (Commit, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, ok := s.byID[id]
	if !ok {
		return Commit{}, fmt.Errorf("repository: unknown commit %q", id)
	}
	return s.commits[i], nil
}

// Len returns the number of commits.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.commits)
}

// History returns all commits oldest-first.
func (s *Store) History() []Commit {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Commit, len(s.commits))
	copy(out, s.commits)
	return out
}

func copyMeta(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func hashCommit(c Commit) string {
	h := sha256.New()
	fmt.Fprintf(h, "parent:%s\nseq:%d\nauthor:%s\nmessage:%s\nmodel:%s\n",
		c.Parent, c.Seq, c.Author, c.Message, c.ModelName)
	keys := make([]string, 0, len(c.Meta))
	for k := range c.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "meta:%s=%s\n", k, c.Meta[k])
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
