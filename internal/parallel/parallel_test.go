package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

func withWorkers(t *testing.T, n int) {
	t.Helper()
	old := Workers
	Workers = n
	t.Cleanup(func() { Workers = old })
}

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 4} {
		withWorkers(t, workers)
		seen := make([]atomic.Int32, 100)
		For(100, func(i int) { seen[i].Add(1) })
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		withWorkers(t, workers)
		errA, errB := errors.New("a"), errors.New("b")
		err := ForErr(50, func(i int) error {
			switch i {
			case 7:
				return errB
			case 3:
				return errA
			}
			return nil
		})
		if err != errA {
			t.Fatalf("workers=%d: err = %v, want the error from the lowest failing index", workers, err)
		}
	}
}

func TestForErrNilOnSuccess(t *testing.T) {
	if err := ForErr(10, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEmptyAndNegative(t *testing.T) {
	called := false
	For(0, func(int) { called = true })
	For(-5, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestNestedCallsDoNotDeadlock(t *testing.T) {
	withWorkers(t, 4)
	var total atomic.Int32
	For(8, func(int) {
		For(8, func(int) { total.Add(1) })
	})
	if total.Load() != 64 {
		t.Fatalf("nested total = %d, want 64", total.Load())
	}
}
