// Package parallel provides a tiny bounded fan-out helper for the
// embarrassingly-parallel loops in the bound search and the experiment
// drivers (grid sweeps, Monte-Carlo trials, table cells).
//
// The design deliberately avoids a shared global worker pool: each call
// spawns its own bounded set of workers that pull indices from an atomic
// counter, so nested calls (a parallel grid inside a parallel probe) cannot
// deadlock — they just multiply up to workers^2 goroutines, which is
// harmless at the sizes involved. On a single-CPU host every call runs
// inline with zero goroutine or channel overhead, keeping microbenchmarks
// honest.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers is the bound on concurrent workers per call. It defaults to
// GOMAXPROCS and is a variable only so tests can exercise the spawn path on
// single-CPU machines.
var Workers = runtime.GOMAXPROCS(0)

// For runs fn(i) for every i in [0, n), fanning across at most Workers
// goroutines. It returns when all iterations complete.
func For(n int, fn func(i int)) {
	_ = ForErr(n, func(i int) error {
		fn(i)
		return nil
	})
}

// ForErr runs fn(i) for every i in [0, n) and returns the error of the
// lowest iteration index that failed (deterministic regardless of
// scheduling). All iterations run even when one fails: fn is assumed cheap
// enough that cancellation machinery would cost more than it saves.
func ForErr(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		errIdx  = n
		firstEr error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, firstEr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}
