package evaluator

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"github.com/easeml/ci/internal/condlang"
	"github.com/easeml/ci/internal/parallel"
)

// This file is the packed (columnar) measurement core. Per-example booleans
// — "did the two models disagree here?", "is this prediction correct?",
// "has this label been revealed?" — are stored as bitmaps of 64 examples
// per uint64 word, so measuring a commit is a handful of XOR/AND +
// popcount passes over n/64 words instead of n branchy int comparisons,
// and the counts {n, o, d} fall out of math/bits.OnesCount64. The scalar
// implementation in measure.go survives as the equivalence oracle (same
// pattern as bounds.ExactWorstCaseFailureGrid): property tests assert the
// two paths produce identical estimates and verdicts.

// Bitmap is a fixed-length bit vector over example indices, packed 64 per
// word. The tail bits of the last word (indices >= Len) are always zero,
// so popcounts never need masking.
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns an all-zero bitmap over n examples.
func NewBitmap(n int) Bitmap {
	b := Bitmap{}
	b.Reset(n)
	return b
}

// Reset resizes the bitmap to n examples and clears every bit, reusing the
// existing word storage when it is large enough.
func (b *Bitmap) Reset(n int) {
	if n < 0 {
		panic(fmt.Sprintf("evaluator: negative bitmap length %d", n))
	}
	w := (n + 63) / 64
	if cap(b.words) < w {
		b.words = make([]uint64, w)
	} else {
		b.words = b.words[:w]
		for i := range b.words {
			b.words[i] = 0
		}
	}
	b.n = n
}

// Len returns the number of examples the bitmap covers.
func (b Bitmap) Len() int { return b.n }

// Get reports whether bit i is set.
func (b Bitmap) Get(i int) bool {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("evaluator: bitmap index %d out of range [0,%d)", i, b.n))
	}
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// Set sets bit i.
func (b *Bitmap) Set(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("evaluator: bitmap index %d out of range [0,%d)", i, b.n))
	}
	b.words[i>>6] |= 1 << uint(i&63)
}

// Clear clears bit i.
func (b *Bitmap) Clear(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("evaluator: bitmap index %d out of range [0,%d)", i, b.n))
	}
	b.words[i>>6] &^= 1 << uint(i&63)
}

// SetAll sets every bit in [0, Len), keeping the tail invariant.
func (b *Bitmap) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.maskTail()
}

// maskTail zeroes the bits at indices >= n in the final word.
func (b *Bitmap) maskTail() {
	if r := b.n & 63; r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(r)) - 1
	}
}

// Count returns the number of set bits (population count).
func (b Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Words exposes the packed words. Callers must not write through it.
func (b Bitmap) Words() []uint64 { return b.words }

// AndCount returns popcount(a AND b). The bitmaps must cover the same
// number of examples.
func AndCount(a, b Bitmap) int {
	if a.n != b.n {
		panic(fmt.Sprintf("evaluator: bitmap length mismatch %d vs %d", a.n, b.n))
	}
	c := 0
	for i, w := range a.words {
		c += bits.OnesCount64(w & b.words[i])
	}
	return c
}

// AndNotCount returns popcount(a AND NOT b): the bits set in a but not b.
func AndNotCount(a, b Bitmap) int {
	if a.n != b.n {
		panic(fmt.Sprintf("evaluator: bitmap length mismatch %d vs %d", a.n, b.n))
	}
	c := 0
	for i, w := range a.words {
		c += bits.OnesCount64(w &^ b.words[i])
	}
	return c
}

// PackBools packs a bool-per-example vector into a bitmap.
func PackBools(v []bool) Bitmap {
	b := NewBitmap(len(v))
	for i, set := range v {
		if set {
			b.Set(i)
		}
	}
	return b
}

// Unpack expands the bitmap back into a bool-per-example vector.
func (b Bitmap) Unpack() []bool {
	out := make([]bool, b.n)
	for i := range out {
		out[i] = b.words[i>>6]&(1<<uint(i&63)) != 0
	}
	return out
}

// commitBitmapsParallelMin is the testset size above which CommitBitmaps
// fans the fused pass across internal/parallel. Below it the goroutine
// spawn costs more than it saves — and the serial path allocates nothing,
// which is what keeps steady-state commit evaluation at 0 allocs/op at the
// benchmark sizes. A var so tests can force the parallel path.
var commitBitmapsParallelMin = 1 << 18

// commitBitmapsChunkWords is the per-worker word granule of the parallel
// fused pass (1024 words = 65536 examples).
const commitBitmapsChunkWords = 1024

// CommitBitmaps runs the fused per-commit pass: in one sweep over the
// three int columns it fills diff (pred[i] != base[i] — the agreement
// column, which needs no labels) and match (labels[i] >= 0 &&
// pred[i] == labels[i] — correctness over the revealed subset). The three
// slices must have equal length; labels uses -1 for unrevealed entries.
// Above commitBitmapsParallelMin examples the word chunks are fanned
// across internal/parallel.
func CommitBitmaps(base, pred, labels []int, diff, match *Bitmap) {
	n := len(pred)
	if len(base) != n || len(labels) != n {
		panic(fmt.Sprintf("evaluator: CommitBitmaps column lengths differ: base=%d pred=%d labels=%d",
			len(base), len(pred), n))
	}
	diff.Reset(n)
	match.Reset(n)
	words := len(diff.words)
	if n < commitBitmapsParallelMin {
		// Kept as a plain call (no closure) so the steady-state commit
		// path stays allocation-free.
		fillCommitWords(base, pred, labels, diff.words, match.words, n, 0, words)
		return
	}
	chunks := (words + commitBitmapsChunkWords - 1) / commitBitmapsChunkWords
	parallel.For(chunks, func(c int) {
		lo := c * commitBitmapsChunkWords
		hi := lo + commitBitmapsChunkWords
		if hi > words {
			hi = words
		}
		fillCommitWords(base, pred, labels, diff.words, match.words, n, lo, hi)
	})
}

// fillCommitWords packs the word range [wLo, wHi) of the fused per-commit
// pass. The bit computations are branchless — the diff and match bits are
// data-dependent coin flips (d is often 5-30%), so per-element branches
// would mispredict constantly; extracting the sign bits of x|-x instead
// keeps the loop at a few cycles per element:
//
//	x := a ^ b          // 0 iff a == b
//	uint64(x|-x) >> 63  // 1 iff x != 0 (sign bit; int->uint64 sign-extends)
//	^uint64(y) >> 63    // 1 iff y >= 0 (labels use -1 for unrevealed)
func fillCommitWords(base, pred, labels []int, diffW, matchW []uint64, n, wLo, wHi int) {
	base = base[:n]
	pred = pred[:n]
	labels = labels[:n]
	for w := wLo; w < wHi; w++ {
		lo := w << 6
		hi := lo + 64
		if hi > n {
			hi = n
		}
		var dw, mw uint64
		for i := lo; i < hi; i++ {
			s := uint(i - lo)
			d := base[i] ^ pred[i]
			dw |= (uint64(d|-d) >> 63) << s
			y := labels[i]
			m := pred[i] ^ y
			eq := ^(uint64(m|-m) >> 63) & 1
			lab := ^(uint64(y) >> 63) & 1
			mw |= (eq & lab) << s
		}
		diffW[w] = dw
		matchW[w] = mw
	}
}

// SWAR constants for the byte-column fused pass: detect zero bytes in a
// word of eight lane-wise XORs and gather the per-byte answers into eight
// adjacent bitmap bits.
const (
	swarLo     = 0x0101010101010101 // 1 in every byte
	swarHi     = 0x8080808080808080 // high bit of every byte
	swarGather = 0x0102040810204080 // moves byte k's high bit to bit k
)

// zeroByteMask returns a word whose byte high bits mark the zero bytes of
// x. Unlike the textbook (x-lo)&^x&hi trick this form is exact per byte:
// (x|hi)-lo cannot borrow across byte lanes, so a zero byte in one lane
// never contaminates its neighbor.
func zeroByteMask(x uint64) uint64 {
	return ^(x | ((x | swarHi) - swarLo)) & swarHi
}

// byteMovemask compresses the byte high bits of m into the low 8 bits
// (byte k's high bit becomes bit k).
func byteMovemask(m uint64) uint64 {
	return ((m >> 7) * swarGather) >> 56
}

// CommitBitmapsBytes is the narrow-column variant of CommitBitmaps for
// testsets whose label alphabet fits a byte (classes <= 255): the
// engine-owned baseline and label columns are uint8, with 255 as the
// "unrevealed" sentinel — a sentinel no valid prediction can equal, so
// correctness over the revealed subset needs no separate labeled mask.
// Eight examples are compared per 64-bit word (XOR + zero-byte SWAR), and
// only the candidate column still streams as []int (it arrives on the
// wire that way), so the pass moves ~1/3 of the memory traffic of the int
// version. Same contract otherwise: equal lengths, diff = pred != base,
// match = revealed && pred == label.
func CommitBitmapsBytes(pred []int, base8, labels8 []uint8, diff, match *Bitmap) {
	n := len(pred)
	if len(base8) != n || len(labels8) != n {
		panic(fmt.Sprintf("evaluator: CommitBitmapsBytes column lengths differ: pred=%d base=%d labels=%d",
			n, len(base8), len(labels8)))
	}
	diff.Reset(n)
	match.Reset(n)
	words := len(diff.words)
	if n < commitBitmapsParallelMin {
		fillCommitWordsBytes(pred, base8, labels8, diff.words, match.words, n, 0, words)
		return
	}
	chunks := (words + commitBitmapsChunkWords - 1) / commitBitmapsChunkWords
	parallel.For(chunks, func(c int) {
		lo := c * commitBitmapsChunkWords
		hi := lo + commitBitmapsChunkWords
		if hi > words {
			hi = words
		}
		fillCommitWordsBytes(pred, base8, labels8, diff.words, match.words, n, lo, hi)
	})
}

// fillCommitWordsBytes packs the word range [wLo, wHi) of the byte-column
// fused pass: 8 predictions are assembled into one word and compared
// against 8 baseline and 8 label bytes with two XOR + zero-byte-mask
// sequences.
func fillCommitWordsBytes(pred []int, base8, labels8 []uint8, diffW, matchW []uint64, n, wLo, wHi int) {
	pred = pred[:n]
	base8 = base8[:n]
	labels8 = labels8[:n]
	for w := wLo; w < wHi; w++ {
		lo := w << 6
		hi := lo + 64
		if hi > n {
			hi = n
		}
		var dw, mw uint64
		i := lo
		for ; i+8 <= hi; i += 8 {
			p := uint64(uint8(pred[i])) |
				uint64(uint8(pred[i+1]))<<8 |
				uint64(uint8(pred[i+2]))<<16 |
				uint64(uint8(pred[i+3]))<<24 |
				uint64(uint8(pred[i+4]))<<32 |
				uint64(uint8(pred[i+5]))<<40 |
				uint64(uint8(pred[i+6]))<<48 |
				uint64(uint8(pred[i+7]))<<56
			b := binary.LittleEndian.Uint64(base8[i : i+8])
			l := binary.LittleEndian.Uint64(labels8[i : i+8])
			s := uint(i - lo)
			eqBase := zeroByteMask(p ^ b)
			dw |= byteMovemask(^eqBase&swarHi) << s
			mw |= byteMovemask(zeroByteMask(p^l)) << s
		}
		for ; i < hi; i++ {
			bit := uint64(1) << uint(i-lo)
			if uint8(pred[i]) != base8[i] {
				dw |= bit
			}
			if uint8(pred[i]) == labels8[i] {
				mw |= bit
			}
		}
		diffW[w] = dw
		matchW[w] = mw
	}
}

// MatchBitmap fills match with the correctness column of a single
// prediction vector: pred[i] == labels[i] over the revealed (labels[i] >=
// 0) subset. Used to (re)build the promoted baseline's cached correctness
// bitmap on rotation; the per-commit path uses the fused CommitBitmaps.
func MatchBitmap(pred, labels []int, match *Bitmap) {
	n := len(pred)
	if len(labels) != n {
		panic(fmt.Sprintf("evaluator: MatchBitmap column lengths differ: pred=%d labels=%d", n, len(labels)))
	}
	match.Reset(n)
	for i := 0; i < n; i++ {
		if y := labels[i]; y >= 0 && pred[i] == y {
			match.words[i>>6] |= 1 << uint(i&63)
		}
	}
}

// LabeledBitmap fills revealed with the labeled column: labels[i] >= 0.
func LabeledBitmap(labels []int, revealed *Bitmap) {
	revealed.Reset(len(labels))
	for i, y := range labels {
		if y >= 0 {
			revealed.words[i>>6] |= 1 << uint(i&63)
		}
	}
}

// MeasurePacked computes the same VarEstimates as Measure, but from packed
// columns: diff is the disagreement bitmap, newMatch/oldMatch the
// correctness bitmaps of the two models over the labeled subset, and
// labeled marks which examples have labels. All four bitmaps must cover
// the same number of examples. As in Measure, accuracies are reported only
// when at least one example is labeled, while d always uses every example.
//
// This is the standalone packed mirror of Measure; the engine's hot path
// computes the same ratios inline from its cached bitmaps (a VarEstimates
// map per commit would break its zero-allocation steady state). Both are
// held to Measure's answers by TestMeasurePackedVsScalar and the engine's
// packed-vs-scalar suites, so the two cannot drift apart silently.
func MeasurePacked(diff, newMatch, oldMatch, labeled Bitmap) (VarEstimates, error) {
	n := diff.Len()
	if newMatch.Len() != n || oldMatch.Len() != n || labeled.Len() != n {
		return VarEstimates{}, fmt.Errorf("evaluator: bitmap lengths differ: diff=%d new=%d old=%d labeled=%d",
			n, newMatch.Len(), oldMatch.Len(), labeled.Len())
	}
	if n == 0 {
		return VarEstimates{}, fmt.Errorf("evaluator: empty testset")
	}
	est := VarEstimates{Values: map[condlang.Var]float64{
		condlang.VarD: float64(diff.Count()) / float64(n),
	}}
	if l := labeled.Count(); l > 0 {
		est.Values[condlang.VarN] = float64(newMatch.Count()) / float64(l)
		est.Values[condlang.VarO] = float64(oldMatch.Count()) / float64(l)
	}
	return est, nil
}
