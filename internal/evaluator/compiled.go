package evaluator

import (
	"fmt"
	"sort"

	"github.com/easeml/ci/internal/condlang"
	"github.com/easeml/ci/internal/interval"
)

// A script's condition is fixed for the life of an engine, but the generic
// evaluation path re-linearizes every clause expression on every commit —
// an allocation (and a map build) per clause per evaluation. Compile hoists
// the linearization to construction time so the per-commit hot path is
// allocation-free: the engine compiles its condition once and evaluates
// the compiled form against a reusable estimates map.

// Term is one coefficient of a compiled clause's linear left-hand side.
type Term struct {
	Var  condlang.Var
	Coef float64
}

// CompiledClause is a clause with its left-hand side pre-linearized. Terms
// are sorted by variable name, so the point estimate is accumulated in a
// deterministic order (the map-backed path iterates in Go's randomized map
// order; with the <= 2-term clauses the condition language produces, every
// order rounds identically, so the two paths agree bit-for-bit).
type CompiledClause struct {
	Clause condlang.Clause
	Const  float64
	Terms  []Term
}

// CompiledFormula is a conjunction of compiled clauses.
type CompiledFormula struct {
	Clauses []CompiledClause
}

// Compile linearizes every clause of the formula once.
func Compile(f condlang.Formula) (CompiledFormula, error) {
	out := CompiledFormula{Clauses: make([]CompiledClause, 0, len(f.Clauses))}
	for _, c := range f.Clauses {
		lf, err := condlang.Linearize(c.Expr)
		if err != nil {
			return CompiledFormula{}, err
		}
		cc := CompiledClause{Clause: c, Const: lf.Const}
		for v, coef := range lf.Coef {
			cc.Terms = append(cc.Terms, Term{Var: v, Coef: coef})
		}
		sort.Slice(cc.Terms, func(i, j int) bool { return cc.Terms[i].Var < cc.Terms[j].Var })
		out.Clauses = append(out.Clauses, cc)
	}
	return out, nil
}

// DOnly reports whether the clause's left-hand side is exactly the
// disagreement variable d (coefficient 1) — evaluable without any labels.
func (cc CompiledClause) DOnly() bool {
	return len(cc.Terms) == 1 && cc.Terms[0].Var == condlang.VarD && cc.Terms[0].Coef == 1
}

// NMinusO reports whether the left-hand side is exactly n - o — the
// accuracy-difference form active labeling measures over disagreements.
func (cc CompiledClause) NMinusO() bool {
	return len(cc.Terms) == 2 &&
		cc.Terms[0].Var == condlang.VarN && cc.Terms[0].Coef == 1 &&
		cc.Terms[1].Var == condlang.VarO && cc.Terms[1].Coef == -1
}

// Interval mirrors ClauseInterval on the pre-linearized form.
func (cc CompiledClause) Interval(est VarEstimates) (interval.Interval, error) {
	point := cc.Const
	halfWidth := 0.0
	for _, t := range cc.Terms {
		val, ok := est.Values[t.Var]
		if !ok {
			return interval.Interval{}, fmt.Errorf("evaluator: no estimate for variable %s", t.Var)
		}
		point += t.Coef * val
		if est.Eps != nil {
			eps, ok := est.Eps[t.Var]
			if !ok {
				return interval.Interval{}, fmt.Errorf("evaluator: no tolerance for variable %s", t.Var)
			}
			if eps < 0 {
				return interval.Interval{}, fmt.Errorf("evaluator: negative tolerance for variable %s", t.Var)
			}
			if t.Coef < 0 {
				halfWidth += -t.Coef * eps
			} else {
				halfWidth += t.Coef * eps
			}
		}
	}
	if est.Eps == nil {
		halfWidth = cc.Clause.Tolerance
	}
	return interval.Around(point, halfWidth), nil
}

// Eval evaluates one compiled clause to three-valued logic.
func (cc CompiledClause) Eval(est VarEstimates) (interval.Truth, error) {
	iv, err := cc.Interval(est)
	if err != nil {
		return interval.Unknown, err
	}
	if cc.Clause.Cmp == condlang.CmpGreater {
		return iv.GreaterThan(cc.Clause.Threshold), nil
	}
	return iv.LessThan(cc.Clause.Threshold), nil
}

// Eval evaluates the compiled conjunction, mirroring EvalFormula.
func (cf CompiledFormula) Eval(est VarEstimates) (interval.Truth, error) {
	if len(cf.Clauses) == 0 {
		return interval.Unknown, fmt.Errorf("evaluator: empty formula")
	}
	result := interval.True
	for i := range cf.Clauses {
		t, err := cf.Clauses[i].Eval(est)
		if err != nil {
			return interval.Unknown, err
		}
		result = result.And(t)
	}
	return result, nil
}
