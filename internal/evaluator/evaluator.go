// Package evaluator implements condition evaluation (Section 3.5 of the
// paper): point estimates of the variables {n, o, d} are widened into
// confidence intervals, combined through the interval algebra, compared in
// three-valued logic, and collapsed to a pass/fail signal by the script's
// fp-free / fn-free mode.
//
// # Packed measurement
//
// Measuring {n, o, d} is one pass over the testset per commit, and with
// exact-binomial plans asking for 30k-300k examples that pass dominates
// per-commit latency. The hot path is therefore columnar and bit-packed
// (packed.go): per-example booleans — "do the models disagree here?", "is
// this prediction correct?", "is this label revealed?" — live in Bitmap
// values, 64 examples per uint64 word, so the three variables are
// XOR/AND + math/bits.OnesCount64 over n/64 words instead of n branchy
// int comparisons. CommitBitmaps fuses the disagreement and correctness
// columns into one sweep (fanned across internal/parallel above
// ~256k examples); CommitBitmapsBytes is the narrow-column variant for
// label alphabets that fit a byte (classes <= 255, with 255 as the
// unrevealed sentinel), comparing eight examples per 64-bit word via a
// zero-byte SWAR mask — the configuration the engine runs when it can,
// since it moves an eighth of the memory traffic per engine-owned column.
// Compiled formulas (compiled.go) hoist clause linearization out of the
// per-commit path, so steady-state evaluation allocates nothing.
//
// The element-wise implementations (Measure, Accuracy, Disagreement) are
// not dead code: they are the equivalence oracle, exactly as the retired
// grid search serves the event-driven worst-case sweep in
// internal/bounds. Property tests (TestMeasurePackedVsScalar and the
// engine's packed-vs-scalar suites) hold the packed core to bit-identical
// estimates and verdicts against them, including unlabeled entries and
// word-boundary testset sizes.
package evaluator

import (
	"fmt"

	"github.com/easeml/ci/internal/condlang"
	"github.com/easeml/ci/internal/interval"
)

// VarEstimates carries the measured values of the condition variables on
// the current testset, with optional per-variable confidence half-widths.
type VarEstimates struct {
	// Values maps each variable to its point estimate.
	Values map[condlang.Var]float64
	// Eps maps each variable to the half-width of its confidence interval.
	// When nil, clause evaluation widens the whole left-hand side by the
	// clause's own tolerance instead (the composite-range strategy).
	Eps map[condlang.Var]float64
}

// ClauseInterval returns the confidence interval of the clause's left-hand
// expression under the estimates.
func ClauseInterval(c condlang.Clause, est VarEstimates) (interval.Interval, error) {
	lf, err := condlang.Linearize(c.Expr)
	if err != nil {
		return interval.Interval{}, err
	}
	point := lf.Const
	halfWidth := 0.0
	for v, coef := range lf.Coef {
		val, ok := est.Values[v]
		if !ok {
			return interval.Interval{}, fmt.Errorf("evaluator: no estimate for variable %s", v)
		}
		point += coef * val
		if est.Eps != nil {
			eps, ok := est.Eps[v]
			if !ok {
				return interval.Interval{}, fmt.Errorf("evaluator: no tolerance for variable %s", v)
			}
			if eps < 0 {
				return interval.Interval{}, fmt.Errorf("evaluator: negative tolerance for variable %s", v)
			}
			if coef < 0 {
				halfWidth += -coef * eps
			} else {
				halfWidth += coef * eps
			}
		}
	}
	if est.Eps == nil {
		halfWidth = c.Tolerance
	}
	return interval.Around(point, halfWidth), nil
}

// EvalClauseLHS evaluates a clause directly from a point estimate of its
// left-hand expression and a half-width. Active labeling measures n - o as
// one quantity (only disagreements are labeled, so the individual
// accuracies are unobservable); this entry point lets the engine evaluate
// the clause from that composite estimate.
func EvalClauseLHS(c condlang.Clause, lhs, halfWidth float64) (interval.Truth, error) {
	if halfWidth < 0 {
		return interval.Unknown, fmt.Errorf("evaluator: negative half-width %v", halfWidth)
	}
	iv := interval.Around(lhs, halfWidth)
	if c.Cmp == condlang.CmpGreater {
		return iv.GreaterThan(c.Threshold), nil
	}
	return iv.LessThan(c.Threshold), nil
}

// EvalClause evaluates one clause to three-valued logic.
func EvalClause(c condlang.Clause, est VarEstimates) (interval.Truth, error) {
	iv, err := ClauseInterval(c, est)
	if err != nil {
		return interval.Unknown, err
	}
	if c.Cmp == condlang.CmpGreater {
		return iv.GreaterThan(c.Threshold), nil
	}
	return iv.LessThan(c.Threshold), nil
}

// EvalFormula evaluates a conjunction of clauses in three-valued logic.
func EvalFormula(f condlang.Formula, est VarEstimates) (interval.Truth, error) {
	if len(f.Clauses) == 0 {
		return interval.Unknown, fmt.Errorf("evaluator: empty formula")
	}
	result := interval.True
	for _, c := range f.Clauses {
		t, err := EvalClause(c, est)
		if err != nil {
			return interval.Unknown, err
		}
		result = result.And(t)
	}
	return result, nil
}

// Decision is the outcome of evaluating a formula against estimates.
type Decision struct {
	// Truth is the raw three-valued result.
	Truth interval.Truth
	// Pass is the boolean signal after collapsing Unknown under the mode.
	Pass bool
}

// Decide evaluates the formula and collapses the result under the mode.
func Decide(f condlang.Formula, est VarEstimates, mode interval.Mode) (Decision, error) {
	truth, err := EvalFormula(f, est)
	if err != nil {
		return Decision{}, err
	}
	return Decision{Truth: truth, Pass: mode.Collapse(truth)}, nil
}
