package evaluator

import (
	"math/rand"
	"testing"

	"github.com/easeml/ci/internal/condlang"
)

// randVectors draws an (old, new, labels) column triple: predictions over
// `classes` classes, labels hidden (-1) with probability unlabeledFrac.
func randVectors(rng *rand.Rand, n, classes int, unlabeledFrac float64) (oldPred, newPred, labels []int) {
	oldPred = make([]int, n)
	newPred = make([]int, n)
	labels = make([]int, n)
	for i := 0; i < n; i++ {
		oldPred[i] = rng.Intn(classes)
		newPred[i] = rng.Intn(classes)
		if rng.Float64() < unlabeledFrac {
			labels[i] = -1
		} else {
			labels[i] = rng.Intn(classes)
		}
	}
	return
}

// packedEstimates measures the triple through the packed core: fused
// commit pass for diff + new-model correctness, MatchBitmap for the old
// model, LabeledBitmap for the revealed column.
func packedEstimates(t *testing.T, oldPred, newPred, labels []int) VarEstimates {
	t.Helper()
	var diff, newMatch, oldMatch, labeled Bitmap
	CommitBitmaps(oldPred, newPred, labels, &diff, &newMatch)
	MatchBitmap(oldPred, labels, &oldMatch)
	LabeledBitmap(labels, &labeled)
	est, err := MeasurePacked(diff, newMatch, oldMatch, labeled)
	if err != nil {
		t.Fatalf("MeasurePacked: %v", err)
	}
	return est
}

// TestMeasurePackedVsScalar is the core equivalence property: on random
// prediction/label columns — including unlabeled (-1) entries, word-
// boundary sizes, and n up to 1e5 — the packed popcount measurement and
// the scalar element-wise Measure produce identical VarEstimates, and a
// two-clause condition evaluated from either set of estimates reaches the
// identical verdict.
func TestMeasurePackedVsScalar(t *testing.T) {
	f, err := condlang.Parse("d < 0.5 +/- 0.02 /\\ n - o > 0.01 +/- 0.05")
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	sizes := []int{1, 2, 63, 64, 65, 127, 128, 129, 1000, 4096, 100000}
	for _, n := range sizes {
		cases := 40
		if n >= 4096 {
			cases = 4 // the big sizes are about word-chunk coverage, not case count
		}
		for c := 0; c < cases; c++ {
			classes := 2 + rng.Intn(5)
			unlabeled := []float64{0, 1, rng.Float64()}[rng.Intn(3)]
			oldPred, newPred, labels := randVectors(rng, n, classes, unlabeled)

			scalar, err := Measure(oldPred, newPred, labels)
			if err != nil {
				t.Fatalf("n=%d: Measure: %v", n, err)
			}
			packed := packedEstimates(t, oldPred, newPred, labels)

			if len(scalar.Values) != len(packed.Values) {
				t.Fatalf("n=%d classes=%d unlabeled=%v: estimate keys differ: scalar=%v packed=%v",
					n, classes, unlabeled, scalar.Values, packed.Values)
			}
			for v, want := range scalar.Values {
				if got, ok := packed.Values[v]; !ok || got != want {
					t.Fatalf("n=%d classes=%d unlabeled=%v: %s: packed=%v scalar=%v",
						n, classes, unlabeled, v, got, want)
				}
			}

			// Verdict equivalence: generic map-backed evaluation vs the
			// compiled form on the same estimates (skip when accuracies are
			// unobservable — the formula references n and o).
			if _, ok := scalar.Values[condlang.VarN]; !ok {
				continue
			}
			want, err := EvalFormula(f, scalar)
			if err != nil {
				t.Fatalf("EvalFormula: %v", err)
			}
			got, err := compiled.Eval(packed)
			if err != nil {
				t.Fatalf("compiled.Eval: %v", err)
			}
			if got != want {
				t.Fatalf("n=%d: verdict differs: packed=%v scalar=%v (est %v)", n, got, want, scalar.Values)
			}
		}
	}
}

// TestCommitBitmapsParallelPath forces the fan-out path (normally reserved
// for testsets above commitBitmapsParallelMin) and checks it is identical
// to the serial fill.
func TestCommitBitmapsParallelPath(t *testing.T) {
	saved := commitBitmapsParallelMin
	defer func() { commitBitmapsParallelMin = saved }()

	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 64, 65, 70000, 66000} {
		oldPred, newPred, labels := randVectors(rng, n, 4, 0.3)
		var dSerial, mSerial, dPar, mPar Bitmap
		commitBitmapsParallelMin = 1 << 62
		CommitBitmaps(oldPred, newPred, labels, &dSerial, &mSerial)
		commitBitmapsParallelMin = 0
		CommitBitmaps(oldPred, newPred, labels, &dPar, &mPar)
		for i := 0; i < n; i++ {
			if dSerial.Get(i) != dPar.Get(i) || mSerial.Get(i) != mPar.Get(i) {
				t.Fatalf("n=%d: parallel fused pass differs at %d", n, i)
			}
		}
		if dSerial.Count() != dPar.Count() || mSerial.Count() != mPar.Count() {
			t.Fatalf("n=%d: counts differ", n)
		}
	}
}

func TestBitmapBasics(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 129} {
		b := NewBitmap(n)
		if b.Len() != n || b.Count() != 0 {
			t.Fatalf("n=%d: fresh bitmap len=%d count=%d", n, b.Len(), b.Count())
		}
		b.SetAll()
		if b.Count() != n {
			t.Fatalf("n=%d: SetAll count=%d", n, b.Count())
		}
		if n == 0 {
			continue
		}
		b.Clear(n - 1)
		if b.Count() != n-1 || b.Get(n-1) {
			t.Fatalf("n=%d: Clear failed", n)
		}
		b.Set(n - 1)
		if b.Count() != n || !b.Get(n-1) {
			t.Fatalf("n=%d: Set failed", n)
		}
		// Reset reuses storage and clears.
		b.Reset(n)
		if b.Count() != 0 {
			t.Fatalf("n=%d: Reset left bits", n)
		}
	}
}

func TestBitmapOutOfRangePanics(t *testing.T) {
	b := NewBitmap(10)
	for _, fn := range []func(){
		func() { b.Get(10) },
		func() { b.Get(-1) },
		func() { b.Set(10) },
		func() { b.Clear(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAndCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 63, 64, 65, 1000} {
		a := NewBitmap(n)
		b := NewBitmap(n)
		wantAnd, wantAndNot := 0, 0
		for i := 0; i < n; i++ {
			sa, sb := rng.Intn(2) == 0, rng.Intn(2) == 0
			if sa {
				a.Set(i)
			}
			if sb {
				b.Set(i)
			}
			if sa && sb {
				wantAnd++
			}
			if sa && !sb {
				wantAndNot++
			}
		}
		if got := AndCount(a, b); got != wantAnd {
			t.Fatalf("n=%d: AndCount=%d want %d", n, got, wantAnd)
		}
		if got := AndNotCount(a, b); got != wantAndNot {
			t.Fatalf("n=%d: AndNotCount=%d want %d", n, got, wantAndNot)
		}
	}
}

func TestMeasurePackedErrors(t *testing.T) {
	if _, err := MeasurePacked(NewBitmap(0), NewBitmap(0), NewBitmap(0), NewBitmap(0)); err == nil {
		t.Error("empty testset should fail")
	}
	if _, err := MeasurePacked(NewBitmap(3), NewBitmap(4), NewBitmap(3), NewBitmap(3)); err == nil {
		t.Error("length mismatch should fail")
	}
}

// TestCompiledEvalMatchesEvalFormula checks the compiled form against the
// generic evaluator across clause shapes and estimate values, including
// the per-variable Eps mode.
func TestCompiledEvalMatchesEvalFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, src := range []string{
		"d < 0.1 +/- 0.01",
		"n > 0.6 +/- 0.05",
		"n - o > 0.02 +/- 0.03",
		"n - 1.1 * o > -0.1 +/- 0.05",
		"d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.03",
	} {
		f, err := condlang.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		compiled, err := Compile(f)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 200; c++ {
			est := VarEstimates{Values: map[condlang.Var]float64{
				condlang.VarN: rng.Float64(),
				condlang.VarO: rng.Float64(),
				condlang.VarD: rng.Float64(),
			}}
			if c%2 == 1 {
				est.Eps = map[condlang.Var]float64{
					condlang.VarN: rng.Float64() * 0.1,
					condlang.VarO: rng.Float64() * 0.1,
					condlang.VarD: rng.Float64() * 0.1,
				}
			}
			want, err := EvalFormula(f, est)
			if err != nil {
				t.Fatal(err)
			}
			got, err := compiled.Eval(est)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s: compiled=%v generic=%v on %v", src, got, want, est.Values)
			}
		}
	}
	// Error parity: missing estimate.
	f, _ := condlang.Parse("n > 0.5 +/- 0.1")
	compiled, _ := Compile(f)
	empty := VarEstimates{Values: map[condlang.Var]float64{}}
	if _, err := compiled.Eval(empty); err == nil {
		t.Error("missing estimate should fail")
	}
	if _, err := (CompiledFormula{}).Eval(empty); err == nil {
		t.Error("empty formula should fail")
	}
}

func TestCompiledClauseShapes(t *testing.T) {
	shapes := []struct {
		src            string
		dOnly, nMinusO bool
	}{
		{"d < 0.1 +/- 0.01", true, false},
		{"n - o > 0.02 +/- 0.03", false, true},
		{"n > 0.5 +/- 0.1", false, false},
		{"n - 1.1 * o > 0.01 +/- 0.01", false, false},
		{"2 * d < 0.2 +/- 0.01", false, false},
	}
	for _, s := range shapes {
		f, err := condlang.Parse(s.src)
		if err != nil {
			t.Fatal(err)
		}
		compiled, err := Compile(f)
		if err != nil {
			t.Fatal(err)
		}
		cc := compiled.Clauses[0]
		if cc.DOnly() != s.dOnly || cc.NMinusO() != s.nMinusO {
			t.Errorf("%s: DOnly=%v NMinusO=%v, want %v %v", s.src, cc.DOnly(), cc.NMinusO(), s.dOnly, s.nMinusO)
		}
	}
}

// FuzzBitmapRoundTrip fuzzes the pack/unpack round trip: any bool vector
// must survive PackBools -> Unpack unchanged, with Count matching the
// naive tally and the tail-word invariant intact.
func FuzzBitmapRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0x01})
	f.Add([]byte{0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55, 0x01})
	f.Fuzz(func(t *testing.T, raw []byte) {
		// One bool per bit of the input, so boundary lengths (63/64/65...)
		// appear naturally as the corpus grows.
		v := make([]bool, len(raw)*8)
		want := 0
		for i := range v {
			v[i] = raw[i/8]&(1<<uint(i%8)) != 0
			if v[i] {
				want++
			}
		}
		b := PackBools(v)
		if b.Len() != len(v) {
			t.Fatalf("Len=%d want %d", b.Len(), len(v))
		}
		if got := b.Count(); got != want {
			t.Fatalf("Count=%d want %d", got, want)
		}
		back := b.Unpack()
		for i := range v {
			if back[i] != v[i] {
				t.Fatalf("round trip differs at %d", i)
			}
		}
		// Tail invariant: bits past Len are zero in the last word.
		if r := len(v) & 63; r != 0 {
			last := b.Words()[len(b.Words())-1]
			if last&^((1<<uint(r))-1) != 0 {
				t.Fatalf("tail bits set: %x (len %d)", last, len(v))
			}
		}
	})
}

// TestCommitBitmapsBytesVsInt: the narrow-column SWAR pass is bit-for-bit
// identical to the int fused pass on random columns, including tails that
// are not multiples of 8 and unlabeled entries.
func TestCommitBitmapsBytesVsInt(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 7, 8, 9, 63, 64, 65, 200, 1021, 70000} {
		for _, classes := range []int{2, 5, 255} {
			base, pred, labels := randVectors(rng, n, classes, 0.3)
			var dInt, mInt, dByte, mByte Bitmap
			CommitBitmaps(base, pred, labels, &dInt, &mInt)
			base8 := make([]uint8, n)
			labels8 := make([]uint8, n)
			for i := 0; i < n; i++ {
				base8[i] = uint8(base[i])
				if labels[i] < 0 {
					labels8[i] = 255
				} else {
					labels8[i] = uint8(labels[i])
				}
			}
			CommitBitmapsBytes(pred, base8, labels8, &dByte, &mByte)
			for i := 0; i < n; i++ {
				if dInt.Get(i) != dByte.Get(i) || mInt.Get(i) != mByte.Get(i) {
					t.Fatalf("n=%d classes=%d: byte pass differs at %d (diff %v/%v match %v/%v)",
						n, classes, i, dInt.Get(i), dByte.Get(i), mInt.Get(i), mByte.Get(i))
				}
			}
		}
	}
}

// TestZeroByteMaskExhaustive checks the SWAR zero-byte detector and the
// movemask gather over all 256 zero/nonzero byte patterns with random
// nonzero filler — the lane-independence property the byte pass rests on.
func TestZeroByteMaskExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for pattern := 0; pattern < 256; pattern++ {
		for trial := 0; trial < 8; trial++ {
			var x uint64
			for k := 0; k < 8; k++ {
				if pattern&(1<<k) != 0 {
					continue // zero byte in lane k
				}
				x |= uint64(1+rng.Intn(255)) << (8 * k)
			}
			if got := int(byteMovemask(zeroByteMask(x))); got != pattern {
				t.Fatalf("x=%016x: mask=%08b want %08b", x, got, pattern)
			}
		}
	}
}
