package evaluator

import (
	"fmt"

	"github.com/easeml/ci/internal/condlang"
)

// Measure computes the point estimates of the three condition variables
// from prediction vectors on a shared testset:
//
//	n = accuracy of the new model,
//	o = accuracy of the old model,
//	d = fraction of examples where the two models' predictions differ.
//
// Labels may be shorter than the prediction vectors only in the sense of
// being absent (-1) for unlabeled examples; accuracy is then computed over
// the labeled subset while d still uses every example (the paper's
// observation that d needs no labels, Section 4, Technical Observation 2).
func Measure(oldPred, newPred, labels []int) (VarEstimates, error) {
	if len(oldPred) != len(newPred) {
		return VarEstimates{}, fmt.Errorf("evaluator: prediction lengths differ: %d vs %d", len(oldPred), len(newPred))
	}
	if len(labels) != len(oldPred) {
		return VarEstimates{}, fmt.Errorf("evaluator: labels length %d != predictions %d", len(labels), len(oldPred))
	}
	if len(oldPred) == 0 {
		return VarEstimates{}, fmt.Errorf("evaluator: empty testset")
	}
	var diff, labeled, oldCorrect, newCorrect int
	for i := range oldPred {
		if oldPred[i] != newPred[i] {
			diff++
		}
		if labels[i] < 0 {
			continue
		}
		labeled++
		if oldPred[i] == labels[i] {
			oldCorrect++
		}
		if newPred[i] == labels[i] {
			newCorrect++
		}
	}
	est := VarEstimates{Values: map[condlang.Var]float64{
		condlang.VarD: float64(diff) / float64(len(oldPred)),
	}}
	if labeled > 0 {
		est.Values[condlang.VarN] = float64(newCorrect) / float64(labeled)
		est.Values[condlang.VarO] = float64(oldCorrect) / float64(labeled)
	}
	return est, nil
}

// Accuracy computes the fraction of predictions matching labels; examples
// with negative labels are skipped. It errors when nothing is labeled.
func Accuracy(pred, labels []int) (float64, error) {
	if len(pred) != len(labels) {
		return 0, fmt.Errorf("evaluator: length mismatch: %d vs %d", len(pred), len(labels))
	}
	correct, labeled := 0, 0
	for i := range pred {
		if labels[i] < 0 {
			continue
		}
		labeled++
		if pred[i] == labels[i] {
			correct++
		}
	}
	if labeled == 0 {
		return 0, fmt.Errorf("evaluator: no labeled examples")
	}
	return float64(correct) / float64(labeled), nil
}

// Disagreement computes d between two prediction vectors (no labels needed).
func Disagreement(a, b []int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("evaluator: length mismatch: %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("evaluator: empty predictions")
	}
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	return float64(diff) / float64(len(a)), nil
}
