package evaluator

import (
	"math"
	"testing"

	"github.com/easeml/ci/internal/condlang"
	"github.com/easeml/ci/internal/interval"
)

func clause(t *testing.T, src string) condlang.Clause {
	t.Helper()
	c, err := condlang.ParseClause(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func formula(t *testing.T, src string) condlang.Formula {
	t.Helper()
	f, err := condlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func est(vals map[condlang.Var]float64, eps map[condlang.Var]float64) VarEstimates {
	return VarEstimates{Values: vals, Eps: eps}
}

func TestEvalClausePaperSemantics(t *testing.T) {
	// Appendix A.2's worked example: x < 0.1 +/- 0.01 (x is d here).
	c := clause(t, "d < 0.1 +/- 0.01")
	cases := []struct {
		dHat float64
		want interval.Truth
	}{
		{0.12, interval.False},
		{0.111, interval.False},
		{0.089, interval.True},
		{0.05, interval.True},
		{0.10, interval.Unknown},
		{0.095, interval.Unknown},
		{0.105, interval.Unknown},
	}
	for _, tc := range cases {
		got, err := EvalClause(c, est(map[condlang.Var]float64{condlang.VarD: tc.dHat}, nil))
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("d̂=%v: %v, want %v", tc.dHat, got, tc.want)
		}
	}
}

func TestEvalClausePerVariableEps(t *testing.T) {
	// n - o > 0.02 with per-variable eps 0.005 each: total half-width 0.01.
	c := clause(t, "n - o > 0.02 +/- 0.01")
	eps := map[condlang.Var]float64{condlang.VarN: 0.005, condlang.VarO: 0.005}
	cases := []struct {
		n, o float64
		want interval.Truth
	}{
		{0.95, 0.90, interval.True},     // gap 0.05 > 0.02 + 0.01
		{0.925, 0.90, interval.Unknown}, // gap 0.025, straddles
		{0.905, 0.90, interval.False},   // gap 0.005 <= 0.02 - 0.01
		{0.921, 0.90, interval.Unknown}, // gap 0.021 in (0.01, 0.03)
	}
	for _, tc := range cases {
		got, err := EvalClause(c, est(map[condlang.Var]float64{
			condlang.VarN: tc.n, condlang.VarO: tc.o,
		}, eps))
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("n=%v o=%v: %v, want %v", tc.n, tc.o, got, tc.want)
		}
	}
}

func TestClauseIntervalNegativeCoefficient(t *testing.T) {
	// Interval width must use |coef|: n - 1.1*o with eps_o = 0.01 adds 0.011.
	c := clause(t, "n - 1.1 * o > 0 +/- 0.1")
	iv, err := ClauseInterval(c, est(
		map[condlang.Var]float64{condlang.VarN: 0.9, condlang.VarO: 0.8},
		map[condlang.Var]float64{condlang.VarN: 0.01, condlang.VarO: 0.01},
	))
	if err != nil {
		t.Fatal(err)
	}
	wantMid := 0.9 - 1.1*0.8
	wantHW := 0.01 + 0.011
	if math.Abs(iv.Mid()-wantMid) > 1e-12 || math.Abs(iv.Width()/2-wantHW) > 1e-12 {
		t.Errorf("interval = %v, want mid %v hw %v", iv, wantMid, wantHW)
	}
}

func TestEvalFormulaConjunction(t *testing.T) {
	f := formula(t, "n - o > 0.02 +/- 0.01 /\\ d < 0.1 +/- 0.01")
	// First clause True, second Unknown -> Unknown.
	got, err := EvalFormula(f, est(map[condlang.Var]float64{
		condlang.VarN: 0.95, condlang.VarO: 0.90, condlang.VarD: 0.10,
	}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got != interval.Unknown {
		t.Errorf("True AND Unknown = %v, want Unknown", got)
	}
	// First False dominates.
	got, err = EvalFormula(f, est(map[condlang.Var]float64{
		condlang.VarN: 0.90, condlang.VarO: 0.90, condlang.VarD: 0.10,
	}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got != interval.False {
		t.Errorf("False AND Unknown = %v, want False", got)
	}
}

func TestDecideModes(t *testing.T) {
	f := formula(t, "d < 0.1 +/- 0.01")
	unknownEst := est(map[condlang.Var]float64{condlang.VarD: 0.10}, nil)
	dec, err := Decide(f, unknownEst, interval.FPFree)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Truth != interval.Unknown || dec.Pass {
		t.Errorf("fp-free on Unknown = %+v, want reject", dec)
	}
	dec, err = Decide(f, unknownEst, interval.FNFree)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Pass {
		t.Errorf("fn-free on Unknown = %+v, want accept", dec)
	}
}

func TestEvalErrors(t *testing.T) {
	c := clause(t, "n - o > 0.02 +/- 0.01")
	if _, err := EvalClause(c, est(map[condlang.Var]float64{condlang.VarN: 0.9}, nil)); err == nil {
		t.Error("missing variable should fail")
	}
	if _, err := EvalClause(c, est(
		map[condlang.Var]float64{condlang.VarN: 0.9, condlang.VarO: 0.8},
		map[condlang.Var]float64{condlang.VarN: 0.01},
	)); err == nil {
		t.Error("missing per-variable eps should fail")
	}
	if _, err := EvalClause(c, est(
		map[condlang.Var]float64{condlang.VarN: 0.9, condlang.VarO: 0.8},
		map[condlang.Var]float64{condlang.VarN: 0.01, condlang.VarO: -0.01},
	)); err == nil {
		t.Error("negative eps should fail")
	}
	if _, err := EvalFormula(condlang.Formula{}, est(nil, nil)); err == nil {
		t.Error("empty formula should fail")
	}
}

func TestMeasure(t *testing.T) {
	oldPred := []int{0, 1, 2, 0, 1}
	newPred := []int{0, 1, 1, 0, 0}
	labels := []int{0, 1, 1, 1, 1}
	got, err := Measure(oldPred, newPred, labels)
	if err != nil {
		t.Fatal(err)
	}
	// d: positions 2 and 4 differ -> 2/5.
	if got.Values[condlang.VarD] != 0.4 {
		t.Errorf("d = %v, want 0.4", got.Values[condlang.VarD])
	}
	// old correct: 0,1,4 -> wait: old=[0,1,2,0,1] vs labels=[0,1,1,1,1]:
	// correct at 0,1,4 -> 3/5; new=[0,1,1,0,0]: correct at 0,1,2 -> 3/5.
	if got.Values[condlang.VarO] != 0.6 {
		t.Errorf("o = %v, want 0.6", got.Values[condlang.VarO])
	}
	if got.Values[condlang.VarN] != 0.6 {
		t.Errorf("n = %v, want 0.6", got.Values[condlang.VarN])
	}
}

func TestMeasurePartialLabels(t *testing.T) {
	// Unlabeled examples (-1) count for d but not for accuracy.
	oldPred := []int{0, 0, 0, 0}
	newPred := []int{0, 1, 0, 1}
	labels := []int{0, 1, -1, -1}
	got, err := Measure(oldPred, newPred, labels)
	if err != nil {
		t.Fatal(err)
	}
	if got.Values[condlang.VarD] != 0.5 {
		t.Errorf("d = %v, want 0.5", got.Values[condlang.VarD])
	}
	if got.Values[condlang.VarO] != 0.5 || got.Values[condlang.VarN] != 1.0 {
		t.Errorf("o=%v n=%v, want 0.5, 1.0", got.Values[condlang.VarO], got.Values[condlang.VarN])
	}
}

func TestMeasureAllUnlabeled(t *testing.T) {
	got, err := Measure([]int{0, 1}, []int{1, 1}, []int{-1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.Values[condlang.VarN]; ok {
		t.Error("accuracy must be absent with no labels")
	}
	if got.Values[condlang.VarD] != 0.5 {
		t.Errorf("d = %v", got.Values[condlang.VarD])
	}
}

func TestMeasureErrors(t *testing.T) {
	if _, err := Measure([]int{1}, []int{1, 2}, []int{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Measure([]int{1}, []int{1}, []int{}); err == nil {
		t.Error("label length mismatch should fail")
	}
	if _, err := Measure(nil, nil, nil); err == nil {
		t.Error("empty testset should fail")
	}
}

func TestAccuracyAndDisagreement(t *testing.T) {
	acc, err := Accuracy([]int{1, 2, 3}, []int{1, 2, 0})
	if err != nil || math.Abs(acc-2.0/3) > 1e-12 {
		t.Errorf("Accuracy = %v, %v", acc, err)
	}
	if _, err := Accuracy([]int{1}, []int{-1}); err == nil {
		t.Error("all-unlabeled accuracy should fail")
	}
	if _, err := Accuracy([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	d, err := Disagreement([]int{1, 2, 3, 4}, []int{1, 0, 3, 0})
	if err != nil || d != 0.5 {
		t.Errorf("Disagreement = %v, %v", d, err)
	}
	if _, err := Disagreement(nil, nil); err == nil {
		t.Error("empty should fail")
	}
	if _, err := Disagreement([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
}

// TestDecisionConsistency is the key soundness property: whenever the true
// values satisfy/violate the condition by more than the tolerance, the
// decision must be True/False (not Unknown) when fed exact values.
func TestDecisionConsistency(t *testing.T) {
	f := formula(t, "n - o > 0.02 +/- 0.01")
	for gap := -0.05; gap <= 0.08; gap += 0.001 {
		v := est(map[condlang.Var]float64{condlang.VarN: 0.8 + gap, condlang.VarO: 0.8}, nil)
		truth, err := EvalFormula(f, v)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case gap > 0.0301:
			if truth != interval.True {
				t.Fatalf("gap %v: %v, want True", gap, truth)
			}
		case gap < 0.0099:
			if truth != interval.False {
				t.Fatalf("gap %v: %v, want False", gap, truth)
			}
		}
	}
}
