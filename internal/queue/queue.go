// Package queue is the asynchronous spine of the CI server: a bounded
// FIFO job queue with a worker pool draining into an executor (in the
// server's case, engine.Commit under the engine lock). A burst of commits
// from many repositories is absorbed as 202-accepted jobs and evaluated
// in submission order, instead of stalling every caller on one engine
// lock.
//
// Every knob a concurrency test needs is injectable: the clock that
// stamps job transitions, the worker count, and — for fully deterministic
// interleavings — a manual mode with no background workers at all, where
// the test drives execution one job at a time with RunNext. The
// production configuration and the deterministic harness share every line
// of state-machine code; only the goroutines differ.
package queue

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// State is a job's position in its lifecycle. Transitions are
// Queued -> Running -> Done|Failed, or Queued -> Failed directly when a
// queued job is canceled or the queue shuts down non-gracefully. A
// Running job whose error matches the Park policy moves to Parked
// instead of Failed, and back to Queued when ReleaseParked fires. Done
// and Failed are terminal.
type State int32

const (
	// Queued means the job is waiting its FIFO turn.
	Queued State = iota
	// Running means a worker has dequeued the job and is executing it.
	Running
	// Done means the executor returned a result.
	Done
	// Failed means the executor returned an error, or the job was
	// canceled while still queued (Err is ErrCanceled then).
	Failed
	// Parked means the executor hit a retryable dependency outage (the
	// remote label provider, in the CI server's case) and the job is
	// held — outside the pending backlog, occupying no worker — until
	// ReleaseParked re-queues it. Parked is not terminal: Done stays
	// open and waiters keep waiting.
	Parked
)

// String implements fmt.Stringer; the values are the wire vocabulary of
// the server's job-status endpoint.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Parked:
		return "awaiting_labels"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed }

var (
	// ErrFull rejects a submit when the pending backlog is at capacity.
	ErrFull = errors.New("queue: full")
	// ErrClosed rejects a submit after Close.
	ErrClosed = errors.New("queue: closed")
	// ErrCanceled is the terminal error of a job canceled while queued.
	ErrCanceled = errors.New("queue: job canceled")
	// ErrNotFound reports an unknown (or already evicted) job ID.
	ErrNotFound = errors.New("queue: no such job")
	// ErrNotCancelable reports a cancel attempt on a job that already
	// started running or finished; only queued jobs can be canceled.
	ErrNotCancelable = errors.New("queue: job is not queued")
)

// Clock supplies the timestamps stamped onto job transitions. It must be
// safe for concurrent use. Tests inject a deterministic counter; the
// default is wall time in Unix nanoseconds.
type Clock func() int64

// Exec runs one job's work and produces its result.
type Exec[Req, Res any] func(Req) (Res, error)

// Job is one unit of queued work. ID, Seq, and Req are immutable after
// Submit; everything else is read through the accessor methods, which are
// safe for concurrent use.
type Job[Req, Res any] struct {
	// ID names the job ("job-<seq>"), unique within its queue.
	ID string
	// Seq is the 1-based submission position; FIFO execution order equals
	// ascending Seq.
	Seq int
	// Req is the submitted work item.
	Req Req

	mu       sync.Mutex
	state    State
	res      Res
	err      error
	enqueued int64
	started  int64
	finished int64
	done     chan struct{}
}

// Status is a point-in-time, non-generic snapshot of a job, shaped for
// wire responses and logs.
type Status struct {
	ID    string
	Seq   int
	State State
	// Err is the failure message ("" unless State == Failed).
	Err string
	// EnqueuedAt/StartedAt/FinishedAt are Clock stamps of the
	// transitions; zero when the transition has not happened.
	EnqueuedAt, StartedAt, FinishedAt int64
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job[Req, Res]) Done() <-chan struct{} { return j.done }

// State returns the job's current state.
func (j *Job[Req, Res]) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Peek atomically reads the state together with the result and error; the
// latter two are meaningful only when the state is terminal.
func (j *Job[Req, Res]) Peek() (State, Res, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.res, j.err
}

// Result returns the executor's result or error. Call after Done is
// closed; before that it returns zero values.
func (j *Job[Req, Res]) Result() (Res, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.res, j.err
}

// Snapshot returns the job's current Status.
func (j *Job[Req, Res]) Snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

func (j *Job[Req, Res]) snapshotLocked() Status {
	st := Status{
		ID: j.ID, Seq: j.Seq, State: j.state,
		EnqueuedAt: j.enqueued, StartedAt: j.started, FinishedAt: j.finished,
	}
	if j.err != nil {
		st.Err = j.err.Error()
	}
	return st
}

// Options configures a queue.
type Options[Req, Res any] struct {
	// Capacity bounds the pending (not yet running) backlog; Submit
	// returns ErrFull beyond it. 0 means DefaultCapacity.
	Capacity int
	// Workers is the size of the draining worker pool. 0 means
	// DefaultWorkers; ignored when Manual is set. The executor decides
	// its own serialization (the CI server's executor takes the engine
	// lock), so more than one worker is only useful for executors that
	// can actually run concurrently.
	Workers int
	// Manual disables background workers; jobs execute only when the
	// caller invokes RunNext. This is the deterministic test harness: the
	// test chooses exactly when each job runs and observes every
	// intermediate state.
	Manual bool
	// Retain bounds how many terminal jobs stay pollable before the
	// oldest are evicted. 0 means DefaultRetain.
	Retain int
	// Clock stamps job transitions; nil means wall time.
	Clock Clock
	// OnFinish, when set, is called exactly once per job immediately
	// after it reaches a terminal state (the server routes webhook
	// callbacks through it). It runs on the finishing goroutine without
	// queue locks held; it must not block for long.
	OnFinish func(*Job[Req, Res])
	// OnSubmit, when set, is called under the queue lock after a job is
	// built but before it is enqueued; an error aborts the submission and
	// is returned from Submit (no job exists then, and its sequence
	// number is not consumed). The durable server writes the job's
	// write-ahead record here, so a job the caller was promised is a job
	// the log can re-enqueue after a crash.
	OnSubmit func(*Job[Req, Res]) error
	// OnCancel, when set, is called under the queue lock after a job is
	// confirmed cancelable but before its state changes; an error aborts
	// the cancellation (the job stays queued) and is returned from
	// Cancel. The durable server writes the cancel record here — ordering
	// the record before the state change means a canceled job can never
	// resurrect after a crash.
	OnCancel func(*Job[Req, Res]) error
	// ExecJob, when set, replaces the executor and additionally receives
	// the job handle (the durable server needs the job ID inside the
	// execution transaction). Exactly one of the constructor's exec and
	// ExecJob must be non-nil.
	ExecJob func(*Job[Req, Res]) (Res, error)
	// Restore pre-populates the queue with jobs recovered from a durable
	// log: terminal entries become pollable finished jobs, non-terminal
	// entries are re-enqueued in Seq order and execute again when the
	// workers start. Seen by workers only after New returns.
	Restore []Restored[Req, Res]
	// DeferStart makes New build the queue without spawning its workers;
	// nothing — restored backlog included — executes until Start is
	// called. The durable server constructs its queue this way so that
	// recovery wiring (engine journal, notifier, webhook redelivery) is
	// complete before any restored job can run. Ignored with Manual.
	// A queue closed before Start abandons its backlog.
	DeferStart bool
	// StartSeq floors the job sequence counter, so IDs of jobs pruned
	// from a durable log are never reissued. Restored jobs may raise the
	// floor further.
	StartSeq int
	// Park classifies executor errors as retryable dependency outages:
	// when it returns true for a job's error, the job parks (State
	// Parked) instead of failing, and runs again when ReleaseParked is
	// called. Parking is suppressed on a closed queue — shutdown must
	// not strand jobs nobody will release — so the error fails the job
	// then. Nil means no job ever parks.
	Park func(error) bool
	// OnPark, when set, is called once each time a job parks, on the
	// executing goroutine without queue locks held, with the error that
	// parked it. The durable server journals the park and schedules the
	// automatic release here.
	OnPark func(*Job[Req, Res], error)
	// OnRelease, when set, is called once per job re-queued by
	// ReleaseParked, without queue locks held. The multi-tenant control
	// plane kicks the fair scheduler here so released work is drained
	// without a fresh submission.
	OnRelease func(*Job[Req, Res])
}

// Restored is one recovered job for Options.Restore.
type Restored[Req, Res any] struct {
	ID    string
	Seq   int
	State State
	Req   Req
	// Res and Err are the terminal outcome (State Done or Failed). An Err
	// equal to ErrCanceled.Error() is mapped back to ErrCanceled so the
	// server's status-code mapping survives restarts.
	Res Res
	Err string
}

// Defaults for Options zero values.
const (
	DefaultCapacity = 1024
	DefaultWorkers  = 1
	DefaultRetain   = 4096
)

// Queue is a bounded FIFO job queue. Safe for concurrent use.
type Queue[Req, Res any] struct {
	exec      Exec[Req, Res]
	execJob   func(*Job[Req, Res]) (Res, error)
	clock     Clock
	onFinish  func(*Job[Req, Res])
	onSubmit  func(*Job[Req, Res]) error
	onCancel  func(*Job[Req, Res]) error
	park      func(error) bool
	onPark    func(*Job[Req, Res], error)
	onRelease func(*Job[Req, Res])
	capacity  int
	retain    int
	manual    bool
	workers   int

	mu       sync.Mutex
	cond     *sync.Cond
	pending  []*Job[Req, Res]
	parked   []*Job[Req, Res] // in Seq order
	jobs     map[string]*Job[Req, Res]
	terminal []string // terminal job IDs in finish order, for eviction
	closed   bool
	started  bool
	nextSeq  int
	running  int
	stats    Stats

	wg sync.WaitGroup
}

// Stats counts the queue's lifetime traffic.
type Stats struct {
	// Submitted counts accepted jobs (rejected submits are not jobs).
	Submitted uint64 `json:"submitted"`
	// Completed counts jobs that reached Done.
	Completed uint64 `json:"completed"`
	// Failed counts jobs whose executor returned an error.
	Failed uint64 `json:"failed"`
	// Canceled counts jobs canceled while queued (a subset of neither
	// Completed nor Failed).
	Canceled uint64 `json:"canceled"`
	// ParkedTotal counts park transitions over the queue's lifetime (one
	// job parking twice counts twice).
	ParkedTotal uint64 `json:"parked_total"`
	// Pending, Running, and Parked are point-in-time gauges.
	Pending int `json:"pending"`
	Running int `json:"running"`
	Parked  int `json:"parked"`
}

// New builds a queue around an executor and starts its workers (unless
// opts.Manual).
func New[Req, Res any](exec Exec[Req, Res], opts Options[Req, Res]) (*Queue[Req, Res], error) {
	if (exec == nil) == (opts.ExecJob == nil) {
		return nil, fmt.Errorf("queue: exactly one of exec and Options.ExecJob required")
	}
	if opts.Capacity < 0 || opts.Workers < 0 || opts.Retain < 0 || opts.StartSeq < 0 {
		return nil, fmt.Errorf("queue: negative capacity, workers, retain, or start seq")
	}
	q := &Queue[Req, Res]{
		exec:      exec,
		execJob:   opts.ExecJob,
		clock:     opts.Clock,
		onFinish:  opts.OnFinish,
		onSubmit:  opts.OnSubmit,
		onCancel:  opts.OnCancel,
		park:      opts.Park,
		onPark:    opts.OnPark,
		onRelease: opts.OnRelease,
		capacity:  opts.Capacity,
		retain:    opts.Retain,
		manual:    opts.Manual,
		jobs:      make(map[string]*Job[Req, Res]),
		nextSeq:   opts.StartSeq,
	}
	if q.clock == nil {
		q.clock = func() int64 { return time.Now().UnixNano() }
	}
	if q.capacity == 0 {
		q.capacity = DefaultCapacity
	}
	if q.retain == 0 {
		q.retain = DefaultRetain
	}
	q.cond = sync.NewCond(&q.mu)
	if err := q.restore(opts.Restore); err != nil {
		return nil, err
	}
	if !opts.Manual {
		q.workers = opts.Workers
		if q.workers == 0 {
			q.workers = DefaultWorkers
		}
		if !opts.DeferStart {
			q.Start()
		}
	}
	return q, nil
}

// Start spawns the worker pool of a queue built with Options.DeferStart,
// releasing the (possibly restored) backlog for execution. Everything the
// caller wired up before Start happens-before the first job runs.
// Idempotent; a no-op in manual mode.
func (q *Queue[Req, Res]) Start() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.started || q.manual {
		return
	}
	q.started = true
	q.wg.Add(q.workers)
	for i := 0; i < q.workers; i++ {
		go q.worker()
	}
}

// restore seeds the queue from recovered jobs (see Options.Restore),
// sorted into Seq order. Called during construction, before any worker
// exists, so no locking is needed.
func (q *Queue[Req, Res]) restore(restored []Restored[Req, Res]) error {
	if len(restored) == 0 {
		return nil
	}
	rs := make([]Restored[Req, Res], len(restored))
	copy(rs, restored)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Seq < rs[j].Seq })
	for _, r := range rs {
		if r.Seq < 1 || r.ID == "" {
			return fmt.Errorf("queue: restored job %q has invalid seq %d", r.ID, r.Seq)
		}
		if _, dup := q.jobs[r.ID]; dup {
			return fmt.Errorf("queue: duplicate restored job %q", r.ID)
		}
		j := &Job[Req, Res]{
			ID:    r.ID,
			Seq:   r.Seq,
			Req:   r.Req,
			state: r.State,
			done:  make(chan struct{}),
		}
		switch {
		case r.State == Done:
			j.res = r.Res
			close(j.done)
			q.terminal = append(q.terminal, j.ID)
		case r.State == Failed:
			if r.Err == ErrCanceled.Error() {
				j.err = ErrCanceled
			} else {
				j.err = errors.New(r.Err)
			}
			close(j.done)
			q.terminal = append(q.terminal, j.ID)
		default:
			// Queued, Running, or Parked at crash time: re-enqueue.
			// Exactly-once execution holds because a job whose evaluation
			// record made it to the log is restored as terminal, never
			// re-run. A parked job in particular never reached its
			// evaluation record, so re-running it after restart is the
			// resume path, not a duplicate.
			j.state = Queued
			q.pending = append(q.pending, j)
		}
		q.jobs[j.ID] = j
		if r.Seq > q.nextSeq {
			q.nextSeq = r.Seq
		}
	}
	for len(q.terminal) > q.retain {
		delete(q.jobs, q.terminal[0])
		q.terminal = q.terminal[1:]
	}
	return nil
}

// Submit enqueues a work item and returns its job handle. It never
// blocks: a full backlog is ErrFull, a closed queue ErrClosed.
func (q *Queue[Req, Res]) Submit(req Req) (*Job[Req, Res], error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrClosed
	}
	if len(q.pending) >= q.capacity {
		return nil, ErrFull
	}
	j := &Job[Req, Res]{
		ID:       fmt.Sprintf("job-%d", q.nextSeq+1),
		Seq:      q.nextSeq + 1,
		Req:      req,
		state:    Queued,
		enqueued: q.clock(),
		done:     make(chan struct{}),
	}
	if q.onSubmit != nil {
		// The durability hook: if the job's record cannot be made durable,
		// the job must not exist (its sequence number stays unconsumed).
		if err := q.onSubmit(j); err != nil {
			return nil, err
		}
	}
	q.nextSeq = j.Seq
	q.pending = append(q.pending, j)
	q.jobs[j.ID] = j
	q.stats.Submitted++
	q.cond.Signal()
	return j, nil
}

// Job looks up a job by ID. Terminal jobs stay pollable until evicted by
// the retain bound.
func (q *Queue[Req, Res]) Job(id string) (*Job[Req, Res], bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	return j, ok
}

// Cancel fails a still-queued (or parked) job with ErrCanceled, removes
// it from the backlog, and returns it (so the caller can report its
// final status even if eviction races the lookup). Running or finished
// jobs are not cancelable (ErrNotCancelable); unknown IDs are
// ErrNotFound. A parked job is cancelable for the same reason a queued
// one is — no executor is touching it — and must be: a provider outage
// with no end in sight should not hold the developer's commit hostage.
func (q *Queue[Req, Res]) Cancel(id string) (*Job[Req, Res], error) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok {
		q.mu.Unlock()
		return nil, ErrNotFound
	}
	idx, inParked := -1, false
	for i, p := range q.pending {
		if p == j {
			idx = i
			break
		}
	}
	if idx < 0 {
		for i, p := range q.parked {
			if p == j {
				idx, inParked = i, true
				break
			}
		}
	}
	if idx < 0 {
		q.mu.Unlock()
		return nil, ErrNotCancelable
	}
	if q.onCancel != nil {
		// Durability hook, ordered before the state change: a cancel whose
		// record is not durable does not happen, and a recorded cancel can
		// never resurrect as a queued job after a crash.
		if err := q.onCancel(j); err != nil {
			q.mu.Unlock()
			return nil, err
		}
	}
	if inParked {
		q.parked = append(q.parked[:idx], q.parked[idx+1:]...)
	} else {
		q.pending = append(q.pending[:idx], q.pending[idx+1:]...)
	}
	j.mu.Lock()
	j.state = Failed
	j.err = ErrCanceled
	j.finished = q.clock()
	close(j.done)
	j.mu.Unlock()
	q.stats.Canceled++
	q.retireLocked(j)
	q.mu.Unlock()
	if q.onFinish != nil {
		q.onFinish(j)
	}
	return j, nil
}

// Stats snapshots the traffic counters and gauges.
func (q *Queue[Req, Res]) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.stats
	s.Pending = len(q.pending)
	s.Running = q.running
	s.Parked = len(q.parked)
	return s
}

// CloseIntake rejects new submissions (ErrClosed) without draining or
// waiting: the backlog and any running jobs are untouched. It is the
// first phase of a multi-queue shutdown — the control plane stops intake
// on every project queue before any of them drains, so a commit accepted
// on one queue can never observe another queue already torn down. A
// later Close (or an external scheduler draining the backlog) finishes
// the shutdown. Idempotent.
func (q *Queue[Req, Res]) CloseIntake() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Abandon fails every still-queued job with ErrCanceled, without running
// the OnCancel durability hook. It is the teardown path for a queue whose
// backing state is about to be deleted wholesale (project deletion):
// per-job cancel records in a log that is removed along with the queue
// would be wasted work, and a hook failure must not leave a job queued
// forever with its waiters blocked on Done. OnFinish still fires per job.
// Returns how many jobs were abandoned. Callers are responsible for
// making sure no scheduler will still drain this queue (pending jobs
// abandoned here are gone, not deferred).
func (q *Queue[Req, Res]) Abandon() int {
	q.mu.Lock()
	abandoned := make([]*Job[Req, Res], 0, len(q.pending)+len(q.parked))
	abandoned = append(abandoned, q.pending...)
	abandoned = append(abandoned, q.parked...)
	sort.Slice(abandoned, func(i, k int) bool { return abandoned[i].Seq < abandoned[k].Seq })
	q.pending, q.parked = nil, nil
	for _, j := range abandoned {
		j.mu.Lock()
		j.state = Failed
		j.err = ErrCanceled
		j.finished = q.clock()
		close(j.done)
		j.mu.Unlock()
		q.stats.Canceled++
		q.retireLocked(j)
	}
	q.mu.Unlock()
	if q.onFinish != nil {
		for _, j := range abandoned {
			q.onFinish(j)
		}
	}
	return len(abandoned)
}

// Pending reports the current backlog depth (queued, not running).
func (q *Queue[Req, Res]) Pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// Close shuts the queue down gracefully: new submits are rejected with
// ErrClosed, every already-accepted job still executes, and Close blocks
// until the backlog has drained and all workers have exited. In manual
// mode Close drains the backlog itself, so the postcondition is the same:
// every accepted job has reached a terminal state. Idempotent — except
// that a manual-mode queue whose intake was closed via CloseIntake is
// assumed to have been drained by its scheduler (Close skips the drain
// then, exactly as a second Close would).
func (q *Queue[Req, Res]) Close() {
	q.mu.Lock()
	alreadyClosed := q.closed
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
	// Only manual mode drains on the closing goroutine: with background
	// workers the workers themselves finish the backlog (the worker loop
	// exits only once closed AND empty), and a second drainer would race
	// them for jobs and break FIFO completion order during shutdown.
	if !alreadyClosed && q.manual {
		for q.RunNext() {
		}
	}
	q.wg.Wait()
	// The workers are gone (or the manual drain is done), so nothing can
	// park anymore; any job still parked would wait forever. Fail them so
	// every accepted job reaches a terminal state and synchronous waiters
	// unblock — the same ErrCanceled contract as Abandon.
	q.failParked()
}

// RunNext dequeues and executes the oldest pending job on the calling
// goroutine, returning false when the backlog is empty. It is the manual
// harness's drive wheel; with background workers it is also safe (a
// worker and a RunNext caller never pop the same job) but rarely useful.
func (q *Queue[Req, Res]) RunNext() bool {
	j := q.pop(false)
	if j == nil {
		return false
	}
	q.run(j)
	return true
}

// worker drains the backlog until the queue is closed and empty.
func (q *Queue[Req, Res]) worker() {
	defer q.wg.Done()
	for {
		j := q.pop(true)
		if j == nil {
			return
		}
		q.run(j)
	}
}

// pop removes the FIFO head and marks it running. With block set it waits
// for work, returning nil only when the queue is closed and drained;
// without, it returns nil immediately on an empty backlog.
func (q *Queue[Req, Res]) pop(block bool) *Job[Req, Res] {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.pending) == 0 {
		if q.closed || !block {
			return nil
		}
		q.cond.Wait()
	}
	j := q.pending[0]
	q.pending = q.pending[1:]
	q.running++
	j.mu.Lock()
	j.state = Running
	j.started = q.clock()
	j.mu.Unlock()
	return j
}

// run executes a popped job and retires it — or parks it, when the
// executor's error matches the Park policy and the queue is still open.
func (q *Queue[Req, Res]) run(j *Job[Req, Res]) {
	var (
		res Res
		err error
	)
	if q.execJob != nil {
		res, err = q.execJob(j)
	} else {
		res, err = q.exec(j.Req)
	}
	if err != nil && q.park != nil && q.park(err) {
		q.mu.Lock()
		if !q.closed {
			j.mu.Lock()
			j.state = Parked
			j.mu.Unlock()
			q.running--
			q.stats.ParkedTotal++
			q.insertParkedLocked(j)
			q.mu.Unlock()
			if q.onPark != nil {
				q.onPark(j, err)
			}
			return
		}
		// Shutting down: nobody will release a parked job, so the outage
		// fails it below and waiters unblock.
		q.mu.Unlock()
	}
	j.mu.Lock()
	if err != nil {
		j.state = Failed
		j.err = err
	} else {
		j.state = Done
		j.res = res
	}
	j.finished = q.clock()
	close(j.done)
	j.mu.Unlock()
	q.mu.Lock()
	q.running--
	if err != nil {
		q.stats.Failed++
	} else {
		q.stats.Completed++
	}
	q.retireLocked(j)
	q.mu.Unlock()
	if q.onFinish != nil {
		q.onFinish(j)
	}
}

// insertParkedLocked files a job into the parked list in Seq order, so a
// release re-queues jobs in their original submission order.
func (q *Queue[Req, Res]) insertParkedLocked(j *Job[Req, Res]) {
	at := sort.Search(len(q.parked), func(i int) bool { return q.parked[i].Seq > j.Seq })
	q.parked = append(q.parked, nil)
	copy(q.parked[at+1:], q.parked[at:])
	q.parked[at] = j
}

// ReleaseParked re-queues every parked job ahead of younger pending work
// (the merged backlog is in Seq order), waking the workers, and returns
// how many jobs it released. The server calls it when the label
// provider's breaker cooldown elapses — and on nothing else: a release
// that finds the provider still down just parks the jobs again. A closed
// queue releases nothing (Close fails parked jobs itself).
func (q *Queue[Req, Res]) ReleaseParked() int {
	q.mu.Lock()
	if q.closed || len(q.parked) == 0 {
		q.mu.Unlock()
		return 0
	}
	released := q.parked
	q.parked = nil
	for _, j := range released {
		j.mu.Lock()
		j.state = Queued
		j.mu.Unlock()
	}
	merged := make([]*Job[Req, Res], 0, len(released)+len(q.pending))
	merged = append(merged, released...)
	merged = append(merged, q.pending...)
	sort.Slice(merged, func(i, k int) bool { return merged[i].Seq < merged[k].Seq })
	q.pending = merged
	q.cond.Broadcast()
	onRelease := q.onRelease
	q.mu.Unlock()
	if onRelease != nil {
		for _, j := range released {
			onRelease(j)
		}
	}
	return len(released)
}

// ParkedCount reports how many jobs are currently parked.
func (q *Queue[Req, Res]) ParkedCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.parked)
}

// failParked fails every parked job with ErrCanceled; the shutdown
// counterpart of ReleaseParked. Runs after the workers have exited (or,
// in manual mode, after the drain), so no new park can race it.
func (q *Queue[Req, Res]) failParked() {
	q.mu.Lock()
	stranded := q.parked
	q.parked = nil
	for _, j := range stranded {
		j.mu.Lock()
		j.state = Failed
		j.err = ErrCanceled
		j.finished = q.clock()
		close(j.done)
		j.mu.Unlock()
		q.stats.Canceled++
		q.retireLocked(j)
	}
	q.mu.Unlock()
	if q.onFinish != nil {
		for _, j := range stranded {
			q.onFinish(j)
		}
	}
}

// retireLocked records a terminal job and evicts the oldest terminal jobs
// beyond the retain bound, so a long-lived server's job map stays bounded
// while recent jobs remain pollable.
func (q *Queue[Req, Res]) retireLocked(j *Job[Req, Res]) {
	q.terminal = append(q.terminal, j.ID)
	for len(q.terminal) > q.retain {
		delete(q.jobs, q.terminal[0])
		q.terminal = q.terminal[1:]
	}
}
