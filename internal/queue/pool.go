package queue

import (
	"fmt"
	"sync"
)

// Source is one schedulable job source — in the CI server, a project's
// commit queue. RunNext executes the source's oldest pending job on the
// calling goroutine and reports whether a job actually ran (false when
// the backlog turned out to be empty, e.g. the job was canceled between
// scheduling and execution).
type Source interface {
	RunNext() bool
}

// PoolOptions configures a Pool.
type PoolOptions struct {
	// Workers is the size of the shared worker pool draining all
	// registered sources. 0 means DefaultPoolWorkers; ignored with Manual.
	Workers int
	// Manual disables background workers; jobs execute only when the
	// caller invokes RunOne. This is the deterministic fairness-test
	// harness: the test chooses exactly when each scheduling decision
	// happens and can observe every pick.
	Manual bool
}

// DefaultPoolWorkers is the worker count of a zero-valued PoolOptions.
// Each source serializes its own execution anyway (the CI server caps a
// project at one in-flight job, and commits serialize on the engine
// lock), so workers bound how many *tenants* evaluate concurrently, not
// how many jobs one tenant can run.
const DefaultPoolWorkers = 4

// Pool is a shared worker pool multiplexed across many Sources with
// smooth weighted round-robin scheduling: each eligible source (pending
// work, in-flight below its cap) accumulates credit proportional to its
// weight and the highest credit is picked, so over any window the picks
// of backlogged sources converge to their weight shares. One source
// flooding its queue therefore cannot starve the others — it only ever
// gets its weighted share of the workers.
//
// The pool does not watch queues; producers call Kick after every
// accepted submission (and Unkick after a cancellation) so the pending
// counts the scheduler sees are exactly the accepted-job counts.
type Pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	sources map[string]*poolSource
	order   []string // registration order: the WRR tie-break
	pending int      // total pending across sources
	closed  bool
	manual  bool
	workers int
	wg      sync.WaitGroup
}

type poolSource struct {
	id          string
	src         Source
	weight      int
	maxInflight int
	pending     int
	inflight    int
	credit      int
	picks       uint64
	removed     bool
}

// PoolStats is a point-in-time snapshot of the scheduler.
type PoolStats struct {
	Workers int               `json:"workers"`
	Sources []PoolSourceStats `json:"sources"`
}

// PoolSourceStats reports one source's scheduling state; Picks counts
// how many times the scheduler selected it since registration.
type PoolSourceStats struct {
	ID          string `json:"id"`
	Weight      int    `json:"weight"`
	MaxInflight int    `json:"max_inflight"`
	Pending     int    `json:"pending"`
	Inflight    int    `json:"inflight"`
	Picks       uint64 `json:"picks"`
}

// NewPool builds a pool and starts its workers (unless opts.Manual).
func NewPool(opts PoolOptions) *Pool {
	p := &Pool{
		sources: make(map[string]*poolSource),
		manual:  opts.Manual,
		workers: opts.Workers,
	}
	p.cond = sync.NewCond(&p.mu)
	if p.manual {
		p.workers = 0
		return p
	}
	if p.workers <= 0 {
		p.workers = DefaultPoolWorkers
	}
	p.wg.Add(p.workers)
	for i := 0; i < p.workers; i++ {
		go p.worker()
	}
	return p
}

// Register adds a source under id with the given scheduling weight and
// in-flight cap (values below 1 mean 1). Duplicate IDs are an error; a
// closed pool still accepts registrations (the source just never runs).
func (p *Pool) Register(id string, src Source, weight, maxInflight int) error {
	if src == nil {
		return fmt.Errorf("queue: pool source %q is nil", id)
	}
	if weight < 1 {
		weight = 1
	}
	if maxInflight < 1 {
		maxInflight = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.sources[id]; dup {
		return fmt.Errorf("queue: pool source %q already registered", id)
	}
	p.sources[id] = &poolSource{id: id, src: src, weight: weight, maxInflight: maxInflight}
	p.order = append(p.order, id)
	return nil
}

// Unregister removes a source and blocks until its in-flight jobs have
// finished, so the caller may tear the source down (close its WAL, free
// its engine) the moment Unregister returns. Pending work that was never
// scheduled is forgotten by the pool — the source's own queue still
// holds it, and draining or abandoning it is the caller's decision.
// Unknown IDs are a no-op.
func (p *Pool) Unregister(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.sources[id]
	if !ok {
		return
	}
	delete(p.sources, id)
	for i, oid := range p.order {
		if oid == id {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	p.pending -= s.pending
	s.pending = 0
	s.removed = true
	for s.inflight > 0 {
		p.cond.Wait()
	}
}

// Kick tells the scheduler one job was accepted into id's queue.
// Unknown IDs are ignored (the source raced an unregister).
func (p *Pool) Kick(id string) {
	p.mu.Lock()
	if s, ok := p.sources[id]; ok {
		s.pending++
		p.pending++
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// Unkick tells the scheduler one of id's pending jobs was removed
// without running (canceled). Best-effort: an unmatched Unkick is
// clamped, and a stale pending count only costs the scheduler a
// no-op RunNext.
func (p *Pool) Unkick(id string) {
	p.mu.Lock()
	if s, ok := p.sources[id]; ok && s.pending > 0 {
		s.pending--
		p.pending--
	}
	p.mu.Unlock()
}

// Stats snapshots the scheduler state, sources in registration order.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PoolStats{Workers: p.workers}
	for _, id := range p.order {
		s := p.sources[id]
		st.Sources = append(st.Sources, PoolSourceStats{
			ID: s.id, Weight: s.weight, MaxInflight: s.maxInflight,
			Pending: s.pending, Inflight: s.inflight, Picks: s.picks,
		})
	}
	return st
}

// RunOne makes one scheduling decision and executes the picked job on
// the calling goroutine, returning false when nothing is schedulable.
// It is the manual harness's drive wheel, the pool counterpart of a
// queue's RunNext.
func (p *Pool) RunOne() bool {
	s := p.pick(false)
	if s == nil {
		return false
	}
	p.execute(s)
	return true
}

// Close stops the pool: no new scheduling decisions are made once the
// remaining pending work has drained, and Close blocks until every
// worker has exited. Callers stop intake on all sources first (the
// queues' CloseIntake), so "pending" is a closed set by the time Close
// drains it. In manual mode Close drains the backlog itself. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	alreadyClosed := p.closed
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	if !alreadyClosed && p.manual {
		for p.RunOne() {
		}
	}
	p.wg.Wait()
}

// worker drains scheduling decisions until the pool is closed and all
// pending work is done.
func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		s := p.pick(true)
		if s == nil {
			return
		}
		p.execute(s)
	}
}

// pick makes one scheduling decision: the eligible source with the
// highest smooth-WRR credit. With block set it waits for schedulable
// work, returning nil only once the pool is closed and drained; without,
// it returns nil immediately when nothing is schedulable.
func (p *Pool) pick(block bool) *poolSource {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if s := p.chooseLocked(); s != nil {
			s.pending--
			p.pending--
			s.inflight++
			s.picks++
			return s
		}
		if p.closed && p.pending == 0 {
			return nil
		}
		if !block {
			return nil
		}
		p.cond.Wait()
	}
}

// chooseLocked is smooth weighted round-robin over the eligible set:
// every eligible source gains credit equal to its weight, the richest
// source is picked (registration order breaks ties) and pays the round's
// total weight back. For sources that stay backlogged this interleaves
// picks in exact weight proportion — a 1:1:4 weighting yields a
// ...ACBCCC... cadence rather than bursts — which is what bounds every
// tenant's queue-wait at its weight share.
func (p *Pool) chooseLocked() *poolSource {
	total := 0
	var best *poolSource
	for _, id := range p.order {
		s := p.sources[id]
		if s.pending == 0 || s.inflight >= s.maxInflight {
			continue
		}
		total += s.weight
		s.credit += s.weight
		if best == nil || s.credit > best.credit {
			best = s
		}
	}
	if best != nil {
		best.credit -= total
	}
	return best
}

// execute runs one picked job and releases the source's in-flight slot.
func (p *Pool) execute(s *poolSource) {
	s.src.RunNext()
	p.mu.Lock()
	s.inflight--
	p.cond.Broadcast()
	p.mu.Unlock()
}
