package queue

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// poolQueue builds a workerless queue the pool drives, with an
// injected clock shared across queues so queue waits are comparable.
func poolQueue(t *testing.T, clock Clock) *Queue[int, int] {
	t.Helper()
	q, err := New(func(x int) (int, error) { return x, nil }, Options[int, int]{
		Manual:   true,
		Capacity: 20000,
		Retain:   20000,
		Clock:    clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// submitN submits n jobs and kicks the pool for each, returning the job
// handles in submission order.
func submitN(t *testing.T, p *Pool, q *Queue[int, int], id string, n int) []*Job[int, int] {
	t.Helper()
	jobs := make([]*Job[int, int], 0, n)
	for i := 0; i < n; i++ {
		j, err := q.Submit(i)
		if err != nil {
			t.Fatalf("%s submit %d: %v", id, i, err)
		}
		p.Kick(id)
		jobs = append(jobs, j)
	}
	return jobs
}

// TestPoolWeightedRoundRobinShares pins the smooth-WRR cadence: with
// weights 1:1:4 and every source backlogged, any window of 6 consecutive
// picks serves each source exactly its weight.
func TestPoolWeightedRoundRobinShares(t *testing.T) {
	var now int64
	clock := func() int64 { return now }
	p := NewPool(PoolOptions{Manual: true})
	qa, qb, qc := poolQueue(t, clock), poolQueue(t, clock), poolQueue(t, clock)
	if err := p.Register("a", qa, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("b", qb, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("c", qc, 4, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("a", qa, 1, 1); err == nil {
		t.Fatal("duplicate registration should fail")
	}
	submitN(t, p, qa, "a", 60)
	submitN(t, p, qb, "b", 60)
	submitN(t, p, qc, "c", 60)
	for i := 0; i < 60; i++ {
		if !p.RunOne() {
			t.Fatalf("RunOne ran dry at pick %d", i)
		}
	}
	st := p.Stats()
	got := map[string]uint64{}
	for _, s := range st.Sources {
		got[s.ID] = s.Picks
	}
	// 60 picks = 10 full WRR rounds of total weight 6.
	if got["a"] != 10 || got["b"] != 10 || got["c"] != 40 {
		t.Fatalf("picks a=%d b=%d c=%d, want 10/10/40", got["a"], got["b"], got["c"])
	}
}

// TestPoolFairnessUnderFlood is the fairness property the multi-tenant
// scheduler exists for: a tenant flooding 10k jobs cannot push another
// tenant's p50 queue wait beyond its weight share. Weights are 1:1:4;
// the logical clock ticks once per executed job, so a job's wait is the
// number of scheduling decisions made before its turn.
func TestPoolFairnessUnderFlood(t *testing.T) {
	var now int64
	clock := func() int64 { return now }
	p := NewPool(PoolOptions{Manual: true})
	flood, qb, qc := poolQueue(t, clock), poolQueue(t, clock), poolQueue(t, clock)
	if err := p.Register("flood", flood, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("b", qb, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("c", qc, 4, 1); err != nil {
		t.Fatal(err)
	}
	const floodN, smallN = 10000, 100
	// The noisy tenant floods first, so FIFO-across-tenants would make b
	// and c wait out all 10k flood jobs.
	floodJobs := submitN(t, p, flood, "flood", floodN)
	bJobs := submitN(t, p, qb, "b", smallN)
	cJobs := submitN(t, p, qc, "c", smallN)
	total := floodN + 2*smallN
	for i := 0; i < total; i++ {
		now++
		if !p.RunOne() {
			t.Fatalf("RunOne ran dry at pick %d", i)
		}
	}
	p50 := func(jobs []*Job[int, int]) int64 {
		waits := make([]int64, len(jobs))
		for i, j := range jobs {
			st := j.Snapshot()
			if st.State != Done {
				t.Fatalf("job %s not done: %v", j.ID, st.State)
			}
			waits[i] = st.StartedAt - st.EnqueuedAt
		}
		// Waits are monotone in submission order within one queue (FIFO),
		// so the median is the middle element.
		return waits[len(waits)/2]
	}
	// Weight shares: while all three tenants are backlogged, each WRR
	// round of 6 picks serves b once and c four times. b's median (50th)
	// job therefore starts by ~50 rounds = 300 ticks, c's by ~13 rounds.
	// Allow one round of slack; the point is the bound scales with the
	// weight share, not with the 10k-job flood.
	if got, bound := p50(bJobs), int64(6*(smallN/2)+6); got > bound {
		t.Errorf("tenant b p50 wait = %d ticks, weight-share bound %d", got, bound)
	}
	if got, bound := p50(cJobs), int64(6*(smallN/2)/4+6); got > bound {
		t.Errorf("tenant c p50 wait = %d ticks, weight-share bound %d", got, bound)
	}
	// The flood is not starved either: once b and c drain, every pick is
	// the flood's, and all 10k jobs complete.
	if st := floodJobs[floodN-1].Snapshot(); st.State != Done {
		t.Errorf("flood tail job state = %v, want Done", st.State)
	}
	st := p.Stats()
	for _, s := range st.Sources {
		if s.Pending != 0 || s.Inflight != 0 {
			t.Errorf("source %s left pending=%d inflight=%d", s.ID, s.Pending, s.Inflight)
		}
	}
}

// TestPoolUnkickAfterCancel keeps the scheduler's pending counts exact
// across cancellations: a canceled job's kick is taken back, so the
// scheduler doesn't spin a no-op pick.
func TestPoolUnkickAfterCancel(t *testing.T) {
	p := NewPool(PoolOptions{Manual: true})
	q := poolQueue(t, nil)
	if err := p.Register("x", q, 1, 1); err != nil {
		t.Fatal(err)
	}
	jobs := submitN(t, p, q, "x", 2)
	if _, err := q.Cancel(jobs[0].ID); err != nil {
		t.Fatal(err)
	}
	p.Unkick("x")
	if !p.RunOne() {
		t.Fatal("one job should remain schedulable")
	}
	if p.RunOne() {
		t.Fatal("pool should be drained")
	}
	if st := jobs[1].Snapshot(); st.State != Done {
		t.Fatalf("surviving job state = %v", st.State)
	}
}

// TestPoolProductionDrainAndClose exercises the background workers: a
// burst across two sources is fully drained by Close, and in-flight caps
// are never exceeded.
func TestPoolProductionDrainAndClose(t *testing.T) {
	var inflight, maxSeen atomic.Int64
	exec := func(x int) (int, error) {
		cur := inflight.Add(1)
		for {
			prev := maxSeen.Load()
			if cur <= prev || maxSeen.CompareAndSwap(prev, cur) {
				break
			}
		}
		time.Sleep(50 * time.Microsecond)
		inflight.Add(-1)
		return x, nil
	}
	newQ := func() *Queue[int, int] {
		q, err := New(exec, Options[int, int]{Manual: true, Capacity: 1000, Retain: 1000})
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	p := NewPool(PoolOptions{Workers: 4})
	qa, qb := newQ(), newQ()
	if err := p.Register("a", qa, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Register("b", qb, 2, 1); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var jobsMu sync.Mutex
	var jobs []*Job[int, int]
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q, id := qa, "a"
			if g%2 == 1 {
				q, id = qb, "b"
			}
			for i := 0; i < 50; i++ {
				j, err := q.Submit(i)
				if err != nil {
					t.Error(err)
					return
				}
				p.Kick(id)
				jobsMu.Lock()
				jobs = append(jobs, j)
				jobsMu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	qa.CloseIntake()
	qb.CloseIntake()
	p.Close()
	for _, j := range jobs {
		if st := j.Snapshot(); st.State != Done {
			t.Fatalf("job %s state = %v after Close", j.ID, st.State)
		}
	}
	// Two sources with cap 1 each: never more than 2 jobs in flight.
	if maxSeen.Load() > 2 {
		t.Errorf("max in-flight = %d, caps allow 2", maxSeen.Load())
	}
	p.Close() // idempotent
}

// TestPoolUnregisterWaitsForInflight: Unregister returns only after the
// source's running job finished, so tearing the source down is safe.
func TestPoolUnregisterWaitsForInflight(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	var finished atomic.Bool
	q, err := New(func(x int) (int, error) {
		started <- struct{}{}
		<-block
		finished.Store(true)
		return x, nil
	}, Options[int, int]{Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(PoolOptions{Workers: 1})
	if err := p.Register("x", q, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(1); err != nil {
		t.Fatal(err)
	}
	p.Kick("x")
	<-started
	done := make(chan struct{})
	go func() {
		p.Unregister("x")
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Unregister returned while the job was still running")
	case <-time.After(10 * time.Millisecond):
	}
	close(block)
	<-done
	if !finished.Load() {
		t.Fatal("Unregister returned before the job finished")
	}
	p.Unregister("x") // unknown ID: no-op
	q.CloseIntake()
	p.Close()
}
