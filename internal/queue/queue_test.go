package queue

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a deterministic Clock: each call returns the next integer.
func fakeClock() Clock {
	var t int64
	return func() int64 { return atomic.AddInt64(&t, 1) }
}

// manualQueue builds a queue with no background workers, so the test
// controls exactly when each job runs.
func manualQueue(t *testing.T, exec Exec[int, int], opts Options[int, int]) *Queue[int, int] {
	t.Helper()
	opts.Manual = true
	if opts.Clock == nil {
		opts.Clock = fakeClock()
	}
	q, err := New(exec, opts)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestJobLifecycleDeterministic(t *testing.T) {
	q := manualQueue(t, func(x int) (int, error) { return x * 10, nil }, Options[int, int]{})
	j, err := q.Submit(7)
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "job-1" || j.Seq != 1 {
		t.Errorf("job identity = %q seq %d", j.ID, j.Seq)
	}
	if got := j.State(); got != Queued {
		t.Errorf("state after submit = %v", got)
	}
	st := j.Snapshot()
	if st.EnqueuedAt != 1 || st.StartedAt != 0 || st.FinishedAt != 0 {
		t.Errorf("queued snapshot stamps = %+v", st)
	}
	if !q.RunNext() {
		t.Fatal("RunNext found no job")
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("done channel not closed after RunNext")
	}
	state, res, jerr := j.Peek()
	if state != Done || res != 70 || jerr != nil {
		t.Errorf("peek = %v %d %v", state, res, jerr)
	}
	if res, jerr := j.Result(); res != 70 || jerr != nil {
		t.Errorf("result = %d %v", res, jerr)
	}
	st = j.Snapshot()
	// Fake clock ticks once per transition: enqueue=1, start=2, finish=3.
	if st.EnqueuedAt != 1 || st.StartedAt != 2 || st.FinishedAt != 3 {
		t.Errorf("done snapshot stamps = %+v", st)
	}
	if q.RunNext() {
		t.Error("RunNext on an empty backlog should report false")
	}
}

func TestFailedJobCarriesError(t *testing.T) {
	boom := errors.New("boom")
	q := manualQueue(t, func(int) (int, error) { return 0, boom }, Options[int, int]{})
	j, _ := q.Submit(1)
	q.RunNext()
	state, _, err := j.Peek()
	if state != Failed || !errors.Is(err, boom) {
		t.Errorf("failed job peek = %v %v", state, err)
	}
	if st := j.Snapshot(); st.Err != "boom" {
		t.Errorf("snapshot err = %q", st.Err)
	}
}

func TestFIFOOrder(t *testing.T) {
	var ran []int
	q := manualQueue(t, func(x int) (int, error) { ran = append(ran, x); return x, nil }, Options[int, int]{})
	for i := 0; i < 5; i++ {
		if _, err := q.Submit(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := q.Pending(); got != 5 {
		t.Fatalf("Pending() = %d before drain, want 5", got)
	}
	for q.RunNext() {
	}
	if got := q.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", got)
	}
	for i, x := range ran {
		if x != i {
			t.Fatalf("execution order = %v, want FIFO", ran)
		}
	}
	if len(ran) != 5 {
		t.Fatalf("ran %d jobs, want 5", len(ran))
	}
}

func TestCapacityBound(t *testing.T) {
	q := manualQueue(t, func(x int) (int, error) { return x, nil }, Options[int, int]{Capacity: 2})
	if _, err := q.Submit(1); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(2); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(3); !errors.Is(err, ErrFull) {
		t.Errorf("over-capacity submit = %v, want ErrFull", err)
	}
	// Draining one slot reopens the backlog.
	q.RunNext()
	if _, err := q.Submit(3); err != nil {
		t.Errorf("post-drain submit = %v", err)
	}
}

func TestCancelSemantics(t *testing.T) {
	q := manualQueue(t, func(x int) (int, error) { return x, nil }, Options[int, int]{})
	j1, _ := q.Submit(1)
	j2, _ := q.Submit(2)
	canceled, err := q.Cancel(j2.ID)
	if err != nil {
		t.Fatalf("cancel queued job: %v", err)
	}
	if canceled != j2 {
		t.Error("Cancel should return the canceled job")
	}
	if state, _, err := j2.Peek(); state != Failed || !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled job = %v %v", state, err)
	}
	select {
	case <-j2.Done():
	default:
		t.Error("canceled job's done channel not closed")
	}
	// Double cancel and cancel-after-terminal are not cancelable.
	if _, err := q.Cancel(j2.ID); !errors.Is(err, ErrNotCancelable) {
		t.Errorf("double cancel = %v", err)
	}
	if _, err := q.Cancel("job-999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown cancel = %v", err)
	}
	// The canceled job must not execute; the surviving one must.
	if !q.RunNext() || q.RunNext() {
		t.Error("exactly one job should remain runnable")
	}
	if state, res, _ := j1.Peek(); state != Done || res != 1 {
		t.Errorf("surviving job = %v %d", state, res)
	}
	s := q.Stats()
	if s.Submitted != 2 || s.Completed != 1 || s.Canceled != 1 || s.Failed != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSubmitAfterCloseRejected(t *testing.T) {
	q := manualQueue(t, func(x int) (int, error) { return x, nil }, Options[int, int]{})
	j, _ := q.Submit(1)
	q.Close()
	if _, err := q.Submit(2); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close = %v, want ErrClosed", err)
	}
	// Close drains: the accepted job reached a terminal state.
	if state, res, _ := j.Peek(); state != Done || res != 1 {
		t.Errorf("accepted job after close = %v %d", state, res)
	}
	q.Close() // idempotent
}

func TestOnFinishExactlyOnce(t *testing.T) {
	finishes := map[string]int{}
	var mu sync.Mutex
	var q *Queue[int, int]
	var err error
	q, err = New(func(x int) (int, error) {
		if x%2 == 1 {
			return 0, errors.New("odd")
		}
		return x, nil
	}, Options[int, int]{
		Manual: true,
		Clock:  fakeClock(),
		OnFinish: func(j *Job[int, int]) {
			mu.Lock()
			defer mu.Unlock()
			if !j.State().Terminal() {
				t.Errorf("OnFinish saw non-terminal job %s in %v", j.ID, j.State())
			}
			finishes[j.ID]++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 6; i++ {
		j, err := q.Submit(i)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	q.Cancel(ids[3])
	q.Close()
	for _, id := range ids {
		if finishes[id] != 1 {
			t.Errorf("job %s finished %d times, want exactly once", id, finishes[id])
		}
	}
}

func TestWorkerPoolDrainsBurst(t *testing.T) {
	var executed atomic.Int64
	q, err := New(func(x int) (int, error) {
		executed.Add(1)
		return x * 2, nil
	}, Options[int, int]{Workers: 4, Capacity: 256})
	if err != nil {
		t.Fatal(err)
	}
	var jobs []*Job[int, int]
	for i := 0; i < 100; i++ {
		j, err := q.Submit(i)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		select {
		case <-j.Done():
		case <-time.After(5 * time.Second):
			t.Fatalf("job %s never finished", j.ID)
		}
	}
	q.Close()
	if executed.Load() != 100 {
		t.Errorf("executed %d jobs, want 100", executed.Load())
	}
	for i, j := range jobs {
		if state, res, _ := j.Peek(); state != Done || res != 2*i {
			t.Errorf("job %d = %v %d", i, state, res)
		}
	}
	s := q.Stats()
	if s.Completed != 100 || s.Pending != 0 || s.Running != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSingleWorkerCompletesInFIFOOrder(t *testing.T) {
	var mu sync.Mutex
	var order []int
	q, err := New(func(x int) (int, error) {
		mu.Lock()
		order = append(order, x)
		mu.Unlock()
		return x, nil
	}, Options[int, int]{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var last *Job[int, int]
	for i := 0; i < 50; i++ {
		j, err := q.Submit(i)
		if err != nil {
			t.Fatal(err)
		}
		last = j
	}
	<-last.Done()
	q.Close()
	mu.Lock()
	defer mu.Unlock()
	for i, x := range order {
		if x != i {
			t.Fatalf("single-worker completion order = %v, want FIFO", order)
		}
	}
}

// TestCloseDrainFIFOWithWorker is the shutdown-ordering regression test:
// Close must leave the drain to the worker (not race it with a second
// drainer on the closing goroutine), so completion order stays FIFO even
// for jobs that were still pending when Close was called.
func TestCloseDrainFIFOWithWorker(t *testing.T) {
	var mu sync.Mutex
	var order []int
	q, err := New(func(x int) (int, error) {
		mu.Lock()
		order = append(order, x)
		mu.Unlock()
		return x, nil
	}, Options[int, int]{Workers: 1, Capacity: 256})
	if err != nil {
		t.Fatal(err)
	}
	var jobs []*Job[int, int]
	for i := 0; i < 50; i++ {
		j, err := q.Submit(i)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	q.Close() // most jobs are still pending here
	for _, j := range jobs {
		if state, _, _ := j.Peek(); state != Done {
			t.Fatalf("job %s not done after Close: %v", j.ID, state)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for i, x := range order {
		if x != i {
			t.Fatalf("post-Close completion order = %v, want FIFO", order)
		}
	}
}

func TestTerminalJobEviction(t *testing.T) {
	q := manualQueue(t, func(x int) (int, error) { return x, nil }, Options[int, int]{Retain: 3})
	var ids []string
	for i := 0; i < 8; i++ {
		j, err := q.Submit(i)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
		q.RunNext()
	}
	for i, id := range ids {
		_, ok := q.Job(id)
		if wantRetained := i >= 5; ok != wantRetained {
			t.Errorf("job %s retained = %v, want %v", id, ok, wantRetained)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New[int, int](nil, Options[int, int]{}); err == nil {
		t.Error("nil executor should fail")
	}
	if _, err := New(func(int) (int, error) { return 0, nil }, Options[int, int]{Capacity: -1}); err == nil {
		t.Error("negative capacity should fail")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Queued: "queued", Running: "running", Done: "done", Failed: "failed"} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if !Done.Terminal() || !Failed.Terminal() || Queued.Terminal() || Running.Terminal() {
		t.Error("Terminal() classification wrong")
	}
	if fmt.Sprint(State(9)) != "State(9)" {
		t.Errorf("unknown state string = %q", fmt.Sprint(State(9)))
	}
}

// TestAbandonFailsBacklogWithoutHooks: Abandon fails every queued job
// with ErrCanceled — waking their waiters and firing OnFinish — without
// invoking the OnCancel durability hook, and leaves terminal jobs alone.
func TestAbandonFailsBacklogWithoutHooks(t *testing.T) {
	var finished, canceledHook int
	q := manualQueue(t, func(x int) (int, error) { return x, nil }, Options[int, int]{
		OnFinish: func(*Job[int, int]) { finished++ },
		OnCancel: func(*Job[int, int]) error { canceledHook++; return nil },
	})
	done, err := q.Submit(1)
	if err != nil {
		t.Fatal(err)
	}
	if !q.RunNext() {
		t.Fatal("RunNext found no job")
	}
	finished = 0
	var pending []*Job[int, int]
	for i := 0; i < 3; i++ {
		j, err := q.Submit(10 + i)
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, j)
	}
	if got := q.Abandon(); got != 3 {
		t.Fatalf("Abandon = %d, want 3", got)
	}
	for _, j := range pending {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %s still not terminal after Abandon", j.ID)
		}
		if _, err := j.Result(); !errors.Is(err, ErrCanceled) {
			t.Errorf("job %s error = %v, want ErrCanceled", j.ID, err)
		}
	}
	if canceledHook != 0 {
		t.Errorf("OnCancel hook ran %d times during Abandon", canceledHook)
	}
	if finished != 3 {
		t.Errorf("OnFinish ran %d times, want 3", finished)
	}
	if st, _, _ := done.Peek(); st != Done {
		t.Errorf("already-finished job state = %v after Abandon", st)
	}
	st := q.Stats()
	if st.Canceled != 3 || st.Pending != 0 {
		t.Errorf("stats after Abandon = %+v", st)
	}
	if q.Abandon() != 0 {
		t.Error("second Abandon found jobs")
	}
	q.Close()
}
