package queue

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// refModel is the single-goroutine reference semantics of the queue:
// a FIFO list of pending IDs plus bookkeeping of what was accepted,
// canceled, and executed. The property test replays a random op sequence
// against the real (manual-mode) queue and this model in lockstep and
// requires them to agree on every observable.
type refModel struct {
	cap      int
	closed   bool
	pending  []string
	accepted []string
	canceled map[string]bool
	executed []string
	nextSeq  int
}

func (m *refModel) submit() (string, bool) {
	if m.closed || len(m.pending) >= m.cap {
		return "", false
	}
	m.nextSeq++
	id := "job-" + itoa(m.nextSeq)
	m.pending = append(m.pending, id)
	m.accepted = append(m.accepted, id)
	return id, true
}

func (m *refModel) cancel(id string) bool {
	for i, p := range m.pending {
		if p == id {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			m.canceled[id] = true
			return true
		}
	}
	return false
}

func (m *refModel) runNext() (string, bool) {
	if len(m.pending) == 0 {
		return "", false
	}
	id := m.pending[0]
	m.pending = m.pending[1:]
	m.executed = append(m.executed, id)
	return id, true
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestQueueMatchesReferenceModel drives random bursts of submits,
// cancels, runs, and a shutdown against the deterministic manual-mode
// queue and the reference model: FIFO completion order, no job lost, no
// job double-executed, and byte-for-byte agreement on accept/reject
// decisions.
func TestQueueMatchesReferenceModel(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		capacity := 1 + rng.Intn(8)

		execCount := map[int]int{} // request payload -> times executed
		var execOrder []int
		q, err := New(func(x int) (int, error) {
			execCount[x]++
			execOrder = append(execOrder, x)
			return x, nil
		}, Options[int, int]{Manual: true, Capacity: capacity, Clock: fakeClock()})
		if err != nil {
			t.Fatal(err)
		}
		model := &refModel{cap: capacity, canceled: map[string]bool{}}
		jobs := map[string]*Job[int, int]{}
		payload := 0

		ops := 150 + rng.Intn(150)
		for op := 0; op < ops; op++ {
			switch k := rng.Intn(10); {
			case k < 5: // submit
				wantID, wantOK := model.submit()
				j, err := q.Submit(payload)
				if (err == nil) != wantOK {
					t.Fatalf("trial %d op %d: submit accepted=%v, model says %v (closed=%v pending=%d cap=%d)",
						trial, op, err == nil, wantOK, model.closed, len(model.pending), capacity)
				}
				if err == nil {
					if j.ID != wantID {
						t.Fatalf("trial %d: job ID %q, model expects %q", trial, j.ID, wantID)
					}
					jobs[j.ID] = j
					payload++
				} else if model.closed && !errors.Is(err, ErrClosed) {
					t.Fatalf("trial %d: closed submit error = %v", trial, err)
				} else if !model.closed && !errors.Is(err, ErrFull) {
					t.Fatalf("trial %d: full submit error = %v", trial, err)
				}
			case k < 7: // cancel a random known job (any state)
				if len(model.accepted) == 0 {
					continue
				}
				id := model.accepted[rng.Intn(len(model.accepted))]
				wantOK := model.cancel(id)
				_, err := q.Cancel(id)
				if (err == nil) != wantOK {
					t.Fatalf("trial %d op %d: cancel(%s) err=%v, model cancelable=%v", trial, op, id, err, wantOK)
				}
			case k < 9: // run the FIFO head
				wantID, wantOK := model.runNext()
				ran := q.RunNext()
				if ran != wantOK {
					t.Fatalf("trial %d op %d: RunNext=%v, model says %v", trial, op, ran, wantOK)
				}
				if ran {
					if state, _, _ := jobs[wantID].Peek(); state != Done {
						t.Fatalf("trial %d: executed job %s state = %v", trial, wantID, state)
					}
				}
			default: // close once, mid-sequence: drains everything pending
				if model.closed {
					continue
				}
				model.closed = true
				for {
					if _, ok := model.runNext(); !ok {
						break
					}
				}
				q.Close()
			}
		}
		// Final drain so every accepted job is terminal in both worlds.
		if !model.closed {
			model.closed = true
			for {
				if _, ok := model.runNext(); !ok {
					break
				}
			}
			q.Close()
		}

		// No job lost: every accepted job reached exactly one terminal
		// state, and it is the state the model predicts.
		for _, id := range model.accepted {
			j := jobs[id]
			state, _, jerr := j.Peek()
			switch {
			case model.canceled[id]:
				if state != Failed || !errors.Is(jerr, ErrCanceled) {
					t.Fatalf("trial %d: job %s = %v %v, model says canceled", trial, id, state, jerr)
				}
			default:
				if state != Done {
					t.Fatalf("trial %d: job %s = %v, model says executed", trial, id, state)
				}
			}
		}
		// No double execution, and execution order is exactly the model's
		// FIFO order.
		for x, c := range execCount {
			if c != 1 {
				t.Fatalf("trial %d: payload %d executed %d times", trial, x, c)
			}
		}
		if len(execOrder) != len(model.executed) {
			t.Fatalf("trial %d: executed %d jobs, model executed %d", trial, len(execOrder), len(model.executed))
		}
		for i, x := range execOrder {
			if want := jobs[model.executed[i]].Req; x != want {
				t.Fatalf("trial %d: execution[%d] = payload %d, model says %d", trial, i, x, want)
			}
		}
		// Counter bookkeeping agrees with the model.
		s := q.Stats()
		if int(s.Submitted) != len(model.accepted) || int(s.Canceled) != len(model.canceled) ||
			int(s.Completed) != len(model.executed) || s.Pending != 0 || s.Running != 0 {
			t.Fatalf("trial %d: stats %+v vs model accepted=%d canceled=%d executed=%d",
				trial, s, len(model.accepted), len(model.canceled), len(model.executed))
		}
	}
}

// TestQueueConcurrentNoJobLostOrDoubled is the liveness cousin of the
// reference-model test: with real workers and racing submitters and
// cancelers, every accepted job still reaches a terminal state exactly
// once. Run under -race this exercises the locking.
func TestQueueConcurrentNoJobLostOrDoubled(t *testing.T) {
	var execs sync.Map // payload -> *count
	q, err := New(func(x int) (int, error) {
		c, _ := execs.LoadOrStore(x, new(int))
		*(c.(*int))++
		return x, nil
	}, Options[int, int]{Workers: 3, Capacity: 512})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var accepted []*Job[int, int]
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				j, err := q.Submit(g*1000 + i)
				if err != nil {
					continue // ErrFull under pressure is legal
				}
				mu.Lock()
				accepted = append(accepted, j)
				n := len(accepted)
				mu.Unlock()
				if i%7 == 3 {
					// Cancel an arbitrary earlier job; any outcome is
					// legal, the invariant check below is what matters.
					mu.Lock()
					victim := accepted[(g+i)%n]
					mu.Unlock()
					_, _ = q.Cancel(victim.ID)
				}
			}
		}()
	}
	wg.Wait()
	q.Close()
	mu.Lock()
	defer mu.Unlock()
	for _, j := range accepted {
		select {
		case <-j.Done():
		case <-time.After(5 * time.Second):
			t.Fatalf("job %s not terminal after Close", j.ID)
		}
		if state, _, _ := j.Peek(); !state.Terminal() {
			t.Errorf("job %s state = %v after Close", j.ID, state)
		}
	}
	execs.Range(func(_, c any) bool {
		if *(c.(*int)) != 1 {
			t.Errorf("a payload executed %d times", *(c.(*int)))
		}
		return true
	})
	s := q.Stats()
	if got := s.Completed + s.Failed + s.Canceled; got != s.Submitted {
		t.Errorf("terminal count %d != submitted %d (%+v)", got, s.Submitted, s)
	}
}
