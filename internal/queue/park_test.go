package queue

import (
	"errors"
	"testing"
	"time"
)

// errOutage is the park-eligible failure in these tests; errHard is not.
var (
	errOutage = errors.New("dependency outage")
	errHard   = errors.New("hard failure")
)

func parkingQueue(t *testing.T, exec Exec[int, int], opts Options[int, int]) *Queue[int, int] {
	t.Helper()
	opts.Park = func(err error) bool { return errors.Is(err, errOutage) }
	return manualQueue(t, exec, opts)
}

func TestParkOnMatchingError(t *testing.T) {
	var parked []error
	fail := true
	q := parkingQueue(t, func(x int) (int, error) {
		if fail {
			return 0, errOutage
		}
		return x * 10, nil
	}, Options[int, int]{
		OnPark: func(j *Job[int, int], err error) { parked = append(parked, err) },
	})
	j, _ := q.Submit(7)
	if !q.RunNext() {
		t.Fatal("no job to run")
	}
	if got := j.State(); got != Parked {
		t.Fatalf("state = %v, want Parked", got)
	}
	if got := j.State().String(); got != "awaiting_labels" {
		t.Fatalf("wire state = %q, want awaiting_labels", got)
	}
	select {
	case <-j.Done():
		t.Fatal("parked job's done channel closed — parked is not terminal")
	default:
	}
	if len(parked) != 1 || !errors.Is(parked[0], errOutage) {
		t.Fatalf("OnPark calls = %v", parked)
	}
	s := q.Stats()
	if s.ParkedTotal != 1 || s.Parked != 1 || s.Failed != 0 || s.Pending != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if q.ParkedCount() != 1 {
		t.Fatalf("ParkedCount = %d", q.ParkedCount())
	}
	// A parked job is out of the pending backlog: nothing to run.
	if q.RunNext() {
		t.Fatal("parked job still runnable without a release")
	}

	// Release, recover, complete.
	fail = false
	if got := q.ReleaseParked(); got != 1 {
		t.Fatalf("ReleaseParked = %d, want 1", got)
	}
	if j.State() != Queued {
		t.Fatalf("state after release = %v, want Queued", j.State())
	}
	if !q.RunNext() {
		t.Fatal("released job not runnable")
	}
	if state, res, err := j.Peek(); state != Done || res != 70 || err != nil {
		t.Fatalf("after recovery: %v %d %v", state, res, err)
	}
	if s := q.Stats(); s.Parked != 0 || s.ParkedTotal != 1 || s.Completed != 1 {
		t.Fatalf("final stats = %+v", s)
	}
}

func TestNonMatchingErrorStillFails(t *testing.T) {
	q := parkingQueue(t, func(int) (int, error) { return 0, errHard }, Options[int, int]{})
	j, _ := q.Submit(1)
	q.RunNext()
	if state, _, err := j.Peek(); state != Failed || !errors.Is(err, errHard) {
		t.Fatalf("hard failure = %v %v, want Failed", state, err)
	}
	if s := q.Stats(); s.ParkedTotal != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestReleaseParkedPreservesSubmissionOrder(t *testing.T) {
	var ran []int
	fail := true
	var released []int
	q := parkingQueue(t, func(x int) (int, error) {
		if fail {
			return 0, errOutage
		}
		ran = append(ran, x)
		return x, nil
	}, Options[int, int]{
		OnRelease: func(j *Job[int, int]) { released = append(released, j.Seq) },
	})
	for i := 1; i <= 3; i++ {
		q.Submit(i)
	}
	// Park 1 and 2; leave 3 queued. The release must merge the parked
	// jobs back ahead of 3 (Seq order), not behind it.
	q.RunNext()
	q.RunNext()
	fail = false
	if got := q.ReleaseParked(); got != 2 {
		t.Fatalf("ReleaseParked = %d, want 2", got)
	}
	if len(released) != 2 || released[0] != 1 || released[1] != 2 {
		t.Fatalf("OnRelease seqs = %v, want [1 2]", released)
	}
	for q.RunNext() {
	}
	if len(ran) != 3 || ran[0] != 1 || ran[1] != 2 || ran[2] != 3 {
		t.Fatalf("execution order = %v, want [1 2 3]", ran)
	}
}

func TestCancelParkedJob(t *testing.T) {
	q := parkingQueue(t, func(int) (int, error) { return 0, errOutage }, Options[int, int]{})
	j, _ := q.Submit(1)
	q.RunNext()
	if j.State() != Parked {
		t.Fatal("setup: job did not park")
	}
	canceled, err := q.Cancel(j.ID)
	if err != nil || canceled != j {
		t.Fatalf("cancel parked: %v %v", canceled, err)
	}
	if state, _, jerr := j.Peek(); state != Failed || !errors.Is(jerr, ErrCanceled) {
		t.Fatalf("canceled parked job = %v %v", state, jerr)
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("canceled parked job's done channel not closed")
	}
	if q.ParkedCount() != 0 {
		t.Fatalf("ParkedCount = %d after cancel", q.ParkedCount())
	}
	if q.ReleaseParked() != 0 {
		t.Fatal("canceled job released")
	}
	if s := q.Stats(); s.Canceled != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAbandonIncludesParked(t *testing.T) {
	q := parkingQueue(t, func(int) (int, error) { return 0, errOutage }, Options[int, int]{})
	j1, _ := q.Submit(1)
	j2, _ := q.Submit(2)
	q.RunNext() // park j1; j2 stays queued

	// A sync waiter is blocked on the parked job — Abandon must unblock it.
	waited := make(chan error, 1)
	go func() {
		<-j1.Done()
		_, err := j1.Result()
		waited <- err
	}()

	q.Abandon()
	for _, j := range []*Job[int, int]{j1, j2} {
		if state, _, err := j.Peek(); state != Failed || !errors.Is(err, ErrCanceled) {
			t.Fatalf("job %s after abandon = %v %v", j.ID, state, err)
		}
	}
	select {
	case err := <-waited:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("waiter saw %v, want ErrCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sync waiter hung on an abandoned parked job")
	}
	if q.ParkedCount() != 0 {
		t.Fatalf("ParkedCount = %d after abandon", q.ParkedCount())
	}
}

func TestCloseFailsStrandedParkedJobs(t *testing.T) {
	q := parkingQueue(t, func(int) (int, error) { return 0, errOutage }, Options[int, int]{})
	j, _ := q.Submit(1)
	q.RunNext()
	if j.State() != Parked {
		t.Fatal("setup: job did not park")
	}
	q.Close()
	if state, _, err := j.Peek(); state != Failed || !errors.Is(err, ErrCanceled) {
		t.Fatalf("parked job after close = %v %v", state, err)
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("close left a parked job's done channel open")
	}
	// Post-close releases are no-ops.
	if q.ReleaseParked() != 0 {
		t.Fatal("ReleaseParked released on a closed queue")
	}
}

func TestParkSuppressedDuringClose(t *testing.T) {
	// A job that would park while the queue is closing must fail (with
	// the original outage error) so Close never strands a waiter.
	block := make(chan struct{})
	entered := make(chan struct{})
	q, err := New(func(int) (int, error) {
		close(entered)
		<-block
		return 0, errOutage
	}, Options[int, int]{
		Workers: 1,
		Park:    func(err error) bool { return errors.Is(err, errOutage) },
	})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := q.Submit(1)
	<-entered
	closed := make(chan struct{})
	go func() { q.Close(); close(closed) }()
	// Close is now waiting on the in-flight job; let it fail.
	time.Sleep(10 * time.Millisecond)
	close(block)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a job that tried to park")
	}
	state, _, jerr := j.Peek()
	if state == Parked {
		t.Fatal("job parked during close")
	}
	if state != Failed || !errors.Is(jerr, errOutage) {
		t.Fatalf("job after close = %v %v, want Failed with the outage error", state, jerr)
	}
}

func TestParkedJobsRestoreAsQueued(t *testing.T) {
	// A job parked at crash time is journaled as queued (its submit record
	// has no terminal record); restore re-enqueues and re-runs it.
	var ran []int
	q, err := New(func(x int) (int, error) { ran = append(ran, x); return x, nil }, Options[int, int]{
		Manual: true,
		Restore: []Restored[int, int]{
			{ID: "job-1", Seq: 1, Req: 41, State: Queued},
			{ID: "job-2", Seq: 2, Req: 42, State: Parked},
		},
		StartSeq: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for q.RunNext() {
	}
	if len(ran) != 2 || ran[0] != 41 || ran[1] != 42 {
		t.Fatalf("restored run order = %v, want [41 42]", ran)
	}
}
