package queue

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRestoreMixedStates seeds a queue with terminal and pending jobs and
// checks lookups, re-execution, and sequence continuation.
func TestRestoreMixedStates(t *testing.T) {
	var mu sync.Mutex
	var ran []string
	exec := func(req string) (string, error) {
		mu.Lock()
		defer mu.Unlock()
		ran = append(ran, req)
		return "res:" + req, nil
	}
	q, err := New(exec, Options[string, string]{
		Manual: true,
		Restore: []Restored[string, string]{
			{ID: "job-3", Seq: 3, State: Queued, Req: "c"},
			{ID: "job-1", Seq: 1, State: Done, Req: "a", Res: "res:a"},
			{ID: "job-2", Seq: 2, State: Failed, Req: "b", Err: ErrCanceled.Error()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	j1, ok := q.Job("job-1")
	if !ok {
		t.Fatal("job-1 not restored")
	}
	st, res, jerr := j1.Peek()
	if st != Done || res != "res:a" || jerr != nil {
		t.Fatalf("job-1 = %v %q %v", st, res, jerr)
	}
	select {
	case <-j1.Done():
	default:
		t.Fatal("restored terminal job's Done channel not closed")
	}

	j2, _ := q.Job("job-2")
	if _, _, jerr := j2.Peek(); !errors.Is(jerr, ErrCanceled) {
		t.Fatalf("job-2 err = %v, want ErrCanceled mapped back", jerr)
	}

	// The pending restored job re-executes.
	if !q.RunNext() {
		t.Fatal("restored pending job not runnable")
	}
	j3, _ := q.Job("job-3")
	if st, res, _ := j3.Peek(); st != Done || res != "res:c" {
		t.Fatalf("job-3 = %v %q", st, res)
	}
	mu.Lock()
	if len(ran) != 1 || ran[0] != "c" {
		t.Fatalf("ran = %v (terminal jobs must not re-execute)", ran)
	}
	mu.Unlock()

	// New submissions continue past the restored sequence numbers.
	j4, err := q.Submit("d")
	if err != nil || j4.Seq != 4 || j4.ID != "job-4" {
		t.Fatalf("post-restore submit: %+v err=%v", j4, err)
	}
}

func TestRestorePendingRunInSeqOrder(t *testing.T) {
	var order []string
	exec := func(req string) (string, error) {
		order = append(order, req)
		return req, nil
	}
	q, err := New(exec, Options[string, string]{
		Manual: true,
		Restore: []Restored[string, string]{
			{ID: "job-9", Seq: 9, State: Queued, Req: "ninth"},
			{ID: "job-2", Seq: 2, State: Running, Req: "second"}, // Running at crash: re-enqueued
			{ID: "job-5", Seq: 5, State: Queued, Req: "fifth"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	for q.RunNext() {
	}
	want := []string{"second", "fifth", "ninth"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("execution order = %v, want %v", order, want)
	}
}

func TestStartSeqFloorsIDs(t *testing.T) {
	q, err := New(func(s string) (string, error) { return s, nil },
		Options[string, string]{Manual: true, StartSeq: 41})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	j, err := q.Submit("x")
	if err != nil || j.ID != "job-42" {
		t.Fatalf("submit with StartSeq: %+v err=%v", j, err)
	}
}

func TestOnSubmitHookAbortsAndRollsBackSeq(t *testing.T) {
	boom := errors.New("log unwritable")
	fail := false
	var hooked []string
	q, err := New(func(s string) (string, error) { return s, nil },
		Options[string, string]{
			Manual: true,
			OnSubmit: func(j *Job[string, string]) error {
				if fail {
					return boom
				}
				hooked = append(hooked, j.ID)
				return nil
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, err := q.Submit("a"); err != nil {
		t.Fatal(err)
	}
	fail = true
	if _, err := q.Submit("b"); !errors.Is(err, boom) {
		t.Fatalf("submit with failing hook: %v", err)
	}
	fail = false
	j, err := q.Submit("c")
	if err != nil || j.Seq != 2 {
		t.Fatalf("aborted submit leaked a seq: %+v err=%v", j, err)
	}
	if len(hooked) != 2 || hooked[0] != "job-1" || hooked[1] != "job-2" {
		t.Fatalf("hooked = %v", hooked)
	}
	if st := q.Stats(); st.Submitted != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOnCancelHookAbortKeepsJobQueued(t *testing.T) {
	boom := errors.New("log unwritable")
	fail := true
	q, err := New(func(s string) (string, error) { return s, nil },
		Options[string, string]{
			Manual: true,
			OnCancel: func(j *Job[string, string]) error {
				if fail {
					return boom
				}
				return nil
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	j, _ := q.Submit("a")
	if _, err := q.Cancel(j.ID); !errors.Is(err, boom) {
		t.Fatalf("cancel with failing hook: %v", err)
	}
	if st := j.State(); st != Queued {
		t.Fatalf("job state after aborted cancel = %v, want Queued", st)
	}
	fail = false
	if _, err := q.Cancel(j.ID); err != nil {
		t.Fatalf("cancel after hook recovers: %v", err)
	}
	if _, _, jerr := j.Peek(); !errors.Is(jerr, ErrCanceled) {
		t.Fatalf("err = %v", jerr)
	}
}

func TestExecJobSeesJobIdentity(t *testing.T) {
	var got []string
	q, err := New[string, string](nil, Options[string, string]{
		Manual: true,
		ExecJob: func(j *Job[string, string]) (string, error) {
			got = append(got, j.ID+"/"+j.Req)
			return j.Req, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	q.Submit("a")
	q.Submit("b")
	for q.RunNext() {
	}
	if fmt.Sprint(got) != "[job-1/a job-2/b]" {
		t.Fatalf("got = %v", got)
	}
}

func TestNewRejectsAmbiguousExecutors(t *testing.T) {
	if _, err := New[int, int](nil, Options[int, int]{}); err == nil {
		t.Fatal("nil exec and nil ExecJob accepted")
	}
	both := Options[int, int]{ExecJob: func(*Job[int, int]) (int, error) { return 0, nil }}
	if _, err := New(func(int) (int, error) { return 0, nil }, both); err == nil {
		t.Fatal("both exec and ExecJob accepted")
	}
}

func TestRestoreRejectsDuplicates(t *testing.T) {
	_, err := New(func(s string) (string, error) { return s, nil },
		Options[string, string]{Restore: []Restored[string, string]{
			{ID: "job-1", Seq: 1, State: Done},
			{ID: "job-1", Seq: 2, State: Done},
		}})
	if err == nil {
		t.Fatal("duplicate restored IDs accepted")
	}
}

// TestDeferStart: a queue built with DeferStart holds its backlog —
// restored jobs included — until Start releases the workers, and Start is
// idempotent. This is the gate the durable server uses to finish recovery
// wiring before any restored job can execute.
func TestDeferStart(t *testing.T) {
	started := make(chan struct{})
	var once sync.Once
	var mu sync.Mutex
	var ran []string
	exec := func(req string) (string, error) {
		once.Do(func() { close(started) })
		mu.Lock()
		defer mu.Unlock()
		ran = append(ran, req)
		return "res:" + req, nil
	}
	q, err := New(exec, Options[string, string]{
		DeferStart: true,
		Restore: []Restored[string, string]{
			{ID: "job-1", Seq: 1, State: Queued, Req: "restored"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	live, err := q.Submit("live")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
		t.Fatal("a job executed before Start")
	case <-time.After(20 * time.Millisecond):
	}
	q.Start()
	q.Start() // idempotent
	<-live.Done()
	restored, ok := q.Job("job-1")
	if !ok {
		t.Fatal("restored job vanished")
	}
	<-restored.Done()
	q.Close()
	mu.Lock()
	defer mu.Unlock()
	if want := []string{"restored", "live"}; len(ran) != 2 || ran[0] != want[0] || ran[1] != want[1] {
		t.Errorf("execution order = %v, want %v", ran, want)
	}
}
