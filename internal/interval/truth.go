package interval

// Truth is the three-valued logic a clause evaluates to (Section 3.5):
// a clause may be definitely True, definitely False, or Unknown when the
// confidence interval straddles the threshold.
type Truth int

const (
	// False: the condition definitely does not hold (at the configured
	// reliability).
	False Truth = iota
	// Unknown: the estimate cannot distinguish the two sides of the
	// threshold at the configured tolerance.
	Unknown
	// True: the condition definitely holds.
	True
)

// String implements fmt.Stringer.
func (t Truth) String() string {
	switch t {
	case False:
		return "False"
	case Unknown:
		return "Unknown"
	case True:
		return "True"
	default:
		return "Truth(?)"
	}
}

// And is three-valued conjunction: False dominates, then Unknown.
// It is commutative, associative, and has True as identity.
func (t Truth) And(u Truth) Truth {
	if t == False || u == False {
		return False
	}
	if t == Unknown || u == Unknown {
		return Unknown
	}
	return True
}

// Not is three-valued negation; Unknown stays Unknown.
func (t Truth) Not() Truth {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// Mode determines how Unknown collapses to a boolean pass/fail signal
// (Appendix A.2).
type Mode int

const (
	// FPFree treats Unknown as False: whenever the system says True, the
	// condition truly holds — no false positives.
	FPFree Mode = iota
	// FNFree treats Unknown as True: whenever the system says False, the
	// condition truly fails — no false negatives.
	FNFree
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case FPFree:
		return "fp-free"
	case FNFree:
		return "fn-free"
	default:
		return "Mode(?)"
	}
}

// Collapse maps a three-valued result to the pass/fail boolean under the
// mode's policy for Unknown.
func (m Mode) Collapse(t Truth) bool {
	switch t {
	case True:
		return true
	case False:
		return false
	default:
		return m == FNFree
	}
}
