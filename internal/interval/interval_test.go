package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(1, 0) should panic")
		}
	}()
	New(1, 0)
}

func TestNewNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(NaN, 1) should panic")
		}
	}()
	New(math.NaN(), 1)
}

func TestAroundNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Around(0, -1) should panic")
		}
	}()
	Around(0, -1)
}

func TestAlgebra(t *testing.T) {
	a := New(1, 2)
	b := New(10, 20)
	if got := a.Add(b); got != New(11, 22) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != New(-19, -8) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(3); got != New(3, 6) {
		t.Errorf("Scale(3) = %v", got)
	}
	if got := a.Scale(-1); got != New(-2, -1) {
		t.Errorf("Scale(-1) = %v", got)
	}
	if got := a.Scale(0); got != New(0, 0) {
		t.Errorf("Scale(0) = %v", got)
	}
}

func TestAccessors(t *testing.T) {
	a := New(1, 3)
	if a.Width() != 2 || a.Mid() != 2 {
		t.Errorf("Width/Mid = %v/%v", a.Width(), a.Mid())
	}
	if !a.Contains(1) || !a.Contains(3) || a.Contains(3.01) {
		t.Error("Contains endpoints misbehaves")
	}
	if !a.Intersect(New(3, 5)) || a.Intersect(New(4, 5)) {
		t.Error("Intersect misbehaves")
	}
	if Point(2) != New(2, 2) {
		t.Error("Point")
	}
	if a.String() != "[1, 3]" {
		t.Errorf("String = %q", a.String())
	}
}

func TestComparisonsPaperExample(t *testing.T) {
	// Appendix A.2: condition x < 0.1 +/- 0.01 with estimator x̂.
	// x̂ > 0.11 -> False; x̂ < 0.09 -> True; in between -> Unknown.
	eps := 0.01
	if got := Around(0.12, eps).LessThan(0.1); got != False {
		t.Errorf("x̂=0.12: %v, want False", got)
	}
	if got := Around(0.08, eps).LessThan(0.1); got != True {
		t.Errorf("x̂=0.08: %v, want True", got)
	}
	if got := Around(0.10, eps).LessThan(0.1); got != Unknown {
		t.Errorf("x̂=0.10: %v, want Unknown", got)
	}
	// Mirror for GreaterThan.
	if got := Around(0.12, eps).GreaterThan(0.1); got != True {
		t.Errorf("GT x̂=0.12: %v, want True", got)
	}
	if got := Around(0.08, eps).GreaterThan(0.1); got != False {
		t.Errorf("GT x̂=0.08: %v, want False", got)
	}
	if got := Around(0.10, eps).GreaterThan(0.1); got != Unknown {
		t.Errorf("GT x̂=0.10: %v, want Unknown", got)
	}
}

func TestComparisonExclusivity(t *testing.T) {
	// For any interval and threshold, GreaterThan and LessThan can never
	// both be True.
	f := func(lo, w, c float64) bool {
		if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(w) || math.IsInf(w, 0) || math.IsNaN(c) || math.IsInf(c, 0) {
			return true
		}
		iv := New(lo, lo+math.Abs(w))
		return !(iv.GreaterThan(c) == True && iv.LessThan(c) == True)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSubScaleContainment(t *testing.T) {
	// Interval arithmetic must contain the corresponding point arithmetic:
	// for any points inside the operands, the result point is inside the
	// result interval.
	rng := rand.New(rand.NewSource(42))
	randInterval := func() Interval {
		lo := rng.NormFloat64()
		return New(lo, lo+rng.Float64()*5)
	}
	for i := 0; i < 1000; i++ {
		a := randInterval()
		b := randInterval()
		x := a.Lo + rng.Float64()*a.Width()
		y := b.Lo + rng.Float64()*b.Width()
		c := rng.NormFloat64()
		if !a.Add(b).Contains(x + y) {
			t.Fatalf("Add containment failed: %v + %v, points %v+%v", a, b, x, y)
		}
		if !a.Sub(b).Contains(x - y) {
			t.Fatalf("Sub containment failed")
		}
		if !a.Scale(c).Contains(c * x) {
			t.Fatalf("Scale containment failed")
		}
	}
}
