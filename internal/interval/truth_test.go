package interval

import (
	"testing"
	"testing/quick"
)

var truths = []Truth{False, Unknown, True}

func TestAndTruthTable(t *testing.T) {
	cases := []struct {
		a, b, want Truth
	}{
		{True, True, True},
		{True, Unknown, Unknown},
		{True, False, False},
		{Unknown, Unknown, Unknown},
		{Unknown, False, False},
		{False, False, False},
	}
	for _, c := range cases {
		if got := c.a.And(c.b); got != c.want {
			t.Errorf("%v AND %v = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.And(c.a); got != c.want {
			t.Errorf("%v AND %v (swapped) = %v, want %v", c.b, c.a, got, c.want)
		}
	}
}

func TestAndAssociativeCommutative(t *testing.T) {
	for _, a := range truths {
		for _, b := range truths {
			if a.And(b) != b.And(a) {
				t.Errorf("And not commutative for %v, %v", a, b)
			}
			for _, c := range truths {
				if a.And(b).And(c) != a.And(b.And(c)) {
					t.Errorf("And not associative for %v, %v, %v", a, b, c)
				}
			}
		}
	}
}

func TestAndIdentity(t *testing.T) {
	for _, a := range truths {
		if a.And(True) != a {
			t.Errorf("True not identity for %v", a)
		}
		if a.And(False) != False {
			t.Errorf("False not absorbing for %v", a)
		}
	}
}

func TestNot(t *testing.T) {
	if True.Not() != False || False.Not() != True || Unknown.Not() != Unknown {
		t.Error("Not truth table wrong")
	}
	f := func(i uint8) bool {
		tr := truths[int(i)%3]
		return tr.Not().Not() == tr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModeCollapse(t *testing.T) {
	// fp-free: Unknown -> reject (false); fn-free: Unknown -> accept (true).
	if FPFree.Collapse(Unknown) != false {
		t.Error("fp-free must reject Unknown")
	}
	if FNFree.Collapse(Unknown) != true {
		t.Error("fn-free must accept Unknown")
	}
	for _, m := range []Mode{FPFree, FNFree} {
		if m.Collapse(True) != true {
			t.Errorf("%v must accept True", m)
		}
		if m.Collapse(False) != false {
			t.Errorf("%v must reject False", m)
		}
	}
}

func TestStringers(t *testing.T) {
	if True.String() != "True" || False.String() != "False" || Unknown.String() != "Unknown" {
		t.Error("Truth.String wrong")
	}
	if Truth(99).String() != "Truth(?)" {
		t.Error("Truth.String default wrong")
	}
	if FPFree.String() != "fp-free" || FNFree.String() != "fn-free" {
		t.Error("Mode.String wrong")
	}
	if Mode(9).String() != "Mode(?)" {
		t.Error("Mode.String default wrong")
	}
}
