// Package interval implements the closed-interval algebra and three-valued
// logic that ease.ml/ci uses to evaluate test conditions (Section 3.5 and
// Appendix A.2 of the paper). Point estimates of the random variables
// {n, o, d} are replaced by confidence intervals; arithmetic is performed on
// intervals; comparisons against constants yield True, False, or Unknown;
// and the user's mode (fp-free / fn-free) collapses Unknown to a boolean.
package interval

import (
	"fmt"
	"math"
)

// Interval is a closed real interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// New returns the interval [lo, hi]. It panics if lo > hi or either bound is
// NaN: intervals are always constructed from estimator output, and a
// malformed one indicates a programming error, not a runtime condition.
func New(lo, hi float64) Interval {
	if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
		panic(fmt.Sprintf("interval: invalid bounds [%v, %v]", lo, hi))
	}
	return Interval{Lo: lo, Hi: hi}
}

// Point returns the degenerate interval [x, x].
func Point(x float64) Interval { return New(x, x) }

// Around returns the interval [x-eps, x+eps], the (epsilon, delta)
// confidence interval around a point estimate.
func Around(x, eps float64) Interval {
	if eps < 0 {
		panic(fmt.Sprintf("interval: negative half-width %v", eps))
	}
	return New(x-eps, x+eps)
}

// Add returns a + b = [a.Lo+b.Lo, a.Hi+b.Hi] (the paper's example algebra).
func (a Interval) Add(b Interval) Interval {
	return New(a.Lo+b.Lo, a.Hi+b.Hi)
}

// Sub returns a - b = [a.Lo-b.Hi, a.Hi-b.Lo].
func (a Interval) Sub(b Interval) Interval {
	return New(a.Lo-b.Hi, a.Hi-b.Lo)
}

// Scale returns c * a, flipping the bounds when c is negative.
func (a Interval) Scale(c float64) Interval {
	lo, hi := c*a.Lo, c*a.Hi
	if lo > hi {
		lo, hi = hi, lo
	}
	return New(lo, hi)
}

// Width returns Hi - Lo.
func (a Interval) Width() float64 { return a.Hi - a.Lo }

// Mid returns the midpoint.
func (a Interval) Mid() float64 { return (a.Lo + a.Hi) / 2 }

// Contains reports whether x lies in [Lo, Hi].
func (a Interval) Contains(x float64) bool { return a.Lo <= x && x <= a.Hi }

// Intersect reports whether a and b overlap.
func (a Interval) Intersect(b Interval) bool {
	return a.Lo <= b.Hi && b.Lo <= a.Hi
}

// GreaterThan evaluates "a > c" in three-valued logic: True if the entire
// interval is above c, False if entirely at or below, Unknown otherwise.
func (a Interval) GreaterThan(c float64) Truth {
	switch {
	case a.Lo > c:
		return True
	case a.Hi <= c:
		return False
	default:
		return Unknown
	}
}

// LessThan evaluates "a < c" in three-valued logic.
func (a Interval) LessThan(c float64) Truth {
	switch {
	case a.Hi < c:
		return True
	case a.Lo >= c:
		return False
	default:
		return Unknown
	}
}

// String renders the interval as "[lo, hi]".
func (a Interval) String() string {
	return fmt.Sprintf("[%g, %g]", a.Lo, a.Hi)
}
