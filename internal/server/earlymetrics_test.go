package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"github.com/easeml/ci/internal/script"
)

// TestMetricsEarlyExitCounters covers the label-savings observability:
// commit responses carry the sequential evaluation's cost fields, the
// process-wide counters in /api/v1/metrics aggregate them (total saved,
// early exits, exits-by-look histogram), and the admin reset clears them.
func TestMetricsEarlyExitCounters(t *testing.T) {
	srv, labels := newTestServer(t, script.AdaptivityFull)

	// A clearly broken candidate (far below the threshold) is the
	// non-borderline case the sequential evaluation wins on.
	rec, _ := doJSON(t, srv, http.MethodPost, "/api/v1/commit", CommitRequest{
		Model: "broken", Author: "dev", Message: "x",
		Predictions: goodPredictions(t, labels, 0.2, 11),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("commit status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp CommitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.EarlyExit || resp.Looks == 0 || resp.LabelsSaved == 0 {
		t.Fatalf("clear fail should exit early: %+v", resp)
	}
	if resp.FreshLabels+resp.LabelsSaved != testSize {
		t.Fatalf("fresh %d + saved %d != testset %d", resp.FreshLabels, resp.LabelsSaved, testSize)
	}

	var m MetricsResponse
	if err := json.Unmarshal(getBody(t, srv, "/api/v1/metrics"), &m); err != nil {
		t.Fatal(err)
	}
	if m.LabelsSavedTotal != uint64(resp.LabelsSaved) {
		t.Errorf("labels_saved_total = %d, want %d", m.LabelsSavedTotal, resp.LabelsSaved)
	}
	if m.EarlyExitsTotal != 1 {
		t.Errorf("early_exits_total = %d, want 1", m.EarlyExitsTotal)
	}
	if len(m.EarlyExitLooks) <= resp.Looks || m.EarlyExitLooks[resp.Looks] != 1 {
		t.Errorf("early_exit_looks = %v, want a count at look %d", m.EarlyExitLooks, resp.Looks)
	}

	// An even worse candidate exits early for free: the first commit's
	// labels already pin the verdict at the first look.
	rec, _ = doJSON(t, srv, http.MethodPost, "/api/v1/commit", CommitRequest{
		Model: "worse", Author: "dev", Message: "y",
		Predictions: goodPredictions(t, labels, 0.05, 12),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("commit status = %d: %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(getBody(t, srv, "/api/v1/metrics"), &m); err != nil {
		t.Fatal(err)
	}
	if m.EarlyExitsTotal != 2 {
		t.Errorf("early_exits_total = %d, want 2", m.EarlyExitsTotal)
	}

	// The admin reset returns the counters to zero with the rest of the
	// commit statistics.
	if rec, _ := doJSON(t, srv, http.MethodPost, "/api/v1/admin/reset-caches", nil); rec.Code != http.StatusOK {
		t.Fatalf("reset status = %d", rec.Code)
	}
	var post MetricsResponse
	if err := json.Unmarshal(getBody(t, srv, "/api/v1/metrics"), &post); err != nil {
		t.Fatal(err)
	}
	if post.LabelsSavedTotal != 0 || post.EarlyExitsTotal != 0 || post.EarlyExitLooks != nil {
		t.Errorf("post-reset savings counters not zero: %+v", post)
	}
}

// TestDurableJournalsLooks: with early decision on (the default), every
// commit's look decision lands in the write-ahead log, and a crash-restart
// replays the sequential evaluation to a byte-identical history — the
// label charges the survivors saw are exactly reproduced.
func TestDurableJournalsLooks(t *testing.T) {
	g, labels := durableGenesis(t, 3, testSize)
	dir := t.TempDir()
	srv, err := NewDurable(g, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := doJSON(t, srv, http.MethodPost, "/api/v1/commit", CommitRequest{
		Model: "m0", Author: "dev", Message: "x",
		Predictions: goodPredictions(t, labels, 0.2, 10),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("commit status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp CommitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.EarlyExit {
		t.Fatalf("clear fail should exit early: %+v", resp)
	}
	history := getBody(t, srv, "/api/v1/history")

	raw, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"t":"looks"`)) {
		t.Fatal("write-ahead log has no looks record")
	}

	// Crash (no Close): restart replays the log, cross-checking the
	// recorded look decisions against the re-run evaluation.
	restarted, err := NewDurable(g, dir, Options{})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer restarted.Close()
	if got := getBody(t, restarted, "/api/v1/history"); !bytes.Equal(got, history) {
		t.Fatalf("history changed across restart:\n%s\n%s", got, history)
	}
}

// TestMultiMetricsAggregateSavings: the control plane's top-level metrics
// carry the fleet-wide early-decision totals — the sum of every tenant's
// labels_saved_total / early_exits_total.
func TestMultiMetricsAggregateSavings(t *testing.T) {
	m := newTestMulti(t, MultiOptions{})
	defer m.Close()
	_, labels := durableGenesis(t, 3, testSize)

	rec := doH(t, m, http.MethodPost, "/api/v1/commit", CommitRequest{
		Model: "broken", Author: "dev", Message: "x",
		Predictions: goodPredictions(t, labels, 0.2, 11),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("commit status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp CommitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.EarlyExit || resp.LabelsSaved == 0 {
		t.Fatalf("clear fail should exit early: %+v", resp)
	}

	var mm MultiMetricsResponse
	if err := json.Unmarshal(doH(t, m, http.MethodGet, "/api/v1/metrics", nil).Body.Bytes(), &mm); err != nil {
		t.Fatal(err)
	}
	if mm.LabelsSavedTotal != uint64(resp.LabelsSaved) || mm.EarlyExitsTotal != 1 {
		t.Fatalf("top-level savings = %d/%d, want %d/1",
			mm.LabelsSavedTotal, mm.EarlyExitsTotal, resp.LabelsSaved)
	}
	var sumSaved, sumExits uint64
	for _, p := range mm.Projects {
		sumSaved += p.LabelsSavedTotal
		sumExits += p.EarlyExitsTotal
	}
	if mm.LabelsSavedTotal != sumSaved || mm.EarlyExitsTotal != sumExits {
		t.Fatalf("top-level %d/%d != project sum %d/%d",
			mm.LabelsSavedTotal, mm.EarlyExitsTotal, sumSaved, sumExits)
	}
}
