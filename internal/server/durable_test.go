package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/easeml/ci/internal/interval"
	"github.com/easeml/ci/internal/model"
	"github.com/easeml/ci/internal/notify"
	"github.com/easeml/ci/internal/script"
)

// durableGenesis mirrors newServerWith's engine construction exactly, so
// a durable server and an in-memory oracle built from the same numbers
// produce byte-identical histories.
func durableGenesis(t *testing.T, steps, size int) (Genesis, []int) {
	t.Helper()
	labels := make([]int, size)
	for i := range labels {
		labels[i] = i % testClasses
	}
	h0, err := model.SimulatedPredictions(labels, testClasses, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	return Genesis{
		Condition:        "n > 0.6 +/- 0.1",
		Reliability:      0.99,
		Mode:             interval.FPFree,
		Adaptivity:       script.Adaptivity{Kind: script.AdaptivityFull},
		Steps:            steps,
		Labels:           labels,
		Classes:          testClasses,
		ModelName:        "h0",
		ModelPredictions: h0,
	}, labels
}

// getBody asserts a 200 GET and returns the raw response bytes — the
// byte-identity currency of the restart-equivalence tests.
func getBody(t *testing.T, srv *Server, path string) []byte {
	t.Helper()
	rec, _ := doJSON(t, srv, http.MethodGet, path, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s status = %d: %s", path, rec.Code, rec.Body.String())
	}
	return append([]byte(nil), rec.Body.Bytes()...)
}

// driveTraffic pushes a fixed deterministic workload through a server:
// sync commits to budget exhaustion, a rotation, then async commits
// (some with webhooks) polled to terminal states.
func driveTraffic(t *testing.T, srv *Server, labels []int) (jobIDs []string, hooked int) {
	t.Helper()
	for i := 0; i < 3; i++ {
		rec, _ := doJSON(t, srv, http.MethodPost, "/api/v1/commit", CommitRequest{
			Model: fmt.Sprintf("m%d", i), Author: "dev", Message: "x",
			Predictions: goodPredictions(t, labels, 0.9, int64(10+i)),
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("commit %d status = %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	rec, _ := doJSON(t, srv, http.MethodPost, "/api/v1/testset", RotateRequest{
		Labels:            labels,
		ActivePredictions: goodPredictions(t, labels, 0.9, 20),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("rotate status = %d: %s", rec.Code, rec.Body.String())
	}
	for i := 0; i < 2; i++ {
		hook := ""
		if i == 0 {
			hook = "http://hooks.local/ci"
			hooked++
		}
		rec, _ := doJSON(t, srv, http.MethodPost, "/api/v1/commit/async", AsyncCommitRequest{
			CommitRequest: CommitRequest{
				Model: fmt.Sprintf("a%d", i), Author: "dev", Message: "y",
				Predictions: goodPredictions(t, labels, 0.9, int64(30+i)),
			},
			Webhook: hook,
		})
		if rec.Code != http.StatusAccepted {
			t.Fatalf("async %d status = %d: %s", i, rec.Code, rec.Body.String())
		}
		var acc JobAcceptedResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
			t.Fatal(err)
		}
		pollUntilTerminal(t, srv, acc.JobID)
		jobIDs = append(jobIDs, acc.JobID)
	}
	return jobIDs, hooked
}

// waitQuiescent waits until every accepted job and webhook delivery has
// reached its terminal outcome (including the WAL records those outcomes
// write), so abandoning the server afterwards cannot race a restart.
func waitQuiescent(t *testing.T, srv *Server, wantWebhooks uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var m MetricsResponse
		if err := json.Unmarshal(getBody(t, srv, "/api/v1/metrics"), &m); err != nil {
			t.Fatal(err)
		}
		if m.CommitQueue.Pending == 0 && m.CommitQueue.Running == 0 &&
			m.WebhooksSent+m.WebhooksFailed >= wantWebhooks && m.WebhookRetry.Pending == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never went quiescent: %+v", m)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDurableRestartEquivalence is the tentpole property: a durable
// server that crashes (or shuts down cleanly) and restarts is invisible
// to clients — history, status, and every job's poll response are
// byte-identical to what the pre-restart process served, and both match
// an uninterrupted in-memory oracle run fed the same traffic.
func TestDurableRestartEquivalence(t *testing.T) {
	g, labels := durableGenesis(t, 3, testSize)

	// Oracle: plain in-memory server, same engine numbers, same traffic.
	oracle, _ := newServerWith(t, script.AdaptivityFull, 3, testSize, Options{Webhooks: notify.NewOutbox()})
	defer oracle.Close()
	driveTraffic(t, oracle, labels)
	oracleHistory := getBody(t, oracle, "/api/v1/history")

	for _, clean := range []bool{true, false} {
		name := "crash"
		if clean {
			name = "clean-shutdown"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			srv, err := NewDurable(g, dir, Options{Webhooks: notify.NewOutbox()})
			if err != nil {
				t.Fatal(err)
			}
			jobIDs, hooked := driveTraffic(t, srv, labels)
			waitQuiescent(t, srv, uint64(hooked))

			history := getBody(t, srv, "/api/v1/history")
			status := getBody(t, srv, "/api/v1/status")
			jobs := map[string][]byte{}
			for _, id := range jobIDs {
				jobs[id] = getBody(t, srv, jobsPath+id)
			}
			if !bytes.Equal(history, oracleHistory) {
				t.Fatalf("durable history diverges from the in-memory oracle:\n%s\n%s", history, oracleHistory)
			}

			if clean {
				srv.Close() // compacts into snapshot.json; restart restores from it
			} // else: abandon without Close — the log replays from genesis

			restarted, err := NewDurable(g, dir, Options{Webhooks: notify.NewOutbox()})
			if err != nil {
				t.Fatalf("restart: %v", err)
			}
			defer restarted.Close()
			if got := getBody(t, restarted, "/api/v1/history"); !bytes.Equal(got, history) {
				t.Errorf("history changed across restart:\n%s\n%s", got, history)
			}
			if got := getBody(t, restarted, "/api/v1/status"); !bytes.Equal(got, status) {
				t.Errorf("status changed across restart:\n%s\n%s", got, status)
			}
			for id, want := range jobs {
				if got := getBody(t, restarted, jobsPath+id); !bytes.Equal(got, want) {
					t.Errorf("job %s status changed across restart:\n%s\n%s", id, got, want)
				}
			}
			// The restarted server is live, not a read-only replica: it
			// accepts new commits on the rotated testset.
			rec, _ := doJSON(t, restarted, http.MethodPost, "/api/v1/commit", CommitRequest{
				Model: "after-restart", Predictions: goodPredictions(t, labels, 0.9, 99),
			})
			if rec.Code != http.StatusOK {
				t.Errorf("post-restart commit status = %d: %s", rec.Code, rec.Body.String())
			}
		})
	}
}

// TestDurablePendingJobResume: jobs accepted (202) but not yet executed
// at the crash are re-enqueued on restart and run exactly once, while
// already-evaluated jobs come back terminal without re-executing.
func TestDurablePendingJobResume(t *testing.T) {
	g, labels := durableGenesis(t, 3, testSize)
	dir := t.TempDir()
	srv, err := NewDurable(g, dir, Options{ManualQueue: true, Webhooks: notify.NewOutbox()})
	if err != nil {
		t.Fatal(err)
	}
	submit := func(s *Server, i int) string {
		rec, _ := doJSON(t, s, http.MethodPost, "/api/v1/commit/async", AsyncCommitRequest{
			CommitRequest: CommitRequest{
				Model: fmt.Sprintf("m%d", i), Predictions: goodPredictions(t, labels, 0.9, int64(10+i)),
			},
		})
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit %d status = %d: %s", i, rec.Code, rec.Body.String())
		}
		var acc JobAcceptedResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
			t.Fatal(err)
		}
		return acc.JobID
	}
	id0, id1 := submit(srv, 0), submit(srv, 1)
	if !srv.RunNextJob() {
		t.Fatal("no job to run")
	}
	done0 := getBody(t, srv, jobsPath+id0)
	// Crash: abandon without Close — job 1 was accepted but never ran.

	restarted, err := NewDurable(g, dir, Options{ManualQueue: true, Webhooks: notify.NewOutbox()})
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	if got := getBody(t, restarted, jobsPath+id0); !bytes.Equal(got, done0) {
		t.Errorf("evaluated job changed across restart:\n%s\n%s", got, done0)
	}
	if st := decodeJobStatusRec(t, getBody(t, restarted, jobsPath+id1)); st.State != "queued" {
		t.Fatalf("job %s state after restart = %q, want queued", id1, st.State)
	}
	if !restarted.RunNextJob() {
		t.Fatal("restored pending job did not run")
	}
	if st := decodeJobStatusRec(t, getBody(t, restarted, jobsPath+id1)); st.State != "done" {
		t.Errorf("resumed job state = %q, want done", st.State)
	}
	// Exactly once: the engine history holds each commit a single time.
	var history []CommitResponse
	if err := json.Unmarshal(getBody(t, restarted, "/api/v1/history"), &history); err != nil {
		t.Fatal(err)
	}
	if len(history) != 2 {
		t.Errorf("history has %d commits, want 2 (one per job, no re-execution)", len(history))
	}
	if restarted.RunNextJob() {
		t.Error("a third job ran; terminal jobs must not re-enqueue")
	}
}

func decodeJobStatusRec(t *testing.T, body []byte) JobStatusResponse {
	t.Helper()
	var st JobStatusResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("bad job status JSON: %v: %s", err, body)
	}
	return st
}

// TestDurableCrashAtEveryRecordBoundary is the crash-recovery property
// test: a log truncated at ANY record boundary (and mid-record — a torn
// write) must recover to a valid prefix of the full run's history —
// the state strictly before or after each record, never a torn hybrid.
func TestDurableCrashAtEveryRecordBoundary(t *testing.T) {
	g, labels := durableGenesis(t, 3, testSize)
	base := Options{WALNoSync: true, CompactAt: -1, Webhooks: notify.NewOutbox()}

	// Produce a full run's log: commits, a rotation, another commit.
	dir := t.TempDir()
	srv, err := NewDurable(g, dir, base)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		rec, _ := doJSON(t, srv, http.MethodPost, "/api/v1/commit", CommitRequest{
			Model: fmt.Sprintf("m%d", i), Predictions: goodPredictions(t, labels, 0.9, int64(10+i)),
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("commit %d status = %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	rec, _ := doJSON(t, srv, http.MethodPost, "/api/v1/testset", RotateRequest{
		Labels: labels, ActivePredictions: goodPredictions(t, labels, 0.9, 20),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("rotate status = %d", rec.Code)
	}
	rec, _ = doJSON(t, srv, http.MethodPost, "/api/v1/commit", CommitRequest{
		Model: "m2", Predictions: goodPredictions(t, labels, 0.9, 30),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("final commit status = %d", rec.Code)
	}
	var full []json.RawMessage
	if err := json.Unmarshal(getBody(t, srv, "/api/v1/history"), &full); err != nil {
		t.Fatal(err)
	}
	// Abandon without Close: the log keeps every record.
	raw, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	if lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	if len(lines) < 5 {
		t.Fatalf("expected a multi-record log, got %d lines", len(lines))
	}

	historyAt := func(t *testing.T, logPrefix string) []json.RawMessage {
		t.Helper()
		d := t.TempDir()
		if err := os.WriteFile(filepath.Join(d, "wal.log"), []byte(logPrefix), 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := NewDurable(g, d, Options{ManualQueue: true, WALNoSync: true, CompactAt: -1, Webhooks: notify.NewOutbox()})
		if err != nil {
			t.Fatalf("recovery failed: %v", err)
		}
		defer s.Close()
		var h []json.RawMessage
		if err := json.Unmarshal(getBody(t, s, "/api/v1/history"), &h); err != nil {
			t.Fatal(err)
		}
		return h
	}
	assertPrefix := func(t *testing.T, h []json.RawMessage) {
		t.Helper()
		if len(h) > len(full) {
			t.Fatalf("recovered history has %d commits, full run had %d", len(h), len(full))
		}
		for k := range h {
			if !bytes.Equal(h[k], full[k]) {
				t.Fatalf("recovered commit %d diverges from the full run:\n%s\n%s", k, h[k], full[k])
			}
		}
	}

	prevLen := -1
	for i := 0; i <= len(lines); i++ {
		prefix := strings.Join(lines[:i], "")
		h := historyAt(t, prefix)
		assertPrefix(t, h)
		if len(h) < prevLen {
			t.Fatalf("boundary %d: history shrank from %d to %d commits", i, prevLen, len(h))
		}
		prevLen = len(h)
		// Torn write: half of the next record appended after the boundary
		// must truncate away and recover the identical boundary state.
		if i < len(lines) {
			torn := prefix + lines[i][:len(lines[i])/2]
			if ht := historyAt(t, torn); len(ht) != len(h) {
				t.Fatalf("boundary %d: torn tail recovered %d commits, boundary state has %d", i, len(ht), len(h))
			}
		}
	}
	if prevLen != len(full) {
		t.Fatalf("full log recovered %d commits, want %d", prevLen, len(full))
	}
}

// flakyNotifier fails its first n Sends, then delivers into sent.
type flakyNotifier struct {
	mu       sync.Mutex
	failures int
	sent     []notify.Notification
}

func (f *flakyNotifier) Send(n notify.Notification) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failures > 0 {
		f.failures--
		return fmt.Errorf("subscriber down")
	}
	f.sent = append(f.sent, n)
	return nil
}

func (f *flakyNotifier) delivered() []notify.Notification {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]notify.Notification(nil), f.sent...)
}

// fakeClock is a settable clock for deterministic backoff tests.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

// TestDurableWebhookFlakySubscriberExactlyOnce: a webhook endpoint that
// fails three times is delivered exactly once after backoff; the breaker
// opens on the failure streak and its state is visible in the metrics.
func TestDurableWebhookFlakySubscriberExactlyOnce(t *testing.T) {
	g, labels := durableGenesis(t, 3, testSize)
	hook := &flakyNotifier{failures: 3}
	clock := &fakeClock{}
	srv, err := NewDurable(g, t.TempDir(), Options{
		ManualQueue: true,
		ManualRetry: true,
		Webhooks:    hook,
		RetryClock:  clock.now,
		RetryJitter: func() float64 { return 0 },
		RetryPolicy: notify.RetryPolicy{
			MaxAttempts: 5,
			Backoff:     time.Second,
			Breaker:     notify.BreakerOptions{FailureThreshold: 3, Cooldown: 2 * time.Second},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rec, _ := doJSON(t, srv, http.MethodPost, "/api/v1/commit/async", AsyncCommitRequest{
		CommitRequest: CommitRequest{Model: "m0", Predictions: goodPredictions(t, labels, 0.9, 10)},
		Webhook:       "http://down.local/hook",
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status = %d", rec.Code)
	}
	var acc JobAcceptedResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
		t.Fatal(err)
	}
	if !srv.RunNextJob() {
		t.Fatal("no job to run")
	}

	// Attempts 1..3 fail (backoff 1s then 2s); the third failure trips
	// the breaker.
	for i := 0; i < 3; i++ {
		if n := srv.RunDueWebhooks(); n != 1 {
			t.Fatalf("attempt %d: RunDueWebhooks = %d, want 1", i+1, n)
		}
		clock.advance(time.Duration(1<<i) * time.Second)
	}
	var m MetricsResponse
	if err := json.Unmarshal(getBody(t, srv, "/api/v1/metrics"), &m); err != nil {
		t.Fatal(err)
	}
	b, ok := m.WebhookRetry.Breakers["http://down.local/hook"]
	if !ok || b.State != "open" || b.Opens != 1 {
		t.Errorf("breaker after 3 failures = %+v (all: %+v)", b, m.WebhookRetry.Breakers)
	}
	if m.WebhookRetry.Retries < 2 || m.WebhookRetry.Delivered != 0 {
		t.Errorf("retry stats mid-flight: %+v", m.WebhookRetry)
	}

	// Backoff after the third failure is 4s; the cooldown (2s) has passed
	// by then, so the due attempt is the half-open probe — and the
	// subscriber is back.
	clock.advance(2 * time.Second)
	if n := srv.RunDueWebhooks(); n != 1 {
		t.Fatalf("probe: RunDueWebhooks = %d, want 1", n)
	}
	got := hook.delivered()
	if len(got) != 1 {
		t.Fatalf("delivered %d webhooks, want exactly 1", len(got))
	}
	var st JobStatusResponse
	if err := json.Unmarshal([]byte(got[0].Body), &st); err != nil {
		t.Fatal(err)
	}
	if st.JobID != acc.JobID || st.State != "done" {
		t.Errorf("webhook payload = %+v", st)
	}
	if err := json.Unmarshal(getBody(t, srv, "/api/v1/metrics"), &m); err != nil {
		t.Fatal(err)
	}
	if m.WebhookRetry.Delivered != 1 || m.WebhookRetry.Attempts != 4 || m.WebhooksSent != 1 {
		t.Errorf("final retry stats: %+v, webhooks_sent=%d", m.WebhookRetry, m.WebhooksSent)
	}
	if b := m.WebhookRetry.Breakers["http://down.local/hook"]; b.State != "closed" {
		t.Errorf("breaker after successful probe = %+v", b)
	}
	if kind, ok := m.WebhookRetry.PerKind[notify.KindWebhook.String()]; !ok || kind.Attempts != 4 {
		t.Errorf("per-kind stats = %+v", m.WebhookRetry.PerKind)
	}
	// RunDueWebhooks again: nothing left — no duplicate delivery.
	if n := srv.RunDueWebhooks(); n != 0 {
		t.Errorf("extra attempts after delivery: %d", n)
	}
}

// TestDurableWebhookRedeliveryAcrossRestart: a delivery abandoned
// mid-backoff by shutdown has no outcome record in the log, so the next
// start redelivers it; once an outcome is recorded, further restarts
// leave it alone.
func TestDurableWebhookRedeliveryAcrossRestart(t *testing.T) {
	g, labels := durableGenesis(t, 3, testSize)
	dir := t.TempDir()
	down := &flakyNotifier{failures: 1 << 20}
	clock := &fakeClock{}
	opts := func(n notify.Notifier) Options {
		return Options{
			ManualQueue: true, ManualRetry: true, Webhooks: n,
			RetryClock: clock.now, RetryJitter: func() float64 { return 0 },
			RetryPolicy: notify.RetryPolicy{MaxAttempts: 5, Backoff: time.Minute},
		}
	}
	srv, err := NewDurable(g, dir, opts(down))
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := doJSON(t, srv, http.MethodPost, "/api/v1/commit/async", AsyncCommitRequest{
		CommitRequest: CommitRequest{Model: "m0", Predictions: goodPredictions(t, labels, 0.9, 10)},
		Webhook:       "http://hooks.local/ci",
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status = %d", rec.Code)
	}
	var acc JobAcceptedResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
		t.Fatal(err)
	}
	if !srv.RunNextJob() {
		t.Fatal("no job to run")
	}
	if n := srv.RunDueWebhooks(); n != 1 {
		t.Fatalf("first attempt: RunDueWebhooks = %d", n)
	}
	// The delivery is now waiting out a one-minute backoff; Close
	// abandons it with NO outcome record — that absence schedules
	// redelivery after restart. (Close also compacts, so the restart
	// additionally exercises the snapshot-restore path.)
	srv.Close()

	up := &flakyNotifier{}
	restarted, err := NewDurable(g, dir, opts(up))
	if err != nil {
		t.Fatal(err)
	}
	if n := restarted.RunDueWebhooks(); n != 1 {
		t.Fatalf("redelivery: RunDueWebhooks = %d, want 1", n)
	}
	got := up.delivered()
	if len(got) != 1 {
		t.Fatalf("redelivered %d webhooks, want exactly 1", len(got))
	}
	var st JobStatusResponse
	if err := json.Unmarshal([]byte(got[0].Body), &st); err != nil {
		t.Fatal(err)
	}
	if st.JobID != acc.JobID || st.State != "done" || st.Result == nil {
		t.Errorf("redelivered payload = %+v", st)
	}
	restarted.Close()

	// The outcome is recorded now: a third start must not redeliver.
	final := &flakyNotifier{}
	again, err := NewDurable(g, dir, opts(final))
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if n := again.RunDueWebhooks(); n != 0 {
		t.Errorf("third start made %d delivery attempts, want 0", n)
	}
	if len(final.delivered()) != 0 {
		t.Errorf("third start duplicated the webhook: %+v", final.delivered())
	}
}

// TestDurableWALPoisoning: an append failure mid-commit aborts the
// commit, flips every mutating endpoint to 503 (reads keep working),
// and a restart recovers the pre-failure state with the interrupted job
// re-enqueued — it runs exactly once in the end.
func TestDurableWALPoisoning(t *testing.T) {
	g, labels := durableGenesis(t, 3, testSize)
	dir := t.TempDir()
	var failing atomic.Bool
	hook := func(line []byte) error {
		if failing.Load() {
			return fmt.Errorf("disk full")
		}
		return nil
	}
	srv, err := NewDurable(g, dir, Options{
		ManualQueue: true, Webhooks: notify.NewOutbox(), WALWriteHook: hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	submit := func(s *Server, i int, wantCode int) string {
		rec, _ := doJSON(t, s, http.MethodPost, "/api/v1/commit/async", AsyncCommitRequest{
			CommitRequest: CommitRequest{Model: fmt.Sprintf("m%d", i), Predictions: goodPredictions(t, labels, 0.9, int64(10+i))},
		})
		if rec.Code != wantCode {
			t.Fatalf("submit %d status = %d, want %d: %s", i, rec.Code, wantCode, rec.Body.String())
		}
		if wantCode != http.StatusAccepted {
			return ""
		}
		var acc JobAcceptedResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
			t.Fatal(err)
		}
		return acc.JobID
	}
	submit(srv, 0, http.StatusAccepted)
	if !srv.RunNextJob() {
		t.Fatal("no job to run")
	}
	id1 := submit(srv, 1, http.StatusAccepted)

	// Disk goes bad: the job's first journal append fails mid-commit. The
	// engine aborts, no commit record is written, the server is poisoned.
	failing.Store(true)
	if !srv.RunNextJob() {
		t.Fatal("no second job to run")
	}
	if st := decodeJobStatusRec(t, getBody(t, srv, jobsPath+id1)); st.State != "failed" {
		t.Fatalf("poisoned job state = %q, want failed", st.State)
	}
	// Every mutating endpoint answers 503 now; reads still work.
	submit(srv, 2, http.StatusServiceUnavailable)
	rec, _ := doJSON(t, srv, http.MethodPost, "/api/v1/testset", RotateRequest{
		Labels: labels, ActivePredictions: goodPredictions(t, labels, 0.9, 20),
	})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("rotate on poisoned server status = %d, want 503", rec.Code)
	}
	var m MetricsResponse
	if err := json.Unmarshal(getBody(t, srv, "/api/v1/metrics"), &m); err != nil {
		t.Fatal(err)
	}
	if m.WAL == nil || m.WAL.AppendErrors == 0 {
		t.Errorf("metrics must report the append errors: %+v", m.WAL)
	}
	// Crash (Close would try to compact through the bad disk; a poisoned
	// server skips that, but the abandon path is the harsher test).

	failing.Store(false)
	restarted, err := NewDurable(g, dir, Options{ManualQueue: true, Webhooks: notify.NewOutbox(), WALWriteHook: hook})
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	var history []CommitResponse
	if err := json.Unmarshal(getBody(t, restarted, "/api/v1/history"), &history); err != nil {
		t.Fatal(err)
	}
	if len(history) != 1 {
		t.Fatalf("recovered history has %d commits, want 1 (the aborted commit never happened)", len(history))
	}
	// The interrupted job's submit record survived, its commit record
	// didn't: it re-enqueues and runs exactly once.
	if st := decodeJobStatusRec(t, getBody(t, restarted, jobsPath+id1)); st.State != "queued" {
		t.Fatalf("interrupted job state after restart = %q, want queued", st.State)
	}
	if !restarted.RunNextJob() {
		t.Fatal("interrupted job did not re-run")
	}
	if st := decodeJobStatusRec(t, getBody(t, restarted, jobsPath+id1)); st.State != "done" {
		t.Errorf("interrupted job final state = %q, want done", st.State)
	}
	if err := json.Unmarshal(getBody(t, restarted, "/api/v1/history"), &history); err != nil {
		t.Fatal(err)
	}
	if len(history) != 2 {
		t.Errorf("history after re-run has %d commits, want 2", len(history))
	}
}

// TestDurableAdminEndpoints covers the two admin surfaces in durable
// mode: the cache reset REPORTS the WAL and retry-queue counters without
// zeroing them (they are durability state, not caches), and the compact
// endpoint folds the log into a snapshot on demand.
func TestDurableAdminEndpoints(t *testing.T) {
	g, labels := durableGenesis(t, 3, testSize)
	dir := t.TempDir()
	outbox := notify.NewOutbox()
	srv, err := NewDurable(g, dir, Options{Webhooks: outbox, CompactAt: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rec, _ := doJSON(t, srv, http.MethodPost, "/api/v1/commit/async", AsyncCommitRequest{
		CommitRequest: CommitRequest{Model: "m0", Predictions: goodPredictions(t, labels, 0.9, 10)},
		Webhook:       "http://hooks.local/ci",
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status = %d", rec.Code)
	}
	var acc JobAcceptedResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
		t.Fatal(err)
	}
	pollUntilTerminal(t, srv, acc.JobID)
	waitQuiescent(t, srv, 1)

	// Admin reset: the pre-reset snapshot carries the WAL and retry
	// counters, and a follow-up metrics read shows them NOT zeroed.
	rec, _ = doJSON(t, srv, http.MethodPost, "/api/v1/admin/reset-caches", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("reset status = %d", rec.Code)
	}
	var pre MetricsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pre); err != nil {
		t.Fatal(err)
	}
	if pre.WAL == nil || pre.WAL.Appends == 0 {
		t.Errorf("reset snapshot must report WAL appends: %+v", pre.WAL)
	}
	if pre.WebhookRetry.Delivered != 1 {
		t.Errorf("reset snapshot must report retry-queue traffic: %+v", pre.WebhookRetry)
	}
	var m MetricsResponse
	if err := json.Unmarshal(getBody(t, srv, "/api/v1/metrics"), &m); err != nil {
		t.Fatal(err)
	}
	if m.CommitsEvaluated != 0 {
		t.Errorf("commit counters must reset: %+v", m.CommitsEvaluated)
	}
	if m.WAL == nil || m.WAL.Appends != pre.WAL.Appends {
		t.Errorf("WAL counters must survive the cache reset: %+v vs %+v", m.WAL, pre.WAL)
	}
	if m.WebhookRetry.Delivered != pre.WebhookRetry.Delivered {
		t.Errorf("retry counters must survive the cache reset: %+v vs %+v", m.WebhookRetry, pre.WebhookRetry)
	}

	// Admin compact: the log folds into the snapshot and empties.
	rec, _ = doJSON(t, srv, http.MethodPost, "/api/v1/admin/compact", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("compact status = %d: %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(getBody(t, srv, "/api/v1/metrics"), &m); err != nil {
		t.Fatal(err)
	}
	if m.WAL.Compactions == 0 || m.WAL.SnapshotSeq == 0 || m.WAL.SizeBytes != 0 {
		t.Errorf("post-compact WAL stats: %+v", m.WAL)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil {
		t.Errorf("compaction left no snapshot: %v", err)
	}

	// On a non-durable server the endpoint is a 409.
	mem, _ := newTestServer(t, script.AdaptivityFull)
	defer mem.Close()
	rec, _ = doJSON(t, mem, http.MethodPost, "/api/v1/admin/compact", nil)
	if rec.Code != http.StatusConflict {
		t.Errorf("compact on in-memory server status = %d, want 409", rec.Code)
	}
}

// TestDurableAutoCompaction: once the log outgrows CompactAt, the next
// commit triggers a compaction inline; state survives the fold.
func TestDurableAutoCompaction(t *testing.T) {
	g, labels := durableGenesis(t, 3, testSize)
	dir := t.TempDir()
	srv, err := NewDurable(g, dir, Options{Webhooks: notify.NewOutbox(), CompactAt: 1}) // every commit exceeds 1 byte
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		rec, _ := doJSON(t, srv, http.MethodPost, "/api/v1/commit", CommitRequest{
			Model: fmt.Sprintf("m%d", i), Predictions: goodPredictions(t, labels, 0.9, int64(10+i)),
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("commit %d status = %d", i, rec.Code)
		}
	}
	var m MetricsResponse
	if err := json.Unmarshal(getBody(t, srv, "/api/v1/metrics"), &m); err != nil {
		t.Fatal(err)
	}
	if m.WAL.Compactions == 0 {
		t.Errorf("no automatic compaction happened: %+v", m.WAL)
	}
	history := getBody(t, srv, "/api/v1/history")
	// Crash after compaction: restart restores from the snapshot.
	restarted, err := NewDurable(g, dir, Options{Webhooks: notify.NewOutbox(), CompactAt: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	if got := getBody(t, restarted, "/api/v1/history"); !bytes.Equal(got, history) {
		t.Errorf("history changed across compacted restart:\n%s\n%s", got, history)
	}
}

// TestNewDurableValidation: bad genesis inputs fail fast.
func TestNewDurableValidation(t *testing.T) {
	g, _ := durableGenesis(t, 3, testSize)
	if _, err := NewDurable(g, "", Options{}); err == nil {
		t.Error("empty data dir must fail")
	}
	bad := g
	bad.ModelPredictions = bad.ModelPredictions[:3]
	if _, err := NewDurable(bad, t.TempDir(), Options{}); err == nil {
		t.Error("mismatched genesis predictions must fail")
	}
	bad = g
	bad.Condition = "!!"
	if _, err := NewDurable(bad, t.TempDir(), Options{}); err == nil {
		t.Error("bad condition must fail")
	}
}

// TestDurableRestoredJobRunsWithProductionWorkers is the regression test
// for the startup race: with real (non-manual) queue workers, a job
// restored as queued must not execute before NewDurable has wired the
// engine journal and notifier — a job committing against a nil journal
// would fsync a commit record with no audit records, and every subsequent
// recovery would fail the audit cross-check, bricking the data dir. The
// deferred worker start makes the production auto-worker path run the
// restored job with its full audit trail, so a third start replays clean.
func TestDurableRestoredJobRunsWithProductionWorkers(t *testing.T) {
	g, labels := durableGenesis(t, 3, testSize)
	dir := t.TempDir()

	// Accept a job but never run it (manual queue), then crash.
	srv, err := NewDurable(g, dir, Options{ManualQueue: true, Webhooks: notify.NewOutbox()})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := doJSON(t, srv, http.MethodPost, "/api/v1/commit/async", AsyncCommitRequest{
		CommitRequest: CommitRequest{
			Model: "m", Author: "dev", Message: "x",
			Predictions: goodPredictions(t, labels, 0.9, 30),
		},
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("async status = %d: %s", rec.Code, rec.Body.String())
	}
	var acc JobAcceptedResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
		t.Fatal(err)
	}
	// Abandon without Close: the job is in the log as queued, unevaluated.

	// Restart on the production path: background workers, which execute
	// the restored job as soon as NewDurable releases them.
	revived, err := NewDurable(g, dir, Options{Webhooks: notify.NewOutbox()})
	if err != nil {
		t.Fatal(err)
	}
	if st := pollUntilTerminal(t, revived, acc.JobID); st.State != "done" {
		t.Fatalf("restored job = %+v, want done", st)
	}
	waitQuiescent(t, revived, 0)
	history := getBody(t, revived, "/api/v1/history")
	// Abandon again without Close (no compaction): the third start must
	// replay the raw log, including the restored job's charge/reveal
	// records written by the revived process.
	third, err := NewDurable(g, dir, Options{ManualQueue: true, Webhooks: notify.NewOutbox()})
	if err != nil {
		t.Fatalf("third start failed (restored job committed without its audit records?): %v", err)
	}
	defer third.Close()
	if got := getBody(t, third, "/api/v1/history"); !bytes.Equal(history, got) {
		t.Errorf("history diverged across restart:\n  before: %s\n  after:  %s", history, got)
	}
}

// TestDurableGenesisMismatch: a data directory is bound to the config
// fingerprint it was created under — restarting with different flags
// (reliability, testset size, ...) must fail loudly at recovery, on both
// the raw-log path (genesis record) and the post-compaction path
// (snapshot), while the original genesis keeps working.
func TestDurableGenesisMismatch(t *testing.T) {
	g, labels := durableGenesis(t, 3, testSize)
	dir := t.TempDir()
	srv, err := NewDurable(g, dir, Options{Webhooks: notify.NewOutbox()})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := doJSON(t, srv, http.MethodPost, "/api/v1/commit", CommitRequest{
		Model: "m0", Author: "dev", Message: "x",
		Predictions: goodPredictions(t, labels, 0.9, 10),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("commit status = %d: %s", rec.Code, rec.Body.String())
	}
	waitQuiescent(t, srv, 0)
	// Abandon without Close: the genesis record is still in the raw log.

	badRel := g
	badRel.Reliability = 0.95
	badSize := g
	badSize.Labels = g.Labels[:len(g.Labels)-2]
	badSize.ModelPredictions = g.ModelPredictions[:len(g.ModelPredictions)-2]
	for name, bad := range map[string]Genesis{"reliability": badRel, "testset size": badSize} {
		if s, err := NewDurable(bad, dir, Options{}); err == nil {
			s.Close()
			t.Fatalf("restart with different %s accepted the old data dir", name)
		} else if !strings.Contains(err.Error(), "fingerprint") {
			t.Errorf("%s mismatch error = %v, want a fingerprint error", name, err)
		}
	}

	// The original genesis still recovers; Close compacts, moving the
	// fingerprint into the snapshot.
	same, err := NewDurable(g, dir, Options{Webhooks: notify.NewOutbox()})
	if err != nil {
		t.Fatal(err)
	}
	same.Close()
	if s, err := NewDurable(badRel, dir, Options{}); err == nil {
		s.Close()
		t.Fatal("post-compaction restart with a different config accepted the old data dir")
	} else if !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("snapshot mismatch error = %v, want a fingerprint error", err)
	}
	final, err := NewDurable(g, dir, Options{Webhooks: notify.NewOutbox()})
	if err != nil {
		t.Fatal(err)
	}
	final.Close()
}
