package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"github.com/easeml/ci/internal/data"
	"github.com/easeml/ci/internal/engine"
	"github.com/easeml/ci/internal/interval"
	"github.com/easeml/ci/internal/labeling"
	"github.com/easeml/ci/internal/model"
	"github.com/easeml/ci/internal/notify"
	"github.com/easeml/ci/internal/queue"
	"github.com/easeml/ci/internal/script"
	"github.com/easeml/ci/internal/wal"
)

// errWALPoisoned is the answer of every mutating endpoint after a
// write-ahead append has failed: the in-memory state may be ahead of the
// log, so accepting further mutations would build on state a restart
// cannot reproduce. Reads keep working; a restart replays the log back
// to the last durable state and clears the condition.
var errWALPoisoned = errors.New("server: write-ahead log failed; state is read-only until restart")

// WAL record types. Submit/commit/cancel are the job lifecycle;
// reveal/charge/promote are the engine's audit trail within one commit
// (replay re-derives and cross-checks them); webhook closes the delivery
// loop; rotate is a testset rotation; rollback marks trailing audit
// records of a torn commit as discarded.
const (
	recTypeGenesis  = "genesis"
	recTypeSubmit   = "job.submit"
	recTypeCommit   = "job.commit"
	recTypeCancel   = "job.cancel"
	recTypeWebhook  = "webhook"
	recTypeRotate   = "rotate"
	recTypeReveal   = "reveal"
	recTypeCharge   = "charge"
	recTypePromote  = "promote"
	recTypeLooks    = "looks"
	recTypeRollback = "rollback"
	recTypePark     = "job.park"
)

// recGenesis is the first record of every fresh data directory: the
// fingerprint of the Genesis the log was created under, plus a
// human-readable summary for operators inspecting the log. Recovery
// refuses a log whose fingerprint does not match the supplied Genesis —
// restarting with different flags against an existing data dir would
// otherwise silently serve old state under a config the log never saw.
type recGenesis struct {
	Fingerprint string  `json:"fingerprint"`
	Condition   string  `json:"condition"`
	Reliability float64 `json:"reliability"`
	Adaptivity  string  `json:"adaptivity"`
	Steps       int     `json:"steps"`
	Examples    int     `json:"examples"`
	Classes     int     `json:"classes"`
	Model       string  `json:"model"`
}

type recSubmit struct {
	Job string             `json:"job"`
	Seq int                `json:"seq"`
	Req AsyncCommitRequest `json:"req"`
}

// recCommit is the exactly-once commit point of a job: Res holds the
// exact response bytes the client saw (Err the failure instead), and
// replay re-executes the commit and byte-compares.
type recCommit struct {
	Job string          `json:"job"`
	Res json.RawMessage `json:"res,omitempty"`
	Err string          `json:"err,omitempty"`
}

type recCancel struct {
	Job string `json:"job"`
}

type recWebhook struct {
	Job       string `json:"job"`
	URL       string `json:"url"`
	Delivered bool   `json:"delivered"`
	Attempts  int    `json:"attempts"`
	Err       string `json:"err,omitempty"`
}

type recRotate struct {
	Labels      []int `json:"labels"`
	ActivePreds []int `json:"active_preds"`
	Generation  int   `json:"generation"`
}

type recReveal struct {
	Count int `json:"count"`
}

type recCharge struct {
	Labels int `json:"labels"`
}

type recPromote struct {
	Model string `json:"model"`
}

// recLooks journals one commit's sequential-evaluation decision: replay
// re-derives it from the same look schedule and cross-checks, so a
// recovered server provably reproduced the live run's label charges.
// Only present in logs written with early decision enabled.
type recLooks struct {
	Looks int  `json:"looks"`
	Saved int  `json:"saved"`
	Early bool `json:"early,omitempty"`
}

type recRollback struct {
	Discarded int `json:"discarded"`
}

// recPark is the audit trail of a provider outage: the job entered the
// awaiting_labels state with this error. It never changes the job's
// recoverability — a parked job is recoverable because its submit record
// has no commit record yet, so replay re-enqueues it exactly like a job
// that was still queued at the crash.
type recPark struct {
	Job string `json:"job"`
	Err string `json:"err,omitempty"`
}

// Job table states (the WAL's materialized view of the queue).
const (
	jobQueued = "queued"
	jobDone   = "done"
	jobFailed = "failed"
)

// jobEntry mirrors one job's WAL records: what was submitted, how it
// ended, and whether its webhook outcome was recorded. The table exists
// so compaction can snapshot the queue without re-reading the log.
type jobEntry struct {
	ID          string             `json:"id"`
	Seq         int                `json:"seq"`
	Req         AsyncCommitRequest `json:"req"`
	State       string             `json:"state"`
	Res         json.RawMessage    `json:"res,omitempty"`
	Err         string             `json:"err,omitempty"`
	WebhookDone bool               `json:"webhook_done,omitempty"`
}

// walSnapshot is the compaction payload: the engine's full durable state
// plus the job table, covering every record up to the snapshot point.
// Genesis carries the config fingerprint forward once compaction has
// truncated the genesis record out of the log.
type walSnapshot struct {
	Genesis    string       `json:"genesis"`
	Engine     engine.State `json:"engine"`
	Jobs       []*jobEntry  `json:"jobs,omitempty"`
	NextJobSeq int          `json:"next_job_seq"`
}

// Genesis is the durable server's initial world: the script and the
// first testset with the deployed baseline's predictions on it. A fresh
// data directory is initialized from it and stamped with its
// fingerprint; on every later start the log is the truth for state, but
// the supplied Genesis must still fingerprint-match the stamp — a
// restart with different flags against an existing data dir is refused
// rather than silently serving old state under a new config. (It is the
// durable-mode analogue of building the engine yourself for
// NewWithOptions.)
type Genesis struct {
	// Condition, Reliability, Mode, Adaptivity, Steps define the script.
	Condition   string
	Reliability float64
	Mode        interval.Mode
	Adaptivity  script.Adaptivity
	Steps       int
	// Labels and Classes define the first testset (features are the
	// example indices, matching the rotation endpoint's convention).
	Labels  []int
	Classes int
	// ModelName and ModelPredictions are H0, the deployed baseline.
	ModelName        string
	ModelPredictions []int
}

func (g Genesis) config() (*script.Config, error) {
	return script.New(g.Condition, g.Reliability, g.Mode, g.Adaptivity, g.Steps)
}

// fingerprint hashes every Genesis field into the identity the data
// directory is bound to. A restart whose flags produce a different
// fingerprint is refused at recovery: the logged state was built under a
// different config and replaying it under the new one would be unsound.
func (g Genesis) fingerprint() string {
	b, _ := json.Marshal(struct {
		Condition   string
		Reliability float64
		Mode        interval.Mode
		Adaptivity  script.Adaptivity
		Steps       int
		Labels      []int
		Classes     int
		ModelName   string
		ModelPreds  []int
	}{g.Condition, g.Reliability, g.Mode, g.Adaptivity, g.Steps, g.Labels, g.Classes, g.ModelName, g.ModelPredictions})
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// genesisRecord shapes the fingerprint plus an operator-readable summary
// into the log's first record.
func (g Genesis) genesisRecord() recGenesis {
	return recGenesis{
		Fingerprint: g.fingerprint(),
		Condition:   g.Condition,
		Reliability: g.Reliability,
		Adaptivity:  g.Adaptivity.Kind.String(),
		Steps:       g.Steps,
		Examples:    len(g.Labels),
		Classes:     g.Classes,
		Model:       g.ModelName,
	}
}

// datasetFromLabels builds the index-featured dataset the HTTP surface
// trades in: example i has feature vector [i] and label labels[i].
func datasetFromLabels(name string, labels []int, classes int) (*data.Dataset, error) {
	ds := &data.Dataset{Name: name, Classes: classes}
	for i, y := range labels {
		if y < 0 || y >= classes {
			return nil, fmt.Errorf("label %d out of range at %d", y, i)
		}
		ds.X = append(ds.X, []float64{float64(i)})
		ds.Y = append(ds.Y, y)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// NewDurable builds a server whose state survives crashes: every
// externally acknowledged mutation (job accepted, commit evaluated, job
// canceled, testset rotated, webhook resolved) is in the write-ahead log
// under dataDir before the acknowledgment, and a restart replays
// snapshot + log through the same engine code to a byte-identical state
// — pending jobs re-enqueue and run exactly once, unresolved webhooks
// redeliver. Callers must Close the server to release the log.
func NewDurable(g Genesis, dataDir string, opts Options) (*Server, error) {
	if dataDir == "" {
		return nil, fmt.Errorf("server: durable mode needs a data directory")
	}
	cfg, err := g.config()
	if err != nil {
		return nil, err
	}
	if len(g.ModelPredictions) != len(g.Labels) {
		return nil, fmt.Errorf("server: genesis has %d model predictions for %d labels", len(g.ModelPredictions), len(g.Labels))
	}
	wlog, snap, records, err := wal.Open(dataDir, wal.Options{NoSync: opts.WALNoSync, WriteHook: opts.WALWriteHook, FS: opts.WALFS})
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	if snap == nil && len(records) == 0 {
		// Fresh data directory: stamp the config fingerprint as record 1,
		// before any state-bearing record can exist. Every later open
		// verifies it (or its copy in the snapshot) against the supplied
		// Genesis before trusting the logged state.
		if _, err := wlog.Append(recTypeGenesis, g.genesisRecord()); err == nil {
			err = wlog.Sync()
		}
		if err != nil {
			_ = wlog.Close()
			return nil, fmt.Errorf("server: stamping genesis: %w", err)
		}
	}
	d, err := recoverDurable(cfg, g, opts, snap, records)
	if err != nil {
		_ = wlog.Close()
		return nil, fmt.Errorf("server: recovery: %w", err)
	}
	d.log = wlog
	d.dir = dataDir
	if d.tornAudit > 0 {
		// A commit was mid-application at the crash: its audit records
		// have no commit record, so replay discarded them. Mark them
		// rolled back so the next replay doesn't fold them into a later
		// commit's audit trail.
		if _, err := wlog.Append(recTypeRollback, recRollback{Discarded: d.tornAudit}); err == nil {
			err = wlog.Sync()
		}
		if err != nil {
			_ = wlog.Close()
			return nil, fmt.Errorf("server: recovery rollback: %w", err)
		}
	}
	s, err := newServer(cfg, d.eng, opts, d)
	if err != nil {
		_ = wlog.Close()
		return nil, err
	}
	// Replay ran against a discard notifier (those notifications already
	// happened before the crash); live traffic gets the real one, and
	// from here every commit journals its side effects through the log.
	// The queue was built with DeferStart, so no worker exists yet and
	// these writes happen-before any restored job executes — a job
	// committing against a nil journal would fsync its commit record with
	// no audit trail and poison every future recovery.
	en := opts.EngineNotifier
	if en == nil {
		en = notify.NewOutbox()
	}
	d.eng.SetNotifier(en)
	d.eng.SetJournal(walJournal{s})
	// Redeliver webhooks of jobs that finished but whose delivery never
	// reached a recorded outcome (crash mid-backoff, or before the first
	// attempt). The retry queue applies its usual backoff and breakers.
	// Collect under tableMu first: the first Send puts the retry worker in
	// play, and its recorded outcomes mutate the table concurrently.
	s.tableMu.Lock()
	var redeliver []notify.Notification
	for _, id := range s.tableOrder {
		e := s.table[id]
		if e.State == jobQueued || e.Req.Webhook == "" || e.WebhookDone {
			continue
		}
		payload, merr := json.Marshal(e.status())
		if merr != nil {
			continue
		}
		redeliver = append(redeliver, notify.Notification{
			Kind:    notify.KindWebhook,
			To:      e.Req.Webhook,
			Subject: fmt.Sprintf("easeml-ci job %s %s", e.ID, e.State),
			Body:    string(payload),
		})
	}
	s.tableMu.Unlock()
	for _, n := range redeliver {
		_ = s.deliver.Send(n)
	}
	// Recovery wiring is complete; release the workers. Restored queued
	// jobs execute from here, with the journal and notifier in place.
	s.jobs.Start()
	return s, nil
}

// status shapes a table entry as the wire status its webhook carries —
// the restart-side twin of jobStatus.
func (e *jobEntry) status() JobStatusResponse {
	out := JobStatusResponse{JobID: e.ID, Seq: e.Seq, State: e.State}
	switch e.State {
	case jobDone:
		var r CommitResponse
		if json.Unmarshal(e.Res, &r) == nil {
			out.Result = &r
		}
	case jobFailed:
		out.Error = e.Err
	}
	return out
}

// recoverDurable rebuilds the engine and job table from snapshot +
// records. The engine is restored from the snapshot (or built fresh from
// genesis), then every logged commit re-executes through the identical
// evaluation path, with the result byte-compared against the logged
// response and the engine's journal cross-checked against the logged
// audit records — recovery fails loudly on any divergence rather than
// serving a history the log doesn't vouch for. Evaluation-affecting
// options (LabelQuota, EarlyDecision) follow the quota precedent: they
// are not fingerprinted, so the operator must keep them stable across
// restarts of a data directory — the byte-compare catches divergence.
func recoverDurable(cfg *script.Config, g Genesis, opts Options, snap *wal.Snapshot, records []wal.Record) (*durableState, error) {
	labelQuota := opts.LabelQuota
	d := &durableState{table: make(map[string]*jobEntry), fp: g.fingerprint()}
	var eng *engine.Engine
	if snap != nil {
		var ws walSnapshot
		if err := json.Unmarshal(snap.Data, &ws); err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
		if ws.Genesis != d.fp {
			return nil, fmt.Errorf("snapshot: config fingerprint %q does not match the supplied genesis %q — the data directory was created under a different configuration (condition, reliability, adaptivity, steps, or testset); point the server at a fresh data directory or restore the original flags", ws.Genesis, d.fp)
		}
		var err error
		eng, err = engine.Restore(cfg, ws.Engine, engine.Options{Notifier: notify.Discard{}, EarlyDecision: opts.EarlyDecision})
		if err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
		for _, e := range ws.Jobs {
			d.table[e.ID] = e
			d.order = append(d.order, e.ID)
		}
		d.nextSeq = ws.NextJobSeq
	} else {
		ds, err := datasetFromLabels("genesis", g.Labels, g.Classes)
		if err != nil {
			return nil, fmt.Errorf("genesis: %w", err)
		}
		eng, err = engine.New(cfg, ds, labeling.NewTruthOracle(ds.Y), engine.Options{
			InitialModel:  model.NewFixedPredictions(g.ModelName, g.ModelPredictions),
			Notifier:      notify.Discard{},
			EarlyDecision: opts.EarlyDecision,
		})
		if err != nil {
			return nil, fmt.Errorf("genesis: %w", err)
		}
	}
	d.eng = eng

	if snap == nil && len(records) > 0 && records[0].Type != recTypeGenesis {
		return nil, fmt.Errorf("record %d: log does not begin with a genesis record; cannot verify the data directory's configuration", records[0].Seq)
	}
	var audit []wal.Record
	for _, rec := range records {
		switch rec.Type {
		case recTypeGenesis:
			var r recGenesis
			if err := json.Unmarshal(rec.Data, &r); err != nil {
				return nil, fmt.Errorf("record %d (%s): %w", rec.Seq, rec.Type, err)
			}
			if r.Fingerprint != d.fp {
				return nil, fmt.Errorf("record %d: config fingerprint %q does not match the supplied genesis %q — the data directory was created under a different configuration (logged: condition %q, reliability %v, adaptivity %s, steps %d, %d examples, %d classes, model %q); point the server at a fresh data directory or restore the original flags",
					rec.Seq, r.Fingerprint, d.fp, r.Condition, r.Reliability, r.Adaptivity, r.Steps, r.Examples, r.Classes, r.Model)
			}
		case recTypeSubmit:
			var r recSubmit
			if err := json.Unmarshal(rec.Data, &r); err != nil {
				return nil, fmt.Errorf("record %d (%s): %w", rec.Seq, rec.Type, err)
			}
			if _, dup := d.table[r.Job]; dup {
				return nil, fmt.Errorf("record %d: duplicate submit for job %s", rec.Seq, r.Job)
			}
			e := &jobEntry{ID: r.Job, Seq: r.Seq, Req: r.Req, State: jobQueued}
			d.table[r.Job] = e
			d.order = append(d.order, r.Job)
			if r.Seq > d.nextSeq {
				d.nextSeq = r.Seq
			}
		case recTypeReveal, recTypeCharge, recTypePromote, recTypeLooks:
			audit = append(audit, rec)
		case recTypeRollback:
			audit = nil
		case recTypeCommit:
			var r recCommit
			if err := json.Unmarshal(rec.Data, &r); err != nil {
				return nil, fmt.Errorf("record %d (%s): %w", rec.Seq, rec.Type, err)
			}
			e := d.table[r.Job]
			if e == nil {
				return nil, fmt.Errorf("record %d: commit for unknown job %s", rec.Seq, r.Job)
			}
			v := &auditVerifier{pending: audit}
			eng.SetJournal(v)
			resp, err := evalCommit(cfg, eng, labelQuota, e.Req)
			eng.SetJournal(nil)
			audit = nil
			if v.err != nil {
				return nil, fmt.Errorf("record %d: job %s: %w", rec.Seq, r.Job, v.err)
			}
			if len(v.pending) != 0 {
				return nil, fmt.Errorf("record %d: job %s: %d logged audit records not reproduced by replay", rec.Seq, r.Job, len(v.pending))
			}
			if r.Err != "" {
				if err == nil || err.Error() != r.Err {
					return nil, fmt.Errorf("record %d: job %s: logged failure %q, replay got %v", rec.Seq, r.Job, r.Err, err)
				}
				e.State = jobFailed
				e.Err = r.Err
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("record %d: job %s: replay failed (%v) where the log has a success", rec.Seq, r.Job, err)
			}
			got, merr := json.Marshal(resp)
			if merr != nil {
				return nil, merr
			}
			if !bytes.Equal(got, []byte(r.Res)) {
				return nil, fmt.Errorf("record %d: job %s: replayed response diverges from log:\n  log:    %s\n  replay: %s", rec.Seq, r.Job, r.Res, got)
			}
			e.State = jobDone
			e.Res = r.Res
		case recTypeCancel:
			var r recCancel
			if err := json.Unmarshal(rec.Data, &r); err != nil {
				return nil, fmt.Errorf("record %d (%s): %w", rec.Seq, rec.Type, err)
			}
			e := d.table[r.Job]
			if e == nil {
				return nil, fmt.Errorf("record %d: cancel for unknown job %s", rec.Seq, r.Job)
			}
			e.State = jobFailed
			e.Err = queue.ErrCanceled.Error()
		case recTypeWebhook:
			var r recWebhook
			if err := json.Unmarshal(rec.Data, &r); err != nil {
				return nil, fmt.Errorf("record %d (%s): %w", rec.Seq, rec.Type, err)
			}
			if e := d.table[r.Job]; e != nil {
				e.WebhookDone = true
			}
		case recTypePark:
			// Audit only: the job parked on a provider outage. It has no
			// commit record (parking and recording are mutually exclusive by
			// construction), so the restore loop below re-enqueues it from
			// its submit record — restart IS the release path. Lenient on an
			// unknown job for the same reason webhook records are: the
			// record changes no state.
			var r recPark
			if err := json.Unmarshal(rec.Data, &r); err != nil {
				return nil, fmt.Errorf("record %d (%s): %w", rec.Seq, rec.Type, err)
			}
		case recTypeRotate:
			var r recRotate
			if err := json.Unmarshal(rec.Data, &r); err != nil {
				return nil, fmt.Errorf("record %d (%s): %w", rec.Seq, rec.Type, err)
			}
			classes := eng.Testsets().Current().Data.Classes
			next, err := datasetFromLabels("rotated", r.Labels, classes)
			if err != nil {
				return nil, fmt.Errorf("record %d (rotate): %w", rec.Seq, err)
			}
			active := model.NewFixedPredictions(eng.ActiveModelName(), r.ActivePreds)
			if err := eng.RotateTestset(next, labeling.NewTruthOracle(next.Y), active); err != nil {
				return nil, fmt.Errorf("record %d (rotate): %w", rec.Seq, err)
			}
			if got := eng.Testsets().Current().Generation; r.Generation != 0 && got != r.Generation {
				return nil, fmt.Errorf("record %d (rotate): replayed generation %d, log says %d", rec.Seq, got, r.Generation)
			}
		default:
			return nil, fmt.Errorf("record %d: unknown type %q", rec.Seq, rec.Type)
		}
	}
	// Trailing audit records (a commit that crashed mid-application):
	// discard — the replayed engine never executed that commit, so the
	// recovered state is the pre-record state.
	d.tornAudit = len(audit)

	// Hand the table to the queue as restore entries, in submission
	// order.
	for _, id := range d.order {
		e := d.table[id]
		r := queue.Restored[AsyncCommitRequest, CommitResponse]{ID: e.ID, Seq: e.Seq, Req: e.Req}
		switch e.State {
		case jobDone:
			r.State = queue.Done
			if err := json.Unmarshal(e.Res, &r.Res); err != nil {
				return nil, fmt.Errorf("job %s: stored response: %w", e.ID, err)
			}
		case jobFailed:
			r.State = queue.Failed
			r.Err = e.Err
		default:
			r.State = queue.Queued
		}
		d.restored = append(d.restored, r)
	}
	return d, nil
}

// auditVerifier is the replay-time engine journal: instead of appending,
// it consumes the logged audit records and fails on any divergence
// between what replay derives and what the live run logged.
type auditVerifier struct {
	pending []wal.Record
	err     error
}

func (v *auditVerifier) take(typ string, payload any) error {
	if v.err != nil {
		return v.err
	}
	if len(v.pending) == 0 {
		v.err = fmt.Errorf("replay produced a %s record the log does not have", typ)
		return v.err
	}
	rec := v.pending[0]
	v.pending = v.pending[1:]
	want, merr := json.Marshal(payload)
	if merr != nil {
		v.err = merr
		return v.err
	}
	if rec.Type != typ || !bytes.Equal(want, []byte(rec.Data)) {
		v.err = fmt.Errorf("replay produced %s %s, log has %s %s", typ, want, rec.Type, rec.Data)
		return v.err
	}
	return nil
}

func (v *auditVerifier) JournalReveal(count int) error {
	return v.take(recTypeReveal, recReveal{Count: count})
}
func (v *auditVerifier) JournalCharge(labels int) error {
	return v.take(recTypeCharge, recCharge{Labels: labels})
}
func (v *auditVerifier) JournalPromote(m string) error {
	return v.take(recTypePromote, recPromote{Model: m})
}
func (v *auditVerifier) JournalLooks(looks, saved int, early bool) error {
	return v.take(recTypeLooks, recLooks{Looks: looks, Saved: saved, Early: early})
}

// walJournal is the live-traffic engine journal: every engine side
// effect inside a commit is appended (unsynced — the commit record's
// fsync makes the whole transaction durable at once). An append failure
// poisons the server and aborts the commit mid-application; the restart
// replays to the pre-commit state.
type walJournal struct{ s *Server }

func (j walJournal) append(typ string, payload any) error {
	if _, err := j.s.wlog.Append(typ, payload); err != nil {
		j.s.walFailed.Store(true)
		return fmt.Errorf("%w: %v", errWALPoisoned, err)
	}
	return nil
}

func (j walJournal) JournalReveal(count int) error {
	return j.append(recTypeReveal, recReveal{Count: count})
}
func (j walJournal) JournalCharge(labels int) error {
	return j.append(recTypeCharge, recCharge{Labels: labels})
}
func (j walJournal) JournalPromote(m string) error {
	return j.append(recTypePromote, recPromote{Model: m})
}
func (j walJournal) JournalLooks(looks, saved int, early bool) error {
	return j.append(recTypeLooks, recLooks{Looks: looks, Saved: saved, Early: early})
}

// walAppendSyncLocked appends one record and fsyncs, poisoning the
// server on failure. Callers hold tableMu (the append-side half of the
// compaction freeze).
func (s *Server) walAppendSyncLocked(typ string, payload any) error {
	_, err := s.wlog.Append(typ, payload)
	if err == nil {
		err = s.wlog.Sync()
	}
	if err != nil {
		s.walFailed.Store(true)
		return fmt.Errorf("%w: %v", errWALPoisoned, err)
	}
	return nil
}

// walOnSubmit runs under the queue lock before a job is enqueued: the
// submit record reaches disk before the 202 is possible, so an accepted
// job is always a recoverable job. An append failure aborts the
// submission (no job exists) and poisons the server.
func (s *Server) walOnSubmit(j *queue.Job[AsyncCommitRequest, CommitResponse]) error {
	if s.walFailed.Load() {
		return errWALPoisoned
	}
	s.tableMu.Lock()
	defer s.tableMu.Unlock()
	if err := s.walAppendSyncLocked(recTypeSubmit, recSubmit{Job: j.ID, Seq: j.Seq, Req: j.Req}); err != nil {
		return err
	}
	s.table[j.ID] = &jobEntry{ID: j.ID, Seq: j.Seq, Req: j.Req, State: jobQueued}
	s.tableOrder = append(s.tableOrder, j.ID)
	if j.Seq > s.tableNextSeq {
		s.tableNextSeq = j.Seq
	}
	return nil
}

// walOnCancel runs under the queue lock before a cancelable job's state
// changes: record first, cancel second, so a canceled job can never
// resurrect as queued after a crash.
func (s *Server) walOnCancel(j *queue.Job[AsyncCommitRequest, CommitResponse]) error {
	if s.walFailed.Load() {
		return errWALPoisoned
	}
	s.tableMu.Lock()
	defer s.tableMu.Unlock()
	if err := s.walAppendSyncLocked(recTypeCancel, recCancel{Job: j.ID}); err != nil {
		return err
	}
	if e := s.table[j.ID]; e != nil {
		e.State = jobFailed
		e.Err = queue.ErrCanceled.Error()
	}
	return nil
}

// Compact freezes the server (engine lock + table lock, which together
// block every appender), snapshots the engine and job table, and asks
// the log to swap its records for the snapshot. The job table is pruned
// first: terminal jobs with a resolved (or absent) webhook beyond the
// queue's retain bound need never be recovered.
func (s *Server) Compact() error {
	if s.wlog == nil {
		return fmt.Errorf("server: not a durable server")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Server) compactLocked() error {
	if s.walFailed.Load() {
		// The in-memory state is ahead of the log (an append failed after
		// the engine already applied the mutation). Snapshotting it would
		// promote exactly the un-journaled state a restart exists to roll
		// back — refuse, and leave nothing on disk.
		return fmt.Errorf("%w: refusing to snapshot state the log does not vouch for", errWALPoisoned)
	}
	s.tableMu.Lock()
	defer s.tableMu.Unlock()
	s.pruneTableLocked()
	jobs := make([]*jobEntry, 0, len(s.tableOrder))
	for _, id := range s.tableOrder {
		jobs = append(jobs, s.table[id])
	}
	snap := walSnapshot{Genesis: s.genesisFP, Engine: s.eng.Snapshot(), Jobs: jobs, NextJobSeq: s.tableNextSeq}
	if err := s.wlog.Compact(snap); err != nil {
		s.walFailed.Store(true)
		return fmt.Errorf("%w: %v", errWALPoisoned, err)
	}
	return nil
}

// pruneTableLocked drops terminal, delivery-resolved jobs beyond the
// retain bound (newest kept), mirroring the queue's own eviction: a job
// the queue would no longer answer polls for need not be recovered.
func (s *Server) pruneTableLocked() {
	prunable := 0
	for _, id := range s.tableOrder {
		if s.tableEntryPrunable(s.table[id]) {
			prunable++
		}
	}
	drop := prunable - s.retain
	if drop <= 0 {
		return
	}
	kept := s.tableOrder[:0]
	for _, id := range s.tableOrder {
		if drop > 0 && s.tableEntryPrunable(s.table[id]) {
			delete(s.table, id)
			drop--
			continue
		}
		kept = append(kept, id)
	}
	s.tableOrder = kept
}

func (s *Server) tableEntryPrunable(e *jobEntry) bool {
	return e != nil && e.State != jobQueued && (e.Req.Webhook == "" || e.WebhookDone)
}

// maybeCompactLocked auto-compacts once the log outgrows the threshold.
// Caller holds s.mu.
func (s *Server) maybeCompactLocked() {
	if s.wlog == nil || s.compactAt <= 0 || s.walFailed.Load() {
		return
	}
	if s.wlog.Size() >= s.compactAt {
		_ = s.compactLocked()
	}
}

// WALStats reports the write-ahead log's counters (replayed records,
// torn bytes truncated, snapshot seq, ...); nil on an in-memory server.
// The serving process logs these at startup so an operator can see what
// recovery did.
func (s *Server) WALStats() *wal.Stats {
	if s.wlog == nil {
		return nil
	}
	st := s.wlog.Stats()
	return &st
}

// handleAdminCompact snapshots and truncates the write-ahead log on
// demand, returning the post-compaction log stats.
func (s *Server) handleAdminCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.wlog == nil {
		writeError(w, http.StatusConflict, "server is not durable (no data directory)")
		return
	}
	if err := s.Compact(); err != nil {
		writeStorageError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, s.wlog.Stats())
}
