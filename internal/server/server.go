// Package server exposes the CI engine over HTTP — the hosted face of the
// Figure 1 workflow. A developer's test script produces a prediction vector
// for the current testset and POSTs it as a commit; the server replies with
// the (adaptivity-filtered) signal, and the integration team reads status,
// plans, and history, and rotates testsets when the alarm fires.
//
// Endpoints (JSON):
//
//	GET  /api/v1/plan     the labeling plan for the configured script
//	GET  /api/v1/status   testset generation/budget, active model, label cost
//	GET  /api/v1/history  evaluation results so far
//	POST /api/v1/commit   {"model":..., "author":..., "message":..., "predictions":[...]}
//	POST /api/v1/testset  {"labels":[...], "active_predictions":[...]}  (rotation)
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"github.com/easeml/ci/internal/data"
	"github.com/easeml/ci/internal/engine"
	"github.com/easeml/ci/internal/labeling"
	"github.com/easeml/ci/internal/model"
	"github.com/easeml/ci/internal/script"
)

// Server wraps an engine behind an http.Handler. The engine is not
// concurrency-safe; the server serializes all mutating requests.
type Server struct {
	mu  sync.Mutex
	eng *engine.Engine
	cfg *script.Config
	mux *http.ServeMux
}

// New builds a server around an existing engine and its script config.
func New(cfg *script.Config, eng *engine.Engine) (*Server, error) {
	if cfg == nil || eng == nil {
		return nil, fmt.Errorf("server: nil config or engine")
	}
	s := &Server{eng: eng, cfg: cfg, mux: http.NewServeMux()}
	s.mux.HandleFunc("/api/v1/plan", s.handlePlan)
	s.mux.HandleFunc("/api/v1/status", s.handleStatus)
	s.mux.HandleFunc("/api/v1/history", s.handleHistory)
	s.mux.HandleFunc("/api/v1/commit", s.handleCommit)
	s.mux.HandleFunc("/api/v1/testset", s.handleRotate)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// --- wire types ---------------------------------------------------------

// PlanResponse mirrors core.Plan for the API.
type PlanResponse struct {
	Kind            string  `json:"kind"`
	Condition       string  `json:"condition"`
	Reliability     float64 `json:"reliability"`
	Steps           int     `json:"steps"`
	BaselineLabels  int     `json:"baseline_labels"`
	LabeledN        int     `json:"labeled_examples"`
	UnlabeledN      int     `json:"unlabeled_examples"`
	PerCommitLabels int     `json:"per_commit_labels"`
}

// StatusResponse reports the engine's current state.
type StatusResponse struct {
	ActiveModel       string `json:"active_model"`
	TestsetGeneration int    `json:"testset_generation"`
	TestsetSize       int    `json:"testset_size"`
	BudgetUsed        int    `json:"budget_used"`
	BudgetTotal       int    `json:"budget_total"`
	CanEvaluate       bool   `json:"can_evaluate"`
	LabelsSpent       int    `json:"labels_spent"`
	Commits           int    `json:"commits"`
}

// CommitRequest is a developer's model submission: the prediction vector
// their test script produced on the current testset.
type CommitRequest struct {
	Model       string `json:"model"`
	Author      string `json:"author"`
	Message     string `json:"message"`
	Predictions []int  `json:"predictions"`
}

// CommitResponse is what the developer gets back. True outcomes are only
// included when the adaptivity mode permits releasing them.
type CommitResponse struct {
	CommitID       string             `json:"commit_id"`
	Step           int                `json:"step"`
	Signal         bool               `json:"signal"`
	Truth          string             `json:"truth,omitempty"`
	Pass           *bool              `json:"pass,omitempty"`
	Estimates      map[string]float64 `json:"estimates,omitempty"`
	FreshLabels    int                `json:"fresh_labels"`
	NeedNewTestset bool               `json:"need_new_testset"`
}

// RotateRequest installs a fresh testset: its labels, plus the active
// model's predictions on it (predictions are testset-specific).
type RotateRequest struct {
	Labels            []int `json:"labels"`
	ActivePredictions []int `json:"active_predictions"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// --- handlers -----------------------------------------------------------

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.eng.Plan()
	writeJSON(w, http.StatusOK, PlanResponse{
		Kind:            p.Kind.String(),
		Condition:       s.cfg.ConditionSrc,
		Reliability:     s.cfg.Reliability,
		Steps:           s.cfg.Steps,
		BaselineLabels:  p.BaselinePlan.N,
		LabeledN:        p.LabeledN,
		UnlabeledN:      p.UnlabeledN,
		PerCommitLabels: p.PerCommitLabels,
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tsm := s.eng.Testsets()
	writeJSON(w, http.StatusOK, StatusResponse{
		ActiveModel:       s.eng.ActiveModelName(),
		TestsetGeneration: tsm.Current().Generation,
		TestsetSize:       tsm.Current().Len(),
		BudgetUsed:        tsm.Budget() - tsm.Remaining(),
		BudgetTotal:       tsm.Budget(),
		CanEvaluate:       tsm.CanEvaluate(),
		LabelsSpent:       s.eng.LabelCost().Total(),
		Commits:           s.eng.Repository().Len(),
	})
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	history := s.eng.History()
	out := make([]CommitResponse, 0, len(history))
	for _, res := range history {
		out = append(out, s.resultToResponse(res))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req CommitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return
	}
	if req.Model == "" {
		writeError(w, http.StatusBadRequest, "model name required")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if got, want := len(req.Predictions), s.eng.Testsets().Current().Len(); got != want {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("predictions length %d != testset size %d", got, want))
		return
	}
	res, err := s.eng.Commit(model.NewFixedPredictions(req.Model, req.Predictions), req.Author, req.Message)
	if errors.Is(err, engine.ErrNeedNewTestset) {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, s.resultToResponse(res))
}

func (s *Server) handleRotate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req RotateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return
	}
	if len(req.Labels) == 0 || len(req.Labels) != len(req.ActivePredictions) {
		writeError(w, http.StatusBadRequest, "labels and active_predictions must be non-empty and equal length")
		return
	}
	classes := s.cfgClasses()
	next := &data.Dataset{Name: "rotated", Classes: classes}
	for i, y := range req.Labels {
		if y < 0 || y >= classes {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("label %d out of range at %d", y, i))
			return
		}
		next.X = append(next.X, []float64{float64(i)})
		next.Y = append(next.Y, y)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	active := model.NewFixedPredictions(s.eng.ActiveModelName(), req.ActivePredictions)
	if err := s.eng.RotateTestset(next, labeling.NewTruthOracle(next.Y), active); err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": s.eng.Testsets().Current().Generation,
	})
}

// cfgClasses infers the label alphabet from the installed testset.
func (s *Server) cfgClasses() int {
	return s.eng.Testsets().Current().Data.Classes
}

// resultToResponse applies the adaptivity mode's information flow: in the
// non-adaptive mode the developer-facing API must not reveal the truth.
func (s *Server) resultToResponse(res engine.Result) CommitResponse {
	out := CommitResponse{
		CommitID:       res.Commit.ID,
		Step:           res.Step,
		Signal:         res.Signal,
		FreshLabels:    res.FreshLabels,
		NeedNewTestset: res.NeedNewTestset,
	}
	if s.cfg.Adaptivity.Kind != script.AdaptivityNone {
		out.Truth = res.Truth.String()
		pass := res.Pass
		out.Pass = &pass
		out.Estimates = map[string]float64{}
		for v, x := range res.Estimates {
			// Keys are the condition-language variables n, o, d.
			out.Estimates[string(v)] = x
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
