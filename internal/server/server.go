// Package server exposes the CI engine over HTTP — the hosted face of the
// Figure 1 workflow. A developer's test script produces a prediction vector
// for the current testset and POSTs it as a commit; the server replies with
// the (adaptivity-filtered) signal, and the integration team reads status,
// plans, and history, and rotates testsets when the alarm fires.
//
// Endpoints (JSON):
//
//	GET  /api/v1/plan        the labeling plan; optional query parameters
//	                         (condition, reliability, steps, adaptivity)
//	                         override the configured script for ad-hoc plan
//	                         queries — unknown parameters are rejected with
//	                         400, and a parameter set equal to the server's
//	                         own config is served with the engine's planner
//	                         options, exactly as the engine enforces it
//	POST /api/v1/plan/batch  {"queries":[{condition?, reliability?, steps?,
//	                         adaptivity?}, ...]} — up to MaxBatchQueries
//	                         plan queries resolved in one request, fanned
//	                         across the worker pool, with per-item results
//	                         or errors; amortizes HTTP overhead for
//	                         dashboard sweeps
//	GET  /api/v1/status      testset generation/budget, active model, label cost
//	GET  /api/v1/history     evaluation results so far
//	GET  /api/v1/metrics     plan-cache, exact-bound-memo, worst-case-sweep,
//	                         commit-queue, and webhook counters
//	POST /api/v1/commit      {"model":..., "author":..., "message":..., "predictions":[...]}
//	POST /api/v1/commit/async       same payload plus optional "webhook";
//	                                202 + job ID, evaluated FIFO off the queue
//	GET  /api/v1/commit/jobs/{id}   poll one job (DELETE cancels it while queued)
//	POST /api/v1/testset     {"labels":[...], "active_predictions":[...]}  (rotation)
//	POST /api/v1/admin/reset-caches clear plan cache + exact-bound memo,
//	                                returning the pre-reset counters
//
// All plans — single and batch — are served through the sharded LRU plan
// cache (internal/planner), so concurrent plan traffic neither recomputes
// identical plans nor serializes on a single cache mutex; /api/v1/metrics
// exposes the aggregated per-shard hit/miss/entry counters.
//
// Commits — synchronous and asynchronous — flow through one bounded FIFO
// queue (internal/queue) drained into engine.Commit: POST /api/v1/commit
// enqueues and waits, POST /api/v1/commit/async enqueues and returns 202
// immediately. Both paths execute the identical code, so for the same
// commit sequence they produce byte-identical CommitResponses and engine
// history; a burst of submissions is absorbed as queued jobs instead of
// stacking callers on the engine lock.
//
// # Storage fault tolerance
//
// Durable state is guarded at three layers.
//
// The salvage guarantee: wal.Fsck classifies on-disk damage (torn tail,
// mid-log corruption, snapshot CRC mismatch) and wal.Salvage recovers
// the longest valid prefix — after salvage, replaying the log is
// byte-identical to replaying the undamaged prefix of the original —
// while every byte cut away is preserved in a *.quarantine file beside
// the log, never silently dropped. The easeml-ci-server -fsck and
// -salvage flags run these offline; MultiOptions.AutoSalvage (the
// -auto-salvage flag) runs salvage at boot.
//
// Degraded read-only mode: a write-ahead append failure poisons only
// that tenant's mutations, which answer 503 with the structured body
// {"error":..., "degraded":true, "reason":"wal_poisoned"}; reads keep
// serving the last durable state. A tenant whose state refuses to open
// at boot is marked salvage-required (reason "salvage_required") and
// answers the same structured 503 — one sick project never takes the
// control plane or its healthy tenants down. GET /healthz (always 200)
// and GET /readyz (503 unless every tenant's storage is ok) report
// per-tenant WAL health, queue depth, parked jobs, and the label
// oracle's breaker state; /api/v1/metrics carries the same storage
// counters per tenant and globally, and the admin cache reset never
// clears them.
//
// Online backup: POST /api/v1/admin/backup streams a consistent
// snapshot+log tarball without pausing intake — scoped with ?project=
// for one tenant, unscoped for the whole control plane including the
// _control registry log and the raw (quarantines included) bytes of any
// sick tenant. RestoreBackup (the -restore flag) adopts a tarball into
// a fresh data directory only after the backup's genesis fingerprint
// matches the server's configuration.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/easeml/ci/internal/bounds"
	"github.com/easeml/ci/internal/core"
	"github.com/easeml/ci/internal/data"
	"github.com/easeml/ci/internal/engine"
	"github.com/easeml/ci/internal/labeling"
	"github.com/easeml/ci/internal/model"
	"github.com/easeml/ci/internal/notify"
	"github.com/easeml/ci/internal/parallel"
	"github.com/easeml/ci/internal/planner"
	"github.com/easeml/ci/internal/queue"
	"github.com/easeml/ci/internal/resilience"
	"github.com/easeml/ci/internal/script"
	"github.com/easeml/ci/internal/wal"
)

// Server wraps an engine behind an http.Handler. The engine is not
// concurrency-safe; all commit evaluation is serialized through the job
// queue and the engine lock. Plan queries are read-only and served
// through the plan cache without touching the engine lock.
type Server struct {
	mu    sync.Mutex
	eng   *engine.Engine
	cfg   *script.Config
	mux   *http.ServeMux
	plans *planner.Cache

	jobs     *queue.Queue[AsyncCommitRequest, CommitResponse]
	webhooks notify.Notifier
	// deliver wraps the webhook notifier with the durable retry queue:
	// exponential backoff, bounded attempts, and per-subscriber circuit
	// breakers. All webhook traffic flows through it.
	deliver        *notify.Reliable
	webhooksSent   atomic.Uint64
	webhooksFailed atomic.Uint64

	// Durable-mode state (nil/zero when the server is in-memory). wlog is
	// the write-ahead log; every externally visible state change appends
	// a record before (or atomically with) being acknowledged. walFailed
	// poisons the server after an append failure: mutating endpoints
	// answer 503 until a restart replays the log back to the last durable
	// state. table mirrors the WAL's job records so compaction can
	// snapshot them without re-reading the log; tableMu guards it and
	// every WAL append outside the engine lock (lock order: s.mu or the
	// queue's lock, then tableMu, then the log's internal leaf mutex —
	// Compact holds s.mu+tableMu, freezing all appenders).
	wlog         *wal.Log
	walFailed    atomic.Bool
	genesisFP    string
	dataDir      string
	salvageRuns  atomic.Uint64
	backups      atomic.Uint64
	backupBytes  atomic.Uint64
	tableMu      sync.Mutex
	table        map[string]*jobEntry
	tableOrder   []string
	tableNextSeq int
	compactAt    int64
	retain       int

	// commitsEvaluated / commitEvalNs track the measurement core's served
	// throughput: successful engine evaluations and the cumulative wall
	// time spent inside engine.Commit.
	commitsEvaluated atomic.Uint64
	commitEvalNs     atomic.Uint64
	// labelsSaved / earlyExits / lookHist track the sequential
	// evaluation's label economy: oracle labels not spent versus the
	// static plan, commits whose verdict was forced early, and a
	// histogram of how many looks each early exit took (the last bucket
	// absorbs deeper exits).
	labelsSaved atomic.Uint64
	earlyExits  atomic.Uint64
	lookHist    [lookHistBuckets]atomic.Uint64

	// Multi-tenant wiring: scheduler notifications and the tenant's label
	// budget (see Options.OnEnqueue/OnDequeue/LabelQuota).
	onEnqueue  func()
	onDequeue  func()
	labelQuota int

	// Remote label sourcing (see Options.OracleFactory). oracle is the
	// current generation's label source when a factory is installed; the
	// release timer resumes parked jobs once the provider's suggested
	// retry delay elapses.
	oracleFactory func(gen int, truth []int) labeling.Oracle
	oracleMu      sync.Mutex // guards oracle: rotation swaps it while metrics read it
	oracle        labeling.Oracle
	manualRelease bool
	releaseMu     sync.Mutex
	releaseTimer  *time.Timer
}

// Options tunes the server's asynchronous commit pipeline. The zero value
// is the production default.
type Options struct {
	// QueueCapacity bounds the pending commit backlog (0 means
	// queue.DefaultCapacity); a full backlog answers 503.
	QueueCapacity int
	// QueueRetain bounds how many finished jobs stay pollable.
	QueueRetain int
	// ManualQueue disables the background workers so a test can step the
	// queue deterministically via RunNextJob.
	ManualQueue bool
	// Clock stamps job transitions (tests inject a counter).
	Clock queue.Clock
	// Webhooks delivers job-finished callbacks; nil means real HTTP
	// delivery (notify.NewHTTPPoster). Tests inject a notify.Outbox.
	Webhooks notify.Notifier
	// RetryPolicy tunes webhook redelivery (backoff, attempts, circuit
	// breakers); the zero value means the notify defaults.
	RetryPolicy notify.RetryPolicy
	// RetryClock / RetryJitter make retry scheduling deterministic in
	// tests; nil means wall clock and math/rand.
	RetryClock  func() time.Time
	RetryJitter func() float64
	// ManualRetry disables the webhook retry worker; deliveries happen
	// only via RunDueWebhooks — the deterministic test harness.
	ManualRetry bool
	// WALNoSync skips fsync on the write-ahead log (durable servers
	// only); crash-consistency tests and benchmarks set it.
	WALNoSync bool
	// WALWriteHook sees every encoded WAL record before it is written;
	// returning an error fails the append. Disk-failure tests inject
	// faults here (durable servers only).
	WALWriteHook func(line []byte) error
	// WALFS is the filesystem the write-ahead log goes through; nil means
	// the real one. Disk-fault tests inject a faultfs.FS here to script
	// byte-level failures (ENOSPC, short writes, fsync errors) under the
	// full server stack (durable servers only).
	WALFS wal.FS
	// CompactAt triggers automatic WAL compaction when the log exceeds
	// this many bytes (durable servers only). 0 means DefaultCompactAt;
	// negative disables automatic compaction.
	CompactAt int64
	// EngineNotifier receives the engine's third-party results and
	// alarms in durable mode (NewDurable builds the engine itself); nil
	// means an in-memory outbox.
	EngineNotifier notify.Notifier
	// OnEnqueue runs under the queue lock, atomically with a commit job's
	// acceptance (sync or async path) and after its submit record is
	// durable; a multi-tenant front end kicks the shared scheduler here.
	// The lock is what makes a shutdown racing the submit observe either
	// no job or a kicked job — never an accepted job the scheduler missed.
	// OnDequeue runs under the queue lock after a queued job is canceled,
	// taking the kick back. Nil means no-op.
	OnEnqueue func()
	OnDequeue func()
	// LabelQuota caps the tenant's cumulative label spend: once the
	// engine's label cost reaches it, further commits are rejected with a
	// quota error (HTTP 429). 0 means unlimited. The check runs inside
	// the shared evaluation path, so in durable mode quota rejections
	// journal and replay deterministically — which also means the quota
	// must not shrink across restarts of a durable server, or recovery
	// will refuse the log (a commit the log accepted would now be
	// rejected by replay).
	LabelQuota int
	// EarlyDecision tunes (or disables) the engine's sequential
	// early-exit evaluation. Like LabelQuota it shapes what the
	// evaluation path does, so it must stay stable across restarts of a
	// durable server — replaying a log written under different
	// early-decision settings charges different labels and recovery
	// refuses the divergence.
	EarlyDecision engine.EarlyDecision
	// OracleFactory, when set, sources labels externally: it is called
	// with a testset generation and that generation's ground-truth labels
	// and returns the label oracle commits reveal through (typically a
	// labeling.Resilient around an HTTP transport; the truth slice lets
	// tests wire fault harnesses). Nil answers labels in-process from the
	// testset itself. The factory's oracle is installed after recovery
	// replay — replay always uses the in-process truth oracle, because
	// labels already paid for must never hit the remote provider again —
	// and again on every rotation, with the new generation's number.
	// A commit that fails with labeling.ErrUnavailable parks its job
	// (state "awaiting_labels") instead of failing it; parked jobs resume
	// automatically when the provider's suggested retry delay elapses,
	// and survive restarts as re-enqueued work.
	OracleFactory func(gen int, truth []int) labeling.Oracle
	// ManualRelease disables the automatic parked-job release timer;
	// parked jobs resume only via ReleaseParked — the deterministic test
	// harness, the parked-state counterpart of ManualQueue/ManualRetry.
	ManualRelease bool
}

// Parked-job release pacing: a provider hint (Retry-After, breaker
// cooldown) sets the release delay, floored so a zero hint cannot
// hot-loop park/release cycles; DefaultParkRelease applies when the
// outage carried no hint at all.
const (
	DefaultParkRelease = 15 * time.Second
	MinParkRelease     = time.Second
)

// DefaultCompactAt is the automatic WAL compaction threshold.
const DefaultCompactAt = 4 << 20

// lookHistBuckets sizes the early-exit look histogram. A geometric look
// schedule decides in O(log n) looks, so 16 buckets cover testsets far
// beyond anything the planner emits; deeper exits land in the last one.
const lookHistBuckets = 16

// recordSavings folds one successful commit's label economy into the
// serving counters.
func (s *Server) recordSavings(resp CommitResponse) {
	if resp.LabelsSaved > 0 {
		s.labelsSaved.Add(uint64(resp.LabelsSaved))
	}
	if resp.EarlyExit {
		s.earlyExits.Add(1)
		b := resp.Looks
		if b >= lookHistBuckets {
			b = lookHistBuckets - 1
		}
		s.lookHist[b].Add(1)
	}
}

// lookHistSnapshot reads the early-exit look histogram, trimming
// trailing zero buckets (nil when no early exit happened yet).
func (s *Server) lookHistSnapshot() []uint64 {
	out := make([]uint64, lookHistBuckets)
	for i := range s.lookHist {
		out[i] = s.lookHist[i].Load()
	}
	n := len(out)
	for n > 0 && out[n-1] == 0 {
		n--
	}
	if n == 0 {
		return nil
	}
	return out[:n]
}

// New builds a server around an existing engine and its script config,
// with default options.
func New(cfg *script.Config, eng *engine.Engine) (*Server, error) {
	return NewWithOptions(cfg, eng, Options{})
}

// NewWithOptions builds a server with an explicitly configured commit
// queue. Callers must Close the server to drain the queue on shutdown.
func NewWithOptions(cfg *script.Config, eng *engine.Engine, opts Options) (*Server, error) {
	return newServer(cfg, eng, opts, nil)
}

// NewFromGenesis builds an in-memory server from the same Genesis a
// durable server starts from: script, first testset, and baseline model,
// but no write-ahead log — state dies with the process. It is how a
// multi-project control plane without a data directory instantiates
// tenants from their registered specs.
func NewFromGenesis(g Genesis, opts Options) (*Server, error) {
	cfg, err := g.config()
	if err != nil {
		return nil, err
	}
	if len(g.ModelPredictions) != len(g.Labels) {
		return nil, fmt.Errorf("server: genesis has %d model predictions for %d labels", len(g.ModelPredictions), len(g.Labels))
	}
	ds, err := datasetFromLabels("genesis", g.Labels, g.Classes)
	if err != nil {
		return nil, fmt.Errorf("server: genesis: %w", err)
	}
	en := opts.EngineNotifier
	if en == nil {
		en = notify.NewOutbox()
	}
	eng, err := engine.New(cfg, ds, labeling.NewTruthOracle(ds.Y), engine.Options{
		InitialModel:  model.NewFixedPredictions(g.ModelName, g.ModelPredictions),
		Notifier:      en,
		EarlyDecision: opts.EarlyDecision,
	})
	if err != nil {
		return nil, fmt.Errorf("server: genesis: %w", err)
	}
	return newServer(cfg, eng, opts, nil)
}

// durableState carries the recovered write-ahead state from NewDurable
// into the shared constructor; nil means an in-memory server.
type durableState struct {
	log       *wal.Log
	eng       *engine.Engine
	dir       string // the data directory (for fsck/quarantine accounting)
	fp        string // genesis config fingerprint, re-stamped into snapshots
	table     map[string]*jobEntry
	order     []string
	nextSeq   int
	restored  []queue.Restored[AsyncCommitRequest, CommitResponse]
	tornAudit int
}

func newServer(cfg *script.Config, eng *engine.Engine, opts Options, d *durableState) (*Server, error) {
	if cfg == nil || eng == nil {
		return nil, fmt.Errorf("server: nil config or engine")
	}
	s := &Server{eng: eng, cfg: cfg, mux: http.NewServeMux(), plans: planner.Default}
	s.onEnqueue = opts.OnEnqueue
	s.onDequeue = opts.OnDequeue
	s.labelQuota = opts.LabelQuota
	s.webhooks = opts.Webhooks
	if s.webhooks == nil {
		s.webhooks = notify.NewHTTPPoster(nil)
	}
	s.deliver = notify.NewReliable(s.webhooks, notify.ReliableOptions{
		Policy:    opts.RetryPolicy,
		Clock:     opts.RetryClock,
		Jitter:    opts.RetryJitter,
		Manual:    opts.ManualRetry,
		OnOutcome: s.onWebhookOutcome,
	})
	// Exactly one worker: commit evaluation serializes on the engine lock
	// anyway (more workers add no throughput), and a single drainer is
	// what makes completion order equal FIFO submission order — the
	// property the sync/async equivalence guarantee rests on.
	qopts := queue.Options[AsyncCommitRequest, CommitResponse]{
		Capacity: opts.QueueCapacity,
		Workers:  1,
		Retain:   opts.QueueRetain,
		Manual:   opts.ManualQueue,
		Clock:    opts.Clock,
		OnFinish: s.deliverWebhook,
		ExecJob:  s.executeCommitJob,
	}
	if d != nil || s.onDequeue != nil {
		// The un-kick must fire under the queue lock, atomically with the
		// cancel: taken out of band, a scheduler pick racing the cancel can
		// strand a later job with no pending credit until the next kick.
		qopts.OnCancel = s.onCancelHook
	}
	if d != nil || s.onEnqueue != nil {
		// The kick mirrors the un-kick: fired under the queue lock,
		// atomically with acceptance (and after the WAL submit record in
		// durable mode). Out of band, a job accepted just before a
		// shutdown could be journaled yet never kicked — the pool would
		// observe zero pending, stop its workers, and strand the job's
		// waiter in the live process.
		qopts.OnSubmit = s.onSubmitHook
	}
	s.oracleFactory = opts.OracleFactory
	s.manualRelease = opts.ManualRelease
	if s.oracleFactory != nil {
		// Provider outages park the commit job instead of failing it. The
		// classification is the labeling package's contract: only
		// labeling.ErrUnavailable is retryable-later; everything else
		// (label mismatch, quota, protocol violations) stays a failure.
		qopts.Park = func(err error) bool { return errors.Is(err, labeling.ErrUnavailable) }
		qopts.OnPark = s.onParkHook
		qopts.OnRelease = s.onReleaseHook
		if err := s.installOracle(); err != nil {
			s.deliver.Close()
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	if d != nil {
		s.wlog = d.log
		s.genesisFP = d.fp
		s.dataDir = d.dir
		s.table = d.table
		s.tableOrder = d.order
		s.tableNextSeq = d.nextSeq
		s.retain = opts.QueueRetain
		if s.retain <= 0 {
			s.retain = queue.DefaultRetain
		}
		s.compactAt = opts.CompactAt
		if s.compactAt == 0 {
			s.compactAt = DefaultCompactAt
		}
		qopts.Restore = d.restored
		qopts.StartSeq = d.nextSeq
		// Workers must not run before NewDurable finishes wiring the
		// engine journal, notifier, and webhook redelivery: a restored job
		// executing earlier would commit without its audit records.
		// NewDurable calls jobs.Start as its last step.
		qopts.DeferStart = true
	}
	jobs, err := queue.New(nil, qopts)
	if err != nil {
		s.deliver.Close()
		return nil, fmt.Errorf("server: %w", err)
	}
	s.jobs = jobs
	for _, rt := range tenantRoutes {
		rt := rt
		s.mux.HandleFunc(rt.pattern, func(w http.ResponseWriter, r *http.Request) { rt.handler(s, w, r) })
	}
	return s, nil
}

// tenantRoute is one row of the single-tenant API's route table.
type tenantRoute struct {
	pattern string
	handler func(*Server, http.ResponseWriter, *http.Request)
	// mutating marks endpoints that accept new work — the ones a
	// suspended project answers 409. Reads, job polls and cancellation,
	// and admin maintenance stay available while suspended.
	mutating bool
}

// tenantRoutes is the single source of truth for the tenant API:
// newServer registers every handler from it, and the control plane's
// suspension policy (multi.go's mutatingSub) is derived from the same
// rows — adding an endpoint here forces the accepts-new-work decision in
// the same place the route is declared, so the two cannot drift.
var tenantRoutes = []tenantRoute{
	{"/api/v1/plan", (*Server).handlePlan, false},
	{"/api/v1/plan/batch", (*Server).handlePlanBatch, false},
	{"/api/v1/status", (*Server).handleStatus, false},
	{"/api/v1/history", (*Server).handleHistory, false},
	{"/api/v1/metrics", (*Server).handleMetrics, false},
	{"/api/v1/commit", (*Server).handleCommit, true},
	{"/api/v1/commit/async", (*Server).handleCommitAsync, true},
	{jobsPath, (*Server).handleCommitJob, false},
	{"/api/v1/testset", (*Server).handleRotate, true},
	{"/api/v1/admin/reset-caches", (*Server).handleAdminReset, false},
	{"/api/v1/admin/compact", (*Server).handleAdminCompact, false},
	// Backup is deliberately non-mutating: a suspended (or degraded-
	// upstream) project is exactly the one an operator wants to back up.
	{"/api/v1/admin/backup", (*Server).handleAdminBackup, false},
}

// Close drains the commit queue gracefully: accepted jobs finish, new
// submissions are rejected, and Close returns once the workers have
// exited and the webhook retry queue has drained (never-attempted
// deliveries get one final attempt; deliveries waiting out a backoff are
// abandoned — in durable mode their missing outcome record is what makes
// the next start redeliver them). A durable server then compacts the log
// (best effort — a crash here just means a longer replay) and closes it.
func (s *Server) Close() {
	s.releaseMu.Lock()
	if s.releaseTimer != nil {
		s.releaseTimer.Stop()
		s.releaseTimer = nil
	}
	s.releaseMu.Unlock()
	s.jobs.Close()
	s.deliver.Close()
	if s.wlog != nil {
		if !s.walFailed.Load() {
			_ = s.Compact()
		}
		_ = s.wlog.Close()
	}
}

// installOracle builds the current generation's label source through the
// configured factory and hands it to the engine. Called once at
// construction — after durable recovery has replayed against the truth
// oracle — and again after every rotation.
func (s *Server) installOracle() error {
	if s.oracleFactory == nil {
		return nil
	}
	ts := s.eng.Testsets().Current()
	o := s.oracleFactory(ts.Generation, append([]int(nil), ts.Data.Y...))
	if o == nil {
		return fmt.Errorf("oracle factory returned nil for generation %d", ts.Generation)
	}
	if err := s.eng.SetOracle(o); err != nil {
		return err
	}
	s.oracleMu.Lock()
	s.oracle = o
	s.oracleMu.Unlock()
	return nil
}

// onParkHook runs when a commit job parks on a provider outage: it
// journals the park (audit trail only — the job's recoverability comes
// from its submit record having no commit record yet) and arms the
// release timer from the provider's retry hint.
func (s *Server) onParkHook(j *queue.Job[AsyncCommitRequest, CommitResponse], err error) {
	if s.wlog != nil && !s.walFailed.Load() {
		s.tableMu.Lock()
		_ = s.walAppendSyncLocked(recTypePark, recPark{Job: j.ID, Err: err.Error()})
		s.tableMu.Unlock()
	}
	s.scheduleRelease(err)
}

// onReleaseHook runs per job as parked work rejoins the pending queue;
// the multi-tenant pool needs a kick per job or the fair scheduler would
// see no pending credit for the tenant.
func (s *Server) onReleaseHook(*queue.Job[AsyncCommitRequest, CommitResponse]) {
	if s.onEnqueue != nil {
		s.onEnqueue()
	}
}

// scheduleRelease arms (once) the automatic parked-job release. The
// delay honors the provider's hint when the outage carried one — a
// Retry-After header or the breaker's cooldown — and one pending release
// is enough: if the provider is still down, the released jobs park again
// and re-arm the timer with a fresh hint.
func (s *Server) scheduleRelease(err error) {
	if s.manualRelease {
		return
	}
	delay := DefaultParkRelease
	if d, ok := resilience.RetryAfterFromError(err); ok {
		delay = d
	}
	if delay < MinParkRelease {
		delay = MinParkRelease
	}
	s.releaseMu.Lock()
	defer s.releaseMu.Unlock()
	if s.releaseTimer != nil {
		return
	}
	s.releaseTimer = time.AfterFunc(delay, func() {
		s.releaseMu.Lock()
		s.releaseTimer = nil
		s.releaseMu.Unlock()
		s.jobs.ReleaseParked()
	})
}

// ReleaseParked re-enqueues every parked commit job immediately and
// reports how many moved. The manual counterpart of the release timer
// (and the deterministic lever tests drive); safe to call at any time.
func (s *Server) ReleaseParked() int { return s.jobs.ReleaseParked() }

// ParkedCount reports how many commit jobs are waiting out a provider
// outage in the awaiting_labels state.
func (s *Server) ParkedCount() int { return s.jobs.ParkedCount() }

// CloseIntake rejects new commit submissions (503) without draining the
// backlog — phase one of a multi-tenant shutdown: the control plane
// first closes intake on every project, then lets the shared pool drain
// the already-accepted jobs, then Closes each server. Idempotent.
func (s *Server) CloseIntake() { s.jobs.CloseIntake() }

// onSubmitHook runs under the queue lock, atomically with a job's
// acceptance: the WAL submit record first (record-then-accept — an
// accepted job is a recoverable job), then the scheduler kick. The
// enqueue-side mirror of onCancelHook.
func (s *Server) onSubmitHook(j *queue.Job[AsyncCommitRequest, CommitResponse]) error {
	if s.wlog != nil {
		if err := s.walOnSubmit(j); err != nil {
			return err
		}
	}
	if s.onEnqueue != nil {
		s.onEnqueue()
	}
	return nil
}

// onCancelHook runs under the queue lock for a cancelable job: the WAL
// record first (record-then-cancel), then the scheduler un-kick.
func (s *Server) onCancelHook(j *queue.Job[AsyncCommitRequest, CommitResponse]) error {
	if s.wlog != nil {
		if err := s.walOnCancel(j); err != nil {
			return err
		}
	}
	if s.onDequeue != nil {
		s.onDequeue()
	}
	return nil
}

// RunDueWebhooks attempts every webhook delivery whose schedule has come
// due, returning how many attempts were made. Only meaningful with
// Options.ManualRetry — the deterministic test harness's hook, the
// webhook counterpart of RunNextJob.
func (s *Server) RunDueWebhooks() int {
	n := 0
	for s.deliver.RunDue() {
		n++
	}
	return n
}

// RunNextJob executes the oldest queued commit job on the calling
// goroutine, returning false when the backlog is empty. Only meaningful
// with Options.ManualQueue — it is the deterministic test harness's hook.
func (s *Server) RunNextJob() bool { return s.jobs.RunNext() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// --- wire types ---------------------------------------------------------

// PlanResponse mirrors core.Plan for the API.
type PlanResponse struct {
	Kind            string  `json:"kind"`
	Condition       string  `json:"condition"`
	Reliability     float64 `json:"reliability"`
	Steps           int     `json:"steps"`
	BaselineLabels  int     `json:"baseline_labels"`
	LabeledN        int     `json:"labeled_examples"`
	UnlabeledN      int     `json:"unlabeled_examples"`
	PerCommitLabels int     `json:"per_commit_labels"`
}

// StatusResponse reports the engine's current state.
type StatusResponse struct {
	ActiveModel       string `json:"active_model"`
	TestsetGeneration int    `json:"testset_generation"`
	TestsetSize       int    `json:"testset_size"`
	BudgetUsed        int    `json:"budget_used"`
	BudgetTotal       int    `json:"budget_total"`
	CanEvaluate       bool   `json:"can_evaluate"`
	LabelsSpent       int    `json:"labels_spent"`
	Commits           int    `json:"commits"`
}

// CommitRequest is a developer's model submission: the prediction vector
// their test script produced on the current testset.
type CommitRequest struct {
	Model       string `json:"model"`
	Author      string `json:"author"`
	Message     string `json:"message"`
	Predictions []int  `json:"predictions"`
}

// CommitResponse is what the developer gets back. True outcomes are only
// included when the adaptivity mode permits releasing them.
type CommitResponse struct {
	CommitID       string             `json:"commit_id"`
	Step           int                `json:"step"`
	Signal         bool               `json:"signal"`
	Truth          string             `json:"truth,omitempty"`
	Pass           *bool              `json:"pass,omitempty"`
	Estimates      map[string]float64 `json:"estimates,omitempty"`
	FreshLabels    int                `json:"fresh_labels"`
	NeedNewTestset bool               `json:"need_new_testset"`
	// Label-economy fields from the sequential evaluation; all omitted
	// when early decision is disabled, keeping disabled-mode responses
	// (and durable logs) byte-identical to the pre-sequential format.
	Looks       int  `json:"looks,omitempty"`
	EarlyExit   bool `json:"early_exit,omitempty"`
	LabelsSaved int  `json:"labels_saved,omitempty"`
}

// RotateRequest installs a fresh testset: its labels, plus the active
// model's predictions on it (predictions are testset-specific).
type RotateRequest struct {
	Labels            []int `json:"labels"`
	ActivePredictions []int `json:"active_predictions"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Degraded marks a 503 caused by the tenant's storage health rather
	// than transient load: the write-ahead log is poisoned or the data
	// directory needs salvage. Reads keep serving; only mutations carry
	// this body. Reason is one of the degradedReason* constants.
	Degraded bool   `json:"degraded,omitempty"`
	Reason   string `json:"reason,omitempty"`
}

// Degraded-mode reasons, the machine-readable half of a degraded 503.
const (
	degradedReasonPoisoned = "wal_poisoned"
	degradedReasonSalvage  = "salvage_required"
)

// writeStorageError shapes an error into the wire body, upgrading a
// WAL-poisoning failure to the structured degraded form so clients and
// load balancers can tell "this tenant's storage is sick, reads still
// work" apart from an ordinary 503.
func writeStorageError(w http.ResponseWriter, status int, err error) {
	resp := errorResponse{Error: err.Error()}
	if errors.Is(err, errWALPoisoned) {
		resp.Degraded = true
		resp.Reason = degradedReasonPoisoned
	}
	writeJSON(w, status, resp)
}

// --- handlers -----------------------------------------------------------

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	cfg, err := s.planQueryConfig(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Served through the plan cache: repeated identical queries — the
	// common case, since every commit hook and dashboard asks for the
	// active plan — cost one LRU lookup, not a bound search.
	resp, err := s.servePlan(cfg)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// servePlan plans cfg through the cache and shapes the wire response.
// Requests for the server's own config use the engine's planner options,
// so the answer is exactly the plan the engine enforces (and hits the
// cache entry engine construction seeded); ad-hoc what-if queries use the
// paper defaults.
func (s *Server) servePlan(cfg *script.Config) (*PlanResponse, error) {
	opts := core.DefaultOptions()
	if cfg == s.cfg {
		opts = s.eng.PlannerOptions()
	}
	p, err := s.plans.PlanForConfig(cfg, opts)
	if err != nil {
		return nil, err
	}
	resp := NewPlanResponse(cfg, p)
	return &resp, nil
}

// NewPlanResponse shapes a plan into the wire format. Shared with the
// samplesize CLI's local batch mode so the two outputs cannot drift.
func NewPlanResponse(cfg *script.Config, p *core.Plan) PlanResponse {
	return PlanResponse{
		Kind:            p.Kind.String(),
		Condition:       cfg.ConditionSrc,
		Reliability:     cfg.Reliability,
		Steps:           cfg.Steps,
		BaselineLabels:  p.BaselinePlan.N,
		LabeledN:        p.LabeledN,
		UnlabeledN:      p.UnlabeledN,
		PerCommitLabels: p.PerCommitLabels,
	}
}

// planQueryConfig resolves the config a plan query asks about: the server's
// own script, with any of condition/reliability/steps/adaptivity overridden
// by query parameters. Unknown parameters are an error — a typo'd override
// must not silently return the default plan.
func (s *Server) planQueryConfig(r *http.Request) (*script.Config, error) {
	q := r.URL.Query()
	for key := range q {
		switch key {
		case "condition", "reliability", "steps", "adaptivity":
		default:
			return nil, fmt.Errorf("unknown query parameter %q (condition | reliability | steps | adaptivity)", key)
		}
	}
	var reliability *float64
	if v := q.Get("reliability"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("bad reliability %q: %v", v, err)
		}
		reliability = &f
	}
	var steps *int
	if v := q.Get("steps"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("bad steps %q: %v", v, err)
		}
		steps = &n
	}
	return s.resolvePlanConfig(q.Get("condition"), reliability, steps, q.Get("adaptivity"))
}

// resolvePlanConfig applies overrides (empty/nil means "the server's own
// value") to the configured script. A parameter set equal to the server
// config resolves to the config itself, so the caller plans it with the
// engine's own options rather than treating it as an ad-hoc query.
func (s *Server) resolvePlanConfig(condition string, reliability *float64, steps *int, adaptivity string) (*script.Config, error) {
	if condition == "" {
		condition = s.cfg.ConditionSrc
	}
	rel := s.cfg.Reliability
	if reliability != nil {
		rel = *reliability
	}
	st := s.cfg.Steps
	if steps != nil {
		st = *steps
	}
	adapt := s.cfg.Adaptivity
	switch adaptivity {
	case "":
	case "none":
		adapt = script.Adaptivity{Kind: script.AdaptivityNone, Email: "plan-query@localhost"}
	case "full":
		adapt = script.Adaptivity{Kind: script.AdaptivityFull}
	case "firstChange":
		adapt = script.Adaptivity{Kind: script.AdaptivityFirstChange}
	default:
		return nil, fmt.Errorf("bad adaptivity %q (none | full | firstChange)", adaptivity)
	}
	if condition == s.cfg.ConditionSrc && rel == s.cfg.Reliability &&
		st == s.cfg.Steps && adapt.Kind == s.cfg.Adaptivity.Kind {
		return s.cfg, nil
	}
	return script.New(condition, rel, s.cfg.Mode, adapt, st)
}

// MaxBatchQueries bounds one batch plan request; a dashboard sweeping a
// larger grid should page its queries.
const MaxBatchQueries = 1024

// PlanQuery is one entry of a batch plan request. Absent fields default to
// the server's configured script.
type PlanQuery struct {
	Condition   string   `json:"condition,omitempty"`
	Reliability *float64 `json:"reliability,omitempty"`
	Steps       *int     `json:"steps,omitempty"`
	Adaptivity  string   `json:"adaptivity,omitempty"`
}

// BatchPlanRequest is the wire shape of POST /api/v1/plan/batch.
type BatchPlanRequest struct {
	Queries []PlanQuery `json:"queries"`
}

// BatchPlanResult carries one query's plan or its error; exactly one of
// the two fields is set.
type BatchPlanResult struct {
	Plan  *PlanResponse `json:"plan,omitempty"`
	Error string        `json:"error,omitempty"`
}

// BatchPlanResponse mirrors the request order: Results[i] answers
// Queries[i].
type BatchPlanResponse struct {
	Results []BatchPlanResult `json:"results"`
}

// handlePlanBatch answers many plan queries in one request, fanning them
// across the worker pool. Malformed requests fail whole; a bad individual
// query fails only its slot, so one typo doesn't void a dashboard sweep.
func (s *Server) handlePlanBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req BatchPlanRequest
	// Cap the body before decoding so the query limit bounds memory, not
	// just slice length: MaxBatchQueries condition formulas fit well
	// within this.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	// A typo'd field ("relibility") must not silently plan with the
	// default — the same contract the single plan endpoint enforces on
	// its query parameters.
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "at least one query required")
		return
	}
	if len(req.Queries) > MaxBatchQueries {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("%d queries exceeds the %d per-request limit", len(req.Queries), MaxBatchQueries))
		return
	}
	results := make([]BatchPlanResult, len(req.Queries))
	parallel.For(len(req.Queries), func(i int) {
		q := req.Queries[i]
		cfg, err := s.resolvePlanConfig(q.Condition, q.Reliability, q.Steps, q.Adaptivity)
		if err != nil {
			results[i].Error = err.Error()
			return
		}
		resp, err := s.servePlan(cfg)
		if err != nil {
			results[i].Error = err.Error()
			return
		}
		results[i].Plan = resp
	})
	writeJSON(w, http.StatusOK, BatchPlanResponse{Results: results})
}

// MetricsResponse exposes the serving-path cache, queue, and webhook
// counters.
type MetricsResponse struct {
	PlanCache planner.Stats `json:"plan_cache"`
	// ExactMemo is the exact-bound worst-case memo backing tight-bound
	// plans; Evals counts uncached grid searches process-wide.
	ExactMemoHits   uint64 `json:"exact_memo_hits"`
	ExactMemoMisses uint64 `json:"exact_memo_misses"`
	ExactMemoLen    int    `json:"exact_memo_entries"`
	ExactEvals      uint64 `json:"exact_evals"`
	// Sweep counters break one exact evaluation down further: lattice
	// events enumerated by the event-driven worst-case sweep, and how
	// many were resolved analytically (excluded by the unimodal-envelope
	// bisection without a tail evaluation) versus by exact fallback
	// refinement (bisection probes, ascents, windows, small families).
	SweepEvents           uint64 `json:"sweep_events"`
	SweepSegmentsAnalytic uint64 `json:"sweep_segments_analytic"`
	SweepSegmentsRefined  uint64 `json:"sweep_segments_refined"`
	// CommitQueue is the async pipeline's traffic counters.
	CommitQueue queue.Stats `json:"commit_queue"`
	// WebhooksSent/Failed count job-finished callback deliveries.
	WebhooksSent   uint64 `json:"webhooks_sent"`
	WebhooksFailed uint64 `json:"webhooks_failed"`
	// CommitsEvaluated counts commits the engine evaluated successfully;
	// CommitEvalNsTotal is the cumulative wall time inside engine.Commit
	// in nanoseconds, so total/count is the served per-commit evaluation
	// latency the packed measurement core optimizes. Both reset via
	// POST /api/v1/admin/reset-caches.
	CommitsEvaluated  uint64 `json:"commits_evaluated"`
	CommitEvalNsTotal uint64 `json:"commit_eval_ns_total"`
	// LabelsSavedTotal / EarlyExitsTotal / EarlyExitLooks are the
	// sequential evaluation's label economy: oracle labels the static
	// plan would have paid beyond what commits actually revealed, how
	// many commits exited before the full reveal, and a histogram of
	// early exits by look count (index = looks taken, trailing zero
	// buckets trimmed). Reset via POST /api/v1/admin/reset-caches.
	LabelsSavedTotal uint64   `json:"labels_saved_total"`
	EarlyExitsTotal  uint64   `json:"early_exits_total"`
	EarlyExitLooks   []uint64 `json:"early_exit_looks,omitempty"`
	// WebhookRetry is the webhook retry queue: attempts, backoff
	// reschedules, per-kind delivery latency, and each subscriber's
	// circuit breaker state. Not cleared by the admin cache reset — the
	// retry queue is delivery state, not a cache.
	WebhookRetry notify.RetryStats `json:"webhook_retry"`
	// WAL reports the write-ahead log's traffic (durable servers only).
	// Not cleared by the admin cache reset.
	WAL *wal.Stats `json:"wal,omitempty"`
	// LabelOracle is the remote label provider's client health — attempts,
	// retries, partial batches, short circuits, the breaker state, and the
	// fetch-latency histogram. Present only when labels are sourced
	// remotely (Options.OracleFactory). Like WebhookRetry, it is NOT
	// cleared by the admin cache reset: delivery state, not a cache.
	LabelOracle *labeling.OracleStats `json:"label_oracle,omitempty"`
	// Storage is the durable server's storage health: poisoning state,
	// salvage history, quarantined bytes, backup counters. NOT cleared by
	// the admin cache reset — operational history, not a cache.
	Storage *StorageHealth `json:"storage,omitempty"`
}

// metricsSnapshot gathers the point-in-time counters; shared by the
// metrics endpoint and the admin cache-reset (which reports the pre-reset
// values).
func (s *Server) metricsSnapshot() MetricsResponse {
	hits, misses, entries := bounds.ExactCacheStats()
	events, analytic, refined := bounds.ExactSweepStats()
	m := MetricsResponse{
		PlanCache:             s.plans.Stats(),
		ExactMemoHits:         hits,
		ExactMemoMisses:       misses,
		ExactMemoLen:          entries,
		ExactEvals:            bounds.ExactProbeEvals(),
		SweepEvents:           events,
		SweepSegmentsAnalytic: analytic,
		SweepSegmentsRefined:  refined,
		CommitQueue:           s.jobs.Stats(),
		WebhooksSent:          s.webhooksSent.Load(),
		WebhooksFailed:        s.webhooksFailed.Load(),
		CommitsEvaluated:      s.commitsEvaluated.Load(),
		CommitEvalNsTotal:     s.commitEvalNs.Load(),
		LabelsSavedTotal:      s.labelsSaved.Load(),
		EarlyExitsTotal:       s.earlyExits.Load(),
		EarlyExitLooks:        s.lookHistSnapshot(),
	}
	m.WebhookRetry = s.deliver.Stats()
	if s.wlog != nil {
		st := s.wlog.Stats()
		m.WAL = &st
	}
	m.LabelOracle = s.oracleStats()
	m.Storage = s.storageHealth()
	return m
}

// oracleStats snapshots the remote label client's health, when the
// installed oracle exposes any (labeling.Resilient does; fault harnesses
// and the truth oracle don't).
func (s *Server) oracleStats() *labeling.OracleStats {
	s.oracleMu.Lock()
	o := s.oracle
	s.oracleMu.Unlock()
	if o == nil {
		return nil
	}
	st, ok := o.(interface{ Stats() labeling.OracleStats })
	if !ok {
		return nil
	}
	stats := st.Stats()
	return &stats
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.metricsSnapshot())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tsm := s.eng.Testsets()
	writeJSON(w, http.StatusOK, StatusResponse{
		ActiveModel:       s.eng.ActiveModelName(),
		TestsetGeneration: tsm.Current().Generation,
		TestsetSize:       tsm.Current().Len(),
		BudgetUsed:        tsm.Budget() - tsm.Remaining(),
		BudgetTotal:       tsm.Budget(),
		CanEvaluate:       tsm.CanEvaluate(),
		LabelsSpent:       s.eng.LabelCost().Total(),
		Commits:           s.eng.Repository().Len(),
	})
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	history := s.eng.History()
	out := make([]CommitResponse, 0, len(history))
	for _, res := range history {
		out = append(out, s.resultToResponse(res))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCommit is the synchronous endpoint, reimplemented as
// enqueue-then-wait: the commit rides the same FIFO queue as the async
// path and the handler blocks until its job finishes, so both endpoints
// share one evaluation code path and serialize in one submission order.
func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req CommitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return
	}
	if req.Model == "" {
		writeError(w, http.StatusBadRequest, "model name required")
		return
	}
	// Submit kicks the shared scheduler itself (under the queue lock, via
	// the OnSubmit hook), so an accepted job is always a scheduled job.
	job, err := s.jobs.Submit(AsyncCommitRequest{CommitRequest: req})
	if err != nil {
		writeStorageError(w, http.StatusServiceUnavailable, err)
		return
	}
	<-job.Done()
	res, err := job.Result()
	if err != nil {
		writeStorageError(w, commitErrorStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleRotate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req RotateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return
	}
	if len(req.Labels) == 0 || len(req.Labels) != len(req.ActivePredictions) {
		writeError(w, http.StatusBadRequest, "labels and active_predictions must be non-empty and equal length")
		return
	}
	classes := s.cfgClasses()
	next := &data.Dataset{Name: "rotated", Classes: classes}
	for i, y := range req.Labels {
		if y < 0 || y >= classes {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("label %d out of range at %d", y, i))
			return
		}
		next.X = append(next.X, []float64{float64(i)})
		next.Y = append(next.Y, y)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wlog != nil && s.walFailed.Load() {
		writeStorageError(w, http.StatusServiceUnavailable, errWALPoisoned)
		return
	}
	active := model.NewFixedPredictions(s.eng.ActiveModelName(), req.ActivePredictions)
	if err := s.eng.RotateTestset(next, labeling.NewTruthOracle(next.Y), active); err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	gen := s.eng.Testsets().Current().Generation
	// A remote-sourced server swaps in the new generation's provider
	// client: the factory gets the fresh ground truth, and any verified-
	// label cache from the old generation dies with the old oracle.
	if err := s.installOracle(); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if s.wlog != nil {
		// Apply-then-append: the 200 goes out only once the rotation is
		// durable. A crash (or append failure, which poisons the server)
		// in the gap loses an unacknowledged rotation — the same contract
		// as a request that never arrived.
		s.tableMu.Lock()
		err := s.walAppendSyncLocked(recTypeRotate, recRotate{
			Labels:      req.Labels,
			ActivePreds: req.ActivePredictions,
			Generation:  gen,
		})
		s.tableMu.Unlock()
		if err != nil {
			writeStorageError(w, http.StatusServiceUnavailable, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": gen,
	})
}

// cfgClasses infers the label alphabet from the installed testset.
func (s *Server) cfgClasses() int {
	return s.eng.Testsets().Current().Data.Classes
}

// resultToResponse applies the adaptivity mode's information flow: in the
// non-adaptive mode the developer-facing API must not reveal the truth.
// Standalone (not a method) so crash-recovery replay can re-shape replayed
// results through the identical code path and byte-compare them against
// the logged responses.
func resultToResponse(cfg *script.Config, res engine.Result) CommitResponse {
	out := CommitResponse{
		CommitID:       res.Commit.ID,
		Step:           res.Step,
		Signal:         res.Signal,
		FreshLabels:    res.FreshLabels,
		NeedNewTestset: res.NeedNewTestset,
		// Label-economy accounting travels with FreshLabels regardless of
		// adaptivity: it reveals cost, not the verdict.
		Looks:       res.Looks,
		EarlyExit:   res.EarlyExit,
		LabelsSaved: res.LabelsSaved,
	}
	if cfg.Adaptivity.Kind != script.AdaptivityNone {
		out.Truth = res.Truth.String()
		pass := res.Pass
		out.Pass = &pass
		out.Estimates = map[string]float64{}
		for v, x := range res.Estimates {
			// Keys are the condition-language variables n, o, d.
			out.Estimates[string(v)] = x
		}
	}
	return out
}

func (s *Server) resultToResponse(res engine.Result) CommitResponse {
	return resultToResponse(s.cfg, res)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
