package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"

	"github.com/easeml/ci/internal/bounds"
	"github.com/easeml/ci/internal/engine"
	"github.com/easeml/ci/internal/labeling"
	"github.com/easeml/ci/internal/model"
	"github.com/easeml/ci/internal/notify"
	"github.com/easeml/ci/internal/queue"
	"github.com/easeml/ci/internal/script"
)

// jobsPath is the poll/cancel endpoint prefix; job IDs follow it.
const jobsPath = "/api/v1/commit/jobs/"

// AsyncCommitRequest is a commit submission to the asynchronous pipeline:
// the ordinary commit payload plus an optional webhook URL that receives
// the job's final JobStatusResponse as JSON when it finishes.
//
// A webhook makes the server originate an HTTP POST to a caller-chosen
// URL. Like every endpoint here (testset rotation, admin resets), this
// assumes trusted callers inside one trust boundary; an internet-facing
// deployment must put an authenticating proxy in front and restrict
// webhook targets there.
type AsyncCommitRequest struct {
	CommitRequest
	Webhook string `json:"webhook,omitempty"`
}

// JobAcceptedResponse is the 202 body of POST /api/v1/commit/async.
type JobAcceptedResponse struct {
	JobID string `json:"job_id"`
	State string `json:"state"`
	// Poll is the path to poll for the job's status.
	Poll string `json:"poll"`
}

// JobStatusResponse reports one job's state; Result is present once the
// job is done, Error once it has failed. The same shape is POSTed to the
// job's webhook on completion.
type JobStatusResponse struct {
	JobID string `json:"job_id"`
	// Seq is the job's FIFO submission position.
	Seq   int    `json:"seq"`
	State string `json:"state"`
	// Result carries the commit outcome (byte-identical to what the
	// synchronous endpoint returns for the same commit).
	Result *CommitResponse `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// badRequestError marks a commit failure as the caller's fault (HTTP 400
// rather than 422): the job executor cannot write status codes, so it
// types the error and the HTTP layer maps it.
type badRequestError struct{ msg string }

func (e badRequestError) Error() string { return e.msg }

// quotaError marks a commit rejected by the tenant's label budget
// (HTTP 429). Its message is a pure function of engine state and the
// configured quota, so durable replay reproduces it byte-for-byte.
type quotaError struct{ msg string }

func (e quotaError) Error() string { return e.msg }

// commitErrorStatus maps a commit-job error to the status code the
// synchronous endpoint has always used: 400 for malformed submissions,
// 409 for an exhausted testset budget or a job canceled before it ran
// (both "the engine state moved under you" conflicts, not evaluation
// failures), 422 for evaluation failures.
func commitErrorStatus(err error) int {
	var br badRequestError
	var qe quotaError
	switch {
	case errors.As(err, &br):
		return http.StatusBadRequest
	case errors.As(err, &qe):
		return http.StatusTooManyRequests
	case errors.Is(err, engine.ErrNeedNewTestset), errors.Is(err, queue.ErrCanceled):
		return http.StatusConflict
	case errors.Is(err, errWALPoisoned), errors.Is(err, labeling.ErrUnavailable):
		// Label-provider unavailability surfaces only when a shutdown
		// fails jobs that would otherwise park: a retryable outage, 503.
		return http.StatusServiceUnavailable
	default:
		return http.StatusUnprocessableEntity
	}
}

// evalCommit runs one commit through an engine and shapes the response:
// the single evaluation code path shared by live execution (under the
// engine lock) and crash-recovery replay. Validation against the current
// testset — and the tenant's label-budget quota — happens here (not at
// enqueue time) because a rotation or another commit may land between
// submission and execution, and because replay must reproduce the exact
// accept/reject decision the live run made.
func evalCommit(cfg *script.Config, eng *engine.Engine, labelQuota int, req AsyncCommitRequest) (CommitResponse, error) {
	if got, want := len(req.Predictions), eng.Testsets().Current().Len(); got != want {
		return CommitResponse{}, badRequestError{fmt.Sprintf("predictions length %d != testset size %d", got, want)}
	}
	if spent := eng.LabelCost().Total(); labelQuota > 0 && spent >= labelQuota {
		return CommitResponse{}, quotaError{fmt.Sprintf("label quota exhausted: %d labels spent of %d", spent, labelQuota)}
	}
	res, err := eng.Commit(model.NewFixedPredictions(req.Model, req.Predictions), req.Author, req.Message)
	if err != nil {
		return CommitResponse{}, err
	}
	return resultToResponse(cfg, res), nil
}

// executeCommitJob is the queue's executor: the one code path both the
// synchronous and asynchronous endpoints evaluate commits through, all
// serialized on the engine lock. In durable mode the commit record
// appended here is the transaction's commit point: a job whose record
// made it to disk never re-executes, a job whose record didn't is
// re-enqueued on restart — exactly-once either way.
func (s *Server) executeCommitJob(j *queue.Job[AsyncCommitRequest, CommitResponse]) (CommitResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wlog != nil && s.walFailed.Load() {
		return CommitResponse{}, errWALPoisoned
	}
	start := time.Now()
	resp, err := evalCommit(s.cfg, s.eng, s.labelQuota, j.Req)
	if err == nil {
		s.commitsEvaluated.Add(1)
		s.commitEvalNs.Add(uint64(time.Since(start).Nanoseconds()))
		s.recordSavings(resp)
	}
	if s.wlog == nil {
		return resp, err
	}
	if err != nil && errors.Is(err, labeling.ErrUnavailable) {
		// Provider outage: the job is about to park, not finish, so it must
		// NOT get a commit record — a recorded failure would be terminal on
		// replay, and worse, replay (which runs against the truth oracle)
		// would succeed where the live run couldn't and fail the audit
		// byte-compare. With only its submit record on disk the job
		// re-enqueues on restart: restart is itself a release path, and the
		// engine rolled back this evaluation's reveals, so the eventual
		// re-run is byte-identical to one that never saw the outage.
		return CommitResponse{}, err
	}
	if s.walFailed.Load() {
		// The engine's journal hit an append failure mid-commit; nothing
		// was logged, so the restart replays to the pre-commit state and
		// re-runs this job. Don't log a commit record for a half-applied
		// commit.
		return CommitResponse{}, errWALPoisoned
	}
	rec := recCommit{Job: j.ID}
	if err != nil {
		rec.Err = err.Error()
	} else {
		b, merr := json.Marshal(resp)
		if merr != nil {
			return CommitResponse{}, merr
		}
		rec.Res = b
	}
	s.tableMu.Lock()
	werr := s.walAppendSyncLocked(recTypeCommit, rec)
	if werr == nil {
		if e := s.table[j.ID]; e != nil {
			if err != nil {
				e.State = jobFailed
				e.Err = err.Error()
			} else {
				e.State = jobDone
				e.Res = rec.Res
			}
		}
	}
	s.tableMu.Unlock()
	if werr != nil {
		return CommitResponse{}, werr
	}
	s.maybeCompactLocked()
	return resp, err
}

// handleCommitAsync accepts a commit into the queue and returns 202 with
// the job handle; the caller polls the job or receives its webhook.
func (s *Server) handleCommitAsync(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req AsyncCommitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return
	}
	if req.Model == "" {
		writeError(w, http.StatusBadRequest, "model name required")
		return
	}
	if req.Webhook != "" {
		u, err := url.Parse(req.Webhook)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("webhook %q is not an http(s) URL", req.Webhook))
			return
		}
	}
	// Submit kicks the shared scheduler itself (under the queue lock, via
	// the OnSubmit hook), so an accepted job is always a scheduled job.
	job, err := s.jobs.Submit(req)
	if err != nil {
		// Both a full backlog and a draining server are transient
		// server-side conditions; the client should retry later. A
		// poisoned WAL additionally carries the structured degraded body.
		writeStorageError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusAccepted, JobAcceptedResponse{
		JobID: job.ID,
		State: job.State().String(),
		Poll:  jobsPath + job.ID,
	})
}

// handleCommitJob polls (GET) or cancels (DELETE) one queued commit job.
// Job IDs are sequential, not capability tokens: like every endpoint on
// this server (rotation, admin resets), cancellation assumes trusted
// callers — there is no per-client authorization layer.
func (s *Server) handleCommitJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, jobsPath)
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, "job ID required: "+jobsPath+"{id}")
		return
	}
	switch r.Method {
	case http.MethodGet:
		job, ok := s.jobs.Job(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Sprintf("no job %q (unknown, or evicted after completion)", id))
			return
		}
		writeJSON(w, http.StatusOK, jobStatus(job))
	case http.MethodDelete:
		job, err := s.jobs.Cancel(id)
		switch {
		case errors.Is(err, queue.ErrNotFound):
			writeError(w, http.StatusNotFound, err.Error())
		case errors.Is(err, queue.ErrNotCancelable):
			writeError(w, http.StatusConflict, err.Error())
		case err != nil:
			writeError(w, http.StatusInternalServerError, err.Error())
		default:
			writeJSON(w, http.StatusOK, jobStatus(job))
		}
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or DELETE only")
	}
}

// jobStatus shapes a job into its wire status.
func jobStatus(job *queue.Job[AsyncCommitRequest, CommitResponse]) JobStatusResponse {
	state, res, err := job.Peek()
	out := JobStatusResponse{JobID: job.ID, Seq: job.Seq, State: state.String()}
	switch state {
	case queue.Done:
		r := res
		out.Result = &r
	case queue.Failed:
		out.Error = err.Error()
	}
	return out
}

// deliverWebhook is the queue's OnFinish hook: jobs submitted with a
// webhook URL get their final status POSTed through the retry queue,
// which owns backoff, bounded attempts, and per-subscriber circuit
// breaking — OnFinish executes on the commit worker, and a slow or down
// subscriber must not stall the queue behind one job's callback. The
// job result itself stays pollable whatever happens to its delivery.
func (s *Server) deliverWebhook(job *queue.Job[AsyncCommitRequest, CommitResponse]) {
	if job.Req.Webhook == "" {
		return
	}
	payload, err := json.Marshal(jobStatus(job))
	if err != nil {
		s.webhooksFailed.Add(1)
		return
	}
	_ = s.deliver.Send(notify.Notification{
		Kind:    notify.KindWebhook,
		To:      job.Req.Webhook,
		Subject: fmt.Sprintf("easeml-ci job %s %s", job.ID, job.State()),
		Body:    string(payload),
	})
}

// onWebhookOutcome is the retry queue's terminal-outcome hook: it keeps
// the served counters, and in durable mode writes the delivery record
// that stops the next start from redelivering. Deliveries abandoned
// mid-backoff by Close never reach here — their missing record is what
// schedules redelivery after restart.
func (s *Server) onWebhookOutcome(n notify.Notification, delivered bool, attempts int, err error) {
	if delivered {
		s.webhooksSent.Add(1)
	} else {
		s.webhooksFailed.Add(1)
	}
	if s.wlog == nil {
		return
	}
	var body struct {
		JobID string `json:"job_id"`
	}
	if json.Unmarshal([]byte(n.Body), &body) != nil || body.JobID == "" {
		return
	}
	rec := recWebhook{Job: body.JobID, URL: n.To, Delivered: delivered, Attempts: attempts}
	if err != nil {
		rec.Err = err.Error()
	}
	s.tableMu.Lock()
	defer s.tableMu.Unlock()
	if s.walAppendSyncLocked(recTypeWebhook, rec) != nil {
		return
	}
	if e := s.table[body.JobID]; e != nil {
		e.WebhookDone = true
	}
}

// handleAdminReset clears the plan cache, the exact-bound memo, and the
// commit-evaluation counters, returning the pre-reset metrics snapshot,
// so an operator hot-reloading scripts (or chasing a suspected stale
// entry) can see what was dropped.
func (s *Server) handleAdminReset(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	pre := s.metricsSnapshot()
	s.plans.Reset()
	bounds.ResetExactCache()
	s.resetCommitCounters()
	writeJSON(w, http.StatusOK, pre)
}
