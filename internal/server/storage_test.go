package server

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"github.com/easeml/ci/internal/notify"
	"github.com/easeml/ci/internal/wal/faultfs"
)

// mustCommit posts one sync commit and asserts 200.
func mustCommit(t *testing.T, h http.Handler, path string, labels []int, model string, seed int64) {
	t.Helper()
	rec := doH(t, h, http.MethodPost, path, CommitRequest{
		Model: model, Author: "dev", Message: "x",
		Predictions: goodPredictions(t, labels, 0.9, seed),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("POST %s status = %d: %s", path, rec.Code, rec.Body.String())
	}
}

// bodyOf asserts a 200 GET on any handler and returns the bytes.
func bodyOf(t *testing.T, h http.Handler, path string) []byte {
	t.Helper()
	rec := doH(t, h, http.MethodGet, path, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s status = %d: %s", path, rec.Code, rec.Body.String())
	}
	return append([]byte(nil), rec.Body.Bytes()...)
}

// decodeErrorBody parses the structured error envelope.
func decodeErrorBody(t *testing.T, rec interface{ String() string }) errorResponse {
	t.Helper()
	var resp errorResponse
	if err := json.Unmarshal([]byte(rec.String()), &resp); err != nil {
		t.Fatalf("error body is not JSON: %v: %s", err, rec.String())
	}
	return resp
}

// corruptFile flips one bit in the middle of a file — enough to fail
// the record CRC, never enough to look like a torn tail.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	if err := faultfs.FlipBit(path, int64(fileSize(t, path)/2), 0); err != nil {
		t.Fatal(err)
	}
}

func fileSize(t *testing.T, path string) int {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return int(info.Size())
}

// readTarball unpacks a backup response body into a name → bytes map.
func readTarball(t *testing.T, data []byte) map[string][]byte {
	t.Helper()
	gz, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("backup is not gzip: %v", err)
	}
	out := make(map[string][]byte)
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("backup tar: %v", err)
		}
		raw, err := io.ReadAll(tr)
		if err != nil {
			t.Fatal(err)
		}
		out[hdr.Name] = raw
	}
	return out
}

// TestDegradedModeKeepsReadsServing is the degraded-mode acceptance
// test: after a disk fault poisons the default project's WAL, mutations
// answer 503 with the structured degraded body while reads keep
// serving; compaction refuses without leaving a partial snapshot;
// health endpoints and metrics report the degradation.
func TestDegradedModeKeepsReadsServing(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New()
	m := newTestMulti(t, MultiOptions{DataDir: dir, Tenant: Options{WALFS: fs, Webhooks: notify.NewOutbox()}})
	defer m.Close()
	labels := testLabels()

	if rec := doH(t, m, http.MethodGet, "/readyz", nil); rec.Code != http.StatusOK {
		t.Fatalf("healthy readyz status = %d: %s", rec.Code, rec.Body.String())
	}
	mustCommit(t, m, "/api/v1/commit", labels, "m0", 10)
	healthyHistory := bodyOf(t, m, "/api/v1/history")

	// The next write to the default project's log hits ENOSPC.
	fs.Add(faultfs.Fault{Op: faultfs.OpWrite, Path: filepath.Join(DefaultProject, "wal.log")})
	rec := doH(t, m, http.MethodPost, "/api/v1/commit", CommitRequest{
		Model: "m1", Author: "dev", Message: "x",
		Predictions: goodPredictions(t, labels, 0.9, 11),
	})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("poisoned commit status = %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if e := decodeErrorBody(t, rec.Body); !e.Degraded || e.Reason != degradedReasonPoisoned {
		t.Fatalf("poisoned commit body = %+v, want degraded/wal_poisoned", e)
	}

	// Reads keep serving the pre-failure state.
	if got := bodyOf(t, m, "/api/v1/history"); !bytes.Equal(got, healthyHistory) {
		t.Fatalf("degraded history diverged:\n%s\n%s", got, healthyHistory)
	}
	bodyOf(t, m, "/api/v1/status")
	bodyOf(t, m, "/api/v1/plan")

	// Every other mutation answers the same structured 503.
	rec = doH(t, m, http.MethodPost, "/api/v1/testset", RotateRequest{
		Labels: labels, ActivePredictions: goodPredictions(t, labels, 0.9, 20),
	})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("poisoned rotate status = %d: %s", rec.Code, rec.Body.String())
	}
	if e := decodeErrorBody(t, rec.Body); !e.Degraded || e.Reason != degradedReasonPoisoned {
		t.Fatalf("poisoned rotate body = %+v", e)
	}

	// Compaction refuses to snapshot state the log does not vouch for —
	// both scoped and unscoped — and leaves no partial snapshot behind.
	for _, path := range []string{"/api/v1/admin/compact?project=default", "/api/v1/admin/compact"} {
		rec = doH(t, m, http.MethodPost, path, nil)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("POST %s status = %d, want 503: %s", path, rec.Code, rec.Body.String())
		}
		if e := decodeErrorBody(t, rec.Body); !e.Degraded || e.Reason != degradedReasonPoisoned {
			t.Fatalf("POST %s body = %+v, want degraded/wal_poisoned", path, e)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, DefaultProject, "snapshot.json.tmp")); !os.IsNotExist(err) {
		t.Fatal("refused compaction left a partial snapshot.json.tmp on disk")
	}

	// A poisoned tenant must not poison its backup either: the scoped
	// backup refuses (its in-memory state is ahead of the log) with the
	// degraded body.
	rec = doH(t, m, http.MethodPost, "/api/v1/admin/backup?project=default", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("poisoned backup status = %d: %s", rec.Code, rec.Body.String())
	}
	if e := decodeErrorBody(t, rec.Body); !e.Degraded || e.Reason != degradedReasonPoisoned {
		t.Fatalf("poisoned backup body = %+v", e)
	}

	// Health: alive (200) but not ready (503), storage degraded in both.
	rec = doH(t, m, http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status = %d", rec.Code)
	}
	var h HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != StorageDegraded {
		t.Fatalf("healthz status field = %q, want degraded", h.Status)
	}
	if rec := doH(t, m, http.MethodGet, "/readyz", nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded readyz status = %d, want 503", rec.Code)
	}

	// Metrics carry the storage section, and the admin cache reset does
	// not clear it — operational state, not a cache.
	doH(t, m, http.MethodPost, "/api/v1/admin/reset-caches", nil)
	var mm MultiMetricsResponse
	if err := json.Unmarshal(bodyOf(t, m, "/api/v1/metrics"), &mm); err != nil {
		t.Fatal(err)
	}
	if mm.Storage == nil || mm.Storage.State != StorageDegraded || !mm.Storage.WALPoisoned {
		t.Fatalf("global storage after reset = %+v, want degraded/poisoned", mm.Storage)
	}
	found := false
	for _, p := range mm.Projects {
		if p.ID == DefaultProject {
			found = true
			if p.Storage == nil || p.Storage.State != StorageDegraded || !p.Storage.WALPoisoned {
				t.Fatalf("default project storage = %+v, want degraded/poisoned", p.Storage)
			}
		}
	}
	if !found {
		t.Fatal("metrics lost the default project's row")
	}
}

// TestSickTenantIsolation: a project whose write-ahead state is damaged
// on disk boots as salvage-required — its requests answer 503 with the
// structured degraded body — while the control plane and every healthy
// tenant keep serving. Deleting the sick project is the way out.
func TestSickTenantIsolation(t *testing.T) {
	dir := t.TempDir()
	m := newTestMulti(t, MultiOptions{DataDir: dir})
	labels := testLabels()
	spec := testSpec(t, 3, testSize, 2)
	if rec := doH(t, m, http.MethodPost, "/api/v1/projects", CreateProjectRequest{ID: "team-a", ProjectSpec: spec}); rec.Code != http.StatusCreated {
		t.Fatalf("create team-a status = %d: %s", rec.Code, rec.Body.String())
	}
	mustCommit(t, m, "/api/v1/projects/team-a/commit", labels, "a0", 30)
	mustCommit(t, m, "/api/v1/commit", labels, "m0", 10)
	defaultHistory := bodyOf(t, m, "/api/v1/history")
	m.Close()

	corruptFile(t, filepath.Join(dir, "team-a", "snapshot.json"))

	m2 := newTestMulti(t, MultiOptions{DataDir: dir})
	defer m2.Close()

	// The sick tenant answers 503/salvage-required on every path...
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/api/v1/projects/team-a/status"},
		{http.MethodPost, "/api/v1/admin/compact?project=team-a"},
	} {
		rec := doH(t, m2, probe.method, probe.path, nil)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s %s status = %d, want 503: %s", probe.method, probe.path, rec.Code, rec.Body.String())
		}
		if e := decodeErrorBody(t, rec.Body); !e.Degraded || e.Reason != degradedReasonSalvage {
			t.Fatalf("%s %s body = %+v, want degraded/salvage_required", probe.method, probe.path, e)
		}
	}

	// ...while the default project serves reads AND writes untouched.
	if got := bodyOf(t, m2, "/api/v1/history"); !bytes.Equal(got, defaultHistory) {
		t.Fatalf("default history diverged across the sick boot:\n%s\n%s", got, defaultHistory)
	}
	mustCommit(t, m2, "/api/v1/commit", labels, "m1", 11)

	// The project list, health endpoints, and metrics all name the sick
	// tenant.
	var list ProjectListResponse
	if err := json.Unmarshal(bodyOf(t, m2, "/api/v1/projects"), &list); err != nil {
		t.Fatal(err)
	}
	var teamState string
	for _, p := range list.Projects {
		if p.ID == "team-a" {
			teamState = p.State
		}
	}
	if teamState != StorageSalvageRequired {
		t.Fatalf("team-a listed state = %q, want salvage-required", teamState)
	}
	if rec := doH(t, m2, http.MethodGet, "/readyz", nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with sick tenant = %d, want 503", rec.Code)
	}
	var mm MultiMetricsResponse
	if err := json.Unmarshal(bodyOf(t, m2, "/api/v1/metrics"), &mm); err != nil {
		t.Fatal(err)
	}
	var row *TenantMetrics
	for i := range mm.Projects {
		if mm.Projects[i].ID == "team-a" {
			row = &mm.Projects[i]
		}
	}
	if row == nil || row.Storage == nil || row.Storage.State != StorageSalvageRequired {
		t.Fatalf("team-a metrics row = %+v, want storage salvage-required", row)
	}
	if mm.Storage == nil || mm.Storage.State != StorageSalvageRequired {
		t.Fatalf("global storage = %+v, want salvage-required", mm.Storage)
	}

	// Unscoped compaction skips the sick tenant instead of failing.
	if rec := doH(t, m2, http.MethodPost, "/api/v1/admin/compact", nil); rec.Code != http.StatusOK {
		t.Fatalf("unscoped compact with sick tenant = %d: %s", rec.Code, rec.Body.String())
	}

	// The unscoped backup still carries the sick tenant's raw damaged
	// bytes — damage travels with the backup, never silently dropped.
	rec := doH(t, m2, http.MethodPost, "/api/v1/admin/backup", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("unscoped backup status = %d: %s", rec.Code, rec.Body.String())
	}
	entries := readTarball(t, rec.Body.Bytes())
	for _, want := range []string{"_control/snapshot.json", "default/snapshot.json", "team-a/snapshot.json"} {
		if _, ok := entries[want]; !ok {
			t.Fatalf("backup is missing %s; has %v", want, keysOf(entries))
		}
	}

	// Deleting the sick project is the operator's other way out.
	if rec := doH(t, m2, http.MethodDelete, "/api/v1/projects/team-a", nil); rec.Code != http.StatusOK {
		t.Fatalf("delete sick project status = %d: %s", rec.Code, rec.Body.String())
	}
	if rec := doH(t, m2, http.MethodGet, "/readyz", nil); rec.Code != http.StatusOK {
		t.Fatalf("readyz after deleting sick tenant = %d, want 200: %s", rec.Code, rec.Body.String())
	}
}

func keysOf(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestMultiAutoSalvage: with AutoSalvage on, a tenant whose snapshot is
// corrupt is salvaged at boot (damage quarantined, not deleted) and
// comes back serving; the salvage is visible in the metrics.
func TestMultiAutoSalvage(t *testing.T) {
	dir := t.TempDir()
	m := newTestMulti(t, MultiOptions{DataDir: dir})
	labels := testLabels()
	spec := testSpec(t, 3, testSize, 2)
	if rec := doH(t, m, http.MethodPost, "/api/v1/projects", CreateProjectRequest{ID: "team-a", ProjectSpec: spec}); rec.Code != http.StatusCreated {
		t.Fatalf("create team-a status = %d: %s", rec.Code, rec.Body.String())
	}
	mustCommit(t, m, "/api/v1/projects/team-a/commit", labels, "a0", 30)
	m.Close()

	corruptFile(t, filepath.Join(dir, "team-a", "snapshot.json"))

	m2 := newTestMulti(t, MultiOptions{DataDir: dir, AutoSalvage: true})
	defer m2.Close()

	// The tenant serves again (the quarantined snapshot's state is gone —
	// salvage cannot invent lost data — but the project is alive).
	bodyOf(t, m2, "/api/v1/projects/team-a/status")
	if rec := doH(t, m2, http.MethodGet, "/readyz", nil); rec.Code != http.StatusOK {
		t.Fatalf("readyz after auto-salvage = %d: %s", rec.Code, rec.Body.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "team-a", "snapshot.json.quarantine")); err != nil {
		t.Fatalf("auto-salvage left no quarantine file: %v", err)
	}
	var mm MultiMetricsResponse
	if err := json.Unmarshal(bodyOf(t, m2, "/api/v1/metrics"), &mm); err != nil {
		t.Fatal(err)
	}
	for _, p := range mm.Projects {
		if p.ID != "team-a" {
			continue
		}
		if p.Storage == nil || p.Storage.SalvageRuns != 1 || p.Storage.QuarantinedBytes == 0 {
			t.Fatalf("team-a storage after auto-salvage = %+v, want 1 salvage run and quarantined bytes", p.Storage)
		}
	}
}

// TestBackupRestoreRoundTrip is the backup acceptance test: the
// unscoped backup tarball, restored into a fresh data dir, yields a
// byte-identical verdict history and project list; intake keeps flowing
// after the backup; backup counters survive the admin reset; restore
// refuses a genesis mismatch and a non-empty target.
func TestBackupRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g, labels := durableGenesis(t, 3, testSize)
	m := newTestMulti(t, MultiOptions{DataDir: dir, Tenant: Options{CompactAt: -1, Webhooks: notify.NewOutbox()}})
	spec := testSpec(t, 3, testSize, 2)
	if rec := doH(t, m, http.MethodPost, "/api/v1/projects", CreateProjectRequest{ID: "team-a", ProjectSpec: spec}); rec.Code != http.StatusCreated {
		t.Fatalf("create team-a status = %d: %s", rec.Code, rec.Body.String())
	}
	mustCommit(t, m, "/api/v1/commit", labels, "m0", 10)
	mustCommit(t, m, "/api/v1/commit", labels, "m1", 11)
	mustCommit(t, m, "/api/v1/projects/team-a/commit", labels, "a0", 30)

	defaultHistory := bodyOf(t, m, "/api/v1/history")
	teamHistory := bodyOf(t, m, "/api/v1/projects/team-a/history")
	projectList := bodyOf(t, m, "/api/v1/projects")

	rec := doH(t, m, http.MethodPost, "/api/v1/admin/backup", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("backup status = %d: %s", rec.Code, rec.Body.String())
	}
	tarball := append([]byte(nil), rec.Body.Bytes()...)

	// Intake was never paused: the next commit lands normally.
	mustCommit(t, m, "/api/v1/commit", labels, "m2", 12)

	// Backup counters are operational state: the admin reset leaves them.
	doH(t, m, http.MethodPost, "/api/v1/admin/reset-caches", nil)
	var mm MultiMetricsResponse
	if err := json.Unmarshal(bodyOf(t, m, "/api/v1/metrics"), &mm); err != nil {
		t.Fatal(err)
	}
	if mm.Storage == nil || mm.Storage.BackupsTotal != 1 || mm.Storage.BackupBytesTotal == 0 {
		t.Fatalf("global storage after backup+reset = %+v, want backups_total=1", mm.Storage)
	}
	m.Close()

	tarPath := filepath.Join(t.TempDir(), "backup.tar.gz")
	if err := os.WriteFile(tarPath, tarball, 0o644); err != nil {
		t.Fatal(err)
	}

	// Restore under a different genesis must refuse before adopting.
	wrong := g
	wrong.Condition = "n > 0.7 +/- 0.1"
	if err := RestoreBackup(tarPath, t.TempDir(), wrong); err == nil {
		t.Fatal("restore accepted a backup taken under a different genesis")
	}

	restoreDir := t.TempDir()
	if err := RestoreBackup(tarPath, restoreDir, g); err != nil {
		t.Fatal(err)
	}
	// Restoring again into the now-populated dir must refuse.
	if err := RestoreBackup(tarPath, restoreDir, g); err == nil {
		t.Fatal("restore overwrote an existing data directory")
	}

	m2 := newTestMulti(t, MultiOptions{DataDir: restoreDir, Tenant: Options{CompactAt: -1, Webhooks: notify.NewOutbox()}})
	defer m2.Close()
	if got := bodyOf(t, m2, "/api/v1/history"); !bytes.Equal(got, defaultHistory) {
		t.Fatalf("restored default history diverged:\n%s\n%s", got, defaultHistory)
	}
	if got := bodyOf(t, m2, "/api/v1/projects/team-a/history"); !bytes.Equal(got, teamHistory) {
		t.Fatalf("restored team-a history diverged:\n%s\n%s", got, teamHistory)
	}
	if got := bodyOf(t, m2, "/api/v1/projects"); !bytes.Equal(got, projectList) {
		t.Fatalf("restored project list diverged:\n%s\n%s", got, projectList)
	}
	// The restored control plane accepts new work immediately.
	mustCommit(t, m2, "/api/v1/commit", labels, "r0", 40)
}

// TestScopedBackupRestoresAsDefault: one tenant's flat backup tarball
// restores into a fresh data dir as that server's default project.
func TestScopedBackupRestoresAsDefault(t *testing.T) {
	dir := t.TempDir()
	m := newTestMulti(t, MultiOptions{DataDir: dir, Tenant: Options{CompactAt: -1, Webhooks: notify.NewOutbox()}})
	labels := testLabels()
	spec := testSpec(t, 3, testSize, 2)
	if rec := doH(t, m, http.MethodPost, "/api/v1/projects", CreateProjectRequest{ID: "team-a", ProjectSpec: spec}); rec.Code != http.StatusCreated {
		t.Fatalf("create team-a status = %d: %s", rec.Code, rec.Body.String())
	}
	mustCommit(t, m, "/api/v1/projects/team-a/commit", labels, "a0", 30)
	teamHistory := bodyOf(t, m, "/api/v1/projects/team-a/history")

	rec := doH(t, m, http.MethodPost, "/api/v1/admin/backup?project=team-a", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("scoped backup status = %d: %s", rec.Code, rec.Body.String())
	}
	entries := readTarball(t, rec.Body.Bytes())
	if _, ok := entries["snapshot.json"]; !ok {
		t.Fatalf("scoped backup is not flat; has %v", keysOf(entries))
	}
	m.Close()

	tarPath := filepath.Join(t.TempDir(), "team-a.tar.gz")
	if err := os.WriteFile(tarPath, rec.Body.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	teamGenesis, err := spec.genesis()
	if err != nil {
		t.Fatal(err)
	}
	restoreDir := t.TempDir()
	if err := RestoreBackup(tarPath, restoreDir, teamGenesis); err != nil {
		t.Fatal(err)
	}
	m2, err := NewMulti(teamGenesis, MultiOptions{DataDir: restoreDir, Tenant: Options{WALNoSync: true, CompactAt: -1, Webhooks: notify.NewOutbox()}})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := bodyOf(t, m2, "/api/v1/history"); !bytes.Equal(got, teamHistory) {
		t.Fatalf("restored tenant history diverged:\n%s\n%s", got, teamHistory)
	}
}

// TestMigrationResumesAfterCrashAtRename: a crash between the legacy
// layout migration's two renames (snapshot moved into default/, wal.log
// still at the root) resumes cleanly at the next start with the full
// history intact.
func TestMigrationResumesAfterCrashAtRename(t *testing.T) {
	root := t.TempDir()
	g, labels := durableGenesis(t, 3, testSize)
	srv, err := NewDurable(g, root, Options{WALNoSync: true, Webhooks: notify.NewOutbox()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		rec, _ := doJSON(t, srv, http.MethodPost, "/api/v1/commit", CommitRequest{
			Model: fmt.Sprintf("m%d", i), Author: "dev", Message: "x",
			Predictions: goodPredictions(t, labels, 0.9, int64(10+i)),
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("commit %d status = %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	history := getBody(t, srv, "/api/v1/history")
	srv.Close()

	// Simulate the crash: the migration's first rename (snapshot) landed,
	// the second (wal.log) never ran.
	defDir := filepath.Join(root, DefaultProject)
	if err := os.MkdirAll(defDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(root, "snapshot.json"), filepath.Join(defDir, "snapshot.json")); err != nil {
		t.Fatal(err)
	}

	m := newTestMulti(t, MultiOptions{DataDir: root})
	defer m.Close()
	if got := bodyOf(t, m, "/api/v1/history"); !bytes.Equal(got, history) {
		t.Fatalf("history diverged across resumed migration:\n%s\n%s", got, history)
	}
	if _, err := os.Stat(filepath.Join(root, "wal.log")); !os.IsNotExist(err) {
		t.Fatal("resumed migration left the legacy wal.log at the root")
	}
}
