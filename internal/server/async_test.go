package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/easeml/ci/internal/bounds"
	"github.com/easeml/ci/internal/data"
	"github.com/easeml/ci/internal/engine"
	"github.com/easeml/ci/internal/interval"
	"github.com/easeml/ci/internal/labeling"
	"github.com/easeml/ci/internal/model"
	"github.com/easeml/ci/internal/notify"
	"github.com/easeml/ci/internal/script"
)

// newServerWith builds a server over a synthetic testset of the given
// size and step budget, with explicit queue options — the async tests'
// generalization of newTestServer.
func newServerWith(t *testing.T, adaptKind script.AdaptivityKind, steps, size int, opts Options) (*Server, []int) {
	t.Helper()
	labels := make([]int, size)
	ds := &data.Dataset{Name: "srv", Classes: testClasses}
	for i := range labels {
		labels[i] = i % testClasses
		ds.X = append(ds.X, []float64{float64(i)})
		ds.Y = append(ds.Y, labels[i])
	}
	adapt := script.Adaptivity{Kind: adaptKind}
	if adaptKind == script.AdaptivityNone {
		adapt.Email = "qa@x.y"
	}
	cfg, err := script.New("n > 0.6 +/- 0.1", 0.99, interval.FPFree, adapt, steps)
	if err != nil {
		t.Fatal(err)
	}
	h0, err := model.SimulatedPredictions(labels, testClasses, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(cfg, ds, labeling.NewTruthOracle(ds.Y), engine.Options{
		InitialModel: model.NewFixedPredictions("h0", h0),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithOptions(cfg, eng, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, labels
}

func decodeJobStatus(t *testing.T, rec *httptest.ResponseRecorder) JobStatusResponse {
	t.Helper()
	var st JobStatusResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("bad job status JSON: %v: %s", err, rec.Body.String())
	}
	return st
}

// waitForWebhooks waits until the outbox holds at least n webhook
// deliveries (they arrive asynchronously from the delivery goroutines)
// and returns them.
func waitForWebhooks(t *testing.T, outbox *notify.Outbox, n int) []notify.Notification {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		hooks := outbox.ByKind(notify.KindWebhook)
		if len(hooks) >= n || time.Now().After(deadline) {
			return hooks
		}
		time.Sleep(time.Millisecond)
	}
}

// pollUntilTerminal polls one job until it reaches a terminal state.
func pollUntilTerminal(t *testing.T, srv *Server, jobID string) JobStatusResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rec, _ := doJSON(t, srv, http.MethodGet, jobsPath+jobID, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("poll %s status = %d: %s", jobID, rec.Code, rec.Body.String())
		}
		st := decodeJobStatus(t, rec)
		if st.State == "done" || st.State == "failed" {
			return st
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", jobID)
	return JobStatusResponse{}
}

// TestAsyncSubmitPollWebhookDeterministic walks the whole async flow
// under the manual queue harness, observing every intermediate state the
// production path goes through: accepted-queued, polled-queued, executed,
// polled-done, webhook delivered.
func TestAsyncSubmitPollWebhookDeterministic(t *testing.T) {
	outbox := notify.NewOutbox()
	srv, labels := newServerWith(t, script.AdaptivityFull, 3, testSize, Options{
		ManualQueue: true,
		Webhooks:    outbox,
	})
	rec, _ := doJSON(t, srv, http.MethodPost, "/api/v1/commit/async", AsyncCommitRequest{
		CommitRequest: CommitRequest{
			Model: "cand", Author: "dev", Message: "async",
			Predictions: goodPredictions(t, labels, 0.9, 2),
		},
		Webhook: "http://subscriber.local/hook",
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("async submit status = %d: %s", rec.Code, rec.Body.String())
	}
	var acc JobAcceptedResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
		t.Fatal(err)
	}
	if acc.JobID == "" || acc.State != "queued" || acc.Poll != jobsPath+acc.JobID {
		t.Errorf("accepted = %+v", acc)
	}

	// Nothing runs until the harness says so.
	rec, _ = doJSON(t, srv, http.MethodGet, acc.Poll, nil)
	if st := decodeJobStatus(t, rec); st.State != "queued" || st.Result != nil {
		t.Errorf("pre-run poll = %+v", st)
	}
	if len(outbox.Messages()) != 0 {
		t.Error("webhook fired before the job ran")
	}

	if !srv.RunNextJob() {
		t.Fatal("RunNextJob found no queued job")
	}
	if srv.RunNextJob() {
		t.Error("backlog should be empty after one run")
	}

	rec, _ = doJSON(t, srv, http.MethodGet, acc.Poll, nil)
	st := decodeJobStatus(t, rec)
	if st.State != "done" || st.Result == nil || st.Error != "" {
		t.Fatalf("post-run poll = %+v", st)
	}
	if !st.Result.Signal || st.Result.Step != 1 || st.Result.Truth != "True" {
		t.Errorf("job result = %+v", st.Result)
	}

	// Exactly one webhook, carrying the same JobStatusResponse the poll
	// endpoint serves. Delivery happens off the worker goroutine, so wait
	// for it.
	hooks := waitForWebhooks(t, outbox, 1)
	if len(hooks) != 1 {
		t.Fatalf("webhook deliveries = %d, want 1", len(hooks))
	}
	if hooks[0].To != "http://subscriber.local/hook" {
		t.Errorf("webhook target = %q", hooks[0].To)
	}
	var delivered JobStatusResponse
	if err := json.Unmarshal([]byte(hooks[0].Body), &delivered); err != nil {
		t.Fatalf("webhook body is not a JobStatusResponse: %v: %s", err, hooks[0].Body)
	}
	if !bytes.Equal(rec.Body.Bytes()[:len(rec.Body.Bytes())-1], []byte(hooks[0].Body)) &&
		fmt.Sprintf("%+v", delivered) != fmt.Sprintf("%+v", st) {
		t.Errorf("webhook payload %+v != polled status %+v", delivered, st)
	}
}

func TestAsyncValidation(t *testing.T) {
	srv, labels := newServerWith(t, script.AdaptivityFull, 3, testSize, Options{ManualQueue: true})
	rec, _ := doJSON(t, srv, http.MethodGet, "/api/v1/commit/async", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET async status = %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/api/v1/commit/async", bytes.NewBufferString("{nope"))
	rec2 := httptest.NewRecorder()
	srv.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusBadRequest {
		t.Errorf("malformed async JSON status = %d", rec2.Code)
	}
	rec, _ = doJSON(t, srv, http.MethodPost, "/api/v1/commit/async", AsyncCommitRequest{
		CommitRequest: CommitRequest{Predictions: goodPredictions(t, labels, 0.9, 2)},
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("missing model status = %d", rec.Code)
	}
	for _, hook := range []string{"not-a-url", "ftp://x/y", "http://"} {
		rec, _ = doJSON(t, srv, http.MethodPost, "/api/v1/commit/async", AsyncCommitRequest{
			CommitRequest: CommitRequest{Model: "m", Predictions: goodPredictions(t, labels, 0.9, 2)},
			Webhook:       hook,
		})
		if rec.Code != http.StatusBadRequest {
			t.Errorf("webhook %q status = %d, want 400", hook, rec.Code)
		}
	}
	// A bad predictions length is accepted at submit time and fails at
	// execution (the testset may rotate between the two).
	rec, _ = doJSON(t, srv, http.MethodPost, "/api/v1/commit/async", AsyncCommitRequest{
		CommitRequest: CommitRequest{Model: "short", Predictions: []int{1, 2, 3}},
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("short-predictions submit status = %d", rec.Code)
	}
	var acc JobAcceptedResponse
	json.Unmarshal(rec.Body.Bytes(), &acc)
	srv.RunNextJob()
	rec, _ = doJSON(t, srv, http.MethodGet, jobsPath+acc.JobID, nil)
	if st := decodeJobStatus(t, rec); st.State != "failed" || st.Error == "" {
		t.Errorf("short-predictions job = %+v", st)
	}

	// Job endpoint validation.
	rec, _ = doJSON(t, srv, http.MethodGet, jobsPath+"job-999", nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown job status = %d", rec.Code)
	}
	rec, _ = doJSON(t, srv, http.MethodGet, jobsPath, nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("empty job ID status = %d", rec.Code)
	}
	rec, _ = doJSON(t, srv, http.MethodPut, jobsPath+"job-1", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("PUT job status = %d", rec.Code)
	}
}

func TestAsyncCancel(t *testing.T) {
	srv, labels := newServerWith(t, script.AdaptivityFull, 3, testSize, Options{ManualQueue: true})
	preds := goodPredictions(t, labels, 0.9, 2)
	submit := func(name string) string {
		rec, _ := doJSON(t, srv, http.MethodPost, "/api/v1/commit/async", AsyncCommitRequest{
			CommitRequest: CommitRequest{Model: name, Predictions: preds},
		})
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit status = %d", rec.Code)
		}
		var acc JobAcceptedResponse
		json.Unmarshal(rec.Body.Bytes(), &acc)
		return acc.JobID
	}
	keep := submit("keep")
	drop := submit("drop")

	rec, _ := doJSON(t, srv, http.MethodDelete, jobsPath+drop, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel status = %d: %s", rec.Code, rec.Body.String())
	}
	if st := decodeJobStatus(t, rec); st.State != "failed" || st.Error == "" {
		t.Errorf("canceled job = %+v", st)
	}
	// Cancel is not idempotent: the job is already terminal.
	rec, _ = doJSON(t, srv, http.MethodDelete, jobsPath+drop, nil)
	if rec.Code != http.StatusConflict {
		t.Errorf("double cancel status = %d", rec.Code)
	}
	rec, _ = doJSON(t, srv, http.MethodDelete, jobsPath+"job-77", nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown cancel status = %d", rec.Code)
	}

	// The canceled commit never reached the engine; the kept one does.
	for srv.RunNextJob() {
	}
	st := pollUntilTerminal(t, srv, keep)
	if st.State != "done" || st.Result.Step != 1 {
		t.Errorf("kept job = %+v", st)
	}
	var status StatusResponse
	rec, _ = doJSON(t, srv, http.MethodGet, "/api/v1/status", nil)
	json.Unmarshal(rec.Body.Bytes(), &status)
	if status.Commits != 1 {
		t.Errorf("engine saw %d commits, want 1 (cancel leaked through)", status.Commits)
	}
}

func TestAsyncQueueFullAnswers503(t *testing.T) {
	srv, labels := newServerWith(t, script.AdaptivityFull, 3, testSize, Options{
		ManualQueue:   true,
		QueueCapacity: 1,
	})
	preds := goodPredictions(t, labels, 0.9, 2)
	rec, _ := doJSON(t, srv, http.MethodPost, "/api/v1/commit/async", AsyncCommitRequest{
		CommitRequest: CommitRequest{Model: "first", Predictions: preds},
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("first submit = %d", rec.Code)
	}
	rec, _ = doJSON(t, srv, http.MethodPost, "/api/v1/commit/async", AsyncCommitRequest{
		CommitRequest: CommitRequest{Model: "second", Predictions: preds},
	})
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("over-capacity submit = %d, want 503", rec.Code)
	}
	srv.RunNextJob()
	rec, _ = doJSON(t, srv, http.MethodPost, "/api/v1/commit/async", AsyncCommitRequest{
		CommitRequest: CommitRequest{Model: "third", Predictions: preds},
	})
	if rec.Code != http.StatusAccepted {
		t.Errorf("post-drain submit = %d", rec.Code)
	}
}

// TestWebhookEndToEnd runs the production transport for real: an
// httptest subscriber receives job-finished callbacks POSTed by the
// HTTPPoster from the worker goroutine, exactly once per job.
func TestWebhookEndToEnd(t *testing.T) {
	var mu sync.Mutex
	deliveries := map[string]int{}
	subscriber := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var st JobStatusResponse
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Errorf("webhook body: %v", err)
			return
		}
		mu.Lock()
		deliveries[st.JobID]++
		mu.Unlock()
	}))
	defer subscriber.Close()

	srv, labels := newServerWith(t, script.AdaptivityFull, 16, 900, Options{})
	var ids []string
	for i := 0; i < 8; i++ {
		rec, _ := doJSON(t, srv, http.MethodPost, "/api/v1/commit/async", AsyncCommitRequest{
			CommitRequest: CommitRequest{
				Model:       fmt.Sprintf("m%d", i),
				Predictions: goodPredictions(t, labels, 0.9, int64(10+i)),
			},
			Webhook: subscriber.URL,
		})
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit %d status = %d: %s", i, rec.Code, rec.Body.String())
		}
		var acc JobAcceptedResponse
		json.Unmarshal(rec.Body.Bytes(), &acc)
		ids = append(ids, acc.JobID)
	}
	for _, id := range ids {
		if st := pollUntilTerminal(t, srv, id); st.State != "done" {
			t.Errorf("job %s = %+v", id, st)
		}
	}
	// Deliveries run on their own goroutines after the terminal
	// transition; Close waits for them all.
	srv.Close()
	mu.Lock()
	for _, id := range ids {
		if deliveries[id] != 1 {
			t.Errorf("job %s delivered %d times, want exactly 1", id, deliveries[id])
		}
	}
	mu.Unlock()
	var m MetricsResponse
	rec, _ := doJSON(t, srv, http.MethodGet, "/api/v1/metrics", nil)
	json.Unmarshal(rec.Body.Bytes(), &m)
	if m.WebhooksSent != uint64(len(ids)) || m.WebhooksFailed != 0 {
		t.Errorf("webhook counters = sent %d failed %d, want %d/0", m.WebhooksSent, m.WebhooksFailed, len(ids))
	}
	if m.CommitQueue.Completed != uint64(len(ids)) {
		t.Errorf("queue counters = %+v", m.CommitQueue)
	}
}

// TestAsyncSyncEquivalence is the PR's acceptance criterion: a burst of
// 64 concurrent async submissions is fully accepted, drains FIFO, and
// leaves the engine in a byte-identical state to the same commits pushed
// sequentially through the synchronous endpoint.
func TestAsyncSyncEquivalence(t *testing.T) {
	const burst = 64
	mkPreds := func(t *testing.T, labels []int, i int) []int {
		// A fixed accuracy ramp, deterministic per index, shared by both
		// servers.
		return goodPredictions(t, labels, 0.7+0.2*float64(i)/burst, int64(1000+i))
	}

	// Sequential synchronous reference.
	syncSrv, labels := newServerWith(t, script.AdaptivityFull, burst, 2500, Options{})
	for i := 0; i < burst; i++ {
		rec, _ := doJSON(t, syncSrv, http.MethodPost, "/api/v1/commit", CommitRequest{
			Model: fmt.Sprintf("m%d", i), Author: "dev", Message: fmt.Sprintf("commit %d", i),
			Predictions: mkPreds(t, labels, i),
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("sync commit %d status = %d: %s", i, rec.Code, rec.Body.String())
		}
	}

	// Concurrent asynchronous burst. Submission order must be the FIFO
	// order, so the burst races the HTTP accept path (the part that must
	// absorb concurrency) while each goroutine waits its turn to submit.
	asyncSrv, labels2 := newServerWith(t, script.AdaptivityFull, burst, 2500, Options{QueueCapacity: burst})
	if len(labels2) != len(labels) {
		t.Fatal("test servers disagree on testset size")
	}
	ids := make([]string, burst)
	turn := make([]chan struct{}, burst+1)
	for i := range turn {
		turn[i] = make(chan struct{})
	}
	var wg sync.WaitGroup
	var accepted atomic.Int64
	for i := 0; i < burst; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(AsyncCommitRequest{CommitRequest: CommitRequest{
				Model: fmt.Sprintf("m%d", i), Author: "dev", Message: fmt.Sprintf("commit %d", i),
				Predictions: mkPreds(t, labels, i),
			}})
			<-turn[i] // my submission slot
			req := httptest.NewRequest(http.MethodPost, "/api/v1/commit/async", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			asyncSrv.ServeHTTP(rec, req)
			close(turn[i+1])
			if rec.Code != http.StatusAccepted {
				t.Errorf("async submit %d status = %d: %s", i, rec.Code, rec.Body.String())
				return
			}
			accepted.Add(1)
			var acc JobAcceptedResponse
			json.Unmarshal(rec.Body.Bytes(), &acc)
			ids[i] = acc.JobID
		}()
	}
	close(turn[0])
	wg.Wait()
	if accepted.Load() != burst {
		t.Fatalf("accepted %d of %d submissions", accepted.Load(), burst)
	}

	// Drain: every job terminal, in FIFO submission order (job i is the
	// i+1'th evaluation step).
	for i, id := range ids {
		st := pollUntilTerminal(t, asyncSrv, id)
		if st.State != "done" || st.Result == nil {
			t.Fatalf("job %d (%s) = %+v", i, id, st)
		}
		if st.Result.Step != i+1 {
			t.Errorf("job %d ran as step %d: FIFO order violated", i, st.Result.Step)
		}
		if st.Seq != i+1 {
			t.Errorf("job %d has seq %d", i, st.Seq)
		}
	}

	// The two engines must now be byte-identical observables: history,
	// status, and the label ledger.
	syncHist, _ := doJSON(t, syncSrv, http.MethodGet, "/api/v1/history", nil)
	asyncHist, _ := doJSON(t, asyncSrv, http.MethodGet, "/api/v1/history", nil)
	if !bytes.Equal(syncHist.Body.Bytes(), asyncHist.Body.Bytes()) {
		t.Errorf("histories differ:\nsync : %.300s\nasync: %.300s",
			syncHist.Body.String(), asyncHist.Body.String())
	}
	syncStatus, _ := doJSON(t, syncSrv, http.MethodGet, "/api/v1/status", nil)
	asyncStatus, _ := doJSON(t, asyncSrv, http.MethodGet, "/api/v1/status", nil)
	if !bytes.Equal(syncStatus.Body.Bytes(), asyncStatus.Body.Bytes()) {
		t.Errorf("statuses differ:\nsync : %s\nasync: %s",
			syncStatus.Body.String(), asyncStatus.Body.String())
	}
	if a, b := syncSrv.eng.LabelCost().Total(), asyncSrv.eng.LabelCost().Total(); a != b {
		t.Errorf("label ledger totals differ: sync %d, async %d", a, b)
	}
	// H/history ordering: generation and step sequences agree exactly.
	sh, ah := syncSrv.eng.History(), asyncSrv.eng.History()
	if len(sh) != burst || len(ah) != burst {
		t.Fatalf("history lengths: sync %d async %d, want %d", len(sh), len(ah), burst)
	}
	for i := range sh {
		if sh[i].Step != ah[i].Step || sh[i].Generation != ah[i].Generation ||
			sh[i].Commit.ID != ah[i].Commit.ID || sh[i].Pass != ah[i].Pass {
			t.Errorf("history[%d] differs: sync %+v vs async %+v", i, sh[i], ah[i])
		}
	}
}

// TestMetricsSweepCounters covers the sweep observability satellite:
// /api/v1/metrics surfaces the event-driven sweep's process-wide counters
// next to ExactEvals, an uncached worst-case evaluation moves all three,
// and the admin cache reset returns them to zero.
func TestMetricsSweepCounters(t *testing.T) {
	srv, _ := newTestServer(t, script.AdaptivityFull)
	doJSON(t, srv, http.MethodPost, "/api/v1/admin/reset-caches", nil)

	// Drive one uncached worst-case evaluation through the same
	// process-wide engine the tight-bound plans use.
	if _, err := bounds.ExactWorstCaseFailure(5000, 0.02, 0, 1); err != nil {
		t.Fatal(err)
	}
	rec, _ := doJSON(t, srv, http.MethodGet, "/api/v1/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	var m MetricsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.ExactEvals == 0 {
		t.Error("exact_evals should count the uncached evaluation")
	}
	if m.SweepEvents == 0 {
		t.Error("sweep_events should count the enumerated lattice events")
	}
	if m.SweepSegmentsRefined == 0 {
		t.Error("sweep_segments_refined should count the exactly evaluated events")
	}
	if m.SweepSegmentsAnalytic == 0 {
		t.Error("sweep_segments_analytic should count the events the bisection excluded")
	}
	if m.SweepSegmentsAnalytic+m.SweepSegmentsRefined != m.SweepEvents {
		t.Errorf("analytic (%d) + refined (%d) != events (%d)",
			m.SweepSegmentsAnalytic, m.SweepSegmentsRefined, m.SweepEvents)
	}

	// The admin reset clears them along with the memo.
	rec, _ = doJSON(t, srv, http.MethodPost, "/api/v1/admin/reset-caches", nil)
	var pre MetricsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pre); err != nil {
		t.Fatal(err)
	}
	if pre.SweepEvents == 0 {
		t.Error("pre-reset snapshot should still show the sweep traffic")
	}
	rec, _ = doJSON(t, srv, http.MethodGet, "/api/v1/metrics", nil)
	var post MetricsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &post); err != nil {
		t.Fatal(err)
	}
	if post.SweepEvents != 0 || post.SweepSegmentsAnalytic != 0 || post.SweepSegmentsRefined != 0 {
		t.Errorf("post-reset sweep counters not zero: %+v", post)
	}
}

// TestAdminResetCaches covers the ROADMAP item: the admin endpoint
// returns the pre-reset counters, drops both caches to zero, and plans
// recompute identically afterwards.
func TestAdminResetCaches(t *testing.T) {
	srv, _ := newTestServer(t, script.AdaptivityFull)
	// Prime the plan cache and record the served plan.
	before, _ := doJSON(t, srv, http.MethodGet, "/api/v1/plan", nil)
	if before.Code != http.StatusOK {
		t.Fatalf("plan status = %d", before.Code)
	}
	doJSON(t, srv, http.MethodGet, "/api/v1/plan", nil)

	rec, _ := doJSON(t, srv, http.MethodGet, "/api/v1/admin/reset-caches", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET reset status = %d", rec.Code)
	}
	rec, _ = doJSON(t, srv, http.MethodPost, "/api/v1/admin/reset-caches", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("reset status = %d: %s", rec.Code, rec.Body.String())
	}
	var pre MetricsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pre); err != nil {
		t.Fatal(err)
	}
	if pre.PlanCache.PlanEntries == 0 || pre.PlanCache.PlanHits == 0 {
		t.Errorf("pre-reset snapshot should show the primed cache: %+v", pre.PlanCache)
	}

	// Post-reset: counters are zero.
	rec, _ = doJSON(t, srv, http.MethodGet, "/api/v1/metrics", nil)
	var post MetricsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &post); err != nil {
		t.Fatal(err)
	}
	if post.PlanCache.PlanEntries != 0 || post.PlanCache.PlanHits != 0 || post.PlanCache.PlanMisses != 0 {
		t.Errorf("post-reset plan cache not empty: %+v", post.PlanCache)
	}
	if post.ExactMemoLen != 0 || post.ExactMemoHits != 0 || post.ExactMemoMisses != 0 {
		t.Errorf("post-reset exact memo not empty: hits=%d misses=%d len=%d",
			post.ExactMemoHits, post.ExactMemoMisses, post.ExactMemoLen)
	}
	if post.SweepEvents != 0 || post.SweepSegmentsAnalytic != 0 || post.SweepSegmentsRefined != 0 {
		t.Errorf("post-reset sweep counters not zero: events=%d analytic=%d refined=%d",
			post.SweepEvents, post.SweepSegmentsAnalytic, post.SweepSegmentsRefined)
	}

	// Plans recompute identically (a fresh miss, then the same bytes).
	after, _ := doJSON(t, srv, http.MethodGet, "/api/v1/plan", nil)
	if !bytes.Equal(after.Body.Bytes(), before.Body.Bytes()) {
		t.Errorf("recomputed plan differs:\n%s\n%s", after.Body.String(), before.Body.String())
	}
	rec, _ = doJSON(t, srv, http.MethodGet, "/api/v1/metrics", nil)
	json.Unmarshal(rec.Body.Bytes(), &post)
	if post.PlanCache.PlanMisses == 0 {
		t.Errorf("recompute should register a fresh miss: %+v", post.PlanCache)
	}
}
