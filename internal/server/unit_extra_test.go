package server

import (
	"errors"
	"fmt"
	"net/http"
	"testing"

	"github.com/easeml/ci/internal/engine"
	"github.com/easeml/ci/internal/queue"
	"github.com/easeml/ci/internal/script"
)

// TestCommitErrorStatusMapping pins the error→status contract of the
// commit executor: 400 malformed, 409 state-moved conflicts, 503 when
// the log is poisoned, 422 for evaluation failures.
func TestCommitErrorStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{badRequestError{"short predictions"}, http.StatusBadRequest},
		{engine.ErrNeedNewTestset, http.StatusConflict},
		{queue.ErrCanceled, http.StatusConflict},
		{fmt.Errorf("append: %w", errWALPoisoned), http.StatusServiceUnavailable},
		{errors.New("evaluation blew up"), http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		if got := commitErrorStatus(tc.err); got != tc.want {
			t.Errorf("commitErrorStatus(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

func TestDatasetFromLabelsRejectsBadLabels(t *testing.T) {
	if _, err := datasetFromLabels("x", []int{0, 1, 5}, 2); err == nil {
		t.Error("out-of-range label should fail")
	}
	if _, err := datasetFromLabels("x", []int{0, -1}, 2); err == nil {
		t.Error("negative label should fail")
	}
}

// TestMethodNotAllowed sweeps every endpoint with the wrong verb.
func TestMethodNotAllowed(t *testing.T) {
	srv, _ := newServerWith(t, script.AdaptivityFull, 3, testSize, Options{})
	defer srv.Close()
	cases := []struct{ method, path string }{
		{http.MethodPost, "/api/v1/plan"},
		{http.MethodPost, "/api/v1/status"},
		{http.MethodPost, "/api/v1/history"},
		{http.MethodPost, "/api/v1/metrics"},
		{http.MethodGet, "/api/v1/commit"},
		{http.MethodGet, "/api/v1/testset"},
		{http.MethodGet, "/api/v1/admin/reset-caches"},
	}
	for _, tc := range cases {
		rec, _ := doJSON(t, srv, tc.method, tc.path, nil)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", tc.method, tc.path, rec.Code)
		}
	}
}
