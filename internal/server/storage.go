package server

// Storage fault tolerance: health reporting, online backup, and
// restore. The write-ahead log is the tenant's source of truth, so its
// health is operational state worth a first-class surface — /healthz
// and /readyz for load balancers, a storage section in the metrics, a
// streaming backup endpoint that never pauses intake, and a restore
// path that refuses to adopt state built under a different Genesis.

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path"
	"path/filepath"
	"strings"
	"time"

	"github.com/easeml/ci/internal/registry"
	"github.com/easeml/ci/internal/wal"
)

// Storage health states, ordered by severity. "ok" serves everything;
// "degraded" serves reads but 503s mutations (the WAL is poisoned);
// "salvage-required" serves nothing for that tenant until an operator
// (or -auto-salvage) runs salvage — but never takes the control plane
// down with it.
const (
	StorageOK              = "ok"
	StorageDegraded        = "degraded"
	StorageSalvageRequired = "salvage-required"
)

// StorageHealth is one log directory's storage condition plus its
// salvage and backup history. Quarantined bytes are read from the
// quarantine files on disk, so the counter survives restarts; none of
// these fields are cleared by the admin cache reset.
type StorageHealth struct {
	State            string `json:"state"`
	WALPoisoned      bool   `json:"wal_poisoned"`
	SalvageRuns      uint64 `json:"salvage_runs"`
	QuarantinedBytes int64  `json:"quarantined_bytes"`
	BackupsTotal     uint64 `json:"backups_total"`
	BackupBytesTotal uint64 `json:"backup_bytes_total"`
}

// storageHealth snapshots a durable server's storage condition; nil for
// an in-memory server (no storage to be healthy about).
func (s *Server) storageHealth() *StorageHealth {
	if s.wlog == nil {
		return nil
	}
	h := &StorageHealth{
		State:            StorageOK,
		SalvageRuns:      s.salvageRuns.Load(),
		QuarantinedBytes: wal.QuarantinedBytes(s.dataDir),
		BackupsTotal:     s.backups.Load(),
		BackupBytesTotal: s.backupBytes.Load(),
	}
	if s.walFailed.Load() {
		h.State = StorageDegraded
		h.WALPoisoned = true
	}
	return h
}

// --- online backup ------------------------------------------------------

// backupPayload produces a consistent (snapshot, log) byte pair of the
// tenant's durable state without writing anything: the same freeze
// Compact takes (engine lock + table lock, blocking every appender),
// but the snapshot is encoded to memory and the log read as-is, so
// intake resumes the moment the bytes are captured — the copy out to
// the client happens outside the lock. The job table is NOT pruned:
// backup must observe, never mutate.
func (s *Server) backupPayload() (snapshot, log []byte, err error) {
	if s.wlog == nil {
		return nil, nil, fmt.Errorf("server: not a durable server")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.walFailed.Load() {
		// The in-memory state is ahead of the log; a snapshot of it would
		// be a backup of state the log does not vouch for. The on-disk
		// files are still the durable truth — the control plane's unscoped
		// backup copies them raw instead.
		return nil, nil, fmt.Errorf("%w: refusing to back up state the log does not vouch for", errWALPoisoned)
	}
	s.tableMu.Lock()
	defer s.tableMu.Unlock()
	jobs := make([]*jobEntry, 0, len(s.tableOrder))
	for _, id := range s.tableOrder {
		jobs = append(jobs, s.table[id])
	}
	snap := walSnapshot{Genesis: s.genesisFP, Engine: s.eng.Snapshot(), Jobs: jobs, NextJobSeq: s.tableNextSeq}
	snapshot, err = s.wlog.SnapshotBytes(snap)
	if err != nil {
		return nil, nil, err
	}
	log, err = s.wlog.ReadRaw()
	if err != nil {
		return nil, nil, err
	}
	return snapshot, log, nil
}

// handleAdminBackup streams the tenant's state as a gzipped tarball
// with flat snapshot.json + wal.log entries — restorable as a fresh
// data directory. POST /api/v1/admin/backup.
func (s *Server) handleAdminBackup(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.wlog == nil {
		writeError(w, http.StatusConflict, "server is not durable (no data directory)")
		return
	}
	snap, log, err := s.backupPayload()
	if err != nil {
		writeStorageError(w, http.StatusServiceUnavailable, err)
		return
	}
	entries := []tarEntry{{Name: "snapshot.json", Data: snap}}
	if len(log) > 0 {
		entries = append(entries, tarEntry{Name: "wal.log", Data: log})
	}
	s.recordBackup(entries)
	streamTarball(w, "easeml-ci-backup.tar.gz", entries)
}

// recordBackup folds one backup's size into the serving counters.
func (s *Server) recordBackup(entries []tarEntry) {
	s.backups.Add(1)
	var total int64
	for _, e := range entries {
		total += int64(len(e.Data))
	}
	s.backupBytes.Add(uint64(total))
}

// tarEntry is one file of a backup tarball.
type tarEntry struct {
	Name string
	Data []byte
}

// streamTarball writes entries as a deterministic .tar.gz response
// (fixed mtimes — two backups of the same state are byte-identical).
func streamTarball(w http.ResponseWriter, filename string, entries []tarEntry) {
	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", filename))
	w.WriteHeader(http.StatusOK)
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	for _, e := range entries {
		hdr := &tar.Header{
			Name:    e.Name,
			Mode:    0o644,
			Size:    int64(len(e.Data)),
			ModTime: time.Unix(0, 0),
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return // mid-stream: nothing more we can tell the client
		}
		if _, err := tw.Write(e.Data); err != nil {
			return
		}
	}
	_ = tw.Close()
	_ = gz.Close()
}

// rawDirEntries copies whatever write-ahead state exists in dir —
// including damaged files and their quarantines — verbatim into tarball
// entries under prefix. The fallback path for tenants whose state
// cannot be snapshotted live (sick, or poisoned): a backup must never
// silently drop a tenant, so it carries their raw bytes for offline
// salvage instead.
func rawDirEntries(dir, prefix string) []tarEntry {
	var entries []tarEntry
	for _, name := range []string{
		"snapshot.json", "wal.log",
		"snapshot.json" + wal.QuarantineSuffix, "wal.log" + wal.QuarantineSuffix,
	} {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		entries = append(entries, tarEntry{Name: path.Join(prefix, name), Data: raw})
	}
	return entries
}

// handleAdminBackup on the control plane: scoped with ?project= it
// streams that tenant's flat tarball; unscoped it streams the whole
// control plane — the registry's log under _control/ plus every
// tenant under <id>/ — consistent per log, without pausing intake
// anywhere (each tenant is frozen only for its in-memory byte capture).
func (m *Multi) handleAdminBackup(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if m.dataDir == "" {
		writeError(w, http.StatusConflict, "control plane is not durable (no data directory)")
		return
	}
	id, srv, ok := m.scopedTenant(w, r)
	if !ok {
		return
	}
	if srv != nil {
		_ = id
		srv.handleAdminBackup(w, r)
		return
	}
	// Unscoped: hold the lifecycle lock so no project is created or
	// deleted mid-enumeration. Request intake keeps flowing — tenants are
	// only frozen one at a time, for the microseconds their bytes take to
	// capture.
	m.lifecycleMu.Lock()
	defer m.lifecycleMu.Unlock()
	var entries []tarEntry
	ctlSnap, ctlLog, err := m.reg.Backup()
	if err != nil {
		writeStorageError(w, http.StatusServiceUnavailable, err)
		return
	}
	if ctlSnap != nil {
		entries = append(entries, tarEntry{Name: controlDirName + "/snapshot.json", Data: ctlSnap})
	}
	if len(ctlLog) > 0 {
		entries = append(entries, tarEntry{Name: controlDirName + "/wal.log", Data: ctlLog})
	}
	ids := []string{DefaultProject}
	for _, p := range m.reg.List() {
		ids = append(ids, p.ID)
	}
	for _, tid := range ids {
		srv := m.tenant(tid)
		if srv == nil || srv.walFailed.Load() {
			// Sick or poisoned: live state is unavailable or untrustworthy,
			// but the on-disk log is still the durable truth (a poisoned
			// tenant's appends all fail, so the files are static). Raw copy,
			// quarantines included — damage travels with the backup, never
			// dropped.
			entries = append(entries, rawDirEntries(filepath.Join(m.dataDir, tid), tid)...)
			continue
		}
		snap, log, err := srv.backupPayload()
		if err != nil {
			writeStorageError(w, http.StatusServiceUnavailable, fmt.Errorf("project %q: %w", tid, err))
			return
		}
		entries = append(entries, tarEntry{Name: tid + "/snapshot.json", Data: snap})
		if len(log) > 0 {
			entries = append(entries, tarEntry{Name: tid + "/wal.log", Data: log})
		}
	}
	m.backups.Add(1)
	var total int64
	for _, e := range entries {
		total += int64(len(e.Data))
	}
	m.backupBytes.Add(uint64(total))
	streamTarball(w, "easeml-ci-backup-all.tar.gz", entries)
}

// --- restore ------------------------------------------------------------

// walEnvelope mirrors the wal package's on-disk line shape, for reading
// a backup's snapshot/genesis without an open log.
type walEnvelope struct {
	S uint64          `json:"s"`
	T string          `json:"t"`
	D json.RawMessage `json:"d"`
}

// RestoreBackup unpacks a backup tarball (either shape: a flat tenant
// backup or a full control-plane backup) into dataDir, verifying the
// default project's genesis fingerprint against g before adopting
// anything. It refuses a data directory that already holds state —
// restore creates a world, it does not merge into one. The unpack is
// staged: entries land in a temp directory first and are renamed into
// place only after verification, so a failed restore leaves dataDir
// untouched.
func RestoreBackup(tarPath, dataDir string, g Genesis) error {
	if dataDir == "" {
		return fmt.Errorf("server: restore needs a data directory")
	}
	for _, p := range []string{"wal.log", DefaultProject, controlDirName} {
		if _, err := os.Stat(filepath.Join(dataDir, p)); err == nil {
			return fmt.Errorf("server: restore: %s already exists in %s — refusing to overwrite existing state", p, dataDir)
		}
	}
	f, err := os.Open(tarPath)
	if err != nil {
		return fmt.Errorf("server: restore: %w", err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return fmt.Errorf("server: restore: %s is not a gzipped tarball: %w", tarPath, err)
	}
	staging := filepath.Join(dataDir, ".restore-staging")
	if err := os.RemoveAll(staging); err != nil {
		return fmt.Errorf("server: restore: %w", err)
	}
	if err := os.MkdirAll(staging, 0o755); err != nil {
		return fmt.Errorf("server: restore: %w", err)
	}
	defer os.RemoveAll(staging)

	tr := tar.NewReader(gz)
	var topLevel []string
	seen := make(map[string]bool)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("server: restore: reading %s: %w", tarPath, err)
		}
		if hdr.Typeflag != tar.TypeReg {
			continue
		}
		name, err := sanitizeTarName(hdr.Name)
		if err != nil {
			return fmt.Errorf("server: restore: %w", err)
		}
		// Flat tenant backups restore as the default project.
		if !strings.Contains(name, "/") {
			name = DefaultProject + "/" + name
		}
		raw, err := io.ReadAll(io.LimitReader(tr, 1<<30))
		if err != nil {
			return fmt.Errorf("server: restore: entry %s: %w", hdr.Name, err)
		}
		dst := filepath.Join(staging, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return fmt.Errorf("server: restore: %w", err)
		}
		if err := os.WriteFile(dst, raw, 0o644); err != nil {
			return fmt.Errorf("server: restore: %w", err)
		}
		top := strings.SplitN(name, "/", 2)[0]
		if !seen[top] {
			seen[top] = true
			topLevel = append(topLevel, top)
		}
	}
	if !seen[DefaultProject] {
		return fmt.Errorf("server: restore: %s holds no default project state", tarPath)
	}

	// Verify before adopting: the default project's state must carry the
	// fingerprint of the Genesis this process would serve it under —
	// restoring someone else's backup into a server with different flags
	// must fail here, not at first boot, and certainly not silently.
	fp, err := backupFingerprint(filepath.Join(staging, DefaultProject))
	if err != nil {
		return fmt.Errorf("server: restore: %w", err)
	}
	if want := g.fingerprint(); fp != want {
		return fmt.Errorf("server: restore: backup genesis fingerprint %q does not match this server's configuration %q — the backup was taken under different flags (condition, reliability, adaptivity, steps, or testset)", fp, want)
	}

	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return fmt.Errorf("server: restore: %w", err)
	}
	for _, top := range topLevel {
		if err := os.Rename(filepath.Join(staging, top), filepath.Join(dataDir, top)); err != nil {
			return fmt.Errorf("server: restore: adopting %s: %w", top, err)
		}
	}
	return nil
}

// sanitizeTarName rejects tarball entry names that would escape the
// staging directory: absolute paths, parent traversal, or nesting
// deeper than the <project>/<file> layout backups produce.
func sanitizeTarName(name string) (string, error) {
	clean := path.Clean(strings.TrimPrefix(name, "./"))
	if clean == "" || clean == "." || path.IsAbs(clean) || strings.HasPrefix(clean, "..") || strings.Contains(clean, "/../") {
		return "", fmt.Errorf("unsafe tarball entry %q", name)
	}
	if strings.Count(clean, "/") > 1 {
		return "", fmt.Errorf("unexpected tarball entry %q (want <project>/<file>)", name)
	}
	return clean, nil
}

// backupFingerprint extracts the genesis config fingerprint from a
// staged tenant directory: from the snapshot's payload if one exists,
// else from the log's genesis record.
func backupFingerprint(dir string) (string, error) {
	if raw, err := os.ReadFile(filepath.Join(dir, "snapshot.json")); err == nil {
		var env walEnvelope
		if err := json.Unmarshal(bytes.TrimSpace(raw), &env); err != nil {
			return "", fmt.Errorf("backup snapshot: %w", err)
		}
		var ws walSnapshot
		if err := json.Unmarshal(env.D, &ws); err != nil {
			return "", fmt.Errorf("backup snapshot payload: %w", err)
		}
		if ws.Genesis == "" {
			return "", errors.New("backup snapshot carries no genesis fingerprint")
		}
		return ws.Genesis, nil
	}
	raw, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		return "", errors.New("backup holds neither a snapshot nor a log to verify the genesis fingerprint from")
	}
	line, _, _ := bytes.Cut(raw, []byte{'\n'})
	var env walEnvelope
	if err := json.Unmarshal(line, &env); err != nil || env.T != recTypeGenesis {
		return "", errors.New("backup log does not begin with a genesis record")
	}
	var rg recGenesis
	if err := json.Unmarshal(env.D, &rg); err != nil || rg.Fingerprint == "" {
		return "", errors.New("backup genesis record carries no fingerprint")
	}
	return rg.Fingerprint, nil
}

// --- health endpoints ---------------------------------------------------

// ProjectHealth is one tenant's row in the health report.
type ProjectHealth struct {
	ID string `json:"id"`
	// Lifecycle is active | suspended | salvage-required.
	Lifecycle string `json:"lifecycle"`
	// Storage is ok | degraded | salvage-required | memory.
	Storage    string `json:"storage"`
	QueueDepth int    `json:"queue_depth"`
	Parked     int    `json:"parked"`
	// OracleBreaker is the remote label provider's circuit-breaker state
	// (closed | open | half-open); absent when labels are in-process.
	OracleBreaker string `json:"oracle_breaker,omitempty"`
}

// HealthResponse answers GET /healthz (always 200) and GET /readyz
// (503 unless every tenant's storage is ok).
type HealthResponse struct {
	Status      string          `json:"status"` // ok | degraded
	PoolWorkers int             `json:"pool_workers"`
	PoolDepth   int             `json:"pool_depth"`
	Projects    []ProjectHealth `json:"projects"`
}

// healthSnapshot gathers the control plane's health: pool shape, then
// one row per project (sick ones included).
func (m *Multi) healthSnapshot() HealthResponse {
	ps := m.pool.Stats()
	resp := HealthResponse{Status: StorageOK, PoolWorkers: ps.Workers}
	for _, src := range ps.Sources {
		resp.PoolDepth += src.Pending
	}
	rows := []struct {
		id    string
		state string
	}{{DefaultProject, string(registry.Active)}}
	for _, p := range m.reg.List() {
		rows = append(rows, struct {
			id    string
			state string
		}{p.ID, string(p.State)})
	}
	for _, row := range rows {
		ph := ProjectHealth{ID: row.id, Lifecycle: row.state, Storage: "memory"}
		srv := m.tenant(row.id)
		if srv == nil {
			// Sick tenant: registered but unopenable without salvage.
			ph.Lifecycle = StorageSalvageRequired
			ph.Storage = StorageSalvageRequired
			resp.Status = StorageDegraded
			resp.Projects = append(resp.Projects, ph)
			continue
		}
		if h := srv.storageHealth(); h != nil {
			ph.Storage = h.State
			if h.State != StorageOK {
				resp.Status = StorageDegraded
			}
		}
		ph.QueueDepth = srv.jobs.Pending()
		ph.Parked = srv.ParkedCount()
		if ost := srv.oracleStats(); ost != nil {
			ph.OracleBreaker = ost.Breaker.State
		}
		resp.Projects = append(resp.Projects, ph)
	}
	return resp
}

// handleHealthz is liveness plus detail: always 200, with the full
// per-tenant picture in the body for dashboards and operators.
func (m *Multi) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, m.healthSnapshot())
}

// handleReadyz is the load balancer's gate: 200 only while every
// tenant's storage is healthy, 503 (with the same body) the moment any
// tenant is degraded or awaiting salvage — traffic should prefer a
// fully healthy replica when one exists.
func (m *Multi) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	h := m.healthSnapshot()
	status := http.StatusOK
	if h.Status != StorageOK {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// storageAggregate rolls every tenant's storage health (plus the
// control log's and the control plane's own backup counters) into the
// global storage section of /api/v1/metrics.
func (m *Multi) storageAggregate(projects []TenantMetrics) *StorageHealth {
	if m.dataDir == "" {
		return nil
	}
	agg := &StorageHealth{
		State:            StorageOK,
		SalvageRuns:      m.controlSalvages.Load(),
		QuarantinedBytes: wal.QuarantinedBytes(filepath.Join(m.dataDir, controlDirName)),
		BackupsTotal:     m.backups.Load(),
		BackupBytesTotal: m.backupBytes.Load(),
	}
	rank := map[string]int{StorageOK: 0, StorageDegraded: 1, StorageSalvageRequired: 2}
	for _, p := range projects {
		h := p.Storage
		if h == nil {
			continue
		}
		if rank[h.State] > rank[agg.State] {
			agg.State = h.State
		}
		agg.WALPoisoned = agg.WALPoisoned || h.WALPoisoned
		agg.SalvageRuns += h.SalvageRuns
		agg.QuarantinedBytes += h.QuarantinedBytes
		agg.BackupsTotal += h.BackupsTotal
		agg.BackupBytesTotal += h.BackupBytesTotal
	}
	return agg
}
