package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/easeml/ci/internal/labeling"
	"github.com/easeml/ci/internal/notify"
	"github.com/easeml/ci/internal/script"
)

// flakyFactory builds an OracleFactory whose provider fails the first
// `fails` round trips and then recovers. With MaxAttempts 2, two faults
// park the first evaluation and the release succeeds. Sleeps and the
// fault clock are stubbed out, so the tests never actually wait.
func flakyFactory(fails int) func(gen int, truth []int) labeling.Oracle {
	return func(gen int, truth []int) labeling.Oracle {
		schedule := make([]labeling.Fault, fails)
		for i := range schedule {
			schedule[i] = labeling.Fault{Fail: true}
		}
		faults := labeling.NewFaultOracle(labeling.NewTruthOracle(truth), schedule, func(time.Duration) {})
		return labeling.NewResilient(faults, labeling.ResilientOptions{
			MaxAttempts: 2,
			Backoff:     time.Microsecond,
			Sleep:       func(time.Duration) {},
			Jitter:      func() float64 { return 0 },
		})
	}
}

func submitAsync(t *testing.T, h http.Handler, path string, labels []int, model string, seed int64) JobAcceptedResponse {
	t.Helper()
	rec := doH(t, h, http.MethodPost, path, AsyncCommitRequest{
		CommitRequest: CommitRequest{
			Model: model, Author: "dev", Message: "park",
			Predictions: goodPredictions(t, labels, 0.9, seed),
		},
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("async submit = %d: %s", rec.Code, rec.Body.String())
	}
	var acc JobAcceptedResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
		t.Fatal(err)
	}
	return acc
}

func jobState(t *testing.T, srv *Server, id string) JobStatusResponse {
	t.Helper()
	rec, _ := doJSON(t, srv, http.MethodGet, jobsPath+id, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("poll %s = %d: %s", id, rec.Code, rec.Body.String())
	}
	return decodeJobStatus(t, rec)
}

// TestParkAndReleaseEndToEnd: a provider outage parks the commit job in
// awaiting_labels instead of failing it, and the released job delivers a
// verdict byte-identical to a server whose oracle never failed.
func TestParkAndReleaseEndToEnd(t *testing.T) {
	control, labels := newServerWith(t, script.AdaptivityFull, 3, testSize, Options{ManualQueue: true})
	acc := submitAsync(t, control, "/api/v1/commit/async", labels, "cand", 2)
	if !control.RunNextJob() {
		t.Fatal("control job did not run")
	}
	want := jobState(t, control, acc.JobID)
	if want.State != "done" {
		t.Fatalf("control job = %+v", want)
	}

	srv, labels := newServerWith(t, script.AdaptivityFull, 3, testSize, Options{
		ManualQueue:   true,
		ManualRelease: true,
		OracleFactory: flakyFactory(2),
	})
	acc = submitAsync(t, srv, "/api/v1/commit/async", labels, "cand", 2)
	if !srv.RunNextJob() {
		t.Fatal("flaky job did not run")
	}
	st := jobState(t, srv, acc.JobID)
	if st.State != "awaiting_labels" {
		t.Fatalf("job after outage = %+v, want awaiting_labels", st)
	}
	if st.Result != nil || st.Error != "" {
		t.Fatalf("parked job leaked a result or error: %+v", st)
	}
	if got := srv.ParkedCount(); got != 1 {
		t.Fatalf("ParkedCount = %d", got)
	}
	if srv.RunNextJob() {
		t.Fatal("parked job ran without a release")
	}

	if got := srv.ReleaseParked(); got != 1 {
		t.Fatalf("ReleaseParked = %d", got)
	}
	if st := jobState(t, srv, acc.JobID); st.State != "queued" {
		t.Fatalf("released job = %q, want queued", st.State)
	}
	if !srv.RunNextJob() {
		t.Fatal("released job did not run")
	}
	got := jobState(t, srv, acc.JobID)
	if got.State != "done" {
		t.Fatalf("job after recovery = %+v", got)
	}
	wantJSON, _ := json.Marshal(want.Result)
	gotJSON, _ := json.Marshal(got.Result)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("verdict diverged across the outage:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	// Exactly-once labels: the outage run charged the same ledger total.
	if g, w := srv.eng.LabelCost().Total(), control.eng.LabelCost().Total(); g != w {
		t.Errorf("label charges = %d, want %d", g, w)
	}
}

// TestParkAutoRelease: without ManualRelease the server re-queues parked
// jobs on a timer, pacing off the provider's Retry-After hint (floored at
// MinParkRelease).
func TestParkAutoRelease(t *testing.T) {
	factory := func(gen int, truth []int) labeling.Oracle {
		faults := labeling.NewFaultOracle(labeling.NewTruthOracle(truth), []labeling.Fault{
			{Fail: true, RetryIn: 10 * time.Millisecond, HasRetryIn: true},
			{Fail: true, RetryIn: 10 * time.Millisecond, HasRetryIn: true},
		}, func(time.Duration) {})
		return labeling.NewResilient(faults, labeling.ResilientOptions{
			MaxAttempts: 2,
			Backoff:     time.Microsecond,
			Sleep:       func(time.Duration) {},
			Jitter:      func() float64 { return 0 },
		})
	}
	srv, labels := newServerWith(t, script.AdaptivityFull, 3, testSize, Options{
		ManualQueue:   true,
		OracleFactory: factory,
	})
	acc := submitAsync(t, srv, "/api/v1/commit/async", labels, "cand", 2)
	if !srv.RunNextJob() {
		t.Fatal("job did not run")
	}
	if st := jobState(t, srv, acc.JobID); st.State != "awaiting_labels" {
		t.Fatalf("job after outage = %+v", st)
	}
	// The release timer fires on its own (hint 10ms, floored to
	// MinParkRelease = 1s) and re-queues the job.
	deadline := time.Now().Add(10 * time.Second)
	for jobState(t, srv, acc.JobID).State != "queued" {
		if time.Now().After(deadline) {
			t.Fatal("auto-release timer never re-queued the parked job")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !srv.RunNextJob() {
		t.Fatal("auto-released job did not run")
	}
	if st := jobState(t, srv, acc.JobID); st.State != "done" {
		t.Fatalf("job after auto-release = %+v", st)
	}
}

// TestParkMetricsSurviveAdminReset: oracle health is delivery state, not
// a cache — the admin reset reports it unchanged, globally and per
// project.
func TestParkMetricsSurviveAdminReset(t *testing.T) {
	srv, labels := newServerWith(t, script.AdaptivityFull, 3, testSize, Options{
		ManualQueue:   true,
		ManualRelease: true,
		OracleFactory: flakyFactory(2),
	})
	acc := submitAsync(t, srv, "/api/v1/commit/async", labels, "cand", 2)
	srv.RunNextJob()
	srv.ReleaseParked()
	srv.RunNextJob()
	if st := jobState(t, srv, acc.JobID); st.State != "done" {
		t.Fatalf("setup: job = %+v", st)
	}

	metrics := func() map[string]json.RawMessage {
		rec, body := doJSON(t, srv, http.MethodGet, "/api/v1/metrics", nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("metrics = %d", rec.Code)
		}
		return body
	}
	before, ok := metrics()["label_oracle"]
	if !ok {
		t.Fatal("metrics missing label_oracle")
	}
	var st labeling.OracleStats
	if err := json.Unmarshal(before, &st); err != nil {
		t.Fatal(err)
	}
	if st.Attempts == 0 || st.Retries == 0 || st.Unavailable == 0 || st.LabelsFetched == 0 {
		t.Fatalf("oracle stats did not record the outage: %+v", st)
	}
	if st.Breaker.State == "" {
		t.Fatalf("oracle stats missing breaker status: %+v", st)
	}

	if rec, _ := doJSON(t, srv, http.MethodPost, "/api/v1/admin/reset-caches", nil); rec.Code != http.StatusOK {
		t.Fatalf("admin reset = %d", rec.Code)
	}
	after := metrics()["label_oracle"]
	if !bytes.Equal(before, after) {
		t.Errorf("admin reset changed oracle health:\n before %s\n after  %s", before, after)
	}
}

// TestParkWithoutFactoryAbsent: servers with no remote oracle expose no
// label_oracle block and never park.
func TestParkWithoutFactoryAbsent(t *testing.T) {
	srv, _ := newServerWith(t, script.AdaptivityFull, 3, testSize, Options{ManualQueue: true})
	_, body := doJSON(t, srv, http.MethodGet, "/api/v1/metrics", nil)
	if _, ok := body["label_oracle"]; ok {
		t.Error("label_oracle present without an OracleFactory")
	}
	if srv.ParkedCount() != 0 || srv.ReleaseParked() != 0 {
		t.Error("parked bookkeeping active without an OracleFactory")
	}
}

// TestDurableRestartWhileParked: SIGKILL while a job waits out a provider
// outage. On restart the job re-enqueues from its submit record (parking
// writes no commit record — replay must not claim an evaluation that
// never completed), runs against the recovered provider, and lands the
// same verdict as a run that never saw the outage.
func TestDurableRestartWhileParked(t *testing.T) {
	g, labels := durableGenesis(t, 3, testSize)

	controlDir := t.TempDir()
	control, err := NewDurable(g, controlDir, Options{ManualQueue: true, Webhooks: notify.NewOutbox()})
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close()
	cacc := submitAsync(t, control, "/api/v1/commit/async", labels, "cand", 2)
	if !control.RunNextJob() {
		t.Fatal("control job did not run")
	}
	want := jobState(t, control, cacc.JobID)

	dir := t.TempDir()
	srv, err := NewDurable(g, dir, Options{
		ManualQueue:   true,
		ManualRelease: true,
		Webhooks:      notify.NewOutbox(),
		OracleFactory: flakyFactory(1000), // hard down: every attempt fails
	})
	if err != nil {
		t.Fatal(err)
	}
	acc := submitAsync(t, srv, "/api/v1/commit/async", labels, "cand", 2)
	if !srv.RunNextJob() {
		t.Fatal("job did not run")
	}
	if st := jobState(t, srv, acc.JobID); st.State != "awaiting_labels" {
		t.Fatalf("job = %+v, want awaiting_labels", st)
	}
	// Crash: no Close, no release. The provider is back when the process
	// returns.
	restarted, err := NewDurable(g, dir, Options{
		ManualQueue:   true,
		ManualRelease: true,
		Webhooks:      notify.NewOutbox(),
		OracleFactory: flakyFactory(0),
	})
	if err != nil {
		t.Fatalf("restart with a parked job: %v", err)
	}
	defer restarted.Close()
	if st := jobState(t, restarted, acc.JobID); st.State != "queued" {
		t.Fatalf("parked job after restart = %q, want queued (restart is the release)", st.State)
	}
	if !restarted.RunNextJob() {
		t.Fatal("re-enqueued job did not run")
	}
	got := jobState(t, restarted, acc.JobID)
	if got.State != "done" {
		t.Fatalf("job after restart = %+v", got)
	}
	wantJSON, _ := json.Marshal(want.Result)
	gotJSON, _ := json.Marshal(got.Result)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("verdict diverged across crash-while-parked:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	// No label charged twice or lost across the restart.
	if g, w := restarted.eng.LabelCost().Total(), control.eng.LabelCost().Total(); g != w {
		t.Errorf("label charges = %d, want %d", g, w)
	}
	var history []CommitResponse
	if err := json.Unmarshal(getBody(t, restarted, "/api/v1/history"), &history); err != nil {
		t.Fatal(err)
	}
	if len(history) != 1 {
		t.Errorf("history holds %d commits, want exactly 1", len(history))
	}
}

// TestMultiDeleteProjectWithParkedJob: deleting a project whose queue
// holds an awaiting_labels job fails that job with the caller's 409 —
// a synchronous commit waiter never hangs on a queue nothing will drain.
func TestMultiDeleteProjectWithParkedJob(t *testing.T) {
	m := newTestMulti(t, MultiOptions{Tenant: Options{
		OracleFactory: flakyFactory(1000),
		ManualRelease: true,
	}})
	defer m.Close()
	if rec := doH(t, m, http.MethodPost, "/api/v1/projects", CreateProjectRequest{ID: "flaky", ProjectSpec: testSpec(t, 3, testSize, 2)}); rec.Code != http.StatusCreated {
		t.Fatal(rec.Body.String())
	}
	labels := testLabels()
	syncDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		syncDone <- doH(t, m, http.MethodPost, "/api/v1/projects/flaky/commit", CommitRequest{
			Model: "waiter", Predictions: goodPredictions(t, labels, 0.9, 2),
		})
	}()
	srv := m.tenant("flaky")
	deadline := time.Now().Add(10 * time.Second)
	for srv.ParkedCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sync commit never parked")
		}
		time.Sleep(time.Millisecond)
	}
	// The tenant's own metrics expose the parked oracle's health.
	rec, _ := doJSON(t, m.tenant("flaky"), http.MethodGet, "/api/v1/metrics", nil)
	var tm struct {
		LabelOracle *labeling.OracleStats `json:"label_oracle"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tm); err != nil {
		t.Fatal(err)
	}
	if tm.LabelOracle == nil || tm.LabelOracle.Unavailable == 0 {
		t.Errorf("tenant metrics missing the outage: %+v", tm.LabelOracle)
	}

	if rec := doH(t, m, http.MethodDelete, "/api/v1/projects/flaky", nil); rec.Code != http.StatusOK {
		t.Fatalf("delete = %d: %s", rec.Code, rec.Body.String())
	}
	select {
	case rec := <-syncDone:
		if rec.Code != http.StatusConflict {
			t.Fatalf("sync commit across delete = %d: %s", rec.Code, rec.Body.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sync waiter still blocked after its project was deleted")
	}
}

// TestJobCancelWhileParked: DELETE on a parked job cancels it like any
// queued job — the poller sees failed/canceled, not a hang.
func TestJobCancelWhileParked(t *testing.T) {
	srv, labels := newServerWith(t, script.AdaptivityFull, 3, testSize, Options{
		ManualQueue:   true,
		ManualRelease: true,
		OracleFactory: flakyFactory(1000),
	})
	acc := submitAsync(t, srv, "/api/v1/commit/async", labels, "cand", 2)
	if !srv.RunNextJob() {
		t.Fatal("job did not run")
	}
	if st := jobState(t, srv, acc.JobID); st.State != "awaiting_labels" {
		t.Fatalf("job = %+v", st)
	}
	rec, _ := doJSON(t, srv, http.MethodDelete, jobsPath+acc.JobID, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel parked job = %d: %s", rec.Code, rec.Body.String())
	}
	st := jobState(t, srv, acc.JobID)
	if st.State != "failed" || st.Error == "" {
		t.Fatalf("canceled parked job = %+v, want failed", st)
	}
	if srv.ParkedCount() != 0 {
		t.Error("canceled job still counted as parked")
	}
	if srv.ReleaseParked() != 0 {
		t.Error("canceled job released")
	}
}
