package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/easeml/ci/internal/bounds"
	"github.com/easeml/ci/internal/interval"
	"github.com/easeml/ci/internal/labeling"
	"github.com/easeml/ci/internal/planner"
	"github.com/easeml/ci/internal/queue"
	"github.com/easeml/ci/internal/registry"
	"github.com/easeml/ci/internal/script"
	"github.com/easeml/ci/internal/wal"
)

// Multi is the multi-project control plane: a registry of tenants, each
// an isolated Server (own engine, commit queue, and — in durable mode —
// own write-ahead log under dataDir/<project-id>/), multiplexed onto one
// shared worker pool with weighted round-robin scheduling and one shared
// plan cache. The pre-projects single-tenant API keeps working: every
// old path is an alias for the implicit "default" project, served by the
// identical Server code byte-for-byte.
//
// Routing:
//
//	POST /api/v1/projects                 register a project (spec below)
//	GET  /api/v1/projects                 list projects, creation order
//	GET  /api/v1/projects/{id}            one project's info
//	DELETE /api/v1/projects/{id}          unregister + delete its state
//	POST /api/v1/projects/{id}/suspend    stop accepting new work
//	POST /api/v1/projects/{id}/resume     accept work again
//	*    /api/v1/projects/{id}/<rest>     the single-tenant API, scoped
//	GET  /api/v1/metrics                  control-plane metrics: shared
//	                                      caches once, scheduler, per-tenant
//	POST /api/v1/admin/reset-caches       reset shared caches + counters
//	                                      (?project= scopes to one tenant)
//	POST /api/v1/admin/compact            compact all logs (?project=)
//	*    /api/v1/<anything else>          alias for the default project
type Multi struct {
	dataDir     string
	base        Options
	reg         *registry.Registry
	pool        *queue.Pool
	autoSalvage bool

	mu      sync.RWMutex // guards tenants and sick
	tenants map[string]*Server
	// sick maps project IDs whose write-ahead state refused to open
	// (wal.ErrCorrupt) to the reason. A sick tenant answers 503 with a
	// structured degraded body instead of taking the control plane down;
	// everything else keeps serving.
	sick map[string]string

	// controlSalvages counts auto-salvage runs on the control log itself;
	// backups/backupBytes count unscoped (whole-control-plane) backups.
	// None are cleared by the admin cache reset.
	controlSalvages atomic.Uint64
	backups         atomic.Uint64
	backupBytes     atomic.Uint64

	// lifecycleMu serializes create/suspend/resume/delete/Close against
	// each other without blocking request routing.
	lifecycleMu sync.Mutex
	closed      bool
}

// DefaultProject is the implicit tenant every pre-projects API path
// aliases to. It is defined by the serving process's own flags (not a
// registry record), cannot be suspended or deleted, and in durable mode
// lives under dataDir/default/.
const DefaultProject = "default"

// controlDirName is the registry's directory under the data dir; the
// project-ID alphabet cannot produce it.
const controlDirName = "_control"

// MultiOptions configures the control plane.
type MultiOptions struct {
	// DataDir is the root state directory: the registry's control log
	// lives in DataDir/_control, each project's WAL in DataDir/<id>/.
	// Empty runs everything in-memory.
	DataDir string
	// PoolWorkers sizes the shared worker pool (0 means
	// queue.DefaultPoolWorkers) — how many tenants evaluate concurrently.
	PoolWorkers int
	// ManualPool disables the pool's workers; tests drive scheduling
	// decisions one at a time via RunOne.
	ManualPool bool
	// DefaultWeight is the default project's scheduling weight (<1 means 1).
	DefaultWeight int
	// AutoSalvage runs wal.Salvage and retries once when a tenant's (or
	// the control plane's) write-ahead state refuses to open with
	// wal.ErrCorrupt. Off by default: salvage truncates the log to its
	// longest valid prefix, which is an operator decision.
	AutoSalvage bool
	// ControlFS is the filesystem the control-plane registry log goes
	// through; nil means the real one (disk-fault tests inject here).
	ControlFS wal.FS
	// Tenant is the per-tenant Options template: clock, webhooks, retry
	// policy, and WAL tuning apply to every project; QueueCapacity and
	// LabelQuota apply to the default project (registered projects carry
	// their own in their specs).
	Tenant Options
}

// ProjectSpec is a registered project's description — the POST body of
// /api/v1/projects (minus the ID) and the opaque payload the registry
// stores. It is the wire twin of Genesis plus the tenant's scheduling
// weight and quotas.
type ProjectSpec struct {
	Condition   string  `json:"condition"`
	Reliability float64 `json:"reliability"`
	Steps       int     `json:"steps"`
	// Mode collapses Unknown evaluations: "fp-free" (default) or "fn-free".
	Mode string `json:"mode,omitempty"`
	// Adaptivity is "full" (default), "none", or "firstChange"; "none"
	// requires Email, the address true results are routed to.
	Adaptivity string `json:"adaptivity,omitempty"`
	Email      string `json:"email,omitempty"`
	// Labels and Classes define the first testset; ModelPredictions are
	// the deployed baseline's predictions on it.
	Labels           []int  `json:"labels"`
	Classes          int    `json:"classes"`
	ModelName        string `json:"model,omitempty"`
	ModelPredictions []int  `json:"model_predictions"`
	// Weight is the tenant's share of the scheduler (<1 means 1).
	Weight int `json:"weight,omitempty"`
	// QueueCapacity bounds the tenant's pending commit backlog (its
	// queue-depth quota); 0 means the queue default.
	QueueCapacity int `json:"queue_capacity,omitempty"`
	// LabelQuota caps the tenant's cumulative label spend; commits past
	// it answer 429. 0 means unlimited.
	LabelQuota int `json:"label_quota,omitempty"`
}

// genesis validates the spec and shapes it into the Genesis a tenant
// server boots from.
func (sp ProjectSpec) genesis() (Genesis, error) {
	var mode interval.Mode
	switch sp.Mode {
	case "", "fp-free":
		mode = interval.FPFree
	case "fn-free":
		mode = interval.FNFree
	default:
		return Genesis{}, fmt.Errorf("bad mode %q (fp-free | fn-free)", sp.Mode)
	}
	var adapt script.Adaptivity
	switch sp.Adaptivity {
	case "", "full":
		adapt = script.Adaptivity{Kind: script.AdaptivityFull}
	case "none":
		adapt = script.Adaptivity{Kind: script.AdaptivityNone, Email: sp.Email}
	case "firstChange":
		adapt = script.Adaptivity{Kind: script.AdaptivityFirstChange}
	default:
		return Genesis{}, fmt.Errorf("bad adaptivity %q (none | full | firstChange)", sp.Adaptivity)
	}
	name := sp.ModelName
	if name == "" {
		name = "deployed-h0"
	}
	g := Genesis{
		Condition:        sp.Condition,
		Reliability:      sp.Reliability,
		Mode:             mode,
		Adaptivity:       adapt,
		Steps:            sp.Steps,
		Labels:           sp.Labels,
		Classes:          sp.Classes,
		ModelName:        name,
		ModelPredictions: sp.ModelPredictions,
	}
	if _, err := g.config(); err != nil {
		return Genesis{}, err
	}
	if len(g.ModelPredictions) != len(g.Labels) {
		return Genesis{}, fmt.Errorf("%d model predictions for %d labels", len(g.ModelPredictions), len(g.Labels))
	}
	if _, err := datasetFromLabels("genesis", g.Labels, g.Classes); err != nil {
		return Genesis{}, err
	}
	return g, nil
}

// tenantOptions shapes the spec's quotas onto the template. Every tenant
// queue is Manual: the shared pool is the only executor.
func (m *Multi) tenantOptions(id string, sp ProjectSpec) Options {
	topts := m.base
	topts.ManualQueue = true
	topts.QueueCapacity = sp.QueueCapacity
	topts.LabelQuota = sp.LabelQuota
	topts.OnEnqueue = func() { m.pool.Kick(id) }
	topts.OnDequeue = func() { m.pool.Unkick(id) }
	return topts
}

// NewMulti builds the control plane: the default project from g and
// opts.Tenant, then every registered project replayed from the control
// log (durable mode), each reopening its own WAL. Callers must Close it.
func NewMulti(g Genesis, opts MultiOptions) (*Multi, error) {
	m := &Multi{
		dataDir:     opts.DataDir,
		base:        opts.Tenant,
		autoSalvage: opts.AutoSalvage,
		tenants:     make(map[string]*Server),
		sick:        make(map[string]string),
	}
	// Clear the tenant-only hooks off the template; each tenant gets its
	// own closures.
	m.base.ManualQueue = true
	controlDir := ""
	if opts.DataDir != "" {
		if err := migrateLegacyLayout(opts.DataDir); err != nil {
			return nil, fmt.Errorf("server: control plane: %w", err)
		}
		controlDir = filepath.Join(opts.DataDir, controlDirName)
	}
	regOpts := registry.Options{NoSync: opts.Tenant.WALNoSync, FS: opts.ControlFS}
	reg, err := registry.Open(controlDir, regOpts)
	if err != nil && opts.AutoSalvage && errors.Is(err, wal.ErrCorrupt) {
		// The control log itself is damaged. Salvage quarantines the bad
		// suffix and we retry once; without -auto-salvage this stays an
		// operator decision (easeml-ci-server -salvage).
		if res, serr := wal.Salvage(controlDir); serr == nil && res.Repaired {
			if reg2, rerr := registry.Open(controlDir, regOpts); rerr == nil {
				reg, err = reg2, nil
				m.controlSalvages.Add(1)
			}
		}
	}
	if err != nil {
		return nil, fmt.Errorf("server: control plane: %w", err)
	}
	m.reg = reg
	m.pool = queue.NewPool(queue.PoolOptions{Workers: opts.PoolWorkers, Manual: opts.ManualPool})

	defOpts := m.tenantOptions(DefaultProject, ProjectSpec{
		QueueCapacity: opts.Tenant.QueueCapacity,
		LabelQuota:    opts.Tenant.LabelQuota,
	})
	if _, err := m.openTenant(DefaultProject, g, opts.DefaultWeight, defOpts); err != nil {
		if m.dataDir != "" && errors.Is(err, wal.ErrCorrupt) {
			// The default project's state is damaged but the control plane
			// is not: boot degraded, answer its requests 503/salvage-required,
			// keep every other tenant serving.
			m.markSick(DefaultProject, err)
		} else {
			m.pool.Close()
			_ = reg.Close()
			return nil, err
		}
	}
	// Recover registered projects in creation order. A project whose
	// stored spec no longer parses is control-plane corruption and refuses
	// the boot; a project whose own WAL is damaged (wal.ErrCorrupt) is
	// quarantined as sick instead — one rotten log must not take down the
	// tenants whose logs are fine.
	for _, p := range reg.List() {
		var sp ProjectSpec
		perr := json.Unmarshal(p.Spec, &sp)
		var pg Genesis
		if perr == nil {
			pg, perr = sp.genesis()
		}
		if perr == nil {
			_, perr = m.openTenant(p.ID, pg, sp.Weight, m.tenantOptions(p.ID, sp))
		}
		if perr != nil {
			if m.dataDir != "" && errors.Is(perr, wal.ErrCorrupt) {
				m.markSick(p.ID, perr)
				continue
			}
			m.Close()
			return nil, fmt.Errorf("server: control plane: project %q: %w", p.ID, perr)
		}
	}
	m.sweepOrphans()
	return m, nil
}

// openTenant builds one project's server (durable when the control plane
// has a data dir), registers its queue with the scheduler, and re-kicks
// any jobs recovery restored as queued.
func (m *Multi) openTenant(id string, g Genesis, weight int, topts Options) (*Server, error) {
	srv, err := m.buildTenant(id, g, topts)
	if err != nil && m.autoSalvage && m.dataDir != "" && errors.Is(err, wal.ErrCorrupt) {
		// Damaged state and the operator opted into automatic repair:
		// quarantine the bad suffix, retry once. The original error is kept
		// in the chain if the retry fails too, so the caller's
		// errors.Is(err, wal.ErrCorrupt) sick-tenant handling still fires.
		if res, serr := wal.Salvage(filepath.Join(m.dataDir, id)); serr == nil && res.Repaired {
			srv2, rerr := m.buildTenant(id, g, topts)
			if rerr == nil {
				srv, err = srv2, nil
				srv.salvageRuns.Add(1)
			} else {
				err = fmt.Errorf("%w (after salvage: %v)", err, rerr)
			}
		}
	}
	if err != nil {
		return nil, err
	}
	if err := m.pool.Register(id, srv.jobs, weight, 1); err != nil {
		srv.Close()
		return nil, err
	}
	// Restored queued jobs predate the scheduler's pending counts; hand
	// the scheduler one kick per restored job now that the tenant is
	// fully wired.
	for i := srv.jobs.Pending(); i > 0; i-- {
		m.pool.Kick(id)
	}
	m.mu.Lock()
	m.tenants[id] = srv
	delete(m.sick, id)
	m.mu.Unlock()
	return srv, nil
}

// buildTenant constructs one project's server, durable when the control
// plane has a data dir.
func (m *Multi) buildTenant(id string, g Genesis, topts Options) (*Server, error) {
	if m.dataDir != "" {
		return NewDurable(g, filepath.Join(m.dataDir, id), topts)
	}
	return NewFromGenesis(g, topts)
}

// markSick records a tenant whose write-ahead state refused to open.
func (m *Multi) markSick(id string, err error) {
	m.mu.Lock()
	m.sick[id] = err.Error()
	m.mu.Unlock()
}

// sickReason reports why a tenant is sick, if it is.
func (m *Multi) sickReason(id string) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	reason, ok := m.sick[id]
	return reason, ok
}

// writeSickError answers a request routed at a salvage-required tenant:
// 503 with the structured degraded body, never a bare failure — clients
// and load balancers can tell "this tenant needs an operator" from
// "the server is broken".
func writeSickError(w http.ResponseWriter, id, reason string) {
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{
		Error:    fmt.Sprintf("project %q requires salvage: %s", id, reason),
		Degraded: true,
		Reason:   degradedReasonSalvage,
	})
}

// migrateLegacyLayout moves a pre-projects data directory's root-level
// write-ahead state (dataDir/wal.log plus its snapshot) into the default
// project's directory, where the multi-tenant layout keeps it. An
// in-place upgrade therefore carries its history forward instead of
// silently booting a fresh default project next to an ignored log. The
// snapshot moves first: a crash mid-migration leaves the legacy wal.log
// at the root, so the next start resumes the migration — never a log
// whose snapshot went missing. Both layouts populated at once is
// ambiguous (which history is the default project's?) and refused.
func migrateLegacyLayout(dataDir string) error {
	legacy := filepath.Join(dataDir, "wal.log")
	if _, err := os.Stat(legacy); err != nil {
		return nil // no legacy root-level log: nothing to migrate
	}
	defDir := filepath.Join(dataDir, DefaultProject)
	migrated := filepath.Join(defDir, "wal.log")
	if _, err := os.Stat(migrated); err == nil {
		return fmt.Errorf("both %s (pre-projects layout) and %s exist; remove whichever is stale and restart", legacy, migrated)
	}
	if err := os.MkdirAll(defDir, 0o755); err != nil {
		return fmt.Errorf("migrating legacy layout: %w", err)
	}
	for _, name := range []string{"snapshot.json", "wal.log"} {
		src := filepath.Join(dataDir, name)
		if _, err := os.Stat(src); err != nil {
			continue
		}
		if err := os.Rename(src, filepath.Join(defDir, name)); err != nil {
			return fmt.Errorf("migrating legacy layout: %w", err)
		}
	}
	return nil
}

// sweepOrphans removes project directories a crash stranded between the
// registry's durable delete record and the directory removal. Only
// directories holding a wal.log are touched, and never the control dir,
// the default project, or a registered project.
func (m *Multi) sweepOrphans() {
	if m.dataDir == "" {
		return
	}
	entries, err := os.ReadDir(m.dataDir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() || e.Name() == controlDirName || e.Name() == DefaultProject {
			continue
		}
		if _, ok := m.reg.Get(e.Name()); ok {
			continue
		}
		if _, err := os.Stat(filepath.Join(m.dataDir, e.Name(), "wal.log")); err != nil {
			continue
		}
		_ = os.RemoveAll(filepath.Join(m.dataDir, e.Name()))
	}
}

// tenant looks one project's server up.
func (m *Multi) tenant(id string) *Server {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.tenants[id]
}

// Default returns the default project's server — the handler every
// pre-projects API path aliases to.
func (m *Multi) Default() *Server { return m.tenant(DefaultProject) }

// RunOne drives one scheduling decision on the calling goroutine; only
// meaningful with MultiOptions.ManualPool (the deterministic harness).
func (m *Multi) RunOne() bool { return m.pool.RunOne() }

// Close shuts the control plane down in dependency order: intake stops
// on every project first, the shared pool then drains every accepted
// job, and only then do the tenants compact and close their logs,
// followed by the control log. A commit racing Close is therefore either
// fully journaled or never acknowledged — never half of each.
func (m *Multi) Close() {
	m.lifecycleMu.Lock()
	defer m.lifecycleMu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	m.mu.RLock()
	tenants := make([]*Server, 0, len(m.tenants))
	for _, srv := range m.tenants {
		tenants = append(tenants, srv)
	}
	m.mu.RUnlock()
	for _, srv := range tenants {
		srv.CloseIntake()
	}
	m.pool.Close()
	for _, srv := range tenants {
		srv.Close()
	}
	_ = m.reg.Close()
}

// --- wire types ---------------------------------------------------------

// CreateProjectRequest is the POST /api/v1/projects body.
type CreateProjectRequest struct {
	ID string `json:"id"`
	ProjectSpec
}

// ProjectInfo is one project's control-plane view.
type ProjectInfo struct {
	ID            string `json:"id"`
	State         string `json:"state"`
	Weight        int    `json:"weight"`
	QueueCapacity int    `json:"queue_capacity,omitempty"`
	LabelQuota    int    `json:"label_quota,omitempty"`
	Default       bool   `json:"default,omitempty"`
}

// ProjectListResponse answers GET /api/v1/projects: the default project
// first, registered projects in creation order.
type ProjectListResponse struct {
	Projects []ProjectInfo `json:"projects"`
}

// TenantMetrics is one project's slice of the control-plane metrics:
// everything tenant-owned, none of the shared caches (those are reported
// once at the top level).
type TenantMetrics struct {
	ID                string      `json:"id"`
	State             string      `json:"state"`
	CommitQueue       queue.Stats `json:"commit_queue"`
	CommitsEvaluated  uint64      `json:"commits_evaluated"`
	CommitEvalNsTotal uint64      `json:"commit_eval_ns_total"`
	LabelsSavedTotal  uint64      `json:"labels_saved_total"`
	EarlyExitsTotal   uint64      `json:"early_exits_total"`
	EarlyExitLooks    []uint64    `json:"early_exit_looks,omitempty"`
	WebhooksSent      uint64      `json:"webhooks_sent"`
	WebhooksFailed    uint64      `json:"webhooks_failed"`
	WAL               *wal.Stats  `json:"wal,omitempty"`
	// LabelOracle is this tenant's remote label client health (see
	// MetricsResponse.LabelOracle). Like the WAL stats, it survives the
	// admin cache reset — delivery state, not a cache.
	LabelOracle *labeling.OracleStats `json:"label_oracle,omitempty"`
	// Storage is the tenant's write-ahead state health (poisoning,
	// salvage history, quarantined bytes, backups). Survives the admin
	// cache reset — operational state, not a cache.
	Storage *StorageHealth `json:"storage,omitempty"`
}

// MultiMetricsResponse is GET /api/v1/metrics on the control plane: the
// process-wide shared caches exactly once (tenants warm them for each
// other, so per-tenant attribution would double-count), the scheduler,
// the control log, and each tenant's own counters.
type MultiMetricsResponse struct {
	PlanCache             planner.Stats   `json:"plan_cache"`
	ExactMemoHits         uint64          `json:"exact_memo_hits"`
	ExactMemoMisses       uint64          `json:"exact_memo_misses"`
	ExactMemoLen          int             `json:"exact_memo_entries"`
	ExactEvals            uint64          `json:"exact_evals"`
	SweepEvents           uint64          `json:"sweep_events"`
	SweepSegmentsAnalytic uint64          `json:"sweep_segments_analytic"`
	SweepSegmentsRefined  uint64          `json:"sweep_segments_refined"`
	Scheduler             queue.PoolStats `json:"scheduler"`
	ControlWAL            *wal.Stats      `json:"control_wal,omitempty"`
	// LabelsSavedTotal / EarlyExitsTotal sum the early-decision savings
	// across every tenant — the fleet-wide view of what the sequential
	// evaluation is worth; per-tenant attribution is in Projects.
	LabelsSavedTotal uint64          `json:"labels_saved_total"`
	EarlyExitsTotal  uint64          `json:"early_exits_total"`
	Projects         []TenantMetrics `json:"projects"`
	// Storage rolls every tenant's storage health plus the control log's
	// into one global view (worst state wins). Survives the admin cache
	// reset.
	Storage *StorageHealth `json:"storage,omitempty"`
}

// tenantMetrics gathers one server's tenant-owned counters.
func (s *Server) tenantMetrics(id, state string) TenantMetrics {
	return TenantMetrics{
		ID:                id,
		State:             state,
		CommitQueue:       s.jobs.Stats(),
		CommitsEvaluated:  s.commitsEvaluated.Load(),
		CommitEvalNsTotal: s.commitEvalNs.Load(),
		LabelsSavedTotal:  s.labelsSaved.Load(),
		EarlyExitsTotal:   s.earlyExits.Load(),
		EarlyExitLooks:    s.lookHistSnapshot(),
		WebhooksSent:      s.webhooksSent.Load(),
		WebhooksFailed:    s.webhooksFailed.Load(),
		WAL:               s.WALStats(),
		LabelOracle:       s.oracleStats(),
		Storage:           s.storageHealth(),
	}
}

// resetCommitCounters clears the tenant-owned serving counters — the
// per-tenant half of the admin cache reset.
func (s *Server) resetCommitCounters() {
	s.commitsEvaluated.Store(0)
	s.commitEvalNs.Store(0)
	s.labelsSaved.Store(0)
	s.earlyExits.Store(0)
	for i := range s.lookHist {
		s.lookHist[i].Store(0)
	}
}

// --- routing ------------------------------------------------------------

const projectsPath = "/api/v1/projects"

// ServeHTTP routes control-plane paths itself, scoped project paths to
// their tenant, and everything else to the default project unchanged.
func (m *Multi) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == projectsPath || path == projectsPath+"/":
		m.handleProjects(w, r)
	case strings.HasPrefix(path, projectsPath+"/"):
		m.handleProject(w, r, strings.TrimPrefix(path, projectsPath+"/"))
	case path == "/api/v1/metrics":
		m.handleMetrics(w, r)
	case path == "/api/v1/admin/reset-caches":
		m.handleAdminReset(w, r)
	case path == "/api/v1/admin/compact":
		m.handleAdminCompact(w, r)
	case path == "/api/v1/admin/backup":
		m.handleAdminBackup(w, r)
	case path == "/healthz":
		m.handleHealthz(w, r)
	case path == "/readyz":
		m.handleReadyz(w, r)
	default:
		// The pre-projects single-tenant API: an alias for the default
		// project, served by the identical handler chain byte-for-byte.
		def := m.Default()
		if def == nil {
			reason, _ := m.sickReason(DefaultProject)
			writeSickError(w, DefaultProject, reason)
			return
		}
		def.ServeHTTP(w, r)
	}
}

func (m *Multi) handleProjects(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, ProjectListResponse{Projects: m.projectInfos()})
	case http.MethodPost:
		m.handleCreateProject(w, r)
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

// projectInfos lists the default project plus the registry, in creation
// order.
func (m *Multi) projectInfos() []ProjectInfo {
	defState := string(registry.Active)
	if _, sick := m.sickReason(DefaultProject); sick {
		defState = StorageSalvageRequired
	}
	infos := []ProjectInfo{{
		ID:            DefaultProject,
		State:         defState,
		Weight:        m.poolWeight(DefaultProject),
		QueueCapacity: m.base.QueueCapacity,
		LabelQuota:    m.base.LabelQuota,
		Default:       true,
	}}
	for _, p := range m.reg.List() {
		infos = append(infos, m.projectInfo(p))
	}
	return infos
}

func (m *Multi) projectInfo(p registry.Project) ProjectInfo {
	var sp ProjectSpec
	_ = json.Unmarshal(p.Spec, &sp)
	state := string(p.State)
	if _, sick := m.sickReason(p.ID); sick {
		state = StorageSalvageRequired
	}
	return ProjectInfo{
		ID:            p.ID,
		State:         state,
		Weight:        m.poolWeight(p.ID),
		QueueCapacity: sp.QueueCapacity,
		LabelQuota:    sp.LabelQuota,
	}
}

// poolWeight reads one source's effective (clamped) weight back from the
// scheduler.
func (m *Multi) poolWeight(id string) int {
	for _, s := range m.pool.Stats().Sources {
		if s.ID == id {
			return s.Weight
		}
	}
	return 0
}

func (m *Multi) handleCreateProject(w http.ResponseWriter, r *http.Request) {
	var req CreateProjectRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		return
	}
	if err := registry.ValidID(req.ID); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.ID == DefaultProject {
		writeError(w, http.StatusConflict, `"default" is the implicit project every unscoped path serves`)
		return
	}
	g, err := req.ProjectSpec.genesis()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad project spec: "+err.Error())
		return
	}
	spec, err := json.Marshal(req.ProjectSpec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	m.lifecycleMu.Lock()
	defer m.lifecycleMu.Unlock()
	if m.closed {
		writeError(w, http.StatusServiceUnavailable, "control plane is shutting down")
		return
	}
	// Record-then-open: the registry's create record is durable before
	// the tenant exists, so a crash mid-open leaves a registered project
	// that reopens (or refuses loudly) at the next start — never a
	// half-known one.
	if err := m.reg.Create(req.ID, spec); err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, registry.ErrExists) {
			status = http.StatusConflict
		}
		writeError(w, status, err.Error())
		return
	}
	if _, err := m.openTenant(req.ID, g, req.Weight, m.tenantOptions(req.ID, req.ProjectSpec)); err != nil {
		_ = m.reg.Delete(req.ID)
		if m.dataDir != "" {
			_ = os.RemoveAll(filepath.Join(m.dataDir, req.ID))
		}
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	p, _ := m.reg.Get(req.ID)
	writeJSON(w, http.StatusCreated, m.projectInfo(p))
}

// handleProject dispatches /api/v1/projects/{id}[/...]: lifecycle verbs
// handled here, everything else delegated to the tenant.
func (m *Multi) handleProject(w http.ResponseWriter, r *http.Request, rest string) {
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		writeError(w, http.StatusNotFound, "project ID required: "+projectsPath+"/{id}")
		return
	}
	switch sub {
	case "":
		switch r.Method {
		case http.MethodGet:
			m.handleProjectInfo(w, id)
		case http.MethodDelete:
			m.handleDeleteProject(w, id)
		default:
			writeError(w, http.StatusMethodNotAllowed, "GET or DELETE only")
		}
	case "suspend", "resume":
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		m.handleProjectState(w, id, sub == "suspend")
	default:
		m.delegate(w, r, id, sub)
	}
}

func (m *Multi) handleProjectInfo(w http.ResponseWriter, id string) {
	if id == DefaultProject {
		writeJSON(w, http.StatusOK, m.projectInfos()[0])
		return
	}
	p, ok := m.reg.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no project %q", id))
		return
	}
	writeJSON(w, http.StatusOK, m.projectInfo(p))
}

func (m *Multi) handleProjectState(w http.ResponseWriter, id string, suspend bool) {
	if id == DefaultProject {
		writeError(w, http.StatusConflict, "the default project cannot be suspended")
		return
	}
	m.lifecycleMu.Lock()
	defer m.lifecycleMu.Unlock()
	var err error
	if suspend {
		err = m.reg.Suspend(id)
	} else {
		err = m.reg.Resume(id)
	}
	switch {
	case errors.Is(err, registry.ErrNotFound):
		writeError(w, http.StatusNotFound, err.Error())
	case err != nil:
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		p, _ := m.reg.Get(id)
		writeJSON(w, http.StatusOK, m.projectInfo(p))
	}
}

// handleDeleteProject tears a tenant down: route removal first (no new
// requests), then the scheduler (waits out its in-flight job), then the
// server, then the durable delete record, then the directory. A crash
// after the record leaves an orphan directory the next start sweeps.
func (m *Multi) handleDeleteProject(w http.ResponseWriter, id string) {
	if id == DefaultProject {
		writeError(w, http.StatusConflict, "the default project cannot be deleted")
		return
	}
	m.lifecycleMu.Lock()
	defer m.lifecycleMu.Unlock()
	if _, ok := m.reg.Get(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no project %q", id))
		return
	}
	m.mu.Lock()
	srv := m.tenants[id]
	delete(m.tenants, id)
	delete(m.sick, id) // deleting a sick project is the other way out of salvage-required
	m.mu.Unlock()
	if srv != nil {
		srv.CloseIntake()
		m.pool.Unregister(id)
		// The scheduler has forgotten this queue's unscheduled backlog;
		// fail those jobs now so every accepted job reaches a terminal
		// state — a synchronous commit waiting in it gets its 409 instead
		// of blocking forever on a queue nothing will ever drain. (The
		// WAL records skipped here are moot: the whole directory goes.)
		srv.jobs.Abandon()
		srv.Close()
	}
	if err := m.reg.Delete(id); err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	if m.dataDir != "" {
		_ = os.RemoveAll(filepath.Join(m.dataDir, id))
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// delegate rewrites /api/v1/projects/{id}/<rest> to /api/v1/<rest> and
// hands it to the tenant's own handler chain — the same code the alias
// paths run, so a scoped response and an unscoped one cannot drift.
// Suspended projects keep answering reads but refuse new work.
func (m *Multi) delegate(w http.ResponseWriter, r *http.Request, id, rest string) {
	srv := m.tenant(id)
	if srv == nil {
		if reason, ok := m.sickReason(id); ok {
			writeSickError(w, id, reason)
			return
		}
		writeError(w, http.StatusNotFound, fmt.Sprintf("no project %q", id))
		return
	}
	if id != DefaultProject {
		p, ok := m.reg.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Sprintf("no project %q", id))
			return
		}
		if p.State == registry.Suspended && mutatingSub(rest) {
			writeError(w, http.StatusConflict, fmt.Sprintf("project %q is suspended", id))
			return
		}
	}
	r2 := new(http.Request)
	*r2 = *r
	u2 := *r.URL
	u2.Path = "/api/v1/" + rest
	r2.URL = &u2
	srv.ServeHTTP(w, r2)
}

// mutatingSub reports whether a scoped sub-path accepts new work — the
// endpoints a suspended project refuses. The answer is derived from the
// tenant route table (the same rows newServer registers handlers from),
// so a future mutating endpoint cannot silently bypass the suspension
// policy: it is either marked mutating in its route row or deliberately
// not. Reads (plan, status, history, metrics, job polls) and job
// cancellation stay available.
func mutatingSub(rest string) bool {
	path := "/api/v1/" + rest
	for _, rt := range tenantRoutes {
		if !rt.mutating {
			continue
		}
		// Mirror ServeMux semantics: a pattern ending in "/" matches the
		// whole subtree, anything else matches exactly.
		if path == rt.pattern || (strings.HasSuffix(rt.pattern, "/") && strings.HasPrefix(path, rt.pattern)) {
			return true
		}
	}
	return false
}

// --- control-plane metrics and admin ------------------------------------

// metricsSnapshot gathers the control-plane metrics: shared caches once,
// then every tenant.
func (m *Multi) metricsSnapshot() MultiMetricsResponse {
	hits, misses, entries := bounds.ExactCacheStats()
	events, analytic, refined := bounds.ExactSweepStats()
	resp := MultiMetricsResponse{
		PlanCache:             planner.Default.Stats(),
		ExactMemoHits:         hits,
		ExactMemoMisses:       misses,
		ExactMemoLen:          entries,
		ExactEvals:            bounds.ExactProbeEvals(),
		SweepEvents:           events,
		SweepSegmentsAnalytic: analytic,
		SweepSegmentsRefined:  refined,
		Scheduler:             m.pool.Stats(),
		ControlWAL:            m.reg.Stats(),
	}
	if def := m.Default(); def != nil {
		resp.Projects = append(resp.Projects, def.tenantMetrics(DefaultProject, string(registry.Active)))
	} else {
		resp.Projects = append(resp.Projects, m.sickTenantMetrics(DefaultProject))
	}
	for _, p := range m.reg.List() {
		if srv := m.tenant(p.ID); srv != nil {
			resp.Projects = append(resp.Projects, srv.tenantMetrics(p.ID, string(p.State)))
		} else if _, ok := m.sickReason(p.ID); ok {
			resp.Projects = append(resp.Projects, m.sickTenantMetrics(p.ID))
		}
	}
	for _, p := range resp.Projects {
		resp.LabelsSavedTotal += p.LabelsSavedTotal
		resp.EarlyExitsTotal += p.EarlyExitsTotal
	}
	resp.Storage = m.storageAggregate(resp.Projects)
	return resp
}

// sickTenantMetrics is the metrics row for a tenant that could not
// open: no serving counters to report, but its storage condition —
// including the quarantined bytes sitting in its directory — still
// shows up, because that is exactly the tenant an operator is looking
// for.
func (m *Multi) sickTenantMetrics(id string) TenantMetrics {
	return TenantMetrics{
		ID:    id,
		State: StorageSalvageRequired,
		Storage: &StorageHealth{
			State:            StorageSalvageRequired,
			QuarantinedBytes: wal.QuarantinedBytes(filepath.Join(m.dataDir, id)),
		},
	}
}

func (m *Multi) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, m.metricsSnapshot())
}

// scopedTenant resolves an optional ?project= parameter: ("", nil, true)
// when absent, or the named tenant; unknown IDs answer 404.
func (m *Multi) scopedTenant(w http.ResponseWriter, r *http.Request) (string, *Server, bool) {
	id := r.URL.Query().Get("project")
	if id == "" {
		return "", nil, true
	}
	srv := m.tenant(id)
	if srv == nil {
		if reason, ok := m.sickReason(id); ok {
			writeSickError(w, id, reason)
			return "", nil, false
		}
		writeError(w, http.StatusNotFound, fmt.Sprintf("no project %q", id))
		return "", nil, false
	}
	return id, srv, true
}

// handleAdminReset is the project-aware cache reset. Unscoped, it clears
// the shared caches exactly once plus every tenant's counters, and
// reports the pre-reset control-plane snapshot (shared counters once,
// not repeated per tenant). Scoped with ?project=, it clears only that
// tenant's counters — the shared caches serve every tenant and are not a
// single project's to drop.
func (m *Multi) handleAdminReset(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	id, srv, ok := m.scopedTenant(w, r)
	if !ok {
		return
	}
	if srv != nil {
		state := string(registry.Active)
		if p, ok := m.reg.Get(id); ok {
			state = string(p.State)
		}
		pre := srv.tenantMetrics(id, state)
		srv.resetCommitCounters()
		writeJSON(w, http.StatusOK, pre)
		return
	}
	pre := m.metricsSnapshot()
	planner.Default.Reset()
	bounds.ResetExactCache()
	m.mu.RLock()
	for _, t := range m.tenants {
		t.resetCommitCounters()
	}
	m.mu.RUnlock()
	writeJSON(w, http.StatusOK, pre)
}

// CompactResponse answers the control plane's unscoped admin compact:
// the post-compaction stats of every log it owns.
type CompactResponse struct {
	Control  *wal.Stats            `json:"control,omitempty"`
	Projects map[string]*wal.Stats `json:"projects"`
}

// handleAdminCompact snapshots and truncates write-ahead logs on demand:
// one project's with ?project=, otherwise every durable tenant's plus
// the control log.
func (m *Multi) handleAdminCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if m.dataDir == "" {
		writeError(w, http.StatusConflict, "control plane is not durable (no data directory)")
		return
	}
	// Both scopes hold lifecycleMu across the compaction: a concurrent
	// DELETE of the tenant being compacted must not close its WAL or
	// remove its directory while Compact is writing a snapshot into it.
	m.lifecycleMu.Lock()
	defer m.lifecycleMu.Unlock()
	id, srv, ok := m.scopedTenant(w, r)
	if !ok {
		return
	}
	if srv != nil {
		if err := srv.Compact(); err != nil {
			writeStorageError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]*wal.Stats{id: srv.WALStats()})
		return
	}
	resp := CompactResponse{Projects: make(map[string]*wal.Stats)}
	compactOne := func(id string, srv *Server) bool {
		if err := srv.Compact(); err != nil {
			writeStorageError(w, http.StatusServiceUnavailable, fmt.Errorf("project %q: %w", id, err))
			return false
		}
		resp.Projects[id] = srv.WALStats()
		return true
	}
	if def := m.Default(); def != nil && !compactOne(DefaultProject, def) {
		return
	}
	for _, p := range m.reg.List() {
		if srv := m.tenant(p.ID); srv != nil {
			if !compactOne(p.ID, srv) {
				return
			}
		}
	}
	if err := m.reg.Compact(); err != nil {
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	resp.Control = m.reg.Stats()
	writeJSON(w, http.StatusOK, resp)
}
